package wire

import (
	"bytes"
	"math"
	"testing"

	"flowmotif/internal/temporal"
)

// FuzzDecodeFrame drives arbitrary byte images through the frame decoder.
// Invariants: no panic; no over-read (the bounded reader errors instead);
// a rejected frame yields zero events (Events fails after a failed Next);
// and any accepted batch survives an encode→decode round trip bit-exactly.
func FuzzDecodeFrame(f *testing.F) {
	// Seeds from real encoder output: numeric, symbolic with definitions,
	// a continuation frame reusing the symbol table, ack, and error frames.
	var enc Encoder
	numeric, _ := enc.EncodeBatch(7, "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		[]temporal.Event{
			{From: 1, To: 2, T: 100, F: 3.5},
			{From: 2, To: 3, T: 140, F: 1},
			{From: 1, To: 3, T: 140, F: 0.125},
		})
	f.Add(append([]byte(nil), numeric...))
	var symEnc Encoder
	symbolic, _ := symEnc.EncodeLabeledBatch(1, "", []LabeledEvent{
		{From: "alice", To: "bob", T: 10, F: 5},
		{From: "bob", To: "carol", T: 11, F: 6},
	})
	f.Add(append([]byte(nil), symbolic...))
	cont, _ := symEnc.EncodeLabeledBatch(2, "", []LabeledEvent{
		{From: "carol", To: "dave", T: 12, F: 7},
	})
	f.Add(append(append([]byte(nil), symbolic...), cont...))
	f.Add(AppendAckFrame(nil, Ack{Seq: 9, Ingested: 3, Watermark: 140, Detections: 1, Trace: "abc"}))
	f.Add(AppendErrorFrame(nil, CodeBehindFrontier, "behind frontier"))

	// Truncations, bit flips, and varint abuse.
	f.Add(append([]byte(nil), numeric[:headerSize+2]...))
	f.Add(append([]byte(nil), numeric[:len(numeric)-1]...))
	flipped := append([]byte(nil), numeric...)
	flipped[headerSize+1] ^= 0x80
	f.Add(flipped)
	// Oversized varint image: ten 0x80 continuation bytes where the event
	// count should be.
	f.Add([]byte{'F', 'M', Version, FrameBatch, 12, 0, 0, 0,
		0, 0, 0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0, 0, 0, 0, 0})
	// Huge declared length with no payload behind it.
	f.Add([]byte{'F', 'M', Version, FrameBatch, 0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		resolved := temporal.NewInterner()
		dec := NewDecoder(bytes.NewReader(data))
		dec.MaxFrame = 1 << 20
		dec.Resolve = func(label []byte) (temporal.NodeID, error) {
			return resolved.ID(string(label)), nil
		}
		// Decode every frame in the image (persistent connections carry
		// several per stream).
		for {
			fr, err := dec.Next()
			if err != nil {
				// Reject ⇒ zero events applied: the decoder must not hand
				// out an event slice for a frame that failed validation.
				if _, err := dec.Events(); err == nil {
					t.Fatal("Events succeeded after Next rejected the frame")
				}
				return
			}
			switch fr.Type {
			case FrameBatch:
				evs, err := dec.Events()
				if err != nil {
					return
				}
				if len(evs) != fr.Count {
					t.Fatalf("decoded %d events, preamble declared %d", len(evs), fr.Count)
				}
				checkRoundTrip(t, fr, evs)
			case FrameAck:
				if _, err := dec.Ack(); err != nil {
					return
				}
			case FrameError:
				if _, err := dec.RemoteErr(); err != nil {
					return
				}
			}
		}
	})
}

// checkRoundTrip re-encodes an accepted batch in numeric mode and checks
// the decode is bit-exact (floats compared by bits: NaN payloads must
// survive).
func checkRoundTrip(t *testing.T, fr Frame, evs []temporal.Event) {
	t.Helper()
	var enc Encoder
	frame, err := enc.EncodeBatch(fr.Seq, fr.Traceparent, evs)
	if err != nil {
		t.Fatalf("re-encoding accepted batch: %v", err)
	}
	dec := NewDecoder(bytes.NewReader(frame))
	fr2, err := dec.Next()
	if err != nil {
		t.Fatalf("round-trip Next: %v", err)
	}
	if fr2.Seq != fr.Seq || fr2.Traceparent != fr.Traceparent {
		t.Fatalf("round-trip trailer: seq %d/%d tp %q/%q", fr2.Seq, fr.Seq, fr2.Traceparent, fr.Traceparent)
	}
	got, err := dec.Events()
	if err != nil {
		t.Fatalf("round-trip Events: %v", err)
	}
	if len(got) != len(evs) {
		t.Fatalf("round-trip length %d, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i].From != evs[i].From || got[i].To != evs[i].To || got[i].T != evs[i].T ||
			math.Float64bits(got[i].F) != math.Float64bits(evs[i].F) {
			t.Fatalf("round-trip event %d: %+v != %+v", i, got[i], evs[i])
		}
	}
}
