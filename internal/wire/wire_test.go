package wire

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"flowmotif/internal/temporal"
)

func decodeOne(t *testing.T, d *Decoder, frame []byte, r *bytes.Reader) (Frame, []temporal.Event) {
	t.Helper()
	r.Reset(frame)
	f, err := d.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if f.Type != FrameBatch {
		t.Fatalf("frame type = %#x, want batch", f.Type)
	}
	evs, err := d.Events()
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	return f, evs
}

func randomEvents(rng *rand.Rand, n int) []temporal.Event {
	evs := make([]temporal.Event, n)
	t := rng.Int63n(1 << 40)
	for i := range evs {
		t += rng.Int63n(100)
		evs[i] = temporal.Event{
			From: temporal.NodeID(rng.Intn(1 << 20)),
			To:   temporal.NodeID(rng.Intn(1 << 20)),
			T:    t,
			F:    float64(rng.Intn(1000)) + 0.25,
		}
	}
	return evs
}

func TestNumericRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var enc Encoder
	r := bytes.NewReader(nil)
	dec := NewDecoder(r)
	for trial := 0; trial < 20; trial++ {
		want := randomEvents(rng, rng.Intn(200))
		frame, err := enc.EncodeBatch(int64(trial+1), "00-abc-def-01", want)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		f, got := decodeOne(t, dec, frame, r)
		if f.Seq != int64(trial+1) || f.Traceparent != "00-abc-def-01" {
			t.Fatalf("trailer mismatch: seq=%d tp=%q", f.Seq, f.Traceparent)
		}
		if len(got) != len(want) {
			t.Fatalf("len = %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
			}
		}
	}
}

func TestEncodeSortsUnorderedBatch(t *testing.T) {
	in := []temporal.Event{
		{From: 1, To: 2, T: 50, F: 1},
		{From: 3, To: 4, T: 10, F: 2},
		{From: 5, To: 6, T: 50, F: 3}, // equal-T: stable order after the first T=50
	}
	want := make([]temporal.Event, len(in))
	copy(want, in)
	sort.SliceStable(want, func(i, j int) bool { return want[i].T < want[j].T })
	var enc Encoder
	frame, err := enc.EncodeBatch(0, "", in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	r := bytes.NewReader(nil)
	dec := NewDecoder(r)
	_, got := decodeOne(t, dec, frame, r)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v (stable sort expected)", i, got[i], want[i])
		}
	}
	if in[0].T != 50 {
		t.Fatalf("input batch mutated by encoder")
	}
}

func TestSymbolicRoundTripIncrementalDefs(t *testing.T) {
	resolved := temporal.NewInterner()
	var enc Encoder
	r := bytes.NewReader(nil)
	dec := NewDecoder(r)
	dec.Resolve = func(label []byte) (temporal.NodeID, error) {
		return resolved.ID(string(label)), nil
	}

	frame, err := enc.EncodeLabeledBatch(1, "", []LabeledEvent{
		{From: "alice", To: "bob", T: 1, F: 5},
		{From: "bob", To: "carol", T: 2, F: 7},
	})
	if err != nil {
		t.Fatalf("encode 1: %v", err)
	}
	_, got := decodeOne(t, dec, frame, r)
	if dec.SymbolTableLen() != 3 {
		t.Fatalf("symbol table = %d entries, want 3", dec.SymbolTableLen())
	}
	a, _ := resolved.Lookup("alice")
	b, _ := resolved.Lookup("bob")
	c, _ := resolved.Lookup("carol")
	if got[0].From != a || got[0].To != b || got[1].From != b || got[1].To != c {
		t.Fatalf("resolved ids mismatch: %+v", got)
	}

	// Second frame on the same connection: only the new label is defined.
	frame, err = enc.EncodeLabeledBatch(2, "", []LabeledEvent{
		{From: "carol", To: "dave", T: 3, F: 9},
	})
	if err != nil {
		t.Fatalf("encode 2: %v", err)
	}
	_, got = decodeOne(t, dec, frame, r)
	if dec.SymbolTableLen() != 4 {
		t.Fatalf("symbol table = %d entries after frame 2, want 4", dec.SymbolTableLen())
	}
	d4, _ := resolved.Lookup("dave")
	if got[0].From != c || got[0].To != d4 {
		t.Fatalf("resolved ids mismatch in frame 2: %+v", got)
	}
}

func TestAckAndErrorFrames(t *testing.T) {
	ack := Ack{Seq: 42, Ingested: 512, Watermark: -7, Detections: 3, Dup: true, Trace: "0af7651916cd43dd8448eb211c80319c"}
	frame := AppendAckFrame(nil, ack)
	r := bytes.NewReader(frame)
	dec := NewDecoder(r)
	f, err := dec.Next()
	if err != nil || f.Type != FrameAck {
		t.Fatalf("Next: %v type=%#x", err, f.Type)
	}
	got, err := dec.Ack()
	if err != nil {
		t.Fatalf("Ack: %v", err)
	}
	if got != ack {
		t.Fatalf("ack = %+v, want %+v", got, ack)
	}

	frame = AppendErrorFrame(nil, CodeBehindFrontier, "behind frontier")
	r.Reset(frame)
	f, err = dec.Next()
	if err != nil || f.Type != FrameError {
		t.Fatalf("Next: %v type=%#x", err, f.Type)
	}
	re, err := dec.RemoteErr()
	if err != nil {
		t.Fatalf("RemoteErr: %v", err)
	}
	if re.Code != CodeBehindFrontier || re.Msg != "behind frontier" {
		t.Fatalf("remote error = %+v", re)
	}
}

func TestDecodeRejections(t *testing.T) {
	var enc Encoder
	good, err := enc.EncodeBatch(1, "tp", randomEvents(rand.New(rand.NewSource(1)), 16))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		f(b)
		return b
	}
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"bad magic", mut(func(b []byte) { b[0] = 'X' }), ErrBadMagic},
		{"bad version", mut(func(b []byte) { b[2] = 99 }), ErrBadVersion},
		{"payload bit flip", mut(func(b []byte) { b[headerSize+3] ^= 0x40 }), ErrChecksum},
		{"crc bit flip", mut(func(b []byte) { b[len(b)-1] ^= 1 }), ErrChecksum},
		{"unknown type", mut(func(b []byte) { b[3] = 0x7f }), ErrMalformed},
	}
	for _, tc := range cases {
		r := bytes.NewReader(tc.frame)
		dec := NewDecoder(r)
		_, err := dec.Next()
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		if _, err := dec.Events(); err == nil {
			t.Errorf("%s: Events succeeded after rejected frame", tc.name)
		}
	}

	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut < len(good); cut += 7 {
			r := bytes.NewReader(good[:cut])
			dec := NewDecoder(r)
			if _, err := dec.Next(); err == nil {
				t.Fatalf("truncated at %d bytes accepted", cut)
			}
		}
	})

	t.Run("oversized", func(t *testing.T) {
		r := bytes.NewReader(good)
		dec := NewDecoder(r)
		dec.MaxFrame = 8
		if _, err := dec.Next(); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("err = %v, want ErrFrameTooLarge", err)
		}
	})

	t.Run("symbolic without resolver", func(t *testing.T) {
		var enc Encoder
		frame, err := enc.EncodeLabeledBatch(1, "", []LabeledEvent{{From: "a", To: "b", T: 1, F: 1}})
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		dec := NewDecoder(bytes.NewReader(frame))
		if _, err := dec.Next(); !errors.Is(err, ErrMalformed) {
			t.Fatalf("err = %v, want ErrMalformed", err)
		}
	})
}

func TestNegativeNodeIDRejectedAtEncode(t *testing.T) {
	var enc Encoder
	if _, err := enc.EncodeBatch(0, "", []temporal.Event{{From: -1, To: 2, T: 1, F: 1}}); err == nil {
		t.Fatal("negative node id accepted")
	}
	if _, err := enc.EncodeBatch(-1, "", nil); err == nil {
		t.Fatal("negative seq accepted")
	}
}

func TestExtremeValuesRoundTrip(t *testing.T) {
	want := []temporal.Event{
		{From: 0, To: math.MaxInt32, T: math.MinInt64 / 2, F: math.Inf(1)},
		{From: math.MaxInt32, To: 0, T: 0, F: -0.0},
		{From: 1, To: 1, T: math.MaxInt64/2 - 1, F: math.SmallestNonzeroFloat64},
	}
	var enc Encoder
	frame, err := enc.EncodeBatch(math.MaxInt64, "", want)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	r := bytes.NewReader(nil)
	dec := NewDecoder(r)
	f, got := decodeOne(t, dec, frame, r)
	if f.Seq != math.MaxInt64 {
		t.Fatalf("seq = %d", f.Seq)
	}
	for i := range want {
		if math.Float64bits(got[i].F) != math.Float64bits(want[i].F) || got[i].T != want[i].T ||
			got[i].From != want[i].From || got[i].To != want[i].To {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestDecodeSteadyStateZeroAlloc is the alloc contract the noalloc flowvet
// annotation encodes: once the decoder's buffers have grown, decoding a
// numeric frame (Next + Events) allocates nothing.
func TestDecodeSteadyStateZeroAlloc(t *testing.T) {
	var enc Encoder
	frame, err := enc.EncodeBatch(1, "", randomEvents(rand.New(rand.NewSource(3)), 512))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	r := bytes.NewReader(frame)
	dec := NewDecoder(r)
	decode := func() {
		r.Reset(frame)
		if _, err := dec.Next(); err != nil {
			t.Fatalf("Next: %v", err)
		}
		if _, err := dec.Events(); err != nil {
			t.Fatalf("Events: %v", err)
		}
	}
	decode() // warm the recycled buffers
	if avg := testing.AllocsPerRun(50, decode); avg != 0 {
		t.Fatalf("steady-state decode allocates %.1f objects per frame, want 0", avg)
	}
}

// BenchmarkDecodeEvents measures the steady-state binary decode path and
// asserts the zero-allocs/op contract from the issue's acceptance
// criteria before timing.
func BenchmarkDecodeEvents(b *testing.B) {
	var enc Encoder
	events := randomEvents(rand.New(rand.NewSource(3)), 512)
	frame, err := enc.EncodeBatch(1, "", events)
	if err != nil {
		b.Fatalf("encode: %v", err)
	}
	frame = append([]byte(nil), frame...)
	r := bytes.NewReader(frame)
	dec := NewDecoder(r)
	decode := func() {
		r.Reset(frame)
		if _, err := dec.Next(); err != nil {
			b.Fatalf("Next: %v", err)
		}
		if _, err := dec.Events(); err != nil {
			b.Fatalf("Events: %v", err)
		}
	}
	decode()
	if avg := testing.AllocsPerRun(50, decode); avg != 0 {
		b.Fatalf("steady-state decode allocates %.1f objects per frame, want 0", avg)
	}
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decode()
	}
}
