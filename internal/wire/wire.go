// Package wire implements the length-prefixed binary batch protocol the
// flowmotif daemon serves next to its JSON API (DESIGN.md §16). A frame is
//
//	'F' 'M' version type  length(uint32 LE)   payload…   crc32(uint32 LE)
//
// where the CRC (IEEE) covers the payload only. Batch payloads carry the
// cluster idempotency/tracing trailer (seq + traceparent, compatible with
// cluster.Batch), an optional run of symbol-definition records that extend
// the connection's node-label table, and a run of events encoded as
// varints: node ids (raw temporal.NodeIDs or connection-local symbol ids),
// delta-encoded non-decreasing timestamps, and byte-reversed float bits
// for flow values (small mantissas ⇒ short varints).
//
// The Decoder recycles its payload and event buffers across frames, so the
// steady-state decode path performs zero per-event allocations (enforced
// by the flowvet noalloc annotation on Events).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/bits"
	"sort"

	"flowmotif/internal/temporal"
)

// Frame header: magic "FM", version byte, type byte, payload length.
const (
	magic0  = 'F'
	magic1  = 'M'
	Version = 1

	headerSize = 8 // magic(2) + version(1) + type(1) + length(4, LE)
	crcSize    = 4
)

// Frame types.
const (
	FrameBatch = 0x01 // client → server: event batch
	FrameAck   = 0x02 // server → client: ingest acknowledgement
	FrameError = 0x03 // server → client: typed rejection
)

// Batch payload flag bits.
const (
	flagSymbolic = 1 << 0 // node ids are connection-local symbol ids
)

// Ack payload flag bits.
const (
	ackFlagDup = 1 << 0 // duplicate seq: ack replays the recorded answer
)

// DefaultMaxFrameBytes bounds accepted payloads when the decoder's owner
// does not set a limit; it matches the HTTP API's default body cap.
const DefaultMaxFrameBytes = 32 << 20

// ErrorCode classifies server-side rejections carried by an error frame.
// Codes mirror the JSON API's status taxonomy so both transports expose
// the same contract.
type ErrorCode uint32

const (
	// CodeBadFrame: the frame violated the protocol grammar (bad magic,
	// version, CRC, or malformed payload). The server closes the
	// connection after sending it — framing is unrecoverable.
	CodeBadFrame ErrorCode = 1
	// CodeBehindFrontier: the batch was rejected by the engine's order
	// contract (HTTP 409 equivalent). The connection stays open.
	CodeBehindFrontier ErrorCode = 2
	// CodeFrameTooLarge: the declared payload length exceeds the server's
	// limit (HTTP 413 equivalent). Sent without reading the payload; the
	// server closes the connection.
	CodeFrameTooLarge ErrorCode = 3
	// CodeInternal: WAL poisoning, fail-stop, or another server-side
	// failure (HTTP 5xx equivalent). The connection stays open.
	CodeInternal ErrorCode = 4
	// CodeRejected: the batch was semantically invalid (bad node id,
	// non-finite flow, …) — HTTP 400 equivalent. Connection stays open.
	CodeRejected ErrorCode = 5
)

// Decode errors.
var (
	ErrBadMagic      = errors.New("wire: bad frame magic")
	ErrBadVersion    = errors.New("wire: unsupported protocol version")
	ErrChecksum      = errors.New("wire: frame checksum mismatch")
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	ErrMalformed     = errors.New("wire: malformed frame payload")
	errNotBatch      = errors.New("wire: Events called without a pending batch frame")
)

// RemoteError is a server rejection decoded from an error frame.
type RemoteError struct {
	Code ErrorCode
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: remote error %d: %s", e.Code, e.Msg)
}

// Ack is the binary equivalent of the JSON ingest acknowledgement: the
// same fields HTTPMember reads off a 200 response.
type Ack struct {
	Seq        int64
	Ingested   int64
	Watermark  int64
	Detections int64
	Dup        bool
	Trace      string
}

// LabeledEvent is an event whose endpoints are external string labels; the
// encoder interns them into the connection's symbol table (emitting
// inline definition records on first sight) so repeats cost one varint.
type LabeledEvent struct {
	From, To string
	T        int64
	F        float64
}

// appendUvarint, appendVarint: binary.AppendUvarint over a recycled
// buffer; amortized zero allocation once the buffer has grown.

// floatBits maps a float64 to its varint-friendly representation: byte
// reversal moves the exponent/short-mantissa bytes to the low end, so
// common flow values (small integers, few significant digits) encode in
// 2–4 bytes instead of 9.
func floatBits(f float64) uint64 { return bits.ReverseBytes64(math.Float64bits(f)) }

func floatFromBits(u uint64) float64 { return math.Float64frombits(bits.ReverseBytes64(u)) }

// Encoder builds batch frames into a recycled buffer. An Encoder is bound
// to one connection: its symbol table must advance in lockstep with the
// peer decoder's, so after a reconnect use a fresh Encoder (or Reset).
// Not safe for concurrent use.
type Encoder struct {
	buf      []byte
	syms     *temporal.Interner
	defined  int // symbols the peer has seen definitions for
	scratch  []temporal.Event
	scratchL []LabeledEvent
}

// Reset clears the connection-local symbol state (the buffer is kept).
func (e *Encoder) Reset() {
	e.syms = nil
	e.defined = 0
}

// EncodeBatch builds a numeric-mode batch frame: node ids travel as raw
// temporal.NodeID varints with no symbol table — the mode replication
// uses, where both sides already share the coordinator's id space.
// Events are sorted by timestamp (stable, matching the JSON handler's
// pre-sort) into an internal scratch slice when not already in order.
// The returned slice is valid until the next call.
func (e *Encoder) EncodeBatch(seq int64, traceparent string, evs []temporal.Event) ([]byte, error) {
	evs = e.sorted(evs)
	e.begin(FrameBatch)
	e.buf = binary.AppendUvarint(e.buf, 0) // flags: numeric mode
	if err := e.trailer(seq, traceparent); err != nil {
		return nil, err
	}
	e.buf = binary.AppendUvarint(e.buf, 0) // no symbol definitions
	e.buf = binary.AppendUvarint(e.buf, uint64(len(evs)))
	prev := int64(0)
	for i := range evs {
		ev := &evs[i]
		if ev.From < 0 || ev.To < 0 {
			return nil, fmt.Errorf("wire: negative node id in event %d", i)
		}
		e.buf = binary.AppendUvarint(e.buf, uint64(ev.From))
		e.buf = binary.AppendUvarint(e.buf, uint64(ev.To))
		prev = e.putTime(i, ev.T, prev)
		e.buf = binary.AppendUvarint(e.buf, floatBits(ev.F))
	}
	return e.finish(), nil
}

// EncodeLabeledBatch builds a symbolic-mode batch frame: endpoints are
// connection-local symbol ids, with definition records prepended for
// labels the peer has not seen on this connection yet.
func (e *Encoder) EncodeLabeledBatch(seq int64, traceparent string, evs []LabeledEvent) ([]byte, error) {
	if e.syms == nil {
		e.syms = temporal.NewInterner()
	}
	evs = e.sortedLabeled(evs)
	// Intern first so new labels take dense ids in order of first use;
	// the definition run then covers ids [defined, syms.Len()).
	for i := range evs {
		e.syms.ID(evs[i].From)
		e.syms.ID(evs[i].To)
	}
	e.begin(FrameBatch)
	e.buf = binary.AppendUvarint(e.buf, flagSymbolic)
	if err := e.trailer(seq, traceparent); err != nil {
		return nil, err
	}
	newDefs := e.syms.Len() - e.defined
	e.buf = binary.AppendUvarint(e.buf, uint64(newDefs))
	for id := e.defined; id < e.syms.Len(); id++ {
		label := e.syms.Label(temporal.NodeID(id))
		e.buf = binary.AppendUvarint(e.buf, uint64(len(label)))
		e.buf = append(e.buf, label...)
	}
	e.buf = binary.AppendUvarint(e.buf, uint64(len(evs)))
	prev := int64(0)
	for i := range evs {
		ev := &evs[i]
		from, _ := e.syms.Lookup(ev.From)
		to, _ := e.syms.Lookup(ev.To)
		e.buf = binary.AppendUvarint(e.buf, uint64(from))
		e.buf = binary.AppendUvarint(e.buf, uint64(to))
		prev = e.putTime(i, ev.T, prev)
		e.buf = binary.AppendUvarint(e.buf, floatBits(ev.F))
	}
	frame := e.finish()
	e.defined = e.syms.Len()
	return frame, nil
}

// AppendAckFrame appends an encoded ack frame to dst.
func AppendAckFrame(dst []byte, a Ack) []byte {
	start, dst := beginFrame(dst, FrameAck)
	var flags uint64
	if a.Dup {
		flags |= ackFlagDup
	}
	dst = binary.AppendUvarint(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(a.Seq))
	dst = binary.AppendUvarint(dst, uint64(a.Ingested))
	dst = binary.AppendVarint(dst, a.Watermark)
	dst = binary.AppendUvarint(dst, uint64(a.Detections))
	dst = binary.AppendUvarint(dst, uint64(len(a.Trace)))
	dst = append(dst, a.Trace...)
	return finishFrame(dst, start)
}

// AppendErrorFrame appends an encoded error frame to dst.
func AppendErrorFrame(dst []byte, code ErrorCode, msg string) []byte {
	start, dst := beginFrame(dst, FrameError)
	dst = binary.AppendUvarint(dst, uint64(code))
	dst = binary.AppendUvarint(dst, uint64(len(msg)))
	dst = append(dst, msg...)
	return finishFrame(dst, start)
}

func (e *Encoder) begin(ftype byte) {
	_, e.buf = beginFrame(e.buf[:0], ftype)
}

func (e *Encoder) finish() []byte {
	e.buf = finishFrame(e.buf, 0)
	return e.buf
}

func (e *Encoder) trailer(seq int64, traceparent string) error {
	if seq < 0 {
		return fmt.Errorf("wire: negative batch seq %d", seq)
	}
	e.buf = binary.AppendUvarint(e.buf, uint64(seq))
	e.buf = binary.AppendUvarint(e.buf, uint64(len(traceparent)))
	e.buf = append(e.buf, traceparent...)
	return nil
}

// putTime appends event i's timestamp: the first as an absolute zigzag
// varint, the rest as non-negative deltas off the previous one (the
// encoder sorted the batch, so deltas never go negative).
func (e *Encoder) putTime(i int, t, prev int64) int64 {
	if i == 0 {
		e.buf = binary.AppendVarint(e.buf, t)
	} else {
		e.buf = binary.AppendUvarint(e.buf, uint64(t-prev))
	}
	return t
}

func (e *Encoder) sorted(evs []temporal.Event) []temporal.Event {
	if sort.SliceIsSorted(evs, func(i, j int) bool { return evs[i].T < evs[j].T }) {
		return evs
	}
	e.scratch = append(e.scratch[:0], evs...)
	sort.SliceStable(e.scratch, func(i, j int) bool { return e.scratch[i].T < e.scratch[j].T })
	return e.scratch
}

func (e *Encoder) sortedLabeled(evs []LabeledEvent) []LabeledEvent {
	if sort.SliceIsSorted(evs, func(i, j int) bool { return evs[i].T < evs[j].T }) {
		return evs
	}
	e.scratchL = append(e.scratchL[:0], evs...)
	sort.SliceStable(e.scratchL, func(i, j int) bool { return e.scratchL[i].T < e.scratchL[j].T })
	return e.scratchL
}

// beginFrame appends a frame header (length backfilled by finishFrame)
// and returns the header's offset in dst.
func beginFrame(dst []byte, ftype byte) (int, []byte) {
	start := len(dst)
	dst = append(dst, magic0, magic1, Version, ftype, 0, 0, 0, 0)
	return start, dst
}

// finishFrame backfills the payload length for the frame starting at
// start and appends the payload CRC.
func finishFrame(dst []byte, start int) []byte {
	payload := dst[start+headerSize:]
	binary.LittleEndian.PutUint32(dst[start+4:], uint32(len(payload)))
	var crc [crcSize]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	return append(dst, crc[:]...)
}

// Frame is one validated frame's preamble. For batch frames the seq,
// traceparent, flags, and event count are parsed eagerly (and any symbol
// definitions applied to the connection table); the per-event run is
// decoded on demand by Events so callers can meter the stages separately.
type Frame struct {
	Type        byte
	Seq         int64
	Traceparent string
	Count       int // events in a batch frame
	PayloadLen  int
	Symbolic    bool
}

// Decoder reads frames off an io.Reader into recycled buffers. One
// Decoder serves one connection (it owns the connection's symbol table).
// Not safe for concurrent use.
type Decoder struct {
	// MaxFrame bounds accepted payload lengths; zero means
	// DefaultMaxFrameBytes. Oversized frames fail with ErrFrameTooLarge
	// before their payload is read.
	MaxFrame int
	// Resolve maps a symbol-definition label to the engine's node id
	// space (typically a shared temporal.Interner). Nil rejects symbolic
	// frames.
	Resolve func(label []byte) (temporal.NodeID, error)

	r      io.Reader
	hdr    [headerSize + crcSize]byte
	buf    []byte
	events []temporal.Event
	table  []temporal.NodeID // connection-local symbol id → engine node id

	// pending batch state set by Next, consumed by Events.
	ftype    byte
	payload  []byte // alias of buf
	off      int    // offset of the event run (batch) / payload body (ack, error)
	count    int
	symbolic bool
}

// NewDecoder returns a decoder reading frames from r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

func (d *Decoder) maxFrame() int {
	if d.MaxFrame > 0 {
		return d.MaxFrame
	}
	return DefaultMaxFrameBytes
}

// Next reads and validates one frame (magic, version, size limit, CRC)
// and parses its preamble. On ErrFrameTooLarge the payload has not been
// consumed and the connection cannot be resynced; the caller should
// close it. Batch event records are left for Events.
//
//flowmotif:hotpath
func (d *Decoder) Next() (Frame, error) {
	d.ftype = 0
	if _, err := io.ReadFull(d.r, d.hdr[:headerSize]); err != nil {
		return Frame{}, err
	}
	if d.hdr[0] != magic0 || d.hdr[1] != magic1 {
		return Frame{}, ErrBadMagic
	}
	if d.hdr[2] != Version {
		return Frame{}, ErrBadVersion
	}
	ftype := d.hdr[3]
	n := int(binary.LittleEndian.Uint32(d.hdr[4:]))
	if n > d.maxFrame() {
		return Frame{}, ErrFrameTooLarge
	}
	if cap(d.buf) < n+crcSize {
		d.buf = make([]byte, n+crcSize)
	}
	d.buf = d.buf[:n+crcSize]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	payload := d.buf[:n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(d.buf[n:]) {
		return Frame{}, ErrChecksum
	}
	d.payload = payload
	d.off = 0
	f := Frame{Type: ftype, PayloadLen: n}
	switch ftype {
	case FrameBatch:
		if err := d.parseBatchPreamble(&f); err != nil {
			return Frame{}, err
		}
		d.ftype = FrameBatch
	case FrameAck, FrameError:
		d.ftype = ftype
	default:
		return Frame{}, fmt.Errorf("%w: unknown frame type 0x%02x", ErrMalformed, ftype)
	}
	return f, nil
}

// parseBatchPreamble parses flags, seq, traceparent, and the symbol
// definition run (growing the connection table via Resolve), and bounds-
// checks the event count against the remaining payload. It pre-grows the
// recycled event buffer so Events itself never allocates.
func (d *Decoder) parseBatchPreamble(f *Frame) error {
	flags, err := d.uvarint()
	if err != nil {
		return err
	}
	if flags&^uint64(flagSymbolic) != 0 {
		return fmt.Errorf("%w: unknown batch flags 0x%x", ErrMalformed, flags)
	}
	d.symbolic = flags&flagSymbolic != 0
	f.Symbolic = d.symbolic
	seq, err := d.uvarint()
	if err != nil {
		return err
	}
	if seq > math.MaxInt64 {
		return fmt.Errorf("%w: batch seq overflows int64", ErrMalformed)
	}
	f.Seq = int64(seq)
	tp, err := d.bytes()
	if err != nil {
		return err
	}
	f.Traceparent = string(tp)
	defs, err := d.uvarint()
	if err != nil {
		return err
	}
	if defs > uint64(len(d.payload)-d.off) {
		return fmt.Errorf("%w: symbol definition count exceeds payload", ErrMalformed)
	}
	if defs > 0 && !d.symbolic {
		return fmt.Errorf("%w: symbol definitions in numeric-mode batch", ErrMalformed)
	}
	for i := uint64(0); i < defs; i++ {
		label, err := d.bytes()
		if err != nil {
			return err
		}
		if d.Resolve == nil {
			return fmt.Errorf("%w: symbolic batch but no label resolver", ErrMalformed)
		}
		id, err := d.Resolve(label)
		if err != nil {
			return fmt.Errorf("%w: resolving label: %v", ErrMalformed, err)
		}
		d.table = append(d.table, id)
	}
	count, err := d.uvarint()
	if err != nil {
		return err
	}
	// Every event is at least 4 bytes (one byte per varint field), so a
	// forged count cannot make us allocate beyond ~payload/4 entries.
	if count > uint64(len(d.payload)-d.off)/4 {
		return fmt.Errorf("%w: event count exceeds payload", ErrMalformed)
	}
	d.count = int(count)
	f.Count = d.count
	if cap(d.events) < d.count {
		d.events = make([]temporal.Event, d.count)
	}
	return nil
}

// Events decodes the pending batch frame's event run into the decoder's
// recycled buffer; the slice is valid until the next call to Next. The
// protocol guarantees non-decreasing timestamps (rejected otherwise), so
// the result is already in the engine's required ingest order.
//
//flowmotif:hotpath noalloc
func (d *Decoder) Events() ([]temporal.Event, error) {
	if d.ftype != FrameBatch {
		return nil, errNotBatch
	}
	evs := d.events[:d.count]
	p := d.payload
	off := d.off
	var prev int64
	for i := 0; i < d.count; i++ {
		from, n := binary.Uvarint(p[off:])
		if n <= 0 {
			return nil, ErrMalformed
		}
		off += n
		to, n := binary.Uvarint(p[off:])
		if n <= 0 {
			return nil, ErrMalformed
		}
		off += n
		var t int64
		if i == 0 {
			v, n := binary.Varint(p[off:])
			if n <= 0 {
				return nil, ErrMalformed
			}
			off += n
			t = v
		} else {
			dt, n := binary.Uvarint(p[off:])
			if n <= 0 {
				return nil, ErrMalformed
			}
			off += n
			if dt > uint64(math.MaxInt64-prev) {
				return nil, ErrMalformed
			}
			t = prev + int64(dt)
		}
		prev = t
		fb, n := binary.Uvarint(p[off:])
		if n <= 0 {
			return nil, ErrMalformed
		}
		off += n
		ev := &evs[i]
		if d.symbolic {
			if from >= uint64(len(d.table)) || to >= uint64(len(d.table)) {
				return nil, ErrMalformed
			}
			ev.From = d.table[from]
			ev.To = d.table[to]
		} else {
			if from > math.MaxInt32 || to > math.MaxInt32 {
				return nil, ErrMalformed
			}
			ev.From = temporal.NodeID(from)
			ev.To = temporal.NodeID(to)
		}
		ev.T = t
		ev.F = floatFromBits(fb)
	}
	if off != len(p) {
		return nil, ErrMalformed
	}
	d.ftype = 0
	return evs, nil
}

// Ack parses the pending ack frame.
func (d *Decoder) Ack() (Ack, error) {
	if d.ftype != FrameAck {
		return Ack{}, fmt.Errorf("%w: Ack called without a pending ack frame", ErrMalformed)
	}
	d.ftype = 0
	var a Ack
	flags, err := d.uvarint()
	if err != nil {
		return Ack{}, err
	}
	a.Dup = flags&ackFlagDup != 0
	seq, err := d.uvarint()
	if err != nil || seq > math.MaxInt64 {
		return Ack{}, ErrMalformed
	}
	a.Seq = int64(seq)
	ing, err := d.uvarint()
	if err != nil || ing > math.MaxInt64 {
		return Ack{}, ErrMalformed
	}
	a.Ingested = int64(ing)
	w, err := d.varint()
	if err != nil {
		return Ack{}, err
	}
	a.Watermark = w
	det, err := d.uvarint()
	if err != nil || det > math.MaxInt64 {
		return Ack{}, ErrMalformed
	}
	a.Detections = int64(det)
	tr, err := d.bytes()
	if err != nil {
		return Ack{}, err
	}
	a.Trace = string(tr)
	if d.off != len(d.payload) {
		return Ack{}, ErrMalformed
	}
	return a, nil
}

// RemoteErr parses the pending error frame.
func (d *Decoder) RemoteErr() (*RemoteError, error) {
	if d.ftype != FrameError {
		return nil, fmt.Errorf("%w: RemoteErr called without a pending error frame", ErrMalformed)
	}
	d.ftype = 0
	code, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	msg, err := d.bytes()
	if err != nil {
		return nil, err
	}
	if d.off != len(d.payload) {
		return nil, ErrMalformed
	}
	return &RemoteError{Code: ErrorCode(code), Msg: string(msg)}, nil
}

// SymbolTableLen reports the size of the connection's symbol table
// (testing aid).
func (d *Decoder) SymbolTableLen() int { return len(d.table) }

func (d *Decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.payload[d.off:])
	if n <= 0 {
		return 0, ErrMalformed
	}
	d.off += n
	return v, nil
}

func (d *Decoder) varint() (int64, error) {
	v, n := binary.Varint(d.payload[d.off:])
	if n <= 0 {
		return 0, ErrMalformed
	}
	d.off += n
	return v, nil
}

// bytes parses a length-prefixed byte run and returns a view into the
// recycled payload buffer (valid until the next Next call).
func (d *Decoder) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.payload)-d.off) {
		return nil, fmt.Errorf("%w: byte run exceeds payload", ErrMalformed)
	}
	b := d.payload[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}
