package wire

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"flowmotif/internal/temporal"
)

// DefaultCallTimeout bounds one Ingest round trip (write frame + read
// ack) when the caller does not choose a timeout; it matches the HTTP
// member transport's client timeout.
const DefaultCallTimeout = 30 * time.Second

// Client is a persistent-connection client for the binary batch
// protocol. One Client owns one connection and its encoder/decoder state
// (symbol table); calls are serialized by an internal mutex-free
// contract: the caller must not invoke Ingest concurrently (the cluster
// replicator is a single goroutine per member, and HTTPMember guards its
// client with a mutex).
//
// Any transport error leaves the connection in an unusable state: the
// Client closes it and every later call fails. Callers should discard
// the Client and redial; symbol-table state is per-connection, so a
// fresh Client restarts the interning handshake from scratch.
type Client struct {
	conn    net.Conn
	dec     *Decoder
	enc     Encoder
	timeout time.Duration
	broken  bool
}

// Dial connects to a wire listener. A non-positive timeout selects
// DefaultCallTimeout for both the dial and each call.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = DefaultCallTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, timeout), nil
}

// NewClient wraps an established connection. Ownership of conn passes to
// the Client.
func NewClient(conn net.Conn, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultCallTimeout
	}
	return &Client{
		conn:    conn,
		dec:     NewDecoder(bufio.NewReaderSize(conn, 1<<16)),
		timeout: timeout,
	}
}

// Ingest sends one numeric-mode batch and waits for the acknowledgement.
// A *RemoteError return means the server rejected the batch but the
// connection remains usable; any other error breaks the connection.
func (c *Client) Ingest(seq int64, traceparent string, evs []temporal.Event) (Ack, error) {
	frame, err := c.enc.EncodeBatch(seq, traceparent, evs)
	if err != nil {
		return Ack{}, err
	}
	return c.roundTrip(frame)
}

// IngestLabeled sends one symbolic-mode batch (string endpoints interned
// into the connection symbol table) and waits for the acknowledgement.
func (c *Client) IngestLabeled(seq int64, traceparent string, evs []LabeledEvent) (Ack, error) {
	frame, err := c.enc.EncodeLabeledBatch(seq, traceparent, evs)
	if err != nil {
		return Ack{}, err
	}
	return c.roundTrip(frame)
}

func (c *Client) roundTrip(frame []byte) (Ack, error) {
	if c.broken {
		return Ack{}, fmt.Errorf("wire: connection already failed")
	}
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return Ack{}, c.fail(err)
	}
	if _, err := c.conn.Write(frame); err != nil {
		return Ack{}, c.fail(err)
	}
	f, err := c.dec.Next()
	if err != nil {
		return Ack{}, c.fail(err)
	}
	switch f.Type {
	case FrameAck:
		ack, err := c.dec.Ack()
		if err != nil {
			return Ack{}, c.fail(err)
		}
		return ack, nil
	case FrameError:
		re, err := c.dec.RemoteErr()
		if err != nil {
			return Ack{}, c.fail(err)
		}
		// Framing-level rejections are followed by a server-side close;
		// semantic rejections leave the connection usable.
		if re.Code == CodeBadFrame || re.Code == CodeFrameTooLarge {
			_ = c.fail(re)
		}
		return Ack{}, re
	default:
		return Ack{}, c.fail(fmt.Errorf("wire: unexpected frame type 0x%02x in response", f.Type))
	}
}

// fail marks the connection broken, closes it, and passes err through.
func (c *Client) fail(err error) error {
	if !c.broken {
		c.broken = true
		_ = c.conn.Close()
	}
	return err
}

// Broken reports whether a transport error has retired the connection.
func (c *Client) Broken() bool { return c.broken }

// Close tears down the connection.
func (c *Client) Close() error {
	c.broken = true
	return c.conn.Close()
}
