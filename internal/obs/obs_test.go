package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("flowmotif_test_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("flowmotif_test_gauge", "a gauge", L("k", "v"))
	g.Set(2.5)
	g.Set(-1.25)
	if got := g.Value(); got != -1.25 {
		t.Fatalf("gauge = %v, want -1.25", got)
	}
	// Idempotent re-registration returns the same instruments.
	if r.Counter("flowmotif_test_total", "") != c {
		t.Fatal("re-registration returned a different counter")
	}
	if r.Gauge("flowmotif_test_gauge", "", L("k", "v")) != g {
		t.Fatal("re-registration returned a different gauge")
	}
	// Label order must not matter for identity.
	a := r.Gauge("flowmotif_test_multi", "", L("a", "1"), L("b", "2"))
	b := r.Gauge("flowmotif_test_multi", "", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order changed series identity")
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
		r *Registry
	)
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	h.Start().End()
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil instruments returned nonzero values")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry returned non-nil instruments")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("flowmotif_test_seconds", "", []float64{1, 2, 4})
	// `le` semantics: an observation exactly on a bound lands in that
	// bound's bucket.
	h.Observe(0.5) // bucket le=1
	h.Observe(1)   // bucket le=1 (v <= bound)
	h.Observe(1.5) // bucket le=2
	h.Observe(4)   // bucket le=4
	h.Observe(9)   // +Inf
	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 0.5+1+1.5+4+9 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 10, 4)
	if b[0] != 1e-6 {
		t.Fatalf("first bound = %v", b[0])
	}
	if last := b[len(b)-1]; last < 10 {
		t.Fatalf("last bound %v < hi", last)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not increasing at %d: %v", i, b)
		}
		ratio := b[i] / b[i-1]
		step := math.Pow(10, 0.25)
		if ratio < step*0.99 || ratio > step*1.01 {
			t.Fatalf("ratio %v at %d, want ~%v", ratio, i, step)
		}
	}
}

// TestQuantileErrorBound checks the documented bound: the quantile
// estimate is within the width of the bucket holding the true quantile.
func TestQuantileErrorBound(t *testing.T) {
	bounds := ExpBuckets(1e-3, 100, 4)
	r := NewRegistry()
	h := r.Histogram("flowmotif_test_q_seconds", "", bounds)
	// A deterministic skewed distribution over [0.001, 50).
	n := 10000
	vals := make([]float64, n)
	for i := range vals {
		u := (float64(i) + 0.5) / float64(n)
		vals[i] = 0.001 + 49.999*u*u*u
		h.Observe(vals[i])
	}
	s := h.Snapshot()
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		truth := vals[int(q*float64(n))-1]
		got := s.Quantile(q)
		// Bucket holding the truth.
		i := 0
		for i < len(bounds) && bounds[i] < truth {
			i++
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := truth
		if i < len(bounds) {
			hi = bounds[i]
		}
		width := hi - lo
		if math.Abs(got-truth) > width {
			t.Fatalf("q=%v: estimate %v vs truth %v exceeds bucket width %v", q, got, truth, width)
		}
	}
	if got := s.Quantile(0); got < 0 {
		t.Fatalf("q=0 gave %v", got)
	}
	if got := s.Quantile(1); got < s.Quantile(0.99) {
		t.Fatalf("q=1 (%v) below q=0.99 (%v)", got, s.Quantile(0.99))
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	r := NewRegistry()
	h := r.Histogram("flowmotif_test_edge_seconds", "", []float64{1, 10})
	h.Observe(500) // everything in +Inf: clamp to last finite bound
	if got := h.Snapshot().Quantile(0.5); got != 10 {
		t.Fatalf("+Inf-only quantile = %v, want 10 (clamp)", got)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines; run
// under -race this doubles as the data-race check, and the final snapshot
// must account for every observation.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("flowmotif_test_conc_seconds", "", ExpBuckets(1e-6, 1, 4))
	const (
		workers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(float64(i%1000) / 1000)
			}
		}(w)
	}
	// Concurrent snapshots must be safe (and internally consistent).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s := h.Snapshot()
			var cum uint64
			for _, c := range s.Counts {
				cum += c
			}
			if cum != s.Count {
				t.Errorf("snapshot count %d != bucket sum %d", s.Count, cum)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	s := h.Snapshot()
	if s.Count != workers*perW {
		t.Fatalf("count = %d, want %d", s.Count, workers*perW)
	}
}

func TestRegistrySnapshotAndMerge(t *testing.T) {
	mk := func(watermark float64, obs ...float64) []MetricSnapshot {
		r := NewRegistry()
		r.Counter("flowmotif_events_total", "events").Add(int64(10 * watermark))
		r.Gauge("flowmotif_watermark", "wm").Set(watermark)
		h := r.Histogram("flowmotif_lag_seconds", "lag", []float64{1, 2})
		for _, v := range obs {
			h.Observe(v)
		}
		return r.Snapshot()
	}
	a := NewAccum()
	a.Add(mk(1, 0.5, 1.5), L("member", "m1"))
	a.Add(mk(3, 1.5, 5), L("member", "m2"))
	var ctr, wm int
	for _, m := range a.Snapshots() {
		switch m.Name {
		case "flowmotif_events_total":
			ctr++
			if m.Value != 40 {
				t.Fatalf("merged counter = %v, want 40", m.Value)
			}
		case "flowmotif_watermark":
			wm++
			if len(m.Labels) != 1 || m.Labels[0].Key != "member" {
				t.Fatalf("gauge labels = %v, want member label", m.Labels)
			}
		case "flowmotif_lag_seconds":
			if m.Hist == nil || m.Hist.Count != 4 {
				t.Fatalf("merged histogram = %+v, want count 4", m.Hist)
			}
			if got := m.Hist.Counts[0]; got != 1 {
				t.Fatalf("merged bucket0 = %d, want 1", got)
			}
			if got := m.Hist.Counts[2]; got != 1 {
				t.Fatalf("merged +Inf bucket = %d, want 1", got)
			}
		}
	}
	if ctr != 1 {
		t.Fatalf("counter series merged into %d rows, want 1", ctr)
	}
	if wm != 2 {
		t.Fatalf("gauge series kept %d rows, want 2 (per member)", wm)
	}
}

func TestHistogramMergeLayoutMismatch(t *testing.T) {
	a := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []uint64{1, 0, 0}, Count: 1}
	b := HistogramSnapshot{Bounds: []float64{1, 3}, Counts: []uint64{0, 1, 0}, Count: 1}
	if err := a.Merge(b); err == nil {
		t.Fatal("merge with mismatched bounds succeeded")
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	expectPanic("invalid name", func() { r.Counter("bad name", "") })
	expectPanic("invalid label", func() { r.Counter("ok_name", "", L("bad-key", "v")) })
	r.Counter("kind_clash", "")
	expectPanic("kind clash", func() { r.Gauge("kind_clash", "") })
	r.Histogram("bounds_clash", "", []float64{1, 2})
	expectPanic("bounds clash", func() { r.Histogram("bounds_clash", "", []float64{1, 3}) })
	expectPanic("unsorted bounds", func() { r.Histogram("bad_bounds", "", []float64{2, 1}) })
}

func TestSpanAndTimer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("flowmotif_test_span_seconds", "", nil)
	sp := h.Start()
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Fatalf("span duration %v", d)
	}
	if got := h.Snapshot().Count; got != 1 {
		t.Fatalf("span recorded %d observations, want 1", got)
	}
	tm := StartTimer()
	time.Sleep(time.Millisecond)
	d1 := tm.Stage(h)
	d2 := tm.Stage(h)
	if d1 <= 0 || d2 < 0 {
		t.Fatalf("stage durations %v, %v", d1, d2)
	}
	if got := h.Snapshot().Count; got != 3 {
		t.Fatalf("timer recorded %d observations, want 3", got)
	}
	var inert Timer
	if inert.Stage(h) != 0 {
		t.Fatal("zero Timer recorded a stage")
	}
}
