package obs

import (
	"math"
	"strings"
	"testing"
)

func TestFloatCounter(t *testing.T) {
	r := NewRegistry()
	c := r.FloatCounter("work_seconds_total", "h", L("sub", "a"))
	c.Add(0.25)
	c.Add(0.5)
	again := r.FloatCounter("work_seconds_total", "h", L("sub", "a"))
	again.Add(0.25)
	if got := c.Value(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("FloatCounter value = %v, want 1.0 (idempotent registration must share state)", got)
	}
	// Negative and NaN deltas are dropped: a counter is monotone.
	c.Add(-3)
	c.Add(math.NaN())
	if got := c.Value(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("FloatCounter after bad deltas = %v, want 1.0", got)
	}
	snaps := r.Snapshot()
	if len(snaps) != 1 || snaps[0].Kind != KindCounter || snaps[0].Value != c.Value() {
		t.Fatalf("snapshot = %+v, want one counter series with value %v", snaps, c.Value())
	}
	var nilC *FloatCounter
	nilC.Add(1) // must not panic
}

func TestFloatCounterIntMutualExclusion(t *testing.T) {
	r := NewRegistry()
	r.Counter("n_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic when re-registering an int counter as a FloatCounter")
		}
	}()
	r.FloatCounter("n_total", "h")
}

func TestGaugeAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight", "h")
	g.Add(1)
	g.Add(1)
	g.Add(-1)
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge after +1+1-1 = %v, want 1", got)
	}
	var nilG *Gauge
	nilG.Add(1) // must not panic
}

func TestTopAccum(t *testing.T) {
	a := NewTopAccum()
	a.Add("b", 2)
	a.Add("a", 3)
	a.Add("b", 4) // b: 6
	a.Add("c", 6) // ties with b; key order breaks it
	a.AddField("b", "emits", 5)
	a.AddField("b", "emits", 7)
	top := a.Top(2)
	if len(top) != 2 || top[0].Key != "b" || top[1].Key != "c" {
		t.Fatalf("Top(2) = %+v, want [b c] (value desc, key asc on ties)", top)
	}
	if top[0].Value != 6 || top[0].Fields["emits"] != 12 {
		t.Fatalf("entry b = %+v, want value 6, emits 12", top[0])
	}
	if all := a.Top(0); len(all) != 3 {
		t.Fatalf("Top(0) returned %d entries, want all 3", len(all))
	}
}

func TestBurnRate(t *testing.T) {
	cases := []struct {
		bad, total, target, want float64
	}{
		{0, 100, 0.99, 0},  // no bad observations: no burn
		{1, 0, 0.99, 0},    // empty window: no burn
		{1, 100, 0.99, 1},  // exactly at budget
		{5, 100, 0.99, 5},  // 5x budget
		{10, 100, 0.9, 1},  // wider budget
		{-1, 100, 0.99, 0}, // counter-reset artifact clamps to 0
	}
	for _, c := range cases {
		if got := BurnRate(c.bad, c.total, c.target); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("BurnRate(%v, %v, %v) = %v, want %v", c.bad, c.total, c.target, got, c.want)
		}
	}
	if got := BurnRate(1, 100, 1.0); !math.IsInf(got, 1) {
		t.Errorf("BurnRate with zero budget = %v, want +Inf", got)
	}
}

func TestCountAtMostAndWindowDelta(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lag", "h", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	snap := *r.Snapshot()[0].Hist
	if got := snap.CountAtMost(0.1); got != 1 {
		t.Fatalf("CountAtMost(0.1) = %d, want 1", got)
	}
	if got := snap.CountAtMost(1); got != 3 {
		t.Fatalf("CountAtMost(1) = %d, want 3", got)
	}
	// A bound between bucket edges rounds up to the next edge (the bucket
	// resolution is the error bar).
	if got := snap.CountAtMost(0.5); got != 3 {
		t.Fatalf("CountAtMost(0.5) = %d, want 3 (conservative: next bucket edge)", got)
	}
	if got := snap.CountAtMost(100); got != 5 {
		t.Fatalf("CountAtMost(100) = %d, want 5", got)
	}

	earlier := snap
	for _, v := range []float64{0.5, 5, 5} {
		h.Observe(v)
	}
	later := *r.Snapshot()[0].Hist
	good, total := later.WindowDelta(earlier, 1)
	if good != 1 || total != 3 {
		t.Fatalf("WindowDelta = (%v, %v), want (1, 3)", good, total)
	}
	// Counter reset (earlier ahead): degrade to the newer snapshot alone.
	good, total = earlier.WindowDelta(later, 1)
	if good != 3 || total != 5 {
		t.Fatalf("WindowDelta after reset = (%v, %v), want (3, 5)", good, total)
	}
}

// TestAccumGaugeLabels is the cluster-exposition contract: gauges from
// different sources stay distinguishable under the per-source label while
// counters (FloatCounters among them) sum under their original labels.
func TestAccumGaugeLabels(t *testing.T) {
	r1 := NewRegistry()
	r1.Gauge("inflight", "h", L("endpoint", "ingest")).Set(3)
	r1.FloatCounter("cost_total", "h", L("sub", "s1")).Add(1.5)
	r2 := NewRegistry()
	r2.Gauge("inflight", "h", L("endpoint", "ingest")).Set(5)
	r2.FloatCounter("cost_total", "h", L("sub", "s1")).Add(2.5)

	acc := NewAccum()
	acc.Add(r1.Snapshot(), L("member", "m1"))
	acc.Add(r2.Snapshot(), L("member", "m2"))

	var gauges, counters []MetricSnapshot
	for _, m := range acc.Snapshots() {
		switch m.Kind {
		case KindGauge:
			gauges = append(gauges, m)
		case KindCounter:
			counters = append(counters, m)
		}
	}
	if len(gauges) != 2 {
		t.Fatalf("got %d gauge series, want 2 (one per member)", len(gauges))
	}
	members := map[string]float64{}
	for _, g := range gauges {
		var member string
		for _, l := range g.Labels {
			if l.Key == "member" {
				member = l.Value
			}
		}
		members[member] = g.Value
	}
	if members["m1"] != 3 || members["m2"] != 5 {
		t.Fatalf("per-member gauge values = %v, want m1:3 m2:5", members)
	}
	if len(counters) != 1 {
		t.Fatalf("got %d counter series, want 1 (summed across members)", len(counters))
	}
	if got := counters[0].Value; math.Abs(got-4.0) > 1e-12 {
		t.Fatalf("summed counter = %v, want 4.0", got)
	}
	for _, l := range counters[0].Labels {
		if l.Key == "member" {
			t.Fatalf("counter series gained a member label: %+v", counters[0].Labels)
		}
	}
}

func TestFloatCounterPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.FloatCounter("flowmotif_sub_cost_seconds_total", "Attributed cost.", L("sub", "a"), L("shape", "M(3,3)")).Add(0.125)
	var sb strings.Builder
	if err := WritePrometheus(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, "# TYPE flowmotif_sub_cost_seconds_total counter") {
		t.Fatalf("exposition missing counter TYPE line:\n%s", text)
	}
	if !strings.Contains(text, `flowmotif_sub_cost_seconds_total{shape="M(3,3)",sub="a"} 0.125`) {
		t.Fatalf("exposition missing sample line:\n%s", text)
	}
}
