package obs

// Prometheus text exposition (format 0.0.4), written and parsed by hand —
// this package takes no dependencies. WritePrometheus renders a snapshot
// set (so a coordinator can merge member snapshots first); ParseExposition
// is the validating parser the tests and the cluster-e2e scrape check use.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders snaps in Prometheus text format: one `# HELP` /
// `# TYPE` header per family (first-seen order), label values escaped,
// histogram buckets cumulative with a terminal `+Inf`. Series whose kind
// conflicts with an earlier series of the same name are skipped so the
// output always parses.
func WritePrometheus(w io.Writer, snaps []MetricSnapshot) error {
	type family struct {
		name string
		kind string
		help string
		ms   []MetricSnapshot
	}
	var order []string
	fams := map[string]*family{}
	for _, m := range snaps {
		f := fams[m.Name]
		if f == nil {
			f = &family{name: m.Name, kind: m.Kind, help: m.Help}
			fams[m.Name] = f
			order = append(order, m.Name)
		}
		if f.kind != m.Kind {
			continue
		}
		if f.help == "" {
			f.help = m.Help
		}
		f.ms = append(f.ms, m)
	}
	for _, name := range order {
		f := fams[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.kind); err != nil {
			return err
		}
		for _, m := range f.ms {
			if err := writeSeries(w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, m MetricSnapshot) error {
	if m.Kind != KindHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, labelSet(m.Labels, "", 0), formatValue(m.Value))
		return err
	}
	h := m.Hist
	if h == nil {
		h = &HistogramSnapshot{}
	}
	var cum uint64
	for i, b := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, labelSet(m.Labels, "le", b), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, labelSet(m.Labels, "le", math.Inf(1)), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, labelSet(m.Labels, "", 0), formatValue(h.Sum)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, labelSet(m.Labels, "", 0), h.Count); err != nil {
		return err
	}
	// The 0.0.4 text format has no exemplar syntax (that is OpenMetrics),
	// so the exemplar rides as a free-form comment — ignored by parsers
	// (including ParseExposition), read by humans chasing a quantile to a
	// concrete trace in /debug/traces.
	if h.Exemplar != nil && h.Exemplar.Trace != "" {
		if _, err := fmt.Fprintf(w, "# EXEMPLAR %s%s trace_id=%s value=%s\n",
			m.Name, labelSet(m.Labels, "", 0), h.Exemplar.Trace, formatValue(h.Exemplar.Value)); err != nil {
			return err
		}
	}
	return nil
}

// labelSet renders `{k="v",...}` (empty string when there are no labels),
// optionally appending an `le` bound.
func labelSet(labels []Label, le string, bound float64) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(le)
		b.WriteString(`="`)
		b.WriteString(formatBound(bound))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ExpoSeries is one parsed sample line.
type ExpoSeries struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ExpoFamily is one parsed metric family: the `# TYPE` declaration and
// every sample belonging to it (for histograms that includes the _bucket,
// _sum, and _count samples).
type ExpoFamily struct {
	Name   string
	Type   string
	Series []ExpoSeries
}

// ParseExposition parses and validates Prometheus text exposition:
// well-formed sample lines, unique `# TYPE` per family declared before
// its samples, valid names and label syntax, and — for histograms —
// cumulative bucket counts in `le` order with a terminal `+Inf` bucket
// matching `_count`, plus `_sum`/`_count` present per label set. Returns
// the families keyed by name.
func ParseExposition(data string) (map[string]*ExpoFamily, error) {
	fams := map[string]*ExpoFamily{}
	for ln, line := range strings.Split(data, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		lineNo := ln + 1
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "TYPE" && fields[1] != "HELP") {
				continue // free-form comment
			}
			name := fields[2]
			if !validName(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			if fields[1] == "HELP" {
				continue
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: malformed TYPE line", lineNo)
			}
			typ := fields[3]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			if fams[name] != nil {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			fams[name] = &ExpoFamily{Name: name, Type: typ}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		f := familyFor(fams, s.Name)
		if f == nil {
			return nil, fmt.Errorf("line %d: sample %q precedes its TYPE declaration", lineNo, s.Name)
		}
		f.Series = append(f.Series, s)
	}
	for _, f := range fams {
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, fmt.Errorf("histogram %s: %v", f.Name, err)
			}
		}
	}
	return fams, nil
}

// familyFor resolves a sample name to its declared family, accounting for
// histogram sample suffixes.
func familyFor(fams map[string]*ExpoFamily, name string) *ExpoFamily {
	if f := fams[name]; f != nil {
		return f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f := fams[base]; f != nil && (f.Type == "histogram" || f.Type == "summary") {
				return f
			}
		}
	}
	return nil
}

func parseSample(line string) (ExpoSeries, error) {
	s := ExpoSeries{Labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i], i) {
		i++
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	if i < len(line) && line[i] == '{' {
		rest, err := parseLabelPairs(line[i+1:], s.Labels)
		if err != nil {
			return s, err
		}
		line = rest
	} else {
		line = line[i:]
	}
	line = strings.TrimLeft(line, " \t")
	fields := strings.Fields(line)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		return s, fmt.Errorf("malformed sample value %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

func isNameChar(c byte, pos int) bool {
	if c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
		return true
	}
	return pos > 0 && c >= '0' && c <= '9'
}

// parseLabelPairs consumes `k="v",...}` and returns the remainder after
// the closing brace.
func parseLabelPairs(s string, out map[string]string) (string, error) {
	for {
		s = strings.TrimLeft(s, " \t")
		if len(s) > 0 && s[0] == '}' {
			return s[1:], nil
		}
		i := 0
		for i < len(s) && isNameChar(s[i], i) {
			i++
		}
		key := s[:i]
		if !validName(key) {
			return s, fmt.Errorf("invalid label name %q", key)
		}
		s = strings.TrimLeft(s[i:], " \t")
		if len(s) == 0 || s[0] != '=' {
			return s, fmt.Errorf("expected '=' after label %q", key)
		}
		s = strings.TrimLeft(s[1:], " \t")
		if len(s) == 0 || s[0] != '"' {
			return s, fmt.Errorf("expected quoted value for label %q", key)
		}
		var val strings.Builder
		i = 1
		for {
			if i >= len(s) {
				return s, fmt.Errorf("unterminated value for label %q", key)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return s, fmt.Errorf("dangling escape in label %q", key)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return s, fmt.Errorf("invalid escape \\%c in label %q", s[i+1], key)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := out[key]; dup {
			return s, fmt.Errorf("duplicate label %q", key)
		}
		out[key] = val.String()
		s = strings.TrimLeft(s[i:], " \t")
		if len(s) > 0 && s[0] == ',' {
			s = s[1:]
			continue
		}
		if len(s) > 0 && s[0] == '}' {
			return s[1:], nil
		}
		return s, fmt.Errorf("expected ',' or '}' after label %q", key)
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validateHistogram checks, per label set, that _bucket counts are
// cumulative in ascending `le` order, that the terminal bucket is `+Inf`,
// and that its value matches the _count sample.
func validateHistogram(f *ExpoFamily) error {
	type bucket struct {
		le float64
		v  float64
	}
	buckets := map[string][]bucket{}
	counts := map[string]float64{}
	sums := map[string]bool{}
	for _, s := range f.Series {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket sample without le label")
			}
			b, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("bad le value %q", le)
			}
			sig := labelSig(s.Labels, "le")
			buckets[sig] = append(buckets[sig], bucket{le: b, v: s.Value})
		case f.Name + "_count":
			counts[labelSig(s.Labels, "")] = s.Value
		case f.Name + "_sum":
			sums[labelSig(s.Labels, "")] = true
		default:
			return fmt.Errorf("unexpected sample %q", s.Name)
		}
	}
	if len(buckets) == 0 {
		return fmt.Errorf("no bucket samples")
	}
	for sig, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		last := math.Inf(-1)
		prev := -1.0
		for _, b := range bs {
			if b.le == last {
				return fmt.Errorf("duplicate le=%v bucket (labels %s)", b.le, sig)
			}
			last = b.le
			if b.v < prev {
				return fmt.Errorf("non-cumulative buckets at le=%v (labels %s)", b.le, sig)
			}
			prev = b.v
		}
		if !math.IsInf(bs[len(bs)-1].le, 1) {
			return fmt.Errorf("missing +Inf bucket (labels %s)", sig)
		}
		cnt, ok := counts[sig]
		if !ok {
			return fmt.Errorf("missing _count sample (labels %s)", sig)
		}
		if bs[len(bs)-1].v != cnt {
			return fmt.Errorf("+Inf bucket %v != _count %v (labels %s)", bs[len(bs)-1].v, cnt, sig)
		}
		if !sums[sig] {
			return fmt.Errorf("missing _sum sample (labels %s)", sig)
		}
	}
	return nil
}

// labelSig is a canonical signature of a label map, optionally excluding
// one key.
func labelSig(labels map[string]string, except string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != except {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}
