package obs

// Cost-attribution and SLO helpers (DESIGN.md §14): a small top-k
// accumulator the serving layer ranks per-subscription / per-group /
// per-shard attributed cost with (GET /debug/top), and the burn-rate math
// the SLO watchdog evaluates over histogram-snapshot deltas.

import (
	"math"
	"sort"
)

// TopEntry is one keyed contribution in a TopAccum: a primary value the
// ranking sorts by plus named secondary accumulators (emit counts, member
// counts, stage breakdowns) that merge field-wise.
type TopEntry struct {
	Key    string             `json:"key"`
	Value  float64            `json:"value"`
	Fields map[string]float64 `json:"fields,omitempty"`
}

// TopAccum accumulates keyed float contributions — repeated Adds under one
// key sum — and returns the top-N by value. The cluster coordinator merges
// per-member group costs through one: the same (shape, δ) group living on
// several shards folds into a single cluster-wide row.
type TopAccum struct {
	byKey map[string]*TopEntry
}

// NewTopAccum returns an empty accumulator.
func NewTopAccum() *TopAccum {
	return &TopAccum{byKey: map[string]*TopEntry{}}
}

// Add sums value into key's primary value.
func (a *TopAccum) Add(key string, value float64) {
	a.entry(key).Value += value
}

// AddField sums v into key's named secondary accumulator.
func (a *TopAccum) AddField(key, field string, v float64) {
	e := a.entry(key)
	if e.Fields == nil {
		e.Fields = map[string]float64{}
	}
	e.Fields[field] += v
}

func (a *TopAccum) entry(key string) *TopEntry {
	e := a.byKey[key]
	if e == nil {
		e = &TopEntry{Key: key}
		a.byKey[key] = e
	}
	return e
}

// Top returns the n largest entries by value, ties broken by key so the
// ranking is deterministic. n <= 0 returns all entries.
func (a *TopAccum) Top(n int) []TopEntry {
	out := make([]TopEntry, 0, len(a.byKey))
	for _, e := range a.byKey {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// CountAtMost returns how many observations fell at or under bound,
// conservatively: the cumulative count through the smallest bucket bound
// >= bound (an observation inside that bucket but above bound still counts
// as good — the bucket resolution is the measurement's error bar).
func (s HistogramSnapshot) CountAtMost(bound float64) uint64 {
	i := sort.SearchFloat64s(s.Bounds, bound)
	var cum uint64
	for b := 0; b <= i && b < len(s.Counts); b++ {
		cum += s.Counts[b]
	}
	return cum
}

// BurnRate is the SLO burn rate of a window: the observed bad fraction
// divided by the error budget (1 − target). 1.0 means the budget is being
// consumed exactly at the sustainable rate; N means the budget burns N×
// too fast. An empty window (total 0) burns nothing; a target >= 1 leaves
// no budget, so any bad observation burns at +Inf.
func BurnRate(bad, total, target float64) float64 {
	if total <= 0 || bad <= 0 {
		return 0
	}
	budget := 1 - target
	frac := bad / total
	if budget <= 0 {
		return math.Inf(1)
	}
	return frac / budget
}

// WindowDelta subtracts an earlier snapshot of the same histogram from s,
// returning the (good-at-most-bound, total) observation counts that landed
// in between — the unit the watchdog's fast/slow burn windows are computed
// over. A counter reset (earlier ahead of s) degrades to s alone.
func (s HistogramSnapshot) WindowDelta(earlier HistogramSnapshot, bound float64) (good, total float64) {
	curGood, curTotal := s.CountAtMost(bound), s.Count
	prevGood, prevTotal := earlier.CountAtMost(bound), earlier.Count
	if prevTotal > curTotal || prevGood > curGood {
		prevGood, prevTotal = 0, 0
	}
	return float64(curGood - prevGood), float64(curTotal - prevTotal)
}
