// runtime.go collects Go runtime telemetry (goroutines, heap, GC
// pauses) and the build-info gauge into MetricSnapshots appended to a
// server's exposition — read on scrape, not on the hot path.
package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Version is the flowmotif build version reported by
// flowmotif_build_info and `flowmotifd -version`. Overridable at link
// time (-ldflags "-X flowmotif/internal/obs.Version=...").
var Version = "0.7.0"

// RuntimeStats collects Go runtime telemetry on demand: goroutine and
// heap gauges read fresh per call, plus a cumulative GC pause histogram
// fed from runtime.MemStats' pause ring (each pause observed exactly
// once across calls, as long as calls are less than 256 GCs apart).
type RuntimeStats struct {
	mu        sync.Mutex
	lastNumGC uint32
	pauses    *Histogram
}

// NewRuntimeStats returns a collector with an empty GC pause histogram.
func NewRuntimeStats() *RuntimeStats {
	return &RuntimeStats{
		pauses: &Histogram{bounds: LatencyBuckets, counts: make([]atomic.Uint64, len(LatencyBuckets)+1)},
	}
}

// Collect reads the runtime and returns the snapshot set: go_goroutines,
// go_heap_alloc_bytes, go_gc_pause_seconds, and
// flowmotif_build_info{version,go} (constant 1).
func (r *RuntimeStats) Collect() []MetricSnapshot {
	if r == nil {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.mu.Lock()
	// Feed pauses recorded since the last call. PauseNs is a ring of the
	// last 256 pause durations; index (NumGC+255)%256 holds the most
	// recent. If more than 256 GCs elapsed between calls the overwritten
	// ones are lost (accepted: scrapes are far more frequent than that).
	from := r.lastNumGC
	if ms.NumGC > from+256 {
		from = ms.NumGC - 256
	}
	for i := from; i < ms.NumGC; i++ {
		r.pauses.Observe(float64(ms.PauseNs[(i+255)%256]) / 1e9)
	}
	r.lastNumGC = ms.NumGC
	pauseSnap := r.pauses.Snapshot()
	r.mu.Unlock()
	return []MetricSnapshot{
		{Name: "go_goroutines", Help: "Number of live goroutines.", Kind: KindGauge, Value: float64(runtime.NumGoroutine())},
		{Name: "go_heap_alloc_bytes", Help: "Bytes of allocated heap objects.", Kind: KindGauge, Value: float64(ms.HeapAlloc)},
		{Name: "go_gc_pause_seconds", Help: "GC stop-the-world pause durations.", Kind: KindHistogram, Hist: &pauseSnap},
		{Name: "flowmotif_build_info", Help: "Build metadata; constant 1.", Kind: KindGauge, Value: 1,
			Labels: []Label{{Key: "go", Value: runtime.Version()}, {Key: "version", Value: Version}}},
	}
}
