package obs

import (
	"strings"
	"testing"
)

// FuzzParseExposition drives the hand-written Prometheus text parser
// with arbitrary input. Seeds are a real registry's rendered exposition
// plus the rejection table from TestParseExpositionRejectsInvalid, so
// the fuzzer starts on both sides of the accept/reject boundary.
func FuzzParseExposition(f *testing.F) {
	r := NewRegistry()
	r.Counter("flowmotif_rounds_total", "rounds", L("member", "a")).Add(3)
	r.Gauge("flowmotif_watermark", "frontier").Set(42)
	r.Histogram("flowmotif_lat_seconds", "latency", []float64{0.1, 1}).Observe(0.5)
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		f.Fatal(err)
	}
	f.Add(b.String())

	for _, seed := range []string{
		"",
		"# a freeform comment\n",
		"# TYPE a counter\na 1\n",
		"# TYPE a counter\na 1\n# TYPE a counter\n",
		"x_bucket{le=\"+Inf\"} 1\n# TYPE x histogram\n",
		"# TYPE a gauge\na{k=unquoted} 1\n",
		"# TYPE 9bad gauge\n9bad 1\n",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"# TYPE a sparkline\na 1\n",
		"# TYPE a gauge\na{k=\"v} 1\n",
		"# TYPE a gauge\na{k=\"\\x\"} 1\n",
		"# TYPE a gauge\na{k=\"1\",k=\"2\"} 1\n",
		"# TYPE a gauge\na{k=\"\\\\\\\"\\n\"} +Inf\n",
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, in string) {
		fams, err := ParseExposition(in)
		if err != nil {
			return // rejected input: only the absence of a panic matters
		}
		// Accepted input must satisfy the parser's own postconditions.
		for name, fam := range fams {
			if fam == nil {
				t.Fatalf("family %q is nil", name)
			}
			if fam.Name != name {
				t.Fatalf("family keyed %q but named %q", name, fam.Name)
			}
			switch fam.Type {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("family %q has unknown type %q", name, fam.Type)
			}
			for _, s := range fam.Series {
				if s.Name != fam.Name && !strings.HasPrefix(s.Name, fam.Name+"_") {
					t.Fatalf("family %q contains foreign series %q", fam.Name, s.Name)
				}
			}
		}
	})
}

// FuzzParseTraceparent checks the W3C traceparent parser: no panics on
// arbitrary input, a zero context on every rejection, and render→parse
// round-tripping on every acceptance.
func FuzzParseTraceparent(f *testing.F) {
	const trace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const span = "00f067aa0ba902b7"
	for _, seed := range []string{
		"00-" + trace + "-" + span + "-01",
		"01-" + trace + "-" + span + "-01-extra",
		"",
		"00",
		"00-" + trace + "-" + span,
		"00-" + trace + "-" + span + "-",
		"ff-" + trace + "-" + span + "-01",
		"0x-" + trace + "-" + span + "-01",
		"00-" + trace + "-" + span + "-01-extra",
		"00-00000000000000000000000000000000-" + span + "-01",
		"00-" + trace + "-0000000000000000-01",
		"00-" + trace[:31] + "Z-" + span + "-01",
		"00_" + trace + "-" + span + "-01",
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, s string) {
		sc, ok := ParseTraceparent(s)
		if !ok {
			if sc != (SpanContext{}) {
				t.Fatalf("rejected %q but returned non-zero context %+v", s, sc)
			}
			return
		}
		if !sc.Valid() {
			t.Fatalf("accepted %q but context invalid: %+v", s, sc)
		}
		rendered := sc.Traceparent()
		rt, ok2 := ParseTraceparent(rendered)
		if !ok2 || rt != sc {
			t.Fatalf("round trip failed: %q → %+v → %q → %+v (ok=%v)", s, sc, rendered, rt, ok2)
		}
	})
}
