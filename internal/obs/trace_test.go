package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestTraceIDUniqueness: IDs are well-formed hex of the right width and
// unique, including under concurrent generation (run with -race).
func TestTraceIDUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		tr, sp := NewTraceID(), NewSpanID()
		if len(tr) != 32 || !isHex(tr) {
			t.Fatalf("trace ID %q: want 32 hex digits", tr)
		}
		if len(sp) != 16 || !isHex(sp) {
			t.Fatalf("span ID %q: want 16 hex digits", sp)
		}
		if seen[tr] || seen[sp] {
			t.Fatalf("duplicate ID at iteration %d", i)
		}
		seen[tr], seen[sp] = true, true
	}

	const workers, perWorker = 8, 2000
	ids := make([][]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]string, 0, 2*perWorker)
			for i := 0; i < perWorker; i++ {
				out = append(out, NewTraceID(), NewSpanID())
			}
			ids[w] = out
		}(w)
	}
	wg.Wait()
	all := map[string]bool{}
	for _, chunk := range ids {
		for _, id := range chunk {
			if all[id] {
				t.Fatal("duplicate ID under concurrent generation")
			}
			all[id] = true
		}
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	tp := sc.Traceparent()
	if len(tp) != 55 {
		t.Fatalf("traceparent %q: want 55 chars", tp)
	}
	got, ok := ParseTraceparent(tp)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
	// Future versions are accepted when the 00-prefix fields parse.
	if got, ok := ParseTraceparent("01-" + sc.Trace + "-" + sc.Span + "-01-extra"); !ok || got != sc {
		t.Fatalf("future version rejected: %+v ok=%v", got, ok)
	}

	invalid := []string{
		"",
		"00",
		"00-" + sc.Trace + "-" + sc.Span,         // truncated flags
		"00-" + sc.Trace + "-" + sc.Span + "-",   // truncated flags
		"ff-" + sc.Trace + "-" + sc.Span + "-01", // forbidden version
		"0x-" + sc.Trace + "-" + sc.Span + "-01", // non-hex version
		"00-" + sc.Trace + "-" + sc.Span + "-01-extra",           // version 00 with trailer
		"00-00000000000000000000000000000000-" + sc.Span + "-01", // all-zero trace
		"00-" + sc.Trace + "-0000000000000000-01",                // all-zero span
		"00-" + sc.Trace[:31] + "Z-" + sc.Span + "-01",           // non-hex trace
		"00_" + sc.Trace + "-" + sc.Span + "-01",                 // bad separator
	}
	for _, s := range invalid {
		if got, ok := ParseTraceparent(s); ok || got.Valid() {
			t.Errorf("ParseTraceparent(%q) accepted: %+v", s, got)
		}
	}

	if (SpanContext{}).Traceparent() != "" {
		t.Error("zero context should render no traceparent")
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("x", SpanContext{})
	if sp != nil {
		t.Fatal("nil tracer should return a nil (inert) span")
	}
	sp.Annotate(L("k", "v")) // must not panic
	if d := sp.End(); d != 0 {
		t.Fatalf("inert span End() = %v, want 0", d)
	}
	if sp.Context().Valid() {
		t.Fatal("inert span context should be invalid")
	}
	tr.Retain("abc")
	if tr.Spans("abc") != nil || tr.Summaries(0, false) != nil || tr.Total() != 0 {
		t.Fatal("nil tracer queries should be empty")
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	first := tr.StartSpan("first", SpanContext{})
	first.End()
	for i := 0; i < 8; i++ {
		tr.StartSpan(fmt.Sprintf("later-%d", i), SpanContext{}).End()
	}
	if tr.Total() != 9 {
		t.Fatalf("Total = %d, want 9", tr.Total())
	}
	if got := tr.Spans(first.Context().Trace); got != nil {
		t.Fatalf("overwritten trace still resident: %v", got)
	}
	if sums := tr.Summaries(0, false); len(sums) != 4 {
		t.Fatalf("resident traces = %d, want ring capacity 4", len(sums))
	}
	// The listing cap applies.
	if sums := tr.Summaries(2, false); len(sums) != 2 {
		t.Fatalf("limited listing = %d entries, want 2", len(sums))
	}
}

func TestRetainSurvivesWraparound(t *testing.T) {
	tr := NewTracer(4)
	root := tr.StartSpan("slow-root", SpanContext{})
	child := tr.StartSpan("slow-child", root.Context())
	child.End()
	root.End()
	trace := root.Context().Trace
	tr.Retain(trace)
	tr.Retain(trace) // idempotent

	for i := 0; i < 32; i++ {
		tr.StartSpan("noise", SpanContext{}).End()
	}
	spans := tr.Spans(trace)
	if len(spans) != 2 {
		t.Fatalf("retained trace has %d spans after wraparound, want 2", len(spans))
	}
	if err := ValidateSpans(spans); err != nil {
		t.Fatalf("retained trace invalid: %v", err)
	}
	// A span ending after Retain is appended to the retained store.
	late := tr.StartSpan("late", root.Context())
	late.End()
	for i := 0; i < 32; i++ {
		tr.StartSpan("noise", SpanContext{}).End()
	}
	if got := len(tr.Spans(trace)); got != 3 {
		t.Fatalf("late span not retained: %d spans, want 3", got)
	}
	// Retained traces appear in summaries even with their ring spans gone.
	found := false
	for _, s := range tr.Summaries(0, false) {
		if s.Trace == trace {
			found = true
			if !s.Retained {
				t.Error("summary not flagged retained")
			}
		}
	}
	if !found {
		t.Fatal("retained trace missing from summaries")
	}
}

func TestRetainedStoreBounded(t *testing.T) {
	tr := NewTracer(4)
	var traces []string
	for i := 0; i < maxRetainedTraces+8; i++ {
		sp := tr.StartSpan("r", SpanContext{})
		sp.End()
		tr.Retain(sp.Context().Trace)
		traces = append(traces, sp.Context().Trace)
	}
	tr.mu.Lock()
	n := len(tr.retained)
	tr.mu.Unlock()
	if n != maxRetainedTraces {
		t.Fatalf("retained store holds %d traces, want %d", n, maxRetainedTraces)
	}
	// Oldest evicted, newest kept.
	tr.mu.Lock()
	_, oldest := tr.retained[traces[0]]
	_, newest := tr.retained[traces[len(traces)-1]]
	tr.mu.Unlock()
	if oldest || !newest {
		t.Fatalf("eviction order wrong: oldest=%v newest=%v", oldest, newest)
	}
}

func TestSpanParentLinksAndAttrs(t *testing.T) {
	tr := NewTracer(0)
	root := tr.StartSpan("root", SpanContext{}, L("a", "1"))
	child := tr.StartSpan("child", root.Context())
	child.Annotate(L("b", "2"))
	child.End()
	child.Annotate(L("after", "end")) // no-op
	if d := child.End(); d != 0 {     // idempotent
		t.Fatalf("second End = %v, want 0", d)
	}
	root.End()

	spans := tr.Spans(root.Context().Trace)
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if err := ValidateSpans(spans); err != nil {
		t.Fatal(err)
	}
	tree := BuildSpanTree(spans)
	if len(tree) != 1 || tree[0].Name != "root" || len(tree[0].Children) != 1 || tree[0].Children[0].Name != "child" {
		t.Fatalf("tree shape wrong: %+v", tree)
	}
	for _, n := range tree[0].Children {
		for _, a := range n.Attrs {
			if a.Key == "after" {
				t.Error("Annotate after End recorded")
			}
		}
	}
	// An over-long attr list is truncated, not grown unbounded.
	attrs := make([]Label, maxSpanAttrs+4)
	for i := range attrs {
		attrs[i] = L(fmt.Sprintf("k%d", i), "v")
	}
	sp := tr.StartSpan("wide", SpanContext{}, attrs...)
	sp.Annotate(L("extra", "v"))
	sp.End()
	wide := tr.Spans(sp.Context().Trace)
	if len(wide) != 1 || len(wide[0].Attrs) > maxSpanAttrs {
		t.Fatalf("attr cap broken: %d attrs", len(wide[0].Attrs))
	}
}

func TestValidateSpansRejects(t *testing.T) {
	now := time.Now().UnixNano()
	mk := func(trace, span, parent string, start, end int64) SpanRecord {
		return SpanRecord{Trace: trace, Span: span, Parent: parent, Name: span, Start: start, End: end}
	}
	tr1, tr2 := NewTraceID(), NewTraceID()
	a, b, c := NewSpanID(), NewSpanID(), NewSpanID()

	cases := []struct {
		name  string
		spans []SpanRecord
	}{
		{"empty", nil},
		{"mixed traces", []SpanRecord{mk(tr1, a, "", now, now+10), mk(tr2, b, a, now, now+5)}},
		{"two roots", []SpanRecord{mk(tr1, a, "", now, now+10), mk(tr1, b, "", now, now+5)}},
		{"orphan parent", []SpanRecord{mk(tr1, a, "", now, now+10), mk(tr1, b, c, now, now+5)}},
		{"end before start", []SpanRecord{mk(tr1, a, "", now, now-1)}},
		{"child before parent", []SpanRecord{mk(tr1, a, "", now, now+10), mk(tr1, b, a, now-5, now)}},
		{"duplicate span", []SpanRecord{mk(tr1, a, "", now, now+10), mk(tr1, a, "", now, now+10)}},
	}
	for _, tc := range cases {
		if ValidateSpans(tc.spans) == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	good := []SpanRecord{mk(tr1, a, "", now, now+10), mk(tr1, b, a, now+1, now+8), mk(tr1, c, b, now+2, now+4)}
	if err := ValidateSpans(good); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
	// BuildSpanTree promotes an orphan parent to a root instead of losing it.
	orphaned := []SpanRecord{mk(tr1, b, c, now, now+5)}
	if tree := BuildSpanTree(orphaned); len(tree) != 1 {
		t.Errorf("orphan not promoted to root: %d roots", len(tree))
	}
}

// TestTracerConcurrency hammers record/retain/query from many goroutines;
// meaningful under -race.
func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(64)
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				root := tr.StartSpan("root", SpanContext{})
				child := tr.StartSpan("child", root.Context(), L("i", "x"))
				child.End()
				if i%16 == 0 {
					tr.Retain(root.Context().Trace)
				}
				root.End()
			}
		}()
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Summaries(10, true)
				tr.Total()
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	if tr.Total() != 4*500*2 {
		t.Fatalf("Total = %d, want %d", tr.Total(), 4*500*2)
	}
}
