// trace.go is flowmotif's dependency-free distributed tracer: 128-bit
// trace / 64-bit span IDs with parent links and per-span attributes,
// recorded into a fixed-size per-tracer ring buffer (the "flight
// recorder" — always on, fixed memory, nothing to export to), W3C
// traceparent propagation for the internal HTTP hops, and tail-sampling
// retention so traces that breached a latency threshold survive ring
// wraparound. Span starts are lock-free (atomic ID generation + a clock
// read); the only lock is one short mutex hold when a finished span is
// copied into the ring.
package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// idState is the process-wide ID generator: a crypto-seeded counter
// stepped by a large odd constant and finalized with splitmix64, giving
// unique, well-distributed IDs with one atomic add per 8 bytes and no
// locking.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		idState.Store(uint64(time.Now().UnixNano()))
	}
}

func nextID64() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 { // all-zero IDs are invalid in W3C trace context
		x = 1
	}
	return x
}

// NewTraceID returns a fresh 32-hex-digit trace ID.
func NewTraceID() string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], nextID64())
	binary.BigEndian.PutUint64(b[8:], nextID64())
	return hex.EncodeToString(b[:])
}

// NewSpanID returns a fresh 16-hex-digit span ID.
func NewSpanID() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], nextID64())
	return hex.EncodeToString(b[:])
}

// SpanContext identifies a position in a trace: the trace and the span
// that any child spans should parent to. The zero value is "no trace".
type SpanContext struct {
	Trace string `json:"trace,omitempty"`
	Span  string `json:"span,omitempty"`
}

// Valid reports whether the context carries a usable trace and span ID.
func (sc SpanContext) Valid() bool {
	return len(sc.Trace) == 32 && len(sc.Span) == 16 && !allZeroHex(sc.Trace) && !allZeroHex(sc.Span)
}

func allZeroHex(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// Traceparent renders the context in W3C trace-context format
// ("00-<trace>-<span>-01", sampled flag always set — the flight recorder
// records everything). Returns "" for an invalid context.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	return "00-" + sc.Trace + "-" + sc.Span + "-01"
}

// ParseTraceparent parses a W3C traceparent header value. Unknown future
// versions are accepted as long as the version-00 prefix fields parse
// (per the spec's forward-compatibility rule); malformed values return
// ok=false and a zero context.
func ParseTraceparent(s string) (sc SpanContext, ok bool) {
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	if !isHex(s[:2]) || s[:2] == "ff" {
		return SpanContext{}, false
	}
	if len(s) > 55 && (s[:2] == "00" || s[55] != '-') {
		return SpanContext{}, false
	}
	sc = SpanContext{Trace: s[3:35], Span: s[36:52]}
	if !isHex(sc.Trace) || !isHex(sc.Span) || !isHex(s[53:55]) || !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// TraceparentHeader is the W3C trace-context header name.
const TraceparentHeader = "traceparent"

// SpanRecord is one finished span as stored in the flight recorder and
// served by /debug/traces. Times are Unix nanoseconds so records stitch
// across processes without timezone or monotonic-clock baggage.
type SpanRecord struct {
	Trace  string  `json:"trace"`
	Span   string  `json:"span"`
	Parent string  `json:"parent,omitempty"`
	Name   string  `json:"name"`
	Start  int64   `json:"start_unix_nano"`
	End    int64   `json:"end_unix_nano"`
	Attrs  []Label `json:"attrs,omitempty"`
}

// Duration returns the span's recorded wall time.
func (r SpanRecord) Duration() time.Duration {
	return time.Duration(r.End - r.Start)
}

const (
	// DefaultTraceCapacity is the flight-recorder ring size (spans).
	DefaultTraceCapacity = 4096
	// maxRetainedTraces bounds the tail-sampling store (traces).
	maxRetainedTraces = 64
	// maxRetainedSpans bounds one retained trace's span list.
	maxRetainedSpans = 1024
	// maxSpanAttrs bounds per-span attributes (defensive).
	maxSpanAttrs = 16
)

// Tracer records finished spans into a fixed-size ring buffer and keeps
// a bounded side store of "retained" traces (tail sampling: traces that
// breached a latency threshold survive ring wraparound). All methods are
// safe for concurrent use and safe on a nil receiver, so callers wire
// tracing off by simply not creating the tracer.
type Tracer struct {
	mu       sync.Mutex
	ring     []SpanRecord
	next     int    // ring write cursor
	total    uint64 // spans ever recorded
	retained map[string][]SpanRecord
	retOrder []string // retention order, oldest first
}

// NewTracer returns a tracer whose ring holds capacity spans
// (capacity <= 0: DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{
		ring:     make([]SpanRecord, 0, capacity),
		retained: map[string][]SpanRecord{},
	}
}

// TraceSpan is one in-flight span. End records it into the tracer's
// ring; both Start and End are cheap enough to leave on in production.
// A nil *TraceSpan is inert (all methods are no-ops), so call sites
// need no tracing-enabled branches.
type TraceSpan struct {
	t     *Tracer
	sc    SpanContext
	rec   SpanRecord
	t0    time.Time
	ended atomic.Bool
}

// StartSpan opens a span. A valid parent puts the span in the parent's
// trace with a parent link; an invalid (zero) parent starts a new trace
// with this span as root. Safe on a nil tracer (returns an inert span).
func (t *Tracer) StartSpan(name string, parent SpanContext, attrs ...Label) *TraceSpan {
	if t == nil {
		return nil
	}
	sc := SpanContext{Span: NewSpanID()}
	var parentID string
	if parent.Valid() {
		sc.Trace = parent.Trace
		parentID = parent.Span
	} else {
		sc.Trace = NewTraceID()
	}
	if len(attrs) > maxSpanAttrs {
		attrs = attrs[:maxSpanAttrs]
	}
	now := time.Now()
	return &TraceSpan{
		t:  t,
		sc: sc,
		t0: now,
		rec: SpanRecord{
			Trace:  sc.Trace,
			Span:   sc.Span,
			Parent: parentID,
			Name:   name,
			Start:  now.UnixNano(),
			Attrs:  append([]Label(nil), attrs...),
		},
	}
}

// Context returns the span's context (zero for an inert span) — pass it
// to child StartSpan calls or render it with Traceparent for the wire.
func (s *TraceSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Annotate appends attributes to the span (before End; no-op after).
func (s *TraceSpan) Annotate(attrs ...Label) {
	if s == nil || s.ended.Load() {
		return
	}
	if room := maxSpanAttrs - len(s.rec.Attrs); room < len(attrs) {
		attrs = attrs[:max(room, 0)]
	}
	s.rec.Attrs = append(s.rec.Attrs, attrs...)
}

// End finishes the span and records it into the flight recorder.
// Idempotent: second and later calls are no-ops. Returns the span's
// duration (zero for an inert span or a repeated End).
func (s *TraceSpan) End() time.Duration {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return 0
	}
	d := time.Since(s.t0)
	s.rec.End = s.rec.Start + d.Nanoseconds()
	s.t.record(s.rec)
	return d
}

func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	if spans, ok := t.retained[rec.Trace]; ok && len(spans) < maxRetainedSpans {
		t.retained[rec.Trace] = append(spans, rec)
	}
	t.mu.Unlock()
}

// Retain marks a trace for tail-sampling retention: its spans already in
// the ring are copied to the retained store, and spans that finish later
// are appended as they end — so the trace survives ring wraparound. The
// store is bounded (oldest retained trace evicted beyond
// maxRetainedTraces). No-op on a nil tracer or an empty trace ID.
func (t *Tracer) Retain(trace string) {
	if t == nil || trace == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.retained[trace]; ok {
		return
	}
	var spans []SpanRecord
	for i := range t.ring {
		if t.ring[i].Trace == trace {
			spans = append(spans, t.ring[i])
		}
	}
	t.retained[trace] = spans
	t.retOrder = append(t.retOrder, trace)
	for len(t.retOrder) > maxRetainedTraces {
		delete(t.retained, t.retOrder[0])
		t.retOrder = t.retOrder[1:]
	}
}

// Total returns the number of spans ever recorded (not just resident).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns every resident span of one trace (ring + retained
// store, deduplicated), sorted by start time. Nil if the trace is gone.
func (t *Tracer) Spans(trace string) []SpanRecord {
	if t == nil || trace == "" {
		return nil
	}
	t.mu.Lock()
	seen := make(map[string]bool, 16)
	var out []SpanRecord
	for _, rec := range t.retained[trace] {
		if !seen[rec.Span] {
			seen[rec.Span] = true
			out = append(out, rec)
		}
	}
	for i := range t.ring {
		if rec := t.ring[i]; rec.Trace == trace && !seen[rec.Span] {
			seen[rec.Span] = true
			out = append(out, rec)
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// TraceSummary is one trace's /debug/traces listing entry.
type TraceSummary struct {
	Trace    string `json:"trace"`
	Root     string `json:"root"` // root span name ("" if the root is gone)
	Start    int64  `json:"start_unix_nano"`
	Duration int64  `json:"duration_nano"` // max(end) - min(start) over resident spans
	Spans    int    `json:"spans"`
	Retained bool   `json:"retained,omitempty"`
}

// Summaries lists resident traces, newest first ("recent") or by
// descending duration ("slowest"), at most limit entries (limit <= 0:
// no cap). Retained traces are included even after their ring spans
// were overwritten.
func (t *Tracer) Summaries(limit int, slowest bool) []TraceSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	byTrace := map[string]*TraceSummary{}
	var order []string
	add := func(rec SpanRecord, retained bool) {
		s := byTrace[rec.Trace]
		if s == nil {
			s = &TraceSummary{Trace: rec.Trace, Start: rec.Start, Retained: retained}
			byTrace[rec.Trace] = s
			order = append(order, rec.Trace)
		}
		s.Spans++
		s.Retained = s.Retained || retained
		if rec.Start < s.Start {
			s.Start = rec.Start
		}
		if end := rec.End - s.Start; end > s.Duration {
			s.Duration = end
		}
		if rec.Parent == "" && s.Root == "" {
			s.Root = rec.Name
		}
	}
	seen := map[string]bool{}
	for _, trace := range t.retOrder {
		for _, rec := range t.retained[trace] {
			seen[rec.Span] = true
			add(rec, true)
		}
	}
	for i := range t.ring {
		if rec := t.ring[i]; !seen[rec.Span] {
			add(rec, false)
		}
	}
	t.mu.Unlock()
	out := make([]TraceSummary, 0, len(order))
	for _, id := range order {
		out = append(out, *byTrace[id])
	}
	if slowest {
		sort.Slice(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	} else {
		sort.Slice(out, func(i, j int) bool { return out[i].Start > out[j].Start })
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// SpanNode is one node of a rendered span tree.
type SpanNode struct {
	SpanRecord
	Children []*SpanNode `json:"children,omitempty"`
}

// BuildSpanTree arranges one trace's spans into parent/child trees.
// Spans whose parent is not in the set (the true root, or a span held by
// another process before stitching) become roots. Roots and children are
// ordered by start time.
func BuildSpanTree(spans []SpanRecord) []*SpanNode {
	nodes := make(map[string]*SpanNode, len(spans))
	ordered := make([]*SpanNode, 0, len(spans))
	for _, rec := range spans {
		if nodes[rec.Span] != nil {
			continue // duplicate (e.g. stitched from two sources)
		}
		n := &SpanNode{SpanRecord: rec}
		nodes[rec.Span] = n
		ordered = append(ordered, n)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Start < ordered[j].Start })
	var roots []*SpanNode
	for _, n := range ordered {
		if p := nodes[n.Parent]; p != nil && n.Parent != n.Span {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// ValidateSpans checks a (stitched) trace's structural integrity: one
// trace ID throughout, exactly one root, every parent link resolving to
// a span in the set, and monotone timestamps (span end >= start, child
// start >= parent start). This is the CI span-tree integrity check.
func ValidateSpans(spans []SpanRecord) error {
	if len(spans) == 0 {
		return fmt.Errorf("obs: empty span set")
	}
	byID := make(map[string]SpanRecord, len(spans))
	trace := spans[0].Trace
	roots := 0
	for _, rec := range spans {
		if rec.Trace != trace {
			return fmt.Errorf("obs: span %s(%s) belongs to trace %s, want %s", rec.Name, rec.Span, rec.Trace, trace)
		}
		if rec.End < rec.Start {
			return fmt.Errorf("obs: span %s(%s) ends before it starts", rec.Name, rec.Span)
		}
		if _, dup := byID[rec.Span]; dup {
			return fmt.Errorf("obs: duplicate span ID %s", rec.Span)
		}
		byID[rec.Span] = rec
		if rec.Parent == "" {
			roots++
		}
	}
	if roots != 1 {
		return fmt.Errorf("obs: %d root spans, want exactly 1", roots)
	}
	for _, rec := range spans {
		if rec.Parent == "" {
			continue
		}
		p, ok := byID[rec.Parent]
		if !ok {
			return fmt.Errorf("obs: span %s(%s) has orphan parent %s", rec.Name, rec.Span, rec.Parent)
		}
		if rec.Start < p.Start {
			return fmt.Errorf("obs: span %s(%s) starts before its parent %s", rec.Name, rec.Span, p.Name)
		}
	}
	return nil
}
