// Package obs is flowmotif's dependency-free observability layer: a
// lock-cheap metrics registry (atomic counters, gauges, and fixed-boundary
// log-scale histograms), a Span/stage-timer API, snapshot readout with
// quantile estimation, cross-member snapshot merging, and a Prometheus
// text-format exposition writer (prometheus.go).
//
// Design constraints, in order:
//
//   - Hot-path cost. Instruments are resolved once at registration and
//     held as pointers; Observe/Add/Set are a handful of atomic ops with
//     no locks, no maps, and no allocation. The registry mutex is touched
//     only at registration and snapshot time.
//   - Nil safety. Every instrument method is a no-op on a nil receiver,
//     so callers wire `Config.DisableObs` by simply not creating the
//     instruments — no branches at every observation site.
//   - No dependencies. Everything here is stdlib; the exposition format
//     is written (and validated, see ParseExposition) by hand.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A Label is one key=value dimension on a metric series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for Label{Key: k, Value: v}.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// metric kinds, as reported in MetricSnapshot.Kind and the exposition
// `# TYPE` line.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Counter is a monotonically increasing value. All methods are safe on a
// nil receiver (no-ops).
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0; negative deltas are ignored to keep the
// counter monotonic).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// FloatCounter is a monotonically increasing float64 value, for quantities
// that accumulate in fractional units (attributed CPU seconds). It snapshots
// as a plain counter series. All methods are safe on a nil receiver.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add adds v (v must be >= 0; negative deltas are ignored to keep the
// counter monotonic). Lock-free: a CAS loop over the float bits.
func (c *FloatCounter) Add(v float64) {
	if c == nil || !(v > 0) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current total.
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a value that can go up and down. All methods are safe on a nil
// receiver (no-ops).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by delta (either sign), for up/down quantities
// like in-flight request counts. Lock-free CAS over the float bits.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the last stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-boundary histogram with atomic bucket counts. The
// boundaries are upper bounds (`le` semantics): bucket i counts
// observations v <= bounds[i]; one implicit terminal bucket counts the
// rest (+Inf). Observe is lock-free: one binary search over the (small,
// immutable) bound slice, two atomic adds, and a CAS loop for the sum.
// All methods are safe on a nil receiver (no-ops / zero values).
type Histogram struct {
	bounds  []float64 // strictly increasing, finite
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	ex      atomic.Pointer[Exemplar]
}

// Exemplar links a histogram to one concrete traced observation, so a
// Prometheus quantile can be walked back to a span tree in
// /debug/traces. The slot keeps the worst (highest-valued) recent
// observation: a new exemplar replaces the old one when its value is at
// least as large, or when the old one has aged out (exemplarMaxAge) —
// slow-trace biased, but never pinned forever.
type Exemplar struct {
	Value    float64 `json:"value"`
	Trace    string  `json:"trace"`
	UnixNano int64   `json:"unix_nano"`
}

const exemplarMaxAge = time.Minute

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, len(bounds) if none
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h != nil {
		h.Observe(d.Seconds())
	}
}

// ObserveExemplar records v and offers (v, trace) as the histogram's
// exemplar (see Exemplar for the replacement policy). An empty trace
// degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, trace string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if trace == "" {
		return
	}
	now := time.Now().UnixNano()
	for {
		old := h.ex.Load()
		if old != nil && v < old.Value && now-old.UnixNano < int64(exemplarMaxAge) {
			return
		}
		if h.ex.CompareAndSwap(old, &Exemplar{Value: v, Trace: trace, UnixNano: now}) {
			return
		}
	}
}

// Start opens a Span ending in this histogram. On a nil receiver the
// returned Span is inert and End costs nothing (not even a clock read).
func (h *Histogram) Start() Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, t0: time.Now()}
}

// Snapshot returns a point-in-time copy of the histogram state. The
// bucket counts are loaded individually, not under a lock, so a snapshot
// taken during concurrent recording may be off by in-flight observations
// — fine for monitoring readout. The total Count is derived from the
// bucket counts, so a snapshot is always internally consistent (the
// exposition's +Inf bucket equals _count by construction).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	if ex := h.ex.Load(); ex != nil {
		cp := *ex
		s.Exemplar = &cp
	}
	return s
}

// Span measures one operation into a histogram. The zero Span is inert.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// End records the elapsed time and returns it (zero for an inert Span).
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.t0)
	s.h.Observe(d.Seconds())
	return d
}

// Timer measures consecutive stages of one operation: each Stage call
// records the time since the previous mark into the given histogram and
// advances the mark. The zero Timer is inert.
type Timer struct {
	on   bool //flowmotif:obsgate
	last time.Time
}

// StartTimer opens a stage timer.
func StartTimer() Timer { return Timer{on: true, last: time.Now()} }

// Stage records the time since the last mark into h (nil h: the duration
// is still returned) and advances the mark.
func (t *Timer) Stage(h *Histogram) time.Duration {
	if t == nil || !t.on {
		return 0
	}
	now := time.Now()
	d := now.Sub(t.last)
	t.last = now
	h.ObserveDuration(d)
	return d
}

// ExpBuckets returns log-scale bucket upper bounds spanning [lo, hi] with
// perDecade bounds per factor of 10. lo and hi must be positive with
// lo < hi and perDecade >= 1; the final bound is >= hi.
func ExpBuckets(lo, hi float64, perDecade int) []float64 {
	if !(lo > 0) || !(hi > lo) || perDecade < 1 {
		panic("obs: ExpBuckets requires 0 < lo < hi and perDecade >= 1")
	}
	step := math.Pow(10, 1/float64(perDecade))
	var out []float64
	for v := lo; ; v *= step {
		out = append(out, v)
		if v >= hi {
			return out
		}
	}
}

// LatencyBuckets is the default latency histogram layout: 1µs to 10s,
// four bounds per decade (~78% worst-case relative quantile error within
// a bucket, 29 buckets).
var LatencyBuckets = ExpBuckets(1e-6, 10, 4)

// SizeBuckets is the default size/count histogram layout: 1 to 1e6,
// two bounds per decade.
var SizeBuckets = ExpBuckets(1, 1e6, 2)

// Registry holds named instruments. Registration is idempotent: asking
// for the same (name, labels) again returns the existing instrument;
// asking for it under a different kind or bucket layout panics (a wiring
// bug, not a runtime condition).
type Registry struct {
	mu    sync.Mutex
	order []string // registration order of series keys
	byKey map[string]*series
}

type series struct {
	name   string
	help   string
	kind   string
	labels []Label
	ctr    *Counter
	fctr   *FloatCounter
	gauge  *Gauge
	hist   *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*series{}}
}

// seriesKey is the identity of one series: name plus labels sorted by key.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('{')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte('}')
	}
	return b.String()
}

func sortedLabels(labels []Label) []Label {
	if len(labels) <= 1 {
		return labels
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) lookup(name, help, kind string, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l.Key, name))
		}
	}
	labels = sortedLabels(labels)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s := r.byKey[key]; s != nil {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, s.kind))
		}
		return s
	}
	s := &series{name: name, help: help, kind: kind, labels: labels}
	r.byKey[key] = s
	r.order = append(r.order, key)
	return s
}

// Counter returns (registering on first use) the counter series
// name{labels...}.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, KindCounter, labels)
	if s.fctr != nil {
		panic(fmt.Sprintf("obs: float counter %q re-registered as counter", name))
	}
	if s.ctr == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// FloatCounter returns (registering on first use) a float-valued counter
// series name{labels...}. It shares the counter kind with Counter — a
// series is one or the other, never both (asking for the same series under
// the other flavor panics, a wiring bug).
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, KindCounter, labels)
	if s.ctr != nil {
		panic(fmt.Sprintf("obs: counter %q re-registered as float counter", name))
	}
	if s.fctr == nil {
		s.fctr = &FloatCounter{}
	}
	return s.fctr
}

// Gauge returns (registering on first use) the gauge series
// name{labels...}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, KindGauge, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns (registering on first use) the histogram series
// name{labels...} with the given bucket upper bounds (nil: the default
// LatencyBuckets). Bounds must be strictly increasing and finite; a
// re-registration with different bounds panics.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = LatencyBuckets
	}
	for i, b := range bounds {
		if math.IsInf(b, 0) || math.IsNaN(b) || (i > 0 && b <= bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q bounds must be finite and strictly increasing", name))
		}
	}
	s := r.lookup(name, help, KindHistogram, labels)
	if s.hist == nil {
		s.hist = &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	} else if !equalBounds(s.hist.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
	}
	return s.hist
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Snapshot returns every registered series, in registration order.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	keys := make([]string, len(r.order))
	copy(keys, r.order)
	byKey := make(map[string]*series, len(r.byKey))
	for k, s := range r.byKey {
		byKey[k] = s
	}
	r.mu.Unlock()
	out := make([]MetricSnapshot, 0, len(keys))
	for _, k := range keys {
		s := byKey[k]
		m := MetricSnapshot{Name: s.name, Help: s.help, Kind: s.kind, Labels: s.labels}
		switch s.kind {
		case KindCounter:
			if s.fctr != nil {
				m.Value = s.fctr.Value()
			} else {
				m.Value = float64(s.ctr.Value())
			}
		case KindGauge:
			m.Value = s.gauge.Value()
		case KindHistogram:
			h := s.hist.Snapshot()
			m.Hist = &h
		}
		out = append(out, m)
	}
	return out
}

// HistogramSnapshot is a point-in-time histogram readout: per-bucket
// counts (len(Bounds)+1, the last bucket is +Inf), total count, and sum.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	// Exemplar, when present, links the histogram to one concrete traced
	// observation (see Exemplar).
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) by locating the bucket
// holding the target rank and interpolating linearly within it, so the
// estimation error is bounded by the bucket width. Observations beyond
// the last finite bound clamp to it. Returns 0 on an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1] // +Inf bucket: clamp
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*((rank-prev)/float64(c))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Merge adds o's bucket counts into s. The bucket layouts must match
// (cluster members register identical instruments, so they do).
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) error {
	if len(s.Bounds) == 0 {
		s.Bounds = o.Bounds
		s.Counts = append([]uint64(nil), o.Counts...)
		s.Count = o.Count
		s.Sum = o.Sum
		s.Exemplar = o.Exemplar
		return nil
	}
	if !equalBounds(s.Bounds, o.Bounds) || len(s.Counts) != len(o.Counts) {
		return fmt.Errorf("obs: cannot merge histograms with different bucket layouts")
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Exemplar != nil && (s.Exemplar == nil || o.Exemplar.Value > s.Exemplar.Value) {
		s.Exemplar = o.Exemplar
	}
	return nil
}

// Quantiles is a standard latency summary extracted from a histogram.
type Quantiles struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Summary returns the p50/p95/p99 estimates.
func (s HistogramSnapshot) Summary() Quantiles {
	return Quantiles{P50: s.Quantile(0.50), P95: s.Quantile(0.95), P99: s.Quantile(0.99)}
}

// MetricSnapshot is one series in a Snapshot: a counter or gauge Value,
// or a histogram readout.
type MetricSnapshot struct {
	Name   string             `json:"name"`
	Help   string             `json:"help,omitempty"`
	Kind   string             `json:"kind"`
	Labels []Label            `json:"labels,omitempty"`
	Value  float64            `json:"value,omitempty"`
	Hist   *HistogramSnapshot `json:"hist,omitempty"`
}

// Accum merges metric snapshots from several sources (e.g. cluster
// members) into one exposition set. Counters and histograms with
// identical (name, labels) are summed / bucket-merged; gauges are kept
// per-source by appending the extra labels given to Add (a merged gauge
// has no meaning — a watermark summed across members is nonsense).
type Accum struct {
	order []string
	byKey map[string]*MetricSnapshot
}

// NewAccum returns an empty accumulator.
func NewAccum() *Accum {
	return &Accum{byKey: map[string]*MetricSnapshot{}}
}

// Add merges one source's snapshots. gaugeLabels (e.g. member="m1") are
// appended to gauge series only, keeping them distinguishable per source;
// counters and histograms merge across sources under their original
// labels. Histograms whose bucket layouts disagree keep the first layout
// and drop the mismatched source (wiring bug; exposition stays valid).
func (a *Accum) Add(snaps []MetricSnapshot, gaugeLabels ...Label) {
	for _, m := range snaps {
		labels := m.Labels
		if m.Kind == KindGauge && len(gaugeLabels) > 0 {
			labels = sortedLabels(append(append([]Label(nil), labels...), gaugeLabels...))
		}
		key := m.Kind + ":" + seriesKey(m.Name, labels)
		have := a.byKey[key]
		if have == nil {
			cp := m
			cp.Labels = labels
			if m.Hist != nil {
				h := HistogramSnapshot{}
				if h.Merge(*m.Hist) == nil {
					cp.Hist = &h
				}
			}
			a.byKey[key] = &cp
			a.order = append(a.order, key)
			continue
		}
		switch m.Kind {
		case KindHistogram:
			if m.Hist != nil && have.Hist != nil {
				_ = have.Hist.Merge(*m.Hist) // layout mismatch: keep first
			}
		case KindGauge:
			have.Value = m.Value // same source re-added: last wins
		default:
			have.Value += m.Value
		}
	}
}

// Snapshots returns the merged set in first-seen order.
func (a *Accum) Snapshots() []MetricSnapshot {
	out := make([]MetricSnapshot, 0, len(a.order))
	for _, k := range a.order {
		out = append(out, *a.byKey[k])
	}
	return out
}
