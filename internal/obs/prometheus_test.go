package obs

import (
	"math"
	"strings"
	"testing"
)

func testSnapshots() []MetricSnapshot {
	r := NewRegistry()
	r.Counter("flowmotif_events_total", "Events ingested.").Add(42)
	r.Gauge("flowmotif_watermark", "Stream watermark.", L("member", "m1")).Set(123.5)
	r.Gauge("flowmotif_watermark", "Stream watermark.", L("member", "m2")).Set(99)
	h := r.Histogram("flowmotif_lag_seconds", "Detection lag.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)
	r.Gauge("flowmotif_weird", "has \"quotes\" and \\slashes\\\nnewline",
		L("path", `C:\tmp`), L("msg", "say \"hi\"\nbye")).Set(1)
	return r.Snapshot()
}

func TestWritePrometheusParses(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, testSnapshots()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	fams, err := ParseExposition(out)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, out)
	}
	if f := fams["flowmotif_events_total"]; f == nil || f.Type != "counter" || f.Series[0].Value != 42 {
		t.Fatalf("counter family = %+v", f)
	}
	wm := fams["flowmotif_watermark"]
	if wm == nil || wm.Type != "gauge" || len(wm.Series) != 2 {
		t.Fatalf("gauge family = %+v", wm)
	}
	lag := fams["flowmotif_lag_seconds"]
	if lag == nil || lag.Type != "histogram" {
		t.Fatalf("histogram family = %+v", lag)
	}
	// Cumulative le buckets: 1, 3, 3, 4(+Inf).
	wantCum := map[string]float64{"0.01": 1, "0.1": 3, "1": 3, "+Inf": 4}
	for _, s := range lag.Series {
		if s.Name != "flowmotif_lag_seconds_bucket" {
			continue
		}
		if want, ok := wantCum[s.Labels["le"]]; !ok || s.Value != want {
			t.Fatalf("bucket le=%s = %v, want %v", s.Labels["le"], s.Value, want)
		}
	}
	// Label escaping round-trips.
	weird := fams["flowmotif_weird"]
	if weird == nil || len(weird.Series) != 1 {
		t.Fatalf("weird family = %+v", weird)
	}
	if got := weird.Series[0].Labels["msg"]; got != "say \"hi\"\nbye" {
		t.Fatalf("escaped label round-trip = %q", got)
	}
	if got := weird.Series[0].Labels["path"]; got != `C:\tmp` {
		t.Fatalf("escaped label round-trip = %q", got)
	}
	// Unique TYPE lines: one per family.
	for _, fam := range []string{"flowmotif_watermark", "flowmotif_lag_seconds"} {
		if n := strings.Count(out, "# TYPE "+fam+" "); n != 1 {
			t.Fatalf("%d TYPE lines for %s", n, fam)
		}
	}
}

func TestParseExpositionRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"duplicate TYPE": "# TYPE a counter\na 1\n# TYPE a counter\n",
		"sample before TYPE for histogram": "x_bucket{le=\"+Inf\"} 1\n" +
			"# TYPE x histogram\n",
		"bad label syntax":       "# TYPE a gauge\na{k=unquoted} 1\n",
		"bad name":               "# TYPE 9bad gauge\n9bad 1\n",
		"missing +Inf bucket":    "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n",
		"non-cumulative buckets": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"+Inf != count":          "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"missing _sum":           "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"unknown type":           "# TYPE a sparkline\na 1\n",
		"unterminated label":     "# TYPE a gauge\na{k=\"v} 1\n",
		"bad escape":             "# TYPE a gauge\na{k=\"\\x\"} 1\n",
		"duplicate label":        "# TYPE a gauge\na{k=\"1\",k=\"2\"} 1\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition(in); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, in)
		}
	}
}

func TestParseExpositionAcceptsValid(t *testing.T) {
	in := strings.Join([]string{
		"# a freeform comment",
		"# HELP a Help text.",
		"# TYPE a counter",
		"a 1",
		"# TYPE b gauge",
		`b{x="1",y="2"} -3.5`,
		"# TYPE h histogram",
		`h_bucket{le="0.1"} 0`,
		`h_bucket{le="+Inf"} 2`,
		"h_sum 3.5",
		"h_count 2",
		"",
	}, "\n")
	fams, err := ParseExposition(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 3 {
		t.Fatalf("parsed %d families, want 3", len(fams))
	}
	if v := fams["b"].Series[0].Value; v != -3.5 {
		t.Fatalf("b = %v", v)
	}
}

func TestWriteEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("flowmotif_empty_seconds", "never observed", []float64{1, 2})
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(b.String())
	if err != nil {
		t.Fatalf("empty histogram exposition invalid: %v\n%s", err, b.String())
	}
	f := fams["flowmotif_empty_seconds"]
	if f == nil {
		t.Fatal("family missing")
	}
	for _, s := range f.Series {
		if s.Value != 0 {
			t.Fatalf("empty histogram sample %s = %v", s.Name, s.Value)
		}
	}
}

func TestFormatBound(t *testing.T) {
	if got := formatBound(math.Inf(1)); got != "+Inf" {
		t.Fatalf("formatBound(+Inf) = %q", got)
	}
	if got := formatBound(0.25); got != "0.25" {
		t.Fatalf("formatBound(0.25) = %q", got)
	}
}
