// Package motif defines network flow motifs (Kosyfaki et al., EDBT 2019,
// Definition 3.1): small directed graphs GM whose edges carry a total order
// 1..m describing how flow moves through the motif. The ordered edges form
// the motif's spanning path SPM, which is not necessarily simple (repeated
// vertices model cycles), but in which no ordered vertex pair repeats (EM is
// an edge set) and no edge is a self loop.
//
// A motif is represented canonically by its spanning-path vertex sequence,
// with vertices labelled 0,1,2,... in order of first appearance; e.g. the
// triangle M(3,3) is the sequence 0 1 2 0. The δ (duration) and φ (minimum
// flow) thresholds of Definition 3.1 are search parameters and live with the
// search code, not here.
package motif

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// MaxEdges bounds the motif size; the paper's catalog tops out at 5 edges
// and the algorithms are exponential in this number.
const MaxEdges = 16

// Motif is an immutable flow motif graph GM with its spanning path.
type Motif struct {
	path  []int // spanning-path vertex sequence, canonical labels
	numV  int
	name  string
	shape string // canonical spanning-path key, e.g. "0-1-2-0"
}

var (
	// ErrEmpty is returned for motifs with no edges.
	ErrEmpty = errors.New("motif: spanning path needs at least two vertices")
	// ErrSelfLoop is returned when consecutive path vertices coincide.
	ErrSelfLoop = errors.New("motif: self loops are not allowed")
	// ErrDuplicateEdge is returned when an ordered vertex pair repeats.
	ErrDuplicateEdge = errors.New("motif: ordered vertex pair repeats on the spanning path (EM is a set)")
	// ErrTooLarge is returned for motifs with more than MaxEdges edges.
	ErrTooLarge = fmt.Errorf("motif: more than %d edges", MaxEdges)
)

// FromPath builds a motif from a spanning-path vertex sequence. Vertex
// labels may be arbitrary non-negative ints; they are canonicalized to
// first-appearance order. The sequence 0 1 2 0 yields the triangle M(3,3).
func FromPath(seq ...int) (*Motif, error) {
	if len(seq) < 2 {
		return nil, ErrEmpty
	}
	if len(seq)-1 > MaxEdges {
		return nil, ErrTooLarge
	}
	canon := make([]int, len(seq))
	relabel := map[int]int{}
	for i, v := range seq {
		if v < 0 {
			return nil, fmt.Errorf("motif: negative vertex label %d", v)
		}
		c, ok := relabel[v]
		if !ok {
			c = len(relabel)
			relabel[v] = c
		}
		canon[i] = c
	}
	seen := map[[2]int]bool{}
	for i := 1; i < len(canon); i++ {
		u, v := canon[i-1], canon[i]
		if u == v {
			return nil, ErrSelfLoop
		}
		if seen[[2]int{u, v}] {
			return nil, ErrDuplicateEdge
		}
		seen[[2]int{u, v}] = true
	}
	m := &Motif{path: canon, numV: len(relabel)}
	m.name = fmt.Sprintf("M(%d,%d)", m.numV, m.NumEdges())
	parts := make([]string, len(canon))
	for i, v := range canon {
		parts[i] = strconv.Itoa(v)
	}
	m.shape = strings.Join(parts, "-")
	return m, nil
}

// MustPath is FromPath that panics on error; for tests and literals.
func MustPath(seq ...int) *Motif {
	m, err := FromPath(seq...)
	if err != nil {
		panic(err)
	}
	return m
}

// Named returns a copy of m carrying an explicit display name.
func (m *Motif) Named(name string) *Motif {
	nm := *m
	nm.name = name
	return &nm
}

// Chain returns the n-vertex chain motif 0→1→…→n-1 (n-1 edges).
func Chain(n int) (*Motif, error) {
	if n < 2 {
		return nil, ErrEmpty
	}
	seq := make([]int, n)
	for i := range seq {
		seq[i] = i
	}
	return FromPath(seq...)
}

// Cycle returns the n-vertex cycle motif 0→1→…→n-1→0 (n edges).
func Cycle(n int) (*Motif, error) {
	if n < 3 {
		return nil, errors.New("motif: cycles need at least three vertices")
	}
	seq := make([]int, n+1)
	for i := 0; i < n; i++ {
		seq[i] = i
	}
	seq[n] = 0
	return FromPath(seq...)
}

// NumEdges returns m = |EM|.
func (m *Motif) NumEdges() int { return len(m.path) - 1 }

// NumVertices returns |VM|.
func (m *Motif) NumVertices() int { return m.numV }

// Path returns the spanning-path vertex sequence (length NumEdges+1). The
// returned slice is shared; callers must not modify it.
func (m *Motif) Path() []int { return m.path }

// EdgeSource returns the motif vertex at the tail of edge i (0-based).
func (m *Motif) EdgeSource(i int) int { return m.path[i] }

// EdgeTarget returns the motif vertex at the head of edge i (0-based).
func (m *Motif) EdgeTarget(i int) int { return m.path[i+1] }

// IsCyclic reports whether any vertex repeats along the spanning path.
func (m *Motif) IsCyclic() bool { return m.numV < len(m.path) }

// Name returns the display name (defaults to "M(v,e)").
func (m *Motif) Name() string { return m.name }

// ShapeKey returns the canonical spanning-path form of the motif, e.g.
// "0-1-2-0". Because FromPath relabels vertices to first-appearance order,
// two motifs carry equal keys iff they are the same flow-motif shape,
// whatever display names they were given. The streaming engine groups
// subscriptions into plan groups by it so phase P1 runs once per shape
// (internal/stream), and the cluster co-locates same-shape subscriptions
// onto one shard (internal/cluster); see DESIGN.md §11. The key round-trips
// through Parse.
func (m *Motif) ShapeKey() string { return m.shape }

// String returns the name and the spanning path, e.g. "M(3,3)[0-1-2-0]".
func (m *Motif) String() string {
	return m.name + "[" + m.shape + "]"
}

// Parse builds a motif from a textual description. Accepted forms:
//
//   - a spanning path "0-1-2-0" (separators '-', '>', ',' or spaces);
//   - "chainN" / "cycleN" shorthands, e.g. "chain4";
//   - a catalog name from Figure 3, e.g. "M(4,4)B" (case-insensitive).
func Parse(s string) (*Motif, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return nil, ErrEmpty
	}
	lower := strings.ToLower(t)
	if n, ok := strings.CutPrefix(lower, "chain"); ok {
		if k, err := strconv.Atoi(n); err == nil {
			return Chain(k)
		}
	}
	if n, ok := strings.CutPrefix(lower, "cycle"); ok {
		if k, err := strconv.Atoi(n); err == nil {
			return Cycle(k)
		}
	}
	for _, m := range Catalog() {
		if strings.EqualFold(m.Name(), t) {
			return m, nil
		}
	}
	fields := strings.FieldsFunc(t, func(r rune) bool {
		return r == '-' || r == '>' || r == ',' || r == ' '
	})
	if len(fields) < 2 {
		return nil, fmt.Errorf("motif: cannot parse %q", s)
	}
	seq := make([]int, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("motif: cannot parse %q: bad vertex %q", s, f)
		}
		seq[i] = v
	}
	return FromPath(seq...)
}

// Catalog returns fresh copies of the ten benchmark motifs of the paper's
// Figure 3 (see DESIGN.md §5 for the exact shapes chosen).
func Catalog() []*Motif {
	return []*Motif{
		MustPath(0, 1, 2).Named("M(3,2)"),
		MustPath(0, 1, 2, 0).Named("M(3,3)"),
		MustPath(0, 1, 2, 3).Named("M(4,3)"),
		MustPath(0, 1, 2, 3, 0).Named("M(4,4)A"),
		MustPath(0, 1, 2, 3, 1).Named("M(4,4)B"),
		MustPath(0, 1, 2, 0, 3).Named("M(4,4)C"),
		MustPath(0, 1, 2, 3, 4).Named("M(5,4)"),
		MustPath(0, 1, 2, 3, 4, 0).Named("M(5,5)A"),
		MustPath(0, 1, 2, 3, 4, 1).Named("M(5,5)B"),
		MustPath(0, 1, 2, 3, 0, 4).Named("M(5,5)C"),
	}
}

// CatalogByName returns the catalog motif with the given name.
func CatalogByName(name string) (*Motif, bool) {
	for _, m := range Catalog() {
		if strings.EqualFold(m.Name(), name) {
			return m, true
		}
	}
	return nil, false
}
