package motif

import (
	"strings"
	"testing"
)

func TestFromPathCanonicalization(t *testing.T) {
	m, err := FromPath(7, 3, 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Path()
	want := []int{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("canonical path = %v, want %v", got, want)
		}
	}
	if m.NumVertices() != 3 || m.NumEdges() != 3 {
		t.Errorf("sizes = (%d,%d), want (3,3)", m.NumVertices(), m.NumEdges())
	}
	if !m.IsCyclic() {
		t.Error("triangle not reported cyclic")
	}
	if m.Name() != "M(3,3)" {
		t.Errorf("name = %q", m.Name())
	}
}

func TestFromPathErrors(t *testing.T) {
	if _, err := FromPath(); err != ErrEmpty {
		t.Errorf("empty: %v", err)
	}
	if _, err := FromPath(0); err != ErrEmpty {
		t.Errorf("single vertex: %v", err)
	}
	if _, err := FromPath(0, 0); err != ErrSelfLoop {
		t.Errorf("self loop: %v", err)
	}
	if _, err := FromPath(0, 1, 0, 1); err != ErrDuplicateEdge {
		t.Errorf("duplicate edge: %v", err)
	}
	if _, err := FromPath(0, -1); err == nil {
		t.Error("negative label accepted")
	}
	long := make([]int, MaxEdges+2)
	for i := range long {
		long[i] = i
	}
	if _, err := FromPath(long...); err != ErrTooLarge {
		t.Errorf("too large: %v", err)
	}
}

func TestPingPongTwoVertices(t *testing.T) {
	// 0→1→0 is legal: two distinct ordered pairs.
	m, err := FromPath(0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVertices() != 2 || m.NumEdges() != 2 || !m.IsCyclic() {
		t.Errorf("ping-pong = %v", m)
	}
}

func TestSingleEdgeMotif(t *testing.T) {
	m, err := FromPath(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumEdges() != 1 || m.NumVertices() != 2 || m.IsCyclic() {
		t.Errorf("M(2,1) = %v", m)
	}
	if m.EdgeSource(0) != 0 || m.EdgeTarget(0) != 1 {
		t.Error("edge endpoints wrong")
	}
}

func TestChainCycleConstructors(t *testing.T) {
	c, err := Chain(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumVertices() != 4 || c.NumEdges() != 3 || c.IsCyclic() {
		t.Errorf("Chain(4) = %v", c)
	}
	cy, err := Cycle(3)
	if err != nil {
		t.Fatal(err)
	}
	if cy.NumVertices() != 3 || cy.NumEdges() != 3 || !cy.IsCyclic() {
		t.Errorf("Cycle(3) = %v", cy)
	}
	if _, err := Chain(1); err == nil {
		t.Error("Chain(1) accepted")
	}
	if _, err := Cycle(2); err == nil {
		t.Error("Cycle(2) accepted")
	}
}

func TestCatalogShapes(t *testing.T) {
	cat := Catalog()
	if len(cat) != 10 {
		t.Fatalf("catalog has %d motifs, want 10", len(cat))
	}
	wantSizes := map[string][2]int{
		"M(3,2)": {3, 2}, "M(3,3)": {3, 3}, "M(4,3)": {4, 3},
		"M(4,4)A": {4, 4}, "M(4,4)B": {4, 4}, "M(4,4)C": {4, 4},
		"M(5,4)": {5, 4}, "M(5,5)A": {5, 5}, "M(5,5)B": {5, 5}, "M(5,5)C": {5, 5},
	}
	cyclic := map[string]bool{
		"M(3,3)": true, "M(4,4)A": true, "M(4,4)B": true, "M(4,4)C": true,
		"M(5,5)A": true, "M(5,5)B": true, "M(5,5)C": true,
	}
	seen := map[string]bool{}
	for _, m := range cat {
		if seen[m.Name()] {
			t.Errorf("duplicate catalog name %s", m.Name())
		}
		seen[m.Name()] = true
		sz, ok := wantSizes[m.Name()]
		if !ok {
			t.Errorf("unexpected motif %s", m.Name())
			continue
		}
		if m.NumVertices() != sz[0] || m.NumEdges() != sz[1] {
			t.Errorf("%s sizes = (%d,%d), want %v", m.Name(), m.NumVertices(), m.NumEdges(), sz)
		}
		if m.IsCyclic() != cyclic[m.Name()] {
			t.Errorf("%s cyclic = %v", m.Name(), m.IsCyclic())
		}
	}
}

func TestCatalogByName(t *testing.T) {
	m, ok := CatalogByName("m(4,4)b")
	if !ok || m.Name() != "M(4,4)B" {
		t.Errorf("CatalogByName failed: %v %v", m, ok)
	}
	if _, ok := CatalogByName("M(9,9)"); ok {
		t.Error("invented a motif")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		path []int
	}{
		{"0-1-2-0", []int{0, 1, 2, 0}},
		{"0>1>2", []int{0, 1, 2}},
		{"0,1,2,3,1", []int{0, 1, 2, 3, 1}},
		{"0 1 2", []int{0, 1, 2}},
		{"chain5", []int{0, 1, 2, 3, 4}},
		{"cycle4", []int{0, 1, 2, 3, 0}},
		{"M(3,3)", []int{0, 1, 2, 0}},
		{"m(5,5)c", []int{0, 1, 2, 3, 0, 4}},
	}
	for _, c := range cases {
		m, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		p := m.Path()
		if len(p) != len(c.path) {
			t.Errorf("Parse(%q) path = %v, want %v", c.in, p, c.path)
			continue
		}
		for i := range p {
			if p[i] != c.path[i] {
				t.Errorf("Parse(%q) path = %v, want %v", c.in, p, c.path)
				break
			}
		}
	}
	for _, bad := range []string{"", "hello", "0-x-2", "0", "chainx", "0-0"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestStringAndNamed(t *testing.T) {
	m := MustPath(0, 1, 2, 0)
	if s := m.String(); !strings.Contains(s, "0-1-2-0") || !strings.Contains(s, "M(3,3)") {
		t.Errorf("String = %q", s)
	}
	nm := m.Named("triangle")
	if nm.Name() != "triangle" || m.Name() != "M(3,3)" {
		t.Error("Named mutated the receiver or failed")
	}
}

func TestEdgeEndpointsAlongPath(t *testing.T) {
	m := MustPath(0, 1, 2, 3, 1) // M(4,4)B
	wantSrc := []int{0, 1, 2, 3}
	wantDst := []int{1, 2, 3, 1}
	for i := 0; i < m.NumEdges(); i++ {
		if m.EdgeSource(i) != wantSrc[i] || m.EdgeTarget(i) != wantDst[i] {
			t.Errorf("edge %d = (%d,%d), want (%d,%d)", i, m.EdgeSource(i), m.EdgeTarget(i), wantSrc[i], wantDst[i])
		}
	}
}
