package temporal

import (
	"fmt"
	"math"
	"sort"
)

// GraphArena builds time-series graphs with buffer reuse: every slice a
// Graph needs (the sort scratch, both CSR adjacencies, the points arena and
// its prefix sums) is kept between builds and regrown only when a build
// outsizes the previous ones. The streaming engine's shared-evaluation
// planner (internal/stream, DESIGN.md §11) builds one snapshot per finalize
// round through an arena, so steady-state snapshot cost is a sort plus
// arena fills — no per-round allocation once the arena has warmed up.
//
// The returned graph aliases the arena: it (and every graph previously
// returned by the same arena, including derived views such as WithFlows)
// is valid only until the arena's next Build. Callers that need an
// independent graph use NewGraphWithNodes, which builds through a
// throwaway arena.
//
// An arena is not safe for concurrent builds; the graphs it returns are
// safe for concurrent readers between builds, like any Graph.
type GraphArena struct {
	sorted []Event
	next   []int // in-CSR fill cursor scratch
	g      *Graph
}

// Build constructs the time-series graph of events over the node universe
// 0..numNodes-1, reusing the arena's buffers. Validation matches
// NewGraphWithNodes; on error the arena is unchanged and the previously
// returned graph stays valid.
func (a *GraphArena) Build(numNodes int, events []Event) (*Graph, error) {
	if numNodes < 0 {
		return nil, errNegativeNode
	}
	for i := range events {
		e := &events[i]
		if e.From < 0 || e.To < 0 {
			return nil, errNegativeNode
		}
		if int(e.From) >= numNodes || int(e.To) >= numNodes {
			return nil, fmt.Errorf("temporal: event %d references node outside universe of %d nodes", i, numNodes)
		}
		if e.F <= 0 || math.IsNaN(e.F) || math.IsInf(e.F, 0) {
			return nil, fmt.Errorf("temporal: event %d: %w (got %v)", i, errNonPositiveFlow, e.F)
		}
	}

	a.sorted = append(a.sorted[:0], events...)
	sorted := a.sorted
	sort.Slice(sorted, func(i, j int) bool {
		x, y := sorted[i], sorted[j]
		if x.From != y.From {
			return x.From < y.From
		}
		if x.To != y.To {
			return x.To < y.To
		}
		if x.T != y.T {
			return x.T < y.T
		}
		return x.F < y.F
	})

	if a.g == nil {
		a.g = &Graph{}
	}
	g := a.g
	g.numNodes = numNodes
	g.minT, g.maxT = math.MaxInt64, math.MinInt64
	g.totalFlow = 0
	g.selfLoops = 0
	g.outOff = zeroedInts(g.outOff, numNodes+1)
	g.outTo = g.outTo[:0]
	g.arcSrc = g.arcSrc[:0]
	g.arcOff = g.arcOff[:0]
	g.points = g.points[:0]
	g.cum = append(g.cum[:0], 0)

	for i := range sorted {
		e := sorted[i]
		if i == 0 || e.From != sorted[i-1].From || e.To != sorted[i-1].To {
			g.arcOff = append(g.arcOff, len(g.points))
			g.outTo = append(g.outTo, e.To)
			g.arcSrc = append(g.arcSrc, e.From)
			g.outOff[e.From+1]++ // provisional per-node arc count
		}
		g.points = append(g.points, Point{T: e.T, F: e.F})
		g.cum = append(g.cum, g.cum[len(g.cum)-1]+e.F)
		g.totalFlow += e.F
		if e.T < g.minT {
			g.minT = e.T
		}
		if e.T > g.maxT {
			g.maxT = e.T
		}
		if e.From == e.To {
			g.selfLoops++
		}
	}
	g.arcOff = append(g.arcOff, len(g.points))
	for u := 0; u < numNodes; u++ {
		g.outOff[u+1] += g.outOff[u]
	}
	if len(sorted) == 0 {
		g.minT, g.maxT = 0, 0
	}

	a.buildInCSR(g)
	return g, nil
}

// buildInCSR fills the reverse adjacency from the forward one, reusing the
// graph's in-CSR slices and the arena's cursor scratch.
func (a *GraphArena) buildInCSR(g *Graph) {
	numArcs := len(g.outTo)
	g.inOff = zeroedInts(g.inOff, g.numNodes+1)
	for arc := 0; arc < numArcs; arc++ {
		g.inOff[g.outTo[arc]+1]++
	}
	for v := 0; v < g.numNodes; v++ {
		g.inOff[v+1] += g.inOff[v]
	}
	g.inFrom = resizeSlice(g.inFrom, numArcs)
	g.inArc = resizeSlice(g.inArc, numArcs)
	a.next = resizeSlice(a.next, g.numNodes)
	copy(a.next, g.inOff[:g.numNodes])
	// Arcs are ordered by (src, dst); filling in this order keeps each
	// node's in-list sorted by source.
	for arc := 0; arc < numArcs; arc++ {
		v := g.outTo[arc]
		p := a.next[v]
		a.next[v]++
		g.inFrom[p] = g.arcSrc[arc]
		g.inArc[p] = arc
	}
}

// zeroedInts returns a zero-filled length-n slice, reusing capacity.
func zeroedInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// resizeSlice returns a length-n slice reusing capacity; contents are
// unspecified (the caller overwrites every element).
func resizeSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
