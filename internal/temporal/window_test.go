package temporal

import (
	"math/rand"
	"testing"
)

func TestWindowLogAppendOrderAndValidation(t *testing.T) {
	l := NewWindowLog()
	if _, ok := l.Watermark(); ok {
		t.Fatal("empty log reports a watermark")
	}
	if err := l.Append(Event{From: 0, To: 1, T: 10, F: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Event{From: 1, To: 2, T: 10, F: 1}); err != nil {
		t.Fatalf("equal-timestamp append rejected: %v", err)
	}
	if err := l.Append(Event{From: 1, To: 2, T: 9, F: 1}); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	if err := l.Append(Event{From: 1, To: 2, T: 11, F: 0}); err == nil {
		t.Fatal("non-positive flow accepted")
	}
	if err := l.Append(Event{From: -1, To: 2, T: 11, F: 1}); err == nil {
		t.Fatal("negative node accepted")
	}
	if w, _ := l.Watermark(); w != 10 {
		t.Fatalf("watermark = %d, want 10", w)
	}
	if l.Len() != 2 || l.Appended() != 2 {
		t.Fatalf("Len=%d Appended=%d, want 2, 2", l.Len(), l.Appended())
	}
	if l.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", l.NumNodes())
	}
}

func TestWindowLogEvictAndRange(t *testing.T) {
	l := NewWindowLog()
	for i := 0; i < 100; i++ {
		if err := l.Append(Event{From: NodeID(i % 5), To: NodeID((i + 1) % 5), T: int64(i), F: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.EvictBefore(0); n != 0 {
		t.Fatalf("evicted %d, want 0", n)
	}
	if n := l.EvictBefore(30); n != 30 {
		t.Fatalf("evicted %d, want 30", n)
	}
	if l.Len() != 70 || l.Evicted() != 30 {
		t.Fatalf("Len=%d Evicted=%d, want 70, 30", l.Len(), l.Evicted())
	}
	if ot, ok := l.OldestT(); !ok || ot != 30 {
		t.Fatalf("OldestT = %d,%v, want 30,true", ot, ok)
	}
	r := l.Range(40, 49)
	if len(r) != 10 || r[0].T != 40 || r[9].T != 49 {
		t.Fatalf("Range(40,49) = %d events [%v..%v]", len(r), r[0], r[len(r)-1])
	}
	if len(l.Range(200, 300)) != 0 || len(l.Range(0, 29)) != 0 {
		t.Fatal("out-of-window ranges non-empty")
	}
	// NumNodes survives eviction of all of a node's events.
	l.EvictBefore(1000)
	if l.Len() != 0 || l.NumNodes() != 5 {
		t.Fatalf("after full eviction: Len=%d NumNodes=%d", l.Len(), l.NumNodes())
	}
	// The log stays usable after full eviction.
	if err := l.Append(Event{From: 9, To: 0, T: 99, F: 1}); err != nil {
		t.Fatal(err)
	}
	if l.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", l.NumNodes())
	}
}

// TestWindowLogSlidingEquivalence slides a window over a random stream and
// checks that BuildGraph over the retained suffix always equals a graph
// built directly from the same events, while the ring-style compaction
// keeps memory bounded.
func TestWindowLogSlidingEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := NewWindowLog()
	var all []Event
	tNow := int64(0)
	const retention = 50
	for i := 0; i < 2000; i++ {
		tNow += int64(rng.Intn(3))
		e := Event{
			From: NodeID(rng.Intn(20)),
			To:   NodeID(rng.Intn(20)),
			T:    tNow,
			F:    1 + rng.Float64(),
		}
		all = append(all, e)
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
		l.EvictBefore(tNow - retention)

		if i%97 != 0 {
			continue
		}
		var want []Event
		for _, w := range all {
			if w.T >= tNow-retention {
				want = append(want, w)
			}
		}
		if l.Len() != len(want) {
			t.Fatalf("step %d: Len=%d, want %d", i, l.Len(), len(want))
		}
		g, err := l.BuildGraph(tNow-retention, tNow)
		if err != nil {
			t.Fatal(err)
		}
		wg, err := NewGraphWithNodes(l.NumNodes(), want)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEvents() != wg.NumEvents() || g.NumArcs() != wg.NumArcs() ||
			g.TotalFlow() != wg.TotalFlow() {
			t.Fatalf("step %d: snapshot graph diverges: %v vs %v", i, g, wg)
		}
	}
	if cap(l.events) > 4096 {
		t.Fatalf("backing array grew unbounded: cap=%d", cap(l.events))
	}
}

func TestWindowLogPrepend(t *testing.T) {
	l := NewWindowLog()
	for ti := int64(0); ti < 10; ti++ {
		if err := l.Append(Event{From: 0, To: 1, T: ti * 10, F: 1}); err != nil {
			t.Fatal(err)
		}
	}
	l.EvictBefore(50) // retained: t=50..90, evicted: t=0..40

	// Re-splicing evicted history restores it; overlap with the retained
	// suffix is dropped by timestamp cut.
	spliced, err := l.Prepend([]Event{
		{From: 0, To: 1, T: 20, F: 1},
		{From: 0, To: 1, T: 30, F: 1},
		{From: 0, To: 1, T: 40, F: 1},
		{From: 0, To: 1, T: 50, F: 1}, // duplicate of a retained event
	})
	if err != nil || spliced != 3 {
		t.Fatalf("Prepend = (%d, %v), want (3, nil)", spliced, err)
	}
	if l.Len() != 8 {
		t.Fatalf("Len = %d, want 8", l.Len())
	}
	if got, _ := l.OldestT(); got != 20 {
		t.Fatalf("OldestT = %d, want 20", got)
	}
	if l.Appended()-l.Evicted() != int64(l.Len()) {
		t.Fatalf("counter invariant broken: appended=%d evicted=%d retained=%d",
			l.Appended(), l.Evicted(), l.Len())
	}
	if w, _ := l.Watermark(); w != 90 {
		t.Fatalf("watermark moved to %d after Prepend, want 90", w)
	}
	// The spliced state must round-trip through the snapshot validator.
	if _, err := NewWindowLogFromState(l.State()); err != nil {
		t.Fatalf("spliced log state invalid: %v", err)
	}

	// Out-of-order and invalid prepends are rejected without side effects.
	if _, err := l.Prepend([]Event{{From: 0, To: 1, T: 15, F: 1}, {From: 0, To: 1, T: 5, F: 1}}); err == nil {
		t.Fatal("out-of-order prepend accepted")
	}
	if _, err := l.Prepend([]Event{{From: 0, To: 1, T: 5, F: -1}}); err == nil {
		t.Fatal("non-positive flow prepend accepted")
	}
	if l.Len() != 8 {
		t.Fatalf("failed prepend mutated the log: Len = %d, want 8", l.Len())
	}
}

func TestWindowLogPrependIntoFreshAndDrainedLog(t *testing.T) {
	// A never-started log adopts the prepended history wholesale,
	// establishing the watermark — the fresh-cluster-member case.
	l := NewWindowLog()
	n, err := l.Prepend([]Event{
		{From: 0, To: 1, T: 10, F: 1},
		{From: 2, To: 3, T: 20, F: 2},
	})
	if err != nil || n != 2 {
		t.Fatalf("Prepend = (%d, %v), want (2, nil)", n, err)
	}
	if w, ok := l.Watermark(); !ok || w != 20 {
		t.Fatalf("watermark = (%d, %v), want (20, true)", w, ok)
	}
	if l.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", l.NumNodes())
	}
	if err := l.Append(Event{From: 0, To: 1, T: 25, F: 1}); err != nil {
		t.Fatalf("append after prepend: %v", err)
	}

	// A started-but-drained log (everything evicted) accepts history up to
	// its watermark and nothing past it.
	d := NewWindowLog()
	if err := d.Append(Event{From: 0, To: 1, T: 100, F: 1}); err != nil {
		t.Fatal(err)
	}
	d.EvictBefore(200)
	if d.Len() != 0 {
		t.Fatalf("Len = %d after full eviction, want 0", d.Len())
	}
	if _, err := d.Prepend([]Event{{From: 0, To: 1, T: 150, F: 1}}); err == nil {
		t.Fatal("prepend past the watermark of a drained log accepted")
	}
	if n, err := d.Prepend([]Event{{From: 0, To: 1, T: 60, F: 1}, {From: 0, To: 1, T: 90, F: 1}}); err != nil || n != 2 {
		t.Fatalf("Prepend = (%d, %v), want (2, nil)", n, err)
	}
	if w, _ := d.Watermark(); w != 100 {
		t.Fatalf("watermark = %d after drained prepend, want 100", w)
	}
	if _, err := NewWindowLogFromState(d.State()); err != nil {
		t.Fatalf("drained-splice state invalid: %v", err)
	}
}
