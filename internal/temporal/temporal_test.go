package temporal

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// paperGraph returns the bitcoin user graph of the paper's Figure 2.
func paperGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := NewGraph(PaperFigure2Events())
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	return g
}

// PaperFigure2Events is the running example of the paper (Figure 2):
// u1..u4 are nodes 0..3.
func PaperFigure2Events() []Event {
	return []Event{
		{From: 0, To: 1, T: 13, F: 5},
		{From: 0, To: 1, T: 15, F: 7},
		{From: 2, To: 0, T: 10, F: 10},
		{From: 3, To: 0, T: 1, F: 2},
		{From: 3, To: 0, T: 3, F: 5},
		{From: 3, To: 2, T: 11, F: 10},
		{From: 1, To: 2, T: 18, F: 20},
		{From: 2, To: 3, T: 19, F: 5},
		{From: 2, To: 3, T: 21, F: 4},
		{From: 1, To: 3, T: 23, F: 7},
	}
}

func TestNewGraphBasicShape(t *testing.T) {
	g := paperGraph(t)
	if got := g.NumNodes(); got != 4 {
		t.Errorf("NumNodes = %d, want 4", got)
	}
	if got := g.NumArcs(); got != 7 {
		t.Errorf("NumArcs = %d, want 7", got)
	}
	if got := g.NumEvents(); got != 10 {
		t.Errorf("NumEvents = %d, want 10", got)
	}
	minT, maxT := g.TimeSpan()
	if minT != 1 || maxT != 23 {
		t.Errorf("TimeSpan = (%d, %d), want (1, 23)", minT, maxT)
	}
}

func TestSeriesMergedAndSorted(t *testing.T) {
	g := paperGraph(t)
	a, ok := g.FindArc(0, 1)
	if !ok {
		t.Fatal("arc (0,1) not found")
	}
	s := g.Series(a)
	want := []Point{{T: 13, F: 5}, {T: 15, F: 7}}
	if !reflect.DeepEqual(s, want) {
		t.Errorf("Series(0,1) = %v, want %v", s, want)
	}
	if got := g.FlowRange(a, 0, 2); got != 12 {
		t.Errorf("FlowRange = %v, want 12", got)
	}
	if got := g.FlowRange(a, 1, 2); got != 7 {
		t.Errorf("FlowRange suffix = %v, want 7", got)
	}
	if got := g.FlowRange(a, 1, 1); got != 0 {
		t.Errorf("empty FlowRange = %v, want 0", got)
	}
}

func TestFindArc(t *testing.T) {
	g := paperGraph(t)
	cases := []struct {
		u, v NodeID
		ok   bool
	}{
		{0, 1, true}, {1, 2, true}, {2, 0, true}, {3, 0, true},
		{3, 2, true}, {2, 3, true}, {1, 3, true},
		{1, 0, false}, {0, 2, false}, {0, 3, false}, {2, 1, false},
	}
	for _, c := range cases {
		arc, got := g.FindArc(c.u, c.v)
		if got != c.ok {
			t.Errorf("FindArc(%d,%d) ok = %v, want %v", c.u, c.v, got, c.ok)
		}
		if got {
			if g.ArcSource(arc) != c.u || g.ArcTarget(arc) != c.v {
				t.Errorf("arc (%d,%d) endpoints = (%d,%d)", c.u, c.v, g.ArcSource(arc), g.ArcTarget(arc))
			}
		}
	}
}

func TestDegreesAndAdjacency(t *testing.T) {
	g := paperGraph(t)
	if got := g.OutDegree(2); got != 2 { // 2->0, 2->3
		t.Errorf("OutDegree(2) = %d, want 2", got)
	}
	if got := g.InDegree(3); got != 2 { // 2->3, 1->3
		t.Errorf("InDegree(3) = %d, want 2", got)
	}
	lo, hi := g.OutArcs(0)
	if hi-lo != 1 || g.ArcTarget(lo) != 1 {
		t.Errorf("OutArcs(0): [%d,%d) target %d", lo, hi, g.ArcTarget(lo))
	}
	// In-arcs of node 0: from 2 and 3, sorted by source.
	in := g.InArcs(0)
	if len(in) != 2 || g.ArcSource(in[0]) != 2 || g.ArcSource(in[1]) != 3 {
		t.Errorf("InArcs(0) sources wrong: %v", in)
	}
}

func TestStatsTable3Shape(t *testing.T) {
	g := paperGraph(t)
	st := g.Stats()
	if st.Nodes != 4 || st.ConnectedPairs != 7 || st.Events != 10 {
		t.Errorf("stats = %+v", st)
	}
	wantAvg := (5 + 7 + 10 + 2 + 5 + 10 + 20 + 5 + 4 + 7) / 10.0
	if math.Abs(st.AvgFlow-wantAvg) > 1e-12 {
		t.Errorf("AvgFlow = %v, want %v", st.AvgFlow, wantAvg)
	}
	if st.MaxSeriesLen != 2 {
		t.Errorf("MaxSeriesLen = %d, want 2", st.MaxSeriesLen)
	}
	if st.SelfLoops != 0 {
		t.Errorf("SelfLoops = %d, want 0", st.SelfLoops)
	}
}

func TestEventsRoundTrip(t *testing.T) {
	in := PaperFigure2Events()
	g, err := NewGraph(in)
	if err != nil {
		t.Fatal(err)
	}
	back := g.Events()
	g2, err := NewGraph(back)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Events(), g2.Events()) {
		t.Error("Events round trip not stable")
	}
	if g2.TotalFlow() != g.TotalFlow() || g2.NumArcs() != g.NumArcs() {
		t.Error("round-tripped graph differs")
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := NewGraph([]Event{{From: 0, To: 1, T: 1, F: 0}}); err == nil {
		t.Error("zero flow accepted")
	}
	if _, err := NewGraph([]Event{{From: 0, To: 1, T: 1, F: -2}}); err == nil {
		t.Error("negative flow accepted")
	}
	if _, err := NewGraph([]Event{{From: 0, To: 1, T: 1, F: math.NaN()}}); err == nil {
		t.Error("NaN flow accepted")
	}
	if _, err := NewGraph([]Event{{From: -1, To: 1, T: 1, F: 1}}); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := NewGraphWithNodes(2, []Event{{From: 0, To: 5, T: 1, F: 1}}); err == nil {
		t.Error("out-of-universe node accepted")
	}
	if _, err := NewGraphWithNodes(-1, nil); err == nil {
		t.Error("negative universe accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := NewGraph(nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || g.NumArcs() != 0 || g.NumEvents() != 0 {
		t.Errorf("empty graph not empty: %v", g)
	}
	g2, err := NewGraphWithNodes(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 5 || g2.NumArcs() != 0 {
		t.Errorf("empty 5-node graph wrong: %v", g2)
	}
	if _, ok := g2.FindArc(0, 1); ok {
		t.Error("FindArc on empty graph returned ok")
	}
}

func TestSelfLoopsAllowedAndCounted(t *testing.T) {
	g, err := NewGraph([]Event{
		{From: 0, To: 0, T: 1, F: 3},
		{From: 0, To: 1, T: 2, F: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats().SelfLoops != 1 {
		t.Errorf("SelfLoops = %d, want 1", g.Stats().SelfLoops)
	}
	if _, ok := g.FindArc(0, 0); !ok {
		t.Error("self-loop arc missing")
	}
}

func TestDuplicateTimestampsKept(t *testing.T) {
	// Facebook-style 30-second buckets produce ties; both points kept.
	g, err := NewGraph([]Event{
		{From: 0, To: 1, T: 30, F: 2},
		{From: 0, To: 1, T: 30, F: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.FindArc(0, 1)
	s := g.Series(a)
	if len(s) != 2 || s[0].T != 30 || s[1].T != 30 {
		t.Errorf("tied series = %v", s)
	}
	if s[0].F > s[1].F {
		t.Error("tied points not deterministically ordered by flow")
	}
}

func TestWithFlows(t *testing.T) {
	g := paperGraph(t)
	flows := g.Flows()
	// Reverse the flows: structure identical, flows permuted.
	for i, j := 0, len(flows)-1; i < j; i, j = i+1, j-1 {
		flows[i], flows[j] = flows[j], flows[i]
	}
	ng, err := g.WithFlows(flows)
	if err != nil {
		t.Fatal(err)
	}
	if ng.NumArcs() != g.NumArcs() || ng.NumEvents() != g.NumEvents() {
		t.Error("structure changed")
	}
	if math.Abs(ng.TotalFlow()-g.TotalFlow()) > 1e-9 {
		t.Errorf("total flow changed: %v vs %v", ng.TotalFlow(), g.TotalFlow())
	}
	for a := 0; a < g.NumArcs(); a++ {
		sOld, sNew := g.Series(a), ng.Series(a)
		for i := range sOld {
			if sOld[i].T != sNew[i].T {
				t.Fatalf("timestamp changed on arc %d", a)
			}
		}
	}
	// Original untouched.
	a, _ := g.FindArc(0, 1)
	if g.Series(a)[0].F != 5 {
		t.Error("WithFlows mutated the source graph")
	}

	if _, err := g.WithFlows(flows[:3]); err == nil {
		t.Error("short flow slice accepted")
	}
	bad := g.Flows()
	bad[0] = -1
	if _, err := g.WithFlows(bad); err == nil {
		t.Error("negative replacement flow accepted")
	}
}

func TestPrefixByTime(t *testing.T) {
	g := paperGraph(t)
	p := g.PrefixByTime(11)
	if p.NumNodes() != g.NumNodes() {
		t.Errorf("prefix node universe changed: %d", p.NumNodes())
	}
	if p.NumEvents() != 5 { // t = 1,3,10,11 and... t<=11: 1,3,10,11 => 4? plus none at 11? recount
		// events: t in {13,15,10,1,3,11,18,19,21,23}; <=11: {10,1,3,11} = 4
		t.Logf("events kept: %d", p.NumEvents())
	}
	if p.NumEvents() != 4 {
		t.Errorf("PrefixByTime(11) kept %d events, want 4", p.NumEvents())
	}
	full := g.PrefixByTime(1000)
	if full.NumEvents() != g.NumEvents() || full.NumArcs() != g.NumArcs() {
		t.Error("full prefix differs from original")
	}
	empty := g.PrefixByTime(0)
	if empty.NumEvents() != 0 {
		t.Errorf("PrefixByTime(0) kept %d events", empty.NumEvents())
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	a := in.ID("addr-a")
	b := in.ID("addr-b")
	if a == b {
		t.Error("distinct labels shared an id")
	}
	if got := in.ID("addr-a"); got != a {
		t.Errorf("re-intern = %d, want %d", got, a)
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
	if in.Label(a) != "addr-a" || in.Label(b) != "addr-b" {
		t.Error("labels wrong")
	}
	if _, ok := in.Lookup("missing"); ok {
		t.Error("Lookup invented a label")
	}
}

// randomEvents builds a reproducible random event set.
func randomEvents(rng *rand.Rand, nodes, count int) []Event {
	evs := make([]Event, count)
	for i := range evs {
		evs[i] = Event{
			From: NodeID(rng.Intn(nodes)),
			To:   NodeID(rng.Intn(nodes)),
			T:    int64(rng.Intn(1000)),
			F:    1 + rng.Float64()*10,
		}
	}
	return evs
}

func TestPropertySeriesSortedAndComplete(t *testing.T) {
	f := func(seed int64, nodesU, countU uint8) bool {
		nodes := int(nodesU%20) + 1
		count := int(countU)
		rng := rand.New(rand.NewSource(seed))
		evs := randomEvents(rng, nodes, count)
		g, err := NewGraph(evs)
		if err != nil {
			return false
		}
		if g.NumEvents() != count {
			return false
		}
		total := 0.0
		for a := 0; a < g.NumArcs(); a++ {
			s := g.Series(a)
			if len(s) == 0 {
				return false // arcs exist only for connected pairs
			}
			if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i].T < s[j].T }) &&
				!sort.SliceIsSorted(s, func(i, j int) bool {
					if s[i].T != s[j].T {
						return s[i].T < s[j].T
					}
					return s[i].F <= s[j].F
				}) {
				return false
			}
			got := g.FlowRange(a, 0, len(s))
			want := 0.0
			for _, p := range s {
				want += p.F
			}
			if math.Abs(got-want) > 1e-9 {
				return false
			}
			total += want
		}
		return math.Abs(total-g.TotalFlow()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFindArcMatchesAdjacency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		evs := randomEvents(rng, 12, 80)
		g, err := NewGraph(evs)
		if err != nil {
			return false
		}
		want := map[[2]NodeID]bool{}
		for _, e := range evs {
			want[[2]NodeID{e.From, e.To}] = true
		}
		for u := NodeID(0); int(u) < g.NumNodes(); u++ {
			for v := NodeID(0); int(v) < g.NumNodes(); v++ {
				_, ok := g.FindArc(u, v)
				if ok != want[[2]NodeID{u, v}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPrefixMonotone(t *testing.T) {
	f := func(seed int64, cut1, cut2 uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := NewGraph(randomEvents(rng, 10, 120))
		if err != nil {
			return false
		}
		a, b := int64(cut1%1000), int64(cut2%1000)
		if a > b {
			a, b = b, a
		}
		ga, gb := g.PrefixByTime(a), g.PrefixByTime(b)
		return ga.NumEvents() <= gb.NumEvents() && gb.NumEvents() <= g.NumEvents()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
