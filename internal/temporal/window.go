package temporal

import (
	"fmt"
	"math"
	"sort"
)

// SatAdd returns a+b with saturation at the int64 extremes. Streaming and
// storage code uses it for window arithmetic (anchor ± δ) so sentinel
// timestamps at the extremes cannot wrap around.
func SatAdd(a, b int64) int64 {
	if b > 0 && a > math.MaxInt64-b {
		return math.MaxInt64
	}
	if b < 0 && a < math.MinInt64-b {
		return math.MinInt64
	}
	return a + b
}

// SatSub returns a-b with saturation at the int64 extremes.
func SatSub(a, b int64) int64 { return SatAdd(a, -b) }

// WindowLog is the append/evict event store behind streaming ingestion
// (internal/stream): a time-ordered log of events over a sliding retention
// window. Appends must be non-decreasing in T (the stream contract);
// EvictBefore drops the expired prefix. Storage is a ring-style compacting
// buffer — eviction advances a head index and the backing array is reused
// once the dead prefix dominates, so steady-state ingestion allocates O(1)
// amortized per event regardless of stream length.
//
// A WindowLog is not safe for concurrent use; the stream engine serializes
// access.
type WindowLog struct {
	events []Event // retained events, time-ordered, live part events[head:]
	head   int     // evicted prefix length within events

	numNodes  int   // max node id seen + 1 (over the whole stream, not just retained)
	appended  int64 // events ever appended
	evicted   int64 // events ever evicted
	watermark int64 // largest T appended
	started   bool  // at least one event appended
}

// NewWindowLog returns an empty log.
func NewWindowLog() *WindowLog { return &WindowLog{} }

// Append adds one event. Events must arrive in non-decreasing timestamp
// order; an event older than the current watermark is rejected with an
// error and the log is unchanged. Flow and node validation matches
// NewGraphWithNodes.
func (l *WindowLog) Append(e Event) error {
	if e.From < 0 || e.To < 0 {
		return errNegativeNode
	}
	if e.F <= 0 || math.IsNaN(e.F) || math.IsInf(e.F, 0) {
		return fmt.Errorf("temporal: %w (got %v)", errNonPositiveFlow, e.F)
	}
	if l.started && e.T < l.watermark {
		return fmt.Errorf("temporal: out-of-order event at t=%d behind watermark %d", e.T, l.watermark)
	}
	l.events = append(l.events, e)
	l.appended++
	l.watermark = e.T
	l.started = true
	if n := int(e.From) + 1; n > l.numNodes {
		l.numNodes = n
	}
	if n := int(e.To) + 1; n > l.numNodes {
		l.numNodes = n
	}
	return nil
}

// Prepend splices older history in front of the retained suffix: events
// the log evicted earlier, or — on a log fed from a broadcast stream —
// events an identical upstream log retained but this one never saw. The
// batch must be time-ordered, valid (like Append), and must not reach past
// the current oldest retained event; on a non-empty log events at or after
// OldestT are duplicates of retained ones and are dropped. The splice
// counts against the eviction counters (as if un-evicted), or against the
// append counter when the log never held the events, keeping the
// appended−evicted == retained invariant. Returns how many events were
// spliced in. On error the log is unchanged.
//
// Prepend exists for subscription re-placement (internal/cluster): the
// receiving engine's log holds the recent suffix of the shared broadcast
// stream, and the handoff's catch-up events supply exactly the older
// prefix the moved subscription still needs.
func (l *WindowLog) Prepend(events []Event) (int, error) {
	if len(events) == 0 {
		return 0, nil
	}
	cut := len(events)
	if oldest, ok := l.OldestT(); ok {
		cut = sort.Search(len(events), func(i int) bool { return events[i].T >= oldest })
	}
	prev := int64(math.MinInt64)
	for i := 0; i < cut; i++ {
		e := events[i]
		if e.From < 0 || e.To < 0 {
			return 0, errNegativeNode
		}
		if e.F <= 0 || math.IsNaN(e.F) || math.IsInf(e.F, 0) {
			return 0, fmt.Errorf("temporal: %w (got %v)", errNonPositiveFlow, e.F)
		}
		if e.T < prev {
			return 0, fmt.Errorf("temporal: prepend event %d out of order (t=%d after %d)", i, e.T, prev)
		}
		prev = e.T
	}
	if l.started && l.Len() == 0 && prev > l.watermark {
		return 0, fmt.Errorf("temporal: prepend reaches t=%d past watermark %d", prev, l.watermark)
	}
	if cut == 0 {
		return 0, nil
	}
	merged := make([]Event, 0, cut+l.Len())
	merged = append(merged, events[:cut]...)
	merged = append(merged, l.events[l.head:]...)
	l.events = merged
	l.head = 0
	if n := int64(cut); l.evicted >= n {
		l.evicted -= n
	} else {
		l.appended += n - l.evicted
		l.evicted = 0
	}
	for _, e := range events[:cut] {
		if n := int(e.From) + 1; n > l.numNodes {
			l.numNodes = n
		}
		if n := int(e.To) + 1; n > l.numNodes {
			l.numNodes = n
		}
	}
	if !l.started {
		l.watermark = prev
		l.started = true
	}
	return cut, nil
}

// EvictBefore drops every retained event with T < t and returns how many
// were dropped. The backing array is compacted once the dead prefix
// exceeds the live part, keeping memory proportional to the retention
// window.
func (l *WindowLog) EvictBefore(t int64) int {
	live := l.events[l.head:]
	n := sort.Search(len(live), func(i int) bool { return live[i].T >= t })
	if n == 0 {
		return 0
	}
	l.head += n
	l.evicted += int64(n)
	if l.head > len(l.events)-l.head {
		l.events = append(l.events[:0], l.events[l.head:]...)
		l.head = 0
	}
	return n
}

// Len returns the number of retained events.
func (l *WindowLog) Len() int { return len(l.events) - l.head }

// NumNodes returns the node universe size observed so far (max id + 1),
// including nodes whose events have all been evicted.
func (l *WindowLog) NumNodes() int { return l.numNodes }

// Watermark returns the largest appended timestamp; ok is false while the
// log has never seen an event.
func (l *WindowLog) Watermark() (t int64, ok bool) { return l.watermark, l.started }

// Appended and Evicted return lifetime counters.
func (l *WindowLog) Appended() int64 { return l.appended }

// Evicted returns the number of events dropped by EvictBefore calls.
func (l *WindowLog) Evicted() int64 { return l.evicted }

// OldestT returns the timestamp of the oldest retained event; ok is false
// when the log is empty.
func (l *WindowLog) OldestT() (t int64, ok bool) {
	if l.Len() == 0 {
		return 0, false
	}
	return l.events[l.head].T, true
}

// Range returns the retained events with lo <= T <= hi, time-ordered. The
// slice aliases log storage and is valid only until the next Append or
// EvictBefore.
func (l *WindowLog) Range(lo, hi int64) []Event {
	live := l.events[l.head:]
	i := sort.Search(len(live), func(k int) bool { return live[k].T >= lo })
	j := sort.Search(len(live), func(k int) bool { return live[k].T > hi })
	return live[i:j]
}

// WindowLogState is the serializable state of a WindowLog, used by the
// streaming engine's snapshot/recovery protocol (internal/stream,
// internal/store). Events holds the retained suffix only; the lifetime
// counters preserve eviction accounting across a restore.
type WindowLogState struct {
	Events    []Event `json:"events"`
	Appended  int64   `json:"appended"`
	Evicted   int64   `json:"evicted"`
	Watermark int64   `json:"watermark"`
	Started   bool    `json:"started"`
	NumNodes  int     `json:"numNodes"`
}

// State snapshots the log. The returned events are a copy; the caller may
// retain them across later Append/EvictBefore calls.
func (l *WindowLog) State() WindowLogState {
	return WindowLogState{
		Events:    append([]Event(nil), l.events[l.head:]...),
		Appended:  l.appended,
		Evicted:   l.evicted,
		Watermark: l.watermark,
		Started:   l.started,
		NumNodes:  l.numNodes,
	}
}

// NewWindowLogFromState rebuilds a log from a State snapshot, validating
// internal consistency (event order and flows, counter arithmetic, the
// watermark bound) so a corrupted snapshot cannot poison the engine.
func NewWindowLogFromState(s WindowLogState) (*WindowLog, error) {
	if s.Appended < 0 || s.Evicted < 0 || s.Appended-s.Evicted != int64(len(s.Events)) {
		return nil, fmt.Errorf("temporal: log state counters inconsistent: appended=%d evicted=%d retained=%d",
			s.Appended, s.Evicted, len(s.Events))
	}
	if !s.Started && (s.Appended != 0 || len(s.Events) != 0) {
		return nil, fmt.Errorf("temporal: log state not started but has %d appended events", s.Appended)
	}
	maxID := 0
	prev := int64(math.MinInt64)
	for i, e := range s.Events {
		if e.From < 0 || e.To < 0 {
			return nil, fmt.Errorf("temporal: log state event %d: %w", i, errNegativeNode)
		}
		if e.F <= 0 || math.IsNaN(e.F) || math.IsInf(e.F, 0) {
			return nil, fmt.Errorf("temporal: log state event %d: %w (got %v)", i, errNonPositiveFlow, e.F)
		}
		if e.T < prev {
			return nil, fmt.Errorf("temporal: log state event %d out of order (t=%d after %d)", i, e.T, prev)
		}
		prev = e.T
		if n := int(e.From) + 1; n > maxID {
			maxID = n
		}
		if n := int(e.To) + 1; n > maxID {
			maxID = n
		}
	}
	if len(s.Events) > 0 && s.Watermark < prev {
		return nil, fmt.Errorf("temporal: log state watermark %d behind last event t=%d", s.Watermark, prev)
	}
	if s.NumNodes < maxID {
		return nil, fmt.Errorf("temporal: log state universe %d smaller than observed max id %d", s.NumNodes, maxID)
	}
	return &WindowLog{
		events:    append([]Event(nil), s.Events...),
		numNodes:  s.NumNodes,
		appended:  s.Appended,
		evicted:   s.Evicted,
		watermark: s.Watermark,
		started:   s.Started,
	}, nil
}

// BuildGraph materializes the time-series graph of the events with
// lo <= T <= hi. Node ids are preserved, but the universe is trimmed to
// the largest id appearing in the range, so per-snapshot cost tracks the
// window's active nodes rather than every id the stream has ever seen
// (which only grows). The graph is an independent snapshot: later
// Append/EvictBefore calls do not affect it.
func (l *WindowLog) BuildGraph(lo, hi int64) (*Graph, error) {
	evs := l.Range(lo, hi)
	return NewGraphWithNodes(rangeUniverse(evs), evs)
}

// BuildGraphArena is BuildGraph through a reusable GraphArena: the stream
// engine's per-finalize-round snapshot path, where one graph per round is
// rebuilt over the union extent of all due anchor bands and the previous
// round's buffers are recycled. The returned graph is valid only until the
// arena's next build (see GraphArena).
func (l *WindowLog) BuildGraphArena(a *GraphArena, lo, hi int64) (*Graph, error) {
	evs := l.Range(lo, hi)
	return a.Build(rangeUniverse(evs), evs)
}

// rangeUniverse trims the node universe to the largest id appearing in the
// event range, so per-snapshot cost tracks the window's active nodes
// rather than every id the stream has ever seen (which only grows).
func rangeUniverse(evs []Event) int {
	n := 0
	for i := range evs {
		if v := int(evs[i].From) + 1; v > n {
			n = v
		}
		if v := int(evs[i].To) + 1; v > n {
			n = v
		}
	}
	return n
}
