package temporal

import (
	"fmt"
	"math"
	"sort"
)

// WindowLog is the append/evict event store behind streaming ingestion
// (internal/stream): a time-ordered log of events over a sliding retention
// window. Appends must be non-decreasing in T (the stream contract);
// EvictBefore drops the expired prefix. Storage is a ring-style compacting
// buffer — eviction advances a head index and the backing array is reused
// once the dead prefix dominates, so steady-state ingestion allocates O(1)
// amortized per event regardless of stream length.
//
// A WindowLog is not safe for concurrent use; the stream engine serializes
// access.
type WindowLog struct {
	events []Event // retained events, time-ordered, live part events[head:]
	head   int     // evicted prefix length within events

	numNodes  int   // max node id seen + 1 (over the whole stream, not just retained)
	appended  int64 // events ever appended
	evicted   int64 // events ever evicted
	watermark int64 // largest T appended
	started   bool  // at least one event appended
}

// NewWindowLog returns an empty log.
func NewWindowLog() *WindowLog { return &WindowLog{} }

// Append adds one event. Events must arrive in non-decreasing timestamp
// order; an event older than the current watermark is rejected with an
// error and the log is unchanged. Flow and node validation matches
// NewGraphWithNodes.
func (l *WindowLog) Append(e Event) error {
	if e.From < 0 || e.To < 0 {
		return errNegativeNode
	}
	if e.F <= 0 || math.IsNaN(e.F) || math.IsInf(e.F, 0) {
		return fmt.Errorf("temporal: %w (got %v)", errNonPositiveFlow, e.F)
	}
	if l.started && e.T < l.watermark {
		return fmt.Errorf("temporal: out-of-order event at t=%d behind watermark %d", e.T, l.watermark)
	}
	l.events = append(l.events, e)
	l.appended++
	l.watermark = e.T
	l.started = true
	if n := int(e.From) + 1; n > l.numNodes {
		l.numNodes = n
	}
	if n := int(e.To) + 1; n > l.numNodes {
		l.numNodes = n
	}
	return nil
}

// EvictBefore drops every retained event with T < t and returns how many
// were dropped. The backing array is compacted once the dead prefix
// exceeds the live part, keeping memory proportional to the retention
// window.
func (l *WindowLog) EvictBefore(t int64) int {
	live := l.events[l.head:]
	n := sort.Search(len(live), func(i int) bool { return live[i].T >= t })
	if n == 0 {
		return 0
	}
	l.head += n
	l.evicted += int64(n)
	if l.head > len(l.events)-l.head {
		l.events = append(l.events[:0], l.events[l.head:]...)
		l.head = 0
	}
	return n
}

// Len returns the number of retained events.
func (l *WindowLog) Len() int { return len(l.events) - l.head }

// NumNodes returns the node universe size observed so far (max id + 1),
// including nodes whose events have all been evicted.
func (l *WindowLog) NumNodes() int { return l.numNodes }

// Watermark returns the largest appended timestamp; ok is false while the
// log has never seen an event.
func (l *WindowLog) Watermark() (t int64, ok bool) { return l.watermark, l.started }

// Appended and Evicted return lifetime counters.
func (l *WindowLog) Appended() int64 { return l.appended }

// Evicted returns the number of events dropped by EvictBefore calls.
func (l *WindowLog) Evicted() int64 { return l.evicted }

// OldestT returns the timestamp of the oldest retained event; ok is false
// when the log is empty.
func (l *WindowLog) OldestT() (t int64, ok bool) {
	if l.Len() == 0 {
		return 0, false
	}
	return l.events[l.head].T, true
}

// Range returns the retained events with lo <= T <= hi, time-ordered. The
// slice aliases log storage and is valid only until the next Append or
// EvictBefore.
func (l *WindowLog) Range(lo, hi int64) []Event {
	live := l.events[l.head:]
	i := sort.Search(len(live), func(k int) bool { return live[k].T >= lo })
	j := sort.Search(len(live), func(k int) bool { return live[k].T > hi })
	return live[i:j]
}

// BuildGraph materializes the time-series graph of the events with
// lo <= T <= hi. Node ids are preserved, but the universe is trimmed to
// the largest id appearing in the range, so per-snapshot cost tracks the
// window's active nodes rather than every id the stream has ever seen
// (which only grows). The graph is an independent snapshot: later
// Append/EvictBefore calls do not affect it.
func (l *WindowLog) BuildGraph(lo, hi int64) (*Graph, error) {
	evs := l.Range(lo, hi)
	n := 0
	for i := range evs {
		if v := int(evs[i].From) + 1; v > n {
			n = v
		}
		if v := int(evs[i].To) + 1; v > n {
			n = v
		}
	}
	return NewGraphWithNodes(n, evs)
}
