// Package temporal implements the interaction-network substrate of the
// flow-motif system: a directed temporal multigraph G(V, E) whose edges
// carry timestamps and positive flow values, stored in its merged
// "time-series graph" form GT(V, ET) (Kosyfaki et al., EDBT 2019, §3–4).
//
// Every ordered node pair (u, v) connected by at least one event becomes an
// arc of GT; the arc carries the interaction time series R(u, v), the
// time-ordered sequence of (t, f) points between u and v. The graph is an
// immutable, cache-friendly CSR structure:
//
//   - out-adjacency: for each node, the sorted list of out-neighbours; the
//     position of a neighbour entry is the arc identifier;
//   - in-adjacency: the reverse view, with back-references to arc ids;
//   - a single points arena holding all series back to back, plus one global
//     prefix-sum array so that the aggregated flow of any contiguous series
//     range is two array reads.
//
// Graphs are safe for concurrent readers.
package temporal

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a vertex of the interaction network. Node identifiers
// are expected to be dense (0..NumNodes-1); use Interner to map external
// string identifiers onto dense ids.
type NodeID int32

// Point is one interaction element (t, f) on an arc's time series.
type Point struct {
	T int64   // timestamp
	F float64 // flow transferred at T (positive)
}

// Event is one edge of the input multigraph: at time T, From sent F units of
// flow to To.
type Event struct {
	From NodeID
	To   NodeID
	T    int64
	F    float64
}

// Graph is the immutable time-series graph GT(V, ET).
type Graph struct {
	numNodes int

	// Out-adjacency CSR. Arc a (0 <= a < NumArcs) is the entry outTo[a];
	// arcs of node u occupy outTo[outOff[u]:outOff[u+1]], sorted by target.
	outOff []int
	outTo  []NodeID
	arcSrc []NodeID // source node per arc

	// In-adjacency CSR: inFrom[inOff[v]:inOff[v+1]] lists sources, sorted;
	// inArc holds the corresponding arc ids.
	inOff  []int
	inFrom []NodeID
	inArc  []int

	// Series arena: points of arc a are points[arcOff[a]:arcOff[a+1]],
	// sorted by T. cum[i] is the total flow of points[0:i] (global prefix
	// sums; differences are only ever taken within one arc).
	arcOff []int
	points []Point
	cum    []float64

	minT, maxT int64
	totalFlow  float64
	selfLoops  int
}

// Stats summarizes a graph in the shape of the paper's Table 3.
type Stats struct {
	Nodes          int     // |V|
	ConnectedPairs int     // |ET|: node pairs with at least one event
	Events         int     // |E|: multigraph edges
	AvgFlow        float64 // mean flow per event
	MinT, MaxT     int64   // time span covered
	MaxSeriesLen   int     // longest per-arc series
	AvgSeriesLen   float64 // Events / ConnectedPairs
	SelfLoops      int     // events with From == To
}

var (
	errNonPositiveFlow = errors.New("temporal: event flow must be positive")
	errNegativeNode    = errors.New("temporal: node id must be non-negative")
)

// NewGraph builds a time-series graph from events, inferring the node count
// as max(id)+1. The input slice is not modified.
func NewGraph(events []Event) (*Graph, error) {
	n := 0
	for _, e := range events {
		if e.From < 0 || e.To < 0 {
			return nil, errNegativeNode
		}
		if int(e.From)+1 > n {
			n = int(e.From) + 1
		}
		if int(e.To)+1 > n {
			n = int(e.To) + 1
		}
	}
	return NewGraphWithNodes(n, events)
}

// NewGraphWithNodes builds a time-series graph over a fixed node universe
// 0..numNodes-1. Events referring to nodes outside the universe are an
// error, as are non-positive flows. The input slice is not modified. The
// graph is built through a throwaway GraphArena (arena.go), so it owns its
// buffers and lives independently; repeated builders that can tolerate the
// aliasing contract reuse an arena instead.
func NewGraphWithNodes(numNodes int, events []Event) (*Graph, error) {
	var a GraphArena
	return a.Build(numNodes, events)
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return g.numNodes }

// NumArcs returns |ET|, the number of connected ordered node pairs.
func (g *Graph) NumArcs() int { return len(g.outTo) }

// NumEvents returns |E|, the number of multigraph edges.
func (g *Graph) NumEvents() int { return len(g.points) }

// OutDegree returns the number of distinct out-neighbours of u.
func (g *Graph) OutDegree(u NodeID) int { return g.outOff[u+1] - g.outOff[u] }

// InDegree returns the number of distinct in-neighbours of u.
func (g *Graph) InDegree(u NodeID) int { return g.inOff[u+1] - g.inOff[u] }

// OutArcs returns the half-open arc-id range [lo, hi) of node u's out-arcs.
func (g *Graph) OutArcs(u NodeID) (lo, hi int) { return g.outOff[u], g.outOff[u+1] }

// InArcs returns u's in-arc ids (arcs whose target is u), sorted by source.
func (g *Graph) InArcs(u NodeID) []int { return g.inArc[g.inOff[u]:g.inOff[u+1]] }

// ArcTarget returns the head node of arc a.
func (g *Graph) ArcTarget(a int) NodeID { return g.outTo[a] }

// ArcSource returns the tail node of arc a.
func (g *Graph) ArcSource(a int) NodeID { return g.arcSrc[a] }

// FindArc returns the arc id of (u, v) if the pair is connected.
func (g *Graph) FindArc(u, v NodeID) (int, bool) {
	lo, hi := g.outOff[u], g.outOff[u+1]
	i := lo + sort.Search(hi-lo, func(i int) bool { return g.outTo[lo+i] >= v })
	if i < hi && g.outTo[i] == v {
		return i, true
	}
	return -1, false
}

// Series returns the interaction time series R(u, v) of arc a, sorted by T.
// The returned slice aliases graph storage and must not be modified.
func (g *Graph) Series(a int) []Point { return g.points[g.arcOff[a]:g.arcOff[a+1]] }

// SeriesLen returns the number of interaction elements on arc a.
func (g *Graph) SeriesLen(a int) int { return g.arcOff[a+1] - g.arcOff[a] }

// FlowRange returns the aggregated flow of the local point range [i, j) of
// arc a, in O(1) via global prefix sums.
func (g *Graph) FlowRange(a, i, j int) float64 {
	base := g.arcOff[a]
	return g.cum[base+j] - g.cum[base+i]
}

// TimeSpan returns the minimum and maximum timestamp in the graph.
func (g *Graph) TimeSpan() (minT, maxT int64) { return g.minT, g.maxT }

// TotalFlow returns the sum of all event flows.
func (g *Graph) TotalFlow() float64 { return g.totalFlow }

// Events reconstructs the multigraph edges (ordered by arc, then time).
func (g *Graph) Events() []Event {
	out := make([]Event, 0, len(g.points))
	for a := 0; a < g.NumArcs(); a++ {
		src, dst := g.arcSrc[a], g.outTo[a]
		for _, p := range g.Series(a) {
			out = append(out, Event{From: src, To: dst, T: p.T, F: p.F})
		}
	}
	return out
}

// Flows returns a copy of all event flows in arena order (arc-major,
// time-minor). Combine with WithFlows to build permuted-null-model graphs.
func (g *Graph) Flows() []float64 {
	out := make([]float64, len(g.points))
	for i, p := range g.points {
		out[i] = p.F
	}
	return out
}

// WithFlows returns a structurally identical graph (same nodes, arcs and
// timestamps) whose event flows are replaced by flows, given in the same
// arena order as Flows. Used by the significance module's permutation null
// model (§6.3 of the paper).
func (g *Graph) WithFlows(flows []float64) (*Graph, error) {
	if len(flows) != len(g.points) {
		return nil, fmt.Errorf("temporal: WithFlows needs %d flows, got %d", len(g.points), len(flows))
	}
	ng := &Graph{
		numNodes:  g.numNodes,
		outOff:    g.outOff,
		outTo:     g.outTo,
		arcSrc:    g.arcSrc,
		inOff:     g.inOff,
		inFrom:    g.inFrom,
		inArc:     g.inArc,
		arcOff:    g.arcOff,
		minT:      g.minT,
		maxT:      g.maxT,
		selfLoops: g.selfLoops,
	}
	ng.points = make([]Point, len(g.points))
	ng.cum = make([]float64, len(g.points)+1)
	for i, p := range g.points {
		f := flows[i]
		if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("temporal: WithFlows: flow %d: %w (got %v)", i, errNonPositiveFlow, f)
		}
		ng.points[i] = Point{T: p.T, F: f}
		ng.cum[i+1] = ng.cum[i] + f
		ng.totalFlow += f
	}
	return ng, nil
}

// PrefixByTime returns the sub-graph containing only events with T <= maxT,
// over the same node universe. Used for the paper's Figure-13 scalability
// samples (time-prefix datasets B1..B5, F1..F5, T1..T4).
func (g *Graph) PrefixByTime(maxT int64) *Graph {
	var kept []Event
	for a := 0; a < g.NumArcs(); a++ {
		src, dst := g.arcSrc[a], g.outTo[a]
		s := g.Series(a)
		n := sort.Search(len(s), func(i int) bool { return s[i].T > maxT })
		for _, p := range s[:n] {
			kept = append(kept, Event{From: src, To: dst, T: p.T, F: p.F})
		}
	}
	ng, err := NewGraphWithNodes(g.numNodes, kept)
	if err != nil {
		// Unreachable: kept events were already validated at construction.
		panic(err)
	}
	return ng
}

// Stats computes Table-3-style summary statistics.
func (g *Graph) Stats() Stats {
	st := Stats{
		Nodes:          g.numNodes,
		ConnectedPairs: g.NumArcs(),
		Events:         g.NumEvents(),
		MinT:           g.minT,
		MaxT:           g.maxT,
		SelfLoops:      g.selfLoops,
	}
	if st.Events > 0 {
		st.AvgFlow = g.totalFlow / float64(st.Events)
	}
	for a := 0; a < g.NumArcs(); a++ {
		if l := g.SeriesLen(a); l > st.MaxSeriesLen {
			st.MaxSeriesLen = l
		}
	}
	if st.ConnectedPairs > 0 {
		st.AvgSeriesLen = float64(st.Events) / float64(st.ConnectedPairs)
	}
	return st
}

// String implements fmt.Stringer with a one-line summary.
func (g *Graph) String() string {
	return fmt.Sprintf("temporal.Graph{nodes=%d arcs=%d events=%d span=[%d,%d]}",
		g.numNodes, g.NumArcs(), g.NumEvents(), g.minT, g.maxT)
}
