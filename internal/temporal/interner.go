package temporal

// Interner maps external string node identifiers (bitcoin addresses, user
// names, taxi zone codes, ...) onto the dense NodeIDs the graph requires.
// The zero value is not usable; construct with NewInterner.
type Interner struct {
	ids    map[string]NodeID
	labels []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]NodeID)}
}

// ID returns the dense id for label, allocating the next id on first sight.
func (in *Interner) ID(label string) NodeID {
	if id, ok := in.ids[label]; ok {
		return id
	}
	id := NodeID(len(in.labels))
	in.ids[label] = id
	in.labels = append(in.labels, label)
	return id
}

// Lookup returns the id for label without allocating.
func (in *Interner) Lookup(label string) (NodeID, bool) {
	id, ok := in.ids[label]
	return id, ok
}

// LookupBytes is Lookup for a byte-slice key. The map access compiles to
// a zero-copy string conversion, so the wire decoder's steady state (all
// labels already interned) performs no allocation per lookup.
func (in *Interner) LookupBytes(label []byte) (NodeID, bool) {
	id, ok := in.ids[string(label)]
	return id, ok
}

// Label returns the original label of id; it panics on out-of-range ids.
func (in *Interner) Label(id NodeID) string { return in.labels[id] }

// Len returns the number of interned labels.
func (in *Interner) Len() int { return len(in.labels) }
