package flowvet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct {
		Err string
	}
	DepOnly bool
}

// LoadProgram type-checks the packages matching patterns in the module
// rooted at (or containing) dir. Module packages are parsed from source
// with comments and fully type-checked; imports from outside the module
// (the standard library, here) are satisfied from the compiler export
// data `go list -export` places in the build cache — so loading needs no
// network and no third-party machinery.
func LoadProgram(dir string, patterns []string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("flowvet: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	// Decode the dependency-ordered package stream: imports always
	// precede importers, so one forward pass type-checks cleanly.
	var listed []*listedPackage
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("flowvet: decode go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		q := p
		listed = append(listed, &q)
	}

	prog := &Program{
		Fset:   token.NewFileSet(),
		ByPath: map[string]*Package{},
		Facts:  map[string]interface{}{},
	}

	// The importer consults source-checked module packages first and
	// falls back to export data for everything else.
	checked := map[string]*types.Package{}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("flowvet: no export data for %q", path)
		}
		return os.Open(f)
	}
	gcImp := importer.ForCompiler(prog.Fset, "gc", lookup)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if pkg, ok := checked[path]; ok {
			return pkg, nil
		}
		return gcImp.Import(path)
	})

	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("flowvet: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Standard || lp.Module == nil || !lp.Module.Main {
			continue // satisfied from export data
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(prog.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("flowvet: parse: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(lp.ImportPath, prog.Fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("flowvet: typecheck %s: %w", lp.ImportPath, err)
		}
		checked[lp.ImportPath] = pkg
		p := &Package{Path: lp.ImportPath, Dir: lp.Dir, Files: files, Pkg: pkg, Info: info}
		prog.Pkgs = append(prog.Pkgs, p)
		prog.ByPath[lp.ImportPath] = p
	}
	if len(prog.Pkgs) == 0 {
		return nil, fmt.Errorf("flowvet: no module packages matched %v under %s", patterns, dir)
	}
	return prog, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
