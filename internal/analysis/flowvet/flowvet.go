// Package flowvet is a dependency-free core for project-specific static
// analysis, mirroring the golang.org/x/tools/go/analysis surface the
// repo's checkers need (Analyzer, Pass, Diagnostic, a multichecker
// driver, and an analysistest-style fixture harness).
//
// Why not x/tools itself: the runtime packages are deliberately
// dependency-free (ROADMAP north star), and the build environment pins
// the repo to the standard library. Everything an analyzer needs —
// parsed syntax with comments, full go/types information, and package
// metadata — is obtainable from the stdlib: `go list -export -deps
// -json` names every package's source files and its compiled export
// data in the build cache, module packages are type-checked from source
// in dependency order, and out-of-module imports are satisfied through
// go/importer's gc lookup mode reading that export data. Should the
// environment ever grow a vendored golang.org/x/tools, the analyzers
// port mechanically: the Run(*Pass) shape is the same.
//
// Beyond the x/tools surface, a Pass carries the whole Program: the
// hot-path analyzer is interprocedural (reachability from annotated
// roots crosses package boundaries), which the x/tools facts mechanism
// would express awkwardly and a whole-program view expresses directly.
package flowvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//flowvet:ignore <name>` suppression comments.
	Name string
	// Doc is the one-paragraph description `flowvet help` prints.
	Doc string
	// Run checks one package. Cross-package analyzers reach the rest of
	// the program through pass.Prog and may cache program-wide state in
	// prog.Facts under their own name.
	Run func(pass *Pass) error
}

// A Package is one type-checked module package: syntax with comments,
// the go/types package and full type info.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// A Program is the set of module packages under analysis, in dependency
// order (imports before importers), plus the shared FileSet.
type Program struct {
	Fset   *token.FileSet
	Pkgs   []*Package
	ByPath map[string]*Package

	// Facts holds analyzer-scoped program-wide state (e.g. the hot-path
	// call graph), keyed by analyzer name. Analyzers run sequentially,
	// so no locking.
	Facts map[string]interface{}
}

// A Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Fset returns the program-wide file set.
func (p *Pass) Fset() *token.FileSet { return p.Prog.Fset }

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// ignoreMarker is the in-source suppression escape hatch:
// `//flowvet:ignore <analyzer> <justification>` on the offending line
// (or the line above) suppresses that analyzer's diagnostics for the
// line. A bare `//flowvet:ignore` (no analyzer name) is invalid and
// suppresses nothing — every suppression names what it silences.
const ignoreMarker = "flowvet:ignore"

// Run executes every analyzer over every package of prog and returns the
// surviving diagnostics sorted by position, with `//flowvet:ignore`
// suppressions applied.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range prog.Pkgs {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("flowvet: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	diags = suppress(prog, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// suppress drops diagnostics covered by an ignore comment on the same
// line or the line immediately above.
func suppress(prog *Program, diags []Diagnostic) []Diagnostic {
	// ignores[file][line] = set of analyzer names suppressed there.
	ignores := map[string]map[int]map[string]bool{}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := cutMarker(c.Text, ignoreMarker)
					if !ok {
						continue
					}
					name, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
					if name == "" {
						continue // unnamed suppression: inert by design
					}
					pos := prog.Fset.Position(c.Pos())
					m := ignores[pos.Filename]
					if m == nil {
						m = map[int]map[string]bool{}
						ignores[pos.Filename] = m
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if m[line] == nil {
							m[line] = map[string]bool{}
						}
						m[line][name] = true
					}
				}
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if names := ignores[d.Pos.Filename][d.Pos.Line]; names[d.Analyzer] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// cutMarker extracts the text following marker in a `//`-style comment,
// tolerating an optional space after the slashes.
func cutMarker(comment, marker string) (rest string, ok bool) {
	s := strings.TrimPrefix(comment, "//")
	s = strings.TrimPrefix(s, " ")
	if !strings.HasPrefix(s, marker) {
		return "", false
	}
	return s[len(marker):], true
}

// HasMarker reports whether a comment group contains the given
// `//flowmotif:<marker>` (or any `//<marker>`) annotation, and returns
// the text following it on that line.
func HasMarker(cg *ast.CommentGroup, marker string) (rest string, ok bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		if r, found := cutMarker(c.Text, marker); found {
			return strings.TrimSpace(r), true
		}
	}
	return "", false
}
