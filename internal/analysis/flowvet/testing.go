package flowvet

import (
	"regexp"
	"strings"
)

// wantRE matches analysistest-style expectation comments:
//
//	// want `regexp`
//	// want "regexp" "second regexp"
//
// Each quoted pattern on a line must be matched by exactly one
// diagnostic reported on that line.
var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// TestingT is the subset of *testing.T the harness needs.
type TestingT interface {
	Errorf(format string, args ...interface{})
	Fatalf(format string, args ...interface{})
	Helper()
}

// RunTest loads the fixture module rooted at dir, runs the analyzers
// over every package in it, and compares the diagnostics against
// `// want "regexp"` comments in the fixture sources: every want must be
// matched by a diagnostic on its line, and every diagnostic must be
// wanted. This is the analysistest contract, so fixtures read the same
// as upstream ones.
func RunTest(t TestingT, dir string, analyzers ...*Analyzer) {
	t.Helper()
	prog, err := LoadProgram(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("flowvet: load fixture %s: %v", dir, err)
	}
	diags, err := Run(prog, analyzers)
	if err != nil {
		t.Fatalf("flowvet: run: %v", err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					i := strings.Index(text, "want ")
					if i < 0 || strings.TrimSpace(text[:i]) != "" {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, m := range wantRE.FindAllStringSubmatch(text[i+len("want "):], -1) {
						pat := m[1]
						if pat == "" {
							pat = m[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						k := key{pos.Filename, pos.Line}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, re)
		}
	}
}
