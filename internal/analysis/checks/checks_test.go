package checks

import (
	"testing"

	"flowmotif/internal/analysis/flowvet"
)

// Each fixture is a standalone module under testdata (the nested go.mod
// keeps it out of the repo's ./... build) loaded with the real loader,
// so the tests exercise exactly what `go run ./cmd/flowvet` runs in CI.
// The `// want "regexp"` comments follow the analysistest contract:
// every want must be matched by a diagnostic on its line and every
// diagnostic must be wanted — so the fixtures prove both that seeded
// violations fail the build AND that the guard idioms (disable-flag
// branches, nil checks, early returns) suppress reports.

func TestHotpathclock(t *testing.T) {
	flowvet.RunTest(t, "testdata/hotpathclock", Hotpathclock)
}

func TestNilrecv(t *testing.T) {
	flowvet.RunTest(t, "testdata/nilrecv", Nilrecv)
}

func TestMetricname(t *testing.T) {
	flowvet.RunTest(t, "testdata/metricname", Metricname)
}

func TestFailstop(t *testing.T) {
	flowvet.RunTest(t, "testdata/failstop", Failstop)
}

func TestLockhold(t *testing.T) {
	flowvet.RunTest(t, "testdata/lockhold", Lockhold)
}
