// Package checks holds flowvet's project-specific analyzers: the
// mechanical enforcement of the invariants DESIGN.md §15 documents —
// hot-path clock/allocation discipline (hotpathclock), nil-receiver
// safety of obs instruments (nilrecv), metric-name hygiene
// (metricname), fail-stop poison checks on engine mutators (failstop),
// and no blocking I/O under mutexes (lockhold).
package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"flowmotif/internal/analysis/flowvet"
)

// Annotation markers. The grammar is documented in DESIGN.md §15.
const (
	// hotpathMarker tags a function as a hot-path root:
	// `//flowmotif:hotpath` (optionally `//flowmotif:hotpath noalloc`
	// for leaf functions that must not contain allocating syntax at
	// all). Everything statically reachable from a root inherits the
	// clock/formatter discipline.
	hotpathMarker = "flowmotif:hotpath"
	// obsgateMarker tags a field, variable, or type whose truthiness /
	// non-nilness means "an observability consumer is armed":
	// `//flowmotif:obsgate`. Conditions built from such gates (and from
	// the Disable* config flags and nil-checks of internal/obs
	// instrument pointers) dominate clock reads and formatter calls on
	// the hot path.
	obsgateMarker = "flowmotif:obsgate"
)

// isPkg reports whether path is the module package with the given final
// elements, e.g. isPkg(path, "internal/obs") — fixtures use short paths
// like "fixture/internal/obs", so matching is by suffix.
func isPkg(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

func isObsPkgPath(path string) bool    { return isPkg(path, "internal/obs") }
func isStreamPkgPath(path string) bool { return isPkg(path, "internal/stream") }

// gateSet is the program-wide set of recognized observability gates:
// objects (fields, vars) and named types whose declarations carry the
// //flowmotif:obsgate marker.
type gateSet struct {
	objs  map[types.Object]bool
	types map[*types.TypeName]bool
}

const gateFactKey = "flowvet.gates"

// gatesFor collects (once per program) every obsgate-annotated object
// and type across all module packages.
func gatesFor(prog *flowvet.Program) *gateSet {
	if g, ok := prog.Facts[gateFactKey].(*gateSet); ok {
		return g
	}
	g := &gateSet{objs: map[types.Object]bool{}, types: map[*types.TypeName]bool{}}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.Field:
					if hasGateComment(n.Doc) || hasGateComment(n.Comment) {
						for _, name := range n.Names {
							if obj := pkg.Info.Defs[name]; obj != nil {
								g.objs[obj] = true
							}
						}
					}
				case *ast.TypeSpec:
					if hasGateComment(n.Doc) || hasGateComment(n.Comment) {
						if tn, ok := pkg.Info.Defs[n.Name].(*types.TypeName); ok {
							g.types[tn] = true
						}
					}
				case *ast.GenDecl:
					if n.Tok == token.TYPE && hasGateComment(n.Doc) {
						for _, spec := range n.Specs {
							if ts, ok := spec.(*ast.TypeSpec); ok {
								if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
									g.types[tn] = true
								}
							}
						}
					}
				case *ast.ValueSpec:
					if hasGateComment(n.Doc) || hasGateComment(n.Comment) {
						for _, name := range n.Names {
							if obj := pkg.Info.Defs[name]; obj != nil {
								g.objs[obj] = true
							}
						}
					}
				}
				return true
			})
		}
	}
	prog.Facts[gateFactKey] = g
	return g
}

func hasGateComment(cg *ast.CommentGroup) bool {
	_, ok := flowvet.HasMarker(cg, obsgateMarker)
	return ok
}

// disableFlagNames are the engine Config switches whose mention in a
// condition makes it a gate: with the flag set the guarded code must
// not run, which is exactly the invariant hotpathclock enforces.
var disableFlagNames = map[string]bool{
	"DisableObs":             true,
	"DisableTrace":           true,
	"DisableCostAttribution": true,
}

// gateExpr reports whether e denotes an observability gate value: a
// Disable* flag, an obsgate-annotated object, or a value whose type is
// (a pointer to) an internal/obs type or an obsgate-annotated type.
func (g *gateSet) gateExpr(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	var name string
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
		obj = info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
	case *ast.SelectorExpr:
		name = e.Sel.Name
		obj = info.Uses[e.Sel]
	case *ast.CallExpr:
		// A call's result is a gate when the callee is (its own kind
		// of) gate — covers nil-safe accessor methods on annotated
		// types, e.g. e.mx.lagHist().
		return g.gateExpr(info, e.Fun)
	default:
		return g.gateType(info.TypeOf(e))
	}
	if disableFlagNames[name] {
		return true
	}
	if obj != nil && g.objs[obj] {
		return true
	}
	if obj != nil && g.gateType(obj.Type()) {
		return true
	}
	return g.gateType(info.TypeOf(e))
}

// gateType reports whether t is (a pointer to, or a func returning) a
// named type declared in an internal/obs package or annotated obsgate.
func (g *gateSet) gateType(t types.Type) bool {
	if t == nil {
		return false
	}
	if sig, ok := t.Underlying().(*types.Signature); ok && sig.Results().Len() == 1 {
		return g.gateType(sig.Results().At(0).Type())
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	if g.types[tn] {
		return true
	}
	return tn.Pkg() != nil && isObsPkgPath(tn.Pkg().Path())
}

// pureGate reports whether cond is built entirely from gate atoms: any
// boolean combination (&&, ||, !) of
//
//   - nil comparisons of gate expressions (sp != nil, e.mx == nil),
//   - bare boolean gate expressions (rc.on, !e.costOn),
//   - comparisons of a gate expression against a literal
//     (e.slowRound <= 0),
//   - mentions of the Disable* config flags.
//
// A pure-gate condition — or its negation — tells the analyzer the
// controlled code runs only when some observability consumer asked for
// it, which is the hot path's "zero clock reads when disabled" budget.
func (g *gateSet) pureGate(info *types.Info, cond ast.Expr) bool {
	cond = ast.Unparen(cond)
	switch e := cond.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return g.pureGate(info, e.X)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND, token.LOR:
			return g.pureGate(info, e.X) && g.pureGate(info, e.Y)
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			x, y := ast.Unparen(e.X), ast.Unparen(e.Y)
			if isNilOrLiteral(y) {
				return g.gateExpr(info, x)
			}
			if isNilOrLiteral(x) {
				return g.gateExpr(info, y)
			}
			return false
		}
	default:
		if t := info.TypeOf(cond); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsBoolean != 0 {
				return g.gateExpr(info, cond)
			}
		}
	}
	return false
}

func isNilOrLiteral(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.BasicLit:
		return true
	}
	return false
}

// condGates reports whether cond gates its THEN branch: some &&-conjunct
// is a pure gate condition (the branch runs only when the gate holds).
func (g *gateSet) condGates(info *types.Info, cond ast.Expr) bool {
	cond = ast.Unparen(cond)
	if g.pureGate(info, cond) {
		return true
	}
	if b, ok := cond.(*ast.BinaryExpr); ok && b.Op == token.LAND {
		return g.condGates(info, b.X) || g.condGates(info, b.Y)
	}
	return false
}

// remainderGates reports whether an early-return `if cond { return }`
// gates the statements after it: the remainder runs only under ¬cond,
// which is gate-shaped when cond is a pure gate condition or when some
// ||-disjunct of cond is one (¬(A∨B) = ¬A∧¬B).
func (g *gateSet) remainderGates(info *types.Info, cond ast.Expr) bool {
	cond = ast.Unparen(cond)
	if g.pureGate(info, cond) {
		return true
	}
	if b, ok := cond.(*ast.BinaryExpr); ok && b.Op == token.LOR {
		return g.remainderGates(info, b.X) || g.remainderGates(info, b.Y)
	}
	return false
}

// terminatesFlow reports whether a statement list definitely leaves the
// enclosing block (return, panic, or a loop branch), making a guard-if
// above it dominate the remaining siblings.
func terminatesFlow(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// walkGuarded traverses a statement list calling visit on every
// expression-bearing node with the current guard state: guarded is true
// once the node is dominated by an observability gate (an enclosing
// gated if-branch, or a preceding early-return whose negation is
// gate-shaped). Function literals are traversed with the same state —
// closures on the hot path run on the hot path.
func walkGuarded(g *gateSet, info *types.Info, stmts []ast.Stmt, guarded bool, visit func(n ast.Node, guarded bool)) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.IfStmt:
			if s.Init != nil {
				visitExprs(g, info, s.Init, guarded, visit)
			}
			visitExprs(g, info, s.Cond, guarded, visit)
			bodyGuarded := guarded || g.condGates(info, s.Cond)
			walkGuarded(g, info, s.Body.List, bodyGuarded, visit)
			if s.Else != nil {
				// The else branch is dominated by ¬cond; that is
				// gate-shaped exactly when cond is pure gate.
				elseGuarded := guarded || g.pureGate(info, s.Cond)
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					walkGuarded(g, info, e.List, elseGuarded, visit)
				case *ast.IfStmt:
					walkGuarded(g, info, []ast.Stmt{e}, elseGuarded, visit)
				}
			}
			if terminatesFlow(s.Body.List) && g.remainderGates(info, s.Cond) {
				guarded = true
			}
		case *ast.BlockStmt:
			walkGuarded(g, info, s.List, guarded, visit)
		case *ast.ForStmt:
			if s.Init != nil {
				visitExprs(g, info, s.Init, guarded, visit)
			}
			if s.Cond != nil {
				visitExprs(g, info, s.Cond, guarded, visit)
			}
			if s.Post != nil {
				visitExprs(g, info, s.Post, guarded, visit)
			}
			walkGuarded(g, info, s.Body.List, guarded, visit)
		case *ast.RangeStmt:
			visitExprs(g, info, s.X, guarded, visit)
			walkGuarded(g, info, s.Body.List, guarded, visit)
		case *ast.SwitchStmt:
			if s.Init != nil {
				visitExprs(g, info, s.Init, guarded, visit)
			}
			if s.Tag != nil {
				visitExprs(g, info, s.Tag, guarded, visit)
			}
			for _, cc := range s.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					for _, e := range c.List {
						visitExprs(g, info, e, guarded, visit)
					}
					walkGuarded(g, info, c.Body, guarded, visit)
				}
			}
		case *ast.TypeSwitchStmt:
			if s.Init != nil {
				visitExprs(g, info, s.Init, guarded, visit)
			}
			visitExprs(g, info, s.Assign, guarded, visit)
			for _, cc := range s.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					walkGuarded(g, info, c.Body, guarded, visit)
				}
			}
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				if c, ok := cc.(*ast.CommClause); ok {
					if c.Comm != nil {
						visitExprs(g, info, c.Comm, guarded, visit)
					}
					walkGuarded(g, info, c.Body, guarded, visit)
				}
			}
		case *ast.LabeledStmt:
			walkGuarded(g, info, []ast.Stmt{s.Stmt}, guarded, visit)
		default:
			visitExprs(g, info, stmt, guarded, visit)
		}
	}
}

// visitExprs reports every node inside a simple statement at the given
// guard state, recursing into function literals with the same state.
func visitExprs(g *gateSet, info *types.Info, n ast.Node, guarded bool, visit func(n ast.Node, guarded bool)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if fl, ok := n.(*ast.FuncLit); ok {
			visit(fl, guarded)
			walkGuarded(g, info, fl.Body.List, guarded, visit)
			return false
		}
		visit(n, guarded)
		return true
	})
}

// funcDeclOf resolves an identifier to the *ast.FuncDecl it names, if
// the function is declared in a module package.
type declIndex map[*types.Func]*funcDecl

type funcDecl struct {
	pkg  *flowvet.Package
	decl *ast.FuncDecl
}

const declFactKey = "flowvet.decls"

// declsFor indexes (once per program) every function declaration in the
// module by its types.Func object.
func declsFor(prog *flowvet.Program) declIndex {
	if d, ok := prog.Facts[declFactKey].(declIndex); ok {
		return d
	}
	idx := declIndex{}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					idx[fn] = &funcDecl{pkg: pkg, decl: fd}
				}
			}
		}
	}
	prog.Facts[declFactKey] = idx
	return idx
}

// calleeOf resolves a call expression to the static *types.Func it
// invokes: package functions, methods with concrete receivers, and
// method expressions. Interface method calls and dynamic function
// values resolve to nil (documented hotpathclock limitation).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// pkgPathOf returns the declaring package path of a function or method,
// "" for builtins.
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// recvTypeName returns the name of the method's receiver base type
// ("" for plain functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
