package checks

import (
	"go/ast"
	"go/token"

	"flowmotif/internal/analysis/flowvet"
)

// Nilrecv enforces the obs package's central contract: every instrument
// handle is safe to use when nil, so call sites never need nil checks
// and disabling observability costs nothing. Concretely, every exported
// pointer-receiver method on an instrument type must begin with a
// nil-receiver guard (`if c == nil { ... }` as its first statement).
var Nilrecv = &flowvet.Analyzer{
	Name: "nilrecv",
	Doc: "exported pointer-receiver methods on internal/obs instrument types " +
		"must begin with a nil-receiver guard",
	Run: runNilrecv,
}

// instrumentTypes are the obs handle types handed to callers; internal
// helper types (registry internals, ring buffers) are exempt.
var instrumentTypes = map[string]bool{
	"Counter": true, "FloatCounter": true, "Gauge": true, "Histogram": true,
	"Tracer": true, "TraceSpan": true, "Timer": true, "Span": true,
}

func runNilrecv(pass *flowvet.Pass) error {
	if !isObsPkgPath(pass.Pkg.Path) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recvName, typeName, isPtr := receiverOf(fd)
			if !isPtr || !instrumentTypes[typeName] {
				continue
			}
			if len(fd.Body.List) == 0 || !isNilGuard(fd.Body.List[0], recvName) {
				pass.Reportf(fd.Name.Pos(),
					"exported method (*%s).%s must begin with a nil-receiver guard (if %s == nil)",
					typeName, fd.Name.Name, nonEmpty(recvName, "recv"))
			}
		}
	}
	return nil
}

func nonEmpty(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}

// receiverOf returns the receiver identifier name, base type name, and
// whether the receiver is a pointer.
func receiverOf(fd *ast.FuncDecl) (recvName, typeName string, isPtr bool) {
	if len(fd.Recv.List) != 1 {
		return "", "", false
	}
	field := fd.Recv.List[0]
	if len(field.Names) == 1 {
		recvName = field.Names[0].Name
	}
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		isPtr = true
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		typeName = t.Name
	case *ast.IndexExpr: // generic receiver T[P]
		if id, ok := t.X.(*ast.Ident); ok {
			typeName = id.Name
		}
	}
	return recvName, typeName, isPtr
}

// isNilGuard reports whether stmt is an if whose condition mentions
// `recv == nil` or `recv != nil` (possibly among other conjuncts).
func isNilGuard(stmt ast.Stmt, recvName string) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || recvName == "" || recvName == "_" {
		return false
	}
	found := false
	ast.Inspect(ifs.Cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
			return true
		}
		if mentionsRecvNil(b.X, b.Y, recvName) || mentionsRecvNil(b.Y, b.X, recvName) {
			found = true
			return false
		}
		return true
	})
	return found
}

func mentionsRecvNil(x, y ast.Expr, recvName string) bool {
	xi, ok := ast.Unparen(x).(*ast.Ident)
	if !ok || xi.Name != recvName {
		return false
	}
	yi, ok := ast.Unparen(y).(*ast.Ident)
	return ok && yi.Name == "nil"
}
