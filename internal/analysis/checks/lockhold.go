package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"flowmotif/internal/analysis/flowvet"
)

// Lockhold flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held in the latency-sensitive packages
// (internal/stream, internal/cluster, internal/server): channel sends
// and receives, select statements, calls into os/net, and RPCs on the
// cluster Member interface. Any of these under a mutex turns one slow
// peer or full pipe into a stall of every goroutine contending for the
// lock — the exact failure mode the replicator's drain-outside-the-lock
// structure exists to prevent.
//
// The analysis is intra-procedural and under-approximate: a region
// opens at mu.Lock()/mu.RLock() and closes at the matching
// mu.Unlock()/mu.RUnlock() on the same expression, or at function end
// for `defer mu.Unlock()`. Function literals are analyzed separately
// (goroutines spawned under a lock do not hold it).
var Lockhold = &flowvet.Analyzer{
	Name: "lockhold",
	Doc: "no channel operations, os/net calls, or Member RPCs while holding a " +
		"mutex in internal/stream, internal/cluster, internal/server",
	Run: runLockhold,
}

var lockholdPkgs = []string{"internal/stream", "internal/cluster", "internal/server"}

func runLockhold(pass *flowvet.Pass) error {
	applies := false
	for _, suffix := range lockholdPkgs {
		if isPkg(pass.Pkg.Path, suffix) {
			applies = true
			break
		}
	}
	if !applies {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockRegions(pass, info, fd.Body.List, map[string]bool{})
			// Function literals get their own empty lock state.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkLockRegions(pass, info, fl.Body.List, map[string]bool{})
				}
				return true
			})
		}
	}
	return nil
}

// lockCall classifies a statement as a mutex acquire/release, returning
// a key identifying the mutex expression (its printed form).
func lockCall(info *types.Info, call *ast.CallExpr) (key string, acquire, release bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		release = true
	default:
		return "", false, false
	}
	// The receiver must be a sync mutex (directly or via embedding).
	if sigRecv := recvOfMethod(info, sel); sigRecv == "" {
		return "", false, false
	}
	return exprKey(sel.X), acquire, release
}

// recvOfMethod returns "Mutex"/"RWMutex" when sel resolves to a method
// of sync.Mutex or sync.RWMutex, "" otherwise.
func recvOfMethod(info *types.Info, sel *ast.SelectorExpr) string {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		if s, ok2 := info.Selections[sel]; ok2 {
			fn, ok = s.Obj().(*types.Func)
		}
		if !ok {
			return ""
		}
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	return recvTypeName(fn)
}

// exprKey renders an expression to a comparison key: `c.mu` and `c.mu`
// match, `a.mu` and `b.mu` do not.
func exprKey(e ast.Expr) string {
	var b strings.Builder
	writeExprKey(&b, e)
	return b.String()
}

func writeExprKey(b *strings.Builder, e ast.Expr) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.SelectorExpr:
		writeExprKey(b, e.X)
		b.WriteByte('.')
		b.WriteString(e.Sel.Name)
	case *ast.StarExpr:
		writeExprKey(b, e.X)
	case *ast.UnaryExpr:
		writeExprKey(b, e.X)
	default:
		b.WriteString("?")
	}
}

// checkLockRegions walks stmts tracking the set of held mutex keys and
// reports blocking operations while the set is non-empty. Branch arms
// are analyzed with a copy of the state; an Unlock inside one arm of a
// branch conservatively ends the region for the remainder (the analyzer
// under-approximates rather than false-positives).
func checkLockRegions(pass *flowvet.Pass, info *types.Info, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if key, acq, rel := lockCall(info, call); acq || rel {
					if acq {
						held[key] = true
					} else {
						delete(held, key)
					}
					continue
				}
			}
			reportBlocking(pass, info, s, held)
		case *ast.DeferStmt:
			if key, _, rel := lockCall(info, s.Call); rel {
				// defer mu.Unlock(): held to function end; keep state.
				_ = key
				continue
			}
			// Other defers run after the region in source order; skip.
		case *ast.GoStmt:
			// The spawned goroutine does not hold our locks; its body
			// is checked separately with empty state. Argument
			// expressions evaluate now, though.
			for _, arg := range s.Call.Args {
				reportBlocking(pass, info, arg, held)
			}
		case *ast.IfStmt:
			if s.Init != nil {
				reportBlocking(pass, info, s.Init, held)
			}
			reportBlocking(pass, info, s.Cond, held)
			checkLockRegions(pass, info, s.Body.List, copyHeld(held))
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					checkLockRegions(pass, info, e.List, copyHeld(held))
				case *ast.IfStmt:
					checkLockRegions(pass, info, []ast.Stmt{e}, copyHeld(held))
				}
			}
			// If either arm released a lock we keep the pre-branch
			// state only for locks not released anywhere inside —
			// approximate by dropping any key released in the subtree.
			dropReleased(info, s, held)
		case *ast.ForStmt:
			checkLockRegions(pass, info, s.Body.List, copyHeld(held))
			dropReleased(info, s, held)
		case *ast.RangeStmt:
			reportBlocking(pass, info, s.X, held)
			checkLockRegions(pass, info, s.Body.List, copyHeld(held))
			dropReleased(info, s, held)
		case *ast.SwitchStmt:
			for _, cc := range s.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					checkLockRegions(pass, info, c.Body, copyHeld(held))
				}
			}
			dropReleased(info, s, held)
		case *ast.TypeSwitchStmt:
			for _, cc := range s.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					checkLockRegions(pass, info, c.Body, copyHeld(held))
				}
			}
			dropReleased(info, s, held)
		case *ast.SelectStmt:
			if len(held) > 0 {
				pass.Reportf(s.Pos(), "select statement while holding %s", heldNames(held))
			}
		case *ast.BlockStmt:
			checkLockRegions(pass, info, s.List, held)
		case *ast.LabeledStmt:
			checkLockRegions(pass, info, []ast.Stmt{s.Stmt}, held)
		default:
			reportBlocking(pass, info, stmt, held)
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// dropReleased removes from held any mutex key that some statement in
// the subtree releases — the conservative direction for a may-analysis.
func dropReleased(info *types.Info, n ast.Node, held map[string]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if key, _, rel := lockCall(info, call); rel {
				delete(held, key)
			}
		}
		return true
	})
}

// blockingPkgs are import paths whose calls block on the outside world.
var blockingPkgs = map[string]bool{"os": true, "net": true}

func isBlockingPkg(path string) bool {
	return blockingPkgs[path] || strings.HasPrefix(path, "net/")
}

// reportBlocking inspects one statement/expression for channel
// operations and blocking calls under held locks.
func reportBlocking(pass *flowvet.Pass, info *types.Info, n ast.Node, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false // closure body runs later / elsewhere
		case *ast.SendStmt:
			pass.Reportf(m.Pos(), "channel send while holding %s", heldNames(held))
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				pass.Reportf(m.Pos(), "channel receive while holding %s", heldNames(held))
			}
		case *ast.CallExpr:
			fn := calleeOf(info, m)
			if fn == nil {
				return true
			}
			if isBlockingPkg(pkgPathOf(fn)) {
				pass.Reportf(m.Pos(), "call to %s.%s while holding %s",
					pkgPathOf(fn), fn.Name(), heldNames(held))
			}
			if isMemberRPC(info, m, fn) {
				pass.Reportf(m.Pos(), "Member RPC %s while holding %s", fn.Name(), heldNames(held))
			}
		}
		return true
	})
}

// isMemberRPC reports whether the call invokes a method on the cluster
// Member interface (the remote-peer RPC surface).
func isMemberRPC(info *types.Info, call *ast.CallExpr, fn *types.Func) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Member" && obj.Pkg() != nil && isPkg(obj.Pkg().Path(), "internal/cluster")
}

func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	if len(names) == 1 {
		return "mutex " + names[0]
	}
	return "mutexes " + strings.Join(names, ", ")
}
