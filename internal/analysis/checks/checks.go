package checks

import "flowmotif/internal/analysis/flowvet"

// All returns the full flowvet analyzer suite in the order diagnostics
// should be grouped.
func All() []*flowvet.Analyzer {
	return []*flowvet.Analyzer{
		Hotpathclock,
		Nilrecv,
		Metricname,
		Failstop,
		Lockhold,
	}
}
