package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"flowmotif/internal/analysis/flowvet"
)

// Hotpathclock enforces the hot-path observability budget: in any
// function statically reachable from a `//flowmotif:hotpath` root, a
// clock read (time.Now, time.Since, timer construction) or an
// allocating formatter call (fmt.Sprintf, strconv.Itoa, strings.Join,
// ...) must be dominated by an observability gate — a Disable* config
// flag, a nil-check of an obs instrument, or an `//flowmotif:obsgate`
// annotated field. With observability off, the hot path performs zero
// clock reads and zero formatting allocations; this analyzer is what
// makes that a property of the build rather than of reviewer memory.
//
// The optional `//flowmotif:hotpath noalloc` form additionally flags
// allocating syntax (make, new, composite literals, append, closures,
// string concatenation/conversion) in the annotated function itself.
//
// Known limitation: reachability follows direct calls and methods on
// concrete receivers; calls through interfaces or function values are
// not expanded.
var Hotpathclock = &flowvet.Analyzer{
	Name: "hotpathclock",
	Doc: "flag unguarded clock reads and allocating formatter calls in functions " +
		"reachable from //flowmotif:hotpath roots",
	Run: runHotpathclock,
}

// clockFuncs are the time-package entry points that read or arm a clock.
// time.Sleep is excluded: a hot-path function that sleeps is a different
// bug with a different analyzer-shaped answer.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"NewTimer": true, "NewTicker": true, "After": true, "Tick": true, "AfterFunc": true,
}

// allocFormatters maps package path -> function names whose every call
// allocates (result strings, boxed operands). fmt.Errorf is exempt:
// error paths are off the hot path by definition.
var allocFormatters = map[string]map[string]bool{
	"fmt": {"Sprintf": true, "Sprint": true, "Sprintln": true},
	"strconv": {
		"Itoa": true, "FormatInt": true, "FormatUint": true,
		"FormatFloat": true, "Quote": true, "AppendInt": false,
	},
	"strings": {"Join": true, "Repeat": true},
}

type hotpathFact struct {
	// reach maps every reachable function to the root it was reached
	// from (for diagnostics).
	reach map[*types.Func]*types.Func
	// noalloc marks roots annotated `//flowmotif:hotpath noalloc`.
	noalloc map[*types.Func]bool
}

const hotpathFactKey = "flowvet.hotpath"

// hotpathReach computes (once per program) the set of functions
// statically reachable from hotpath roots along UNGUARDED call edges: a
// call that only happens under an observability gate is not on the
// obs-off hot path, so its callee inherits no budget from it.
func hotpathReach(prog *flowvet.Program) *hotpathFact {
	if f, ok := prog.Facts[hotpathFactKey].(*hotpathFact); ok {
		return f
	}
	decls := declsFor(prog)
	gates := gatesFor(prog)
	fact := &hotpathFact{reach: map[*types.Func]*types.Func{}, noalloc: map[*types.Func]bool{}}

	var roots []*types.Func
	for fn, fd := range decls {
		if rest, ok := flowvet.HasMarker(fd.decl.Doc, hotpathMarker); ok {
			roots = append(roots, fn)
			if strings.Contains(rest, "noalloc") {
				fact.noalloc[fn] = true
			}
		}
	}

	// BFS over the static call graph, following only unguarded edges.
	type item struct{ fn, root *types.Func }
	var queue []item
	for _, r := range roots {
		queue = append(queue, item{r, r})
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if _, seen := fact.reach[it.fn]; seen {
			continue
		}
		fact.reach[it.fn] = it.root
		fd := decls[it.fn]
		if fd == nil {
			continue // out-of-module callee: not our code to check
		}
		walkGuarded(gates, fd.pkg.Info, fd.decl.Body.List, false, func(n ast.Node, guarded bool) {
			if guarded {
				return
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			callee := calleeOf(fd.pkg.Info, call)
			if callee == nil || decls[callee] == nil {
				return
			}
			if _, seen := fact.reach[callee]; !seen {
				queue = append(queue, item{callee, it.root})
			}
		})
	}
	prog.Facts[hotpathFactKey] = fact
	return fact
}

func runHotpathclock(pass *flowvet.Pass) error {
	fact := hotpathReach(pass.Prog)
	if len(fact.reach) == 0 {
		return nil
	}
	gates := gatesFor(pass.Prog)
	info := pass.Pkg.Info

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			root, hot := fact.reach[fn]
			if !hot {
				continue
			}
			checkAlloc := fact.noalloc[fn]
			walkGuarded(gates, info, fd.Body.List, false, func(n ast.Node, guarded bool) {
				if guarded {
					return
				}
				switch n := n.(type) {
				case *ast.CallExpr:
					if inPanicArg(fd.Body, n) {
						return
					}
					if name, bad := flaggedCall(info, n); bad {
						pass.Reportf(n.Pos(),
							"%s in hot path (reachable from %s); dominate it with an observability gate or move it off the hot path",
							name, rootLabel(root, fn))
					}
				}
				if checkAlloc {
					reportAllocSyntax(pass, info, n, fn)
				}
			})
		}
	}
	return nil
}

func rootLabel(root, fn *types.Func) string {
	if root == fn {
		return "//flowmotif:hotpath root " + fn.Name()
	}
	return "//flowmotif:hotpath root " + root.Name()
}

// flaggedCall reports whether call is a clock read or an allocating
// formatter, returning a human-readable name for the diagnostic.
func flaggedCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeOf(info, call)
	if fn == nil {
		return "", false
	}
	pkg := pkgPathOf(fn)
	switch pkg {
	case "time":
		if clockFuncs[fn.Name()] {
			return "clock read time." + fn.Name(), true
		}
	default:
		if names, ok := allocFormatters[pkg]; ok && names[fn.Name()] {
			return "allocating call " + pkg + "." + fn.Name(), true
		}
	}
	return "", false
}

// inPanicArg reports whether call appears inside the argument list of a
// panic(): the process is dying, formatting cost is irrelevant.
func inPanicArg(body *ast.BlockStmt, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
			ast.Inspect(c, func(m ast.Node) bool {
				if m == ast.Node(call) {
					found = true
				}
				return !found
			})
			return false
		}
		return true
	})
	return found
}

// reportAllocSyntax flags syntactic allocations for noalloc roots.
func reportAllocSyntax(pass *flowvet.Pass, info *types.Info, n ast.Node, fn *types.Func) {
	switch n := n.(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
			_, isBuiltin := info.Uses[id].(*types.Builtin)
			switch id.Name {
			case "make", "new":
				if isBuiltin { // the builtin, not a shadowing decl
					pass.Reportf(n.Pos(), "%s allocates in noalloc hot path %s", id.Name, fn.Name())
				}
			case "append":
				if isBuiltin {
					pass.Reportf(n.Pos(), "append may allocate in noalloc hot path %s", fn.Name())
				}
			}
		}
		// string(...) conversions of byte slices allocate.
		if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				pass.Reportf(n.Pos(), "string conversion allocates in noalloc hot path %s", fn.Name())
			}
		}
	case *ast.CompositeLit:
		pass.Reportf(n.Pos(), "composite literal allocates in noalloc hot path %s", fn.Name())
	case *ast.FuncLit:
		pass.Reportf(n.Pos(), "closure allocates in noalloc hot path %s", fn.Name())
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if t := info.TypeOf(n); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					pass.Reportf(n.Pos(), "string concatenation allocates in noalloc hot path %s", fn.Name())
				}
			}
		}
	}
}
