package checks

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"flowmotif/internal/analysis/flowvet"
)

// Metricname keeps the metric namespace coherent with the DESIGN.md
// catalog: every name passed to a Registry constructor
// (Counter/FloatCounter/Gauge/Histogram) must be a compile-time string
// constant matching the `flowmotif_` Prometheus grammar or the internal
// dotted grammar; label keys must be constants; and label values must
// not be produced by fmt.Sprintf/Sprint at the call site — formatting
// an unbounded input into a label is how cardinality explosions start.
var Metricname = &flowvet.Analyzer{
	Name: "metricname",
	Doc: "metric and label names passed to the obs registry must be string " +
		"constants in the flowmotif_/dotted grammar; label values must not be " +
		"fmt.Sprintf output",
	Run: runMetricname,
}

var (
	promNameRE   = regexp.MustCompile(`^flowmotif_[a-z][a-z0-9_]*$`)
	dottedNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)
	labelKeyRE   = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
)

// registryCtors are the Registry methods whose first argument is a
// metric name and whose trailing ...Label arguments carry label pairs.
var registryCtors = map[string]bool{
	"Counter": true, "FloatCounter": true, "Gauge": true, "Histogram": true,
}

func runMetricname(pass *flowvet.Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeOf(info, call)
			if fn == nil || !isObsPkgPath(pkgPathOf(fn)) {
				return true
			}
			switch {
			case registryCtors[fn.Name()] && recvTypeName(fn) == "Registry":
				checkMetricName(pass, info, call.Args[0])
			case fn.Name() == "L" && recvTypeName(fn) == "":
				// Every obs.L(k, v) call is checked at its own site —
				// whether inline in a ctor call, prebuilt into a
				// variable, or spread from a slice.
				checkLabelCall(pass, info, call)
			}
			return true
		})
	}
	return nil
}

func checkMetricName(pass *flowvet.Pass, info *types.Info, arg ast.Expr) {
	name, isConst := constString(info, arg)
	if !isConst {
		pass.Reportf(arg.Pos(), "metric name must be a compile-time string constant, not a computed value")
		return
	}
	if !promNameRE.MatchString(name) && !dottedNameRE.MatchString(name) {
		pass.Reportf(arg.Pos(),
			"metric name %q does not match the flowmotif_[a-z0-9_]* or dotted-name grammar", name)
	}
}

func checkLabelCall(pass *flowvet.Pass, info *types.Info, call *ast.CallExpr) {
	if len(call.Args) != 2 {
		return
	}
	key, isConst := constString(info, call.Args[0])
	if !isConst {
		pass.Reportf(call.Args[0].Pos(), "label key must be a compile-time string constant")
	} else if !labelKeyRE.MatchString(key) {
		pass.Reportf(call.Args[0].Pos(), "label key %q does not match [a-z_][a-z0-9_]*", key)
	}
	if sprintfCall(info, call.Args[1]) {
		pass.Reportf(call.Args[1].Pos(),
			"label value built with fmt.Sprintf: unbounded inputs here explode metric cardinality; use a fixed enum or strconv on a bounded value")
	}
}

// sprintfCall reports whether e is directly a fmt.Sprintf/Sprint/
// Sprintln call.
func sprintfCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeOf(info, call)
	if fn == nil || pkgPathOf(fn) != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Sprintf", "Sprint", "Sprintln":
		return true
	}
	return false
}

// constString evaluates e as a compile-time string constant.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
