// Package stream is the failstop fixture: an Engine with the repo's
// fail-stop poison protocol (failErr + failedLocked) and exported
// mutators that do and don't respect it.
package stream

import "errors"

var ErrFailStopped = errors.New("stream: engine fail-stopped")

type Engine struct {
	mu      chan struct{} // stand-in; the analyzer keys on fields, not sync
	failErr error
	count   int64
	marks   []int64
}

func (e *Engine) failedLocked() error { return e.failErr }

// Ingest checks the poison before its first mutation: compliant.
func (e *Engine) Ingest(n int64) error {
	if err := e.failedLocked(); err != nil {
		return err
	}
	e.count += n
	return nil
}

// Mark reads failErr directly before mutating: also compliant.
func (e *Engine) Mark(t int64) error {
	if e.failErr != nil {
		return ErrFailStopped
	}
	e.marks = append(e.marks, t)
	return nil
}

// Reset mutates first and only then consults the poison: flagged.
func (e *Engine) Reset() error {
	e.count = 0 // want `Engine\.Reset mutates receiver state before checking the fail-stop poison`
	e.marks = nil
	return e.failedLocked()
}

// Restore never checks at all: flagged.
func (e *Engine) Restore(count int64) {
	e.count = count // want `Engine\.Restore mutates receiver state before checking the fail-stop poison`
}

// Flush delegates to a checked exported method: exempt.
func (e *Engine) Flush() error {
	return e.Ingest(0)
}

// Count reads without mutating: no check required.
func (e *Engine) Count() int64 { return e.count }
