// Package hot is the hotpathclock fixture: one annotated root, gated
// and ungated clock reads and formatter calls, guard-aware reachability,
// and the noalloc variant.
package hot

import (
	"fmt"
	"strconv"
	"time"
)

// Config mirrors the engine's observability switches: mentioning a
// Disable* flag in a condition makes it a gate.
type Config struct {
	DisableObs bool
}

// Metrics stands in for the engine's histogram bundle.
type Metrics struct{ rounds int64 }

type Engine struct {
	cfg  Config
	mx   *Metrics //flowmotif:obsgate
	on   bool     //flowmotif:obsgate
	last string
	seen int
}

// Ingest is the fixture's hot-path root: with all observability
// disabled it must perform zero clock reads and zero formatting.
//
//flowmotif:hotpath
func (e *Engine) Ingest(events []int) {
	t0 := time.Now() // want `clock read time.Now in hot path`
	_ = t0
	e.last = strconv.Itoa(len(events)) // want `allocating call strconv.Itoa in hot path`

	// NEGATIVE CASES: everything below is dominated by a recognized
	// observability gate and must NOT be reported.
	if e.mx != nil {
		e.mx.rounds++
		_ = time.Now()
	}
	if e.on {
		e.last = fmt.Sprintf("%d", len(events))
	}
	if !e.cfg.DisableObs {
		e.observe(len(events))
	}

	e.step(len(events))
	e.gatedTail(len(events))
}

// step is reachable from the root over an unguarded edge: it inherits
// the hot-path budget.
func (e *Engine) step(n int) {
	e.seen += n
	_ = time.Since(time.Time{}) // want `clock read time.Since in hot path`
}

// observe is reached ONLY under the DisableObs gate: the guarded call
// edge keeps it off the obs-off hot path, so its clock read is fine.
func (e *Engine) observe(n int) {
	e.last = fmt.Sprint(n, time.Now().UnixNano())
}

// gatedTail demonstrates early-return gating: past the `mx == nil`
// bailout the remainder runs only with metrics armed.
func (e *Engine) gatedTail(n int) {
	if e.mx == nil {
		return
	}
	e.mx.rounds += int64(n)
	_ = time.Now()
}

// Advance is a noalloc root: allocating syntax itself is flagged.
//
//flowmotif:hotpath noalloc
func (e *Engine) Advance() {
	buf := make([]int, 8) // want `make allocates in noalloc hot path`
	e.seen += len(buf)
}
