// Package obs is the nilrecv fixture: instrument types whose exported
// pointer-receiver methods must open with a nil-receiver guard.
package obs

type Counter struct{ n int64 }

// Add opens with the guard: compliant.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.n += d
}

type Gauge struct{ v int64 }

func (g *Gauge) Set(v int64) { // want `exported method \(\*Gauge\)\.Set must begin with a nil-receiver guard`
	g.v = v
}

// Get guards with a compound condition mentioning the receiver: fine.
func (g *Gauge) Get() int64 {
	if g == nil || g.v < 0 {
		return 0
	}
	return g.v
}

type Histogram struct{ buckets []int64 }

// reset is unexported: call sites inside the package own the nil check.
func (h *Histogram) reset() { h.buckets = nil }

// value receivers carry no nil hazard.
func (h Histogram) Len() int { return len(h.buckets) }

type Tracer struct{ spans int }

func (t *Tracer) StartSpan(name string) *TraceSpan { // want `exported method \(\*Tracer\)\.StartSpan must begin with a nil-receiver guard`
	t.spans++
	_ = name
	return &TraceSpan{}
}

type TraceSpan struct{ done bool }

func (s *TraceSpan) End() {
	if s == nil {
		return
	}
	s.done = true
}
