// Package cluster is the lockhold fixture: blocking operations inside
// and outside mutex regions, including the deferred-unlock form and the
// Member RPC surface.
package cluster

import (
	"os"
	"sync"
)

// Member is the RPC surface; calls on it may leave the process.
type Member interface {
	ID() string
	Flush() error
}

type Coordinator struct {
	mu    sync.Mutex
	state sync.RWMutex
	ch    chan int
	peer  Member
	seq   int64
}

// Bad holds mu across a send, an RPC, and an os call.
func (c *Coordinator) Bad() {
	c.mu.Lock()
	c.ch <- 1                      // want `channel send while holding mutex c\.mu`
	_ = c.peer.ID()                // want `Member RPC ID while holding mutex c\.mu`
	_, _ = os.ReadFile("manifest") // want `call to os\.ReadFile while holding mutex c\.mu`
	c.mu.Unlock()
	c.ch <- 2 // released: fine
}

// DeferBad: a deferred unlock keeps the region open to function end.
func (c *Coordinator) DeferBad() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	return c.peer.Flush() // want `Member RPC Flush while holding mutex c\.mu`
}

// ReadBad: RWMutex read locks count too.
func (c *Coordinator) ReadBad() int {
	c.state.RLock()
	v := <-c.ch // want `channel receive while holding mutex c\.state`
	c.state.RUnlock()
	return v
}

// Good copies state under the lock and does the blocking work outside —
// the replicator's drain pattern.
func (c *Coordinator) Good() error {
	c.mu.Lock()
	peer := c.peer
	c.mu.Unlock()
	c.ch <- 3
	return peer.Flush()
}

// Spawned goroutines do not hold the spawner's locks.
func (c *Coordinator) GoodAsync() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.ch <- 4
	}()
}
