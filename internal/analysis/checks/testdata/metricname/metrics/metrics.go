// Package metrics seeds metricname violations: non-constant and
// off-grammar names, bad label keys, and Sprintf-built label values.
package metrics

import (
	"fmt"

	"fixture/internal/obs"
)

const roundsName = "flowmotif_rounds_total" // constants are fine

func Register(r *obs.Registry, shard int, host string) {
	// Compliant: flowmotif_ grammar, dotted grammar, named constant.
	r.Counter(roundsName, "rounds")
	r.Gauge("flowmotif_watermark", "frontier")
	r.Histogram("engine.finalize.seconds", "round latency", nil)

	r.Counter("BadName", "caps")        // want `metric name "BadName" does not match`
	r.FloatCounter("flowmotif-", "sep") // want `metric name "flowmotif-" does not match`

	computed := "flowmotif_shard_" + fmt.Sprint(shard)
	r.Counter(computed, "computed") // want `metric name must be a compile-time string constant`

	// Labels: constant keys in [a-z_][a-z0-9_]*, values never Sprintf.
	r.Counter("flowmotif_deliveries_total", "ok", obs.L("member", host))
	r.Counter("flowmotif_lag_seconds", "bad key", obs.L("Shard-ID", "0")) // want `label key "Shard-ID" does not match`
	r.Gauge("flowmotif_depth", "bad value",
		obs.L("shard", fmt.Sprintf("%d-%s", shard, host))) // want `label value built with fmt.Sprintf`

	key := "member"
	r.Counter("flowmotif_acks_total", "computed key", obs.L(key, host)) // want `label key must be a compile-time string constant`
}
