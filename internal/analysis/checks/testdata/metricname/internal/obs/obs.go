// Package obs is the metricname fixture's miniature registry surface:
// just enough shape (Registry ctors + L) for the analyzer to latch on.
package obs

type Label struct{ Key, Value string }

func L(k, v string) Label { return Label{Key: k, Value: v} }

type (
	Counter      struct{ n int64 }
	FloatCounter struct{ v float64 }
	Gauge        struct{ v int64 }
	Histogram    struct{ sum float64 }
)

type Registry struct{ names []string }

func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.names = append(r.names, name)
	_, _ = help, labels
	return &Counter{}
}

func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	r.names = append(r.names, name)
	_, _ = help, labels
	return &FloatCounter{}
}

func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.names = append(r.names, name)
	_, _ = help, labels
	return &Gauge{}
}

func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.names = append(r.names, name)
	_, _, _ = help, bounds, labels
	return &Histogram{}
}
