package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"flowmotif/internal/analysis/flowvet"
)

// Failstop enforces the engine's poison discipline: once an Engine has
// failed (failErr set), every exported mutating entry point must refuse
// to touch state. Mechanically: an exported method on *stream.Engine
// that assigns to a receiver field must read the poison — a call to
// failedLocked / failed or a direct read of the failErr field — before
// its first receiver-field mutation. Methods that merely delegate to
// another exported Engine method inherit that method's check.
var Failstop = &flowvet.Analyzer{
	Name: "failstop",
	Doc: "exported stream.Engine mutating methods must check the poison error " +
		"(failedLocked/failErr) before mutating receiver state",
	Run: runFailstop,
}

// poisonReads are the accepted forms of a poison check.
var poisonCheckFuncs = map[string]bool{"failedLocked": true, "failed": true}

const poisonField = "failErr"

func runFailstop(pass *flowvet.Pass) error {
	if !isStreamPkgPath(pass.Pkg.Path) {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recvName, typeName, isPtr := receiverOf(fd)
			if !isPtr || typeName != "Engine" || recvName == "" || recvName == "_" {
				continue
			}
			if delegatesToEngineMethod(info, fd, recvName) {
				continue
			}
			mutPos, checkPos := scanPoisonOrder(info, fd, recvName)
			if mutPos.IsValid() && (!checkPos.IsValid() || checkPos > mutPos) {
				pass.Reportf(mutPos,
					"Engine.%s mutates receiver state before checking the fail-stop poison (%s.failedLocked()/%s.%s)",
					fd.Name.Name, recvName, recvName, poisonField)
			}
		}
	}
	return nil
}

// delegatesToEngineMethod reports whether the body is a thin wrapper:
// every statement is a return of / expression call to another exported
// method on the same receiver (which carries its own poison check).
func delegatesToEngineMethod(info *types.Info, fd *ast.FuncDecl, recvName string) bool {
	if len(fd.Body.List) == 0 {
		return false
	}
	isDelegatingCall := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !sel.Sel.IsExported() {
			return false
		}
		x, ok := ast.Unparen(sel.X).(*ast.Ident)
		return ok && x.Name == recvName
	}
	for _, stmt := range fd.Body.List {
		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if !isDelegatingCall(r) {
					return false
				}
			}
			if len(s.Results) == 0 {
				return false
			}
		case *ast.ExprStmt:
			if !isDelegatingCall(s.X) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// scanPoisonOrder walks the body in source order and returns the
// position of the first receiver-field mutation and of the first poison
// check. Mutex lock/unlock calls and assignments inside deferred
// closures are not mutations for this purpose.
func scanPoisonOrder(info *types.Info, fd *ast.FuncDecl, recvName string) (mutPos, checkPos token.Pos) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // deferred/closure writes run later, under their own check
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if x, ok := ast.Unparen(sel.X).(*ast.Ident); ok && x.Name == recvName {
					if poisonCheckFuncs[sel.Sel.Name] && !checkPos.IsValid() {
						checkPos = n.Pos()
					}
				}
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == poisonField {
				if x, ok := ast.Unparen(n.X).(*ast.Ident); ok && x.Name == recvName && !checkPos.IsValid() {
					checkPos = n.Pos()
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if p := recvFieldTarget(lhs, recvName); p.IsValid() && !mutPos.IsValid() {
					mutPos = p
				}
			}
		case *ast.IncDecStmt:
			if p := recvFieldTarget(n.X, recvName); p.IsValid() && !mutPos.IsValid() {
				mutPos = p
			}
		}
		return true
	})
	return mutPos, checkPos
}

// recvFieldTarget returns the position of lhs when it writes through a
// receiver field (e.f = ..., e.f[i] = ..., e.f.g = ...), NoPos otherwise.
func recvFieldTarget(lhs ast.Expr, recvName string) token.Pos {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if x, ok := ast.Unparen(e.X).(*ast.Ident); ok && x.Name == recvName {
				return e.Pos()
			}
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			return token.NoPos
		}
	}
}
