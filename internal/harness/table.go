package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a generic, printable experiment result: one header row plus data
// rows, rendered as an aligned ASCII table or CSV. Every experiment of the
// paper's evaluation section produces one or more Tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV emits the table as CSV (header first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// fmtInt renders an integer cell.
func fmtInt(v int64) string { return fmt.Sprintf("%d", v) }

// fmtF renders a float cell with sensible precision.
func fmtF(v float64) string { return fmt.Sprintf("%.4g", v) }

// fmtMS renders a duration cell in milliseconds.
func fmtMS(sec float64) string { return fmt.Sprintf("%.2f", sec*1000) }
