package harness

import (
	"fmt"
	"time"

	"flowmotif/internal/core"
	"flowmotif/internal/join"
	"flowmotif/internal/match"
	"flowmotif/internal/motif"
	"flowmotif/internal/signif"
)

// Table3 reproduces the paper's Table 3: dataset statistics.
func Table3(datasets []*Dataset) *Table {
	t := &Table{
		Title:  "Table 3: Statistics of Datasets",
		Header: []string{"Dataset", "#nodes", "#connected node pairs", "#edges", "Avg. flow per edge"},
	}
	for _, ds := range datasets {
		st := ds.G.Stats()
		t.AddRow(ds.Name, fmtInt(int64(st.Nodes)), fmtInt(int64(st.ConnectedPairs)),
			fmtInt(int64(st.Events)), fmtF(st.AvgFlow))
	}
	return t
}

// Table4 reproduces the paper's Table 4: number of structural matches and
// phase-P1 runtime per motif and dataset.
func Table4(datasets []*Dataset, motifs []*motif.Motif) *Table {
	t := &Table{
		Title:  "Table 4: Structural matches and phase-P1 time",
		Header: []string{"Dataset", "Metric"},
	}
	for _, mo := range motifs {
		t.Header = append(t.Header, mo.Name())
	}
	for _, ds := range datasets {
		counts := []string{ds.Name, "Matches"}
		times := []string{ds.Name, "Time(ms)"}
		for _, mo := range motifs {
			t0 := time.Now()
			n := match.Count(ds.G, mo)
			el := time.Since(t0).Seconds()
			counts = append(counts, fmtInt(n))
			times = append(times, fmtMS(el))
		}
		t.AddRow(counts...)
		t.AddRow(times...)
	}
	return t
}

// Fig8 reproduces Figure 8: runtime of the two-phase algorithm versus the
// join baseline at the default δ and φ (both single-threaded for fairness).
func Fig8(datasets []*Dataset, motifs []*motif.Motif) *Table {
	t := &Table{
		Title:  "Figure 8: two-phase algorithm vs. join algorithm (runtime, ms)",
		Header: []string{"Dataset", "Motif", "TwoPhase(ms)", "Join(ms)", "Join/TwoPhase", "Instances"},
	}
	for _, ds := range datasets {
		p := core.Params{Delta: ds.Delta, Phi: ds.Phi}
		for _, mo := range motifs {
			t0 := time.Now()
			n, _, err := core.Count(ds.G, mo, p)
			twoPhase := time.Since(t0).Seconds()
			if err != nil {
				panic(err)
			}
			t1 := time.Now()
			nj, _, err := join.Count(ds.G, mo, p, join.Options{})
			joinT := time.Since(t1).Seconds()
			if err != nil {
				panic(err)
			}
			if nj != n {
				panic(fmt.Sprintf("harness: join disagreement on %s/%s: %d vs %d", ds.Name, mo.Name(), nj, n))
			}
			t.AddRow(ds.Name, mo.Name(), fmtMS(twoPhase), fmtMS(joinT), fmtF(joinT/twoPhase), fmtInt(n))
		}
	}
	return t
}

// Fig9 reproduces Figure 9 for one dataset: number of instances and total
// runtime as δ varies (φ at its default).
func Fig9(ds *Dataset, motifs []*motif.Motif, workers int) (instances, times *Table) {
	instances = &Table{
		Title:  fmt.Sprintf("Figure 9 (%s): #instances vs δ (φ=%.3g)", ds.Name, ds.Phi),
		Header: append([]string{"delta"}, motifNames(motifs)...),
	}
	times = &Table{
		Title:  fmt.Sprintf("Figure 9 (%s): time (ms) vs δ (φ=%.3g)", ds.Name, ds.Phi),
		Header: append([]string{"delta"}, motifNames(motifs)...),
	}
	for _, delta := range ds.DeltaSweep {
		cRow := []string{fmtInt(delta)}
		tRow := []string{fmtInt(delta)}
		for _, mo := range motifs {
			p := core.Params{Delta: delta, Phi: ds.Phi, Workers: workers}
			t0 := time.Now()
			n, _, err := core.Count(ds.G, mo, p)
			if err != nil {
				panic(err)
			}
			cRow = append(cRow, fmtInt(n))
			tRow = append(tRow, fmtMS(time.Since(t0).Seconds()))
		}
		instances.AddRow(cRow...)
		times.AddRow(tRow...)
	}
	return instances, times
}

// Fig10 reproduces Figure 10 for one dataset: number of instances and total
// runtime as φ varies (δ at its default).
func Fig10(ds *Dataset, motifs []*motif.Motif, workers int) (instances, times *Table) {
	instances = &Table{
		Title:  fmt.Sprintf("Figure 10 (%s): #instances vs φ (δ=%d)", ds.Name, ds.Delta),
		Header: append([]string{"phi"}, motifNames(motifs)...),
	}
	times = &Table{
		Title:  fmt.Sprintf("Figure 10 (%s): time (ms) vs φ (δ=%d)", ds.Name, ds.Delta),
		Header: append([]string{"phi"}, motifNames(motifs)...),
	}
	for _, phi := range ds.PhiSweep {
		cRow := []string{fmtF(phi)}
		tRow := []string{fmtF(phi)}
		for _, mo := range motifs {
			p := core.Params{Delta: ds.Delta, Phi: phi, Workers: workers}
			t0 := time.Now()
			n, _, err := core.Count(ds.G, mo, p)
			if err != nil {
				panic(err)
			}
			cRow = append(cRow, fmtInt(n))
			tRow = append(tRow, fmtMS(time.Since(t0).Seconds()))
		}
		instances.AddRow(cRow...)
		times.AddRow(tRow...)
	}
	return instances, times
}

// Fig11 reproduces Figure 11 for one dataset: the flow of the k-th ranked
// instance for k in ks (one top-max(ks) search per motif). Cells are empty
// when the motif has fewer than k instances.
func Fig11(ds *Dataset, motifs []*motif.Motif, ks []int) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 11 (%s): flow of k-th instance (δ=%d)", ds.Name, ds.Delta),
		Header: append([]string{"k"}, motifNames(motifs)...),
	}
	maxK := 0
	for _, k := range ks {
		if k > maxK {
			maxK = k
		}
	}
	flows := make([][]float64, len(motifs))
	for i, mo := range motifs {
		res, _, err := core.TopK(ds.G, mo, ds.Delta, maxK, 1)
		if err != nil {
			panic(err)
		}
		fs := make([]float64, len(res))
		for j, in := range res {
			fs[j] = in.Flow
		}
		flows[i] = fs
	}
	for _, k := range ks {
		row := []string{fmtInt(int64(k))}
		for i := range motifs {
			if k <= len(flows[i]) {
				row = append(row, fmtF(flows[i][k-1]))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Fig12 reproduces Figure 12: top-k search with k=1 versus the
// dynamic-programming module. The paper reports phase-P2 time; here all
// three methods share the same temporally-pruned match traversal, so the
// total runtimes are directly comparable (the shared phase-P1 work is
// identical across columns). Both the faithful O(τ²) DP and the
// monotone-optimized variant are reported (the latter is this
// implementation's ablation).
func Fig12(datasets []*Dataset, motifs []*motif.Motif) *Table {
	t := &Table{
		Title:  "Figure 12: total time (ms), top-k (k=1) vs DP module",
		Header: []string{"Dataset", "Motif", "TopK1(ms)", "DP(ms)", "DPfast(ms)", "TopFlow"},
	}
	for _, ds := range datasets {
		for _, mo := range motifs {
			t1 := time.Now()
			res, _, err := core.TopK(ds.G, mo, ds.Delta, 1, 1)
			topkTotal := time.Since(t1).Seconds()
			if err != nil {
				panic(err)
			}
			topFlow := 0.0
			if len(res) > 0 {
				topFlow = res[0].Flow
			}

			t2 := time.Now()
			dpFlow, _, err := core.TopOneDP(ds.G, mo, ds.Delta)
			dpTotal := time.Since(t2).Seconds()
			if err != nil {
				panic(err)
			}
			t3 := time.Now()
			fastFlow, _, err := core.TopOneDPFast(ds.G, mo, ds.Delta)
			fastTotal := time.Since(t3).Seconds()
			if err != nil {
				panic(err)
			}
			// The DP accumulates window-local sums while the enumeration
			// subtracts global prefix sums; compare with a relative
			// tolerance for the differing floating-point rounding.
			if !closeEnough(dpFlow, topFlow) || !closeEnough(fastFlow, topFlow) {
				panic(fmt.Sprintf("harness: top-1 disagreement on %s/%s: topk=%v dp=%v fast=%v",
					ds.Name, mo.Name(), topFlow, dpFlow, fastFlow))
			}
			t.AddRow(ds.Name, mo.Name(),
				fmtMS(topkTotal), fmtMS(dpTotal), fmtMS(fastTotal),
				fmtF(topFlow))
		}
	}
	return t
}

// Fig13 reproduces Figure 13 for one dataset: instances and runtime over
// growing time-prefix samples at the default δ and φ.
func Fig13(ds *Dataset, motifs []*motif.Motif, workers int) (instances, times *Table) {
	instances = &Table{
		Title:  fmt.Sprintf("Figure 13 (%s): #instances per data period (δ=%d, φ=%.3g)", ds.Name, ds.Delta, ds.Phi),
		Header: append([]string{"period", "#events"}, motifNames(motifs)...),
	}
	times = &Table{
		Title:  fmt.Sprintf("Figure 13 (%s): time (ms) per data period", ds.Name),
		Header: append([]string{"period", "#events"}, motifNames(motifs)...),
	}
	for _, pf := range ds.Prefixes {
		g := ds.PrefixGraph(pf)
		cRow := []string{pf.Label, fmtInt(int64(g.NumEvents()))}
		tRow := []string{pf.Label, fmtInt(int64(g.NumEvents()))}
		for _, mo := range motifs {
			p := core.Params{Delta: ds.Delta, Phi: ds.Phi, Workers: workers}
			t0 := time.Now()
			n, _, err := core.Count(g, mo, p)
			if err != nil {
				panic(err)
			}
			cRow = append(cRow, fmtInt(n))
			tRow = append(tRow, fmtMS(time.Since(t0).Seconds()))
		}
		instances.AddRow(cRow...)
		times.AddRow(tRow...)
	}
	return instances, times
}

// Fig14 reproduces Figure 14 for one dataset: the real instance count per
// motif against the distribution over flow-permuted networks, with z-scores
// and empirical p-values (the paper uses 20 randomized networks).
func Fig14(ds *Dataset, motifs []*motif.Motif, runs int, seed int64, workers int) *Table {
	t := &Table{
		Title: fmt.Sprintf("Figure 14 (%s): significance over %d flow-permuted networks (δ=%d, φ=%.3g)",
			ds.Name, runs, ds.Delta, ds.Phi),
		Header: []string{"Motif", "Real", "Mean", "Std", "Z-score", "p-value", "Min", "Q1", "Median", "Q3", "Max"},
	}
	for _, mo := range motifs {
		res, err := signif.Evaluate(ds.G, mo, core.Params{Delta: ds.Delta, Phi: ds.Phi},
			signif.Config{Runs: runs, Seed: seed, Workers: workers})
		if err != nil {
			panic(err)
		}
		t.AddRow(mo.Name(), fmtInt(res.Real), fmtF(res.Mean), fmtF(res.Std),
			fmtF(res.ZScore), fmtF(res.PValue),
			fmtF(res.Box.Min), fmtF(res.Box.Q1), fmtF(res.Box.Median), fmtF(res.Box.Q3), fmtF(res.Box.Max))
	}
	return t
}

func motifNames(motifs []*motif.Motif) []string {
	names := make([]string, len(motifs))
	for i, mo := range motifs {
		names[i] = mo.Name()
	}
	return names
}

func closeEnough(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if b > 1 {
		scale = b
	}
	return d <= 1e-9*scale
}
