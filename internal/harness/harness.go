// Package harness builds the three benchmark datasets at several scales and
// implements one reproduction function per table and figure of the paper's
// evaluation (§6). cmd/experiments and the repository-level benchmarks are
// thin wrappers around this package; see DESIGN.md §6 for the experiment
// index.
package harness

import (
	"fmt"
	"sync"

	"flowmotif/internal/gen"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// Scale selects the dataset size. The paper ran city-scale data on a Xeon
// server; Tiny is for unit tests, Small for `go test -bench`, Medium for
// cmd/experiments (minutes), Large for scalability demonstrations.
type Scale int

const (
	Tiny Scale = iota
	Small
	Medium
	Large
)

// ParseScale converts a flag value to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "large":
		return Large, nil
	}
	return Tiny, fmt.Errorf("harness: unknown scale %q (tiny|small|medium|large)", s)
}

func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	}
	return "unknown"
}

// Prefix is one time-prefix sample of a dataset (Figure 13's B1..B5,
// F1..F5, T1..T4).
type Prefix struct {
	Label string
	Frac  float64 // fraction of the covered time span
}

// Dataset bundles a benchmark graph with its paper-default parameters.
type Dataset struct {
	Name       string
	G          *temporal.Graph
	Delta      int64     // default duration constraint (paper §6.2)
	Phi        float64   // default flow constraint
	DeltaSweep []int64   // Figure 9 x-axis
	PhiSweep   []float64 // Figure 10 x-axis
	Prefixes   []Prefix  // Figure 13 samples
}

// PrefixGraph materializes one Figure-13 sample.
func (d *Dataset) PrefixGraph(p Prefix) *temporal.Graph {
	minT, maxT := d.G.TimeSpan()
	cut := minT + int64(float64(maxT-minT)*p.Frac)
	return d.G.PrefixByTime(cut)
}

// Motifs returns the benchmark motif catalog (Figure 3).
func Motifs() []*motif.Motif { return motif.Catalog() }

var (
	cacheMu sync.Mutex
	cache   = map[string]*Dataset{}
)

// Bitcoin returns the bitcoin-like dataset at the given scale (cached).
func Bitcoin(sc Scale) *Dataset {
	return cached("bitcoin", sc, func() *Dataset {
		cfg := gen.BitcoinConfig{Seed: 20140201}
		switch sc {
		case Tiny:
			cfg.Nodes, cfg.SeedTxns, cfg.Duration = 300, 1500, 7*86400
		case Small:
			cfg.Nodes, cfg.SeedTxns, cfg.Duration = 4000, 15000, 30*86400
		case Medium:
			cfg.Nodes, cfg.SeedTxns, cfg.Duration = 30000, 90000, 90*86400
		case Large:
			cfg.Nodes, cfg.SeedTxns, cfg.Duration = 120000, 400000, 270*86400
		}
		evs, err := gen.Bitcoin(cfg)
		if err != nil {
			panic(err)
		}
		g, err := temporal.NewGraphWithNodes(cfg.Nodes, evs)
		if err != nil {
			panic(err)
		}
		return &Dataset{
			Name:       "Bitcoin",
			G:          g,
			Delta:      600,
			Phi:        5,
			DeltaSweep: []int64{200, 400, 600, 800, 1000},
			PhiSweep:   []float64{5, 10, 15, 20, 25},
			Prefixes: []Prefix{ // B1..B5: first 1, 2, 4, 6, 9 ninths
				{"B1", 1.0 / 9}, {"B2", 2.0 / 9}, {"B3", 4.0 / 9}, {"B4", 6.0 / 9}, {"B5", 1},
			},
		}
	})
}

// Facebook returns the facebook-like dataset at the given scale (cached).
func Facebook(sc Scale) *Dataset {
	return cached("facebook", sc, func() *Dataset {
		cfg := gen.FacebookConfig{Seed: 20150401}
		switch sc {
		case Tiny:
			cfg.Nodes, cfg.Bursts, cfg.Cascades, cfg.Duration = 200, 800, 500, 14*86400
		case Small:
			cfg.Nodes, cfg.Bursts, cfg.Cascades, cfg.Duration = 1500, 6000, 4000, 60*86400
		case Medium:
			cfg.Nodes, cfg.Bursts, cfg.Cascades, cfg.Duration = 8000, 30000, 20000, 180*86400
		case Large:
			cfg.Nodes, cfg.Bursts, cfg.Cascades, cfg.Duration = 45800, 150000, 100000, 180*86400
		}
		evs, err := gen.Facebook(cfg)
		if err != nil {
			panic(err)
		}
		g, err := temporal.NewGraphWithNodes(cfg.Nodes, evs)
		if err != nil {
			panic(err)
		}
		return &Dataset{
			Name:       "Facebook",
			G:          g,
			Delta:      600,
			Phi:        3,
			DeltaSweep: []int64{200, 400, 600, 800, 1000},
			PhiSweep:   []float64{3, 5, 7, 9, 11},
			Prefixes: []Prefix{ // F1..F5: first 1..4 and 6 sixths
				{"F1", 1.0 / 6}, {"F2", 2.0 / 6}, {"F3", 3.0 / 6}, {"F4", 4.0 / 6}, {"F5", 1},
			},
		}
	})
}

// Passenger returns the passenger-flow dataset at the given scale (cached).
func Passenger(sc Scale) *Dataset {
	return cached("passenger", sc, func() *Dataset {
		cfg := gen.PassengerConfig{Seed: 20180101}
		switch sc {
		case Tiny:
			cfg.Zones, cfg.Trips, cfg.Days = 60, 2500, 4
		case Small:
			cfg.Zones, cfg.Trips, cfg.Days = 150, 12000, 10
		case Medium:
			cfg.Zones, cfg.Trips, cfg.Days = 289, 45000, 31
			cfg.Support = 7
		case Large:
			cfg.Zones, cfg.Trips, cfg.Days = 289, 200000, 31
			cfg.Support = 8
		}
		evs, err := gen.Passenger(cfg)
		if err != nil {
			panic(err)
		}
		g, err := temporal.NewGraphWithNodes(cfg.Zones, evs)
		if err != nil {
			panic(err)
		}
		return &Dataset{
			Name:       "Passenger",
			G:          g,
			Delta:      900,
			Phi:        2,
			DeltaSweep: []int64{300, 600, 900, 1200, 1500},
			PhiSweep:   []float64{1, 2, 3, 4, 5},
			Prefixes: []Prefix{ // T1..T4: first 8, 16, 24, 31 days
				{"T1", 8.0 / 31}, {"T2", 16.0 / 31}, {"T3", 24.0 / 31}, {"T4", 1},
			},
		}
	})
}

// All returns the three datasets at the given scale.
func All(sc Scale) []*Dataset {
	return []*Dataset{Bitcoin(sc), Facebook(sc), Passenger(sc)}
}

func cached(name string, sc Scale, build func() *Dataset) *Dataset {
	key := fmt.Sprintf("%s/%s", name, sc)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if d, ok := cache[key]; ok {
		return d
	}
	d := build()
	cache[key] = d
	return d
}
