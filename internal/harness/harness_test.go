package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"flowmotif/internal/motif"
)

// tinyMotifs keeps harness tests quick while covering chains and cycles.
func tinyMotifs() []*motif.Motif {
	return []*motif.Motif{
		motif.MustPath(0, 1, 2).Named("M(3,2)"),
		motif.MustPath(0, 1, 2, 0).Named("M(3,3)"),
	}
}

func TestDatasetsBuildAndCache(t *testing.T) {
	for _, ds := range All(Tiny) {
		if ds.G.NumEvents() == 0 {
			t.Errorf("%s: empty graph", ds.Name)
		}
		if ds.Delta <= 0 || ds.Phi <= 0 {
			t.Errorf("%s: defaults missing", ds.Name)
		}
		if len(ds.DeltaSweep) != 5 || len(ds.PhiSweep) != 5 {
			t.Errorf("%s: sweep sizes wrong", ds.Name)
		}
		if len(ds.Prefixes) < 4 {
			t.Errorf("%s: prefixes missing", ds.Name)
		}
	}
	if Bitcoin(Tiny) != Bitcoin(Tiny) {
		t.Error("dataset cache broken")
	}
}

func TestParseScale(t *testing.T) {
	for _, s := range []string{"tiny", "small", "medium", "large"} {
		sc, err := ParseScale(s)
		if err != nil || sc.String() != s {
			t.Errorf("ParseScale(%q) = %v, %v", s, sc, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestPrefixGraphMonotone(t *testing.T) {
	ds := Passenger(Tiny)
	prev := -1
	for _, pf := range ds.Prefixes {
		g := ds.PrefixGraph(pf)
		if g.NumEvents() < prev {
			t.Errorf("prefix %s shrank: %d < %d", pf.Label, g.NumEvents(), prev)
		}
		prev = g.NumEvents()
	}
	lastPf := ds.Prefixes[len(ds.Prefixes)-1]
	if g := ds.PrefixGraph(lastPf); g.NumEvents() != ds.G.NumEvents() {
		t.Errorf("full prefix %s has %d events, want %d", lastPf.Label, g.NumEvents(), ds.G.NumEvents())
	}
}

func TestTable3Shape(t *testing.T) {
	tb := Table3(All(Tiny))
	if len(tb.Rows) != 3 || len(tb.Header) != 5 {
		t.Fatalf("table 3 shape: %dx%d", len(tb.Rows), len(tb.Header))
	}
	if !strings.Contains(tb.String(), "Bitcoin") {
		t.Error("missing dataset row")
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 4 {
		t.Errorf("csv lines = %d", lines)
	}
}

func TestTable4Shape(t *testing.T) {
	tb := Table4(All(Tiny)[:1], tinyMotifs())
	if len(tb.Rows) != 2 { // matches + time per dataset
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	n, err := strconv.ParseInt(tb.Rows[0][2], 10, 64)
	if err != nil || n <= 0 {
		t.Errorf("match count cell = %q", tb.Rows[0][2])
	}
}

func TestFig8AgreementEnforced(t *testing.T) {
	tb := Fig8(All(Tiny)[:1], tinyMotifs())
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Instances column is the last; both algorithms agreed (no panic) and
	// counted something.
	if tb.Rows[0][5] == "0" && tb.Rows[1][5] == "0" {
		t.Log("no instances at tiny scale (acceptable but worth knowing)")
	}
}

func TestFig9Fig10Shapes(t *testing.T) {
	ds := Facebook(Tiny)
	ins, tim := Fig9(ds, tinyMotifs(), 2)
	if len(ins.Rows) != len(ds.DeltaSweep) || len(tim.Rows) != len(ds.DeltaSweep) {
		t.Fatalf("fig9 rows: %d, %d", len(ins.Rows), len(tim.Rows))
	}
	// Larger δ should never lose instances at fixed φ on these datasets.
	first, _ := strconv.ParseInt(ins.Rows[0][1], 10, 64)
	lastV, _ := strconv.ParseInt(ins.Rows[len(ins.Rows)-1][1], 10, 64)
	if lastV < first {
		t.Logf("fig9 instances not monotone (%d -> %d); possible but unusual", first, lastV)
	}

	ins10, tim10 := Fig10(ds, tinyMotifs(), 2)
	if len(ins10.Rows) != len(ds.PhiSweep) || len(tim10.Rows) != len(ds.PhiSweep) {
		t.Fatalf("fig10 rows: %d, %d", len(ins10.Rows), len(tim10.Rows))
	}
	// Instances must be non-increasing in φ (maximality is φ-independent;
	// raising φ only filters instances).
	var prev int64 = 1 << 62
	for _, row := range ins10.Rows {
		v, err := strconv.ParseInt(row[1], 10, 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[1])
		}
		if v > prev {
			t.Errorf("fig10 instances increased with φ: %d -> %d", prev, v)
		}
		prev = v
	}
}

func TestFig11Shape(t *testing.T) {
	tb := Fig11(Passenger(Tiny), tinyMotifs(), []int{1, 5, 10})
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Flow of the k-th instance is non-increasing in k.
	var prev = 1e300
	for _, row := range tb.Rows {
		if row[1] == "-" {
			continue
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[1])
		}
		if v > prev {
			t.Errorf("fig11 flow increased with k: %v -> %v", prev, v)
		}
		prev = v
	}
}

func TestFig12Agreement(t *testing.T) {
	tb := Fig12(All(Tiny)[1:2], tinyMotifs())
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The function panics internally on top-1 disagreement; reaching here
	// means topk == dp == dpfast on all cells.
}

func TestFig13Shape(t *testing.T) {
	ds := Passenger(Tiny)
	ins, tim := Fig13(ds, tinyMotifs(), 2)
	if len(ins.Rows) != len(ds.Prefixes) || len(tim.Rows) != len(ds.Prefixes) {
		t.Fatalf("fig13 rows: %d, %d", len(ins.Rows), len(tim.Rows))
	}
	// Event counts grow with the prefix.
	var prev int64 = -1
	for _, row := range ins.Rows {
		v, _ := strconv.ParseInt(row[1], 10, 64)
		if v < prev {
			t.Errorf("fig13 events shrank: %d -> %d", prev, v)
		}
		prev = v
	}
}

func TestFig14ShapeAndSignificance(t *testing.T) {
	ds := Bitcoin(Tiny)
	tb := Fig14(ds, tinyMotifs(), 6, 42, 4)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		real, _ := strconv.ParseInt(row[1], 10, 64)
		if real == 0 {
			continue
		}
		z, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("bad z cell %q", row[4])
		}
		// Cascaded flow must be over-represented vs the permuted null.
		if z <= 0 {
			t.Errorf("motif %s: z = %v, expected positive", row[0], z)
		}
	}
}
