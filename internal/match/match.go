// Package match implements phase P1 of the flow-motif search (Kosyfaki et
// al., EDBT 2019, §4): finding all structural matches of a motif graph GM in
// the time-series graph GT, disregarding edge labels and the δ/φ thresholds.
//
// Because a motif's ordered edges form a spanning path, matching is a
// modified depth-first search along the path: at each step the walk either
// binds a fresh graph node to a fresh motif vertex (iterating over the
// current node's out-arcs, skipping nodes already bound to keep the vertex
// mapping injective) or, when the path revisits a motif vertex, checks that
// the required arc back to the already-bound node exists.
//
// Matches are streamed through callbacks; the caller decides whether to
// count, collect, or pipe them straight into phase P2.
package match

import (
	"runtime"
	"sync"
	"sync/atomic"

	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// Match is one structural match Gs of a motif in the graph: an injective
// binding of motif vertices to graph nodes plus, per motif edge, the graph
// arc carrying the corresponding interaction time series R(e_i).
type Match struct {
	Nodes []temporal.NodeID // graph node per motif vertex (canonical labels)
	Arcs  []int             // graph arc per motif edge
}

// Clone returns a deep copy of m (Stream reuses the callback argument).
func (m *Match) Clone() Match {
	return Match{
		Nodes: append([]temporal.NodeID(nil), m.Nodes...),
		Arcs:  append([]int(nil), m.Arcs...),
	}
}

// Visitor receives structural matches. The Match is reused between calls;
// Clone it to retain. Returning false stops the enumeration.
type Visitor func(*Match) bool

// Stream enumerates all structural matches of mo in g, in deterministic
// DFS order (start node ascending, out-neighbours ascending per step). It
// returns the number of matches visited.
func Stream(g *temporal.Graph, mo *motif.Motif, fn Visitor) int64 {
	var count int64
	d := newDFS(g, mo)
	for u := temporal.NodeID(0); int(u) < g.NumNodes(); u++ {
		if !d.from(u, func(m *Match) bool {
			count++
			return fn(m)
		}) {
			break
		}
	}
	return count
}

// StreamFrom enumerates matches whose first motif vertex is bound to start.
// It returns false if the visitor aborted the walk.
func StreamFrom(g *temporal.Graph, mo *motif.Motif, start temporal.NodeID, fn Visitor) bool {
	return newDFS(g, mo).from(start, fn)
}

// Count returns the number of structural matches of mo in g.
func Count(g *temporal.Graph, mo *motif.Motif) int64 {
	return Stream(g, mo, func(*Match) bool { return true })
}

// Collect materializes up to limit matches (limit <= 0 means no limit).
func Collect(g *temporal.Graph, mo *motif.Motif, limit int) []Match {
	var out []Match
	Stream(g, mo, func(m *Match) bool {
		out = append(out, m.Clone())
		return limit <= 0 || len(out) < limit
	})
	return out
}

// StreamParallel enumerates matches using the given number of workers
// (0 or negative means GOMAXPROCS), sharding by start node. The visitor is
// invoked concurrently and must be safe for concurrent use; returning false
// stops all workers promptly. The total visited count is returned; match
// order is not deterministic.
func StreamParallel(g *temporal.Graph, mo *motif.Motif, workers int, fn Visitor) int64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || g.NumNodes() < 2 {
		return Stream(g, mo, fn)
	}
	var (
		count   int64
		stopped atomic.Bool
		next    atomic.Int64
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := newDFS(g, mo)
			for !stopped.Load() {
				u := next.Add(1) - 1
				if u >= int64(g.NumNodes()) {
					return
				}
				ok := d.from(temporal.NodeID(u), func(m *Match) bool {
					atomic.AddInt64(&count, 1)
					if !fn(m) {
						stopped.Store(true)
						return false
					}
					return !stopped.Load()
				})
				if !ok && stopped.Load() {
					return
				}
			}
		}()
	}
	wg.Wait()
	return atomic.LoadInt64(&count)
}

// dfs holds per-walk scratch state so Stream allocates once per traversal.
type dfs struct {
	g     *temporal.Graph
	path  []int
	numV  int
	bind  []temporal.NodeID
	bound []bool
	m     Match
}

func newDFS(g *temporal.Graph, mo *motif.Motif) *dfs {
	numV := mo.NumVertices()
	return &dfs{
		g:     g,
		path:  mo.Path(),
		numV:  numV,
		bind:  make([]temporal.NodeID, numV),
		bound: make([]bool, numV),
		m: Match{
			Nodes: make([]temporal.NodeID, numV),
			Arcs:  make([]int, len(mo.Path())-1),
		},
	}
}

// from runs the DFS with motif vertex path[0] bound to start. Returns false
// if the visitor aborted.
func (d *dfs) from(start temporal.NodeID, fn Visitor) bool {
	d.bind[d.path[0]] = start
	d.bound[d.path[0]] = true
	ok := d.extend(1, start, fn)
	d.bound[d.path[0]] = false
	return ok
}

// extend tries to bind motif vertex path[pos], walking from graph node cur
// (the binding of path[pos-1]). Returns false if the visitor aborted.
func (d *dfs) extend(pos int, cur temporal.NodeID, fn Visitor) bool {
	if pos == len(d.path) {
		copy(d.m.Nodes, d.bind)
		return fn(&d.m)
	}
	tv := d.path[pos]
	if d.bound[tv] {
		// Revisited motif vertex: the target graph node is fixed; the walk
		// continues only if the required arc exists.
		w := d.bind[tv]
		arc, ok := d.g.FindArc(cur, w)
		if !ok {
			return true
		}
		d.m.Arcs[pos-1] = arc
		return d.extend(pos+1, w, fn)
	}
	lo, hi := d.g.OutArcs(cur)
	for a := lo; a < hi; a++ {
		w := d.g.ArcTarget(a)
		if d.usedNode(w) {
			continue // injective vertex binding (Definition 3.2 bijection)
		}
		d.bind[tv] = w
		d.bound[tv] = true
		d.m.Arcs[pos-1] = a
		ok := d.extend(pos+1, w, fn)
		d.bound[tv] = false
		if !ok {
			return false
		}
	}
	return true
}

func (d *dfs) usedNode(w temporal.NodeID) bool {
	for v := 0; v < d.numV; v++ {
		if d.bound[v] && d.bind[v] == w {
			return true
		}
	}
	return false
}
