package match

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// paperGraph is the bitcoin user graph of the paper's Figure 2 (u1..u4 as
// nodes 0..3).
func paperGraph(t testing.TB) *temporal.Graph {
	t.Helper()
	g, err := temporal.NewGraph([]temporal.Event{
		{From: 0, To: 1, T: 13, F: 5},
		{From: 0, To: 1, T: 15, F: 7},
		{From: 2, To: 0, T: 10, F: 10},
		{From: 3, To: 0, T: 1, F: 2},
		{From: 3, To: 0, T: 3, F: 5},
		{From: 3, To: 2, T: 11, F: 10},
		{From: 1, To: 2, T: 18, F: 20},
		{From: 2, To: 3, T: 19, F: 5},
		{From: 2, To: 3, T: 21, F: 4},
		{From: 1, To: 3, T: 23, F: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPaperFigure6 checks the paper's worked P1 example: the time-series
// graph of Figure 5(b) has exactly six structural matches of M(3,3)
// (Figure 6), two per rotation of the two directed triangles u1u2u3 and
// u2u3u4... the paper shows six matches total.
func TestPaperFigure6(t *testing.T) {
	g := paperGraph(t)
	tri := motif.MustPath(0, 1, 2, 0)
	ms := Collect(g, tri, 0)
	if len(ms) != 6 {
		for _, m := range ms {
			t.Logf("match: %v", m.Nodes)
		}
		t.Fatalf("M(3,3) matches = %d, want 6", len(ms))
	}
	// The directed triangles are u1u2u3 (0,1,2) and u1u2u4 (0,1,3); each
	// appears once per rotation of its spanning path.
	want := map[string]bool{}
	for _, rot := range [][]temporal.NodeID{{0, 1, 2}, {1, 2, 0}, {2, 0, 1}, {0, 1, 3}, {1, 3, 0}, {3, 0, 1}} {
		want[fmt.Sprint(rot)] = true
	}
	for _, m := range ms {
		if !want[fmt.Sprint(m.Nodes)] {
			t.Errorf("unexpected match %v", m.Nodes)
		}
		delete(want, fmt.Sprint(m.Nodes))
	}
	for k := range want {
		t.Errorf("missing match %v", k)
	}
}

func TestChainMatchesPaperGraph(t *testing.T) {
	g := paperGraph(t)
	// M(3,2): wedges u→v→w with distinct nodes.
	n := Count(g, motif.MustPath(0, 1, 2))
	// Enumerate by hand: arcs are 0→1,1→2,1→3,2→0,2→3,3→0,3→2.
	// 0→1→2, 0→1→3, 1→2→0, 1→2→3, 1→3→0, 1→3→2, 2→0→1, 2→3→0,
	// 3→0→1, 3→2→0, 2→... (2→3→0 yes), (3→2→0 yes)... plus 1→2→... done.
	want := int64(10)
	if n != want {
		Stream(g, motif.MustPath(0, 1, 2), func(m *Match) bool {
			t.Logf("wedge %v", m.Nodes)
			return true
		})
		t.Errorf("wedge count = %d, want %d", n, want)
	}
}

func TestArcsMatchSeries(t *testing.T) {
	g := paperGraph(t)
	Stream(g, motif.MustPath(0, 1, 2, 0), func(m *Match) bool {
		for e := 0; e < 3; e++ {
			src, dst := m.Nodes[e], m.Nodes[(e+1)%3]
			if g.ArcSource(m.Arcs[e]) != src || g.ArcTarget(m.Arcs[e]) != dst {
				t.Errorf("edge %d arc endpoints (%d,%d) for match %v",
					e, g.ArcSource(m.Arcs[e]), g.ArcTarget(m.Arcs[e]), m.Nodes)
			}
			if len(g.Series(m.Arcs[e])) == 0 {
				t.Error("empty series on matched arc")
			}
		}
		return true
	})
}

func TestInjectivity(t *testing.T) {
	// Graph with a tempting non-injective walk: 0→1→0→... must not bind
	// motif vertex 2 to node 0 again for chain motifs.
	g, err := temporal.NewGraph([]temporal.Event{
		{From: 0, To: 1, T: 1, F: 1},
		{From: 1, To: 0, T: 2, F: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := Count(g, motif.MustPath(0, 1, 2)); n != 0 {
		t.Errorf("chain3 matches = %d, want 0 (injectivity)", n)
	}
	// Ping-pong motif 0→1→0 revisits legitimately; one match per rotation.
	if n := Count(g, motif.MustPath(0, 1, 0)); n != 2 {
		t.Errorf("ping-pong matches = %d, want 2", n)
	}
}

func TestSelfLoopNeverMatched(t *testing.T) {
	g, err := temporal.NewGraph([]temporal.Event{
		{From: 0, To: 0, T: 1, F: 1},
		{From: 0, To: 1, T: 2, F: 1},
		{From: 1, To: 2, T: 3, F: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	Stream(g, motif.MustPath(0, 1, 2), func(m *Match) bool {
		for _, a := range m.Arcs {
			if g.ArcSource(a) == g.ArcTarget(a) {
				t.Error("self-loop arc matched")
			}
		}
		return true
	})
}

func TestEarlyStop(t *testing.T) {
	g := paperGraph(t)
	calls := 0
	n := Stream(g, motif.MustPath(0, 1), func(m *Match) bool {
		calls++
		return calls < 3
	})
	if calls != 3 || n != 3 {
		t.Errorf("early stop: calls=%d n=%d, want 3", calls, n)
	}
}

func TestCollectLimit(t *testing.T) {
	g := paperGraph(t)
	ms := Collect(g, motif.MustPath(0, 1), 2)
	if len(ms) != 2 {
		t.Errorf("Collect limit: %d", len(ms))
	}
	all := Collect(g, motif.MustPath(0, 1), 0)
	if int64(len(all)) != Count(g, motif.MustPath(0, 1)) {
		t.Error("Collect(0) != Count")
	}
}

func TestVisitorMatchReused(t *testing.T) {
	g := paperGraph(t)
	var first *Match
	var firstNodes []temporal.NodeID
	Stream(g, motif.MustPath(0, 1, 2), func(m *Match) bool {
		if first == nil {
			first = m
			firstNodes = append([]temporal.NodeID(nil), m.Nodes...)
			return true
		}
		if m != first {
			t.Error("match struct not reused (doc contract changed?)")
		}
		return false
	})
	// After mutation, a clone must have preserved the original content.
	clone := first.Clone()
	_ = clone
	if fmt.Sprint(firstNodes) == fmt.Sprint(first.Nodes) {
		t.Log("second match equals first; harmless")
	}
}

// bruteCount counts matches by trying all node tuples (reference oracle).
func bruteCount(g *temporal.Graph, mo *motif.Motif) int64 {
	path := mo.Path()
	numV := mo.NumVertices()
	n := g.NumNodes()
	var rec func(v int, bind []temporal.NodeID) int64
	rec = func(v int, bind []temporal.NodeID) int64 {
		if v == numV {
			// check all path arcs exist
			for i := 1; i < len(path); i++ {
				if _, ok := g.FindArc(bind[path[i-1]], bind[path[i]]); !ok {
					return 0
				}
			}
			return 1
		}
		var total int64
		for u := 0; u < n; u++ {
			used := false
			for w := 0; w < v; w++ {
				if bind[w] == temporal.NodeID(u) {
					used = true
					break
				}
			}
			if used {
				continue
			}
			bind[v] = temporal.NodeID(u)
			total += rec(v+1, bind)
		}
		return total
	}
	return rec(0, make([]temporal.NodeID, numV))
}

func TestDifferentialVsBruteForce(t *testing.T) {
	motifs := []*motif.Motif{
		motif.MustPath(0, 1),
		motif.MustPath(0, 1, 2),
		motif.MustPath(0, 1, 0),
		motif.MustPath(0, 1, 2, 0),
		motif.MustPath(0, 1, 2, 3),
		motif.MustPath(0, 1, 2, 3, 1),
		motif.MustPath(0, 1, 2, 0, 3),
	}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nodes := 3 + rng.Intn(5)
		evs := make([]temporal.Event, 0, 24)
		for i := 0; i < 24; i++ {
			evs = append(evs, temporal.Event{
				From: temporal.NodeID(rng.Intn(nodes)),
				To:   temporal.NodeID(rng.Intn(nodes)),
				T:    int64(i),
				F:    1,
			})
		}
		g, err := temporal.NewGraph(evs)
		if err != nil {
			t.Fatal(err)
		}
		for _, mo := range motifs {
			got := Count(g, mo)
			want := bruteCount(g, mo)
			if got != want {
				t.Errorf("seed %d motif %v: count = %d, want %d", seed, mo, got, want)
			}
		}
	}
}

func TestNoDuplicateMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		evs := make([]temporal.Event, 30)
		for i := range evs {
			evs[i] = temporal.Event{
				From: temporal.NodeID(rng.Intn(6)),
				To:   temporal.NodeID(rng.Intn(6)),
				T:    int64(i),
				F:    1,
			}
		}
		g, err := temporal.NewGraph(evs)
		if err != nil {
			return false
		}
		seen := map[string]bool{}
		dup := false
		Stream(g, motif.MustPath(0, 1, 2, 0), func(m *Match) bool {
			k := fmt.Sprint(m.Nodes)
			if seen[k] {
				dup = true
				return false
			}
			seen[k] = true
			return true
		})
		return !dup
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestParallelEqualsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	evs := make([]temporal.Event, 400)
	for i := range evs {
		evs[i] = temporal.Event{
			From: temporal.NodeID(rng.Intn(40)),
			To:   temporal.NodeID(rng.Intn(40)),
			T:    int64(i),
			F:    1,
		}
	}
	g, err := temporal.NewGraph(evs)
	if err != nil {
		t.Fatal(err)
	}
	for _, mo := range []*motif.Motif{motif.MustPath(0, 1, 2), motif.MustPath(0, 1, 2, 0)} {
		serial := Count(g, mo)
		// Collect node bindings concurrently and compare as multisets.
		var mu sortedStrings
		got := StreamParallel(g, mo, 4, func(m *Match) bool {
			mu.add(fmt.Sprint(m.Nodes))
			return true
		})
		if got != serial {
			t.Errorf("%v: parallel count %d != serial %d", mo, got, serial)
		}
		var want sortedStrings
		Stream(g, mo, func(m *Match) bool {
			want.add(fmt.Sprint(m.Nodes))
			return true
		})
		if !mu.equal(&want) {
			t.Errorf("%v: parallel match set differs from serial", mo)
		}
	}
}

func TestParallelEarlyStop(t *testing.T) {
	g := paperGraph(t)
	var n int64
	StreamParallel(g, motif.MustPath(0, 1), 4, func(m *Match) bool {
		return false
	})
	_ = n // the call must terminate; that's the test
}

type sortedStrings struct {
	mu     sync.Mutex
	muVals []string
}

func (s *sortedStrings) add(v string) {
	s.mu.Lock()
	s.muVals = append(s.muVals, v)
	s.mu.Unlock()
}

func (s *sortedStrings) equal(o *sortedStrings) bool {
	if len(s.muVals) != len(o.muVals) {
		return false
	}
	sort.Strings(s.muVals)
	sort.Strings(o.muVals)
	for i := range s.muVals {
		if s.muVals[i] != o.muVals[i] {
			return false
		}
	}
	return true
}
