package join

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"flowmotif/internal/core"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

func mustGraph(t testing.TB, evs []temporal.Event) *temporal.Graph {
	t.Helper()
	g, err := temporal.NewGraph(evs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func figure7Graph(t testing.TB) *temporal.Graph {
	return mustGraph(t, []temporal.Event{
		{From: 0, To: 1, T: 10, F: 5},
		{From: 0, To: 1, T: 13, F: 2},
		{From: 0, To: 1, T: 15, F: 3},
		{From: 0, To: 1, T: 18, F: 7},
		{From: 1, To: 2, T: 9, F: 4},
		{From: 1, To: 2, T: 11, F: 3},
		{From: 1, To: 2, T: 16, F: 3},
		{From: 2, To: 0, T: 14, F: 4},
		{From: 2, To: 0, T: 19, F: 6},
		{From: 2, To: 0, T: 24, F: 3},
		{From: 2, To: 0, T: 25, F: 2},
	})
}

func key(in *core.Instance) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%v a=%v s=", in.Nodes, in.Arcs)
	for _, sp := range in.Spans {
		fmt.Fprintf(&b, "[%d,%d)", sp.Start, sp.End)
	}
	return b.String()
}

func keysOf(ins []*core.Instance) []string {
	ks := make([]string, len(ins))
	for i, in := range ins {
		ks[i] = key(in)
	}
	sort.Strings(ks)
	return ks
}

func collectJoin(t testing.TB, g *temporal.Graph, mo *motif.Motif, p core.Params) []*core.Instance {
	t.Helper()
	var out []*core.Instance
	_, err := Enumerate(g, mo, p, func(in *core.Instance) bool {
		out = append(out, in)
		return true
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func assertSameAsCore(t *testing.T, g *temporal.Graph, mo *motif.Motif, p core.Params, label string) {
	t.Helper()
	want, err := core.Collect(g, mo, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := collectJoin(t, g, mo, p)
	wk, gk := keysOf(want), keysOf(got)
	if len(wk) != len(gk) {
		t.Errorf("%s: join found %d instances, core found %d", label, len(gk), len(wk))
		return
	}
	for i := range wk {
		if wk[i] != gk[i] {
			t.Errorf("%s: first difference:\n  core: %s\n  join: %s", label, wk[i], gk[i])
			return
		}
	}
}

func TestJoinMatchesCoreOnFigure7(t *testing.T) {
	g := figure7Graph(t)
	mo := motif.MustPath(0, 1, 2, 0)
	for _, phi := range []float64{0, 5} {
		assertSameAsCore(t, g, mo, core.Params{Delta: 10, Phi: phi}, fmt.Sprintf("φ=%v", phi))
	}
}

func TestJoinValidatesInstances(t *testing.T) {
	g := figure7Graph(t)
	mo := motif.MustPath(0, 1, 2, 0)
	for _, in := range collectJoin(t, g, mo, core.Params{Delta: 10, Phi: 0}) {
		if err := core.Validate(g, mo, 10, 0, in); err != nil {
			t.Errorf("invalid join instance: %v", err)
		}
		if ok, why := core.IsMaximal(g, mo, 10, in); !ok {
			t.Errorf("non-maximal join instance: %s", why)
		}
	}
}

func TestJoinDifferentialRandom(t *testing.T) {
	motifs := []*motif.Motif{
		motif.MustPath(0, 1),
		motif.MustPath(0, 1, 2),
		motif.MustPath(0, 1, 0),
		motif.MustPath(0, 1, 2, 0),
		motif.MustPath(0, 1, 2, 3),
		motif.MustPath(0, 1, 2, 3, 1),
	}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nodes := 4 + rng.Intn(4)
		perm := rng.Perm(240)
		evs := make([]temporal.Event, 60)
		for i := range evs {
			evs[i] = temporal.Event{
				From: temporal.NodeID(rng.Intn(nodes)),
				To:   temporal.NodeID(rng.Intn(nodes)),
				T:    int64(perm[i]),
				F:    float64(1 + rng.Intn(9)),
			}
		}
		g := mustGraph(t, evs)
		for _, mo := range motifs {
			for _, delta := range []int64{8, 25} {
				for _, phi := range []float64{0, 4} {
					assertSameAsCore(t, g, mo, core.Params{Delta: delta, Phi: phi},
						fmt.Sprintf("seed=%d motif=%v δ=%d φ=%v", seed, mo, delta, phi))
				}
			}
		}
	}
}

func TestJoinDifferentialWithTies(t *testing.T) {
	for seed := int64(300); seed < 310; seed++ {
		rng := rand.New(rand.NewSource(seed))
		evs := make([]temporal.Event, 40)
		for i := range evs {
			evs[i] = temporal.Event{
				From: temporal.NodeID(rng.Intn(5)),
				To:   temporal.NodeID(rng.Intn(5)),
				T:    int64(rng.Intn(7)) * 30,
				F:    float64(1 + rng.Intn(5)),
			}
		}
		g := mustGraph(t, evs)
		for _, mo := range []*motif.Motif{motif.MustPath(0, 1, 2), motif.MustPath(0, 1, 2, 0)} {
			assertSameAsCore(t, g, mo, core.Params{Delta: 60, Phi: 2},
				fmt.Sprintf("ties seed=%d motif=%v", seed, mo))
		}
	}
}

func TestJoinStatsShowIntermediateBlowup(t *testing.T) {
	g := figure7Graph(t)
	mo := motif.MustPath(0, 1, 2, 0)
	n, st, err := Count(g, mo, core.Params{Delta: 10, Phi: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("instances = %d, want 6", n)
	}
	if st.Quintuples == 0 {
		t.Error("no quintuples recorded")
	}
	if len(st.Partials) != mo.NumEdges() {
		t.Errorf("partials per level = %v, want %d entries", st.Partials, mo.NumEdges())
	}
	// The hallmark of the baseline: far more intermediates than results.
	if st.Partials[0] <= n {
		t.Errorf("expected intermediate blow-up, got partials=%v instances=%d", st.Partials, n)
	}
}

func TestJoinBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(4000)
	evs := make([]temporal.Event, 1000)
	for i := range evs {
		evs[i] = temporal.Event{
			From: temporal.NodeID(rng.Intn(10)),
			To:   temporal.NodeID(rng.Intn(10)),
			T:    int64(perm[i]),
			F:    1,
		}
	}
	g := mustGraph(t, evs)
	_, _, err := Count(g, motif.MustPath(0, 1, 2, 3), core.Params{Delta: 2000, Phi: 0}, Options{MaxPartials: 100})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("expected budget error, got %v", err)
	}
}

func TestJoinParamValidation(t *testing.T) {
	g := figure7Graph(t)
	if _, _, err := Count(g, motif.MustPath(0, 1), core.Params{Delta: -1}, Options{}); err == nil {
		t.Error("negative delta accepted")
	}
}
