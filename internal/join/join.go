// Package join implements the paper's baseline competitor (§6.2.1): a
// motif-instance finder that materializes, for every arc of the time-series
// graph, all contiguous interaction intervals of duration at most δ as
// quintuples (u, v, ts, te, f), and then assembles motif instances by
// joining sub-motif instance tables level by level along the spanning path,
// in the style of a sort-merge join pipeline.
//
// The paper's point — which the Figure-8 benchmark reproduces — is that the
// join approach pays for a large volume of intermediate sub-motif instances
// that never extend to a full instance, which the two-phase algorithm
// (package core) avoids by pruning inside each structural match.
//
// Each quintuple also carries the timestamps of its series' neighbouring
// events (tPrev, tNext), which lets the join check the canonical-maximality
// conditions locally, so that the final output is exactly the same
// maximal-instance set that core.Enumerate produces (differentially tested).
package join

import (
	"errors"
	"fmt"
	"sort"

	"flowmotif/internal/core"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// Stats reports the intermediate-result volume of a join run; the blow-up
// in Quintuples and Partials versus the final Instances is the baseline's
// inefficiency the paper discusses.
type Stats struct {
	Quintuples int64   // per-arc interval tuples generated
	Partials   []int64 // partial sub-motif instances alive after each level
	Instances  int64   // final maximal instances emitted
}

// Options bound the join's resource usage.
type Options struct {
	// MaxPartials aborts the join when the number of live partial
	// sub-motif instances exceeds this bound (0 means 64M).
	MaxPartials int
}

// ErrBudget is returned when the join exceeds Options.MaxPartials.
var ErrBudget = errors.New("join: partial-result budget exceeded")

// quintuple is one contiguous interval of an arc's interaction series:
// events [start, end) spanning times [ts, te] with aggregated flow f.
type quintuple struct {
	arc        int32
	start, end int32
	ts, te     int64
	tPrev      int64 // time of the series event before start (minInt64 if none)
	tNext      int64 // time of the series event at end (maxInt64 if none)
	flow       float64
}

const (
	minTime = int64(-1) << 62
	maxTime = int64(1) << 62
)

// partial is a sub-motif instance covering motif edges [0, level].
type partial struct {
	nodes    []temporal.NodeID // motif vertex bindings (len = numV, -1 unbound)
	quins    []int32           // quintuple index per covered edge
	anchorTs int64             // ts of the level-0 quintuple (window start)
	anchorTP int64             // tPrev of the level-0 quintuple
	lastTe   int64
	lastTN   int64 // tNext of the last quintuple
	lastNode temporal.NodeID
}

// Enumerate finds all maximal instances of mo in g under p using the join
// baseline and streams them to visit (nil to count only). Results are
// identical to core.Enumerate; only the evaluation strategy differs.
func Enumerate(g *temporal.Graph, mo *motif.Motif, p core.Params, visit core.Visitor, opts Options) (Stats, error) {
	var st Stats
	if p.Delta < 0 || p.Phi < 0 {
		return st, errors.New("join: Delta and Phi must be non-negative")
	}
	maxPartials := opts.MaxPartials
	if maxPartials <= 0 {
		maxPartials = 64 << 20
	}
	m := mo.NumEdges()
	path := mo.Path()
	numV := mo.NumVertices()

	// Step 1: generate the per-arc quintuple table, grouped by arc (arcs
	// are CSR-ordered by source vertex, i.e. the table is "C1 sorted by
	// starting vertex"; the per-arc offsets below are the join index).
	quins, arcOff := buildQuintuples(g, p.Delta, p.Phi)
	st.Quintuples = int64(len(quins))

	// Step 2: seed the level-0 partial table: every quintuple on every arc
	// becomes a sub-motif instance of the first edge.
	var cur []partial
	for qi := range quins {
		q := &quins[qi]
		src, dst := g.ArcSource(int(q.arc)), g.ArcTarget(int(q.arc))
		if src == dst {
			continue // motif edges never bind self loops
		}
		if m == 1 {
			// Single-edge motifs apply the final maximality conditions at
			// the seed level: run to the window end and reach beyond the
			// previous anchor.
			if q.tNext <= q.ts+p.Delta || q.te <= q.tPrev+p.Delta {
				continue
			}
		}
		nodes := make([]temporal.NodeID, numV)
		for i := range nodes {
			nodes[i] = -1
		}
		nodes[path[0]] = src
		nodes[path[1]] = dst
		cur = append(cur, partial{
			nodes:    nodes,
			quins:    []int32{int32(qi)},
			anchorTs: q.ts,
			anchorTP: q.tPrev,
			lastTe:   q.te,
			lastTN:   q.tNext,
			lastNode: dst,
		})
	}
	st.Partials = append(st.Partials, int64(len(cur)))

	// Steps 3..m: join the partial table with the quintuple table on the
	// next spanning-path edge. Partials are sorted by their last node and
	// merged against the arc-grouped quintuples (sort-merge style).
	for level := 1; level < m; level++ {
		sort.Slice(cur, func(i, j int) bool { return cur[i].lastNode < cur[j].lastNode })
		var next []partial
		for pi := range cur {
			pt := &cur[pi]
			tv := path[level+1] // motif vertex to bind at this step
			if pt.nodes[tv] >= 0 {
				// Revisit (cycle closing): the target node is fixed.
				arc, ok := g.FindArc(pt.lastNode, pt.nodes[tv])
				if !ok {
					continue
				}
				next = appendJoined(next, g, quins, arcOff, pt, arc, tv, p, level == m-1)
			} else {
				lo, hi := g.OutArcs(pt.lastNode)
				for arc := lo; arc < hi; arc++ {
					w := g.ArcTarget(arc)
					if boundTo(pt.nodes, w) {
						continue // injectivity
					}
					next = appendJoined(next, g, quins, arcOff, pt, arc, tv, p, level == m-1)
				}
			}
			if len(next) > maxPartials {
				return st, fmt.Errorf("%w (level %d: %d partials)", ErrBudget, level, len(next))
			}
		}
		cur = next
		st.Partials = append(st.Partials, int64(len(cur)))
	}

	// Emit: every surviving partial is a maximal instance.
	st.Instances = int64(len(cur))
	if visit != nil {
		for pi := range cur {
			in := buildInstance(g, mo, &cur[pi], quins)
			if !visit(in) {
				break
			}
		}
	}
	return st, nil
}

// Count runs the join and returns the number of maximal instances.
func Count(g *temporal.Graph, mo *motif.Motif, p core.Params, opts Options) (int64, Stats, error) {
	st, err := Enumerate(g, mo, p, nil, opts)
	return st.Instances, st, err
}

// appendJoined joins partial pt with every quintuple on arc that satisfies
// the conditions the paper describes for the baseline's merge joins:
// adjacency (checked by the caller), strict inter-level time ordering, and
// the pairwise duration bound against the chain's first tuple
// (c'1.te − c2.ts ≤ δ). Everything else — canonical contiguity, forced
// splits, the final window and backward-maximality conditions — is only
// verified on complete tuples (see maximalChain), which is exactly why the
// baseline materializes a large volume of redundant sub-motif instances
// that never contribute to a result (§6.2.1).
func appendJoined(out []partial, g *temporal.Graph, quins []quintuple, arcOff []int32, pt *partial, arc int, tv int, p core.Params, final bool) []partial {
	windowEnd := pt.anchorTs + p.Delta
	for qi := arcOff[arc]; qi < arcOff[arc+1]; qi++ {
		q := &quins[qi]
		// Strict inter-level ordering.
		if q.ts <= pt.lastTe {
			continue
		}
		// Pairwise duration bound: everything within [anchor, anchor+δ].
		if q.te > windowEnd {
			continue
		}
		if final && !maximalChain(quins, pt, q, p.Delta) {
			continue
		}
		np := partial{
			nodes:    append([]temporal.NodeID(nil), pt.nodes...),
			quins:    append(append([]int32(nil), pt.quins...), qi),
			anchorTs: pt.anchorTs,
			anchorTP: pt.anchorTP,
			lastTe:   q.te,
			lastTN:   q.tNext,
			lastNode: g.ArcTarget(arc),
		}
		np.nodes[tv] = g.ArcTarget(arc)
		out = append(out, np)
	}
	return out
}

// maximalChain verifies, on a complete chain (pt's quintuples plus the
// final candidate q), the canonical-maximality conditions that single out
// maximal instances among the baseline's sub-motif combinations: each
// edge-set starts at the first series event after its predecessor's end,
// each split is forced, the final edge-set runs to the window end, and the
// instance cannot be extended backwards past the anchor.
func maximalChain(quins []quintuple, pt *partial, q *quintuple, delta int64) bool {
	windowEnd := pt.anchorTs + delta
	// Final edge-set runs to the window end and reaches beyond the
	// previous anchor (the window skip rule of Algorithm 1).
	if q.tNext <= windowEnd || q.te <= pt.anchorTP+delta {
		return false
	}
	prev := pt.quins
	for i := 0; i <= len(prev); i++ {
		var cur *quintuple
		if i < len(prev) {
			cur = &quins[prev[i]]
		} else {
			cur = q
		}
		if i > 0 {
			before := &quins[prev[i-1]]
			// Canonical contiguity with the predecessor.
			if cur.tPrev > before.te {
				return false
			}
			// Forced split of the predecessor.
			if before.tNext <= windowEnd && cur.ts > before.tNext {
				return false
			}
		}
	}
	return true
}

func boundTo(nodes []temporal.NodeID, w temporal.NodeID) bool {
	for _, n := range nodes {
		if n == w {
			return true
		}
	}
	return false
}

// buildQuintuples materializes, per arc, every contiguous interval of
// duration <= delta whose aggregated flow passes phi, plus the neighbouring
// event times needed for the maximality checks.
func buildQuintuples(g *temporal.Graph, delta int64, phi float64) ([]quintuple, []int32) {
	var quins []quintuple
	arcOff := make([]int32, g.NumArcs()+1)
	for a := 0; a < g.NumArcs(); a++ {
		arcOff[a] = int32(len(quins))
		s := g.Series(a)
		for i := 0; i < len(s); i++ {
			tPrev := minTime
			if i > 0 {
				tPrev = s[i-1].T
			}
			flow := 0.0
			for j := i; j < len(s) && s[j].T-s[i].T <= delta; j++ {
				flow += s[j].F
				if flow < phi {
					continue
				}
				tNext := maxTime
				if j+1 < len(s) {
					tNext = s[j+1].T
				}
				quins = append(quins, quintuple{
					arc:   int32(a),
					start: int32(i),
					end:   int32(j + 1),
					ts:    s[i].T,
					te:    s[j].T,
					tPrev: tPrev,
					tNext: tNext,
					flow:  flow,
				})
			}
		}
	}
	arcOff[g.NumArcs()] = int32(len(quins))
	return quins, arcOff
}

func buildInstance(g *temporal.Graph, mo *motif.Motif, pt *partial, quins []quintuple) *core.Instance {
	m := mo.NumEdges()
	in := &core.Instance{
		Nodes:     make([]temporal.NodeID, mo.NumVertices()),
		Arcs:      make([]int, m),
		Spans:     make([]core.Span, m),
		EdgeFlows: make([]float64, m),
	}
	copy(in.Nodes, pt.nodes)
	minFlow := 0.0
	for i := 0; i < m; i++ {
		q := &quins[pt.quins[i]]
		in.Arcs[i] = int(q.arc)
		in.Spans[i] = core.Span{Start: q.start, End: q.end}
		in.EdgeFlows[i] = q.flow
		if i == 0 || q.flow < minFlow {
			minFlow = q.flow
		}
	}
	in.Flow = minFlow
	in.Start = quins[pt.quins[0]].ts
	in.End = quins[pt.quins[m-1]].te
	return in
}
