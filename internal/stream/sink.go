package stream

import (
	"container/heap"
	"sort"
	"sync"
)

// FuncSink adapts a function to the Sink interface.
type FuncSink func(d *Detection)

// Emit implements Sink.
func (f FuncSink) Emit(d *Detection) { f(d) }

// MultiSink fans every detection out to each child sink in order.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(d *Detection) {
	for _, s := range m {
		s.Emit(d)
	}
}

// MemorySink retains the most recent detections in a bounded ring buffer,
// for "what fired lately" queries (flowmotifd's GET /instances). It is
// safe for concurrent use.
type MemorySink struct {
	mu    sync.Mutex
	ring  []*Detection
	next  int
	total int64
}

// NewMemorySink retains up to capacity detections (minimum 1).
func NewMemorySink(capacity int) *MemorySink {
	if capacity < 1 {
		capacity = 1
	}
	return &MemorySink{ring: make([]*Detection, 0, capacity)}
}

// Emit implements Sink.
func (m *MemorySink) Emit(d *Detection) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.ring) < cap(m.ring) {
		m.ring = append(m.ring, d)
	} else {
		m.ring[m.next] = d
		m.next = (m.next + 1) % cap(m.ring)
	}
	m.total++
}

// Total returns the number of detections ever emitted to the sink.
func (m *MemorySink) Total() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// Recent returns up to limit retained detections (limit <= 0: all),
// newest first, optionally filtered by subscription id (empty: all).
func (m *MemorySink) Recent(sub string, limit int) []*Detection {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*Detection
	n := len(m.ring)
	for i := 0; i < n; i++ {
		// Walk backwards from the most recently written slot.
		d := m.ring[((m.next-1-i)%n+n)%n]
		if sub != "" && d.Sub != sub {
			continue
		}
		out = append(out, d)
		if limit > 0 && len(out) == limit {
			break
		}
	}
	return out
}

// RemoveSub drops every retained detection of one subscription and
// returns them oldest-first — the recent-ring half of a subscription
// handoff (internal/cluster re-placement). Total is reduced accordingly.
func (m *MemorySink) RemoveSub(sub string) []*Detection {
	m.mu.Lock()
	defer m.mu.Unlock()
	var removed, kept []*Detection
	n := len(m.ring)
	for i := 0; i < n; i++ {
		// Walk forwards from the oldest retained slot.
		d := m.ring[(m.next+i)%n]
		if d.Sub == sub {
			removed = append(removed, d)
		} else {
			kept = append(kept, d)
		}
	}
	// Compacted oldest-first with next=0, the ring stays consistent: Emit
	// appends until full, then overwrites slot 0 — the oldest entry.
	m.ring = append(m.ring[:0], kept...)
	m.next = 0
	m.total -= int64(len(removed))
	return removed
}

// Inject splices handed-off detections (oldest-first) in as the sink's
// oldest entries, keeping at most capacity overall (newest win).
func (m *MemorySink) Inject(ds []*Detection) {
	if len(ds) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	merged := make([]*Detection, 0, len(ds)+len(m.ring))
	merged = append(merged, ds...)
	n := len(m.ring)
	for i := 0; i < n; i++ {
		merged = append(merged, m.ring[(m.next+i)%n])
	}
	if c := cap(m.ring); len(merged) > c {
		merged = merged[len(merged)-c:]
	}
	m.ring = append(m.ring[:0], merged...)
	m.next = 0
	m.total += int64(len(ds))
}

// MemorySinkState is the serializable content of a MemorySink (detections
// oldest-first), part of the flowmotifd snapshot payload.
type MemorySinkState struct {
	Detections []*Detection `json:"detections"`
	Total      int64        `json:"total"`
}

// Snapshot captures the retained detections, oldest first.
func (m *MemorySink) Snapshot() MemorySinkState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := MemorySinkState{Total: m.total}
	n := len(m.ring)
	for i := 0; i < n; i++ {
		// Walk forwards from the oldest retained slot.
		st.Detections = append(st.Detections, m.ring[(m.next+i)%n])
	}
	return st
}

// Restore replaces the sink content with a snapshot, keeping the sink's
// own capacity (only the newest detections are retained if it is smaller
// than the snapshot's).
func (m *MemorySink) Restore(st MemorySinkState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ring = m.ring[:0]
	m.next = 0
	ds := st.Detections
	if c := cap(m.ring); len(ds) > c {
		ds = ds[len(ds)-c:]
	}
	m.ring = append(m.ring, ds...)
	m.total = st.Total
}

// TopKSink keeps, per subscription, the k detections with the highest
// instance flow seen so far (ties broken towards earlier Start, then
// earlier End, for determinism). It is safe for concurrent use.
type TopKSink struct {
	k    int
	mu   sync.Mutex
	subs map[string]*detHeap
}

// NewTopKSink keeps the best k detections per subscription (minimum 1).
func NewTopKSink(k int) *TopKSink {
	if k < 1 {
		k = 1
	}
	return &TopKSink{k: k, subs: map[string]*detHeap{}}
}

// Emit implements Sink.
func (t *TopKSink) Emit(d *Detection) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(d)
}

func (t *TopKSink) emitLocked(d *Detection) {
	h := t.subs[d.Sub]
	if h == nil {
		h = &detHeap{}
		t.subs[d.Sub] = h
	}
	if h.Len() < t.k {
		heap.Push(h, d)
		return
	}
	if detLess((*h)[0], d) {
		(*h)[0] = d
		heap.Fix(h, 0)
	}
}

// Top returns the retained detections of a subscription, best first.
func (t *TopKSink) Top(sub string) []*Detection {
	t.mu.Lock()
	h := t.subs[sub]
	out := make([]*Detection, 0)
	if h != nil {
		out = append(out, (*h)...)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return detLess(out[j], out[i]) })
	return out
}

// RemoveSub drops one subscription's retained detections and returns them
// best-first — the top-k half of a subscription handoff.
func (t *TopKSink) RemoveSub(sub string) []*Detection {
	t.mu.Lock()
	h := t.subs[sub]
	delete(t.subs, sub)
	var out []*Detection
	if h != nil {
		out = append(out, (*h)...)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return detLess(out[j], out[i]) })
	return out
}

// Inject re-ranks handed-off detections under the sink's own k. Since k is
// a per-subscription bound, moving a subscription's full top list between
// sinks of equal k is lossless.
func (t *TopKSink) Inject(ds []*Detection) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, d := range ds {
		t.emitLocked(d)
	}
}

// TopKSinkState maps subscription id to its retained detections,
// best-first, part of the flowmotifd snapshot payload.
type TopKSinkState map[string][]*Detection

// Snapshot captures the retained detections per subscription, best first.
func (t *TopKSink) Snapshot() TopKSinkState {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TopKSinkState{}
	for sub, h := range t.subs {
		out := append([]*Detection(nil), (*h)...)
		sort.Slice(out, func(i, j int) bool { return detLess(out[j], out[i]) })
		st[sub] = out
	}
	return st
}

// Restore replaces the sink content with a snapshot, re-ranking under the
// sink's own k (the weakest detections are dropped if it is smaller than
// the snapshot's).
func (t *TopKSink) Restore(st TopKSinkState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.subs = map[string]*detHeap{}
	for _, ds := range st {
		for _, d := range ds {
			t.emitLocked(d)
		}
	}
}

// detLess orders detections worst-first (heap order): by flow, then by
// later start/end so that among equal flows the earliest instance wins.
func detLess(a, b *Detection) bool {
	if a.Flow != b.Flow {
		return a.Flow < b.Flow
	}
	if a.Start != b.Start {
		return a.Start > b.Start
	}
	return a.End > b.End
}

// detHeap is a min-heap under detLess (the root is the weakest retained
// detection).
type detHeap []*Detection

func (h detHeap) Len() int            { return len(h) }
func (h detHeap) Less(i, j int) bool  { return detLess(h[i], h[j]) }
func (h detHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *detHeap) Push(x interface{}) { *h = append(*h, x.(*Detection)) }
func (h *detHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
