package stream

import (
	"math/rand"
	"testing"

	"flowmotif/internal/motif"
)

func snapshotSubs() []Subscription {
	return []Subscription{
		{ID: "chain", Motif: motif.MustPath(0, 1, 2), Delta: 300, Phi: 0},
		{ID: "tri", Motif: motif.MustPath(0, 1, 2, 0), Delta: 600, Phi: 4},
	}
}

// collectSink records detection keys, failing on duplicates.
func collectSink(t *testing.T, name string, got map[string]bool) Sink {
	return FuncSink(func(d *Detection) {
		k := d.Sub + "/" + detKey(d)
		if got[k] {
			t.Errorf("%s: duplicate detection %s", name, k)
		}
		got[k] = true
	})
}

// TestSnapshotRestoreEquivalence interrupts a stream at an arbitrary batch
// boundary, snapshots the engine, restores it into a fresh engine, and
// continues. The union of detections emitted before the snapshot and
// after the restore must equal the uninterrupted run's set exactly — no
// losses, no duplicates.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	evs := streamEvents(t, 11)

	full := map[string]bool{}
	ref, err := NewEngine(Config{Subs: snapshotSubs()}, collectSink(t, "full", full))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Ingest(evs); err != nil {
		t.Fatal(err)
	}
	ref.Flush()
	if len(full) == 0 {
		t.Fatal("degenerate test: uninterrupted run detected nothing")
	}

	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 4; trial++ {
		cut := 1 + rng.Intn(len(evs)-1)
		// Never split a timestamp across the cut: the second engine's
		// ingest must not reach behind the first's watermark.
		for cut < len(evs) && evs[cut].T == evs[cut-1].T {
			cut++
		}
		got := map[string]bool{}
		e1, err := NewEngine(Config{Subs: snapshotSubs()}, collectSink(t, "pre", got))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cut; i += 64 {
			j := i + 64
			if j > cut {
				j = cut
			}
			if _, err := e1.Ingest(evs[i:j]); err != nil {
				t.Fatal(err)
			}
		}
		snap, err := e1.Snapshot()
		if err != nil {
			t.Fatal(err)
		}

		e2, err := NewEngine(Config{Subs: snapshotSubs()}, collectSink(t, "post", got))
		if err != nil {
			t.Fatal(err)
		}
		if err := e2.Restore(snap); err != nil {
			t.Fatalf("restore at cut %d: %v", cut, err)
		}
		if cut < len(evs) {
			if _, err := e2.Ingest(evs[cut:]); err != nil {
				t.Fatal(err)
			}
		}
		e2.Flush()

		if len(got) != len(full) {
			t.Fatalf("cut %d: interrupted run detected %d, uninterrupted %d", cut, len(got), len(full))
		}
		for k := range full {
			if !got[k] {
				t.Fatalf("cut %d: missing detection %s", cut, k)
			}
		}
		// Engine counters must survive the restore too.
		st1, st2 := e2.Stats(), ref.Stats()
		if st1.EventsIngested != st2.EventsIngested || st1.Detections != st2.Detections {
			t.Fatalf("cut %d: stats diverge: %+v vs %+v", cut, st1, st2)
		}
	}
}

// TestSnapshotRoundTripJSON exercises the serialization path the durable
// server uses (snapshots cross a JSON boundary on disk).
func TestSnapshotRestoreValidation(t *testing.T) {
	evs := streamEvents(t, 13)
	e1, err := NewEngine(Config{Subs: snapshotSubs()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Ingest(evs[:500]); err != nil {
		t.Fatal(err)
	}
	snap, err := e1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Restore into a non-fresh engine must fail.
	if err := e1.Restore(snap); err == nil {
		t.Fatal("restore into a used engine succeeded")
	}

	// Restore with mismatched subscriptions must fail and leave the
	// engine usable.
	other, err := NewEngine(Config{Subs: []Subscription{
		{ID: "chain", Motif: motif.MustPath(0, 1, 2), Delta: 300, Phi: 0},
		{ID: "tri", Motif: motif.MustPath(0, 1, 2, 0), Delta: 999, Phi: 4}, // δ differs
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(snap); err == nil {
		t.Fatal("restore with mismatched δ succeeded")
	}
	if _, err := other.Ingest(evs[:10]); err != nil {
		t.Fatalf("engine unusable after failed restore: %v", err)
	}

	// A corrupted log state must be rejected.
	bad := *snap
	bad.Log.Appended += 3
	fresh, err := NewEngine(Config{Subs: snapshotSubs()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(&bad); err == nil {
		t.Fatal("restore with corrupt log counters succeeded")
	}

	// Version gating.
	bad = *snap
	bad.Version = SnapshotVersion + 1
	if err := fresh.Restore(&bad); err == nil {
		t.Fatal("restore of future snapshot version succeeded")
	}
}

// TestSinkSnapshotRoundTrip checks the query sinks' snapshot/restore,
// which the durable server persists alongside the engine.
func TestSinkSnapshotRoundTrip(t *testing.T) {
	mk := func(sub string, flow float64, start int64) *Detection {
		return &Detection{Sub: sub, Flow: flow, Start: start, End: start + 1}
	}

	mem := NewMemorySink(3)
	for i := 0; i < 5; i++ {
		mem.Emit(mk("a", float64(i), int64(i)))
	}
	st := mem.Snapshot()
	if st.Total != 5 || len(st.Detections) != 3 {
		t.Fatalf("memory snapshot total=%d len=%d, want 5/3", st.Total, len(st.Detections))
	}
	mem2 := NewMemorySink(3)
	mem2.Restore(st)
	r1, r2 := mem.Recent("", 0), mem2.Recent("", 0)
	if len(r1) != len(r2) {
		t.Fatalf("restored ring length %d, want %d", len(r2), len(r1))
	}
	for i := range r1 {
		if r1[i].Start != r2[i].Start {
			t.Fatalf("restored ring order differs at %d", i)
		}
	}
	if mem2.Total() != 5 {
		t.Fatalf("restored total = %d, want 5", mem2.Total())
	}
	// Emitting after a full-ring restore must overwrite the oldest entry.
	mem2.Emit(mk("a", 9, 100))
	if got := mem2.Recent("", 1); got[0].Start != 100 {
		t.Fatalf("newest after post-restore emit = %v", got[0])
	}
	if got := mem2.Recent("", 0); len(got) != 3 {
		t.Fatalf("ring grew past capacity: %d", len(got))
	}

	top := NewTopKSink(2)
	for i := 0; i < 5; i++ {
		top.Emit(mk("a", float64(i), int64(i)))
		top.Emit(mk("b", float64(10-i), int64(i)))
	}
	top2 := NewTopKSink(2)
	top2.Restore(top.Snapshot())
	for _, sub := range []string{"a", "b"} {
		w, g := top.Top(sub), top2.Top(sub)
		if len(w) != len(g) {
			t.Fatalf("sub %s: restored %d, want %d", sub, len(g), len(w))
		}
		for i := range w {
			if w[i].Flow != g[i].Flow {
				t.Fatalf("sub %s: rank %d flow %g, want %g", sub, i, g[i].Flow, w[i].Flow)
			}
		}
	}
}
