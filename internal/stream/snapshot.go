package stream

import (
	"fmt"

	"flowmotif/internal/temporal"
)

// SnapshotVersion is the current EngineSnapshot format version.
const SnapshotVersion = 1

// SubSnapshot is the persisted state of one subscription, including the
// (motif, δ, φ) identity so a restore into a differently configured engine
// is rejected instead of silently producing wrong detections.
type SubSnapshot struct {
	ID         string  `json:"id"`
	Motif      string  `json:"motif"` // spanning-path spec, e.g. "0-1-2-0"
	Delta      int64   `json:"delta"`
	Phi        float64 `json:"phi"`
	Emitted    int64   `json:"emitted"`
	Primed     bool    `json:"primed"`
	Detections int64   `json:"detections"`
	Bands      int64   `json:"bands"`
}

// EngineSnapshot is the complete serializable state of an Engine: the
// stream frontier, per-subscription finalization bounds, and the retained
// window log. Restoring it into a fresh engine with the same subscriptions
// and then replaying the events ingested after the snapshot reproduces the
// uninterrupted run exactly (the recovery protocol of internal/store and
// cmd/flowmotifd; see DESIGN.md §8).
type EngineSnapshot struct {
	Version    int                     `json:"version"`
	MinNextT   int64                   `json:"minNextT"`
	Batches    int64                   `json:"batches"`
	Detections int64                   `json:"detections"`
	Subs       []SubSnapshot           `json:"subs"`
	Log        temporal.WindowLogState `json:"log"`
}

// Snapshot captures the engine state. It serializes against in-flight
// Ingest/Flush calls (including their sink emission), so the snapshot never
// reflects a finalized band whose detections have not reached the sink. A
// fail-stopped engine refuses to snapshot: its log holds the partial batch
// of the failed append, and persisting that as the authoritative recovery
// state would launder the divergence into a healthy-looking restart.
func (e *Engine) Snapshot() (*EngineSnapshot, error) {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.failedLocked(); err != nil {
		return nil, fmt.Errorf("stream: snapshot: %w", err)
	}
	snap := &EngineSnapshot{
		Version:    SnapshotVersion,
		MinNextT:   e.minNextT,
		Batches:    e.batches,
		Detections: e.detections,
		Log:        e.log.State(),
	}
	for _, s := range e.subs {
		snap.Subs = append(snap.Subs, SubSnapshot{
			ID:         s.sub.ID,
			Motif:      s.sub.Motif.String(),
			Delta:      s.sub.Delta,
			Phi:        s.sub.Phi,
			Emitted:    s.emitted,
			Primed:     s.primed,
			Detections: s.detections,
			Bands:      s.bands,
		})
	}
	return snap, nil
}

// Restore loads a snapshot into the engine. The engine must be fresh (no
// event ever ingested) and configured with exactly the snapshot's
// subscriptions — same IDs, motifs, δ and φ. Validation is all-or-nothing:
// on error the engine is unchanged and still usable (e.g. for a full
// write-ahead-log replay from scratch).
func (e *Engine) Restore(snap *EngineSnapshot) error {
	if snap == nil {
		return fmt.Errorf("stream: nil snapshot")
	}
	if snap.Version != SnapshotVersion {
		return fmt.Errorf("stream: snapshot version %d not supported (want %d)", snap.Version, SnapshotVersion)
	}
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.failedLocked(); err != nil {
		// A poisoned engine's in-memory state has diverged from its log;
		// loading a snapshot over it would mask the divergence while the
		// poison stays set. Replace the engine instead.
		return fmt.Errorf("stream: restore: %w", err)
	}
	if e.batches != 0 || e.log.Appended() != 0 {
		return fmt.Errorf("stream: Restore requires a fresh engine (already ingested %d events)", e.log.Appended())
	}
	if len(snap.Subs) != len(e.subs) {
		return fmt.Errorf("stream: snapshot has %d subscriptions, engine has %d", len(snap.Subs), len(e.subs))
	}
	byID := make(map[string]*SubSnapshot, len(snap.Subs))
	for i := range snap.Subs {
		ss := &snap.Subs[i]
		if _, dup := byID[ss.ID]; dup {
			return fmt.Errorf("stream: snapshot has duplicate subscription id %q", ss.ID)
		}
		byID[ss.ID] = ss
	}
	for _, s := range e.subs {
		ss, ok := byID[s.sub.ID]
		if !ok {
			return fmt.Errorf("stream: snapshot is missing subscription %q", s.sub.ID)
		}
		if got, want := s.sub.Motif.String(), ss.Motif; got != want {
			return fmt.Errorf("stream: subscription %q motif mismatch: engine %s, snapshot %s", s.sub.ID, got, want)
		}
		if s.sub.Delta != ss.Delta || s.sub.Phi != ss.Phi {
			return fmt.Errorf("stream: subscription %q (δ=%d, φ=%g) does not match snapshot (δ=%d, φ=%g)",
				s.sub.ID, s.sub.Delta, s.sub.Phi, ss.Delta, ss.Phi)
		}
	}
	log, err := temporal.NewWindowLogFromState(snap.Log)
	if err != nil {
		return fmt.Errorf("stream: snapshot log: %w", err)
	}
	e.log = log
	e.minNextT = snap.MinNextT
	e.batches = snap.Batches
	e.detections = snap.Detections
	for _, s := range e.subs {
		ss := byID[s.sub.ID]
		s.emitted = ss.Emitted
		s.primed = ss.Primed
		s.detections = ss.Detections
		s.bands = ss.Bands
	}
	return nil
}
