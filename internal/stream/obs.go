package stream

// Engine instrumentation (internal/obs). The engine records, per finalize
// round, a stage breakdown histogram — snapshot build, phase-P1 match
// run, per-subscription fan-out, sink emit — plus the end-to-end
// detection lag (batch arrival wall-clock → detection emit), the number a
// latency SLO is written against. All instruments are nil-safe, so a
// Config.DisableObs engine carries a nil *engineMetrics and pays nothing
// (no clock reads either: roundTrace stays off).

import (
	"log/slog"
	"time"

	"flowmotif/internal/obs"
)

type engineMetrics struct {
	stageSnapshot *obs.Histogram
	stageMatch    *obs.Histogram
	stageFanout   *obs.Histogram
	stageEmit     *obs.Histogram
	round         *obs.Histogram
	detectionLag  *obs.Histogram
}

func newEngineMetrics(r *obs.Registry) *engineMetrics {
	stage := func(name string) *obs.Histogram {
		return r.Histogram("flowmotif_finalize_stage_seconds",
			"Per-finalize-round stage wall-clock: snapshot build, phase-P1 match run, per-subscription fan-out, sink emit.",
			obs.LatencyBuckets, obs.L("stage", name))
	}
	return &engineMetrics{
		stageSnapshot: stage("snapshot"),
		stageMatch:    stage("match"),
		stageFanout:   stage("fanout"),
		stageEmit:     stage("emit"),
		round: r.Histogram("flowmotif_finalize_round_seconds",
			"Whole finalize round wall-clock (all stages, excluding sink emit).", obs.LatencyBuckets),
		detectionLag: r.Histogram("flowmotif_detection_lag_seconds",
			"End-to-end detection lag: ingest batch arrival wall-clock to detection emit.", obs.LatencyBuckets),
	}
}

// emitHist and lagHist are nil-safe accessors for the two instruments
// observed outside finalize (emitPending runs with mu released).
func (m *engineMetrics) emitHist() *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.stageEmit
}

func (m *engineMetrics) lagHist() *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.detectionLag
}

// roundTrace accumulates one finalize round's stage durations. The
// stages interleave per shape (a sliver shape builds a private graph
// mid-round), so each stage is a sum of marks, recorded once at round
// end. It stays off — zero clock reads — unless metrics or slow-round
// logging want it.
type roundTrace struct {
	on                  bool
	t0, last            time.Time
	snap, match, fanout time.Duration
}

func (t *roundTrace) begin(e *Engine) {
	if e.mx == nil && (e.logger == nil || e.slowRound <= 0) {
		return
	}
	t.on = true
	t.t0 = time.Now()
	t.last = t.t0
}

// mark adds the time since the previous mark to one stage accumulator.
func (t *roundTrace) mark(d *time.Duration) {
	if !t.on {
		return
	}
	now := time.Now()
	*d += now.Sub(t.last)
	t.last = now
}

// end records the round into the engine's histograms and logs a
// slow-round warning with the stage breakdown when the round exceeded
// the configured threshold. The caller holds mu.
func (t *roundTrace) end(e *Engine, watermark int64, bands int) {
	if !t.on {
		return
	}
	total := time.Since(t.t0)
	if mx := e.mx; mx != nil {
		mx.stageSnapshot.ObserveDuration(t.snap)
		mx.stageMatch.ObserveDuration(t.match)
		mx.stageFanout.ObserveDuration(t.fanout)
		mx.round.ObserveDuration(total)
	}
	if e.logger != nil && e.slowRound > 0 && total > e.slowRound {
		e.logger.Warn("slow finalize round",
			slog.Duration("total", total),
			slog.Duration("snapshot", t.snap),
			slog.Duration("match", t.match),
			slog.Duration("fanout", t.fanout),
			slog.Int64("watermark", watermark),
			slog.Int("bands", bands),
			slog.Int64("retained_events", int64(e.log.Len())))
	}
}
