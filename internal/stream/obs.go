package stream

// Engine instrumentation (internal/obs). The engine records, per finalize
// round, a stage breakdown histogram — snapshot build, phase-P1 match
// run, per-subscription fan-out, sink emit — plus the end-to-end
// detection lag (batch arrival wall-clock → detection emit), the number a
// latency SLO is written against. All instruments are nil-safe, so a
// Config.DisableObs engine carries a nil *engineMetrics and pays nothing
// (no clock reads either: roundTrace stays off).

import (
	"log/slog"
	"strconv"
	"time"

	"flowmotif/internal/obs"
)

type engineMetrics struct {
	stageSnapshot *obs.Histogram
	stageMatch    *obs.Histogram
	stageFanout   *obs.Histogram
	stageEmit     *obs.Histogram
	round         *obs.Histogram
	detectionLag  *obs.Histogram
}

func newEngineMetrics(r *obs.Registry) *engineMetrics {
	stage := func(name string) *obs.Histogram {
		return r.Histogram("flowmotif_finalize_stage_seconds",
			"Per-finalize-round stage wall-clock: snapshot build, phase-P1 match run, per-subscription fan-out, sink emit.",
			obs.LatencyBuckets, obs.L("stage", name))
	}
	return &engineMetrics{
		stageSnapshot: stage("snapshot"),
		stageMatch:    stage("match"),
		stageFanout:   stage("fanout"),
		stageEmit:     stage("emit"),
		round: r.Histogram("flowmotif_finalize_round_seconds",
			"Whole finalize round wall-clock (all stages, excluding sink emit).", obs.LatencyBuckets),
		detectionLag: r.Histogram("flowmotif_detection_lag_seconds",
			"End-to-end detection lag: ingest batch arrival wall-clock to detection emit.", obs.LatencyBuckets),
	}
}

// emitHist and lagHist are nil-safe accessors for the two instruments
// observed outside finalize (emitPending runs with mu released).
func (m *engineMetrics) emitHist() *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.stageEmit
}

func (m *engineMetrics) lagHist() *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.detectionLag
}

// startPlanSpan opens a child span under parent (nil parent — tracing
// off or no batch trace — returns an inert nil span). The caller holds
// mu.
func (e *Engine) startPlanSpan(name string, parent *obs.TraceSpan, attrs ...obs.Label) *obs.TraceSpan {
	if parent == nil {
		return nil
	}
	return e.tracer.StartSpan(name, parent.Context(), attrs...)
}

// roundTrace accumulates one finalize round's stage durations. The
// stages interleave per shape (a sliver shape builds a private graph
// mid-round), so each stage is a sum of marks, recorded once at round
// end. It stays off — zero clock reads — unless metrics, tracing, or
// slow-round logging want it. With tracing on it also carries the
// round's real span ("finalize.round", child of the batch's root span),
// the parent of the planner's stage spans.
type roundTrace struct {
	on                  bool //flowmotif:obsgate
	t0, last            time.Time
	snap, match, fanout time.Duration
	span                *obs.TraceSpan
}

func (t *roundTrace) begin(e *Engine) {
	if e.mx == nil && e.curSpan == nil && (e.logger == nil || e.slowRound <= 0) {
		return
	}
	t.on = true
	t.t0 = time.Now()
	t.last = t.t0
	if e.curSpan != nil {
		t.span = e.tracer.StartSpan("finalize.round", e.curSpan.Context())
	}
}

// mark adds the time since the previous mark to one stage accumulator.
func (t *roundTrace) mark(d *time.Duration) {
	if !t.on {
		return
	}
	now := time.Now()
	*d += now.Sub(t.last)
	t.last = now
}

// end records the round into the engine's histograms (offering the
// round's trace as the histogram exemplar), closes the round span, and —
// when the round exceeded the slow-round threshold — retains the trace
// in the flight recorder and logs a warning whose trace ID keys the same
// trace as the exemplar and /debug/traces. The caller holds mu.
func (t *roundTrace) end(e *Engine, watermark int64, bands int) {
	if !t.on {
		return
	}
	total := time.Since(t.t0)
	trace := t.span.Context().Trace
	if mx := e.mx; mx != nil {
		mx.stageSnapshot.ObserveDuration(t.snap)
		mx.stageMatch.ObserveDuration(t.match)
		mx.stageFanout.ObserveDuration(t.fanout)
		mx.round.ObserveExemplar(total.Seconds(), trace)
	}
	t.span.Annotate(
		obs.L("watermark", strconv.FormatInt(watermark, 10)),
		obs.L("bands", strconv.Itoa(bands)))
	t.span.End()
	if e.slowRound > 0 && total > e.slowRound {
		// Tail sampling: a slow round's trace survives ring wraparound.
		e.tracer.Retain(trace)
		if e.logger != nil {
			e.logger.Warn("slow finalize round",
				slog.Duration("total", total),
				slog.Duration("snapshot", t.snap),
				slog.Duration("match", t.match),
				slog.Duration("fanout", t.fanout),
				slog.Int64("watermark", watermark),
				slog.Int("bands", bands),
				slog.Int64("retained_events", int64(e.log.Len())),
				slog.String("trace", trace))
		}
	}
}
