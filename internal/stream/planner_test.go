package stream

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"flowmotif/internal/core"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// TestStreamSharedShapePlannerEquivalence is the planner oracle demanded
// by the shared-evaluation refactor: many subscriptions sharing one motif
// shape under distinct (δ, φ) combinations — the regime where plan groups
// share a snapshot and one phase-P1 match list — must detect exactly the
// batch instance set, per subscription, with no cross-subscription state
// bleed. The stream additionally churns membership mid-flight: one
// shared-shape subscription is removed and re-added through the handoff
// protocol, and a fresh subscription joins unprimed ("from now on"). The
// whole scenario runs under the shared planner (serial and parallel
// workers) and the per-subscription baseline, which must agree.
func TestStreamSharedShapePlannerEquivalence(t *testing.T) {
	evs := streamEvents(t, 21)
	g, err := temporal.NewGraph(evs)
	if err != nil {
		t.Fatal(err)
	}

	tri := motif.MustPath(0, 1, 2, 0) // shared shape: the triangle
	chain := motif.MustPath(0, 1, 2)  // second shape riding along
	combos := []struct {
		delta int64
		phi   float64
	}{
		{200, 0}, {200, 3}, {500, 0}, {500, 5}, {900, 2}, {900, 0},
	}
	var subs []Subscription
	for i, c := range combos {
		subs = append(subs, Subscription{ID: fmt.Sprintf("tri%d", i), Motif: tri, Delta: c.delta, Phi: c.phi})
	}
	for i, c := range combos[:3] {
		subs = append(subs, Subscription{ID: fmt.Sprintf("ch%d", i), Motif: chain, Delta: c.delta, Phi: c.phi})
	}
	late := Subscription{ID: "late", Motif: tri, Delta: 500, Phi: 1}

	for _, mode := range []struct {
		name    string
		disable bool
		workers int
	}{
		{"shared", false, 1},
		{"shared-parallel", false, 4},
		{"per-sub-baseline", true, 1},
	} {
		t.Run(mode.name, func(t *testing.T) {
			got := map[string]map[string]bool{}
			sink := FuncSink(func(d *Detection) {
				set := got[d.Sub]
				if set == nil {
					set = map[string]bool{}
					got[d.Sub] = set
				}
				k := detKey(d)
				if set[k] {
					t.Errorf("sub %s: duplicate detection %s", d.Sub, k)
				}
				set[k] = true
			})
			eng, err := NewEngine(Config{
				Subs:                 subs,
				Workers:              mode.workers,
				DisableSharedPlanner: mode.disable,
			}, sink)
			if err != nil {
				t.Fatal(err)
			}

			feed := func(evs []temporal.Event, seed int64) {
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < len(evs); {
					n := 1 + rng.Intn(50)
					if i+n > len(evs) {
						n = len(evs) - i
					}
					batch := append([]temporal.Event(nil), evs[i:i+n]...)
					rng.Shuffle(len(batch), func(a, b int) { batch[a], batch[b] = batch[b], batch[a] })
					if _, err := eng.Ingest(batch); err != nil {
						t.Fatal(err)
					}
					i += n
				}
			}

			half := len(evs) / 2
			feed(evs[:half], 7)
			// Churn a shared-shape member: remove it, keep streaming a
			// little, then resume it exactly where it left off (the cluster
			// re-placement protocol, here within one engine). Its plan
			// group must give it up and take it back without disturbing the
			// siblings sharing the shape.
			rem, err := eng.RemoveSubscription("tri2")
			if err != nil {
				t.Fatal(err)
			}
			// Stream on for a bounded stretch (< the survivors' retention
			// horizon) so the handoff's catch-up still meets the engine's
			// retained suffix when the subscription comes back.
			gap := half
			for gap < 2*len(evs)/3 && evs[gap].T-evs[half-1].T < 600 {
				gap++
			}
			feed(evs[half:gap], 8)
			err = eng.AddSubscription(rem.Sub, AddOptions{
				Catchup: rem.Events,
				Emitted: rem.Emitted,
				Primed:  rem.Primed,
			})
			if err != nil {
				t.Fatal(err)
			}
			twoThirds := 2 * len(evs) / 3
			feed(evs[gap:twoThirds], 9)
			// A fresh shared-shape subscription joins unprimed: it observes
			// only windows anchored after the join watermark.
			wJoin, ok := eng.Watermark()
			if !ok {
				t.Fatal("engine not started at join time")
			}
			if err := eng.AddSubscription(late, AddOptions{}); err != nil {
				t.Fatal(err)
			}
			feed(evs[twoThirds:], 10)
			eng.Flush()

			check := func(sub Subscription, anchorLo int64) {
				p := core.Params{Delta: sub.Delta, Phi: sub.Phi}
				want, err := core.CollectRange(g, sub.Motif, p, anchorLo, math.MaxInt64)
				if err != nil {
					t.Fatal(err)
				}
				wantKeys := map[string]bool{}
				for _, in := range want {
					wantKeys[batchKey(g, in)] = true
				}
				if len(wantKeys) == 0 {
					t.Fatalf("degenerate test: no batch instances for %s", sub.ID)
				}
				for k := range wantKeys {
					if !got[sub.ID][k] {
						t.Errorf("sub %s: missing %s", sub.ID, k)
					}
				}
				for k := range got[sub.ID] {
					if !wantKeys[k] {
						t.Errorf("sub %s: spurious %s", sub.ID, k)
					}
				}
			}
			for _, sub := range subs {
				check(sub, math.MinInt64)
			}
			check(late, wJoin+1)

			st := eng.Stats()
			// tri δ∈{200,500,900} (late joined the 500 group) + chain
			// δ∈{200,500}: five plan groups.
			if st.PlanGroups != 5 {
				t.Errorf("PlanGroups = %d, want 5", st.PlanGroups)
			}
			if st.SnapshotBuilds == 0 {
				t.Error("SnapshotBuilds = 0: no snapshot accounting")
			}
			if !mode.disable {
				// The whole point of the planner: one snapshot serves many
				// bands and one match walk serves many subscriptions.
				if st.SnapshotReuse < 2 {
					t.Errorf("SnapshotReuse = %.2f under the shared planner, want >= 2", st.SnapshotReuse)
				}
				if st.MatchesShared == 0 {
					t.Error("MatchesShared = 0: shared-shape subscriptions did not share phase P1")
				}
				var bands int64
				for _, s := range st.Subs {
					bands += s.Bands
				}
				if st.MatchRuns >= bands {
					t.Errorf("MatchRuns = %d not below bands = %d: phase P1 is not shared", st.MatchRuns, bands)
				}
			} else if st.SnapshotReuse > 1 {
				t.Errorf("SnapshotReuse = %.2f under the per-sub baseline, want 1", st.SnapshotReuse)
			}
		})
	}
}

// TestIngestAppendFailStop is the regression for the partial-append error
// path: when an append fails mid-batch (simulated via the test hook — in
// production the batch is pre-validated, so this is a should-not-happen
// divergence), the engine fail-stops like the cluster WAL-poison path:
// the failing call reports ErrFailStopped with the partial count, and
// every later ingest/flush/add is refused instead of building on the
// diverged log.
func TestIngestAppendFailStop(t *testing.T) {
	sink := NewMemorySink(16)
	eng, err := NewEngine(Config{Subs: []Subscription{
		{ID: "s", Motif: motif.MustPath(0, 1), Delta: 5},
	}}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Ingest([]temporal.Event{{From: 0, To: 1, T: 10, F: 1}}); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk on fire")
	eng.appendHook = func(i int) error {
		if i == 1 {
			return boom
		}
		return nil
	}
	ack, err := eng.IngestWithAck([]temporal.Event{
		{From: 0, To: 1, T: 20, F: 1},
		{From: 0, To: 1, T: 21, F: 1},
		{From: 0, To: 1, T: 22, F: 1},
	})
	if !errors.Is(err, ErrFailStopped) {
		t.Fatalf("partial append: err = %v, want ErrFailStopped", err)
	}
	if ack.Ingested != 1 {
		t.Fatalf("partial append ack.Ingested = %d, want 1 (the applied prefix)", ack.Ingested)
	}

	// Poisoned: later calls are refused even though the hook would now pass.
	eng.appendHook = nil
	if _, err := eng.Ingest([]temporal.Event{{From: 0, To: 1, T: 100, F: 1}}); !errors.Is(err, ErrFailStopped) {
		t.Fatalf("ingest after fail-stop: err = %v, want ErrFailStopped", err)
	}
	if _, err := eng.IngestWithAck(nil); !errors.Is(err, ErrFailStopped) {
		t.Fatalf("empty ingest after fail-stop: err = %v, want ErrFailStopped", err)
	}
	// Membership changes are fenced too: an add would finalize bands over
	// the diverged log, a remove would export it as handoff catch-up.
	err = eng.AddSubscription(Subscription{ID: "t", Motif: motif.MustPath(0, 1)}, AddOptions{})
	if !errors.Is(err, ErrFailStopped) {
		t.Fatalf("add after fail-stop: err = %v, want ErrFailStopped", err)
	}
	if _, err := eng.RemoveSubscription("s"); !errors.Is(err, ErrFailStopped) {
		t.Fatalf("remove after fail-stop: err = %v, want ErrFailStopped", err)
	}
	// Snapshots are refused: checkpointing the diverged log would launder
	// the partial batch into the authoritative recovery state.
	if _, err := eng.Snapshot(); !errors.Is(err, ErrFailStopped) {
		t.Fatalf("snapshot after fail-stop: err = %v, want ErrFailStopped", err)
	}
	if err := eng.Err(); !errors.Is(err, ErrFailStopped) {
		t.Fatalf("Err() = %v, want ErrFailStopped", err)
	}
	if ack := eng.FlushWithAck(); ack.Started || ack.Detections != 0 {
		t.Fatalf("flush after fail-stop = %+v, want inert zero ack", ack)
	}
	if n := sink.Total(); n != 0 {
		t.Fatalf("fail-stopped engine emitted %d detections past the poison point", n)
	}
}

// TestIngestPresortedBatchNotCopied pins the monotone-producer fast path:
// an already time-ordered batch is read in place — the caller's slice is
// never reordered — while an unordered batch still round-trips through the
// engine's scratch sort without mutating the caller's slice either.
func TestIngestPresortedBatchNotCopied(t *testing.T) {
	eng, err := NewEngine(Config{Subs: []Subscription{
		{ID: "s", Motif: motif.MustPath(0, 1), Delta: 5},
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sorted := []temporal.Event{
		{From: 0, To: 1, T: 1, F: 1},
		{From: 0, To: 1, T: 2, F: 2},
		{From: 0, To: 1, T: 3, F: 3},
	}
	orig := append([]temporal.Event(nil), sorted...)
	if _, err := eng.Ingest(sorted); err != nil {
		t.Fatal(err)
	}
	unsorted := []temporal.Event{
		{From: 0, To: 1, T: 9, F: 9},
		{From: 0, To: 1, T: 7, F: 7},
		{From: 0, To: 1, T: 8, F: 8},
	}
	origU := append([]temporal.Event(nil), unsorted...)
	if _, err := eng.Ingest(unsorted); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if sorted[i] != orig[i] {
			t.Fatalf("presorted batch mutated at %d: %+v", i, sorted[i])
		}
	}
	for i := range origU {
		if unsorted[i] != origU[i] {
			t.Fatalf("unsorted batch mutated at %d: %+v", i, unsorted[i])
		}
	}
	if w, _ := eng.Watermark(); w != 9 {
		t.Fatalf("watermark = %d, want 9", w)
	}
}

// BenchmarkIngestBatchOrder demonstrates the sorted-batch fast path: the
// common monotone-producer case (batches already time-ordered) skips the
// per-batch copy + stable sort entirely. The subscription is deliberately
// cheap (2-node chain, tiny δ, prohibitive φ) so the sort dominates.
func BenchmarkIngestBatchOrder(b *testing.B) {
	const batchLen = 4096
	mk := func(shuffle bool) [][]temporal.Event {
		rng := rand.New(rand.NewSource(42))
		batches := make([][]temporal.Event, 64)
		t := int64(0)
		for i := range batches {
			batch := make([]temporal.Event, batchLen)
			for j := range batch {
				batch[j] = temporal.Event{From: temporal.NodeID(j % 64), To: temporal.NodeID(j%64 + 1), T: t, F: 1}
				if j%3 == 0 {
					t++
				}
			}
			if shuffle {
				rng.Shuffle(len(batch), func(a, c int) { batch[a], batch[c] = batch[c], batch[a] })
			}
			batches[i] = batch
		}
		return batches
	}
	for _, mode := range []struct {
		name    string
		shuffle bool
	}{{"presorted", false}, {"shuffled", true}} {
		batches := mk(mode.shuffle)
		span := int64(0)
		for _, batch := range batches {
			for _, e := range batch {
				if e.T+10 > span {
					span = e.T + 10
				}
			}
		}
		b.Run(mode.name, func(b *testing.B) {
			eng, err := NewEngine(Config{Subs: []Subscription{
				{ID: "s", Motif: motif.MustPath(0, 1), Delta: 2, Phi: math.MaxFloat64},
			}}, nil)
			if err != nil {
				b.Fatal(err)
			}
			scratch := make([]temporal.Event, batchLen)
			b.ResetTimer()
			for pass := 0; pass < b.N; pass++ {
				offset := int64(pass) * span
				for _, batch := range batches {
					copy(scratch, batch)
					for j := range scratch {
						scratch[j].T += offset
					}
					if _, err := eng.Ingest(scratch); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			total := float64(b.N) * float64(len(batches)*batchLen)
			b.ReportMetric(total/b.Elapsed().Seconds(), "events/sec")
		})
	}
}
