package stream

// The shared-evaluation planner (DESIGN.md §11). The engine's finalize
// path used to evaluate each subscription in isolation: one band graph
// built and one phase-P1 match walk run per subscription per round, O(subs
// × window) even when thousands of subscriptions watch the same motif
// shape. The planner replaces that with three levels of sharing:
//
//   - one snapshot per finalize round: a single arena-backed CSR graph
//     over the union extent of every due anchor band (all groups read the
//     same arena; each enumeration is narrowed to its own band by the
//     anchor-range restriction, which is exact as long as the graph covers
//     [band lo − δ, band hi + δ] — see core.EnumerateRange);
//   - one phase-P1 run per motif shape: structural matches depend only on
//     the shape, so the match list is collected once (fused-pruned at the
//     shape's largest due δ, a superset for every smaller δ) and fanned
//     out to every consumer through core.EnumerateMatchesRange;
//   - plan groups keyed by (shape, δ): members share identical band
//     bounds, so group bookkeeping is one hi computation per group.
//
// Per-subscription (δ, φ) semantics are untouched — phase P2 runs once per
// subscription with its own parameters — so the batch-equivalence oracle
// holds verbatim for subscriptions sharing a shape under different (δ, φ).

import (
	"fmt"
	"math"
	"strconv"
	"sync"

	"flowmotif/internal/core"
	"flowmotif/internal/match"
	"flowmotif/internal/obs"
	"flowmotif/internal/temporal"
)

// planKey identifies a plan group: subscriptions sharing a motif shape and
// a δ close identical anchor bands and are evaluated together.
type planKey struct {
	shape string // motif.ShapeKey()
	delta int64
}

// planGroup is the set of live subscriptions under one plan key, in
// subscription-add order (finalization order is deterministic with
// Workers <= 1).
type planGroup struct {
	key  planKey
	subs []*subState
	cost groupCostState // attribution account (cost.go)
}

// enterGroupLocked registers s with the engine: the flat subscription
// list, the δ retention bound, and its (shape, δ) plan group, created on
// first use. The caller holds mu (or the engine is under construction).
func (e *Engine) enterGroupLocked(s *subState) {
	e.subs = append(e.subs, s)
	if s.sub.Delta > e.maxDelta {
		e.maxDelta = s.sub.Delta
	}
	k := planKey{shape: s.sub.Motif.ShapeKey(), delta: s.sub.Delta}
	g := e.groupIdx[k]
	if g == nil {
		g = &planGroup{key: k}
		e.groupIdx[k] = g
		e.groups = append(e.groups, g)
	}
	g.subs = append(g.subs, s)
	e.attachCostLocked(s, g)
}

// leaveGroupLocked removes s from its plan group, dropping the group when
// it empties. The caller holds mu and removes s from e.subs itself.
func (e *Engine) leaveGroupLocked(s *subState) {
	k := planKey{shape: s.sub.Motif.ShapeKey(), delta: s.sub.Delta}
	g := e.groupIdx[k]
	if g == nil {
		return
	}
	for i, have := range g.subs {
		if have == s {
			g.subs = append(g.subs[:i], g.subs[i+1:]...)
			break
		}
	}
	if len(g.subs) == 0 {
		delete(e.groupIdx, k)
		for i, have := range e.groups {
			if have == g {
				e.groups = append(e.groups[:i], e.groups[i+1:]...)
				break
			}
		}
	}
}

// dueBand is one plan group's work for a finalize round: the members whose
// emitted bound trails the newly closed anchor bound hi, and the graph
// extent their bands need ([lo−δ, hi+δ], see core.EnumerateRange).
type dueBand struct {
	group    *planGroup
	subs     []*subState
	hi       int64
	gLo, gHi int64 // band graph extent
}

// finalize enumerates, for every subscription, the anchor band of newly
// closed windows (emitted, hi] and emits its maximal instances. A window
// anchored at ts is closed once it can gain no further event: future
// events have T >= watermark, so ts+δ <= watermark-1 suffices — or any ts
// when the stream has terminally ended (flush). The caller holds mu.
func (e *Engine) finalize(terminal bool) {
	w, ok := e.log.Watermark()
	if !ok {
		return
	}

	// Collect the round's due bands and the union snapshot extent.
	var due []dueBand
	snapLo, snapHi := int64(math.MaxInt64), int64(math.MinInt64)
	for _, g := range e.groups {
		hi := w
		if !terminal {
			hi = satSub(w, 1+g.key.delta)
		}
		var members []*subState
		lo := int64(math.MaxInt64)
		for _, s := range g.subs {
			if !s.primed || hi <= s.emitted {
				continue
			}
			members = append(members, s)
			if l := satAdd(s.emitted, 1); l < lo {
				lo = l
			}
		}
		if len(members) == 0 {
			continue
		}
		gLo, gHi := satSub(lo, g.key.delta), satAdd(hi, g.key.delta)
		due = append(due, dueBand{group: g, subs: members, hi: hi, gLo: gLo, gHi: gHi})
		if gLo < snapLo {
			snapLo = gLo
		}
		if gHi > snapHi {
			snapHi = gHi
		}
	}
	if len(due) == 0 {
		return
	}
	var tr roundTrace
	tr.begin(e)
	var rc roundCost
	rc.begin(e)
	if e.perSub {
		// Ablation / comparison baseline: the pre-planner per-subscription
		// path (one graph and one match walk per subscription). The fused
		// build+walk is not stage-attributable; it lands in fanout.
		for _, db := range due {
			rc.shape()
			for _, s := range db.subs {
				ct := rc.now()
				d0 := s.detections
				e.finalizeSubStandalone(s, w, db.hi)
				rc.sample(db.group, s, ct, s.detections-d0)
			}
		}
		tr.mark(&tr.fanout)
		tr.end(e, w, len(due))
		e.applyCostLocked(&rc)
		return
	}

	// One snapshot per round over the union extent of every due band;
	// every group reads the same arena-backed graph through its own anchor
	// range, and the arena recycles the previous round's buffers.
	snapSpan := e.startPlanSpan("finalize.snapshot", tr.span)
	ct := rc.now()
	snap, err := e.log.BuildGraphArena(&e.arena, snapLo, snapHi)
	if err != nil {
		// Unreachable: the log only holds validated events.
		panic(fmt.Sprintf("stream: round snapshot: %v", err))
	}
	rc.addSnap(ct)
	e.snapshotBuilds++
	if snapSpan != nil {
		snapSpan.Annotate(obs.L("events", strconv.Itoa(snap.NumEvents())))
	}
	snapSpan.End()
	tr.mark(&tr.snap)

	// Bucket the due groups by shape (first-seen order, so finalization
	// order is deterministic) and run phase P1 once per shape.
	type shapePlan struct {
		maxDelta int64
		bands    []int // indices into due
		nsubs    int
		lo, hi   int64 // union graph extent of the shape's bands
	}
	var order []string
	plans := map[string]*shapePlan{}
	for i := range due {
		k := due[i].group.key
		sp := plans[k.shape]
		if sp == nil {
			sp = &shapePlan{lo: due[i].gLo, hi: due[i].gHi}
			plans[k.shape] = sp
			order = append(order, k.shape)
		}
		sp.bands = append(sp.bands, i)
		sp.nsubs += len(due[i].subs)
		if k.delta > sp.maxDelta {
			sp.maxDelta = k.delta
		}
		if due[i].gLo < sp.lo {
			sp.lo = due[i].gLo
		}
		if due[i].gHi > sp.hi {
			sp.hi = due[i].gHi
		}
	}
	for _, shape := range order {
		sp := plans[shape]
		// One span per plan-group run: which shape, at what δ, for how many
		// consumers — the unit a slow round decomposes into.
		var planSpan *obs.TraceSpan
		if tr.span != nil {
			planSpan = e.startPlanSpan("finalize.plan", tr.span,
				obs.L("shape", shape),
				obs.L("delta", strconv.FormatInt(sp.maxDelta, 10)),
				obs.L("subs", strconv.Itoa(sp.nsubs)),
				obs.L("bands", strconv.Itoa(len(sp.bands))))
		}
		// A shape whose own extent is a sliver of the union snapshot (a
		// small-δ shape sharing the round with a much larger δ) would pay
		// the big window's phase-P1 cost for nothing: give it a private
		// band graph instead. The cutoff is measured in retained events
		// (two binary searches), and both paths are exact — the
		// equivalence oracle runs them all — so this is purely a cost
		// policy.
		rc.shape()
		g := snap
		if 4*len(e.log.Range(sp.lo, sp.hi)) < snap.NumEvents() {
			ct := rc.now()
			sg, err := e.log.BuildGraph(sp.lo, sp.hi)
			if err != nil {
				// Unreachable: the log only holds validated events.
				panic(fmt.Sprintf("stream: shape snapshot: %v", err))
			}
			rc.addShapeSnap(ct)
			e.snapshotBuilds++
			g = sg
			tr.mark(&tr.snap)
		}
		if sp.nsubs == 1 {
			// Single consumer: stream fused matches straight into phase P2
			// without materializing them (the pre-planner fast path). The
			// fused P1+P2 walk is not stage-separable; it lands in fanout.
			db := due[sp.bands[0]]
			e.matchRuns++
			fanSpan := e.startPlanSpan("finalize.fanout", planSpan)
			ct := rc.now()
			d0 := db.subs[0].detections
			e.enumerateBand(g, db.subs[0], nil, db.hi, w, false)
			rc.sample(db.group, db.subs[0], ct, db.subs[0].detections-d0)
			fanSpan.End()
			planSpan.End()
			tr.mark(&tr.fanout)
			continue
		}
		mo := due[sp.bands[0]].subs[0].sub.Motif
		matchSpan := e.startPlanSpan("finalize.match", planSpan)
		ct = rc.now()
		matches, err := core.CollectMatches(g, mo, sp.maxDelta)
		if err != nil {
			// Unreachable: δ was validated when the subscription was added.
			panic(fmt.Sprintf("stream: collect matches: %v", err))
		}
		rc.addMatch(ct, len(matches))
		e.matchRuns++
		e.matchesShared += int64(len(matches)) * int64(sp.nsubs-1)
		if matchSpan != nil {
			matchSpan.Annotate(obs.L("matches", strconv.Itoa(len(matches))))
		}
		matchSpan.End()
		tr.mark(&tr.match)
		fanSpan := e.startPlanSpan("finalize.fanout", planSpan)
		for _, bi := range sp.bands {
			db := due[bi]
			for _, s := range db.subs {
				ct := rc.now()
				d0 := s.detections
				e.enumerateBand(g, s, matches, db.hi, w, true)
				rc.sample(db.group, s, ct, s.detections-d0)
			}
		}
		fanSpan.End()
		planSpan.End()
		tr.mark(&tr.fanout)
	}
	tr.end(e, w, len(due))
	e.applyCostLocked(&rc)
}

// enumerateBand advances one subscription's emitted bound to hi,
// enumerating its newly closed anchor band (emitted, hi] over g and
// collecting detections into e.pending. With shared set the band replays
// the shape's collected match list (planner fan-out); otherwise it streams
// the fused phase-P1 walk itself. The caller holds mu.
func (e *Engine) enumerateBand(g *temporal.Graph, s *subState, matches []match.Match, hi, w int64, shared bool) {
	lo := satAdd(s.emitted, 1)
	p := core.Params{Delta: s.sub.Delta, Phi: s.sub.Phi, Workers: e.workers}
	// With Workers > 1 the visitor runs concurrently; bandMu guards the
	// pending list and counters (mu is held but not by the workers).
	var bandMu sync.Mutex
	visit := func(in *core.Instance) bool {
		d := e.detection(g, s, in, w)
		bandMu.Lock()
		s.detections++
		e.detections++
		e.pending = append(e.pending, d)
		bandMu.Unlock()
		return true
	}
	var err error
	if shared {
		_, err = core.EnumerateMatchesRange(g, s.sub.Motif, matches, p, lo, hi, visit)
	} else {
		_, err = core.EnumerateRange(g, s.sub.Motif, p, lo, hi, visit)
	}
	if err != nil {
		// Unreachable: params were validated when the subscription was added.
		panic(fmt.Sprintf("stream: enumerate: %v", err))
	}
	s.bands++
	e.bandsTotal++
	s.emitted = hi
}

// finalizeSubStandalone evaluates one subscription's band the pre-planner
// way: a fresh graph over exactly its band extent and its own fused
// phase-P1 walk. Kept behind Config.DisableSharedPlanner so benchmarks can
// measure the planner against the per-subscription rebuild and the oracle
// can cross-check both paths. The caller holds mu.
func (e *Engine) finalizeSubStandalone(s *subState, w, hi int64) {
	lo := satAdd(s.emitted, 1)
	// The band sub-graph needs the windows' events [lo, hi+δ] plus the
	// preceding δ for the maximality skip rule (core.EnumerateRange).
	g, err := e.log.BuildGraph(satSub(lo, s.sub.Delta), satAdd(hi, s.sub.Delta))
	if err != nil {
		// Unreachable: the log only holds validated events.
		panic(fmt.Sprintf("stream: band graph: %v", err))
	}
	e.snapshotBuilds++
	e.matchRuns++
	e.enumerateBand(g, s, nil, hi, w, false)
}
