// Package stream detects flow motifs online, as interaction events arrive,
// instead of over a frozen snapshot. It exploits the paper's key locality
// property (Kosyfaki et al., EDBT 2019, Definition 3.1): every instance of
// a motif with duration constraint δ is confined to a δ-window anchored at
// its first event. Once the stream watermark W (the largest timestamp seen)
// passes ts+δ, the window anchored at ts can never gain another event, so
// the engine can
//
//   - finalize windows in anchor order: each ingest advances a per-
//     subscription "emitted-through" anchor bound A to W-δ-1 and enumerates
//     only the newly closed anchor band (A, W-δ-1] via core.EnumerateRange,
//     over a snapshot restricted to (A-δ, W-1] — the frontier touched by
//     recent events — rather than re-running batch search;
//   - evict events older than A-δ from the retention log (temporal.
//     WindowLog), bounding memory by the event rate times max δ, not the
//     stream length.
//
// The emitted maximal instances are therefore exactly those the batch
// FindInstances reports on the full event log (see the equivalence oracle
// in stream_test.go); detections flow to a pluggable Sink as soon as their
// window closes.
//
// Engines serialize Ingest/Flush internally and are safe for concurrent
// use; cmd/flowmotifd serves one engine over HTTP (internal/server).
package stream

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"flowmotif/internal/core"
	"flowmotif/internal/motif"
	"flowmotif/internal/obs"
	"flowmotif/internal/temporal"
)

// Subscription asks the engine to detect one motif under one (δ, φ)
// setting. ID must be unique within an engine; it tags detections.
type Subscription struct {
	ID    string
	Motif *motif.Motif
	Delta int64   // duration constraint δ (>= 0)
	Phi   float64 // per-edge-set minimum flow φ (>= 0)
}

// Config parameterizes an Engine.
type Config struct {
	// Subs are the motif subscriptions; at least one is required.
	Subs []Subscription
	// Workers is the parallelism of per-band enumeration (<= 1 serial).
	// With Workers > 1 sinks must tolerate detections out of anchor order
	// (they are still each emitted exactly once).
	Workers int
	// Slack retains events this much longer than the algorithmic minimum
	// (max δ behind the finalization frontier), e.g. for debugging sinks
	// that want to look events up after the fact.
	Slack int64
	// DisableSharedPlanner reverts to the pre-planner per-subscription
	// evaluation (one band graph and one match walk per subscription per
	// finalize round) instead of the shared-evaluation planner of DESIGN.md
	// §11. Results are identical either way; the switch exists as the
	// benchmark baseline and for ablation.
	DisableSharedPlanner bool
	// Obs is the metrics registry the engine's stage and detection-lag
	// histograms register into; nil creates a private registry (readable
	// via Engine.Obs) unless DisableObs is set.
	Obs *obs.Registry
	// DisableObs turns engine instrumentation off entirely — no histogram
	// updates and no clock reads on the ingest path (the benchmark
	// overhead gate compares against this).
	DisableObs bool
	// Logger receives structured engine logs (currently slow-round
	// warnings); nil disables logging.
	Logger *slog.Logger
	// SlowRound, when positive, logs a warning with the stage breakdown
	// for any finalize round that takes longer than this (Logger set) and
	// retains the round's trace in the flight recorder (tracing on).
	SlowRound time.Duration
	// Tracer is the flight recorder every ingest batch's span tree records
	// into; nil creates a private tracer (readable via Engine.Tracer)
	// unless tracing is off. See DESIGN.md §13.
	Tracer *obs.Tracer
	// DisableTrace turns span creation off — no trace IDs, no span clock
	// reads — while keeping metrics; the tracing overhead gate compares
	// against this. DisableObs implies it.
	DisableTrace bool
	// DisableCostAttribution turns per-subscription cost attribution
	// (cost.go, DESIGN.md §14) off — no per-stage clock reads and no
	// SubCost/group-cost accounting — while keeping the rest of the
	// metrics; the attribution overhead gate compares against this.
	// DisableObs implies it.
	DisableCostAttribution bool
}

// Detection is one finalized maximal motif instance, self-contained (it
// embeds the matched events, not indices into some graph snapshot).
type Detection struct {
	Sub        string             `json:"sub"`
	Motif      string             `json:"motif"`
	Nodes      []temporal.NodeID  `json:"nodes"`
	Edges      [][]temporal.Point `json:"edges"` // events per motif edge, time-ordered
	EdgeFlows  []float64          `json:"edgeFlows"`
	Flow       float64            `json:"flow"`  // min over EdgeFlows
	Start      int64              `json:"start"` // anchor timestamp
	End        int64              `json:"end"`
	DetectedAt int64              `json:"detectedAt"` // watermark when the window closed
}

// Sink receives detections. Emit is called with a freshly allocated
// Detection that the sink may retain. The engine serializes Emit calls,
// in finalization order, outside its ingestion lock: a sink may query the
// engine (Stats, Watermark, Subscriptions) from within Emit, but must not
// call Ingest or Flush there (self-deadlock).
type Sink interface {
	Emit(d *Detection)
}

// ErrBehindFrontier is wrapped by Ingest errors for batches that reach
// behind the admissible stream frontier (the watermark, or further after
// a Flush); test with errors.Is.
var ErrBehindFrontier = errors.New("stream: batch behind the stream frontier")

// ErrFailStopped is wrapped by Ingest errors after the engine fail-stopped:
// a batch append failed partway through, so the retention log holds a
// prefix of a batch that was never finalized and further ingestion could
// only widen the divergence. Like the cluster WAL-poison path, the engine
// rejects all later ingests and flushes; recovery is a restart from the
// durable log/snapshot (or a fresh engine). Test with errors.Is.
var ErrFailStopped = errors.New("stream: engine fail-stopped after a partial batch append")

// SubStats reports per-subscription progress.
type SubStats struct {
	ID             string  `json:"id"`
	Motif          string  `json:"motif"`
	Shape          string  `json:"shape"` // canonical shape key (plan-group member)
	Delta          int64   `json:"delta"`
	Phi            float64 `json:"phi"`
	Detections     int64   `json:"detections"`
	Bands          int64   `json:"bands"`          // finalized anchor bands enumerated
	EmittedThrough int64   `json:"emittedThrough"` // anchors <= this are finalized
	// Cost is the subscription's attributed-cost account (DESIGN.md §14);
	// zero when attribution is off.
	Cost SubCost `json:"cost"`
}

// Stats reports engine progress.
type Stats struct {
	EventsIngested int64 `json:"eventsIngested"`
	EventsRetained int   `json:"eventsRetained"`
	EventsEvicted  int64 `json:"eventsEvicted"`
	Batches        int64 `json:"batches"`
	Watermark      int64 `json:"watermark"`
	Started        bool  `json:"started"` // at least one event ingested
	Detections     int64 `json:"detections"`
	// Shared-evaluation planner gauges (DESIGN.md §11). SnapshotReuse is
	// anchor bands enumerated per snapshot built — 1.0 means no sharing
	// (the pre-planner cost), N means one snapshot served N subscription
	// bands. MatchesShared counts structural matches served from a shared
	// per-shape list beyond their first consumer — work the pre-planner
	// engine would have recomputed.
	PlanGroups     int        `json:"planGroups"`
	SnapshotBuilds int64      `json:"snapshotBuilds"`
	SnapshotReuse  float64    `json:"snapshotReuse"`
	MatchRuns      int64      `json:"matchRuns"`
	MatchesShared  int64      `json:"matchesShared"`
	Subs           []SubStats `json:"subs"`
	// Cost is the engine-level attribution account and Groups the per-plan-
	// group breakdown (DESIGN.md §14); zero/absent when attribution is off.
	Cost   EngineCostStats  `json:"cost"`
	Groups []GroupCostStats `json:"groups,omitempty"`
}

type subState struct {
	sub        Subscription
	emitted    int64 // anchor bound A: anchors <= A finalized; valid once primed
	primed     bool
	detections int64
	bands      int64
	cost       subCostState // attribution account (cost.go)
}

// Engine is the streaming motif detector.
type Engine struct {
	mu      sync.Mutex // guards all engine state below
	log     *temporal.WindowLog
	sink    Sink
	workers int
	slack   int64
	subs    []*subState

	// Shared-evaluation planner state (planner.go): subscriptions grouped
	// by (shape, δ), the arena recycling snapshot buffers across finalize
	// rounds, and the sharing counters surfaced through Stats. perSub
	// reverts to the pre-planner per-subscription path (ablation).
	groups         []*planGroup
	groupIdx       map[planKey]*planGroup
	arena          temporal.GraphArena
	perSub         bool
	snapshotBuilds int64
	matchRuns      int64
	matchesShared  int64
	bandsTotal     int64

	minNextT   int64 // smallest admissible next timestamp
	maxDelta   int64 // largest subscription δ
	batches    int64
	detections int64
	failErr    error // fail-stop poison: set after a partial batch append

	// Instrumentation (obs.go). obsReg is the registry (nil when
	// Config.DisableObs); mx holds the engine's histograms; arrivedAt is
	// the wall-clock the in-flight Ingest/Flush entered at, read by
	// emitPending for the detection-lag histogram (serialized by
	// ingestMu).
	obsReg    *obs.Registry
	mx        *engineMetrics //flowmotif:obsgate
	logger    *slog.Logger   //flowmotif:obsgate
	slowRound time.Duration  //flowmotif:obsgate
	arrivedAt time.Time

	// Cost attribution (cost.go, DESIGN.md §14). costOn gates the per-stage
	// clock reads; attribNs/roundNs/costRounds are the engine-level
	// attributed-vs-measured account the oracle test compares.
	costOn     bool //flowmotif:obsgate
	attribNs   int64
	roundNs    int64
	costRounds int64

	// Tracing (DESIGN.md §13). tracer is immutable after construction
	// (nil: tracing off); curSpan is the in-flight call's root span,
	// parent of the finalize-round spans — set under mu just before
	// finalize, cleared by emitPending.
	tracer  *obs.Tracer
	curSpan *obs.TraceSpan

	scratch []temporal.Event // reused per-batch sort buffer
	pending []*Detection     // finalized this call, emitted after mu release

	// appendHook, when set (tests only), runs before the i-th event of a
	// batch is appended; an error simulates a mid-batch append failure.
	appendHook func(i int) error

	// ingestMu serializes whole Ingest/Flush calls including sink
	// emission, and is always acquired BEFORE mu (never the reverse).
	// Emission happens with mu released, so sinks can query the engine;
	// readers (Stats, Watermark, Subscriptions) take only mu.
	ingestMu sync.Mutex
}

// NewEngine builds an engine over the given subscriptions and sink (which
// may be nil to discard detections). An engine may start with no
// subscriptions — a cluster member awaiting placement — and gain them at
// runtime via AddSubscription.
func NewEngine(cfg Config, sink Sink) (*Engine, error) {
	if cfg.Slack < 0 {
		return nil, errors.New("stream: Slack must be non-negative")
	}
	e := &Engine{
		log:       temporal.NewWindowLog(),
		sink:      sink,
		workers:   cfg.Workers,
		slack:     cfg.Slack,
		perSub:    cfg.DisableSharedPlanner,
		groupIdx:  map[planKey]*planGroup{},
		minNextT:  math.MinInt64,
		logger:    cfg.Logger,
		slowRound: cfg.SlowRound,
	}
	if !cfg.DisableObs {
		e.obsReg = cfg.Obs
		if e.obsReg == nil {
			e.obsReg = obs.NewRegistry()
		}
		e.mx = newEngineMetrics(e.obsReg)
		e.costOn = !cfg.DisableCostAttribution
		if !cfg.DisableTrace {
			e.tracer = cfg.Tracer
			if e.tracer == nil {
				e.tracer = obs.NewTracer(0)
			}
		}
	}
	for i, s := range cfg.Subs {
		st, err := e.newSubState(s)
		if err != nil {
			return nil, fmt.Errorf("stream: subscription %d: %w", i, err)
		}
		e.enterGroupLocked(st)
	}
	return e, nil
}

// newSubState validates one subscription against the current set. The
// caller holds mu (or the engine is under construction).
func (e *Engine) newSubState(s Subscription) (*subState, error) {
	if s.Motif == nil {
		return nil, errors.New("nil motif")
	}
	if s.Delta < 0 || s.Phi < 0 {
		return nil, errors.New("Delta and Phi must be non-negative")
	}
	if s.ID == "" {
		s.ID = s.Motif.Name()
	}
	for _, have := range e.subs {
		if have.sub.ID == s.ID {
			return nil, fmt.Errorf("duplicate subscription id %q", s.ID)
		}
	}
	return &subState{sub: s}, nil
}

// Ack summarizes what one Ingest or Flush call did: how many events were
// applied, the watermark afterwards, and how many detections the call
// finalized. It is the engine-level acknowledgement the serving and
// cluster layers relay upstream (the replication pipeline's ack-watermark
// tracking rides on it).
type Ack struct {
	Ingested   int   `json:"ingested"`
	Watermark  int64 `json:"watermark"`
	Started    bool  `json:"started"`
	Detections int64 `json:"detections"`
	// Trace is the batch's trace ID in the flight recorder ("" with
	// tracing off): the key into /debug/traces for this batch's span tree.
	Trace string `json:"trace,omitempty"`
}

// Ingest appends a batch of events and finalizes every window the advanced
// watermark closes, emitting its maximal instances to the sink. The batch
// is sorted by timestamp internally; it must not reach behind the current
// watermark (the stream contract: events arrive in time order, batches may
// be internally unordered). Validation is all-or-nothing: on error no
// event of the batch is ingested. Returns the number of events ingested.
func (e *Engine) Ingest(events []temporal.Event) (int, error) {
	ack, err := e.IngestWithAck(events)
	return ack.Ingested, err
}

// IngestWithAck is Ingest returning the full acknowledgement — the new
// watermark and the detections this batch finalized — in one call, without
// the caller having to diff two Stats snapshots around the ingest (which
// would need external serialization to be meaningful).
func (e *Engine) IngestWithAck(events []temporal.Event) (Ack, error) {
	return e.IngestTraced(events, obs.SpanContext{})
}

// IngestTraced is IngestWithAck under a trace context: with tracing on,
// the call's span tree (engine.ingest → finalize.round → stage spans →
// finalize.emit) records into the flight recorder as a child of parent —
// the replication deliver span, via W3C traceparent over the wire — or as
// a new root trace when parent is zero. The ack carries the trace ID.
//
//flowmotif:hotpath
func (e *Engine) IngestTraced(events []temporal.Event, parent obs.SpanContext) (Ack, error) {
	if len(events) == 0 {
		e.mu.Lock()
		if err := e.failedLocked(); err != nil {
			e.mu.Unlock()
			return Ack{}, err
		}
		w, ok := e.log.Watermark()
		e.mu.Unlock()
		return Ack{Watermark: w, Started: ok}, nil
	}
	var arrived time.Time
	if e.mx != nil {
		// Captured before any lock wait: detection lag is arrival → emit,
		// including queueing behind in-flight ingests.
		arrived = time.Now()
	}
	// The root span likewise opens before the lock wait, so queueing
	// behind in-flight ingests is on the trace.
	var root *obs.TraceSpan
	if e.tracer != nil {
		root = e.tracer.StartSpan("engine.ingest", parent,
			obs.L("events", strconv.Itoa(len(events))))
	}
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.mu.Lock()
	if err := e.failedLocked(); err != nil {
		e.mu.Unlock()
		endSpanErr(root, err)
		return Ack{}, err
	}
	e.arrivedAt = arrived

	// The common monotone-producer case sends batches already in time
	// order; read them in place instead of copying and re-sorting (the
	// batch is only read — the log copies events on append). Unordered
	// batches take the sort path through the reusable scratch buffer.
	batch := events
	if !sort.SliceIsSorted(events, func(i, j int) bool { return events[i].T < events[j].T }) {
		e.scratch = append(e.scratch[:0], events...)
		batch = e.scratch
		sort.SliceStable(batch, func(i, j int) bool { return batch[i].T < batch[j].T })
	}
	if batch[0].T < e.minNextT {
		err := fmt.Errorf("%w: batch reaches back to t=%d, frontier is %d", ErrBehindFrontier, batch[0].T, e.minNextT)
		e.mu.Unlock()
		endSpanErr(root, err)
		return Ack{}, err
	}
	for i := range batch {
		ev := &batch[i]
		if ev.From < 0 || ev.To < 0 {
			err := fmt.Errorf("stream: batch event %d: negative node id", i)
			e.mu.Unlock()
			endSpanErr(root, err)
			return Ack{}, err
		}
		if ev.F <= 0 || math.IsNaN(ev.F) || math.IsInf(ev.F, 0) {
			err := fmt.Errorf("stream: batch event %d: flow must be positive and finite (got %v)", i, ev.F)
			e.mu.Unlock()
			endSpanErr(root, err)
			return Ack{}, err
		}
	}
	for i := range batch {
		if err := e.appendEvent(batch[i], i); err != nil {
			// The batch was validated above, so this is unreachable in
			// practice — but if it ever fires the log now holds an
			// unfinalized batch prefix. Fail-stop (poison) the engine so no
			// later call can build on the diverged state; the durable
			// recovery path (snapshot + WAL replay into a fresh engine) is
			// the way back.
			e.failErr = fmt.Errorf("append event %d of %d: %w", i, len(batch), err)
			err := fmt.Errorf("%w: %v", ErrFailStopped, e.failErr)
			e.mu.Unlock()
			endSpanErr(root, err)
			return Ack{Ingested: i}, err
		}
	}
	first := batch[0].T
	for _, s := range e.subs {
		if !s.primed {
			// No anchor can precede the first event ever seen.
			s.emitted = satSub(first, 1)
			s.primed = true
		}
	}
	w, _ := e.log.Watermark()
	e.minNextT = w
	e.batches++

	n := len(batch)
	e.curSpan = root
	e.finalize(false)
	e.evict()
	ack := Ack{Ingested: n, Watermark: w, Started: true, Detections: int64(len(e.pending)), Trace: root.Context().Trace}
	e.emitPending() // unlocks mu; ends and clears curSpan
	return ack, nil
}

// Flush finalizes every still-open window at the current watermark W.
// Flushing forecloses windows that could otherwise still have grown, so
// afterwards ingested events must be strictly newer than W plus the
// largest subscription δ: anything closer could have landed inside an
// already-emitted window, and accepting it would break the batch
// equivalence. A flush is therefore an end-of-stream marker (or a
// deliberate gap), not a peek at pending results.
func (e *Engine) Flush() {
	e.FlushWithAck()
}

// FlushWithAck is Flush returning the acknowledgement: the watermark the
// stream ended at and how many detections the flush finalized. On a
// fail-stopped engine the flush is an inert zero ack (the signature has no
// error); callers that must distinguish poisoned from empty check Err.
func (e *Engine) FlushWithAck() Ack {
	return e.FlushTraced(obs.SpanContext{})
}

// FlushTraced is FlushWithAck under a trace context (see IngestTraced).
//
//flowmotif:hotpath
func (e *Engine) FlushTraced(parent obs.SpanContext) Ack {
	var arrived time.Time
	if e.mx != nil {
		arrived = time.Now()
	}
	root := e.tracer.StartSpan("engine.flush", parent)
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.mu.Lock()
	w, ok := e.log.Watermark()
	if !ok || e.failErr != nil {
		// A fail-stopped engine must not foreclose windows over its
		// diverged log; the flush is a no-op (see ErrFailStopped).
		e.mu.Unlock()
		root.End()
		return Ack{}
	}
	e.arrivedAt = arrived
	e.curSpan = root
	e.finalize(true)
	if m := satAdd(w, e.maxDelta+1); m > e.minNextT {
		e.minNextT = m
	}
	e.evict()
	ack := Ack{Watermark: w, Started: true, Detections: int64(len(e.pending)), Trace: root.Context().Trace}
	e.emitPending() // unlocks mu; ends and clears curSpan
	return ack
}

// emitPending drains the detections finalized by the current call to the
// sink. It must be entered with both ingestMu and mu held; it releases mu
// before touching the sink, so Emit callbacks run outside the state lock
// (sinks may read engine state) while the surrounding ingestMu preserves
// finalization order across concurrent callers.
func (e *Engine) emitPending() {
	pend := e.pending
	e.pending = nil
	arrived := e.arrivedAt
	root := e.curSpan
	e.curSpan = nil
	e.mu.Unlock()
	if len(pend) == 0 {
		root.End()
		return
	}
	// The emit span is the sink drain — the last span of the batch's
	// trace; its end closes the trace. Only under a live root: paths with
	// no batch trace (AddSubscription catch-up) emit untraced.
	var es *obs.TraceSpan
	if root != nil {
		es = e.tracer.StartSpan("finalize.emit", root.Context(),
			obs.L("detections", strconv.Itoa(len(pend))))
	}
	sp := e.mx.emitHist().Start()
	if e.sink != nil {
		for _, d := range pend {
			e.sink.Emit(d)
		}
	}
	sp.End()
	es.End()
	if lagH := e.mx.lagHist(); lagH != nil && !arrived.IsZero() {
		// All of the batch's detections reach the sink in this one drain;
		// they share the batch's arrival → emit lag. The first observation
		// offers the batch's trace as the histogram exemplar.
		lag := time.Since(arrived).Seconds()
		lagH.ObserveExemplar(lag, root.Context().Trace)
		for i := 1; i < len(pend); i++ {
			lagH.Observe(lag)
		}
	}
	if root != nil {
		root.Annotate(obs.L("detections", strconv.Itoa(len(pend))))
	}
	root.End()
}

// endSpanErr finishes a span with the error recorded (nil-safe both ways).
func endSpanErr(s *obs.TraceSpan, err error) {
	if s != nil && err != nil {
		s.Annotate(obs.L("error", err.Error()))
	}
	s.End()
}

// failedLocked returns the wrapped fail-stop error when the engine is
// poisoned (nil otherwise). The caller holds mu. Every mutating entry
// point — ingest, flush, subscription add/remove — checks it, so no call
// can build on (or export) the diverged log.
func (e *Engine) failedLocked() error {
	if e.failErr == nil {
		return nil
	}
	return fmt.Errorf("%w: %v", ErrFailStopped, e.failErr)
}

// appendEvent appends one batch event to the retention log, routed through
// the test-only failure hook.
func (e *Engine) appendEvent(ev temporal.Event, i int) error {
	if e.appendHook != nil {
		if err := e.appendHook(i); err != nil {
			return err
		}
	}
	return e.log.Append(ev)
}

// detection converts a band-graph instance into a self-contained Detection.
func (e *Engine) detection(g *temporal.Graph, s *subState, in *core.Instance, watermark int64) *Detection {
	edges := make([][]temporal.Point, len(in.Arcs))
	for i, a := range in.Arcs {
		sp := in.Spans[i]
		edges[i] = append([]temporal.Point(nil), g.Series(a)[sp.Start:sp.End]...)
	}
	return &Detection{
		Sub:        s.sub.ID,
		Motif:      s.sub.Motif.Name(),
		Nodes:      append([]temporal.NodeID(nil), in.Nodes...),
		Edges:      edges,
		EdgeFlows:  append([]float64(nil), in.EdgeFlows...),
		Flow:       in.Flow,
		Start:      in.Start,
		End:        in.End,
		DetectedAt: watermark,
	}
}

// evict drops events no subscription can ever need again: everything
// older than min over subscriptions of A-δ, minus the configured slack.
func (e *Engine) evict() {
	keep := int64(math.MaxInt64)
	for _, s := range e.subs {
		if !s.primed {
			return
		}
		if edge := satSub(s.emitted, s.sub.Delta); edge < keep {
			keep = edge
		}
	}
	e.log.EvictBefore(satSub(keep, e.slack))
}

// Err reports the engine's fail-stop poison: nil while healthy, an error
// wrapping ErrFailStopped after a partial batch append. The serving and
// cluster layers check it so error-less entry points (Flush) still
// surface the broken engine instead of an empty success.
func (e *Engine) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.failedLocked()
}

// Obs returns the engine's metrics registry: the one from Config.Obs, or
// the private registry created when none was given. Nil when the engine
// was built with Config.DisableObs.
func (e *Engine) Obs() *obs.Registry {
	return e.obsReg
}

// Tracer returns the engine's flight recorder: the one from
// Config.Tracer, or the private tracer created when none was given. Nil
// when tracing is off (Config.DisableObs or Config.DisableTrace).
func (e *Engine) Tracer() *obs.Tracer {
	return e.tracer
}

// Watermark returns the largest ingested timestamp (ok false before the
// first event).
func (e *Engine) Watermark() (int64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.log.Watermark()
}

// Stats snapshots engine progress.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	w, ok := e.log.Watermark()
	st := Stats{
		EventsIngested: e.log.Appended(),
		EventsRetained: e.log.Len(),
		EventsEvicted:  e.log.Evicted(),
		Batches:        e.batches,
		Watermark:      w,
		Started:        ok,
		Detections:     e.detections,
		PlanGroups:     len(e.groups),
		SnapshotBuilds: e.snapshotBuilds,
		MatchRuns:      e.matchRuns,
		MatchesShared:  e.matchesShared,
	}
	if e.snapshotBuilds > 0 {
		st.SnapshotReuse = float64(e.bandsTotal) / float64(e.snapshotBuilds)
	}
	for _, s := range e.subs {
		st.Subs = append(st.Subs, SubStats{
			ID:             s.sub.ID,
			Motif:          s.sub.Motif.Name(),
			Shape:          s.sub.Motif.ShapeKey(),
			Delta:          s.sub.Delta,
			Phi:            s.sub.Phi,
			Detections:     s.detections,
			Bands:          s.bands,
			EmittedThrough: s.emitted,
		})
	}
	e.costStatsLocked(&st)
	return st
}

// Subscriptions returns the engine's subscriptions (IDs resolved).
func (e *Engine) Subscriptions() []Subscription {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Subscription, len(e.subs))
	for i, s := range e.subs {
		out[i] = s.sub
	}
	return out
}

func satAdd(a, b int64) int64 { return temporal.SatAdd(a, b) }

func satSub(a, b int64) int64 { return temporal.SatSub(a, b) }
