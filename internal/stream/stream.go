// Package stream detects flow motifs online, as interaction events arrive,
// instead of over a frozen snapshot. It exploits the paper's key locality
// property (Kosyfaki et al., EDBT 2019, Definition 3.1): every instance of
// a motif with duration constraint δ is confined to a δ-window anchored at
// its first event. Once the stream watermark W (the largest timestamp seen)
// passes ts+δ, the window anchored at ts can never gain another event, so
// the engine can
//
//   - finalize windows in anchor order: each ingest advances a per-
//     subscription "emitted-through" anchor bound A to W-δ-1 and enumerates
//     only the newly closed anchor band (A, W-δ-1] via core.EnumerateRange,
//     over a snapshot restricted to (A-δ, W-1] — the frontier touched by
//     recent events — rather than re-running batch search;
//   - evict events older than A-δ from the retention log (temporal.
//     WindowLog), bounding memory by the event rate times max δ, not the
//     stream length.
//
// The emitted maximal instances are therefore exactly those the batch
// FindInstances reports on the full event log (see the equivalence oracle
// in stream_test.go); detections flow to a pluggable Sink as soon as their
// window closes.
//
// Engines serialize Ingest/Flush internally and are safe for concurrent
// use; cmd/flowmotifd serves one engine over HTTP (internal/server).
package stream

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"flowmotif/internal/core"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// Subscription asks the engine to detect one motif under one (δ, φ)
// setting. ID must be unique within an engine; it tags detections.
type Subscription struct {
	ID    string
	Motif *motif.Motif
	Delta int64   // duration constraint δ (>= 0)
	Phi   float64 // per-edge-set minimum flow φ (>= 0)
}

// Config parameterizes an Engine.
type Config struct {
	// Subs are the motif subscriptions; at least one is required.
	Subs []Subscription
	// Workers is the parallelism of per-band enumeration (<= 1 serial).
	// With Workers > 1 sinks must tolerate detections out of anchor order
	// (they are still each emitted exactly once).
	Workers int
	// Slack retains events this much longer than the algorithmic minimum
	// (max δ behind the finalization frontier), e.g. for debugging sinks
	// that want to look events up after the fact.
	Slack int64
}

// Detection is one finalized maximal motif instance, self-contained (it
// embeds the matched events, not indices into some graph snapshot).
type Detection struct {
	Sub        string             `json:"sub"`
	Motif      string             `json:"motif"`
	Nodes      []temporal.NodeID  `json:"nodes"`
	Edges      [][]temporal.Point `json:"edges"` // events per motif edge, time-ordered
	EdgeFlows  []float64          `json:"edgeFlows"`
	Flow       float64            `json:"flow"`  // min over EdgeFlows
	Start      int64              `json:"start"` // anchor timestamp
	End        int64              `json:"end"`
	DetectedAt int64              `json:"detectedAt"` // watermark when the window closed
}

// Sink receives detections. Emit is called with a freshly allocated
// Detection that the sink may retain. The engine serializes Emit calls,
// in finalization order, outside its ingestion lock: a sink may query the
// engine (Stats, Watermark, Subscriptions) from within Emit, but must not
// call Ingest or Flush there (self-deadlock).
type Sink interface {
	Emit(d *Detection)
}

// ErrBehindFrontier is wrapped by Ingest errors for batches that reach
// behind the admissible stream frontier (the watermark, or further after
// a Flush); test with errors.Is.
var ErrBehindFrontier = errors.New("stream: batch behind the stream frontier")

// SubStats reports per-subscription progress.
type SubStats struct {
	ID             string  `json:"id"`
	Motif          string  `json:"motif"`
	Delta          int64   `json:"delta"`
	Phi            float64 `json:"phi"`
	Detections     int64   `json:"detections"`
	Bands          int64   `json:"bands"`          // finalized anchor bands enumerated
	EmittedThrough int64   `json:"emittedThrough"` // anchors <= this are finalized
}

// Stats reports engine progress.
type Stats struct {
	EventsIngested int64      `json:"eventsIngested"`
	EventsRetained int        `json:"eventsRetained"`
	EventsEvicted  int64      `json:"eventsEvicted"`
	Batches        int64      `json:"batches"`
	Watermark      int64      `json:"watermark"`
	Started        bool       `json:"started"` // at least one event ingested
	Detections     int64      `json:"detections"`
	Subs           []SubStats `json:"subs"`
}

type subState struct {
	sub        Subscription
	emitted    int64 // anchor bound A: anchors <= A finalized; valid once primed
	primed     bool
	detections int64
	bands      int64
}

// Engine is the streaming motif detector.
type Engine struct {
	mu      sync.Mutex // guards all engine state below
	log     *temporal.WindowLog
	sink    Sink
	workers int
	slack   int64
	subs    []*subState

	minNextT   int64 // smallest admissible next timestamp
	maxDelta   int64 // largest subscription δ
	batches    int64
	detections int64

	scratch []temporal.Event // reused per-batch sort buffer
	pending []*Detection     // finalized this call, emitted after mu release

	// ingestMu serializes whole Ingest/Flush calls including sink
	// emission, and is always acquired BEFORE mu (never the reverse).
	// Emission happens with mu released, so sinks can query the engine;
	// readers (Stats, Watermark, Subscriptions) take only mu.
	ingestMu sync.Mutex
}

// NewEngine builds an engine over the given subscriptions and sink (which
// may be nil to discard detections). An engine may start with no
// subscriptions — a cluster member awaiting placement — and gain them at
// runtime via AddSubscription.
func NewEngine(cfg Config, sink Sink) (*Engine, error) {
	if cfg.Slack < 0 {
		return nil, errors.New("stream: Slack must be non-negative")
	}
	e := &Engine{
		log:      temporal.NewWindowLog(),
		sink:     sink,
		workers:  cfg.Workers,
		slack:    cfg.Slack,
		minNextT: math.MinInt64,
	}
	for i, s := range cfg.Subs {
		st, err := e.newSubState(s)
		if err != nil {
			return nil, fmt.Errorf("stream: subscription %d: %w", i, err)
		}
		e.subs = append(e.subs, st)
		if st.sub.Delta > e.maxDelta {
			e.maxDelta = st.sub.Delta
		}
	}
	return e, nil
}

// newSubState validates one subscription against the current set. The
// caller holds mu (or the engine is under construction).
func (e *Engine) newSubState(s Subscription) (*subState, error) {
	if s.Motif == nil {
		return nil, errors.New("nil motif")
	}
	if s.Delta < 0 || s.Phi < 0 {
		return nil, errors.New("Delta and Phi must be non-negative")
	}
	if s.ID == "" {
		s.ID = s.Motif.Name()
	}
	for _, have := range e.subs {
		if have.sub.ID == s.ID {
			return nil, fmt.Errorf("duplicate subscription id %q", s.ID)
		}
	}
	return &subState{sub: s}, nil
}

// Ack summarizes what one Ingest or Flush call did: how many events were
// applied, the watermark afterwards, and how many detections the call
// finalized. It is the engine-level acknowledgement the serving and
// cluster layers relay upstream (the replication pipeline's ack-watermark
// tracking rides on it).
type Ack struct {
	Ingested   int   `json:"ingested"`
	Watermark  int64 `json:"watermark"`
	Started    bool  `json:"started"`
	Detections int64 `json:"detections"`
}

// Ingest appends a batch of events and finalizes every window the advanced
// watermark closes, emitting its maximal instances to the sink. The batch
// is sorted by timestamp internally; it must not reach behind the current
// watermark (the stream contract: events arrive in time order, batches may
// be internally unordered). Validation is all-or-nothing: on error no
// event of the batch is ingested. Returns the number of events ingested.
func (e *Engine) Ingest(events []temporal.Event) (int, error) {
	ack, err := e.IngestWithAck(events)
	return ack.Ingested, err
}

// IngestWithAck is Ingest returning the full acknowledgement — the new
// watermark and the detections this batch finalized — in one call, without
// the caller having to diff two Stats snapshots around the ingest (which
// would need external serialization to be meaningful).
func (e *Engine) IngestWithAck(events []temporal.Event) (Ack, error) {
	if len(events) == 0 {
		e.mu.Lock()
		w, ok := e.log.Watermark()
		e.mu.Unlock()
		return Ack{Watermark: w, Started: ok}, nil
	}
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.mu.Lock()

	e.scratch = append(e.scratch[:0], events...)
	batch := e.scratch
	sort.SliceStable(batch, func(i, j int) bool { return batch[i].T < batch[j].T })
	if batch[0].T < e.minNextT {
		err := fmt.Errorf("%w: batch reaches back to t=%d, frontier is %d", ErrBehindFrontier, batch[0].T, e.minNextT)
		e.mu.Unlock()
		return Ack{}, err
	}
	for i := range batch {
		ev := &batch[i]
		if ev.From < 0 || ev.To < 0 {
			e.mu.Unlock()
			return Ack{}, fmt.Errorf("stream: batch event %d: negative node id", i)
		}
		if ev.F <= 0 || math.IsNaN(ev.F) || math.IsInf(ev.F, 0) {
			e.mu.Unlock()
			return Ack{}, fmt.Errorf("stream: batch event %d: flow must be positive and finite (got %v)", i, ev.F)
		}
	}
	for i := range batch {
		if err := e.log.Append(batch[i]); err != nil {
			// Unreachable: the batch was validated above.
			e.mu.Unlock()
			return Ack{Ingested: i}, fmt.Errorf("stream: append: %w", err)
		}
	}
	first := batch[0].T
	for _, s := range e.subs {
		if !s.primed {
			// No anchor can precede the first event ever seen.
			s.emitted = satSub(first, 1)
			s.primed = true
		}
	}
	w, _ := e.log.Watermark()
	e.minNextT = w
	e.batches++

	n := len(batch)
	e.finalize(false)
	e.evict()
	ack := Ack{Ingested: n, Watermark: w, Started: true, Detections: int64(len(e.pending))}
	e.emitPending() // unlocks mu
	return ack, nil
}

// Flush finalizes every still-open window at the current watermark W.
// Flushing forecloses windows that could otherwise still have grown, so
// afterwards ingested events must be strictly newer than W plus the
// largest subscription δ: anything closer could have landed inside an
// already-emitted window, and accepting it would break the batch
// equivalence. A flush is therefore an end-of-stream marker (or a
// deliberate gap), not a peek at pending results.
func (e *Engine) Flush() {
	e.FlushWithAck()
}

// FlushWithAck is Flush returning the acknowledgement: the watermark the
// stream ended at and how many detections the flush finalized.
func (e *Engine) FlushWithAck() Ack {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.mu.Lock()
	w, ok := e.log.Watermark()
	if !ok {
		e.mu.Unlock()
		return Ack{}
	}
	e.finalize(true)
	if m := satAdd(w, e.maxDelta+1); m > e.minNextT {
		e.minNextT = m
	}
	e.evict()
	ack := Ack{Watermark: w, Started: true, Detections: int64(len(e.pending))}
	e.emitPending() // unlocks mu
	return ack
}

// emitPending drains the detections finalized by the current call to the
// sink. It must be entered with both ingestMu and mu held; it releases mu
// before touching the sink, so Emit callbacks run outside the state lock
// (sinks may read engine state) while the surrounding ingestMu preserves
// finalization order across concurrent callers.
func (e *Engine) emitPending() {
	pend := e.pending
	e.pending = nil
	e.mu.Unlock()
	if e.sink != nil {
		for _, d := range pend {
			e.sink.Emit(d)
		}
	}
}

// finalize enumerates, for every subscription, the anchor band of newly
// closed windows (A, hi] and emits its maximal instances. A window
// anchored at ts is closed once it can gain no further event: future
// events have T >= watermark, so ts+δ <= watermark-1 suffices — or any ts
// when the stream has terminally ended (flush).
func (e *Engine) finalize(terminal bool) {
	w, _ := e.log.Watermark()
	for _, s := range e.subs {
		e.finalizeSub(s, w, terminal)
	}
}

// finalizeSub advances one subscription's emitted bound to the newest
// closed anchor at watermark w, collecting detections into e.pending. The
// caller holds mu.
func (e *Engine) finalizeSub(s *subState, w int64, terminal bool) {
	hi := w
	if !terminal {
		hi = satSub(w, 1+s.sub.Delta)
	}
	if !s.primed || hi <= s.emitted {
		return
	}
	lo := satAdd(s.emitted, 1)
	// The band sub-graph needs the windows' events [lo, hi+δ] plus the
	// preceding δ for the maximality skip rule (core.EnumerateRange).
	g, err := e.log.BuildGraph(satSub(lo, s.sub.Delta), satAdd(hi, s.sub.Delta))
	if err != nil {
		// Unreachable: the log only holds validated events.
		panic(fmt.Sprintf("stream: band graph: %v", err))
	}
	p := core.Params{Delta: s.sub.Delta, Phi: s.sub.Phi, Workers: e.workers}
	// With Workers > 1 the visitor runs concurrently; bandMu guards the
	// pending list and counters (mu is held but not by the workers).
	var bandMu sync.Mutex
	_, err = core.EnumerateRange(g, s.sub.Motif, p, lo, hi, func(in *core.Instance) bool {
		d := e.detection(g, s, in, w)
		bandMu.Lock()
		s.detections++
		e.detections++
		e.pending = append(e.pending, d)
		bandMu.Unlock()
		return true
	})
	if err != nil {
		// Unreachable: params were validated when the subscription was added.
		panic(fmt.Sprintf("stream: enumerate: %v", err))
	}
	s.bands++
	s.emitted = hi
}

// detection converts a band-graph instance into a self-contained Detection.
func (e *Engine) detection(g *temporal.Graph, s *subState, in *core.Instance, watermark int64) *Detection {
	edges := make([][]temporal.Point, len(in.Arcs))
	for i, a := range in.Arcs {
		sp := in.Spans[i]
		edges[i] = append([]temporal.Point(nil), g.Series(a)[sp.Start:sp.End]...)
	}
	return &Detection{
		Sub:        s.sub.ID,
		Motif:      s.sub.Motif.Name(),
		Nodes:      append([]temporal.NodeID(nil), in.Nodes...),
		Edges:      edges,
		EdgeFlows:  append([]float64(nil), in.EdgeFlows...),
		Flow:       in.Flow,
		Start:      in.Start,
		End:        in.End,
		DetectedAt: watermark,
	}
}

// evict drops events no subscription can ever need again: everything
// older than min over subscriptions of A-δ, minus the configured slack.
func (e *Engine) evict() {
	keep := int64(math.MaxInt64)
	for _, s := range e.subs {
		if !s.primed {
			return
		}
		if edge := satSub(s.emitted, s.sub.Delta); edge < keep {
			keep = edge
		}
	}
	e.log.EvictBefore(satSub(keep, e.slack))
}

// Watermark returns the largest ingested timestamp (ok false before the
// first event).
func (e *Engine) Watermark() (int64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.log.Watermark()
}

// Stats snapshots engine progress.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	w, ok := e.log.Watermark()
	st := Stats{
		EventsIngested: e.log.Appended(),
		EventsRetained: e.log.Len(),
		EventsEvicted:  e.log.Evicted(),
		Batches:        e.batches,
		Watermark:      w,
		Started:        ok,
		Detections:     e.detections,
	}
	for _, s := range e.subs {
		st.Subs = append(st.Subs, SubStats{
			ID:             s.sub.ID,
			Motif:          s.sub.Motif.Name(),
			Delta:          s.sub.Delta,
			Phi:            s.sub.Phi,
			Detections:     s.detections,
			Bands:          s.bands,
			EmittedThrough: s.emitted,
		})
	}
	return st
}

// Subscriptions returns the engine's subscriptions (IDs resolved).
func (e *Engine) Subscriptions() []Subscription {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Subscription, len(e.subs))
	for i, s := range e.subs {
		out[i] = s.sub
	}
	return out
}

func satAdd(a, b int64) int64 { return temporal.SatAdd(a, b) }

func satSub(a, b int64) int64 { return temporal.SatSub(a, b) }
