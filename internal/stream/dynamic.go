package stream

import (
	"errors"
	"fmt"
	"math"
	"time"

	"flowmotif/internal/temporal"
)

// AddOptions parameterizes a runtime AddSubscription, carrying the handoff
// state when the subscription is moving from another engine fed by the
// same broadcast stream (internal/cluster re-placement).
type AddOptions struct {
	// Catchup is older stream history this engine's retention log no
	// longer holds (or, on a fresh member, never saw): time-ordered events
	// of the same stream, covering everything from the subscription's
	// needed horizon (Emitted+1−δ) up to where the engine's own retained
	// suffix begins. Events at or after the engine's oldest retained
	// timestamp are duplicates of retained ones and are dropped; the rest
	// are spliced in front of the log (temporal.WindowLog.Prepend).
	Catchup []temporal.Event
	// Emitted primes the subscription's finalization bound: anchors at or
	// before Emitted are treated as already finalized (and emitted)
	// elsewhere. Only honoured with Primed set.
	Emitted int64
	// Primed marks Emitted as valid. An unprimed add onto a started engine
	// subscribes "from now on": the bound primes at the current watermark,
	// so only windows anchored after it are ever reported.
	Primed bool
}

// AddSubscription registers a subscription at runtime. With zero AddOptions
// on a started engine the subscription observes the stream from the
// current watermark onward; with handoff state (Catchup/Emitted/Primed) it
// resumes exactly where it left off on the engine it moved from, and any
// bands the move left closed-but-unenumerated are finalized immediately
// (their detections reach the sink before AddSubscription returns).
// Validation is all-or-nothing: on error the engine is unchanged.
func (e *Engine) AddSubscription(sub Subscription, opts AddOptions) error {
	var arrived time.Time
	if e.mx != nil {
		arrived = time.Now()
	}
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.mu.Lock()
	if err := e.failedLocked(); err != nil {
		// A fail-stopped engine must not finalize bands over its diverged
		// log on behalf of the newcomer (see ErrFailStopped).
		e.mu.Unlock()
		return fmt.Errorf("stream: add subscription: %w", err)
	}
	// The catch-up finalize below drains through emitPending; its
	// detections' lag is measured from this call's arrival.
	e.arrivedAt = arrived

	s, err := e.newSubState(sub)
	if err != nil {
		e.mu.Unlock()
		return fmt.Errorf("stream: add subscription: %w", err)
	}
	if n, err := e.log.Prepend(opts.Catchup); err != nil {
		e.mu.Unlock()
		return fmt.Errorf("stream: add subscription %q: catchup: %w", s.sub.ID, err)
	} else if n > 0 {
		// The splice may have established the stream frontier on a log that
		// had never seen an event: sync the admissibility bound and prime
		// any subscription that predates the (now known) start of history.
		w, _ := e.log.Watermark()
		if w > e.minNextT {
			e.minNextT = w
		}
		first := opts.Catchup[0].T
		for _, have := range e.subs {
			if !have.primed {
				have.emitted = satSub(first, 1)
				have.primed = true
			}
		}
	}
	switch {
	case opts.Primed:
		s.emitted = opts.Emitted
		s.primed = true
	default:
		if w, ok := e.log.Watermark(); ok {
			s.emitted = w
			s.primed = true
		}
	}
	e.enterGroupLocked(s)
	// Finalize any bands the handoff left closed-but-unenumerated. Every
	// other subscription's emitted bound already sits at the current
	// watermark's closed-band frontier, so a full planner round no-ops for
	// them and evaluates exactly the new subscription — sharing its
	// shape-mates' plan group from the next ingest onward.
	e.finalize(false)
	e.evict()
	e.emitPending() // unlocks mu
	return nil
}

// RemovedSub is the handoff state of a removed subscription: everything
// another engine fed by the same broadcast stream needs to resume it via
// AddSubscription without losing or duplicating a single instance.
type RemovedSub struct {
	Sub     Subscription
	Emitted int64
	Primed  bool
	// Detections and Bands are the lifetime counters at removal time
	// (informational).
	Detections int64
	Bands      int64
	// Events are the retained events the subscription still needed — the
	// open windows' frontier (Emitted+1−δ onward). They become the Catchup
	// of the receiving engine's AddOptions.
	Events []temporal.Event
}

// ErrUnknownSubscription is returned by RemoveSubscription for ids the
// engine does not serve; test with errors.Is.
var ErrUnknownSubscription = errors.New("stream: unknown subscription")

// RemoveSubscription unregisters a subscription at runtime and returns its
// handoff state. Events only the removed subscription still needed are
// evicted before returning, so dropping a long-δ subscription releases its
// retention immediately.
func (e *Engine) RemoveSubscription(id string) (RemovedSub, error) {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.failedLocked(); err != nil {
		// The handoff would export events from the diverged log as the
		// receiver's catch-up, re-infecting a healthy engine.
		return RemovedSub{}, fmt.Errorf("stream: remove subscription: %w", err)
	}
	idx := -1
	for i, s := range e.subs {
		if s.sub.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return RemovedSub{}, fmt.Errorf("%w: %q", ErrUnknownSubscription, id)
	}
	s := e.subs[idx]
	out := RemovedSub{
		Sub:        s.sub,
		Emitted:    s.emitted,
		Primed:     s.primed,
		Detections: s.detections,
		Bands:      s.bands,
	}
	if s.primed {
		need := satSub(satAdd(s.emitted, 1), s.sub.Delta)
		out.Events = append([]temporal.Event(nil), e.log.Range(need, math.MaxInt64)...)
	}
	e.subs = append(e.subs[:idx], e.subs[idx+1:]...)
	e.leaveGroupLocked(s)
	e.maxDelta = 0
	for _, rest := range e.subs {
		if rest.sub.Delta > e.maxDelta {
			e.maxDelta = rest.sub.Delta
		}
	}
	e.evict()
	return out, nil
}
