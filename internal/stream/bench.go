package stream

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"flowmotif/internal/gen"
	"flowmotif/internal/motif"
	"flowmotif/internal/obs"
	"flowmotif/internal/temporal"
)

// BenchConfig parameterizes RunBench, the many-subscription streaming
// ingest benchmark behind `experiments -bench-stream` (BENCH_stream.json)
// and the CI speedup gate. Zero fields take the defaults noted inline.
type BenchConfig struct {
	// SubCounts are the subscription counts swept (default 1, 10, 100, 1000).
	SubCounts []int
	// Events is the stream length for counts up to 100; the 1000-sub rows
	// use Events/5 to keep the per-subscription baseline bounded (default
	// 30000).
	Events int
	// Nodes is the synthetic network's user count (default 200).
	Nodes int
	// Batch is the ingest batch size (default 2048).
	Batch int
	// Delta and Phi are the base subscription parameters (defaults 600, 2);
	// φ varies per subscription so same-shape subscriptions are genuinely
	// distinct (δ, φ) consumers.
	Delta int64
	Phi   float64
	Seed  int64
}

func (c BenchConfig) withDefaults() BenchConfig {
	if len(c.SubCounts) == 0 {
		c.SubCounts = []int{1, 10, 100, 1000}
	}
	if c.Events == 0 {
		c.Events = 30000
	}
	if c.Nodes == 0 {
		c.Nodes = 200
	}
	if c.Batch == 0 {
		c.Batch = 2048
	}
	if c.Delta == 0 {
		c.Delta = 600
	}
	if c.Phi == 0 {
		c.Phi = 2
	}
	if c.Seed == 0 {
		c.Seed = 2019
	}
	return c
}

// BenchRow is one measured configuration: a subscription count under a
// shape mix ("shared": every subscription watches one motif shape;
// "distinct": subscriptions cycle through the ten-shape catalog) and a
// planner ("shared": the plan-group evaluator; "per-sub": the pre-refactor
// per-subscription rebuild, Config.DisableSharedPlanner).
type BenchRow struct {
	Subs           int     `json:"subs"`
	Shapes         string  `json:"shapes"`
	Planner        string  `json:"planner"`
	Events         int     `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Detections     int64   `json:"detections"`
	SnapshotBuilds int64   `json:"snapshot_builds"`
	SnapshotReuse  float64 `json:"snapshot_reuse"`
	MatchesShared  int64   `json:"matches_shared"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	// Stages are the per-finalize-round stage latency quantiles (seconds)
	// from the engine's flowmotif_finalize_stage_seconds histograms, and
	// DetectionLag the ingest-to-emit quantiles — where a row's wall-clock
	// actually went.
	Stages       map[string]obs.Quantiles `json:"stages,omitempty"`
	DetectionLag *obs.Quantiles           `json:"detection_lag,omitempty"`
}

// BenchReport is the JSON shape of BENCH_stream.json.
type BenchReport struct {
	GeneratedAt string      `json:"generated_at"`
	Config      BenchConfig `json:"config"`
	Rows        []BenchRow  `json:"rows"`
	// SharedSpeedup maps "<subs>" to the shared-planner / per-sub-baseline
	// throughput ratio for shared-shape subscriptions — the refactor's
	// headline number (the acceptance gate reads the "100" entry).
	SharedSpeedup map[string]float64 `json:"shared_speedup"`
	// ObsOverhead is the fractional ingest slowdown of metric collection:
	// (best obs-on elapsed − best obs-off elapsed) / best obs-off elapsed
	// at 100 shared-shape subscriptions, best of ObsOverheadRuns runs each,
	// measured in the same process (the CI gate keeps it under 5%). Can be
	// slightly negative on a noisy machine.
	ObsOverhead     float64 `json:"obs_overhead"`
	ObsOverheadRuns int     `json:"obs_overhead_runs"`
	// TraceOverhead is the fractional ingest slowdown of span recording
	// (flight-recorder tracing on vs Config.DisableTrace, metrics on in
	// both), measured the same interleaved best-of-N way — the CI gate
	// keeps it under 5%.
	TraceOverhead     float64 `json:"trace_overhead"`
	TraceOverheadRuns int     `json:"trace_overhead_runs"`
	// AttribOverhead is the fractional ingest slowdown of per-subscription
	// cost attribution (on vs Config.DisableCostAttribution, metrics on and
	// tracing off in both), measured the same interleaved best-of-N way —
	// the CI gate keeps it under 5%.
	AttribOverhead     float64 `json:"attrib_overhead"`
	AttribOverheadRuns int     `json:"attrib_overhead_runs"`
	// Wire compares single-member ingest throughput over the JSON HTTP
	// transport against the binary wire protocol (DESIGN.md §16) — same
	// event stream, same batch size, same process, interleaved best-of-N
	// runs, so the ratio is machine-independent. Populated by the server
	// package (internal/server.RunWireBench): the transport stack lives
	// above this package, so the report only carries the numbers.
	Wire *WireBenchResult `json:"wire,omitempty"`
}

// WireBenchResult is the BenchReport.Wire payload: the JSON-vs-binary
// ingest transport comparison. The CI gate reads Speedup
// (-bench-wire-min-speedup).
type WireBenchResult struct {
	BatchSize        int     `json:"batch_size"`
	Events           int     `json:"events"`
	Runs             int     `json:"runs"`
	JSONEventsPerSec float64 `json:"json_events_per_sec"`
	WireEventsPerSec float64 `json:"wire_events_per_sec"`
	Speedup          float64 `json:"speedup"`
}

// BenchSubs builds n distinct benchmark subscriptions: all on one shape
// (shared — the triangle M(3,3)) or cycling through the ten-shape catalog
// (distinct), with φ varied so same-shape subscriptions remain distinct
// (δ, φ) consumers. Exported so the root go-bench
// (BenchmarkStreamIngestManySubs) measures exactly the mix RunBench
// reports in BENCH_stream.json.
func BenchSubs(n int, shared bool, delta int64, phi float64) []Subscription {
	catalog := motif.Catalog()
	subs := make([]Subscription, n)
	for i := range subs {
		mo := catalog[1] // the triangle M(3,3)
		if !shared {
			mo = catalog[i%len(catalog)]
		}
		subs[i] = Subscription{
			ID:    fmt.Sprintf("s%d", i),
			Motif: mo,
			Delta: delta,
			Phi:   phi + float64(i%4),
		}
	}
	return subs
}

// RunBench measures many-subscription streaming ingest throughput across
// subscription counts, shape mixes, and both evaluation planners, on a
// synthetic bitcoin-like stream. The per-sub baseline is skipped above 100
// subscriptions (it is linear in the subscription count and would dominate
// the run without adding information beyond the 100-sub ratio).
func RunBench(cfg BenchConfig) (*BenchReport, error) {
	cfg = cfg.withDefaults()
	evs, err := gen.Bitcoin(gen.BitcoinConfig{
		Nodes:    cfg.Nodes,
		SeedTxns: cfg.Events / 6,
		Duration: 30000,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	if len(evs) > cfg.Events {
		evs = evs[:cfg.Events]
	}
	rep := &BenchReport{
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		Config:        cfg,
		SharedSpeedup: map[string]float64{},
	}
	type key struct {
		subs    int
		shapes  string
		planner string
	}
	perf := map[key]float64{}
	for _, n := range cfg.SubCounts {
		events := evs
		if n > 100 && len(events) > cfg.Events/5 {
			events = events[:cfg.Events/5]
		}
		for _, shapes := range []string{"shared", "distinct"} {
			for _, planner := range []string{"shared", "per-sub"} {
				if planner == "per-sub" && n > 100 {
					continue
				}
				row, err := runBenchRow(n, shapes, planner, events, cfg)
				if err != nil {
					return nil, err
				}
				rep.Rows = append(rep.Rows, row)
				perf[key{n, shapes, planner}] = row.EventsPerSec
			}
		}
	}
	for _, n := range cfg.SubCounts {
		base := perf[key{n, "shared", "per-sub"}]
		now := perf[key{n, "shared", "shared"}]
		if base > 0 && now > 0 {
			rep.SharedSpeedup[fmt.Sprint(n)] = now / base
		}
	}
	overhead, runs, err := measureObsOverhead(evs, cfg)
	if err != nil {
		return nil, err
	}
	rep.ObsOverhead = overhead
	rep.ObsOverheadRuns = runs
	traceOverhead, traceRuns, err := measureTraceOverhead(evs, cfg)
	if err != nil {
		return nil, err
	}
	rep.TraceOverhead = traceOverhead
	rep.TraceOverheadRuns = traceRuns
	attribOverhead, attribRuns, err := measureAttribOverhead(evs, cfg)
	if err != nil {
		return nil, err
	}
	rep.AttribOverhead = attribOverhead
	rep.AttribOverheadRuns = attribRuns
	return rep, nil
}

func runBenchRow(n int, shapes, planner string, evs []temporal.Event, cfg BenchConfig) (BenchRow, error) {
	eng, elapsed, err := ingestRun(Config{
		Subs:                 BenchSubs(n, shapes == "shared", cfg.Delta, cfg.Phi),
		DisableSharedPlanner: planner == "per-sub",
	}, evs, cfg.Batch)
	if err != nil {
		return BenchRow{}, err
	}
	st := eng.Stats()
	row := BenchRow{
		Subs:           n,
		Shapes:         shapes,
		Planner:        planner,
		Events:         len(evs),
		EventsPerSec:   float64(len(evs)) / elapsed.Seconds(),
		Detections:     st.Detections,
		SnapshotBuilds: st.SnapshotBuilds,
		SnapshotReuse:  st.SnapshotReuse,
		MatchesShared:  st.MatchesShared,
		ElapsedMS:      float64(elapsed.Microseconds()) / 1000,
	}
	for _, m := range eng.Obs().Snapshot() {
		if m.Hist == nil || m.Hist.Count == 0 {
			continue
		}
		switch m.Name {
		case "flowmotif_finalize_stage_seconds":
			for _, l := range m.Labels {
				if l.Key == "stage" {
					if row.Stages == nil {
						row.Stages = map[string]obs.Quantiles{}
					}
					row.Stages[l.Value] = m.Hist.Summary()
				}
			}
		case "flowmotif_detection_lag_seconds":
			q := m.Hist.Summary()
			row.DetectionLag = &q
		}
	}
	return row, nil
}

// ingestRun drives one engine over the stream and times it.
func ingestRun(cfg Config, evs []temporal.Event, batch int) (*Engine, time.Duration, error) {
	eng, err := NewEngine(cfg, nil)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	for lo := 0; lo < len(evs); lo += batch {
		hi := lo + batch
		if hi > len(evs) {
			hi = len(evs)
		}
		if _, err := eng.Ingest(evs[lo:hi]); err != nil {
			return nil, 0, err
		}
	}
	eng.Flush()
	return eng, time.Since(start), nil
}

// measureObsOverhead times the same 100-shared-subscription workload with
// metric collection on and off (Config.DisableObs), interleaved best-of-3,
// in the same process — the fairest overhead figure a single run can give.
// Tracing is off on both sides so the figure isolates metric collection;
// span-recording cost is measured separately by measureTraceOverhead.
// A forced GC before each timed run keeps garbage from the sweep rows
// (engines holding millions of matches) from skewing the ratio.
func measureObsOverhead(evs []temporal.Event, cfg BenchConfig) (float64, int, error) {
	const runs = 5
	subs := func() []Subscription { return BenchSubs(100, true, cfg.Delta, cfg.Phi) }
	best := map[bool]time.Duration{}
	for i := 0; i < runs; i++ {
		for _, disable := range []bool{false, true} {
			runtime.GC()
			_, elapsed, err := ingestRun(Config{Subs: subs(), DisableObs: disable, DisableTrace: true}, evs, cfg.Batch)
			if err != nil {
				return 0, 0, err
			}
			if cur, ok := best[disable]; !ok || elapsed < cur {
				best[disable] = elapsed
			}
		}
	}
	off := best[true].Seconds()
	if off <= 0 {
		return 0, runs, nil
	}
	return (best[false].Seconds() - off) / off, runs, nil
}

// measureAttribOverhead times the same workload with per-subscription cost
// attribution on and off (Config.DisableCostAttribution, metrics on and
// tracing off in both), interleaved best-of-N in the same process — the CI
// attribution-overhead gate reads this.
func measureAttribOverhead(evs []temporal.Event, cfg BenchConfig) (float64, int, error) {
	const runs = 5
	subs := func() []Subscription { return BenchSubs(100, true, cfg.Delta, cfg.Phi) }
	best := map[bool]time.Duration{}
	for i := 0; i < runs; i++ {
		for _, disable := range []bool{false, true} {
			runtime.GC()
			_, elapsed, err := ingestRun(Config{Subs: subs(), DisableTrace: true, DisableCostAttribution: disable}, evs, cfg.Batch)
			if err != nil {
				return 0, 0, err
			}
			if cur, ok := best[disable]; !ok || elapsed < cur {
				best[disable] = elapsed
			}
		}
	}
	off := best[true].Seconds()
	if off <= 0 {
		return 0, runs, nil
	}
	return (best[false].Seconds() - off) / off, runs, nil
}

// measureTraceOverhead times the same workload with flight-recorder span
// recording on and off (Config.DisableTrace, metrics on in both),
// interleaved best-of-3 in the same process — the CI tracing-overhead
// gate reads this.
func measureTraceOverhead(evs []temporal.Event, cfg BenchConfig) (float64, int, error) {
	const runs = 5
	subs := func() []Subscription { return BenchSubs(100, true, cfg.Delta, cfg.Phi) }
	best := map[bool]time.Duration{}
	for i := 0; i < runs; i++ {
		for _, disable := range []bool{false, true} {
			runtime.GC()
			_, elapsed, err := ingestRun(Config{Subs: subs(), DisableTrace: disable}, evs, cfg.Batch)
			if err != nil {
				return 0, 0, err
			}
			if cur, ok := best[disable]; !ok || elapsed < cur {
				best[disable] = elapsed
			}
		}
	}
	off := best[true].Seconds()
	if off <= 0 {
		return 0, runs, nil
	}
	return (best[false].Seconds() - off) / off, runs, nil
}
