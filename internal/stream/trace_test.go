package stream

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"

	"flowmotif/internal/motif"
	"flowmotif/internal/obs"
	"flowmotif/internal/temporal"
)

// chainEvents builds a small 0→1→2 chain stream plus a closing event far
// enough past the window to finalize everything.
func chainEvents() ([]temporal.Event, []temporal.Event) {
	batch := []temporal.Event{
		{From: 0, To: 1, T: 10, F: 5},
		{From: 1, To: 2, T: 12, F: 3},
	}
	closer := []temporal.Event{{From: 7, To: 8, T: 500, F: 1}}
	return batch, closer
}

// TestIngestTraceTree: one traced batch records a well-formed span tree —
// engine.ingest root, finalize.round child, stage and plan spans under it —
// keyed by the ack's trace ID.
func TestIngestTraceTree(t *testing.T) {
	tracer := obs.NewTracer(0)
	eng, err := NewEngine(Config{
		Subs:   []Subscription{{ID: "chain", Motif: motif.MustPath(0, 1, 2), Delta: 50}},
		Tracer: tracer,
	}, FuncSink(func(d *Detection) {}))
	if err != nil {
		t.Fatal(err)
	}
	batch, closer := chainEvents()
	ack1, err := eng.IngestWithAck(batch)
	if err != nil {
		t.Fatal(err)
	}
	if ack1.Trace == "" {
		t.Fatal("ack carries no trace ID with tracing on")
	}
	ack2, err := eng.IngestWithAck(closer)
	if err != nil {
		t.Fatal(err)
	}
	if ack2.Trace == "" || ack2.Trace == ack1.Trace {
		t.Fatalf("each batch should root its own trace: %q then %q", ack1.Trace, ack2.Trace)
	}
	if ack2.Detections == 0 {
		t.Fatal("closer batch finalized nothing; test premise broken")
	}

	spans := tracer.Spans(ack2.Trace)
	if err := obs.ValidateSpans(spans); err != nil {
		t.Fatalf("batch trace invalid: %v", err)
	}
	names := map[string]int{}
	for _, s := range spans {
		names[s.Name]++
	}
	for _, want := range []string{"engine.ingest", "finalize.round", "finalize.snapshot", "finalize.plan", "finalize.fanout", "finalize.emit"} {
		if names[want] == 0 {
			t.Errorf("trace missing %q span (have %v)", want, names)
		}
	}
	tree := obs.BuildSpanTree(spans)
	if len(tree) != 1 || tree[0].Name != "engine.ingest" {
		t.Fatalf("root should be engine.ingest: %+v", tree)
	}

	// A parented ingest joins the caller's trace instead of rooting one.
	parent := tracer.StartSpan("caller", obs.SpanContext{})
	ack3, err := eng.IngestTraced([]temporal.Event{{From: 0, To: 1, T: 900, F: 1}}, parent.Context())
	if err != nil {
		t.Fatal(err)
	}
	parent.End()
	if ack3.Trace != parent.Context().Trace {
		t.Fatalf("parented ingest rooted its own trace %q, want %q", ack3.Trace, parent.Context().Trace)
	}
	if err := obs.ValidateSpans(tracer.Spans(ack3.Trace)); err != nil {
		t.Fatal(err)
	}
}

// TestSlowRoundRetainsTrace: a breached slow-round threshold logs a warning
// whose trace ID keys a retained trace in the flight recorder.
func TestSlowRoundRetainsTrace(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tracer := obs.NewTracer(8) // tiny ring so retention is what preserves it
	eng, err := NewEngine(Config{
		Subs:      []Subscription{{ID: "chain", Motif: motif.MustPath(0, 1, 2), Delta: 50}},
		Tracer:    tracer,
		Logger:    logger,
		SlowRound: time.Nanosecond, // every round breaches
	}, FuncSink(func(d *Detection) {}))
	if err != nil {
		t.Fatal(err)
	}
	batch, closer := chainEvents()
	if _, err := eng.IngestWithAck(batch); err != nil {
		t.Fatal(err)
	}
	ack, err := eng.IngestWithAck(closer)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "slow finalize round") {
		t.Fatalf("no slow-round warning logged: %q", out)
	}
	if !strings.Contains(out, "trace="+ack.Trace) {
		t.Fatalf("warning does not carry the batch trace %s: %q", ack.Trace, out)
	}
	// Wrap the tiny ring; the retained slow trace must survive.
	for i := 0; i < 32; i++ {
		tracer.StartSpan("noise", obs.SpanContext{}).End()
	}
	spans := tracer.Spans(ack.Trace)
	if len(spans) == 0 {
		t.Fatal("slow round's trace not retained across ring wraparound")
	}
	if err := obs.ValidateSpans(spans); err != nil {
		t.Fatal(err)
	}
}

// TestDisableTraceNoSpans: DisableTrace (and DisableObs) leaves acks
// without trace IDs and records nothing.
func TestDisableTraceNoSpans(t *testing.T) {
	tracer := obs.NewTracer(0)
	eng, err := NewEngine(Config{
		Subs:         []Subscription{{ID: "chain", Motif: motif.MustPath(0, 1, 2), Delta: 50}},
		Tracer:       tracer,
		DisableTrace: true,
	}, FuncSink(func(d *Detection) {}))
	if err != nil {
		t.Fatal(err)
	}
	batch, _ := chainEvents()
	ack, err := eng.IngestWithAck(batch)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Trace != "" {
		t.Fatalf("DisableTrace ack carries trace %q", ack.Trace)
	}
	if tracer.Total() != 0 {
		t.Fatalf("DisableTrace recorded %d spans", tracer.Total())
	}
}
