package stream

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"

	"flowmotif/internal/motif"
	"flowmotif/internal/obs"
	"flowmotif/internal/temporal"
)

func obsTestSubs() []Subscription {
	return []Subscription{
		{ID: "a", Motif: motif.Catalog()[1], Delta: 10, Phi: 1},
		{ID: "b", Motif: motif.Catalog()[1], Delta: 10, Phi: 2},
	}
}

func obsTestEvents() []temporal.Event {
	// A triangle u→v→w→u repeated far enough apart that the watermark
	// closes earlier windows (δ=10).
	var evs []temporal.Event
	for i := 0; i < 40; i++ {
		t := int64(i * 5)
		u, v, w := temporal.NodeID(i%7), temporal.NodeID(i%7+1), temporal.NodeID(i%7+2)
		evs = append(evs,
			temporal.Event{From: u, To: v, T: t, F: 5},
			temporal.Event{From: v, To: w, T: t + 1, F: 5},
			temporal.Event{From: w, To: u, T: t + 2, F: 5},
		)
	}
	return evs
}

func histByStage(t *testing.T, snaps []obs.MetricSnapshot, name, stage string) *obs.HistogramSnapshot {
	t.Helper()
	for _, m := range snaps {
		if m.Name != name {
			continue
		}
		if stage == "" {
			return m.Hist
		}
		for _, l := range m.Labels {
			if l.Key == "stage" && l.Value == stage {
				return m.Hist
			}
		}
	}
	t.Fatalf("no %s{stage=%q} in snapshot", name, stage)
	return nil
}

func TestEngineStageAndLagHistograms(t *testing.T) {
	eng, err := NewEngine(Config{Subs: obsTestSubs()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	evs := obsTestEvents()
	for lo := 0; lo < len(evs); lo += 10 {
		hi := min(lo+10, len(evs))
		if _, err := eng.Ingest(evs[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	eng.Flush()
	if eng.Stats().Detections == 0 {
		t.Fatal("test stream produced no detections")
	}
	snaps := eng.Obs().Snapshot()
	for _, stage := range []string{"snapshot", "match", "fanout"} {
		h := histByStage(t, snaps, "flowmotif_finalize_stage_seconds", stage)
		if h == nil || h.Count == 0 {
			t.Fatalf("stage %q never observed", stage)
		}
	}
	// Two same-shape subscriptions share one plan group, so the shared
	// match path (and its fan-out) must be what ran.
	lag := histByStage(t, snaps, "flowmotif_detection_lag_seconds", "")
	if lag == nil || int64(lag.Count) != eng.Stats().Detections {
		t.Fatalf("detection lag count = %+v, want one observation per detection (%d)",
			lag, eng.Stats().Detections)
	}
	if lag.Sum <= 0 {
		t.Fatalf("detection lag sum = %v, want > 0", lag.Sum)
	}
	round := histByStage(t, snaps, "flowmotif_finalize_round_seconds", "")
	if round == nil || round.Count == 0 {
		t.Fatal("finalize rounds never observed")
	}
}

func TestEngineDisableObs(t *testing.T) {
	eng, err := NewEngine(Config{Subs: obsTestSubs(), DisableObs: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Obs() != nil {
		t.Fatal("DisableObs engine still has a registry")
	}
	if _, err := eng.Ingest(obsTestEvents()); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
}

func TestEngineSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	eng, err := NewEngine(Config{Subs: obsTestSubs(), Obs: reg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Obs() != reg {
		t.Fatal("engine did not adopt the shared registry")
	}
}

func TestEngineSlowRoundWarning(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	// Threshold of 1ns: every round is "slow".
	eng, err := NewEngine(Config{Subs: obsTestSubs(), Logger: logger, SlowRound: time.Nanosecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Ingest(obsTestEvents()); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	out := buf.String()
	if !strings.Contains(out, "slow finalize round") {
		t.Fatalf("no slow-round warning logged:\n%s", out)
	}
	for _, attr := range []string{"snapshot=", "match=", "fanout=", "watermark="} {
		if !strings.Contains(out, attr) {
			t.Fatalf("slow-round warning missing %s:\n%s", attr, out)
		}
	}
}
