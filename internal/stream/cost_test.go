package stream

import (
	"math"
	"testing"
	"time"

	"flowmotif/internal/motif"
)

// costSubs builds a skewed subscription mix across three plan groups: many
// triangle watchers at a large δ (the expensive group), a couple at a small
// δ, and one on a different shape.
func costSubs() []Subscription {
	catalog := motif.Catalog()
	tri := catalog[1]
	var subs []Subscription
	for i := 0; i < 6; i++ {
		subs = append(subs, Subscription{
			ID: "heavy" + string(rune('0'+i)), Motif: tri, Delta: 2400, Phi: 1,
		})
	}
	subs = append(subs,
		Subscription{ID: "light0", Motif: tri, Delta: 120, Phi: 1},
		Subscription{ID: "light1", Motif: tri, Delta: 120, Phi: 2},
		Subscription{ID: "other", Motif: catalog[0], Delta: 600, Phi: 1},
	)
	return subs
}

// TestCostAttributionOracle is the attribution oracle: per-subscription
// attributed seconds must sum to the engine-level attributed total exactly
// and to the independently measured finalize-round totals within 10%, and
// the ranking must reflect the injected skew (a large-δ group outweighs a
// small-δ one on the same shape).
func TestCostAttributionOracle(t *testing.T) {
	evs := streamEvents(t, 11)
	eng, err := NewEngine(Config{Subs: costSubs(), DisableTrace: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(evs); lo += 512 {
		hi := lo + 512
		if hi > len(evs) {
			hi = len(evs)
		}
		if _, err := eng.Ingest(evs[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	eng.Flush()
	st := eng.Stats()

	if st.Cost.Rounds == 0 || st.Cost.AttributedSeconds <= 0 || st.Cost.RoundSeconds <= 0 {
		t.Fatalf("no cost accounting: %+v", st.Cost)
	}
	var subSum, shareSum float64
	perSub := map[string]SubCost{}
	for _, s := range st.Subs {
		subSum += s.Cost.Seconds
		shareSum += s.Cost.Share
		perSub[s.ID] = s.Cost
		if s.Cost.Seconds > 0 && s.Cost.Rate <= 0 {
			t.Errorf("sub %s: attributed %.9fs but zero rate", s.ID, s.Cost.Seconds)
		}
	}
	if d := math.Abs(subSum-st.Cost.AttributedSeconds) / st.Cost.AttributedSeconds; d > 1e-6 {
		t.Errorf("per-sub seconds sum %.9f != attributed total %.9f", subSum, st.Cost.AttributedSeconds)
	}
	if math.Abs(shareSum-1) > 1e-6 {
		t.Errorf("shares sum to %.9f, want 1", shareSum)
	}
	// The oracle proper: attribution accounts for the measured round time.
	if d := math.Abs(subSum-st.Cost.RoundSeconds) / st.Cost.RoundSeconds; d > 0.10 {
		t.Errorf("attributed %.6fs vs measured round total %.6fs: off by %.1f%% (> 10%%)",
			subSum, st.Cost.RoundSeconds, 100*d)
	}
	var groupSum float64
	byDelta := map[int64]GroupCostStats{}
	for _, g := range st.Groups {
		groupSum += g.Seconds
		if g.Shape == st.Subs[0].Shape {
			byDelta[g.Delta] = g
		}
		if got := g.SnapshotSeconds + g.MatchSeconds + g.FanoutSeconds; math.Abs(got-g.Seconds) > 1e-6*math.Max(1, g.Seconds) {
			t.Errorf("group %s/δ=%d: stage sum %.9f != seconds %.9f", g.Shape, g.Delta, got, g.Seconds)
		}
	}
	if d := math.Abs(groupSum-st.Cost.AttributedSeconds) / st.Cost.AttributedSeconds; d > 1e-6 {
		t.Errorf("group seconds sum %.9f != attributed total %.9f", groupSum, st.Cost.AttributedSeconds)
	}
	// Skew: six large-δ triangle watchers must out-cost two small-δ ones.
	heavy, light := byDelta[2400], byDelta[120]
	if heavy.Seconds <= light.Seconds {
		t.Errorf("skew inverted: δ=2400 group %.9fs <= δ=120 group %.9fs", heavy.Seconds, light.Seconds)
	}
	if perSub["heavy0"].Seconds <= perSub["light0"].Seconds {
		t.Errorf("skew inverted per-sub: heavy0 %.9fs <= light0 %.9fs",
			perSub["heavy0"].Seconds, perSub["light0"].Seconds)
	}
	// The registry counters mirror the Stats account.
	var ctrSum float64
	for _, m := range eng.Obs().Snapshot() {
		if m.Name == "flowmotif_sub_cost_seconds_total" {
			ctrSum += m.Value
		}
	}
	if d := math.Abs(ctrSum-subSum) / subSum; d > 1e-6 {
		t.Errorf("sub cost counters sum %.9f != per-sub seconds %.9f", ctrSum, subSum)
	}
}

// TestCostAttributionDisabled checks the off switches: both
// DisableCostAttribution and DisableObs must leave the cost accounts at
// zero with no per-group section and no cost counters.
func TestCostAttributionDisabled(t *testing.T) {
	evs := streamEvents(t, 13)
	for _, cfg := range []Config{
		{Subs: costSubs(), DisableTrace: true, DisableCostAttribution: true},
		{Subs: costSubs(), DisableObs: true},
	} {
		eng, err := NewEngine(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Ingest(evs); err != nil {
			t.Fatal(err)
		}
		eng.Flush()
		st := eng.Stats()
		if st.Cost != (EngineCostStats{}) || st.Groups != nil {
			t.Errorf("cost accounting ran while disabled: %+v groups=%d", st.Cost, len(st.Groups))
		}
		for _, s := range st.Subs {
			if s.Cost != (SubCost{}) {
				t.Errorf("sub %s has cost while disabled: %+v", s.ID, s.Cost)
			}
		}
		if reg := eng.Obs(); reg != nil {
			for _, m := range reg.Snapshot() {
				if m.Name == "flowmotif_sub_cost_seconds_total" || m.Name == "flowmotif_group_cost_seconds_total" {
					t.Errorf("cost counter %s registered while disabled", m.Name)
				}
			}
		}
	}
}

// TestCostAttributionPerSubPlanner checks the ablation path keeps the
// books: with the shared planner disabled every fused walk lands in
// fanout, and the per-sub sum still matches the attributed total.
func TestCostAttributionPerSubPlanner(t *testing.T) {
	evs := streamEvents(t, 17)
	eng, err := NewEngine(Config{Subs: costSubs(), DisableTrace: true, DisableSharedPlanner: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Ingest(evs); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	st := eng.Stats()
	if st.Cost.AttributedSeconds <= 0 {
		t.Fatalf("no attribution on the per-sub path: %+v", st.Cost)
	}
	var subSum float64
	for _, s := range st.Subs {
		subSum += s.Cost.Seconds
	}
	if d := math.Abs(subSum-st.Cost.AttributedSeconds) / st.Cost.AttributedSeconds; d > 1e-6 {
		t.Errorf("per-sub sum %.9f != attributed %.9f", subSum, st.Cost.AttributedSeconds)
	}
	for _, g := range st.Groups {
		if g.MatchSeconds != 0 || g.SnapshotSeconds != 0 {
			t.Errorf("group %s/δ=%d: shared-stage seconds on the fused path", g.Shape, g.Delta)
		}
	}
}

// TestUpdateCostRate pins the EWMA estimator: a steady stream of impulses
// converges toward work/interval, and an idle gap decays the rate by
// e^(-Δt/τ).
func TestUpdateCostRate(t *testing.T) {
	var rate float64
	var at time.Time
	now := time.Unix(1000, 0)
	// 0.1s of work every second: the rate must converge toward 0.1.
	for i := 0; i < 600; i++ {
		now = now.Add(time.Second)
		updateCostRate(&rate, &at, 0.1, now)
	}
	if math.Abs(rate-0.1)/0.1 > 0.05 {
		t.Errorf("steady-state rate %.4f, want ~0.1", rate)
	}
	before := rate
	now = now.Add(costEwmaTau)
	updateCostRate(&rate, &at, 0, now)
	want := before * math.Exp(-1)
	if math.Abs(rate-want) > 1e-9 {
		t.Errorf("decayed rate %.6f, want %.6f", rate, want)
	}
}
