package stream

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"flowmotif/internal/core"
	"flowmotif/internal/gen"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// detKey serializes a detection's semantic content (bound nodes plus the
// (t, f) events of every edge-set) for set comparison.
func detKey(d *Detection) string {
	var b strings.Builder
	fmt.Fprintf(&b, "N%v", d.Nodes)
	for i, es := range d.Edges {
		fmt.Fprintf(&b, "|e%d", i)
		for _, p := range es {
			fmt.Fprintf(&b, ";%d:%g", p.T, p.F)
		}
	}
	return b.String()
}

// batchKey serializes a batch instance in detKey's format.
func batchKey(g *temporal.Graph, in *core.Instance) string {
	var b strings.Builder
	fmt.Fprintf(&b, "N%v", in.Nodes)
	for i, a := range in.Arcs {
		fmt.Fprintf(&b, "|e%d", i)
		for _, p := range g.Series(a)[in.Spans[i].Start:in.Spans[i].End] {
			fmt.Fprintf(&b, ";%d:%g", p.T, p.F)
		}
	}
	return b.String()
}

// streamEvents returns a synthetic event log sorted by timestamp, arrival
// order randomized within equal timestamps (shuffled, then sorted — the
// stream contract only fixes the time order).
func streamEvents(t *testing.T, seed int64) []temporal.Event {
	t.Helper()
	evs, err := gen.Bitcoin(gen.BitcoinConfig{
		Nodes: 200, SeedTxns: 700, Duration: 30000, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed * 31))
	rng.Shuffle(len(evs), func(i, j int) { evs[i], evs[j] = evs[j], evs[i] })
	sortByTime(evs)
	return evs
}

func sortByTime(evs []temporal.Event) {
	// Stable so the shuffled order of equal timestamps survives: the
	// engine must not depend on any secondary arrival order.
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
}

// TestStreamBatchEquivalence is the oracle: ingesting the time-ordered
// event log in random batch sizes and flushing must detect exactly the
// maximal instance set FindInstances reports on the equivalent batch
// graph, for every catalog motif under several (δ, φ) settings — while
// actually evicting events along the way.
func TestStreamBatchEquivalence(t *testing.T) {
	evs := streamEvents(t, 7)
	g, err := temporal.NewGraph(evs)
	if err != nil {
		t.Fatal(err)
	}

	settings := []struct {
		delta int64
		phi   float64
	}{
		{300, 0},
		{900, 6},
	}
	var subs []Subscription
	for _, mo := range motif.Catalog() {
		for _, s := range settings {
			subs = append(subs, Subscription{
				ID:    fmt.Sprintf("%s/d%d/phi%g", mo.Name(), s.delta, s.phi),
				Motif: mo,
				Delta: s.delta,
				Phi:   s.phi,
			})
		}
	}

	got := map[string]map[string]bool{}
	var beforeFlush int64
	sink := FuncSink(func(d *Detection) {
		set := got[d.Sub]
		if set == nil {
			set = map[string]bool{}
			got[d.Sub] = set
		}
		k := detKey(d)
		if set[k] {
			t.Errorf("sub %s: duplicate detection %s", d.Sub, k)
		}
		set[k] = true
	})
	eng, err := NewEngine(Config{Subs: subs}, sink)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < len(evs); {
		n := 1 + rng.Intn(50)
		if i+n > len(evs) {
			n = len(evs) - i
		}
		batch := append([]temporal.Event(nil), evs[i:i+n]...)
		// Batches may be internally unordered; the engine sorts them.
		rng.Shuffle(len(batch), func(a, b int) { batch[a], batch[b] = batch[b], batch[a] })
		if _, err := eng.Ingest(batch); err != nil {
			t.Fatal(err)
		}
		i += n
	}
	midStats := eng.Stats()
	beforeFlush = midStats.Detections
	if beforeFlush == 0 {
		t.Error("no detection emitted before flush: engine is not incremental")
	}
	if midStats.EventsEvicted == 0 {
		t.Error("no event evicted during the stream: retention window not sliding")
	}
	eng.Flush()

	total := 0
	for _, sub := range subs {
		p := core.Params{Delta: sub.Delta, Phi: sub.Phi}
		want, err := core.Collect(g, sub.Motif, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantKeys := map[string]bool{}
		for _, in := range want {
			wantKeys[batchKey(g, in)] = true
		}
		gotKeys := got[sub.ID]
		for k := range wantKeys {
			if !gotKeys[k] {
				t.Errorf("sub %s: missing %s", sub.ID, k)
			}
		}
		for k := range gotKeys {
			if !wantKeys[k] {
				t.Errorf("sub %s: spurious %s", sub.ID, k)
			}
		}
		total += len(wantKeys)
	}
	if total == 0 {
		t.Fatal("degenerate test: batch search found no instances at all")
	}

	st := eng.Stats()
	if st.EventsIngested != int64(len(evs)) {
		t.Errorf("EventsIngested = %d, want %d", st.EventsIngested, len(evs))
	}
	if st.Detections != int64(total) {
		t.Errorf("Detections = %d, want %d", st.Detections, total)
	}
	if st.EventsRetained >= len(evs)/2 {
		t.Errorf("EventsRetained = %d of %d: eviction ineffective", st.EventsRetained, len(evs))
	}
}

// TestStreamParallelWorkers checks band enumeration with Workers > 1 emits
// the same detection set.
func TestStreamParallelWorkers(t *testing.T) {
	evs := streamEvents(t, 13)
	g, err := temporal.NewGraph(evs)
	if err != nil {
		t.Fatal(err)
	}
	mo := motif.MustPath(0, 1, 2, 0)
	p := core.Params{Delta: 600, Phi: 2}

	want, err := core.Collect(g, mo, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := map[string]bool{}
	for _, in := range want {
		wantKeys[batchKey(g, in)] = true
	}
	if len(wantKeys) == 0 {
		t.Fatal("degenerate test: no instances")
	}

	gotKeys := map[string]bool{}
	sink := FuncSink(func(d *Detection) { gotKeys[detKey(d)] = true })
	eng, err := NewEngine(Config{
		Subs:    []Subscription{{Motif: mo, Delta: p.Delta, Phi: p.Phi}},
		Workers: 4,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(evs); i += 64 {
		end := i + 64
		if end > len(evs) {
			end = len(evs)
		}
		if _, err := eng.Ingest(evs[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	eng.Flush()
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("parallel stream found %d instances, want %d", len(gotKeys), len(wantKeys))
	}
	for k := range wantKeys {
		if !gotKeys[k] {
			t.Errorf("missing %s", k)
		}
	}
}

func TestStreamOrderContract(t *testing.T) {
	mo := motif.MustPath(0, 1, 2)
	eng, err := NewEngine(Config{
		Subs: []Subscription{{Motif: mo, Delta: 10, Phi: 0}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Ingest([]temporal.Event{{From: 0, To: 1, T: 100, F: 1}}); err != nil {
		t.Fatal(err)
	}
	// A batch reaching behind the watermark is rejected atomically.
	n, err := eng.Ingest([]temporal.Event{
		{From: 1, To: 2, T: 120, F: 1},
		{From: 1, To: 2, T: 50, F: 1},
	})
	if !errors.Is(err, ErrBehindFrontier) || n != 0 {
		t.Fatalf("stale batch accepted: n=%d err=%v", n, err)
	}
	if st := eng.Stats(); st.EventsIngested != 1 {
		t.Fatalf("EventsIngested = %d after rejected batch, want 1", st.EventsIngested)
	}
	// Equal-to-watermark events are fine before a flush...
	if _, err := eng.Ingest([]temporal.Event{{From: 1, To: 2, T: 100, F: 1}}); err != nil {
		t.Fatal(err)
	}
	// ...but after one, events must clear the watermark by more than δ:
	// anything closer could have landed inside an already-flushed window.
	eng.Flush()
	for _, tt := range []int64{100, 101, 110} {
		_, err := eng.Ingest([]temporal.Event{{From: 0, To: 1, T: tt, F: 1}})
		if !errors.Is(err, ErrBehindFrontier) {
			t.Fatalf("post-flush ingest at t=%d (within watermark+δ): err=%v, want ErrBehindFrontier", tt, err)
		}
	}
	if _, err := eng.Ingest([]temporal.Event{{From: 0, To: 1, T: 111, F: 1}}); err != nil {
		t.Fatalf("post-flush ingest beyond watermark+δ rejected: %v", err)
	}
	// Invalid events are rejected without side effects.
	if _, err := eng.Ingest([]temporal.Event{{From: 0, To: 1, T: 200, F: -3}}); err == nil {
		t.Fatal("non-positive flow accepted")
	}
	if _, err := eng.Ingest([]temporal.Event{{From: -2, To: 1, T: 200, F: 1}}); err == nil {
		t.Fatal("negative node accepted")
	}
}

// TestSinkQueryDuringConcurrentIngest is the deadlock regression for the
// lock layering: a sink reading engine state while other goroutines
// concurrently call Ingest/Stats must make progress (a lock-order
// inversion here hangs the test until the go test timeout kills it).
func TestSinkQueryDuringConcurrentIngest(t *testing.T) {
	var eng *Engine
	sink := FuncSink(func(d *Detection) {
		eng.Stats() // takes mu while the emitter holds ingestMu
	})
	var err error
	eng, err = NewEngine(Config{
		Subs: []Subscription{{Motif: motif.MustPath(0, 1, 2), Delta: 2, Phi: 0}},
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // concurrent readers and a contending (failing) writer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				eng.Stats()
				_, _ = eng.Ingest([]temporal.Event{{From: 0, To: 1, T: 0, F: 1}}) // stale after first batches
			}
		}
	}()
	for i := int64(1); i <= 300; i++ {
		batch := []temporal.Event{
			{From: 0, To: 1, T: 10 * i, F: 1},
			{From: 1, To: 2, T: 10*i + 1, F: 1},
		}
		if _, err := eng.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	eng.Flush()
	if eng.Stats().Detections == 0 {
		t.Fatal("no detections; the contention path was never exercised")
	}
}

// TestSinkMayQueryEngine checks the documented sink contract: Emit runs
// outside the ingestion lock, so sinks can read engine state re-entrantly.
func TestSinkMayQueryEngine(t *testing.T) {
	var eng *Engine
	fired := 0
	sink := FuncSink(func(d *Detection) {
		fired++
		if st := eng.Stats(); !st.Started {
			t.Error("Stats() from sink reports unstarted engine")
		}
		if _, ok := eng.Watermark(); !ok {
			t.Error("Watermark() from sink not available")
		}
	})
	var err error
	eng, err = NewEngine(Config{
		Subs: []Subscription{{Motif: motif.MustPath(0, 1, 2), Delta: 10, Phi: 0}},
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Ingest([]temporal.Event{
		{From: 0, To: 1, T: 1, F: 1},
		{From: 1, To: 2, T: 2, F: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	if fired == 0 {
		t.Fatal("sink never fired")
	}
}

func TestMemorySink(t *testing.T) {
	s := NewMemorySink(3)
	for i := 0; i < 5; i++ {
		s.Emit(&Detection{Sub: "a", Start: int64(i)})
	}
	s.Emit(&Detection{Sub: "b", Start: 99})
	if s.Total() != 6 {
		t.Fatalf("Total = %d, want 6", s.Total())
	}
	all := s.Recent("", 0)
	if len(all) != 3 {
		t.Fatalf("retained %d, want 3 (bounded ring)", len(all))
	}
	if all[0].Start != 99 || all[0].Sub != "b" {
		t.Fatalf("newest-first order violated: %+v", all[0])
	}
	onlyA := s.Recent("a", 1)
	if len(onlyA) != 1 || onlyA[0].Sub != "a" || onlyA[0].Start != 4 {
		t.Fatalf("filtered query wrong: %+v", onlyA)
	}
}

func TestTopKSink(t *testing.T) {
	s := NewTopKSink(3)
	flows := []float64{5, 1, 9, 3, 7, 9}
	for i, f := range flows {
		s.Emit(&Detection{Sub: "x", Flow: f, Start: int64(i)})
	}
	top := s.Top("x")
	if len(top) != 3 {
		t.Fatalf("Top returned %d, want 3", len(top))
	}
	if top[0].Flow != 9 || top[1].Flow != 9 || top[2].Flow != 7 {
		t.Fatalf("Top flows = %g,%g,%g, want 9,9,7", top[0].Flow, top[1].Flow, top[2].Flow)
	}
	if top[0].Start != 2 {
		t.Fatalf("tie broken wrong: Start=%d, want 2 (earlier instance first)", top[0].Start)
	}
	if got := s.Top("missing"); len(got) != 0 {
		t.Fatalf("unknown sub returned %d detections", len(got))
	}
}

// TestIngestWithAck pins the single-call acknowledgement the serving and
// cluster layers rely on: the ack's detection count is exactly what the
// call finalized (no Stats-diff around the call needed), and the
// watermark matches the engine's.
func TestIngestWithAck(t *testing.T) {
	sink := NewMemorySink(16)
	eng, err := NewEngine(Config{Subs: []Subscription{
		{ID: "s", Motif: motif.MustPath(0, 1), Delta: 5},
	}}, sink)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := eng.IngestWithAck(nil)
	if err != nil || ack.Started || ack.Watermark != 0 {
		t.Fatalf("empty ingest ack = %+v, err=%v", ack, err)
	}
	ack, err = eng.IngestWithAck([]temporal.Event{
		{From: 0, To: 1, T: 10, F: 2},
		{From: 0, To: 1, T: 40, F: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Watermark 40 closes the window anchored at 10 (δ=5): exactly one
	// detection finalized by this call.
	if ack.Ingested != 2 || ack.Watermark != 40 || !ack.Started || ack.Detections != 1 {
		t.Fatalf("ack = %+v, want {2, 40, started, 1 detection}", ack)
	}
	fl := eng.FlushWithAck()
	if fl.Watermark != 40 || fl.Detections != 1 {
		t.Fatalf("flush ack = %+v, want watermark 40, 1 detection", fl)
	}
	if got := eng.Stats().Detections; got != ack.Detections+fl.Detections {
		t.Fatalf("Stats().Detections = %d, acks summed to %d", got, ack.Detections+fl.Detections)
	}
}
