package stream

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"flowmotif/internal/core"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// moveSub hands a subscription off between two engines fed by the same
// broadcast stream — the cluster re-placement primitive.
func moveSub(t *testing.T, from, to *Engine, id string) {
	t.Helper()
	rem, err := from.RemoveSubscription(id)
	if err != nil {
		t.Fatalf("remove %q: %v", id, err)
	}
	err = to.AddSubscription(rem.Sub, AddOptions{
		Catchup: rem.Events,
		Emitted: rem.Emitted,
		Primed:  rem.Primed,
	})
	if err != nil {
		t.Fatalf("re-add %q: %v", id, err)
	}
}

// TestRuntimeMoveEquivalence moves subscriptions between two engines fed
// by the same broadcast stream — including onto an engine that joins the
// broadcast mid-stream — and checks the union of detections is exactly the
// batch instance set, with no duplicates.
func TestRuntimeMoveEquivalence(t *testing.T) {
	evs := streamEvents(t, 21)
	g, err := temporal.NewGraph(evs)
	if err != nil {
		t.Fatal(err)
	}
	subA := Subscription{ID: "A", Motif: motif.MustPath(0, 1, 2, 0), Delta: 600, Phi: 2}
	subB := Subscription{ID: "B", Motif: motif.MustPath(0, 1, 2), Delta: 300, Phi: 0}

	got := map[string]map[string]bool{"A": {}, "B": {}}
	sink := FuncSink(func(d *Detection) {
		k := detKey(d)
		if got[d.Sub][k] {
			t.Errorf("sub %s: duplicate detection across the move: %s", d.Sub, k)
		}
		got[d.Sub][k] = true
	})
	e1, err := NewEngine(Config{Subs: []Subscription{subA, subB}}, sink)
	if err != nil {
		t.Fatal(err)
	}
	// e2 starts empty — a fresh member that joins the broadcast later.
	e2, err := NewEngine(Config{}, sink)
	if err != nil {
		t.Fatal(err)
	}

	third := len(evs) / 3
	feed := func(engines []*Engine, evs []temporal.Event) {
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < len(evs); {
			n := 1 + rng.Intn(40)
			if i+n > len(evs) {
				n = len(evs) - i
			}
			for _, e := range engines {
				if _, err := e.Ingest(evs[i : i+n]); err != nil {
					t.Fatal(err)
				}
			}
			i += n
		}
	}
	// Phase 1: only e1 is in the broadcast.
	feed([]*Engine{e1}, evs[:third])
	// A moves onto the cold engine: its catchup splices the history e2
	// never saw (Prepend establishes e2's frontier).
	moveSub(t, e1, e2, "A")
	feed([]*Engine{e1, e2}, evs[third:2*third])
	// ...and back onto the warm engine, whose own log now only holds the
	// recent suffix (catchup overlap is dropped by timestamp cut).
	moveSub(t, e2, e1, "A")
	feed([]*Engine{e1, e2}, evs[2*third:])
	e1.Flush()
	e2.Flush()

	for _, sub := range []Subscription{subA, subB} {
		p := core.Params{Delta: sub.Delta, Phi: sub.Phi}
		want, err := core.Collect(g, sub.Motif, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantKeys := map[string]bool{}
		for _, in := range want {
			wantKeys[batchKey(g, in)] = true
		}
		if len(wantKeys) == 0 {
			t.Fatalf("degenerate test: no batch instances for %s", sub.ID)
		}
		for k := range wantKeys {
			if !got[sub.ID][k] {
				t.Errorf("sub %s: missing %s", sub.ID, k)
			}
		}
		for k := range got[sub.ID] {
			if !wantKeys[k] {
				t.Errorf("sub %s: spurious %s", sub.ID, k)
			}
		}
	}
}

// TestRemoveSubscriptionReleasesRetention checks that dropping the
// longest-δ subscription lets the engine evict the events only it needed.
func TestRemoveSubscriptionReleasesRetention(t *testing.T) {
	eng, err := NewEngine(Config{Subs: []Subscription{
		{ID: "short", Motif: motif.MustPath(0, 1, 2), Delta: 10, Phi: 0},
		{ID: "long", Motif: motif.MustPath(0, 1, 2), Delta: 100000, Phi: 0},
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 2000; i++ {
		if _, err := eng.Ingest([]temporal.Event{{From: temporal.NodeID(i % 7), To: temporal.NodeID(i%7 + 1), T: i * 10, F: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	before := eng.Stats().EventsRetained
	if before < 1900 {
		t.Fatalf("long-δ subscription retained only %d events; test premise broken", before)
	}
	rem, err := eng.RemoveSubscription("long")
	if err != nil {
		t.Fatal(err)
	}
	if !rem.Primed || len(rem.Events) == 0 {
		t.Fatalf("handoff state empty: primed=%v events=%d", rem.Primed, len(rem.Events))
	}
	after := eng.Stats().EventsRetained
	if after >= before/10 {
		t.Errorf("EventsRetained %d -> %d after removal: retention not released", before, after)
	}
	if _, err := eng.RemoveSubscription("long"); !errors.Is(err, ErrUnknownSubscription) {
		t.Errorf("second removal: err=%v, want ErrUnknownSubscription", err)
	}
	if got := len(eng.Subscriptions()); got != 1 {
		t.Errorf("Subscriptions() = %d, want 1", got)
	}
}

// TestAddSubscriptionFromNow: an unprimed add onto a started engine only
// observes windows anchored after the current watermark.
func TestAddSubscriptionFromNow(t *testing.T) {
	var dets []*Detection
	sink := FuncSink(func(d *Detection) { dets = append(dets, d) })
	eng, err := NewEngine(Config{Subs: []Subscription{
		{ID: "seed", Motif: motif.MustPath(0, 1), Delta: 5, Phi: 0},
	}}, sink)
	if err != nil {
		t.Fatal(err)
	}
	pre := []temporal.Event{
		{From: 0, To: 1, T: 10, F: 1},
		{From: 1, To: 2, T: 11, F: 1},
	}
	if _, err := eng.Ingest(pre); err != nil {
		t.Fatal(err)
	}
	late := Subscription{ID: "late", Motif: motif.MustPath(0, 1, 2), Delta: 5, Phi: 0}
	if err := eng.AddSubscription(late, AddOptions{}); err != nil {
		t.Fatal(err)
	}
	// This chain is anchored at t=10 <= the add-time watermark (11): the
	// late subscriber must not see it, even though a new event completes it.
	if _, err := eng.Ingest([]temporal.Event{{From: 0, To: 1, T: 30, F: 1}, {From: 1, To: 2, T: 32, F: 1}}); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	var lateAnchors []int64
	for _, d := range dets {
		if d.Sub == "late" {
			lateAnchors = append(lateAnchors, d.Start)
		}
	}
	if len(lateAnchors) != 1 || lateAnchors[0] != 30 {
		t.Fatalf("late subscriber anchors = %v, want [30]", lateAnchors)
	}

	// Duplicate ids and invalid parameters are rejected atomically.
	if err := eng.AddSubscription(Subscription{ID: "late", Motif: motif.MustPath(0, 1)}, AddOptions{}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := eng.AddSubscription(Subscription{ID: "x", Motif: nil}, AddOptions{}); err == nil {
		t.Fatal("nil motif accepted")
	}
	if err := eng.AddSubscription(Subscription{ID: "x", Motif: motif.MustPath(0, 1), Delta: -1}, AddOptions{}); err == nil {
		t.Fatal("negative delta accepted")
	}
	if got := len(eng.Subscriptions()); got != 2 {
		t.Fatalf("Subscriptions() = %d after failed adds, want 2", got)
	}
}

// TestSinkMoveHelpers covers the handoff halves of the query sinks.
func TestSinkMoveHelpers(t *testing.T) {
	m := NewMemorySink(10)
	for i := 0; i < 4; i++ {
		m.Emit(&Detection{Sub: "a", Start: int64(i)})
		m.Emit(&Detection{Sub: "b", Start: int64(i)})
	}
	moved := m.RemoveSub("a")
	if len(moved) != 4 || moved[0].Start != 0 || moved[3].Start != 3 {
		t.Fatalf("RemoveSub returned %d (first=%v), want 4 oldest-first", len(moved), moved[0])
	}
	if got := m.Recent("a", 0); len(got) != 0 {
		t.Fatalf("removed sub still has %d retained detections", len(got))
	}
	if got := m.Recent("b", 0); len(got) != 4 {
		t.Fatalf("unrelated sub lost detections: %d, want 4", len(got))
	}
	if m.Total() != 4 {
		t.Fatalf("Total = %d after removal, want 4", m.Total())
	}
	m2 := NewMemorySink(10)
	m2.Emit(&Detection{Sub: "c", Start: 99})
	m2.Inject(moved)
	if got := m2.Recent("", 0); len(got) != 5 || got[0].Sub != "c" {
		t.Fatalf("Inject order wrong: %d entries, newest=%+v", len(got), got[0])
	}

	tk := NewTopKSink(2)
	for _, f := range []float64{1, 5, 3} {
		tk.Emit(&Detection{Sub: "a", Flow: f})
		tk.Emit(&Detection{Sub: "b", Flow: f})
	}
	top := tk.RemoveSub("a")
	if len(top) != 2 || top[0].Flow != 5 || top[1].Flow != 3 {
		t.Fatalf("RemoveSub top = %v, want best-first [5 3]", top)
	}
	if got := tk.Top("a"); len(got) != 0 {
		t.Fatalf("removed sub still serves top-%d", len(got))
	}
	tk2 := NewTopKSink(2)
	tk2.Emit(&Detection{Sub: "a", Flow: 4})
	tk2.Inject(top)
	if got := tk2.Top("a"); len(got) != 2 || got[0].Flow != 5 || got[1].Flow != 4 {
		t.Fatalf("Inject re-rank wrong: %v", flows(got))
	}
	if got := tk.Top("b"); len(got) != 2 {
		t.Fatalf("unrelated sub lost top entries: %d", len(got))
	}
}

func flows(ds []*Detection) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Flow
	}
	return out
}

// TestZeroSubEngine: an engine may run with no subscriptions (a cluster
// member awaiting placement), retaining nothing while tracking the stream
// frontier.
func TestZeroSubEngine(t *testing.T) {
	eng, err := NewEngine(Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if _, err := eng.Ingest([]temporal.Event{{From: 0, To: 1, T: i, F: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.EventsIngested != 100 {
		t.Fatalf("EventsIngested = %d, want 100", st.EventsIngested)
	}
	if st.EventsRetained != 0 {
		t.Fatalf("EventsRetained = %d with no subscriptions, want 0", st.EventsRetained)
	}
	if w, ok := eng.Watermark(); !ok || w != 99 {
		t.Fatalf("watermark = (%d, %v), want (99, true)", w, ok)
	}
	// An out-of-order batch is still rejected.
	if _, err := eng.Ingest([]temporal.Event{{From: 0, To: 1, T: 5, F: 1}}); !errors.Is(err, ErrBehindFrontier) {
		t.Fatalf("stale batch on zero-sub engine: %v", err)
	}
}

// TestMoveWithLargeDeltaOntoAggressiveEvictor: the receiving engine's own
// subscriptions evict far more aggressively than the moved subscription
// allows; the catchup splice must restore the needed prefix.
func TestMoveWithLargeDeltaOntoAggressiveEvictor(t *testing.T) {
	evs := streamEvents(t, 33)
	g, err := temporal.NewGraph(evs)
	if err != nil {
		t.Fatal(err)
	}
	big := Subscription{ID: "big", Motif: motif.MustPath(0, 1, 2, 0), Delta: 2000, Phi: 1}
	tiny := Subscription{ID: "tiny", Motif: motif.MustPath(0, 1), Delta: 1, Phi: 0}

	got := map[string]bool{}
	sink := FuncSink(func(d *Detection) {
		if d.Sub != "big" {
			return
		}
		k := detKey(d)
		if got[k] {
			t.Errorf("duplicate detection %s", k)
		}
		got[k] = true
	})
	e1, err := NewEngine(Config{Subs: []Subscription{big}}, sink)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(Config{Subs: []Subscription{tiny}}, sink)
	if err != nil {
		t.Fatal(err)
	}
	half := len(evs) / 2
	for _, e := range []*Engine{e1, e2} {
		if _, err := e.Ingest(evs[:half]); err != nil {
			t.Fatal(err)
		}
	}
	if st := e2.Stats(); st.EventsRetained > 50 {
		t.Fatalf("receiver retained %d events; premise (aggressive eviction) broken", st.EventsRetained)
	}
	moveSub(t, e1, e2, "big")
	for _, e := range []*Engine{e1, e2} {
		if _, err := e.Ingest(evs[half:]); err != nil {
			t.Fatal(err)
		}
		e.Flush()
	}

	want, err := core.Collect(g, big.Motif, core.Params{Delta: big.Delta, Phi: big.Phi}, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := map[string]bool{}
	for _, in := range want {
		wantKeys[batchKey(g, in)] = true
	}
	if len(wantKeys) == 0 {
		t.Fatal("degenerate test: no instances")
	}
	for k := range wantKeys {
		if !got[k] {
			t.Errorf("missing %s", k)
		}
	}
	for k := range got {
		if !wantKeys[k] {
			t.Errorf("spurious %s", k)
		}
	}
	if fmt.Sprint(len(got)) != fmt.Sprint(len(wantKeys)) {
		t.Errorf("got %d detections, want %d", len(got), len(wantKeys))
	}
}
