package stream

// Per-subscription cost attribution (DESIGN.md §14). The shared-evaluation
// planner deliberately blurs who pays for what: one snapshot and one
// phase-P1 match run serve a whole plan group, so a subscription's real
// cost is invisible to per-call accounting. This file meters each finalize
// round's actual work — union snapshot build, per-shape private graphs and
// match runs, every per-subscription fan-out walk — and splits the shared
// stage costs back onto member subscriptions proportionally to their own
// fan-out time (the one per-subscription signal the round measures
// directly; equal split when a round's fan-outs are all under the clock
// resolution). The attributed totals surface as SubCost/GroupCostStats in
// Stats, as flowmotif_sub_cost_seconds_total{shape,sub} and
// flowmotif_group_cost_seconds_total{delta,shape} counters, and feed
// GET /debug/top.

import (
	"math"
	"strconv"
	"time"

	"flowmotif/internal/obs"
)

// costEwmaTau is the time constant of the attributed-cost rate estimator:
// each round's attributed seconds enter as an impulse of add/τ that decays
// exponentially, so a steady workload of X engine-seconds per wall-second
// converges to a rate of X (half-life τ·ln2 ≈ 21s).
const costEwmaTau = 30 * time.Second

// SubCost is one subscription's attributed-cost readout: total engine
// seconds attributed to it (its own fan-out walks plus its proportional
// share of the shared snapshot/match stages), its fan-out-only seconds,
// its share of all attributed engine work, and the EWMA cost rate
// (attributed seconds per wall second).
type SubCost struct {
	Seconds       float64 `json:"seconds"`
	FanoutSeconds float64 `json:"fanoutSeconds"`
	Emits         int64   `json:"emits"`
	Share         float64 `json:"share"`
	Rate          float64 `json:"rate"`
}

// GroupCostStats is one plan group's attributed-cost readout: the (shape,
// δ) key, its member count, the attributed seconds broken down by stage,
// structural matches its fan-outs replayed, instances emitted, share of
// engine work, and the EWMA cost rate.
type GroupCostStats struct {
	Shape           string  `json:"shape"`
	Delta           int64   `json:"delta"`
	Subs            int     `json:"subs"`
	Seconds         float64 `json:"seconds"`
	SnapshotSeconds float64 `json:"snapshotSeconds"`
	MatchSeconds    float64 `json:"matchSeconds"`
	FanoutSeconds   float64 `json:"fanoutSeconds"`
	MatchesVisited  int64   `json:"matchesVisited"`
	Emits           int64   `json:"emits"`
	Share           float64 `json:"share"`
	Rate            float64 `json:"rate"`
}

// EngineCostStats is the engine-level attribution account: the seconds
// attributed across all subscriptions, the independently measured finalize
// round seconds they must sum to (the oracle in cost_test.go holds them
// within 10%), and the metered round count.
type EngineCostStats struct {
	AttributedSeconds float64 `json:"attributedSeconds"`
	RoundSeconds      float64 `json:"roundSeconds"`
	Rounds            int64   `json:"rounds"`
}

// subCostState is the per-subscription attribution account on subState.
type subCostState struct {
	attribNs int64
	fanoutNs int64
	rate     float64
	rateAt   time.Time
	ctr      *obs.FloatCounter // flowmotif_sub_cost_seconds_total{shape,sub}
}

// groupCostState is the per-plan-group attribution account on planGroup.
type groupCostState struct {
	attribNs int64
	snapNs   int64
	matchNs  int64
	fanoutNs int64
	matches  int64
	emits    int64
	rate     float64
	rateAt   time.Time
	roundNs  int64             // scratch: this round's attributed ns
	ctr      *obs.FloatCounter // flowmotif_group_cost_seconds_total{delta,shape}
}

// attachCostLocked registers the cost counters for a subscription entering
// a plan group. The caller holds mu (or the engine is under construction).
func (e *Engine) attachCostLocked(s *subState, g *planGroup) {
	if !e.costOn {
		return
	}
	s.cost.ctr = e.obsReg.FloatCounter("flowmotif_sub_cost_seconds_total",
		"Engine seconds attributed to one subscription: its fan-out walks plus its proportional share of shared snapshot/match work.",
		obs.L("shape", g.key.shape), obs.L("sub", s.sub.ID))
	if g.cost.ctr == nil {
		g.cost.ctr = e.obsReg.FloatCounter("flowmotif_group_cost_seconds_total",
			"Engine seconds attributed to one (shape, delta) plan group.",
			obs.L("delta", strconv.FormatInt(g.key.delta, 10)), obs.L("shape", g.key.shape))
	}
}

// roundCost collects one finalize round's raw stage measurements; the
// proportional split happens once at round end (applyCostLocked). It stays
// off — zero clock reads — unless cost attribution is on.
type roundCost struct {
	on     bool //flowmotif:obsgate
	t0     time.Time
	snapNs int64 // union snapshot build
	shapes []shapeCost
	cur    *shapeCost
}

// shapeCost is one shape's shared work in a round: a private sliver graph
// (if any), the phase-P1 match run, and the per-subscription fan-outs the
// shared cost is split across.
type shapeCost struct {
	snapNs  int64
	matchNs int64
	matches int // shared match-list length (0: fused single-consumer walk)
	samples []costSample
}

// costSample is one fan-out walk: which subscription and group, its own
// wall time, and the instances it emitted.
type costSample struct {
	g        *planGroup
	s        *subState
	fanoutNs int64
	emits    int64
}

func (rc *roundCost) begin(e *Engine) {
	if !e.costOn {
		return
	}
	rc.on = true
	rc.t0 = time.Now()
}

// now returns the current time when metering is on (zero otherwise), the
// single branch every measurement site pays.
func (rc *roundCost) now() time.Time {
	if !rc.on {
		return time.Time{}
	}
	return time.Now()
}

func (rc *roundCost) addSnap(t0 time.Time) {
	if rc.on {
		rc.snapNs += time.Since(t0).Nanoseconds()
	}
}

// shape opens a new per-shape account; later addShapeSnap/addMatch/sample
// calls land in it.
func (rc *roundCost) shape() {
	if !rc.on {
		return
	}
	rc.shapes = append(rc.shapes, shapeCost{})
	rc.cur = &rc.shapes[len(rc.shapes)-1]
}

func (rc *roundCost) addShapeSnap(t0 time.Time) {
	if rc.on {
		rc.cur.snapNs += time.Since(t0).Nanoseconds()
	}
}

func (rc *roundCost) addMatch(t0 time.Time, matches int) {
	if rc.on {
		rc.cur.matchNs += time.Since(t0).Nanoseconds()
		rc.cur.matches = matches
	}
}

// sample records one fan-out walk. emits is the subscription's detection
// delta across the walk.
func (rc *roundCost) sample(g *planGroup, s *subState, t0 time.Time, emits int64) {
	if rc.on {
		rc.cur.samples = append(rc.cur.samples,
			costSample{g: g, s: s, fanoutNs: time.Since(t0).Nanoseconds(), emits: emits})
	}
}

// applyCostLocked performs the round's proportional split and folds it
// into the per-subscription, per-group, and engine accounts plus the cost
// counters. Shared stage costs split by fan-out time: a shape's private
// graph and match run across that shape's fan-outs, the union snapshot
// across every fan-out of the round; a round whose fan-outs are all under
// the clock resolution splits equally. The caller holds mu.
func (e *Engine) applyCostLocked(rc *roundCost) {
	if !rc.on {
		return
	}
	roundNs := time.Since(rc.t0).Nanoseconds()
	now := time.Now()

	var roundFan int64
	var nSamples int
	for i := range rc.shapes {
		for _, sm := range rc.shapes[i].samples {
			roundFan += sm.fanoutNs
			nSamples++
		}
	}
	if nSamples == 0 {
		return
	}
	// weight returns sample share of a pool given the pool's fan-out total.
	weight := func(fanNs int64, totalFan int64, n int) float64 {
		if totalFan > 0 {
			return float64(fanNs) / float64(totalFan)
		}
		return 1 / float64(n)
	}

	var attributed int64
	var touched []*planGroup
	for i := range rc.shapes {
		sc := &rc.shapes[i]
		var shapeFan int64
		for _, sm := range sc.samples {
			shapeFan += sm.fanoutNs
		}
		for _, sm := range sc.samples {
			ws := weight(sm.fanoutNs, shapeFan, len(sc.samples))
			wr := weight(sm.fanoutNs, roundFan, nSamples)
			matchShare := int64(float64(sc.matchNs) * ws)
			shapeSnapShare := int64(float64(sc.snapNs) * ws)
			unionSnapShare := int64(float64(rc.snapNs) * wr)
			total := sm.fanoutNs + matchShare + shapeSnapShare + unionSnapShare

			st := &sm.s.cost
			st.attribNs += total
			st.fanoutNs += sm.fanoutNs
			sec := float64(total) / 1e9
			updateCostRate(&st.rate, &st.rateAt, sec, now)
			st.ctr.Add(sec)

			gc := &sm.g.cost
			if gc.roundNs == 0 {
				touched = append(touched, sm.g)
			}
			gc.roundNs += total
			gc.attribNs += total
			gc.fanoutNs += sm.fanoutNs
			gc.matchNs += matchShare
			gc.snapNs += shapeSnapShare + unionSnapShare
			gc.matches += int64(sc.matches)
			gc.emits += sm.emits
			gc.ctr.Add(sec)

			attributed += total
		}
	}
	for _, g := range touched {
		updateCostRate(&g.cost.rate, &g.cost.rateAt, float64(g.cost.roundNs)/1e9, now)
		g.cost.roundNs = 0
	}
	e.attribNs += attributed
	e.roundNs += roundNs
	e.costRounds++
}

// updateCostRate folds one round's attributed seconds into a decayed-rate
// estimator (see costEwmaTau): the standing rate decays by e^(-Δt/τ), the
// new work enters as an impulse add/τ.
func updateCostRate(rate *float64, at *time.Time, addSec float64, now time.Time) {
	if !at.IsZero() {
		if dt := now.Sub(*at).Seconds(); dt > 0 {
			*rate *= math.Exp(-dt / costEwmaTau.Seconds())
		}
	}
	*at = now
	*rate += addSec / costEwmaTau.Seconds()
}

// costStatsLocked builds the Stats cost section. The caller holds mu.
func (e *Engine) costStatsLocked(st *Stats) {
	if !e.costOn {
		return
	}
	st.Cost = EngineCostStats{
		AttributedSeconds: float64(e.attribNs) / 1e9,
		RoundSeconds:      float64(e.roundNs) / 1e9,
		Rounds:            e.costRounds,
	}
	for i := range st.Subs {
		s := e.subs[i]
		st.Subs[i].Cost = SubCost{
			Seconds:       float64(s.cost.attribNs) / 1e9,
			FanoutSeconds: float64(s.cost.fanoutNs) / 1e9,
			Emits:         s.detections,
			Share:         share(s.cost.attribNs, e.attribNs),
			Rate:          s.cost.rate,
		}
	}
	for _, g := range e.groups {
		st.Groups = append(st.Groups, GroupCostStats{
			Shape:           g.key.shape,
			Delta:           g.key.delta,
			Subs:            len(g.subs),
			Seconds:         float64(g.cost.attribNs) / 1e9,
			SnapshotSeconds: float64(g.cost.snapNs) / 1e9,
			MatchSeconds:    float64(g.cost.matchNs) / 1e9,
			FanoutSeconds:   float64(g.cost.fanoutNs) / 1e9,
			MatchesVisited:  g.cost.matches,
			Emits:           g.cost.emits,
			Share:           share(g.cost.attribNs, e.attribNs),
			Rate:            g.cost.rate,
		})
	}
}

func share(part, whole int64) float64 {
	if whole <= 0 {
		return 0
	}
	return float64(part) / float64(whole)
}
