// Package core implements the paper's primary contribution: enumeration of
// maximal flow-motif instances in a temporal interaction network (Kosyfaki
// et al., EDBT 2019, §4–5).
//
// The search runs in two phases. Phase P1 (package match) finds structural
// matches of the motif graph. Phase P2 — Algorithm 1 of the paper,
// implemented here — slides maximal duration-δ windows over each match's
// interaction time series and enumerates every combination of contiguous
// edge-sets that forms a *maximal* instance satisfying the per-edge-set
// minimum-flow threshold φ.
//
// Key invariants that make the enumeration exact (see DESIGN.md §2):
//
//   - windows are anchored at the event times of the first motif edge's
//     series; every instance produced at a window contains the anchor event
//     and the temporally last in-window event of the final motif edge;
//   - a window is skipped when it contains no final-edge event beyond the
//     previous anchor's reach (such combos extend backwards, so they are
//     non-maximal duplicates);
//   - an edge-set may end at event p only if the split is "forced": p is
//     the last in-window event of its series, or the next-level series has
//     an event no later than the series' following event;
//   - edge-sets whose aggregated flow cannot reach φ prune their whole
//     subtree (Algorithm 1, line 16), and a sub-window whose remaining
//     series cannot reach φ is abandoned immediately.
//
// The same machinery powers top-k search with a floating threshold (§5) and
// the dynamic-programming top-1 module (§5.1, Algorithm 2) in dp.go.
package core

import (
	"errors"
	"fmt"

	"flowmotif/internal/match"
	"flowmotif/internal/temporal"
)

// Params carries the search thresholds of Definition 3.1 plus execution
// options.
type Params struct {
	// Delta is the motif duration constraint δ: the maximum time difference
	// between any two events of an instance. Must be non-negative.
	Delta int64
	// Phi is the motif flow constraint φ: the minimum aggregated flow of
	// every edge-set. Must be non-negative.
	Phi float64
	// Workers sets the parallelism of the search over structural matches.
	// Values <= 1 run serially (deterministic instance order); larger
	// values shard matches over that many goroutines, in which case
	// visitors must be safe for concurrent use.
	Workers int
	// DisableAvailPrune turns off the flow-availability pruning (an
	// optimization beyond the paper's Algorithm 1) for ablation studies.
	// Results are identical either way.
	DisableAvailPrune bool
}

func (p Params) validate() error {
	if p.Delta < 0 {
		return errors.New("core: Delta must be non-negative")
	}
	if p.Phi < 0 {
		return errors.New("core: Phi must be non-negative")
	}
	return nil
}

// Span is a half-open index range [Start, End) into a graph arc's
// interaction time series; it denotes the contiguous edge-set assigned to
// one motif edge.
type Span struct {
	Start, End int32
}

// Instance is one maximal flow-motif instance GI (Definition 3.2/3.3).
type Instance struct {
	Nodes     []temporal.NodeID // graph node per motif vertex
	Arcs      []int             // graph arc per motif edge
	Spans     []Span            // edge-set per motif edge, into Series(Arcs[i])
	EdgeFlows []float64         // aggregated flow per edge-set
	Flow      float64           // instance flow: min over EdgeFlows (Equation 1)
	Start     int64             // earliest event timestamp in the instance
	End       int64             // latest event timestamp in the instance
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	return &Instance{
		Nodes:     append([]temporal.NodeID(nil), in.Nodes...),
		Arcs:      append([]int(nil), in.Arcs...),
		Spans:     append([]Span(nil), in.Spans...),
		EdgeFlows: append([]float64(nil), in.EdgeFlows...),
		Flow:      in.Flow,
		Start:     in.Start,
		End:       in.End,
	}
}

// String summarizes the instance.
func (in *Instance) String() string {
	return fmt.Sprintf("Instance{nodes=%v flow=%.4g span=[%d,%d]}", in.Nodes, in.Flow, in.Start, in.End)
}

// Visitor receives enumerated instances. Instances are freshly allocated
// and may be retained. Returning false stops the enumeration.
type Visitor func(*Instance) bool

// EnumStats counts the work done by one enumeration run.
type EnumStats struct {
	Matches          int64 // structural matches processed (phase P1 output)
	Anchors          int64 // candidate window positions examined
	WindowsProcessed int64 // windows that entered FindInstances
	WindowsSkipped   int64 // windows rejected by the maximality skip rule
	SplitsTried      int64 // prefix splits considered
	PhiPruned        int64 // splits rejected by the φ check (Alg. 1 line 16)
	AvailPruned      int64 // sub-windows abandoned by availability pruning
	Instances        int64 // maximal instances emitted
}

func (s *EnumStats) add(o *EnumStats) {
	s.Matches += o.Matches
	s.Anchors += o.Anchors
	s.WindowsProcessed += o.WindowsProcessed
	s.WindowsSkipped += o.WindowsSkipped
	s.SplitsTried += o.SplitsTried
	s.PhiPruned += o.PhiPruned
	s.AvailPruned += o.AvailPruned
	s.Instances += o.Instances
}

// matchSource abstracts where structural matches come from: streamed from
// the temporally pruned phase-P1 walk (fusedSource) or replayed from a
// pre-collected slice (instrumented two-step mode).
type matchSource func(fn match.Visitor)

func sliceSource(matches []match.Match) matchSource {
	return func(fn match.Visitor) {
		for i := range matches {
			if !fn(&matches[i]) {
				return
			}
		}
	}
}
