package core

// This file holds the shared-evaluation entry points for the streaming
// planner (internal/stream, DESIGN.md §11): phase P1 is run once per motif
// shape and its match list fanned out to many phase-P2 enumerations with
// per-subscription (δ, φ, anchor band) parameters.

import (
	"sync"
	"sync/atomic"

	"flowmotif/internal/match"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// CollectMatches materializes the structural matches of mo in g that
// survive temporal-feasibility pruning at duration delta (the fused
// phase-P1 walk, fused.go). A match is kept iff some anchored strictly
// increasing event chain fits inside a delta window — a necessary
// condition for any instance under any δ' <= delta — so one list collected
// at the largest δ of a shape's plan groups serves every group of that
// shape: EnumerateMatchesRange with a smaller Delta over the list yields
// exactly what a fresh search at that Delta would.
func CollectMatches(g *temporal.Graph, mo *motif.Motif, delta int64) ([]match.Match, error) {
	if err := (Params{Delta: delta}).validate(); err != nil {
		return nil, err
	}
	var out []match.Match
	fusedSource(g, mo, delta)(func(m *match.Match) bool {
		out = append(out, m.Clone())
		return true
	})
	return out, nil
}

// EnumerateMatchesRange runs phase P2 over a pre-collected match list with
// window anchors restricted to [anchorLo, anchorHi] (see EnumerateRange
// for the band semantics). With p.Workers > 1 the matches are sharded over
// that many goroutines and visit must be safe for concurrent use. This is
// the fan-out half of the shared-evaluation planner: many subscriptions
// sharing a motif shape each call it with their own (δ, φ, band) over one
// CollectMatches list and one shared graph snapshot.
func EnumerateMatchesRange(g *temporal.Graph, mo *motif.Motif, matches []match.Match, p Params, anchorLo, anchorHi int64, visit Visitor) (EnumStats, error) {
	if err := p.validate(); err != nil {
		return EnumStats{}, err
	}
	if anchorLo > anchorHi || len(matches) == 0 {
		return EnumStats{}, nil
	}
	pass := func(f float64) bool { return f >= p.Phi }
	if p.Workers > 1 {
		return enumerateMatchesParallel(g, mo, matches, p, pass, anchorLo, anchorHi, visit), nil
	}
	return enumerate(g, sliceSource(matches), mo, p, pass, anchorLo, anchorHi, visit), nil
}

// enumerateMatchesParallel shards a match slice over p.Workers goroutines,
// each running its own Algorithm-1 state.
func enumerateMatchesParallel(g *temporal.Graph, mo *motif.Motif, matches []match.Match, p Params, pass passFunc, anchorLo, anchorHi int64, visit Visitor) EnumStats {
	var (
		total   EnumStats
		mu      sync.Mutex
		next    atomic.Int64
		stopped atomic.Bool
		wg      sync.WaitGroup
	)
	for w := 0; w < p.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := newMatchEnum(g, mo, p, pass, anchorLo, anchorHi, visit)
			for !stopped.Load() {
				i := next.Add(1) - 1
				if i >= int64(len(matches)) {
					break
				}
				e.stats.Matches++
				e.run(&matches[i])
				if e.stopped {
					stopped.Store(true)
					break
				}
			}
			mu.Lock()
			total.add(&e.stats)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}
