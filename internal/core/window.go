package core

import (
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// EnumerateRange is Enumerate restricted to instances anchored within the
// inclusive timestamp range [anchorLo, anchorHi]: it streams exactly the
// subset of Enumerate's maximal instances whose Start (the timestamp of the
// instance's first event, which anchors its δ-window) lies in the range.
//
// This is the incremental entry point of the streaming subsystem
// (internal/stream). Because an instance anchored at ts is confined to
// [ts, ts+δ], and the window-skip maximality rule only consults same-arc
// anchors within δ before ts, EnumerateRange over a graph holding only the
// events of [anchorLo-δ, anchorHi+δ] produces the same instances as over
// the full graph — so a stream engine can finalize one watermark band at a
// time against a bounded retention window. See DESIGN.md §7.
func EnumerateRange(g *temporal.Graph, mo *motif.Motif, p Params, anchorLo, anchorHi int64, visit Visitor) (EnumStats, error) {
	if err := p.validate(); err != nil {
		return EnumStats{}, err
	}
	if anchorLo > anchorHi {
		return EnumStats{}, nil
	}
	pass := func(f float64) bool { return f >= p.Phi }
	if p.Workers > 1 {
		return enumerateParallel(g, mo, p, pass, anchorLo, anchorHi, visit)
	}
	return enumerate(g, fusedSource(g, mo, p.Delta), mo, p, pass, anchorLo, anchorHi, visit), nil
}

// CollectRange materializes the instances EnumerateRange streams.
func CollectRange(g *temporal.Graph, mo *motif.Motif, p Params, anchorLo, anchorHi int64) ([]*Instance, error) {
	var out []*Instance
	_, err := EnumerateRange(g, mo, p, anchorLo, anchorHi, func(in *Instance) bool {
		out = append(out, in)
		return true
	})
	return out, err
}
