package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"flowmotif/internal/match"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// TestFusedSourceSubsetOfMatches verifies the two defining properties of
// the temporally pruned P1 walk: (a) it emits a subset of the pure
// structural matches, and (b) every match it drops admits no instance
// under the given δ (so enumeration results are unchanged).
func TestFusedSourceSubsetOfMatches(t *testing.T) {
	motifs := []*motif.Motif{
		motif.MustPath(0, 1, 2),
		motif.MustPath(0, 1, 2, 0),
		motif.MustPath(0, 1, 2, 3),
		motif.MustPath(0, 1, 2, 3, 1),
	}
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed+500, 6, 60, 50)
		for _, mo := range motifs {
			for _, delta := range []int64{5, 20, 100} {
				all := map[string]bool{}
				match.Stream(g, mo, func(m *match.Match) bool {
					all[fmt.Sprint(m.Arcs)] = true
					return true
				})
				var fusedKeys []string
				fusedSource(g, mo, delta)(func(m *match.Match) bool {
					fusedKeys = append(fusedKeys, fmt.Sprint(m.Arcs))
					return true
				})
				seen := map[string]bool{}
				for _, k := range fusedKeys {
					if !all[k] {
						t.Fatalf("seed=%d motif=%v δ=%d: fused emitted non-structural match %s", seed, mo, delta, k)
					}
					if seen[k] {
						t.Fatalf("seed=%d motif=%v δ=%d: fused emitted duplicate %s", seed, mo, delta, k)
					}
					seen[k] = true
				}
				// Dropped matches must admit no instance: enumerate them
				// via the instrumented slice mode and expect zero.
				var dropped []match.Match
				match.Stream(g, mo, func(m *match.Match) bool {
					if !seen[fmt.Sprint(m.Arcs)] {
						dropped = append(dropped, m.Clone())
					}
					return true
				})
				st, err := EnumerateMatches(g, mo, dropped, Params{Delta: delta, Phi: 0}, nil)
				if err != nil {
					t.Fatal(err)
				}
				if st.Instances != 0 {
					t.Errorf("seed=%d motif=%v δ=%d: %d instances found in fused-dropped matches",
						seed, mo, delta, st.Instances)
				}
			}
		}
	}
}

// TestFusedAnchorRestoration exercises the sibling-restore logic of the
// anchored-chain state: graphs where one child branch must advance the
// anchor far while a later sibling still matches from an early anchor.
func TestFusedAnchorRestoration(t *testing.T) {
	// Node 0 fans out to 1; from 1, branch A (node 2) only matches very
	// late events, branch B (node 3) matches early ones. Exploring A first
	// advances the anchor; B must still be found.
	g, err := temporal.NewGraph([]temporal.Event{
		{From: 0, To: 1, T: 10, F: 1},
		{From: 0, To: 1, T: 1000, F: 1},
		{From: 1, To: 2, T: 1005, F: 1}, // only reachable from the late anchor
		{From: 1, To: 3, T: 12, F: 1},   // only reachable from the early anchor
	})
	if err != nil {
		t.Fatal(err)
	}
	mo := motif.MustPath(0, 1, 2)
	var got []string
	fusedSource(g, mo, 20)(func(m *match.Match) bool {
		got = append(got, fmt.Sprint(m.Nodes))
		return true
	})
	sort.Strings(got)
	want := []string{"[0 1 2]", "[0 1 3]"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("fused matches = %v, want %v", got, want)
	}
	// With a δ too small for the early chain only the late branch remains
	// temporally feasible... both chains span 2-5 units, so both survive a
	// tiny δ; with δ=1 neither does.
	got = nil
	fusedSource(g, mo, 1)(func(m *match.Match) bool {
		got = append(got, fmt.Sprint(m.Nodes))
		return true
	})
	if len(got) != 0 {
		t.Errorf("δ=1 fused matches = %v, want none", got)
	}
}

// TestFusedCounts double-checks end-to-end counts equal the slice-mode
// enumeration over all pure structural matches.
func TestFusedCounts(t *testing.T) {
	for seed := int64(30); seed < 40; seed++ {
		g := randomGraph(seed, 7, 80, 60)
		for _, mo := range []*motif.Motif{motif.MustPath(0, 1, 2), motif.MustPath(0, 1, 2, 0)} {
			p := Params{Delta: 15, Phi: 2}
			streamed, _, err := Count(g, mo, p)
			if err != nil {
				t.Fatal(err)
			}
			all := match.Collect(g, mo, 0)
			st, err := EnumerateMatches(g, mo, all, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			if streamed != st.Instances {
				t.Errorf("seed=%d motif=%v: fused count %d != full-match count %d",
					seed, mo, streamed, st.Instances)
			}
		}
	}
}

// TestFusedEarlyStop ensures visitor aborts propagate through the fused
// walk promptly.
func TestFusedEarlyStop(t *testing.T) {
	g := randomGraph(3, 10, 200, 80)
	mo := motif.MustPath(0, 1, 2)
	calls := 0
	_, err := Enumerate(g, mo, Params{Delta: 40, Phi: 0}, func(in *Instance) bool {
		calls++
		return calls < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("visitor calls = %d, want 2", calls)
	}
}

// TestPropertyFusedNeverLoses is a randomized property test: for random
// deltas, counting through the fused source must match oracle-counted
// maximal instances.
func TestPropertyFusedNeverLoses(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(rng.Int63(), 5, 35, 30)
		mo := motif.MustPath(0, 1, 2, 0)
		delta := int64(1 + rng.Intn(40))
		phi := float64(rng.Intn(6))
		want := len(oracleEnumerate(g, mo, delta, phi))
		got, _, err := Count(g, mo, Params{Delta: delta, Phi: phi})
		if err != nil {
			t.Fatal(err)
		}
		if got != int64(want) {
			t.Errorf("trial %d δ=%d φ=%v: fused count %d != oracle %d", trial, delta, phi, got, want)
		}
	}
}
