package core

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"flowmotif/internal/match"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// Enumerate finds every maximal instance of mo in g under p and streams it
// to visit (which may be nil to count only). With p.Workers <= 1 the
// instance order is deterministic; otherwise visit must be safe for
// concurrent use.
func Enumerate(g *temporal.Graph, mo *motif.Motif, p Params, visit Visitor) (EnumStats, error) {
	if err := p.validate(); err != nil {
		return EnumStats{}, err
	}
	pass := func(f float64) bool { return f >= p.Phi }
	if p.Workers > 1 {
		return enumerateParallel(g, mo, p, pass, math.MinInt64, math.MaxInt64, visit)
	}
	return enumerate(g, fusedSource(g, mo, p.Delta), mo, p, pass, math.MinInt64, math.MaxInt64, visit), nil
}

// EnumerateMatches runs phase P2 only, over pre-collected structural
// matches. This is the instrumented mode used to time the two phases
// separately (paper Table 4 and Figure 12).
func EnumerateMatches(g *temporal.Graph, mo *motif.Motif, matches []match.Match, p Params, visit Visitor) (EnumStats, error) {
	if err := p.validate(); err != nil {
		return EnumStats{}, err
	}
	pass := func(f float64) bool { return f >= p.Phi }
	return enumerate(g, sliceSource(matches), mo, p, pass, math.MinInt64, math.MaxInt64, visit), nil
}

// Count returns the number of maximal instances of mo in g under p.
func Count(g *temporal.Graph, mo *motif.Motif, p Params) (int64, EnumStats, error) {
	st, err := Enumerate(g, mo, p, nil)
	return st.Instances, st, err
}

// Collect materializes up to limit instances (limit <= 0 means all).
func Collect(g *temporal.Graph, mo *motif.Motif, p Params, limit int) ([]*Instance, error) {
	var out []*Instance
	_, err := Enumerate(g, mo, p, func(in *Instance) bool {
		out = append(out, in)
		return limit <= 0 || len(out) < limit
	})
	return out, err
}

// enumerate drives phase P2 serially over a match source, with window
// anchors restricted to [anchorLo, anchorHi] (pass the full int64 range
// for an unrestricted search).
func enumerate(g *temporal.Graph, src matchSource, mo *motif.Motif, p Params, pass passFunc, anchorLo, anchorHi int64, visit Visitor) EnumStats {
	e := newMatchEnum(g, mo, p, pass, anchorLo, anchorHi, visit)
	src(func(m *match.Match) bool {
		e.stats.Matches++
		e.run(m)
		return !e.stopped
	})
	return e.stats
}

func enumerateParallel(g *temporal.Graph, mo *motif.Motif, p Params, pass passFunc, anchorLo, anchorHi int64, visit Visitor) (EnumStats, error) {
	var (
		total   EnumStats
		mu      sync.Mutex
		next    atomic.Int64
		stopped atomic.Bool
		wg      sync.WaitGroup
	)
	for w := 0; w < p.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := newMatchEnum(g, mo, p, pass, anchorLo, anchorHi, visit)
			for !stopped.Load() {
				u := next.Add(1) - 1
				if u >= int64(g.NumNodes()) {
					break
				}
				fusedFrom(g, mo, p.Delta, temporal.NodeID(u), func(m *match.Match) bool {
					e.stats.Matches++
					e.run(m)
					if e.stopped {
						stopped.Store(true)
					}
					return !stopped.Load()
				})
			}
			mu.Lock()
			total.add(&e.stats)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total, nil
}

// passFunc reports whether an edge-set with the given aggregated flow is
// admissible (>= φ for plain search; beats the current k-th flow for top-k).
type passFunc func(flow float64) bool

// matchEnum is the per-goroutine state of Algorithm 1.
type matchEnum struct {
	g     *temporal.Graph
	delta int64
	prune bool // availability pruning enabled
	pass  passFunc
	visit Visitor
	stats EnumStats

	m      int // number of motif edges
	series [][]temporal.Point
	arcs   []int
	nodes  []temporal.NodeID

	// Per-anchor window bounds into each edge's series; monotone in the
	// anchor, so they advance amortized O(1) per anchor.
	lb []int // first index with T > anchor time (edges 1..m-1)
	ub []int // first index with T > window end

	// Anchor-time restriction: only windows anchored at timestamps within
	// [anchorLo, anchorHi] are processed. The default (full int64 range)
	// reproduces plain Enumerate; EnumerateRange narrows it so the
	// streaming subsystem can finalize one watermark band at a time.
	anchorLo, anchorHi int64

	spans   []Span
	stopped bool
}

func newMatchEnum(g *temporal.Graph, mo *motif.Motif, p Params, pass passFunc, anchorLo, anchorHi int64, visit Visitor) *matchEnum {
	m := mo.NumEdges()
	return &matchEnum{
		g:        g,
		delta:    p.Delta,
		prune:    !p.DisableAvailPrune,
		pass:     pass,
		visit:    visit,
		m:        m,
		series:   make([][]temporal.Point, m),
		lb:       make([]int, m),
		ub:       make([]int, m),
		spans:    make([]Span, m),
		anchorLo: anchorLo,
		anchorHi: anchorHi,
	}
}

// run applies Algorithm 1 to one structural match.
func (e *matchEnum) run(mt *match.Match) {
	m := e.m
	for i := 0; i < m; i++ {
		e.series[i] = e.g.Series(mt.Arcs[i])
		e.lb[i] = 0
		e.ub[i] = 0
	}
	e.arcs = mt.Arcs
	e.nodes = mt.Nodes

	s0 := e.series[0]
	last := e.series[m-1]

	// Fast feasibility reject: chase the minimal strictly-increasing chain
	// of event times through the series. Most structural matches admit no
	// time-respecting assignment at all; this check costs O(m log n)
	// instead of a full anchor scan.
	aStart := 0
	lastT := last[len(last)-1].T
	if m > 1 {
		tprev := s0[0].T
		for i := 1; i < m; i++ {
			s := e.series[i]
			idx := sort.Search(len(s), func(k int) bool { return s[k].T > tprev })
			if idx == len(s) {
				return
			}
			tprev = s[idx].T
		}
		// Windows ending before the chain's minimal completion time are
		// dead; jump straight to the first anchor that can reach it.
		aStart = sort.Search(len(s0), func(k int) bool { return s0[k].T+e.delta >= tprev })
		if aStart == len(s0) {
			return
		}
	}
	if e.anchorLo > s0[aStart].T {
		// Anchor-range restriction: jump to the first in-range anchor. The
		// window-skip rule below still sees pre-range predecessors (s0 is
		// the full series), so maximality decisions are unchanged.
		i := sort.Search(len(s0), func(k int) bool { return s0[k].T >= e.anchorLo })
		if i > aStart {
			aStart = i
		}
		if aStart == len(s0) {
			return
		}
	}

	for a := aStart; a < len(s0) && !e.stopped; a++ {
		if s0[a].T > e.anchorHi {
			break // past the anchor range
		}
		if m > 1 && s0[a].T >= lastT {
			break // no final-edge event can follow this anchor
		}
		ts := s0[a].T
		te := ts + e.delta
		e.stats.Anchors++

		// Advance the monotone window bounds.
		for j := 1; j < m; j++ {
			s := e.series[j]
			for e.lb[j] < len(s) && s[e.lb[j]].T <= ts {
				e.lb[j]++
			}
		}
		for j := 0; j < m; j++ {
			s := e.series[j]
			for e.ub[j] < len(s) && s[e.ub[j]].T <= te {
				e.ub[j]++
			}
		}

		// The final edge needs at least one in-window event...
		lbLast := e.lb[m-1]
		if m == 1 {
			lbLast = a
		}
		if e.ub[m-1] <= lbLast {
			continue
		}
		// ...and, for maximality, one beyond the previous anchor's reach
		// (window skip rule): otherwise every combo of this window extends
		// backwards with the previous first-edge event.
		if a > 0 && last[e.ub[m-1]-1].T <= s0[a-1].T+e.delta {
			e.stats.WindowsSkipped++
			continue
		}

		// Availability pruning: every motif edge must be able to reach the
		// admission threshold using all of its in-window events.
		if e.prune {
			feasible := e.pass(e.flowRange(0, a, e.ub[0]))
			for j := 1; feasible && j < m; j++ {
				feasible = e.pass(e.flowRange(j, e.lb[j], e.ub[j]))
			}
			if !feasible {
				e.stats.AvailPruned++
				continue
			}
		}

		e.stats.WindowsProcessed++
		e.findInstances(0, a)
	}
}

// flowRange returns the aggregated flow of series[edge][i:j].
func (e *matchEnum) flowRange(edge, i, j int) float64 {
	return e.g.FlowRange(e.arcs[edge], i, j)
}

// findInstances is the recursive FindInstances procedure of Algorithm 1:
// level is the motif-edge index, startIdx the first event of its edge-set
// (the first series event after the previous level's split).
func (e *matchEnum) findInstances(level, startIdx int) {
	s := e.series[level]
	ub := e.ub[level]
	if startIdx >= ub {
		return
	}
	if e.prune && level > 0 {
		// The whole remaining sub-window cannot reach the threshold.
		if !e.pass(e.flowRange(level, startIdx, ub)) {
			e.stats.AvailPruned++
			return
		}
	}
	if level == e.m-1 {
		// Final edge: the maximal edge-set takes every event up to the
		// window end (any shorter suffix is extendable, hence non-maximal).
		flow := e.flowRange(level, startIdx, ub)
		if e.pass(flow) {
			e.spans[level] = Span{Start: int32(startIdx), End: int32(ub)}
			e.emit()
		}
		return
	}

	next := e.series[level+1]
	ubNext := e.ub[level+1]
	// fIdx tracks the first next-level event strictly after the current
	// prefix end; it starts at the window bound and advances with p.
	fIdx := e.lb[level+1]

	flow := 0.0
	for p := startIdx; p < ub; p++ {
		flow += s[p].F
		for fIdx < len(next) && next[fIdx].T <= s[p].T {
			fIdx++
		}
		if fIdx >= ubNext {
			// No next-level events remain in the window; longer prefixes
			// only push the boundary further.
			break
		}
		e.stats.SplitsTried++
		if p+1 < ub && next[fIdx].T > s[p+1].T {
			// Split not forced: the next series event could be added to
			// this edge-set without violating anything, so ending here
			// would be non-maximal (and a duplicate of the longer prefix).
			continue
		}
		if !e.pass(flow) {
			e.stats.PhiPruned++ // Algorithm 1 line 16
			continue
		}
		e.spans[level] = Span{Start: int32(startIdx), End: int32(p + 1)}
		e.findInstances(level+1, fIdx)
		if e.stopped {
			return
		}
	}
}

func (e *matchEnum) emit() {
	e.stats.Instances++
	if e.visit == nil {
		return
	}
	m := e.m
	inst := &Instance{
		Nodes:     append([]temporal.NodeID(nil), e.nodes...),
		Arcs:      append([]int(nil), e.arcs...),
		Spans:     append([]Span(nil), e.spans...),
		EdgeFlows: make([]float64, m),
	}
	minFlow := 0.0
	for i := 0; i < m; i++ {
		f := e.flowRange(i, int(e.spans[i].Start), int(e.spans[i].End))
		inst.EdgeFlows[i] = f
		if i == 0 || f < minFlow {
			minFlow = f
		}
	}
	inst.Flow = minFlow
	inst.Start = e.series[0][e.spans[0].Start].T
	inst.End = e.series[m-1][e.spans[m-1].End-1].T
	if !e.visit(inst) {
		e.stopped = true
	}
}
