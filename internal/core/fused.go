package core

import (
	"sort"

	"flowmotif/internal/match"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// fusedSource streams structural matches with temporal-feasibility pruning
// folded into the DFS walk: while extending the spanning path it maintains,
// for the arcs chosen so far, the earliest anchor (event of the first arc)
// from which a strictly-increasing chain of events fits inside a duration-δ
// window. A subtree is abandoned as soon as no such anchored chain exists —
// a necessary condition for any instance over any completion of the prefix,
// since every instance contains a time-respecting chain starting at its
// window anchor.
//
// This realizes the paper's future-work direction (§7) of processing
// structural matches with shared prefixes together: on hub-heavy graphs the
// vast majority of structural matches are temporally dead, and whole DFS
// subtrees of them are skipped at once. Streaming searches use this source;
// instrumented phase-separated runs use the pure matcher (package match).
func fusedSource(g *temporal.Graph, mo *motif.Motif, delta int64) matchSource {
	return func(fn match.Visitor) {
		d := newFusedDFS(g, mo, delta)
		for u := temporal.NodeID(0); int(u) < g.NumNodes(); u++ {
			if !d.from(u, fn) {
				return
			}
		}
	}
}

// fusedFrom walks matches rooted at one start node (parallel sharding).
func fusedFrom(g *temporal.Graph, mo *motif.Motif, delta int64, start temporal.NodeID, fn match.Visitor) bool {
	return newFusedDFS(g, mo, delta).from(start, fn)
}

type fusedDFS struct {
	g     *temporal.Graph
	delta int64
	path  []int
	numV  int
	bind  []temporal.NodeID
	bound []bool
	m     match.Match

	series    [][]temporal.Point // series of the arcs chosen so far
	chainT    []int64            // greedy chain time after each chosen edge
	anchorIdx int                // current anchor position in series[0]
	savedA    []int              // per-level anchor snapshots
	savedT    [][]int64          // per-level chain snapshots
}

func newFusedDFS(g *temporal.Graph, mo *motif.Motif, delta int64) *fusedDFS {
	numV := mo.NumVertices()
	edges := mo.NumEdges()
	d := &fusedDFS{
		g:      g,
		delta:  delta,
		path:   mo.Path(),
		numV:   numV,
		bind:   make([]temporal.NodeID, numV),
		bound:  make([]bool, numV),
		series: make([][]temporal.Point, edges),
		chainT: make([]int64, edges),
		savedA: make([]int, edges+1),
		savedT: make([][]int64, edges+1),
		m: match.Match{
			Nodes: make([]temporal.NodeID, numV),
			Arcs:  make([]int, edges),
		},
	}
	for i := range d.savedT {
		d.savedT[i] = make([]int64, edges)
	}
	return d
}

func (d *fusedDFS) from(start temporal.NodeID, fn match.Visitor) bool {
	d.bind[d.path[0]] = start
	d.bound[d.path[0]] = true
	ok := d.extend(1, start, fn)
	d.bound[d.path[0]] = false
	return ok
}

func (d *fusedDFS) extend(pos int, cur temporal.NodeID, fn match.Visitor) bool {
	if pos == len(d.path) {
		copy(d.m.Nodes, d.bind)
		return fn(&d.m)
	}
	// Snapshot the anchored-chain state: feasibility checks for one child
	// may advance the anchor, which must not leak to its siblings.
	d.savedA[pos] = d.anchorIdx
	copy(d.savedT[pos][:pos-1], d.chainT[:pos-1])

	restore := func() {
		d.anchorIdx = d.savedA[pos]
		copy(d.chainT[:pos-1], d.savedT[pos][:pos-1])
	}

	tv := d.path[pos]
	if d.bound[tv] {
		w := d.bind[tv]
		arc, ok := d.g.FindArc(cur, w)
		if !ok {
			return true
		}
		restore()
		if !d.feasible(pos, arc) {
			return true
		}
		d.m.Arcs[pos-1] = arc
		return d.extend(pos+1, w, fn)
	}
	lo, hi := d.g.OutArcs(cur)
	for a := lo; a < hi; a++ {
		w := d.g.ArcTarget(a)
		if d.used(w) {
			continue
		}
		restore()
		if !d.feasible(pos, a) {
			continue
		}
		d.bind[tv] = w
		d.bound[tv] = true
		d.m.Arcs[pos-1] = a
		ok := d.extend(pos+1, w, fn)
		d.bound[tv] = false
		if !ok {
			return false
		}
	}
	return true
}

// feasible extends the anchored greedy chain through arc as motif edge
// pos-1, advancing the anchor (and re-chasing the prefix) when the chain
// overflows the δ window. Returns false when no anchor admits a chain.
func (d *fusedDFS) feasible(pos int, arc int) bool {
	s := d.g.Series(arc)
	d.series[pos-1] = s
	if pos == 1 {
		d.anchorIdx = 0
		d.chainT[0] = s[0].T
		return true
	}
	s0 := d.series[0]
	for {
		prev := d.chainT[pos-2]
		idx := sort.Search(len(s), func(k int) bool { return s[k].T > prev })
		if idx == len(s) {
			// No event of this arc after the chain at all; later anchors
			// only push the chain further right.
			return false
		}
		if s[idx].T <= s0[d.anchorIdx].T+d.delta {
			d.chainT[pos-1] = s[idx].T
			return true
		}
		// Window overflow: advance the anchor and re-chase the prefix.
		if !d.advanceAnchor(pos) {
			return false
		}
	}
}

// advanceAnchor moves to the next anchor whose greedy prefix chain (edges
// 0..pos-2) fits in the δ window, rebuilding chainT. Returns false when the
// anchors are exhausted or some prefix arc has no event left.
func (d *fusedDFS) advanceAnchor(pos int) bool {
	s0 := d.series[0]
anchors:
	for {
		d.anchorIdx++
		if d.anchorIdx >= len(s0) {
			return false
		}
		anchorT := s0[d.anchorIdx].T
		t := anchorT
		d.chainT[0] = t
		for i := 1; i < pos-1; i++ {
			si := d.series[i]
			j := sort.Search(len(si), func(k int) bool { return si[k].T > t })
			if j == len(si) {
				return false // no event after t on a prefix arc: hopeless
			}
			t = si[j].T
			if t > anchorT+d.delta {
				continue anchors // this anchor's window overflows already
			}
			d.chainT[i] = t
		}
		return true
	}
}

func (d *fusedDFS) used(w temporal.NodeID) bool {
	for v := 0; v < d.numV; v++ {
		if d.bound[v] && d.bind[v] == w {
			return true
		}
	}
	return false
}
