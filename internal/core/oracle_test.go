package core

import (
	"fmt"
	"sort"
	"strings"

	"flowmotif/internal/match"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// oracleEnumerate is a brute-force reference implementation working straight
// from Definitions 3.2/3.3: it enumerates every combination of contiguous
// per-edge spans over every structural match, keeps the valid ones (strict
// ordering, duration, per-edge flow), and filters to maximal instances.
// Maximal instances necessarily have contiguous edge-sets (a skipped middle
// event is always addable), so restricting to contiguous spans loses
// nothing. Exponential; only for tiny test graphs.
func oracleEnumerate(g *temporal.Graph, mo *motif.Motif, delta int64, phi float64) []*Instance {
	var out []*Instance
	m := mo.NumEdges()
	for _, mt := range match.Collect(g, mo, 0) {
		series := make([][]temporal.Point, m)
		for i := 0; i < m; i++ {
			series[i] = g.Series(mt.Arcs[i])
		}
		spans := make([]Span, m)
		var rec func(level int)
		rec = func(level int) {
			if level == m {
				in := buildOracleInstance(g, mo, mt, spans)
				if Validate(g, mo, delta, phi, in) != nil {
					return
				}
				if ok, _ := IsMaximal(g, mo, delta, in); !ok {
					return
				}
				out = append(out, in)
				return
			}
			s := series[level]
			for st := 0; st < len(s); st++ {
				// Ordering prune: this edge-set must start strictly after
				// the previous edge-set's last event.
				if level > 0 {
					prev := series[level-1]
					if s[st].T <= prev[spans[level-1].End-1].T {
						continue
					}
				}
				for en := st + 1; en <= len(s); en++ {
					// Duration prune: span from the first edge-set start.
					if s[en-1].T-series[0][spans[0].Start].T > delta && level > 0 {
						break
					}
					if level == 0 && s[en-1].T-s[st].T > delta {
						break
					}
					spans[level] = Span{Start: int32(st), End: int32(en)}
					rec(level + 1)
				}
			}
		}
		rec(0)
	}
	return out
}

func buildOracleInstance(g *temporal.Graph, mo *motif.Motif, mt match.Match, spans []Span) *Instance {
	m := mo.NumEdges()
	in := &Instance{
		Nodes:     append([]temporal.NodeID(nil), mt.Nodes...),
		Arcs:      append([]int(nil), mt.Arcs...),
		Spans:     append([]Span(nil), spans...),
		EdgeFlows: make([]float64, m),
	}
	minFlow := 0.0
	for i := 0; i < m; i++ {
		f := g.FlowRange(mt.Arcs[i], int(spans[i].Start), int(spans[i].End))
		in.EdgeFlows[i] = f
		if i == 0 || f < minFlow {
			minFlow = f
		}
	}
	in.Flow = minFlow
	in.Start = g.Series(mt.Arcs[0])[spans[0].Start].T
	in.End = g.Series(mt.Arcs[m-1])[spans[m-1].End-1].T
	return in
}

// instanceKey is a canonical serialization for set comparison.
func instanceKey(in *Instance) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%v a=%v s=", in.Nodes, in.Arcs)
	for _, sp := range in.Spans {
		fmt.Fprintf(&b, "[%d,%d)", sp.Start, sp.End)
	}
	return b.String()
}

func instanceKeySet(ins []*Instance) []string {
	keys := make([]string, len(ins))
	for i, in := range ins {
		keys[i] = instanceKey(in)
	}
	sort.Strings(keys)
	return keys
}

func keySetsEqual(a, b []string) (bool, string) {
	if len(a) != len(b) {
		return false, fmt.Sprintf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return false, fmt.Sprintf("first difference at %d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
	return true, ""
}
