package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"flowmotif/internal/gen"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// semanticKey renders an instance as a graph-independent string: bound
// nodes plus, per motif edge, the (t, f) events of its edge-set. Two
// instances over different Graph values (e.g. a band sub-graph) compare
// equal iff they denote the same instance.
func semanticKey(g *temporal.Graph, in *Instance) string {
	var b strings.Builder
	fmt.Fprintf(&b, "N%v", in.Nodes)
	for i, a := range in.Arcs {
		s := g.Series(a)[in.Spans[i].Start:in.Spans[i].End]
		fmt.Fprintf(&b, "|e%d", i)
		for _, p := range s {
			fmt.Fprintf(&b, ";%d:%g", p.T, p.F)
		}
	}
	return b.String()
}

func collectKeys(t *testing.T, g *temporal.Graph, mo *motif.Motif, p Params, lo, hi int64) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	ins, err := CollectRange(g, mo, p, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range ins {
		k := semanticKey(g, in)
		if out[k] {
			t.Fatalf("duplicate instance %s in band [%d,%d]", k, lo, hi)
		}
		out[k] = true
	}
	return out
}

func rangeTestGraph(t *testing.T) *temporal.Graph {
	t.Helper()
	evs, err := gen.Bitcoin(gen.BitcoinConfig{
		Nodes: 250, SeedTxns: 1200, Duration: 40000, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := temporal.NewGraph(evs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestEnumerateRangePartition checks that a partition of the time axis into
// anchor bands reproduces exactly the full enumeration, band by band, both
// over the full graph and over band sub-graphs holding only the events of
// (lo-δ, hi+δ] — the property the streaming engine is built on.
func TestEnumerateRangePartition(t *testing.T) {
	g := rangeTestGraph(t)
	minT, maxT := g.TimeSpan()
	events := g.Events()

	motifs := []*motif.Motif{
		motif.MustPath(0, 1, 2),
		motif.MustPath(0, 1, 2, 0),
		motif.MustPath(0, 1, 2, 3, 1),
	}
	for _, mo := range motifs {
		for _, p := range []Params{
			{Delta: 400, Phi: 0},
			{Delta: 900, Phi: 8},
		} {
			t.Run(fmt.Sprintf("%s/d%d_phi%g", mo.Name(), p.Delta, p.Phi), func(t *testing.T) {
				full := map[string]bool{}
				ins, err := Collect(g, mo, p, 0)
				if err != nil {
					t.Fatal(err)
				}
				for _, in := range ins {
					full[semanticKey(g, in)] = true
				}

				// Uneven band boundaries, including degenerate short bands.
				cuts := []int64{minT - 1, minT + 50, minT + 51, (minT + maxT) / 2, maxT - p.Delta, maxT}
				sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

				gotFull := map[string]bool{}
				gotSub := map[string]bool{}
				for i := 1; i < len(cuts); i++ {
					lo, hi := cuts[i-1]+1, cuts[i]
					for k := range collectKeys(t, g, mo, p, lo, hi) {
						if gotFull[k] {
							t.Fatalf("instance %s emitted by two bands", k)
						}
						gotFull[k] = true
					}

					// Band sub-graph: only events of (lo-δ-1, hi+δ].
					var kept []temporal.Event
					for _, e := range events {
						if e.T >= lo-p.Delta && e.T <= hi+p.Delta {
							kept = append(kept, e)
						}
					}
					sub, err := temporal.NewGraphWithNodes(g.NumNodes(), kept)
					if err != nil {
						t.Fatal(err)
					}
					for k := range collectKeys(t, sub, mo, p, lo, hi) {
						if gotSub[k] {
							t.Fatalf("instance %s emitted by two sub-graph bands", k)
						}
						gotSub[k] = true
					}
				}

				diffSets(t, "full-graph bands", full, gotFull)
				diffSets(t, "sub-graph bands", full, gotSub)
			})
		}
	}
}

func diffSets(t *testing.T, label string, want, got map[string]bool) {
	t.Helper()
	for k := range want {
		if !got[k] {
			t.Errorf("%s: missing instance %s", label, k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("%s: spurious instance %s", label, k)
		}
	}
	if len(want) != len(got) {
		t.Errorf("%s: %d instances, want %d", label, len(got), len(want))
	}
	if len(want) == 0 {
		t.Fatal("degenerate test: batch enumeration found no instances")
	}
}

// TestEnumerateRangeFullRange checks the unrestricted range reproduces
// Enumerate exactly, including stats, and that parallel range enumeration
// agrees with serial.
func TestEnumerateRangeFullRange(t *testing.T) {
	g := rangeTestGraph(t)
	mo := motif.MustPath(0, 1, 2, 0)
	p := Params{Delta: 600, Phi: 2}

	base, err := Collect(g, mo, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, in := range base {
		want[semanticKey(g, in)] = true
	}

	got := collectKeys(t, g, mo, p, math.MinInt64, math.MaxInt64)
	diffSets(t, "full int64 range", want, got)

	pp := p
	pp.Workers = 4
	diffSets(t, "parallel full range", want, collectParallelKeys(t, g, mo, pp))
}

func collectParallelKeys(t *testing.T, g *temporal.Graph, mo *motif.Motif, p Params) map[string]bool {
	t.Helper()
	var (
		keys = map[string]bool{}
		ch   = make(chan string, 1024)
		done = make(chan struct{})
	)
	go func() {
		for k := range ch {
			keys[k] = true
		}
		close(done)
	}()
	_, err := EnumerateRange(g, mo, p, math.MinInt64, math.MaxInt64, func(in *Instance) bool {
		ch <- semanticKey(g, in)
		return true
	})
	close(ch)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	return keys
}
