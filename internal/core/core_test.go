package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"flowmotif/internal/match"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// figure2Graph is the paper's running example (Figure 2), u1..u4 = 0..3.
func figure2Graph(t testing.TB) *temporal.Graph {
	t.Helper()
	g, err := temporal.NewGraph([]temporal.Event{
		{From: 0, To: 1, T: 13, F: 5},
		{From: 0, To: 1, T: 15, F: 7},
		{From: 2, To: 0, T: 10, F: 10},
		{From: 3, To: 0, T: 1, F: 2},
		{From: 3, To: 0, T: 3, F: 5},
		{From: 3, To: 2, T: 11, F: 10},
		{From: 1, To: 2, T: 18, F: 20},
		{From: 2, To: 3, T: 19, F: 5},
		{From: 2, To: 3, T: 21, F: 4},
		{From: 1, To: 3, T: 23, F: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// figure7Graph holds the series of the paper's Figure 7 structural match on
// a 3-cycle 0→1→2→0: e1 = (0,1), e2 = (1,2), e3 = (2,0).
func figure7Graph(t testing.TB) *temporal.Graph {
	t.Helper()
	g, err := temporal.NewGraph([]temporal.Event{
		{From: 0, To: 1, T: 10, F: 5},
		{From: 0, To: 1, T: 13, F: 2},
		{From: 0, To: 1, T: 15, F: 3},
		{From: 0, To: 1, T: 18, F: 7},
		{From: 1, To: 2, T: 9, F: 4},
		{From: 1, To: 2, T: 11, F: 3},
		{From: 1, To: 2, T: 16, F: 3},
		{From: 2, To: 0, T: 14, F: 4},
		{From: 2, To: 0, T: 19, F: 6},
		{From: 2, To: 0, T: 24, F: 3},
		{From: 2, To: 0, T: 25, F: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// figure7Match extracts the single structural match with binding (0,1,2).
func figure7Match(t testing.TB, g *temporal.Graph) []match.Match {
	t.Helper()
	for _, mt := range match.Collect(g, motif.MustPath(0, 1, 2, 0), 0) {
		if mt.Nodes[0] == 0 && mt.Nodes[1] == 1 && mt.Nodes[2] == 2 {
			return []match.Match{mt}
		}
	}
	t.Fatal("figure-7 match not found")
	return nil
}

// TestPaperFigure7Enumeration reproduces the paper's Algorithm-1 walkthrough
// (Figure 7): with δ=10, φ=0 the match has exactly four maximal instances,
// including the two spelled out in the text for prefix Tp=[10,10], and the
// window at anchor t=13 is skipped.
func TestPaperFigure7Enumeration(t *testing.T) {
	g := figure7Graph(t)
	mo := motif.MustPath(0, 1, 2, 0)
	mts := figure7Match(t, g)

	var got []*Instance
	stats, err := EnumerateMatches(g, mo, mts, Params{Delta: 10, Phi: 0}, func(in *Instance) bool {
		got = append(got, in)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]Span{
		{{0, 1}, {1, 2}, {0, 2}}, // [e1←{(10,5)}, e2←{(11,3)}, e3←{(14,4),(19,6)}]  (paper)
		{{0, 1}, {1, 3}, {1, 2}}, // [e1←{(10,5)}, e2←{(11,3),(16,3)}, e3←{(19,6)}]  (paper)
		{{0, 3}, {2, 3}, {1, 2}}, // [e1←{(10,5),(13,2),(15,3)}, e2←{(16,3)}, e3←{(19,6)}]
		{{2, 3}, {2, 3}, {1, 4}}, // [e1←{(15,3)}, e2←{(16,3)}, e3←{(19,6),(24,3),(25,2)}]
	}
	if len(got) != len(want) {
		for _, in := range got {
			t.Logf("got %v spans %v flows %v", in, in.Spans, in.EdgeFlows)
		}
		t.Fatalf("instances = %d, want %d", len(got), len(want))
	}
	for i, in := range got {
		if !reflect.DeepEqual(in.Spans, want[i]) {
			t.Errorf("instance %d spans = %v, want %v", i, in.Spans, want[i])
		}
	}
	wantFlows := []float64{3, 5, 3, 3}
	for i, in := range got {
		if math.Abs(in.Flow-wantFlows[i]) > 1e-12 {
			t.Errorf("instance %d flow = %v, want %v", i, in.Flow, wantFlows[i])
		}
	}
	// The paper explicitly skips window position [13,23].
	if stats.WindowsSkipped < 1 {
		t.Errorf("WindowsSkipped = %d, want >= 1", stats.WindowsSkipped)
	}
	// Every instance is valid and maximal.
	for i, in := range got {
		if err := Validate(g, mo, 10, 0, in); err != nil {
			t.Errorf("instance %d invalid: %v", i, err)
		}
		if ok, why := IsMaximal(g, mo, 10, in); !ok {
			t.Errorf("instance %d not maximal: %s", i, why)
		}
	}
}

// TestPaperFigure7Phi reproduces the φ pruning discussion: with φ=5 only the
// instance [e1←{(10,5)}, e2←{(11,3),(16,3)}, e3←{(19,6)}] survives.
func TestPaperFigure7Phi(t *testing.T) {
	g := figure7Graph(t)
	mo := motif.MustPath(0, 1, 2, 0)
	mts := figure7Match(t, g)
	var got []*Instance
	stats, err := EnumerateMatches(g, mo, mts, Params{Delta: 10, Phi: 5}, func(in *Instance) bool {
		got = append(got, in)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("instances = %d, want 1", len(got))
	}
	wantSpans := []Span{{0, 1}, {1, 3}, {1, 2}}
	if !reflect.DeepEqual(got[0].Spans, wantSpans) {
		t.Errorf("spans = %v, want %v", got[0].Spans, wantSpans)
	}
	if got[0].Flow != 5 {
		t.Errorf("flow = %v, want 5", got[0].Flow)
	}
	if stats.PhiPruned == 0 && stats.AvailPruned == 0 {
		t.Error("expected some φ pruning")
	}
}

// TestPaperFigure4a reproduces the Figure 4(a) example: in the Figure-2
// graph with δ=10 and φ=7, M(3,3) has exactly one maximal instance:
// [e1←{(10,10)}, e2←{(13,5),(15,7)}, e3←{(18,20)}] on binding (u3,u1,u2).
func TestPaperFigure4a(t *testing.T) {
	g := figure2Graph(t)
	mo := motif.MustPath(0, 1, 2, 0)
	ins, err := Collect(g, mo, Params{Delta: 10, Phi: 7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 1 {
		for _, in := range ins {
			t.Logf("got %v", in)
		}
		t.Fatalf("instances = %d, want 1", len(ins))
	}
	in := ins[0]
	if !reflect.DeepEqual(in.Nodes, []temporal.NodeID{2, 0, 1}) {
		t.Errorf("nodes = %v, want [2 0 1]", in.Nodes)
	}
	if !reflect.DeepEqual(in.EdgeFlows, []float64{10, 12, 20}) {
		t.Errorf("edge flows = %v, want [10 12 20]", in.EdgeFlows)
	}
	if in.Flow != 10 || in.Start != 10 || in.End != 18 {
		t.Errorf("flow/span = %v/[%d,%d], want 10/[10,18]", in.Flow, in.Start, in.End)
	}
	// Figure 4(b) — the same instance minus (13,5) — must not appear; it is
	// non-maximal. With only one instance emitted this holds by count; also
	// verify the validator agrees.
	nonMax := in.Clone()
	nonMax.Spans[1].Start++ // drop (13,5)
	nonMax.EdgeFlows[1] = 7
	nonMax.Flow = 7
	nonMax.Start = 10
	if err := Validate(g, mo, 10, 7, nonMax); err != nil {
		t.Fatalf("figure 4(b) instance should be valid (just not maximal): %v", err)
	}
	if ok, _ := IsMaximal(g, mo, 10, nonMax); ok {
		t.Error("figure 4(b) instance wrongly judged maximal")
	}
}

// TestPaperTable2DP reproduces the DP walkthrough: top-1 flow is 5,
// attained by [e1←{(10,5)}, e2←{(11,3),(16,3)}, e3←{(19,6)}].
func TestPaperTable2DP(t *testing.T) {
	g := figure7Graph(t)
	mo := motif.MustPath(0, 1, 2, 0)
	mts := figure7Match(t, g)

	flow, _, err := TopOneDPMatches(g, mo, mts, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 5 {
		t.Errorf("DP top-1 flow = %v, want 5 (paper Table 2)", flow)
	}
	fast, _, err := TopOneDPMatches(g, mo, mts, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if fast != 5 {
		t.Errorf("fast DP top-1 flow = %v, want 5", fast)
	}
}

func TestTopOneDPInstanceBacktracking(t *testing.T) {
	g := figure7Graph(t)
	mo := motif.MustPath(0, 1, 2, 0)
	flow, in, err := TopOneDPInstance(g, mo, 10)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 5 {
		t.Fatalf("flow = %v, want 5", flow)
	}
	if in == nil {
		t.Fatal("nil instance")
	}
	if in.Flow != 5 {
		t.Errorf("instance flow = %v, want 5", in.Flow)
	}
	if err := Validate(g, mo, 10, 0, in); err != nil {
		t.Errorf("DP instance invalid: %v", err)
	}
}

func TestTopKOrderingAndThreshold(t *testing.T) {
	g := figure7Graph(t)
	mo := motif.MustPath(0, 1, 2, 0)

	all, err := Collect(g, mo, Params{Delta: 10, Phi: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	flows := make([]float64, len(all))
	for i, in := range all {
		flows[i] = in.Flow
	}
	for k := 1; k <= len(all)+2; k++ {
		got, _, err := TopK(g, mo, 10, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		wantN := k
		if wantN > len(all) {
			wantN = len(all)
		}
		if len(got) != wantN {
			t.Fatalf("TopK(%d) returned %d", k, len(got))
		}
		// Flows must be the k largest, descending.
		sorted := append([]float64(nil), flows...)
		for i := 0; i < len(sorted); i++ {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] > sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		for i, in := range got {
			if math.Abs(in.Flow-sorted[i]) > 1e-12 {
				t.Errorf("TopK(%d)[%d].Flow = %v, want %v", k, i, in.Flow, sorted[i])
			}
		}
	}
	if _, _, err := TopK(g, mo, 10, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestTopOneMatchesEnumerationMax(t *testing.T) {
	g := figure2Graph(t)
	for _, mo := range []*motif.Motif{
		motif.MustPath(0, 1, 2),
		motif.MustPath(0, 1, 2, 0),
		motif.MustPath(0, 1, 2, 3),
	} {
		all, err := Collect(g, mo, Params{Delta: 12, Phi: 0}, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantMax := 0.0
		for _, in := range all {
			if in.Flow > wantMax {
				wantMax = in.Flow
			}
		}
		top, _, err := TopOne(g, mo, 12, 1)
		if err != nil {
			t.Fatal(err)
		}
		gotMax := 0.0
		if top != nil {
			gotMax = top.Flow
		}
		if math.Abs(gotMax-wantMax) > 1e-12 {
			t.Errorf("%v: TopOne = %v, enumeration max = %v", mo, gotMax, wantMax)
		}
		dp, _, err := TopOneDP(g, mo, 12)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dp-wantMax) > 1e-12 {
			t.Errorf("%v: DP = %v, want %v", mo, dp, wantMax)
		}
		dpFast, _, err := TopOneDPFast(g, mo, 12)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dpFast-dp) > 1e-12 {
			t.Errorf("%v: DP fast = %v, naive = %v", mo, dpFast, dp)
		}
	}
}

func TestSingleEdgeMotif(t *testing.T) {
	// M(2,1): one motif edge; maximal instances are the maximal-window
	// suffix/prefix series chunks.
	g, err := temporal.NewGraph([]temporal.Event{
		{From: 0, To: 1, T: 0, F: 1},
		{From: 0, To: 1, T: 5, F: 2},
		{From: 0, To: 1, T: 100, F: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	mo := motif.MustPath(0, 1)
	ins, err := Collect(g, mo, Params{Delta: 10, Phi: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Windows: anchor 0 → {0,5}; anchor 5 → {5} skipped (5 <= 0+10);
	// anchor 100 → {100}.
	if len(ins) != 2 {
		for _, in := range ins {
			t.Logf("%v spans %v", in, in.Spans)
		}
		t.Fatalf("instances = %d, want 2", len(ins))
	}
	if ins[0].EdgeFlows[0] != 3 || ins[1].EdgeFlows[0] != 4 {
		t.Errorf("flows = %v, %v; want 3, 4", ins[0].EdgeFlows[0], ins[1].EdgeFlows[0])
	}
	for _, in := range ins {
		if ok, why := IsMaximal(g, mo, 10, in); !ok {
			t.Errorf("not maximal: %s", why)
		}
	}
}

func TestDeltaZero(t *testing.T) {
	// δ=0: all events of an instance share one timestamp, but strict
	// inter-edge ordering then forbids m >= 2 instances entirely.
	g := figure2Graph(t)
	ins, err := Collect(g, motif.MustPath(0, 1, 2), Params{Delta: 0, Phi: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 0 {
		t.Errorf("δ=0 chain instances = %d, want 0", len(ins))
	}
	// Single-edge motifs still match individual events.
	ins1, err := Collect(g, motif.MustPath(0, 1), Params{Delta: 0, Phi: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins1) != g.NumEvents() {
		t.Errorf("δ=0 single-edge instances = %d, want %d", len(ins1), g.NumEvents())
	}
}

func TestParamValidation(t *testing.T) {
	g := figure2Graph(t)
	mo := motif.MustPath(0, 1, 2)
	if _, err := Enumerate(g, mo, Params{Delta: -1}, nil); err == nil {
		t.Error("negative delta accepted")
	}
	if _, err := Enumerate(g, mo, Params{Delta: 1, Phi: -0.5}, nil); err == nil {
		t.Error("negative phi accepted")
	}
}

func TestEarlyStopVisitor(t *testing.T) {
	g := figure7Graph(t)
	mo := motif.MustPath(0, 1, 2, 0)
	n := 0
	_, err := Enumerate(g, mo, Params{Delta: 10, Phi: 0}, func(in *Instance) bool {
		n++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("visitor called %d times after stop", n)
	}
}

func TestCountMatchesCollect(t *testing.T) {
	g := figure2Graph(t)
	for _, mo := range []*motif.Motif{motif.MustPath(0, 1, 2), motif.MustPath(0, 1, 2, 0)} {
		n, _, err := Count(g, mo, Params{Delta: 10, Phi: 0})
		if err != nil {
			t.Fatal(err)
		}
		ins, err := Collect(g, mo, Params{Delta: 10, Phi: 0}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(len(ins)) {
			t.Errorf("%v: Count=%d, Collect=%d", mo, n, len(ins))
		}
	}
}

func TestAblationAvailPruneSameResults(t *testing.T) {
	g := figure7Graph(t)
	mo := motif.MustPath(0, 1, 2, 0)
	for _, phi := range []float64{0, 2, 5, 8} {
		a, err := Collect(g, mo, Params{Delta: 10, Phi: phi}, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Collect(g, mo, Params{Delta: 10, Phi: phi, DisableAvailPrune: true}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ok, why := keySetsEqual(instanceKeySet(a), instanceKeySet(b)); !ok {
			t.Errorf("φ=%v: pruning changed results: %s", phi, why)
		}
	}
}

func TestParallelEqualsSerial(t *testing.T) {
	g := randomGraph(99, 14, 160, 60)
	for _, mo := range []*motif.Motif{
		motif.MustPath(0, 1, 2),
		motif.MustPath(0, 1, 2, 0),
	} {
		for _, phi := range []float64{0, 4} {
			p := Params{Delta: 15, Phi: phi}
			serial, _, err := Count(g, mo, p)
			if err != nil {
				t.Fatal(err)
			}
			p.Workers = 4
			par, _, err := Count(g, mo, p)
			if err != nil {
				t.Fatal(err)
			}
			if serial != par {
				t.Errorf("%v φ=%v: serial=%d parallel=%d", mo, phi, serial, par)
			}
		}
	}
}

func TestParallelTopKEqualsSerial(t *testing.T) {
	g := randomGraph(3, 12, 150, 50)
	mo := motif.MustPath(0, 1, 2)
	ser, _, err := TopK(g, mo, 20, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := TopK(g, mo, 20, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ser) != len(par) {
		t.Fatalf("lengths: %d vs %d", len(ser), len(par))
	}
	for i := range ser {
		if math.Abs(ser[i].Flow-par[i].Flow) > 1e-12 {
			t.Errorf("flow %d: %v vs %v", i, ser[i].Flow, par[i].Flow)
		}
	}
}

// randomGraph builds a deterministic random multigraph for differential
// tests: timestamps are unique, flows are small integers.
func randomGraph(seed int64, nodes, events, tmax int) *temporal.Graph {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]temporal.Event, 0, events)
	perm := rng.Perm(tmax * 4)
	for i := 0; i < events; i++ {
		evs = append(evs, temporal.Event{
			From: temporal.NodeID(rng.Intn(nodes)),
			To:   temporal.NodeID(rng.Intn(nodes)),
			T:    int64(perm[i%len(perm)]),
			F:    float64(1 + rng.Intn(9)),
		})
	}
	g, err := temporal.NewGraph(evs)
	if err != nil {
		panic(err)
	}
	return g
}

// TestDifferentialVsOracle is the cornerstone correctness test: across many
// random graphs, motifs and thresholds, the optimized enumeration must
// produce exactly the oracle's maximal-instance set.
func TestDifferentialVsOracle(t *testing.T) {
	motifs := []*motif.Motif{
		motif.MustPath(0, 1),
		motif.MustPath(0, 1, 2),
		motif.MustPath(0, 1, 0),
		motif.MustPath(0, 1, 2, 0),
		motif.MustPath(0, 1, 2, 3),
		motif.MustPath(0, 1, 2, 3, 1),
	}
	for seed := int64(0); seed < 25; seed++ {
		g := randomGraph(seed, 5, 40, 30)
		for _, mo := range motifs {
			for _, delta := range []int64{5, 12, 40} {
				for _, phi := range []float64{0, 3, 7} {
					want := oracleEnumerate(g, mo, delta, phi)
					got, err := Collect(g, mo, Params{Delta: delta, Phi: phi}, 0)
					if err != nil {
						t.Fatal(err)
					}
					if ok, why := keySetsEqual(instanceKeySet(got), instanceKeySet(want)); !ok {
						t.Errorf("seed=%d motif=%v δ=%d φ=%v: %s", seed, mo, delta, phi, why)
					}
					for _, in := range got {
						if err := Validate(g, mo, delta, phi, in); err != nil {
							t.Errorf("seed=%d motif=%v: invalid instance: %v", seed, mo, err)
						}
					}
				}
			}
		}
	}
}

// TestDifferentialWithTies repeats the oracle comparison on graphs with many
// duplicate timestamps (facebook-style 30-second buckets).
func TestDifferentialWithTies(t *testing.T) {
	motifs := []*motif.Motif{
		motif.MustPath(0, 1, 2),
		motif.MustPath(0, 1, 2, 0),
	}
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		evs := make([]temporal.Event, 50)
		for i := range evs {
			evs[i] = temporal.Event{
				From: temporal.NodeID(rng.Intn(5)),
				To:   temporal.NodeID(rng.Intn(5)),
				T:    int64(rng.Intn(8)) * 30, // heavy ties
				F:    float64(1 + rng.Intn(5)),
			}
		}
		g, err := temporal.NewGraph(evs)
		if err != nil {
			t.Fatal(err)
		}
		for _, mo := range motifs {
			for _, delta := range []int64{30, 90} {
				for _, phi := range []float64{0, 4} {
					want := oracleEnumerate(g, mo, delta, phi)
					got, err := Collect(g, mo, Params{Delta: delta, Phi: phi}, 0)
					if err != nil {
						t.Fatal(err)
					}
					if ok, why := keySetsEqual(instanceKeySet(got), instanceKeySet(want)); !ok {
						t.Errorf("seed=%d motif=%v δ=%d φ=%v: %s", seed, mo, delta, phi, why)
					}
				}
			}
		}
	}
}

// TestDPMatchesOracleMax cross-checks both DP variants against the oracle's
// maximum instance flow on random graphs.
func TestDPMatchesOracleMax(t *testing.T) {
	motifs := []*motif.Motif{
		motif.MustPath(0, 1),
		motif.MustPath(0, 1, 2),
		motif.MustPath(0, 1, 2, 0),
	}
	for seed := int64(50); seed < 70; seed++ {
		g := randomGraph(seed, 5, 35, 25)
		for _, mo := range motifs {
			for _, delta := range []int64{6, 15} {
				want := 0.0
				for _, in := range oracleEnumerate(g, mo, delta, 0) {
					if in.Flow > want {
						want = in.Flow
					}
				}
				dp, _, err := TopOneDP(g, mo, delta)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(dp-want) > 1e-9 {
					t.Errorf("seed=%d motif=%v δ=%d: DP=%v oracle=%v", seed, mo, delta, dp, want)
				}
				fast, _, err := TopOneDPFast(g, mo, delta)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(fast-dp) > 1e-9 {
					t.Errorf("seed=%d motif=%v δ=%d: fast=%v naive=%v", seed, mo, delta, fast, dp)
				}
				flow, in, err := TopOneDPInstance(g, mo, delta)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(flow-want) > 1e-9 {
					t.Errorf("seed=%d motif=%v δ=%d: instance flow=%v want %v", seed, mo, delta, flow, want)
				}
				if in != nil {
					if err := Validate(g, mo, delta, 0, in); err != nil {
						t.Errorf("seed=%d: DP instance invalid: %v", seed, err)
					}
					if math.Abs(in.Flow-want) > 1e-9 {
						t.Errorf("seed=%d: DP instance flow %v != max %v", seed, in.Flow, want)
					}
				} else if want > 0 {
					t.Errorf("seed=%d: nil instance despite max %v", seed, want)
				}
			}
		}
	}
}

func TestTopKMatchesFullEnumeration(t *testing.T) {
	for seed := int64(200); seed < 210; seed++ {
		g := randomGraph(seed, 6, 50, 40)
		mo := motif.MustPath(0, 1, 2)
		all, err := Collect(g, mo, Params{Delta: 10, Phi: 0}, 0)
		if err != nil {
			t.Fatal(err)
		}
		flows := make([]float64, len(all))
		for i, in := range all {
			flows[i] = in.Flow
		}
		// Selection sort descending (tiny).
		for i := 0; i < len(flows); i++ {
			for j := i + 1; j < len(flows); j++ {
				if flows[j] > flows[i] {
					flows[i], flows[j] = flows[j], flows[i]
				}
			}
		}
		for _, k := range []int{1, 3, 10} {
			got, _, err := TopK(g, mo, 10, k, 1)
			if err != nil {
				t.Fatal(err)
			}
			n := k
			if n > len(flows) {
				n = len(flows)
			}
			if len(got) != n {
				t.Fatalf("seed=%d k=%d: got %d instances, want %d", seed, k, len(got), n)
			}
			for i := 0; i < n; i++ {
				if math.Abs(got[i].Flow-flows[i]) > 1e-12 {
					t.Errorf("seed=%d k=%d: flow[%d]=%v, want %v", seed, k, i, got[i].Flow, flows[i])
				}
			}
		}
	}
}

func TestPerMatchAndPerWindowTopOne(t *testing.T) {
	g := figure7Graph(t)
	mo := motif.MustPath(0, 1, 2, 0)

	best := 0.0
	matches := 0
	err := TopOnePerMatch(g, mo, 10, func(mt *match.Match, flow float64) {
		matches++
		if flow > best {
			best = flow
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if matches != 3 { // three rotations of the triangle
		t.Errorf("per-match callbacks = %d, want 3", matches)
	}
	if best != 5 {
		t.Errorf("best per-match flow = %v, want 5", best)
	}

	winBest := 0.0
	windows := 0
	err = TopOnePerWindow(g, mo, 10, func(mt *match.Match, ts int64, flow float64) {
		windows++
		if flow > winBest {
			winBest = flow
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if windows == 0 {
		t.Error("no windows reported")
	}
	if winBest != 5 {
		t.Errorf("best per-window flow = %v, want 5", winBest)
	}
}

func TestStatsAccounting(t *testing.T) {
	g := figure7Graph(t)
	mo := motif.MustPath(0, 1, 2, 0)
	_, stats, err := Count(g, mo, Params{Delta: 10, Phi: 0})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Matches != 3 {
		t.Errorf("Matches = %d, want 3", stats.Matches)
	}
	if stats.Anchors == 0 || stats.WindowsProcessed == 0 {
		t.Errorf("stats not populated: %+v", stats)
	}
	// The (0,1,2) rotation contributes the four figure-7 instances; the
	// rotations (1,2,0) and (2,0,1) contribute one each.
	if stats.Instances != 6 {
		t.Errorf("Instances = %d, want 6", stats.Instances)
	}
}

// TestDeterministicOrder asserts the single-worker enumeration emits
// instances in a stable order across runs.
func TestDeterministicOrder(t *testing.T) {
	g := randomGraph(11, 8, 120, 80)
	mo := motif.MustPath(0, 1, 2)
	var first []string
	for run := 0; run < 3; run++ {
		var keys []string
		_, err := Enumerate(g, mo, Params{Delta: 25, Phi: 1}, func(in *Instance) bool {
			keys = append(keys, instanceKey(in))
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			first = keys
			continue
		}
		if len(keys) != len(first) {
			t.Fatalf("run %d: %d instances vs %d", run, len(keys), len(first))
		}
		for i := range keys {
			if keys[i] != first[i] {
				t.Fatalf("run %d: order diverged at %d", run, i)
			}
		}
	}
}

// TestLongChainMotif exercises a deep (6-edge) chain against the oracle:
// recursion depth, forced splits and window bounds at m above the catalog
// sizes. Kept small — the oracle is exponential in the chain length.
func TestLongChainMotif(t *testing.T) {
	mo := motif.MustPath(0, 1, 2, 3, 4, 5, 6)
	for seed := int64(70); seed < 72; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// A line-ish graph so deep chains actually exist.
		var evs []temporal.Event
		for i := 0; i < 7; i++ {
			for k := 0; k < 2; k++ {
				evs = append(evs, temporal.Event{
					From: temporal.NodeID(i),
					To:   temporal.NodeID(i + 1),
					T:    int64(i*10 + k*3 + rng.Intn(3)),
					F:    float64(1 + rng.Intn(4)),
				})
			}
		}
		g, err := temporal.NewGraph(evs)
		if err != nil {
			t.Fatal(err)
		}
		for _, phi := range []float64{0, 3} {
			want := oracleEnumerate(g, mo, 70, phi)
			got, err := Collect(g, mo, Params{Delta: 70, Phi: phi}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if ok, why := keySetsEqual(instanceKeySet(got), instanceKeySet(want)); !ok {
				t.Errorf("seed=%d φ=%v: %s", seed, phi, why)
			}
		}
	}
}

// TestInstanceCloneIndependent guards the Clone contract used by retainers.
func TestInstanceCloneIndependent(t *testing.T) {
	g := figure7Graph(t)
	mo := motif.MustPath(0, 1, 2, 0)
	ins, err := Collect(g, mo, Params{Delta: 10, Phi: 0}, 1)
	if err != nil || len(ins) == 0 {
		t.Fatal(err)
	}
	orig := ins[0]
	cl := orig.Clone()
	cl.Nodes[0] = 99
	cl.Spans[0].Start = 77
	cl.EdgeFlows[0] = -1
	if orig.Nodes[0] == 99 || orig.Spans[0].Start == 77 || orig.EdgeFlows[0] == -1 {
		t.Error("Clone shares storage with the original")
	}
}
