package core

import (
	"container/heap"
	"errors"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"flowmotif/internal/match"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// TopK finds the k maximal instances of mo in g with the highest flow,
// among instances satisfying the duration constraint delta (the paper's §5:
// φ is replaced by a floating threshold — the flow of the current k-th best
// instance — which prunes exactly like φ does). The result is sorted by
// flow descending (ties broken by start time, then node binding, for
// determinism). Fewer than k instances are returned if the graph has fewer.
func TopK(g *temporal.Graph, mo *motif.Motif, delta int64, k int, workers int) ([]*Instance, EnumStats, error) {
	return topK(g, mo, fusedSource(g, mo, delta), delta, k, workers)
}

// TopKMatches is TopK over pre-collected structural matches (instrumented
// phase-P2-only mode, used for Figure 12 timings).
func TopKMatches(g *temporal.Graph, mo *motif.Motif, matches []match.Match, delta int64, k int) ([]*Instance, EnumStats, error) {
	return topK(g, mo, sliceSource(matches), delta, k, 1)
}

func topK(g *temporal.Graph, mo *motif.Motif, src matchSource, delta int64, k int, workers int) ([]*Instance, EnumStats, error) {
	if k <= 0 {
		return nil, EnumStats{}, errors.New("core: k must be positive")
	}
	if delta < 0 {
		return nil, EnumStats{}, errors.New("core: Delta must be non-negative")
	}
	h := &topkHeap{k: k}
	h.threshold.Store(math.Float64bits(0))

	// Floating threshold: once the heap is full, an edge-set (and hence an
	// instance, whose flow is the min over edge-sets) must strictly beat
	// the k-th flow to matter.
	pass := func(f float64) bool {
		t := math.Float64frombits(h.threshold.Load())
		if h.full.Load() {
			return f > t
		}
		return true
	}
	visit := func(in *Instance) bool {
		h.mu.Lock()
		h.push(in)
		h.mu.Unlock()
		return true
	}

	var stats EnumStats
	p := Params{Delta: delta, Workers: workers}
	if workers > 1 {
		var err error
		stats, err = enumerateParallel(g, mo, p, pass, math.MinInt64, math.MaxInt64, visit)
		if err != nil {
			return nil, stats, err
		}
	} else {
		stats = enumerate(g, src, mo, p, pass, math.MinInt64, math.MaxInt64, visit)
	}

	out := make([]*Instance, len(h.items))
	copy(out, h.items)
	sort.Slice(out, func(i, j int) bool { return instanceLess(out[j], out[i]) })
	return out, stats, nil
}

// TopOne returns the single maximal instance with the highest flow, or nil
// if the motif has no instance under delta.
func TopOne(g *temporal.Graph, mo *motif.Motif, delta int64, workers int) (*Instance, EnumStats, error) {
	res, stats, err := TopK(g, mo, delta, 1, workers)
	if err != nil || len(res) == 0 {
		return nil, stats, err
	}
	return res[0], stats, nil
}

// instanceLess is a deterministic total order: flow ascending, then start
// time, end time, and node binding.
func instanceLess(a, b *Instance) bool {
	if a.Flow != b.Flow {
		return a.Flow < b.Flow
	}
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.End != b.End {
		return a.End < b.End
	}
	for i := range a.Nodes {
		if i >= len(b.Nodes) {
			return false
		}
		if a.Nodes[i] != b.Nodes[i] {
			return a.Nodes[i] < b.Nodes[i]
		}
	}
	return len(a.Nodes) < len(b.Nodes)
}

// topkHeap is a bounded min-heap on instance flow with an atomically
// readable threshold so passFunc never takes the lock.
type topkHeap struct {
	mu        sync.Mutex
	items     []*Instance
	k         int
	threshold atomic.Uint64 // Float64bits of the k-th flow
	full      atomic.Bool
}

func (h *topkHeap) Len() int           { return len(h.items) }
func (h *topkHeap) Less(i, j int) bool { return instanceLess(h.items[i], h.items[j]) }
func (h *topkHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *topkHeap) Push(x interface{}) { h.items = append(h.items, x.(*Instance)) }
func (h *topkHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// push inserts in if it beats the current k-th flow; callers hold mu.
func (h *topkHeap) push(in *Instance) {
	if len(h.items) < h.k {
		heap.Push(h, in)
		if len(h.items) == h.k {
			h.full.Store(true)
			h.threshold.Store(math.Float64bits(h.items[0].Flow))
		}
		return
	}
	if in.Flow <= h.items[0].Flow {
		return
	}
	h.items[0] = in
	heap.Fix(h, 0)
	h.threshold.Store(math.Float64bits(h.items[0].Flow))
}
