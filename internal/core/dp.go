package core

import (
	"errors"
	"sort"

	"flowmotif/internal/match"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// TopOneDP finds the maximum flow of any instance of mo in g under delta
// using the paper's dynamic-programming module (Algorithm 2, §5.1),
// faithfully implementing the O(τ²·m)-per-window recurrence of Equation 2.
// It returns 0 when the motif has no instance.
func TopOneDP(g *temporal.Graph, mo *motif.Motif, delta int64) (float64, EnumStats, error) {
	return topOneDP(g, mo, fusedSource(g, mo, delta), delta, false, nil)
}

// TopOneDPFast is TopOneDP with an optimized inner maximization: for fixed
// i, Flow([t1,t_{j-1}],κ-1) is non-decreasing in j while flow([t_j,t_i],κ)
// is non-increasing, so the best split is found by binary search, giving
// O(τ log τ · m) per window. Results are identical to TopOneDP; the pair is
// benchmarked as an ablation (see DESIGN.md §6).
func TopOneDPFast(g *temporal.Graph, mo *motif.Motif, delta int64) (float64, EnumStats, error) {
	return topOneDP(g, mo, fusedSource(g, mo, delta), delta, true, nil)
}

// TopOneDPMatches runs the DP module over pre-collected structural matches
// (phase-P2-only instrumented mode, used for Figure 12 timings).
func TopOneDPMatches(g *temporal.Graph, mo *motif.Motif, matches []match.Match, delta int64, fast bool) (float64, EnumStats, error) {
	return topOneDP(g, mo, sliceSource(matches), delta, fast, nil)
}

// TopOneDPInstance additionally reconstructs an instance attaining the
// maximum flow by backtracking through the DP table (the bold cells of the
// paper's Table 2). The returned instance is valid but not necessarily
// maximal; its maximal extension attains the same flow. It returns a nil
// instance when the motif has no instance.
func TopOneDPInstance(g *temporal.Graph, mo *motif.Motif, delta int64) (float64, *Instance, error) {
	var best *Instance
	flow, _, err := topOneDP(g, mo, fusedSource(g, mo, delta), delta, false, func(in *Instance) {
		best = in
	})
	return flow, best, err
}

// TopOnePerMatch reports the maximum instance flow for every structural
// match Gs (the paper's §5.1 "Extensibility": comparing entity groups by
// their max-flow interactions). fn receives 0 for matches without any
// instance. Matches are visited in deterministic P1 order.
func TopOnePerMatch(g *temporal.Graph, mo *motif.Motif, delta int64, fn func(mt *match.Match, flow float64)) error {
	if delta < 0 {
		return errors.New("core: Delta must be non-negative")
	}
	r := newDPRunner(g, mo, delta, true, nil)
	match.Stream(g, mo, func(mt *match.Match) bool {
		best := 0.0
		r.run(mt, func(_ int64, f float64) {
			if f > best {
				best = f
			}
		})
		fn(mt, best)
		return true
	})
	return nil
}

// TopOnePerWindow reports the maximum instance flow for every processed
// window position of every structural match (the paper's §5.1: comparing
// interaction volume across time periods). fn receives the window start
// time and the best flow in that window (windows with no instance are
// reported with flow 0).
func TopOnePerWindow(g *temporal.Graph, mo *motif.Motif, delta int64, fn func(mt *match.Match, windowStart int64, flow float64)) error {
	if delta < 0 {
		return errors.New("core: Delta must be non-negative")
	}
	r := newDPRunner(g, mo, delta, true, nil)
	match.Stream(g, mo, func(mt *match.Match) bool {
		r.run(mt, func(ts int64, f float64) { fn(mt, ts, f) })
		return true
	})
	return nil
}

func topOneDP(g *temporal.Graph, mo *motif.Motif, src matchSource, delta int64, fast bool, onBest func(*Instance)) (float64, EnumStats, error) {
	if delta < 0 {
		return 0, EnumStats{}, errors.New("core: Delta must be non-negative")
	}
	r := newDPRunner(g, mo, delta, fast, onBest)
	src(func(mt *match.Match) bool {
		r.stats.Matches++
		r.run(mt, nil)
		return true
	})
	return r.best, r.stats, nil
}

// dpRunner executes Algorithm 2 per structural match, reusing scratch
// buffers across windows and matches.
type dpRunner struct {
	g      *temporal.Graph
	delta  int64
	fast   bool
	onBest func(*Instance) // non-nil enables backtracking

	m      int
	series [][]temporal.Point
	arcs   []int
	nodes  []temporal.NodeID
	lb, ub []int

	times   []int64     // merged event times of the current window
	cums    [][]float64 // cums[κ][i]: flow of edge κ events in [t0, times[i]]
	ptrs    [][]int32   // ptrs[κ][i]: series index after the last counted event
	choices [][]int32   // choices[κ][i]: argmax split j (backtracking)
	prev    []float64
	cur     []float64

	best  float64
	stats EnumStats
}

func newDPRunner(g *temporal.Graph, mo *motif.Motif, delta int64, fast bool, onBest func(*Instance)) *dpRunner {
	m := mo.NumEdges()
	r := &dpRunner{
		g:      g,
		delta:  delta,
		fast:   fast,
		onBest: onBest,
		m:      m,
		series: make([][]temporal.Point, m),
		lb:     make([]int, m),
		ub:     make([]int, m),
		cums:   make([][]float64, m),
		ptrs:   make([][]int32, m),
	}
	if onBest != nil {
		r.choices = make([][]int32, m)
	}
	return r
}

// run applies the DP to every window of one structural match. Each
// processed window reports its best flow through report (if non-nil) and
// updates the global best.
func (r *dpRunner) run(mt *match.Match, report func(windowStart int64, flow float64)) {
	m := r.m
	for i := 0; i < m; i++ {
		r.series[i] = r.g.Series(mt.Arcs[i])
		r.lb[i] = 0
		r.ub[i] = 0
	}
	r.arcs = mt.Arcs
	r.nodes = mt.Nodes

	s0 := r.series[0]
	last := r.series[m-1]

	// Same fast feasibility reject as the enumerator (see enumerate.go).
	aStart := 0
	lastT := last[len(last)-1].T
	if m > 1 {
		tprev := s0[0].T
		for i := 1; i < m; i++ {
			s := r.series[i]
			idx := sort.Search(len(s), func(k int) bool { return s[k].T > tprev })
			if idx == len(s) {
				return
			}
			tprev = s[idx].T
		}
		aStart = sort.Search(len(s0), func(k int) bool { return s0[k].T+r.delta >= tprev })
		if aStart == len(s0) {
			return
		}
	}

	for a := aStart; a < len(s0); a++ {
		if m > 1 && s0[a].T >= lastT {
			break
		}
		ts := s0[a].T
		te := ts + r.delta
		r.stats.Anchors++
		for j := 1; j < m; j++ {
			s := r.series[j]
			for r.lb[j] < len(s) && s[r.lb[j]].T <= ts {
				r.lb[j]++
			}
		}
		for j := 0; j < m; j++ {
			s := r.series[j]
			for r.ub[j] < len(s) && s[r.ub[j]].T <= te {
				r.ub[j]++
			}
		}
		lbLast := r.lb[m-1]
		if m == 1 {
			lbLast = a
		}
		if r.ub[m-1] <= lbLast {
			continue
		}
		// Same maximality skip rule as enumeration: any instance here has a
		// superset (with at least the flow) in an earlier window.
		if a > 0 && last[r.ub[m-1]-1].T <= s0[a-1].T+r.delta {
			r.stats.WindowsSkipped++
			continue
		}
		r.stats.WindowsProcessed++
		flow := r.window(a, ts)
		if report != nil {
			report(ts, flow)
		}
	}
}

// window runs the DP recurrence on the window anchored at series-0 index a
// and returns the best instance flow within it.
func (r *dpRunner) window(a int, ts int64) float64 {
	m := r.m

	// Merge the in-window event times of all edges (ascending, deduped).
	r.times = r.times[:0]
	starts := make([]int, m) // reused small; m <= 16
	for j := 0; j < m; j++ {
		if j == 0 {
			starts[j] = a
		} else {
			starts[j] = r.lb[j]
		}
	}
	for {
		bestT := int64(0)
		bestJ := -1
		for j := 0; j < m; j++ {
			if starts[j] < r.ub[j] {
				t := r.series[j][starts[j]].T
				if bestJ == -1 || t < bestT {
					bestT, bestJ = t, j
				}
			}
		}
		if bestJ == -1 {
			break
		}
		if len(r.times) == 0 || r.times[len(r.times)-1] != bestT {
			r.times = append(r.times, bestT)
		}
		starts[bestJ]++
	}
	tau := len(r.times)
	if tau == 0 {
		return 0
	}

	// Per-edge cumulative flows (and series pointers for backtracking).
	for j := 0; j < m; j++ {
		r.cums[j] = grow(r.cums[j], tau)
		r.ptrs[j] = growI32(r.ptrs[j], tau)
		lo := r.lb[j]
		if j == 0 {
			lo = a
		}
		p := lo
		c := 0.0
		for i := 0; i < tau; i++ {
			for p < r.ub[j] && r.series[j][p].T <= r.times[i] {
				c += r.series[j][p].F
				p++
			}
			r.cums[j][i] = c
			r.ptrs[j][i] = int32(p)
		}
	}

	// κ = 1 (paper numbering): Flow([t1,ti],1) = flow([t1,ti],1).
	r.prev = grow(r.prev, tau)
	r.cur = grow(r.cur, tau)
	copy(r.prev, r.cums[0][:tau])
	if r.choices != nil {
		for j := 0; j < m; j++ {
			r.choices[j] = growI32(r.choices[j], tau)
		}
	}

	// κ = 2..m: Equation 2.
	for k := 1; k < m; k++ {
		ck := r.cums[k]
		for i := 0; i < tau; i++ {
			best := 0.0
			bestJ := int32(-1)
			if r.fast {
				// prev[j-1] is non-decreasing in j; ck[i]-ck[j-1] is
				// non-increasing. Binary search the crossover.
				lo, hi := 1, i // j range [1, i]
				for lo < hi {
					mid := (lo + hi) / 2
					if r.prev[mid-1] < ck[i]-ck[mid-1] {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				for _, j := range [2]int{lo - 1, lo} {
					if j < 1 || j > i {
						continue
					}
					v := minf(r.prev[j-1], ck[i]-ck[j-1])
					if v > best {
						best, bestJ = v, int32(j)
					}
				}
			} else {
				for j := 1; j <= i; j++ { // faithful O(τ) inner loop
					v := minf(r.prev[j-1], ck[i]-ck[j-1])
					if v > best {
						best, bestJ = v, int32(j)
					}
				}
			}
			r.cur[i] = best
			if r.choices != nil {
				r.choices[k][i] = bestJ
			}
		}
		r.prev, r.cur = r.cur, r.prev
	}

	flow := r.prev[tau-1]
	if flow > r.best {
		r.best = flow
		if r.onBest != nil {
			r.onBest(r.backtrack(a, tau))
		}
	}
	return flow
}

// backtrack reconstructs the instance behind the best cell (κ=m, i=τ-1).
func (r *dpRunner) backtrack(a, tau int) *Instance {
	m := r.m
	in := &Instance{
		Nodes:     append([]temporal.NodeID(nil), r.nodes...),
		Arcs:      append([]int(nil), r.arcs...),
		Spans:     make([]Span, m),
		EdgeFlows: make([]float64, m),
	}
	i := tau - 1
	for k := m - 1; k >= 1; k-- {
		j := int(r.choices[k][i])
		// Edge k covers events in (times[j-1], times[i]].
		start := r.ptrs[k][j-1]
		end := r.ptrs[k][i]
		in.Spans[k] = Span{Start: start, End: end}
		i = j - 1
	}
	lo := int32(a)
	in.Spans[0] = Span{Start: lo, End: r.ptrs[0][i]}

	minFlow := 0.0
	for k := 0; k < m; k++ {
		f := r.g.FlowRange(r.arcs[k], int(in.Spans[k].Start), int(in.Spans[k].End))
		in.EdgeFlows[k] = f
		if k == 0 || f < minFlow {
			minFlow = f
		}
	}
	in.Flow = minFlow
	in.Start = r.series[0][in.Spans[0].Start].T
	in.End = r.series[m-1][in.Spans[m-1].End-1].T
	return in
}

func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
