package core

import (
	"fmt"
	"math"

	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// Validate checks an instance against Definition 3.2 of the paper: correct
// structure (injective vertex binding, arcs matching the motif edges),
// non-empty contiguous edge-sets, strict temporal ordering between
// consecutive edge-sets, global duration within delta, and per-edge-set
// aggregated flow of at least phi. It returns nil if the instance is valid.
func Validate(g *temporal.Graph, mo *motif.Motif, delta int64, phi float64, in *Instance) error {
	m := mo.NumEdges()
	if len(in.Nodes) != mo.NumVertices() || len(in.Arcs) != m || len(in.Spans) != m {
		return fmt.Errorf("core: instance shape mismatch (nodes=%d arcs=%d spans=%d)", len(in.Nodes), len(in.Arcs), len(in.Spans))
	}
	for i := 0; i < len(in.Nodes); i++ {
		for j := i + 1; j < len(in.Nodes); j++ {
			if in.Nodes[i] == in.Nodes[j] {
				return fmt.Errorf("core: vertex binding not injective (%d and %d both map to %d)", i, j, in.Nodes[i])
			}
		}
	}
	var prevLast int64
	minT := int64(math.MaxInt64)
	maxT := int64(math.MinInt64)
	minFlow := math.Inf(1)
	for i := 0; i < m; i++ {
		src := in.Nodes[mo.EdgeSource(i)]
		dst := in.Nodes[mo.EdgeTarget(i)]
		arc := in.Arcs[i]
		if g.ArcSource(arc) != src || g.ArcTarget(arc) != dst {
			return fmt.Errorf("core: edge %d arc (%d→%d) does not connect bound nodes (%d→%d)",
				i, g.ArcSource(arc), g.ArcTarget(arc), src, dst)
		}
		sp := in.Spans[i]
		s := g.Series(arc)
		if sp.Start < 0 || int(sp.End) > len(s) || sp.Start >= sp.End {
			return fmt.Errorf("core: edge %d span [%d,%d) invalid for series of length %d", i, sp.Start, sp.End, len(s))
		}
		first, lastT := s[sp.Start].T, s[sp.End-1].T
		if i > 0 && first <= prevLast {
			return fmt.Errorf("core: edge %d starts at %d, not strictly after previous edge-set end %d", i, first, prevLast)
		}
		prevLast = lastT
		if first < minT {
			minT = first
		}
		if lastT > maxT {
			maxT = lastT
		}
		f := g.FlowRange(arc, int(sp.Start), int(sp.End))
		if f < phi {
			return fmt.Errorf("core: edge %d flow %.6g below phi %.6g", i, f, phi)
		}
		if len(in.EdgeFlows) == m && math.Abs(in.EdgeFlows[i]-f) > 1e-9 {
			return fmt.Errorf("core: edge %d recorded flow %.6g != actual %.6g", i, in.EdgeFlows[i], f)
		}
		if f < minFlow {
			minFlow = f
		}
	}
	if maxT-minT > delta {
		return fmt.Errorf("core: duration %d exceeds delta %d", maxT-minT, delta)
	}
	if math.Abs(in.Flow-minFlow) > 1e-9 {
		return fmt.Errorf("core: recorded flow %.6g != min edge flow %.6g", in.Flow, minFlow)
	}
	if in.Start != minT || in.End != maxT {
		return fmt.Errorf("core: recorded span [%d,%d] != actual [%d,%d]", in.Start, in.End, minT, maxT)
	}
	return nil
}

// IsMaximal checks Definition 3.3: no single event from any edge's series
// can be added to its edge-set without violating the duration constraint or
// the strict inter-edge-set ordering (added events can only increase flows,
// so φ never blocks an extension). It returns false with a human-readable
// reason naming the first extension found.
//
// Because maximal edge-sets are contiguous, only the events immediately
// before Span.Start and at Span.End need checking: if a farther event were
// addable, the nearer one would be too.
func IsMaximal(g *temporal.Graph, mo *motif.Motif, delta int64, in *Instance) (bool, string) {
	m := mo.NumEdges()
	for i := 0; i < m; i++ {
		s := g.Series(in.Arcs[i])
		sp := in.Spans[i]
		// Backward extension by the event just before the edge-set.
		if sp.Start > 0 {
			x := s[sp.Start-1]
			ok := true
			if i > 0 {
				prev := g.Series(in.Arcs[i-1])
				prevLast := prev[in.Spans[i-1].End-1].T
				if x.T <= prevLast {
					ok = false // would break strict ordering with edge i-1
				}
			}
			if ok && in.End-x.T > delta {
				ok = false // would break the duration constraint
			}
			if ok {
				return false, fmt.Sprintf("edge %d extendable backwards with event at t=%d", i, x.T)
			}
		}
		// Forward extension by the event just after the edge-set.
		if int(sp.End) < len(s) {
			x := s[sp.End]
			ok := true
			if i+1 < m {
				next := g.Series(in.Arcs[i+1])
				nextFirst := next[in.Spans[i+1].Start].T
				if x.T >= nextFirst {
					ok = false // would break strict ordering with edge i+1
				}
			}
			if ok && x.T-in.Start > delta {
				ok = false
			}
			if ok {
				return false, fmt.Sprintf("edge %d extendable forwards with event at t=%d", i, x.T)
			}
		}
	}
	return true, ""
}
