package dataset

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"flowmotif/internal/temporal"
)

var sample = []temporal.Event{
	{From: 0, To: 1, T: 13, F: 5},
	{From: 0, To: 1, T: 15, F: 7.25},
	{From: 2, To: 0, T: 10, F: 10},
}

func TestCSVRoundTripNumeric(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sample, nil); err != nil {
		t.Fatal(err)
	}
	evs, in, err := ReadCSV(&buf, CSVOptions{NumericIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if in != nil {
		t.Error("interner returned for numeric ids")
	}
	if !reflect.DeepEqual(evs, sample) {
		t.Errorf("round trip = %v, want %v", evs, sample)
	}
}

func TestCSVStringInterning(t *testing.T) {
	src := "addrA,addrB,100,2.5\naddrB,addrC,110,3\naddrA,addrC,120,1\n"
	evs, in, err := ReadCSV(strings.NewReader(src), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if in == nil || in.Len() != 3 {
		t.Fatalf("interner len = %v", in)
	}
	if evs[0].From != evs[2].From {
		t.Error("addrA interned to different ids")
	}
	if in.Label(evs[1].To) != "addrC" {
		t.Errorf("label = %q", in.Label(evs[1].To))
	}
	// Write back with labels and re-read.
	var buf bytes.Buffer
	if err := WriteCSV(&buf, evs, in.Label); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "addrA,addrB,100,2.5") {
		t.Errorf("labelled output wrong:\n%s", buf.String())
	}
}

func TestCSVHeaderAndTSV(t *testing.T) {
	src := "from\tto\ttime\tflow\n1\t2\t100\t4\n"
	evs, _, err := ReadCSV(strings.NewReader(src), CSVOptions{Comma: '\t', HasHeader: true, NumericIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].From != 1 || evs[0].F != 4 {
		t.Errorf("evs = %v", evs)
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"1,2,xx,4\n", // bad timestamp
		"1,2,3\n",    // short record
		"1,2,3,zz\n", // bad flow
		"x1,2,3,4\n", // bad numeric id
		"1,y2,3,4\n", // bad numeric id (to)
	}
	for _, c := range cases {
		if _, _, err := ReadCSV(strings.NewReader(c), CSVOptions{NumericIDs: true}); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sample); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evs, sample) {
		t.Errorf("round trip = %v, want %v", evs, sample)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadBinary(bytes.NewReader([]byte("FMG1"))); err == nil {
		t.Error("truncated header accepted")
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sample); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestFileRoundTripsAndLoad(t *testing.T) {
	dir := t.TempDir()

	csvPath := filepath.Join(dir, "g.csv")
	if err := WriteCSVFile(csvPath, sample, nil); err != nil {
		t.Fatal(err)
	}
	evs, _, err := Load(csvPath, CSVOptions{NumericIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evs, sample) {
		t.Error("csv file round trip failed")
	}

	binPath := filepath.Join(dir, "g.bin")
	if err := WriteBinaryFile(binPath, sample); err != nil {
		t.Fatal(err)
	}
	evs2, _, err := Load(binPath, CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evs2, sample) {
		t.Error("binary file round trip failed")
	}

	if _, _, err := Load(filepath.Join(dir, "missing.csv"), CSVOptions{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestGraphFromCSV(t *testing.T) {
	src := "a,b,1,2\nb,c,2,3\n"
	evs, _, err := ReadCSV(strings.NewReader(src), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := temporal.NewGraph(evs)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumArcs() != 2 {
		t.Errorf("graph = %v", g)
	}
}
