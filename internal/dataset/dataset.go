// Package dataset loads and saves interaction networks. Two formats are
// supported:
//
//   - CSV/TSV with one interaction per record (from, to, time, flow), the
//     lingua franca of public interaction-network dumps (bitcoin user
//     graphs, communication logs, trip records);
//   - a compact little-endian binary snapshot for fast reloads of large
//     generated datasets.
//
// CSV node identifiers may be arbitrary strings (bitcoin addresses, zone
// codes); they are interned onto dense NodeIDs and the mapping is returned
// alongside the events.
package dataset

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"

	"flowmotif/internal/temporal"
)

// CSVOptions controls parsing.
type CSVOptions struct {
	// Comma is the field separator (default ',', use '\t' for TSV).
	Comma rune
	// HasHeader skips the first record.
	HasHeader bool
	// NumericIDs parses node ids as integers instead of interning strings;
	// the returned Interner is nil in that case.
	NumericIDs bool
}

// ReadCSV parses records of the form from,to,time,flow.
func ReadCSV(r io.Reader, opts CSVOptions) ([]temporal.Event, *temporal.Interner, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.ReuseRecord = true
	cr.FieldsPerRecord = 4

	var in *temporal.Interner
	if !opts.NumericIDs {
		in = temporal.NewInterner()
	}
	var evs []temporal.Event
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: %w", err)
		}
		line++
		if opts.HasHeader && line == 1 {
			continue
		}
		var from, to temporal.NodeID
		if opts.NumericIDs {
			f64, err := strconv.ParseInt(rec[0], 10, 32)
			if err != nil {
				return nil, nil, fmt.Errorf("dataset: record %d: bad from id %q", line, rec[0])
			}
			t64, err := strconv.ParseInt(rec[1], 10, 32)
			if err != nil {
				return nil, nil, fmt.Errorf("dataset: record %d: bad to id %q", line, rec[1])
			}
			from, to = temporal.NodeID(f64), temporal.NodeID(t64)
		} else {
			from, to = in.ID(rec[0]), in.ID(rec[1])
		}
		t, err := strconv.ParseInt(rec[2], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: record %d: bad timestamp %q", line, rec[2])
		}
		f, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: record %d: bad flow %q", line, rec[3])
		}
		evs = append(evs, temporal.Event{From: from, To: to, T: t, F: f})
	}
	return evs, in, nil
}

// WriteCSV writes events as from,to,time,flow records. If labels is
// non-nil it translates node ids back to strings.
func WriteCSV(w io.Writer, evs []temporal.Event, labels func(temporal.NodeID) string) error {
	cw := csv.NewWriter(w)
	rec := make([]string, 4)
	for _, e := range evs {
		if labels != nil {
			rec[0], rec[1] = labels(e.From), labels(e.To)
		} else {
			rec[0] = strconv.FormatInt(int64(e.From), 10)
			rec[1] = strconv.FormatInt(int64(e.To), 10)
		}
		rec[2] = strconv.FormatInt(e.T, 10)
		rec[3] = strconv.FormatFloat(e.F, 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSVFile loads a CSV/TSV file (separator inferred from the extension:
// ".tsv" uses tabs).
func ReadCSVFile(path string, opts CSVOptions) ([]temporal.Event, *temporal.Interner, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	if opts.Comma == 0 && len(path) > 4 && path[len(path)-4:] == ".tsv" {
		opts.Comma = '\t'
	}
	return ReadCSV(bufio.NewReaderSize(f, 1<<20), opts)
}

// WriteCSVFile saves events to a CSV file.
func WriteCSVFile(path string, evs []temporal.Event, labels func(temporal.NodeID) string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := WriteCSV(w, evs, labels); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

var binMagic = [4]byte{'F', 'M', 'G', '1'}

// WriteBinary writes events in the compact binary snapshot format.
func WriteBinary(w io.Writer, evs []temporal.Event) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(evs))); err != nil {
		return err
	}
	for i := range evs {
		e := &evs[i]
		if err := binary.Write(bw, binary.LittleEndian, int32(e.From)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, int32(e.To)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, e.T); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, e.F); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a binary snapshot.
func ReadBinary(r io.Reader) ([]temporal.Event, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	if magic != binMagic {
		return nil, errors.New("dataset: not a flowmotif binary snapshot")
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	const maxEvents = 1 << 31
	if n > maxEvents {
		return nil, fmt.Errorf("dataset: implausible event count %d", n)
	}
	evs := make([]temporal.Event, n)
	for i := range evs {
		var from, to int32
		if err := binary.Read(br, binary.LittleEndian, &from); err != nil {
			return nil, fmt.Errorf("dataset: truncated at event %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &to); err != nil {
			return nil, fmt.Errorf("dataset: truncated at event %d: %w", i, err)
		}
		evs[i].From, evs[i].To = temporal.NodeID(from), temporal.NodeID(to)
		if err := binary.Read(br, binary.LittleEndian, &evs[i].T); err != nil {
			return nil, fmt.Errorf("dataset: truncated at event %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &evs[i].F); err != nil {
			return nil, fmt.Errorf("dataset: truncated at event %d: %w", i, err)
		}
	}
	return evs, nil
}

// WriteBinaryFile saves events to a binary snapshot file.
func WriteBinaryFile(path string, evs []temporal.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, evs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBinaryFile loads a binary snapshot file.
func ReadBinaryFile(path string) ([]temporal.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// Load reads a dataset choosing the format by extension: ".bin" snapshots,
// anything else CSV/TSV with numeric ids unless opts say otherwise.
func Load(path string, opts CSVOptions) ([]temporal.Event, *temporal.Interner, error) {
	if len(path) > 4 && path[len(path)-4:] == ".bin" {
		evs, err := ReadBinaryFile(path)
		return evs, nil, err
	}
	return ReadCSVFile(path, opts)
}
