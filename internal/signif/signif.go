// Package signif implements the paper's motif-significance methodology
// (§6.3): generate randomized versions of the input network by keeping the
// graph structure and timestamps fixed while permuting the flow values
// across all edges, count motif instances in each randomized network, and
// compare against the real count via z-scores, box-plot statistics and an
// empirical p-value (Figure 14).
package signif

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"flowmotif/internal/core"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// Config controls a significance evaluation.
type Config struct {
	// Runs is the number of randomized networks (the paper uses 20).
	Runs int
	// Seed makes the permutations reproducible.
	Seed int64
	// Workers evaluates randomized networks concurrently (<= 1: serial).
	Workers int
}

// BoxStats are five-number summary statistics for Figure 14's box plots.
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
}

// Result reports the significance of one motif on one network.
type Result struct {
	Motif        string
	Real         int64   // instance count in the real network
	RandomCounts []int64 // instance count per randomized network
	Mean         float64 // mean of RandomCounts
	Std          float64 // standard deviation of RandomCounts
	ZScore       float64 // (Real - Mean) / Std
	PValue       float64 // fraction of randomized counts >= Real
	Box          BoxStats
}

// FlowPermuted returns a copy of g with the same nodes, arcs and timestamps
// whose flow values are a uniformly random permutation of the originals
// (the paper's null model).
func FlowPermuted(g *temporal.Graph, rng *rand.Rand) *temporal.Graph {
	flows := g.Flows()
	rng.Shuffle(len(flows), func(i, j int) { flows[i], flows[j] = flows[j], flows[i] })
	ng, err := g.WithFlows(flows)
	if err != nil {
		// Unreachable: the permuted flows are the validated originals.
		panic(err)
	}
	return ng
}

// Evaluate measures the significance of mo in g under p.
func Evaluate(g *temporal.Graph, mo *motif.Motif, p core.Params, cfg Config) (Result, error) {
	if cfg.Runs <= 0 {
		return Result{}, errors.New("signif: Runs must be positive")
	}
	res := Result{Motif: mo.Name()}

	real, _, err := core.Count(g, mo, p)
	if err != nil {
		return Result{}, err
	}
	res.Real = real

	// Pre-generate the permutation seeds so results do not depend on the
	// worker schedule.
	master := rand.New(rand.NewSource(cfg.Seed))
	seeds := make([]int64, cfg.Runs)
	for i := range seeds {
		seeds[i] = master.Int63()
	}

	res.RandomCounts = make([]int64, cfg.Runs)
	workers := cfg.Workers
	if workers <= 1 {
		workers = 1
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		fail error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= cfg.Runs {
					return
				}
				rg := FlowPermuted(g, rand.New(rand.NewSource(seeds[i])))
				n, _, err := core.Count(rg, mo, p)
				if err != nil {
					mu.Lock()
					if fail == nil {
						fail = fmt.Errorf("signif: run %d: %w", i, err)
					}
					mu.Unlock()
					return
				}
				res.RandomCounts[i] = n
			}
		}()
	}
	wg.Wait()
	if fail != nil {
		return Result{}, fail
	}

	res.Mean, res.Std = meanStd(res.RandomCounts)
	if res.Std > 0 {
		res.ZScore = (float64(res.Real) - res.Mean) / res.Std
	} else if float64(res.Real) != res.Mean {
		res.ZScore = math.Inf(sign(float64(res.Real) - res.Mean))
	}
	ge := 0
	for _, c := range res.RandomCounts {
		if c >= res.Real {
			ge++
		}
	}
	res.PValue = float64(ge) / float64(cfg.Runs)
	res.Box = box(res.RandomCounts)
	return res, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

func meanStd(xs []int64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += float64(x)
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := float64(x) - mean
		ss += d * d
	}
	std = math.Sqrt(ss / float64(len(xs)))
	return mean, std
}

// box computes the five-number summary with linear quartile interpolation.
func box(xs []int64) BoxStats {
	if len(xs) == 0 {
		return BoxStats{}
	}
	s := make([]float64, len(xs))
	for i, x := range xs {
		s[i] = float64(x)
	}
	sort.Float64s(s)
	return BoxStats{
		Min:    s[0],
		Q1:     quantile(s, 0.25),
		Median: quantile(s, 0.5),
		Q3:     quantile(s, 0.75),
		Max:    s[len(s)-1],
	}
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
