package signif

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"flowmotif/internal/core"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

func testGraph(t testing.TB, seed int64, nodes, events int) *temporal.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(events * 4)
	evs := make([]temporal.Event, events)
	for i := range evs {
		evs[i] = temporal.Event{
			From: temporal.NodeID(rng.Intn(nodes)),
			To:   temporal.NodeID(rng.Intn(nodes)),
			T:    int64(perm[i]),
			F:    float64(1 + rng.Intn(9)),
		}
	}
	g, err := temporal.NewGraph(evs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFlowPermutedPreservesStructure(t *testing.T) {
	g := testGraph(t, 1, 10, 120)
	rg := FlowPermuted(g, rand.New(rand.NewSource(42)))
	if rg.NumNodes() != g.NumNodes() || rg.NumArcs() != g.NumArcs() || rg.NumEvents() != g.NumEvents() {
		t.Fatal("structure changed")
	}
	// Timestamps identical arc by arc; flow multiset preserved.
	var orig, perm []float64
	for a := 0; a < g.NumArcs(); a++ {
		so, sp := g.Series(a), rg.Series(a)
		for i := range so {
			if so[i].T != sp[i].T {
				t.Fatalf("timestamp changed on arc %d", a)
			}
			orig = append(orig, so[i].F)
			perm = append(perm, sp[i].F)
		}
	}
	sort.Float64s(orig)
	sort.Float64s(perm)
	for i := range orig {
		if orig[i] != perm[i] {
			t.Fatal("flow multiset changed")
		}
	}
	if math.Abs(rg.TotalFlow()-g.TotalFlow()) > 1e-6 {
		t.Error("total flow changed")
	}
}

func TestFlowPermutedDeterministicPerSeed(t *testing.T) {
	g := testGraph(t, 2, 8, 60)
	a := FlowPermuted(g, rand.New(rand.NewSource(7)))
	b := FlowPermuted(g, rand.New(rand.NewSource(7)))
	c := FlowPermuted(g, rand.New(rand.NewSource(8)))
	same, diff := true, false
	for arc := 0; arc < g.NumArcs(); arc++ {
		sa, sb, sc := a.Series(arc), b.Series(arc), c.Series(arc)
		for i := range sa {
			if sa[i].F != sb[i].F {
				same = false
			}
			if sa[i].F != sc[i].F {
				diff = true
			}
		}
	}
	if !same {
		t.Error("same seed produced different permutations")
	}
	if !diff {
		t.Error("different seeds produced identical permutations (suspicious)")
	}
}

func TestEvaluateDeterministicAndConsistent(t *testing.T) {
	g := testGraph(t, 3, 8, 80)
	mo := motif.MustPath(0, 1, 2)
	p := core.Params{Delta: 40, Phi: 6}
	cfg := Config{Runs: 8, Seed: 11}
	r1, err := Evaluate(g, mo, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Evaluate(g, mo, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.RandomCounts {
		if r1.RandomCounts[i] != r2.RandomCounts[i] {
			t.Fatal("evaluation not deterministic")
		}
	}
	// Workers must not change results.
	cfg.Workers = 4
	r3, err := Evaluate(g, mo, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.RandomCounts {
		if r1.RandomCounts[i] != r3.RandomCounts[i] {
			t.Fatal("parallel evaluation changed results")
		}
	}
	// Real count must match a direct count.
	n, _, err := core.Count(g, mo, p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Real != n {
		t.Errorf("Real = %d, direct count = %d", r1.Real, n)
	}
	// With φ=0 the permutation does not change counts at all: flows do not
	// matter, so every randomized count equals the real one and z = 0.
	p0 := core.Params{Delta: 40, Phi: 0}
	r0, err := Evaluate(g, mo, p0, Config{Runs: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r0.RandomCounts {
		if c != r0.Real {
			t.Errorf("φ=0 randomized count %d != real %d", c, r0.Real)
		}
	}
	if r0.PValue != 1 {
		t.Errorf("φ=0 p-value = %v, want 1", r0.PValue)
	}
}

func TestEvaluateErrors(t *testing.T) {
	g := testGraph(t, 4, 5, 20)
	if _, err := Evaluate(g, motif.MustPath(0, 1), core.Params{Delta: 5}, Config{Runs: 0}); err == nil {
		t.Error("Runs=0 accepted")
	}
	if _, err := Evaluate(g, motif.MustPath(0, 1), core.Params{Delta: -5}, Config{Runs: 1}); err == nil {
		t.Error("negative delta accepted")
	}
}

func TestBoxStats(t *testing.T) {
	b := box([]int64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 {
		t.Errorf("box = %+v", b)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Errorf("quartiles = %v, %v; want 2, 4", b.Q1, b.Q3)
	}
	single := box([]int64{7})
	if single.Min != 7 || single.Q1 != 7 || single.Median != 7 || single.Q3 != 7 || single.Max != 7 {
		t.Errorf("single box = %+v", single)
	}
	if (box(nil) != BoxStats{}) {
		t.Error("empty box not zero")
	}
}

func TestMeanStdAndZ(t *testing.T) {
	mean, std := meanStd([]int64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-12 || math.Abs(std-2) > 1e-12 {
		t.Errorf("meanStd = %v, %v; want 5, 2", mean, std)
	}
	// Degenerate: zero variance, real differs → infinite z.
	g := testGraph(t, 6, 6, 30)
	_ = g
	r := Result{Real: 10}
	r.Mean, r.Std = meanStd([]int64{3, 3, 3})
	if r.Std != 0 {
		t.Fatal("expected zero std")
	}
}
