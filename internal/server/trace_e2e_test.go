package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flowmotif/internal/cluster"
	"flowmotif/internal/motif"
	"flowmotif/internal/obs"
	"flowmotif/internal/stream"
)

// TestTraceparentHTTPRoundTrip: an incoming W3C traceparent header joins
// the request to the caller's trace — the ingest ack carries the caller's
// trace ID and the server-side spans (http.ingest → engine.ingest →
// finalize stages) parent correctly under it.
func TestTraceparentHTTPRoundTrip(t *testing.T) {
	srv, err := New(Config{
		Subs: []stream.Subscription{{ID: "chain", Motif: motif.MustPath(0, 1, 2), Delta: 50}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := ts.Client()

	// A caller-side span travels as the traceparent header.
	callerTracer := obs.NewTracer(0)
	caller := callerTracer.StartSpan("test.caller", obs.SpanContext{})
	// The t=500 closer advances the watermark so a finalize round runs
	// inside this same batch's trace.
	body := strings.NewReader(`{"events":[{"from":0,"to":1,"t":10,"f":5},{"from":1,"to":2,"t":12,"f":3},{"from":7,"to":8,"t":500,"f":1}]}`)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/ingest", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, caller.Context().Traceparent())
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var ack ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	caller.End()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d", resp.StatusCode)
	}
	if ack.Trace != caller.Context().Trace {
		t.Fatalf("ack trace %q, want the propagated caller trace %q", ack.Trace, caller.Context().Trace)
	}

	// The server's flight recorder holds the request's span subtree; with
	// the caller's own span stitched in, the set validates as one tree.
	spans := srv.Tracer().Spans(ack.Trace)
	names := map[string]bool{}
	for _, s := range spans {
		names[s.Name] = true
	}
	for _, want := range []string{"http.ingest", "engine.ingest", "finalize.round"} {
		if !names[want] {
			t.Errorf("server trace missing %q span (have %v)", want, names)
		}
	}
	stitched := append(callerTracer.Spans(ack.Trace), spans...)
	if err := obs.ValidateSpans(stitched); err != nil {
		t.Fatalf("stitched caller+server trace invalid: %v", err)
	}
	tree := obs.BuildSpanTree(stitched)
	if len(tree) != 1 || tree[0].Name != "test.caller" {
		t.Fatalf("stitched root should be the caller span: %+v", tree[0])
	}

	// Without a traceparent header the request roots a fresh trace.
	resp2, raw := postJSON(t, client, ts.URL+"/ingest", map[string]interface{}{
		"events": []map[string]interface{}{{"from": 0, "to": 1, "t": 900, "f": 1}},
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second ingest: %d: %s", resp2.StatusCode, raw)
	}
	var ack2 ingestResponse
	if err := json.Unmarshal(raw, &ack2); err != nil {
		t.Fatal(err)
	}
	if ack2.Trace == "" || ack2.Trace == ack.Trace {
		t.Fatalf("headerless ingest should root a fresh trace, got %q", ack2.Trace)
	}
	own := srv.Tracer().Spans(ack2.Trace)
	if err := obs.ValidateSpans(own); err != nil {
		t.Fatal(err)
	}
	if root := obs.BuildSpanTree(own); len(root) != 1 || root[0].Name != "http.ingest" {
		t.Fatalf("headerless trace root should be http.ingest: %+v", root)
	}
}

// TestClusterTraceE2E is the acceptance check of the tracing PR: a single
// POST /ingest on a two-member cluster produces one trace ID (returned in
// the ack) whose stitched /debug/traces span tree contains the coordinator
// append, each member's replication delivery, the member-side finalize
// round, and the emit stage — with every parent link resolving and
// timestamps monotone.
func TestClusterTraceE2E(t *testing.T) {
	subs := []stream.Subscription{
		{ID: "chain", Motif: motif.MustPath(0, 1, 2), Delta: 50},
		{ID: "hop", Motif: motif.MustPath(0, 1), Delta: 30},
	}
	m0, _ := memberDaemon(t, "m0")
	m1, _ := memberDaemon(t, "m1")
	c, err := cluster.New(cluster.Config{
		Members:    []cluster.Member{m0, m1},
		Subs:       subs,
		RetryDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCoordinator(c, 0)
	front := httptest.NewServer(cs.Handler())
	t.Cleanup(front.Close)
	client := front.Client()

	// One batch through the public API: the ack's trace ID is the handle.
	events := []map[string]interface{}{
		{"from": 0, "to": 1, "t": 10, "f": 5},
		{"from": 1, "to": 2, "t": 12, "f": 3},
		{"from": 7, "to": 8, "t": 500, "f": 1}, // closes the windows
	}
	resp, raw := postJSON(t, client, front.URL+"/ingest", map[string]interface{}{"events": events})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d: %s", resp.StatusCode, raw)
	}
	var ack ingestResponse
	if err := json.Unmarshal(raw, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Trace == "" {
		t.Fatal("coordinator ack carries no trace ID")
	}
	// Replication is asynchronous; barrier on the full log being applied.
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}

	// The coordinator's /debug/traces stitches member-side spans in.
	var detail struct {
		Trace string           `json:"trace"`
		Count int              `json:"count"`
		Spans []obs.SpanRecord `json:"spans"`
		Tree  []*obs.SpanNode  `json:"tree"`
	}
	if resp := getJSON(t, client, front.URL+"/debug/traces?trace="+ack.Trace, &detail); resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: %d", resp.StatusCode)
	}
	if detail.Trace != ack.Trace || detail.Count != len(detail.Spans) {
		t.Fatalf("trace detail inconsistent: %+v", detail)
	}
	if err := obs.ValidateSpans(detail.Spans); err != nil {
		t.Fatalf("stitched cluster trace invalid: %v", err)
	}
	counts := map[string]int{}
	for _, s := range detail.Spans {
		counts[s.Name]++
	}
	if counts["http.ingest"] < 3 {
		// Coordinator front door + each member daemon's /ingest request.
		t.Errorf("http.ingest spans = %d, want >= 3 (coordinator + 2 members): %v", counts["http.ingest"], counts)
	}
	if counts["ingest.append"] != 1 {
		t.Errorf("ingest.append spans = %d, want exactly 1: %v", counts["ingest.append"], counts)
	}
	if counts["replicate.deliver"] != 2 {
		t.Errorf("replicate.deliver spans = %d, want 2 (one per member): %v", counts["replicate.deliver"], counts)
	}
	if counts["engine.ingest"] != 2 || counts["finalize.round"] != 2 || counts["finalize.emit"] != 2 {
		t.Errorf("member-side pipeline spans missing: %v", counts)
	}
	if len(detail.Tree) != 1 || detail.Tree[0].Name != "http.ingest" {
		t.Fatalf("tree root should be the coordinator's http.ingest span: %v", detail.Tree[0].Name)
	}

	// Scatter-gather queries join the request trace too: one query.shard
	// span per member under the query span.
	var got struct {
		Instances []*stream.Detection `json:"instances"`
	}
	getJSON(t, client, front.URL+"/instances?limit=0&sub=chain", &got)
	if len(got.Instances) == 0 {
		t.Fatal("no detections after drain; test premise broken")
	}
	sums := summariesOf(t, client, front.URL+"/debug/traces?limit=500")
	var queryTrace string
	for _, s := range sums {
		if s.Root == "http.instances" {
			queryTrace = s.Trace
		}
	}
	if queryTrace == "" {
		t.Fatal("no http.instances trace in /debug/traces listing")
	}
	var qd struct {
		Spans []obs.SpanRecord `json:"spans"`
	}
	getJSON(t, client, front.URL+"/debug/traces?trace="+queryTrace, &qd)
	if err := obs.ValidateSpans(qd.Spans); err != nil {
		t.Fatalf("query trace invalid: %v", err)
	}
	qc := map[string]int{}
	for _, s := range qd.Spans {
		qc[s.Name]++
	}
	if qc["query.instances"] != 1 || qc["query.shard"] == 0 {
		t.Errorf("query trace missing scatter-gather spans: %v", qc)
	}

	// The /debug/traces listing is bounded: limit is capped server-side.
	var listing struct {
		Count  int        `json:"count"`
		Traces []struct{} `json:"traces"`
	}
	getJSON(t, client, front.URL+"/debug/traces?limit=100000", &listing)
	if listing.Count > 500 {
		t.Fatalf("trace listing unbounded: %d entries", listing.Count)
	}
	if resp := getJSON(t, client, front.URL+"/debug/traces?limit=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit: %d, want 400", resp.StatusCode)
	}
}

func summariesOf(t *testing.T, client *http.Client, url string) []obs.TraceSummary {
	t.Helper()
	var out struct {
		Traces []obs.TraceSummary `json:"traces"`
	}
	if resp := getJSON(t, client, url, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %d", url, resp.StatusCode)
	}
	return out.Traces
}
