package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flowmotif/internal/cluster"
	"flowmotif/internal/motif"
	"flowmotif/internal/obs"
	"flowmotif/internal/stream"
)

// scrape fetches url and parses it as Prometheus text exposition, failing
// the test on any format violation (the parser validates TYPE uniqueness,
// label syntax, cumulative buckets, +Inf terminals and _count agreement).
func scrape(t *testing.T, client *http.Client, url string) map[string]*obs.ExpoFamily {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET %s: content type %q, want text/plain", url, ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseExposition(string(body))
	if err != nil {
		t.Fatalf("GET %s: invalid exposition: %v\n%s", url, err, body)
	}
	return fams
}

// histCount sums the family's _count samples.
func histCount(f *obs.ExpoFamily) float64 {
	var n float64
	for _, s := range f.Series {
		if strings.HasSuffix(s.Name, "_count") {
			n += s.Value
		}
	}
	return n
}

// labelValues collects the distinct values of one label across a family.
func labelValues(f *obs.ExpoFamily, key string) map[string]bool {
	out := map[string]bool{}
	for _, s := range f.Series {
		if v, ok := s.Labels[key]; ok {
			out[v] = true
		}
	}
	return out
}

func requireHistogram(t *testing.T, fams map[string]*obs.ExpoFamily, name string) *obs.ExpoFamily {
	t.Helper()
	f := fams[name]
	if f == nil {
		t.Fatalf("family %s missing from exposition", name)
	}
	if f.Type != "histogram" {
		t.Fatalf("family %s: type %q, want histogram", name, f.Type)
	}
	return f
}

// TestPrometheusScrapeEndToEnd drives a live member daemon and a cluster
// coordinator over HTTP, then scrapes /metrics?format=prometheus on both
// and validates the expositions with the format-checking parser: the
// member serves its pipeline histograms (finalize stages, detection lag,
// per-endpoint request latency), the coordinator serves those same
// families bucket-merged across members plus its replication-lag
// histogram and member-labeled gauges.
func TestPrometheusScrapeEndToEnd(t *testing.T) {
	m, mts := memberDaemon(t, "m0")
	c, err := cluster.New(cluster.Config{
		Members: []cluster.Member{m},
		Subs: []stream.Subscription{
			{ID: "tri", Motif: motif.MustPath(0, 1, 2, 0), Delta: 600, Phi: 1},
		},
		RetryDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cs := NewCoordinator(c, 0)
	front := httptest.NewServer(cs.Handler())
	defer front.Close()
	client := front.Client()

	// Triangles 0→1→2→0 every 50 ticks: each closes a motif instance, so
	// detection-lag and emit-stage histograms are guaranteed samples.
	var batch []map[string]interface{}
	for i := 0; i < 30; i++ {
		base := int64(i * 50)
		batch = append(batch,
			map[string]interface{}{"from": 0, "to": 1, "t": base, "f": 5},
			map[string]interface{}{"from": 1, "to": 2, "t": base + 1, "f": 5},
			map[string]interface{}{"from": 2, "to": 0, "t": base + 2, "f": 5},
		)
	}
	if resp, body := postJSON(t, client, front.URL+"/ingest", map[string]interface{}{"events": batch}); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d: %s", resp.StatusCode, body)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if resp, body := postJSON(t, client, front.URL+"/flush", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %d: %s", resp.StatusCode, body)
	}

	// Member exposition: stage + lag histograms with real samples, request
	// histograms labeled by endpoint and code class, engine gauges.
	mf := scrape(t, mts.Client(), mts.URL+"/metrics?format=prometheus")
	lag := requireHistogram(t, mf, "flowmotif_detection_lag_seconds")
	if histCount(lag) == 0 {
		t.Fatal("member detection-lag histogram has no observations")
	}
	stages := requireHistogram(t, mf, "flowmotif_finalize_stage_seconds")
	got := labelValues(stages, "stage")
	for _, want := range []string{"snapshot", "match", "fanout", "emit"} {
		if !got[want] {
			t.Fatalf("member finalize-stage histogram: stage %q missing (have %v)", want, got)
		}
	}
	req := requireHistogram(t, mf, "flowmotif_http_request_seconds")
	if eps := labelValues(req, "endpoint"); !eps["ingest"] {
		t.Fatalf("member request histogram: endpoint \"ingest\" missing (have %v)", eps)
	}
	if codes := labelValues(req, "code"); !codes["2xx"] {
		t.Fatalf("member request histogram: code class \"2xx\" missing (have %v)", codes)
	}
	if mf["flowmotif_engine_watermark"] == nil {
		t.Fatal("member exposition: flowmotif_engine_watermark missing")
	}

	// Coordinator exposition: member histograms merged in, replication
	// pipeline histograms, member-labeled gauges, cluster gauges.
	cf := scrape(t, client, front.URL+"/metrics?format=prometheus")
	clag := requireHistogram(t, cf, "flowmotif_detection_lag_seconds")
	if histCount(clag) == 0 {
		t.Fatal("coordinator detection-lag histogram empty: member metrics not merged")
	}
	requireHistogram(t, cf, "flowmotif_finalize_stage_seconds")
	requireHistogram(t, cf, "flowmotif_http_request_seconds")
	repl := requireHistogram(t, cf, "flowmotif_replication_lag_seconds")
	if histCount(repl) == 0 {
		t.Fatal("coordinator replication-lag histogram has no observations")
	}
	lagGauge := cf["flowmotif_cluster_member_watermark_lag"]
	if lagGauge == nil {
		t.Fatal("coordinator exposition: flowmotif_cluster_member_watermark_lag missing")
	}
	if members := labelValues(lagGauge, "member"); !members["m0"] {
		t.Fatalf("member gauge not labeled by member id (have %v)", members)
	}

	// The flat JSON map stays the default format and reports the satellite
	// fixes: wal-free member still serves request class counts.
	var flat map[string]interface{}
	getJSON(t, mts.Client(), mts.URL+"/metrics", &flat)
	if _, ok := flat["requests.ingest.2xx"]; !ok {
		t.Fatal("flat metrics: requests.ingest.2xx missing")
	}
	if _, ok := flat["store.wal_events"]; ok {
		t.Fatal("flat metrics: stale store.wal_events key still present")
	}
}

// TestPrometheusHistogramMergeAcrossMembers checks the coordinator's
// bucket-merge semantics directly: two in-process members' detection-lag
// counts sum in the merged exposition.
func TestPrometheusHistogramMergeAcrossMembers(t *testing.T) {
	var members []cluster.Member
	var locals []*cluster.LocalMember
	for _, id := range []string{"a", "b"} {
		lm, err := cluster.NewLocalMember(id, cluster.LocalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, lm)
		locals = append(locals, lm)
	}
	c, err := cluster.New(cluster.Config{
		Members: members,
		Subs: []stream.Subscription{
			{ID: "tri", Motif: motif.MustPath(0, 1, 2, 0), Delta: 600, Phi: 1},
			{ID: "chain", Motif: motif.MustPath(0, 1, 2), Delta: 300, Phi: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cs := NewCoordinator(c, 0)
	front := httptest.NewServer(cs.Handler())
	defer front.Close()

	var batch []map[string]interface{}
	for i := 0; i < 20; i++ {
		base := int64(i * 50)
		batch = append(batch,
			map[string]interface{}{"from": 0, "to": 1, "t": base, "f": 5},
			map[string]interface{}{"from": 1, "to": 2, "t": base + 1, "f": 5},
			map[string]interface{}{"from": 2, "to": 0, "t": base + 2, "f": 5},
		)
	}
	if resp, body := postJSON(t, front.Client(), front.URL+"/ingest", map[string]interface{}{"events": batch}); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d: %s", resp.StatusCode, body)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	var want float64
	for _, lm := range locals {
		for _, m := range lm.Engine().Obs().Snapshot() {
			if m.Name == "flowmotif_detection_lag_seconds" && m.Hist != nil {
				want += float64(m.Hist.Count)
			}
		}
	}
	if want == 0 {
		t.Fatal("no detection-lag observations on either member")
	}
	cf := scrape(t, front.Client(), front.URL+"/metrics?format=prometheus")
	merged := requireHistogram(t, cf, "flowmotif_detection_lag_seconds")
	if got := histCount(merged); got != want {
		t.Fatalf("merged detection-lag count %v, want sum of members %v", got, want)
	}
}
