package server

// GET /debug/top (DESIGN.md §14): the "who is expensive?" endpoint. It
// ranks subscriptions, plan groups, and (on a coordinator) shards by the
// engine's attributed cost account — ?by=cost (attributed seconds, the
// default), ?by=rate (EWMA attributed seconds per wall second), ?by=emits
// (instances emitted), or ?by=lag (detection lag; ranks shards, with cost
// ordering for subscriptions and groups, which have no per-sub lag
// signal). ?limit=N bounds every section (default 10, capped). The
// coordinator answer is member-stitched like /debug/traces: subscription
// rows carry their shard, plan groups merge across shards (the same
// (shape, δ) group living on several members folds into one cluster-wide
// row), and a shards section ranks the members themselves.

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"flowmotif/internal/obs"
)

// maxTopLimit caps ?limit= for /debug/top responses.
const maxTopLimit = 1000

// topSub is one subscription row of /debug/top.
type topSub struct {
	ID      string  `json:"id"`
	Shape   string  `json:"shape"`
	Member  string  `json:"member,omitempty"`
	Seconds float64 `json:"seconds"`
	Share   float64 `json:"share"`
	Rate    float64 `json:"rate"`
	Emits   int64   `json:"emits"`
}

// topGroup is one plan-group row; on a coordinator it is the cluster-wide
// merge of every shard's (shape, δ) account and Members counts the shards
// contributing.
type topGroup struct {
	Shape           string  `json:"shape"`
	Delta           int64   `json:"delta"`
	Subs            int     `json:"subs"`
	Members         int     `json:"members,omitempty"`
	Seconds         float64 `json:"seconds"`
	SnapshotSeconds float64 `json:"snapshotSeconds"`
	MatchSeconds    float64 `json:"matchSeconds"`
	FanoutSeconds   float64 `json:"fanoutSeconds"`
	MatchesVisited  int64   `json:"matchesVisited"`
	Emits           int64   `json:"emits"`
	Rate            float64 `json:"rate"`
}

// topShard is one member row of a coordinator's /debug/top.
type topShard struct {
	ID             string  `json:"id"`
	CostSeconds    float64 `json:"costSeconds"`
	Detections     int64   `json:"detections"`
	Subs           int     `json:"subs"`
	WatermarkLag   int64   `json:"watermarkLag"`
	ReplLagEntries int64   `json:"replLagEntries"`
	// LagP99 is the member's detection-lag p99 in seconds (0 when the
	// member shipped no lag histogram yet).
	LagP99 float64 `json:"lagP99"`
}

// topBy validates the ?by= ranking key.
func topBy(r *http.Request) (string, error) {
	by := r.URL.Query().Get("by")
	if by == "" {
		by = "cost"
	}
	switch by {
	case "cost", "rate", "emits", "lag":
		return by, nil
	}
	return "", fmt.Errorf("bad by parameter %q (want cost, rate, emits, or lag)", by)
}

func topLimit(r *http.Request) (int, error) {
	limit, err := intParam(r, "limit", 10)
	if err != nil {
		return 0, err
	}
	if limit > maxTopLimit {
		limit = maxTopLimit
	}
	return limit, nil
}

// sortSubs orders subscription rows by the ranking key (cost for lag,
// which has no per-subscription signal), ID-tiebroken for determinism.
func sortSubs(subs []topSub, by string) {
	sort.Slice(subs, func(i, j int) bool {
		a, b := subs[i], subs[j]
		var av, bv float64
		switch by {
		case "rate":
			av, bv = a.Rate, b.Rate
		case "emits":
			av, bv = float64(a.Emits), float64(b.Emits)
		default: // cost, lag
			av, bv = a.Seconds, b.Seconds
		}
		if av != bv {
			return av > bv
		}
		return a.ID < b.ID
	})
}

func sortGroups(groups []topGroup, by string) {
	sort.Slice(groups, func(i, j int) bool {
		a, b := groups[i], groups[j]
		var av, bv float64
		switch by {
		case "rate":
			av, bv = a.Rate, b.Rate
		case "emits":
			av, bv = float64(a.Emits), float64(b.Emits)
		default:
			av, bv = a.Seconds, b.Seconds
		}
		if av != bv {
			return av > bv
		}
		if a.Shape != b.Shape {
			return a.Shape < b.Shape
		}
		return a.Delta < b.Delta
	})
}

func clip[T any](rows []T, limit int) []T {
	if limit > 0 && limit < len(rows) {
		rows = rows[:limit]
	}
	return rows
}

// handleTop serves a single engine's /debug/top from its Stats cost
// section.
func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errGetRequired)
		return
	}
	by, err := topBy(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	limit, err := topLimit(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st := s.engine.Stats()
	if st.Cost.Rounds == 0 && st.Cost.AttributedSeconds == 0 && len(st.Groups) == 0 {
		writeErr(w, http.StatusNotFound, errors.New("cost attribution disabled or no rounds metered yet"))
		return
	}
	subs := make([]topSub, 0, len(st.Subs))
	for _, sub := range st.Subs {
		subs = append(subs, topSub{
			ID: sub.ID, Shape: sub.Shape,
			Seconds: sub.Cost.Seconds, Share: sub.Cost.Share,
			Rate: sub.Cost.Rate, Emits: sub.Cost.Emits,
		})
	}
	groups := make([]topGroup, 0, len(st.Groups))
	for _, g := range st.Groups {
		groups = append(groups, topGroup{
			Shape: g.Shape, Delta: g.Delta, Subs: g.Subs,
			Seconds: g.Seconds, SnapshotSeconds: g.SnapshotSeconds,
			MatchSeconds: g.MatchSeconds, FanoutSeconds: g.FanoutSeconds,
			MatchesVisited: g.MatchesVisited, Emits: g.Emits, Rate: g.Rate,
		})
	}
	sortSubs(subs, by)
	sortGroups(groups, by)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"by":                by,
		"limit":             limit,
		"attributedSeconds": st.Cost.AttributedSeconds,
		"rounds":            st.Cost.Rounds,
		"subs":              clip(subs, limit),
		"groups":            clip(groups, limit),
	})
}

// handleTop serves the coordinator's member-stitched /debug/top: per-sub
// rows tagged with their shard, plan groups merged cluster-wide through
// obs.TopAccum, and a shards section.
func (cs *Coordinator) handleTop(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errGetRequired)
		return
	}
	by, err := topBy(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	limit, err := topLimit(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st := cs.c.StatsTraced(requestSpan(r).Context())
	var clusterSeconds float64
	for _, m := range st.Members {
		clusterSeconds += m.CostSeconds
	}
	var subs []topSub
	acc := obs.NewTopAccum()
	groupMeta := map[string]*topGroup{}
	shards := make([]topShard, 0, len(st.Members))
	for _, m := range st.Members {
		for _, sc := range m.SubCosts {
			row := topSub{
				ID: sc.ID, Shape: sc.Shape, Member: m.ID,
				Seconds: sc.Cost.Seconds, Rate: sc.Cost.Rate, Emits: sc.Cost.Emits,
			}
			if clusterSeconds > 0 {
				// Share is re-based cluster-wide: the fraction of ALL
				// attributed engine seconds, not of one member's.
				row.Share = sc.Cost.Seconds / clusterSeconds
			}
			subs = append(subs, row)
		}
		for _, g := range m.GroupCosts {
			key := g.Shape + "|" + strconv.FormatInt(g.Delta, 10)
			acc.Add(key, g.Seconds)
			acc.AddField(key, "snapshot", g.SnapshotSeconds)
			acc.AddField(key, "match", g.MatchSeconds)
			acc.AddField(key, "fanout", g.FanoutSeconds)
			acc.AddField(key, "matches", float64(g.MatchesVisited))
			acc.AddField(key, "emits", float64(g.Emits))
			acc.AddField(key, "rate", g.Rate)
			meta := groupMeta[key]
			if meta == nil {
				meta = &topGroup{Shape: g.Shape, Delta: g.Delta}
				groupMeta[key] = meta
			}
			meta.Subs += g.Subs
			meta.Members++
		}
		shard := topShard{
			ID: m.ID, CostSeconds: m.CostSeconds, Detections: m.Detections,
			Subs: len(m.Subs), WatermarkLag: m.Lag, ReplLagEntries: m.ReplLagEntries,
		}
		for _, snap := range m.Metrics {
			if snap.Name == "flowmotif_detection_lag_seconds" && snap.Hist != nil && snap.Hist.Count > 0 {
				shard.LagP99 = snap.Hist.Quantile(0.99)
			}
		}
		shards = append(shards, shard)
	}
	groups := make([]topGroup, 0, len(groupMeta))
	for _, e := range acc.Top(0) {
		meta := groupMeta[e.Key]
		g := topGroup{
			Shape: meta.Shape, Delta: meta.Delta, Subs: meta.Subs, Members: meta.Members,
			Seconds:         e.Value,
			SnapshotSeconds: e.Fields["snapshot"],
			MatchSeconds:    e.Fields["match"],
			FanoutSeconds:   e.Fields["fanout"],
			MatchesVisited:  int64(e.Fields["matches"]),
			Emits:           int64(e.Fields["emits"]),
			Rate:            e.Fields["rate"],
		}
		groups = append(groups, g)
	}
	sortSubs(subs, by)
	sortGroups(groups, by)
	sortShards(shards, by)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"by":                by,
		"limit":             limit,
		"attributedSeconds": clusterSeconds,
		"members":           len(st.Members),
		"subs":              clip(subs, limit),
		"groups":            clip(groups, limit),
		"shards":            clip(shards, limit),
	})
}

// sortShards ranks members: by detection-lag p99 (then watermark lag) for
// ?by=lag, by attributed cost otherwise (emits ranks by detections).
func sortShards(shards []topShard, by string) {
	sort.Slice(shards, func(i, j int) bool {
		a, b := shards[i], shards[j]
		var av, bv float64
		switch by {
		case "lag":
			av, bv = a.LagP99, b.LagP99
			if av == bv {
				av, bv = float64(a.WatermarkLag), float64(b.WatermarkLag)
			}
		case "emits":
			av, bv = float64(a.Detections), float64(b.Detections)
		case "rate":
			av, bv = a.CostSeconds, b.CostSeconds
		default:
			av, bv = a.CostSeconds, b.CostSeconds
		}
		if av != bv {
			return av > bv
		}
		return a.ID < b.ID
	})
}
