package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"flowmotif/internal/obs"
	"flowmotif/internal/temporal"
	"flowmotif/internal/wire"
)

// This file is the binary wire-protocol listener (DESIGN.md §16): a
// persistent-connection TCP endpoint served next to the JSON API that
// decodes length-prefixed batch frames straight into a per-connection
// recycled event buffer and feeds them through the same applyIngest core
// the HTTP handler uses — same seq dedup, WAL coupling, fail-stop and
// error taxonomy, ~zero per-event cost on the decode path.

// wireMetrics bundles the binary listener's instruments. All of them are
// registered up front in New (not lazily at first connection) so a scrape
// — and the metrics-catalog drift check — sees the full wire series set
// whether or not a listener is armed. The struct pointer doubles as the
// observability gate for the serve loop's clocks: s.wx == nil under
// Config.DisableObs.
//
//flowmotif:obsgate
type wireMetrics struct {
	conns      *obs.Gauge
	req2xx     *obs.Counter
	req4xx     *obs.Counter
	req5xx     *obs.Counter
	events     *obs.Counter
	decode     *obs.Histogram
	apply      *obs.Histogram
	frameBytes *obs.Histogram
}

func newWireMetrics(reg *obs.Registry) *wireMetrics {
	const reqHelp = "Binary wire-protocol batch frames handled, by response class (2xx/4xx/5xx equivalents of the HTTP taxonomy)."
	return &wireMetrics{
		conns: reg.Gauge("flowmotif_wire_connections",
			"Open binary wire-protocol connections."),
		req2xx: reg.Counter("flowmotif_wire_requests_total", reqHelp, obs.L("code", "2xx")),
		req4xx: reg.Counter("flowmotif_wire_requests_total", reqHelp, obs.L("code", "4xx")),
		req5xx: reg.Counter("flowmotif_wire_requests_total", reqHelp, obs.L("code", "5xx")),
		events: reg.Counter("flowmotif_wire_events_total",
			"Events ingested over the binary wire protocol."),
		decode: reg.Histogram("flowmotif_wire_decode_seconds",
			"Wire frame decode latency (preamble + event run, excluding socket reads).", nil),
		apply: reg.Histogram("flowmotif_wire_apply_seconds",
			"Wire batch apply latency (engine ingest + WAL append).", nil),
		frameBytes: reg.Histogram("flowmotif_wire_frame_bytes",
			"Wire frame payload sizes in bytes.", obs.SizeBuckets),
	}
}

// observe records one handled frame by response class; the 5xx count
// feeds the SLO watchdog's error burn rate exactly like HTTP 5xx does.
func (m *wireMetrics) observe(status int) {
	if m == nil {
		return
	}
	switch codeClass(status) {
	case "2xx":
		m.req2xx.Add(1)
	case "5xx":
		m.req5xx.Add(1)
	default:
		m.req4xx.Add(1)
	}
}

// StartWire arms the binary wire-protocol listener on addr (e.g.
// ":9091"); the returned string is the bound address (useful with port
// 0). The listener serves until StopWire or Close. A server accepts at
// most one wire listener at a time.
func (s *Server) StartWire(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.wireMu.Lock()
	if s.wireLn != nil {
		s.wireMu.Unlock()
		ln.Close()
		return "", errors.New("server: wire listener already started")
	}
	s.wireLn = ln
	s.wirePort = ln.Addr().(*net.TCPAddr).Port
	s.wireConns = map[net.Conn]struct{}{}
	s.wireMu.Unlock()
	s.wireWG.Add(1)
	go s.acceptWire(ln)
	return ln.Addr().String(), nil
}

// WirePort reports the bound wire listener port (0 when not armed).
func (s *Server) WirePort() int {
	s.wireMu.Lock()
	defer s.wireMu.Unlock()
	if s.wireLn == nil {
		return 0
	}
	return s.wirePort
}

// StopWire closes the wire listener and every open connection, then
// waits for the per-connection goroutines to drain. Idempotent; no-op
// when no listener was started.
func (s *Server) StopWire() {
	s.wireMu.Lock()
	ln := s.wireLn
	s.wireLn = nil
	conns := s.wireConns
	s.wireConns = nil
	s.wireMu.Unlock()
	if ln == nil {
		return
	}
	ln.Close()
	for c := range conns {
		c.Close()
	}
	s.wireWG.Wait()
}

func (s *Server) acceptWire(ln net.Listener) {
	defer s.wireWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wireMu.Lock()
		if s.wireConns == nil { // StopWire raced the accept
			s.wireMu.Unlock()
			conn.Close()
			return
		}
		s.wireConns[conn] = struct{}{}
		s.wireMu.Unlock()
		s.wireWG.Add(1)
		go s.serveWireConn(conn)
	}
}

func (s *Server) dropWireConn(conn net.Conn) {
	conn.Close()
	s.wireMu.Lock()
	if s.wireConns != nil {
		delete(s.wireConns, conn)
	}
	s.wireMu.Unlock()
}

// resolveWireLabel maps a symbolic-mode definition label onto the
// server-wide node-id space shared with the JSON API (one interner for
// all connections, read-locked on the hit path so the steady state —
// every label already known — never serializes decoders).
func (s *Server) resolveWireLabel(label []byte) (temporal.NodeID, error) {
	s.wireInternMu.RLock()
	id, ok := s.wireIntern.LookupBytes(label)
	s.wireInternMu.RUnlock()
	if ok {
		return id, nil
	}
	s.wireInternMu.Lock()
	defer s.wireInternMu.Unlock()
	return s.wireIntern.ID(string(label)), nil
}

// WireInterner exposes the server-wide label interner (read-side helper
// for tests and demos mapping symbolic-mode ingest back to labels).
func (s *Server) WireInterner(f func(*temporal.Interner)) {
	s.wireInternMu.RLock()
	defer s.wireInternMu.RUnlock()
	f(s.wireIntern)
}

// serveWireConn runs one persistent connection: read frame, decode into
// the recycled buffer, apply through the shared ingest core, answer with
// an ack or a typed error frame. Framing-level failures (bad magic or
// CRC, oversized declared length) answer an error frame and close the
// connection — the byte stream cannot be resynced; semantic rejections
// (behind-frontier, fail-stop, validation) keep it open, mirroring how
// an HTTP 4xx/5xx keeps the keep-alive connection alive.
//
//flowmotif:hotpath
func (s *Server) serveWireConn(conn net.Conn) {
	defer s.wireWG.Done()
	defer s.dropWireConn(conn)
	if s.wx != nil {
		s.wx.conns.Add(1)
		defer s.wx.conns.Add(-1)
	}
	dec := wire.NewDecoder(bufio.NewReaderSize(conn, 1<<16))
	dec.MaxFrame = s.wireMaxFrame
	dec.Resolve = s.resolveWireLabel
	var out []byte // recycled response-frame buffer
	for {
		frame, err := dec.Next()
		if err != nil {
			if err != io.EOF {
				out = s.writeWireError(conn, out, err)
			}
			return
		}
		if frame.Type != wire.FrameBatch {
			out = s.writeWireError(conn, out,
				fmt.Errorf("%w: unexpected frame type 0x%02x from client", wire.ErrMalformed, frame.Type))
			return
		}
		var t0 time.Time
		if s.wx != nil {
			t0 = time.Now()
		}
		var root *obs.TraceSpan
		var evs []temporal.Event
		var derr error
		if s.tracer != nil {
			parent, _ := obs.ParseTraceparent(frame.Traceparent)
			root = s.tracer.StartSpan("wire.ingest", parent,
				obs.L("events", strconv.Itoa(frame.Count)),
				obs.L("seq", strconv.FormatInt(frame.Seq, 10)))
			dsp := s.tracer.StartSpan("wire.decode", root.Context(),
				obs.L("bytes", strconv.Itoa(frame.PayloadLen)))
			evs, derr = dec.Events()
			dsp.End()
		} else {
			evs, derr = dec.Events()
		}
		if s.wx != nil {
			s.wx.decode.ObserveExemplar(time.Since(t0).Seconds(), root.Context().Trace)
			s.wx.frameBytes.Observe(float64(frame.PayloadLen))
		}
		if derr != nil {
			if root != nil {
				root.Annotate(obs.L("error", derr.Error()))
				root.End()
			}
			s.wx.observe(http.StatusBadRequest)
			out = s.writeWireError(conn, out, derr)
			return
		}
		var t1 time.Time
		if s.wx != nil {
			t1 = time.Now()
		}
		resp, status, aerr := s.applyIngest(evs, frame.Seq, root.Context())
		if s.wx != nil {
			s.wx.apply.ObserveExemplar(time.Since(t1).Seconds(), root.Context().Trace)
			if status < 300 {
				s.wx.events.Add(int64(len(evs)))
			}
		}
		s.wx.observe(status)
		if root != nil {
			root.Annotate(obs.L("code", strconv.Itoa(status)))
			if aerr != nil {
				root.Annotate(obs.L("error", aerr.Error()))
			}
			root.End()
		}
		if aerr != nil {
			out = wire.AppendErrorFrame(out[:0], wireErrorCode(status), aerr.Error())
			if _, werr := conn.Write(out); werr != nil {
				return
			}
			continue
		}
		out = wire.AppendAckFrame(out[:0], wire.Ack{
			Seq:        resp.Seq,
			Ingested:   int64(resp.Ingested),
			Watermark:  resp.Watermark,
			Detections: resp.Detections,
			Dup:        resp.Dup,
			Trace:      resp.Trace,
		})
		if _, werr := conn.Write(out); werr != nil {
			return
		}
	}
}

// writeWireError answers a framing-level failure with a typed error
// frame (the caller then closes the connection). Returns the recycled
// buffer.
func (s *Server) writeWireError(conn net.Conn, out []byte, err error) []byte {
	code := wire.CodeBadFrame
	status := http.StatusBadRequest
	if errors.Is(err, wire.ErrFrameTooLarge) {
		// The 413 mirror: declared payload over Config.WireMaxFrameBytes.
		code = wire.CodeFrameTooLarge
		status = http.StatusRequestEntityTooLarge
	}
	s.wx.observe(status)
	out = wire.AppendErrorFrame(out[:0], code, err.Error())
	_, _ = conn.Write(out)
	return out
}

// wireErrorCode maps the shared ingest core's HTTP status taxonomy onto
// wire error codes.
func wireErrorCode(status int) wire.ErrorCode {
	switch status {
	case http.StatusConflict:
		return wire.CodeBehindFrontier
	case http.StatusInternalServerError:
		return wire.CodeInternal
	default:
		return wire.CodeRejected
	}
}
