package server

import (
	"fmt"
	"net/http/httptest"
	"runtime"
	"sort"
	"time"

	"flowmotif/internal/cluster"
	"flowmotif/internal/gen"
	"flowmotif/internal/stream"
	"flowmotif/internal/temporal"
)

// This file measures the binary wire protocol against the JSON transport
// it replaces, through the production client (cluster.HTTPMember) and the
// production server, in one process. Both directions of each comparison
// run interleaved from the same event stream, so the reported ratio —
// not the absolute events/sec — is what CI gates on
// (-bench-wire-min-speedup): same-run ratios survive machine changes.

// wireBenchBatch is the fixed comparison batch size: the replication
// pipeline's default coalescing target order of magnitude, and the batch
// size the acceptance gate names.
const wireBenchBatch = 512

// wireBenchStream builds the deterministic, time-ordered bench stream.
func wireBenchStream(events int, seed int64) ([]temporal.Event, error) {
	evs, err := gen.Bitcoin(gen.BitcoinConfig{
		Nodes:    2000,
		SeedTxns: events / 4,
		Duration: 500000,
		Seed:     seed,
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	if len(evs) > events {
		evs = evs[:events]
	}
	return evs, nil
}

// benchDaemon is one disposable member daemon: a zero-subscription member
// server (transport cost only — no detection work diluting the ratio)
// behind an httptest front end, with the binary listener armed.
type benchDaemon struct {
	srv  *Server
	ts   *httptest.Server
	addr string
}

func newBenchDaemon() (*benchDaemon, error) {
	srv, err := New(Config{Member: true, Recent: 1 << 17})
	if err != nil {
		return nil, err
	}
	addr, err := srv.StartWire("127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	return &benchDaemon{srv: srv, ts: httptest.NewServer(srv.Handler()), addr: addr}, nil
}

func (d *benchDaemon) close() {
	d.ts.Close()
	d.srv.Close()
}

// feedMember drives the whole stream through one HTTPMember in seq-tagged
// batches and returns events/sec.
func feedMember(m *cluster.HTTPMember, evs []temporal.Event) (float64, error) {
	var seq int64
	start := time.Now()
	for i := 0; i < len(evs); i += wireBenchBatch {
		end := i + wireBenchBatch
		if end > len(evs) {
			end = len(evs)
		}
		seq++
		if _, err := m.Ingest(cluster.Batch{Seq: seq, Events: evs[i:end]}); err != nil {
			return 0, err
		}
	}
	return float64(len(evs)) / time.Since(start).Seconds(), nil
}

// RunWireBench measures single-member ingest throughput over both
// transports: the same stream, batched at wireBenchBatch, delivered by a
// cluster.HTTPMember once pinned to JSON (DisableWire) and once pinned to
// the binary protocol (SetWireAddr), interleaved best-of-runs with a
// fresh daemon per measurement so neither direction inherits warm state.
func RunWireBench(events int, seed int64, runs int) (*stream.WireBenchResult, error) {
	if events <= 0 {
		events = 30000
	}
	if runs <= 0 {
		runs = 3
	}
	evs, err := wireBenchStream(events, seed)
	if err != nil {
		return nil, err
	}
	res := &stream.WireBenchResult{BatchSize: wireBenchBatch, Events: len(evs), Runs: runs}
	for r := 0; r < runs; r++ {
		for _, binary := range []bool{false, true} {
			d, err := newBenchDaemon()
			if err != nil {
				return nil, err
			}
			m := cluster.NewHTTPMember("wirebench", d.ts.URL, d.ts.Client())
			if binary {
				m.SetWireAddr(d.addr)
			} else {
				m.DisableWire()
			}
			runtime.GC()
			rate, err := feedMember(m, evs)
			m.CloseWire()
			d.close()
			if err != nil {
				return nil, fmt.Errorf("wire bench (binary=%v): %w", binary, err)
			}
			if binary && rate > res.WireEventsPerSec {
				res.WireEventsPerSec = rate
			}
			if !binary && rate > res.JSONEventsPerSec {
				res.JSONEventsPerSec = rate
			}
		}
	}
	if res.JSONEventsPerSec > 0 {
		res.Speedup = res.WireEventsPerSec / res.JSONEventsPerSec
	}
	return res, nil
}

// RunWireReplicationBench measures the replication pipeline end to end
// against a daemon shard set — coordinator, log, per-member replicators —
// with deliveries pinned to JSON and then to the binary protocol. The
// sustained rate includes the drain barrier (every member has applied the
// whole log), which is the figure backpressure bounds on long streams.
func RunWireReplicationBench(shards, events int, seed int64, runs int) (*cluster.WireReplicationResult, error) {
	if shards <= 0 {
		shards = 4
	}
	if events <= 0 {
		events = 30000
	}
	if runs <= 0 {
		runs = 2
	}
	evs, err := wireBenchStream(events, seed)
	if err != nil {
		return nil, err
	}
	res := &cluster.WireReplicationResult{
		Shards: shards, Events: len(evs), BatchSize: wireBenchBatch, Runs: runs,
	}
	measure := func(binary bool) (float64, error) {
		var daemons []*benchDaemon
		defer func() {
			for _, d := range daemons {
				d.close()
			}
		}()
		members := make([]cluster.Member, shards)
		for i := range members {
			d, err := newBenchDaemon()
			if err != nil {
				return 0, err
			}
			daemons = append(daemons, d)
			m := cluster.NewHTTPMember(fmt.Sprintf("shard-%d", i), d.ts.URL, d.ts.Client())
			if binary {
				m.SetWireAddr(d.addr)
			} else {
				m.DisableWire()
			}
			members[i] = m
		}
		c, err := cluster.New(cluster.Config{
			Members:      members,
			HistoryLimit: 4 * wireBenchBatch,
			RetryDelay:   5 * time.Millisecond,
		})
		if err != nil {
			return 0, err
		}
		defer c.Close()
		runtime.GC()
		start := time.Now()
		for i := 0; i < len(evs); i += wireBenchBatch {
			end := i + wireBenchBatch
			if end > len(evs) {
				end = len(evs)
			}
			if _, err := c.Ingest(evs[i:end]); err != nil {
				return 0, err
			}
		}
		if err := c.Drain(); err != nil {
			return 0, err
		}
		return float64(len(evs)) / time.Since(start).Seconds(), nil
	}
	for r := 0; r < runs; r++ {
		for _, binary := range []bool{false, true} {
			rate, err := measure(binary)
			if err != nil {
				return nil, fmt.Errorf("wire replication bench (binary=%v): %w", binary, err)
			}
			if binary && rate > res.WireEventsPerSec {
				res.WireEventsPerSec = rate
			}
			if !binary && rate > res.JSONEventsPerSec {
				res.JSONEventsPerSec = rate
			}
		}
	}
	if res.JSONEventsPerSec > 0 {
		res.Speedup = res.WireEventsPerSec / res.JSONEventsPerSec
	}
	return res, nil
}
