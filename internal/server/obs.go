package server

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"flowmotif/internal/obs"
)

var (
	errGetRequired     = errors.New("GET required")
	errTracingDisabled = errors.New("tracing disabled")
)

// This file is the serving layer's observability plumbing, shared by the
// single-engine Server and the cluster Coordinator: a status-capturing
// ResponseWriter so request counts split by response class, per-endpoint
// latency histograms (flowmotif_http_request_seconds{endpoint,code}), the
// per-request trace span ("http.<endpoint>", continuing an incoming W3C
// traceparent or rooting a new trace), slow-request tail sampling, and
// the helpers that render metrics into the flat JSON map and the
// Prometheus exposition.

// statusWriter records the response status the handler committed, so the
// request accounting can split by class. A handler that never calls
// WriteHeader implicitly answers 200 on the first Write.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// codeClass buckets a status code into the label value of the request
// histogram ("2xx", "4xx", "5xx", ...).
func codeClass(code int) string {
	switch {
	case code >= 200 && code < 300:
		return "2xx"
	case code >= 300 && code < 400:
		return "3xx"
	case code >= 400 && code < 500:
		return "4xx"
	case code >= 500:
		return "5xx"
	default:
		return "1xx"
	}
}

// endpointMetrics accumulates request counts per endpoint, split by
// response class. Latency distribution lives in the registry's
// flowmotif_http_request_seconds histograms; totalMicros only backs the
// legacy avg_us field of the flat metric map.
type endpointMetrics struct {
	count       atomic.Int64
	totalMicros atomic.Int64
	c2xx        atomic.Int64
	c4xx        atomic.Int64
	c5xx        atomic.Int64
	cOther      atomic.Int64 // 1xx/3xx
}

const httpHistHelp = "HTTP request latency by endpoint and response class."

// spanKey keys the request's trace span in the request context; handlers
// fetch it with requestSpan to parent their own spans (engine ingest,
// cluster scatter-gather) onto the request.
type spanKey struct{}

// requestSpan returns the request's "http.<endpoint>" span, or nil when
// tracing is off (every obs span operation is nil-safe).
func requestSpan(r *http.Request) *obs.TraceSpan {
	sp, _ := r.Context().Value(spanKey{}).(*obs.TraceSpan)
	return sp
}

// requestObs bundles what the request-accounting middleware needs beyond
// the per-endpoint counters: the metrics registry, the trace flight
// recorder, and the slow-request tail-sampling policy. Shared by the
// single-engine Server and the cluster Coordinator.
type requestObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	slow   time.Duration // retain + warn when a request exceeds this (0: off)
	logger *slog.Logger
}

// wrap decorates a handler with the shared request accounting: total and
// per-class counts into m, latency into the registry's per-(endpoint,
// code-class) histogram (with the request's trace as exemplar), and one
// "http.<endpoint>" span per request — continuing the caller's
// traceparent header when present, rooting a fresh trace otherwise. A
// request slower than o.slow is tail-sampled: its trace is retained in
// the flight recorder and a warning logs the same trace ID that keys
// /debug/traces and the histogram exemplar. Class histograms register
// lazily on first use, so an endpoint that never errors never grows
// 4xx/5xx series.
func (o requestObs) wrap(reqs *atomic.Int64, m *endpointMetrics, name string, h http.HandlerFunc) http.HandlerFunc {
	// The in-flight gauge registers once per endpoint at wrap time, so a
	// saturated endpoint is visible (requests entered, none finished)
	// before its latency histogram moves at all.
	var inflight *obs.Gauge
	if o.reg != nil {
		inflight = o.reg.Gauge("flowmotif_http_inflight",
			"HTTP requests currently being served, by endpoint.",
			obs.L("endpoint", name))
	}
	return func(w http.ResponseWriter, r *http.Request) {
		reqs.Add(1)
		inflight.Add(1)
		defer inflight.Add(-1)
		sw := &statusWriter{ResponseWriter: w}
		var sp *obs.TraceSpan
		if o.tracer != nil {
			parent, _ := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
			sp = o.tracer.StartSpan("http."+name, parent, obs.L("method", r.Method))
			r = r.WithContext(context.WithValue(r.Context(), spanKey{}, sp))
		}
		start := time.Now()
		h(sw, r)
		d := time.Since(start)
		m.count.Add(1)
		m.totalMicros.Add(d.Microseconds())
		code := sw.status
		if code == 0 {
			// The handler wrote nothing at all (e.g. a bare 200 with an
			// empty body never touches the writer): net/http answers 200.
			code = http.StatusOK
		}
		switch class := codeClass(code); class {
		case "2xx":
			m.c2xx.Add(1)
		case "4xx":
			m.c4xx.Add(1)
		case "5xx":
			m.c5xx.Add(1)
		default:
			m.cOther.Add(1)
		}
		trace := sp.Context().Trace
		sp.Annotate(obs.L("code", strconv.Itoa(code)))
		sp.End()
		if o.slow > 0 && d > o.slow && sp != nil {
			o.tracer.Retain(trace)
			if o.logger != nil {
				o.logger.Warn("slow request",
					slog.String("endpoint", name),
					slog.Duration("total", d),
					slog.Int("code", code),
					slog.String("trace", trace))
			}
		}
		if o.reg != nil {
			hist := o.reg.Histogram("flowmotif_http_request_seconds", httpHistHelp, nil,
				obs.L("endpoint", name), obs.L("code", codeClass(code)))
			if trace != "" {
				hist.ObserveExemplar(d.Seconds(), trace)
			} else {
				hist.Observe(d.Seconds())
			}
		}
	}
}

// flatEndpointMetrics renders the per-endpoint request accounting into the
// flat metric map: count and class splits from m, the legacy avg_us mean,
// and latency quantiles from the registry histograms (merged across
// response classes per endpoint).
func flatEndpointMetrics(out map[string]interface{}, eps map[string]*endpointMetrics, reg *obs.Registry) {
	q := endpointQuantiles(reg)
	for name, m := range eps {
		n := m.count.Load()
		p := "requests." + name + "."
		out[p+"count"] = n
		avg := int64(0)
		if n > 0 {
			avg = m.totalMicros.Load() / n
		}
		out[p+"avg_us"] = avg
		out[p+"2xx"] = m.c2xx.Load()
		out[p+"4xx"] = m.c4xx.Load()
		out[p+"5xx"] = m.c5xx.Load()
		if qs, ok := q[name]; ok {
			out[p+"p50_us"] = int64(qs.P50 * 1e6)
			out[p+"p95_us"] = int64(qs.P95 * 1e6)
			out[p+"p99_us"] = int64(qs.P99 * 1e6)
		}
	}
}

// endpointQuantiles merges each endpoint's per-class request histograms
// into one distribution and summarizes it.
func endpointQuantiles(reg *obs.Registry) map[string]obs.Quantiles {
	if reg == nil {
		return nil
	}
	merged := map[string]*obs.HistogramSnapshot{}
	for _, m := range reg.Snapshot() {
		if m.Name != "flowmotif_http_request_seconds" || m.Hist == nil {
			continue
		}
		var ep string
		for _, l := range m.Labels {
			if l.Key == "endpoint" {
				ep = l.Value
			}
		}
		if ep == "" {
			continue
		}
		h := merged[ep]
		if h == nil {
			h = &obs.HistogramSnapshot{}
			merged[ep] = h
		}
		_ = h.Merge(*m.Hist) // same bounds by construction
	}
	out := make(map[string]obs.Quantiles, len(merged))
	for ep, h := range merged {
		out[ep] = h.Summary()
	}
	return out
}

// gaugeSnap and counterSnap lift a point-in-time scalar into a metric
// snapshot for the Prometheus exposition (used for the engine/store/cluster
// gauges that live in Stats structs rather than the registry).
func gaugeSnap(name, help string, v float64, labels ...obs.Label) obs.MetricSnapshot {
	return obs.MetricSnapshot{Name: name, Help: help, Kind: obs.KindGauge, Labels: labels, Value: v}
}

func counterSnap(name, help string, v float64, labels ...obs.Label) obs.MetricSnapshot {
	return obs.MetricSnapshot{Name: name, Help: help, Kind: obs.KindCounter, Labels: labels, Value: v}
}

// writePrometheusResponse renders snapshots in the Prometheus text format.
func writePrometheusResponse(w http.ResponseWriter, snaps []obs.MetricSnapshot) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = obs.WritePrometheus(w, snaps)
}

// maxTraceLimit caps GET /debug/traces responses: the flight recorder
// retains thousands of spans, and an unbounded listing would ship them
// all to a curious client.
const maxTraceLimit = 500

// serveTraces answers GET /debug/traces for both server roles. Without
// parameters it lists recent trace summaries (?limit=N, default 50,
// capped; ?slowest=1 ranks by root-span duration instead of recency).
// With ?trace=<id> it returns that trace's spans — via fetch, which the
// coordinator points at its cross-member stitcher — plus the assembled
// span tree.
func serveTraces(w http.ResponseWriter, r *http.Request, tracer *obs.Tracer, fetch func(string) []obs.SpanRecord) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errGetRequired)
		return
	}
	if tracer == nil {
		writeErr(w, http.StatusNotFound, errTracingDisabled)
		return
	}
	if trace := r.URL.Query().Get("trace"); trace != "" {
		spans := fetch(trace)
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"trace": trace,
			"count": len(spans),
			"spans": spans,
			"tree":  obs.BuildSpanTree(spans),
		})
		return
	}
	limit, err := intParam(r, "limit", 50)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if limit > maxTraceLimit {
		limit = maxTraceLimit
	}
	slowest := r.URL.Query().Get("slowest") != ""
	sums := tracer.Summaries(limit, slowest)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"total":   tracer.Total(),
		"count":   len(sums),
		"slowest": slowest,
		"traces":  sums,
	})
}
