package server

import (
	"net/http"
	"sync/atomic"
	"time"

	"flowmotif/internal/obs"
)

// This file is the serving layer's observability plumbing, shared by the
// single-engine Server and the cluster Coordinator: a status-capturing
// ResponseWriter so request counts split by response class, per-endpoint
// latency histograms (flowmotif_http_request_seconds{endpoint,code}), and
// the helpers that render them into the flat JSON metric map and the
// Prometheus exposition.

// statusWriter records the response status the handler committed, so the
// request accounting can split by class. A handler that never calls
// WriteHeader implicitly answers 200 on the first Write.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// codeClass buckets a status code into the label value of the request
// histogram ("2xx", "4xx", "5xx", ...).
func codeClass(code int) string {
	switch {
	case code >= 200 && code < 300:
		return "2xx"
	case code >= 300 && code < 400:
		return "3xx"
	case code >= 400 && code < 500:
		return "4xx"
	case code >= 500:
		return "5xx"
	default:
		return "1xx"
	}
}

// endpointMetrics accumulates request counts per endpoint, split by
// response class. Latency distribution lives in the registry's
// flowmotif_http_request_seconds histograms; totalMicros only backs the
// legacy avg_us field of the flat metric map.
type endpointMetrics struct {
	count       atomic.Int64
	totalMicros atomic.Int64
	c2xx        atomic.Int64
	c4xx        atomic.Int64
	c5xx        atomic.Int64
	cOther      atomic.Int64 // 1xx/3xx
}

const httpHistHelp = "HTTP request latency by endpoint and response class."

// countRequests wraps a handler with the shared request accounting: total
// and per-class counts into m, latency into the registry's per-(endpoint,
// code-class) histogram. Class histograms register lazily on first use, so
// an endpoint that never errors never grows 4xx/5xx series.
func countRequests(reg *obs.Registry, reqs *atomic.Int64, m *endpointMetrics, name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reqs.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		d := time.Since(start)
		m.count.Add(1)
		m.totalMicros.Add(d.Microseconds())
		code := sw.status
		if code == 0 {
			// The handler wrote nothing at all (e.g. a bare 200 with an
			// empty body never touches the writer): net/http answers 200.
			code = http.StatusOK
		}
		switch class := codeClass(code); class {
		case "2xx":
			m.c2xx.Add(1)
		case "4xx":
			m.c4xx.Add(1)
		case "5xx":
			m.c5xx.Add(1)
		default:
			m.cOther.Add(1)
		}
		if reg != nil {
			reg.Histogram("flowmotif_http_request_seconds", httpHistHelp, nil,
				obs.L("endpoint", name), obs.L("code", codeClass(code))).Observe(d.Seconds())
		}
	}
}

// flatEndpointMetrics renders the per-endpoint request accounting into the
// flat metric map: count and class splits from m, the legacy avg_us mean,
// and latency quantiles from the registry histograms (merged across
// response classes per endpoint).
func flatEndpointMetrics(out map[string]interface{}, eps map[string]*endpointMetrics, reg *obs.Registry) {
	q := endpointQuantiles(reg)
	for name, m := range eps {
		n := m.count.Load()
		p := "requests." + name + "."
		out[p+"count"] = n
		avg := int64(0)
		if n > 0 {
			avg = m.totalMicros.Load() / n
		}
		out[p+"avg_us"] = avg
		out[p+"2xx"] = m.c2xx.Load()
		out[p+"4xx"] = m.c4xx.Load()
		out[p+"5xx"] = m.c5xx.Load()
		if qs, ok := q[name]; ok {
			out[p+"p50_us"] = int64(qs.P50 * 1e6)
			out[p+"p95_us"] = int64(qs.P95 * 1e6)
			out[p+"p99_us"] = int64(qs.P99 * 1e6)
		}
	}
}

// endpointQuantiles merges each endpoint's per-class request histograms
// into one distribution and summarizes it.
func endpointQuantiles(reg *obs.Registry) map[string]obs.Quantiles {
	if reg == nil {
		return nil
	}
	merged := map[string]*obs.HistogramSnapshot{}
	for _, m := range reg.Snapshot() {
		if m.Name != "flowmotif_http_request_seconds" || m.Hist == nil {
			continue
		}
		var ep string
		for _, l := range m.Labels {
			if l.Key == "endpoint" {
				ep = l.Value
			}
		}
		if ep == "" {
			continue
		}
		h := merged[ep]
		if h == nil {
			h = &obs.HistogramSnapshot{}
			merged[ep] = h
		}
		_ = h.Merge(*m.Hist) // same bounds by construction
	}
	out := make(map[string]obs.Quantiles, len(merged))
	for ep, h := range merged {
		out[ep] = h.Summary()
	}
	return out
}

// gaugeSnap and counterSnap lift a point-in-time scalar into a metric
// snapshot for the Prometheus exposition (used for the engine/store/cluster
// gauges that live in Stats structs rather than the registry).
func gaugeSnap(name, help string, v float64, labels ...obs.Label) obs.MetricSnapshot {
	return obs.MetricSnapshot{Name: name, Help: help, Kind: obs.KindGauge, Labels: labels, Value: v}
}

func counterSnap(name, help string, v float64, labels ...obs.Label) obs.MetricSnapshot {
	return obs.MetricSnapshot{Name: name, Help: help, Kind: obs.KindCounter, Labels: labels, Value: v}
}

// writePrometheusResponse renders snapshots in the Prometheus text format.
func writePrometheusResponse(w http.ResponseWriter, snaps []obs.MetricSnapshot) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = obs.WritePrometheus(w, snaps)
}
