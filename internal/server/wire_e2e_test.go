package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"flowmotif/internal/cluster"
	"flowmotif/internal/core"
	"flowmotif/internal/gen"
	"flowmotif/internal/motif"
	"flowmotif/internal/stream"
	"flowmotif/internal/temporal"
	"flowmotif/internal/wire"
)

// wireTestSubs is the subscription set both transports serve in the
// oracle tests.
func wireTestSubs() []stream.Subscription {
	return []stream.Subscription{
		{ID: "tri", Motif: motif.MustPath(0, 1, 2, 0), Delta: 600, Phi: 1},
		{ID: "chain", Motif: motif.MustPath(0, 1, 2), Delta: 300, Phi: 0},
	}
}

// startWireServer builds a server, arms its binary listener, and wraps
// its HTTP handler in an httptest server for the query side.
func startWireServer(t *testing.T, cfg Config) (*Server, *httptest.Server, string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	addr, err := srv.StartWire("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, addr
}

// TestWireVsJSONIngestOracle is the protocol-compatibility oracle: the
// same seq-tagged event stream through the JSON API and through the
// binary wire protocol must produce identical per-batch acks (ingested,
// watermark, detections, seq, dup), identical final detection sets, and
// identical seq-dedup behavior — including a resend after a dropped ack
// arriving over a fresh binary connection.
func TestWireVsJSONIngestOracle(t *testing.T) {
	evs, err := gen.Bitcoin(gen.BitcoinConfig{Nodes: 80, SeedTxns: 200, Duration: 12000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })

	_, jsonTS, _ := startWireServer(t, Config{Subs: wireTestSubs()})
	_, wireTS, wireAddr := startWireServer(t, Config{Subs: wireTestSubs()})

	cli, err := wire.Dial(wireAddr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Feed the identical batch sequence through both transports. Batches
	// are shuffled internally so both the JSON handler's pre-sort and the
	// wire encoder's sort path run.
	rng := rand.New(rand.NewSource(4))
	var seq int64
	var lastWireAck wire.Ack
	var lastBatch []temporal.Event
	for i := 0; i < len(evs); {
		n := 1 + rng.Intn(96)
		if i+n > len(evs) {
			n = len(evs) - i
		}
		batch := append([]temporal.Event(nil), evs[i:i+n]...)
		rng.Shuffle(len(batch), func(a, b int) { batch[a], batch[b] = batch[b], batch[a] })
		seq++

		events := make([]map[string]interface{}, len(batch))
		for j, e := range batch {
			events[j] = map[string]interface{}{"from": e.From, "to": e.To, "t": e.T, "f": e.F}
		}
		resp, body := postJSON(t, jsonTS.Client(), jsonTS.URL+"/ingest",
			map[string]interface{}{"events": events, "seq": seq})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("json ingest seq %d: %d: %s", seq, resp.StatusCode, body)
		}
		var jsonAck ingestResponse
		if err := json.Unmarshal(body, &jsonAck); err != nil {
			t.Fatal(err)
		}

		wireAck, err := cli.Ingest(seq, "", batch)
		if err != nil {
			t.Fatalf("wire ingest seq %d: %v", seq, err)
		}
		if int(wireAck.Ingested) != jsonAck.Ingested || wireAck.Watermark != jsonAck.Watermark ||
			wireAck.Detections != jsonAck.Detections || wireAck.Seq != jsonAck.Seq || wireAck.Dup != jsonAck.Dup {
			t.Fatalf("seq %d acks diverge: wire %+v, json %+v", seq, wireAck, jsonAck)
		}
		lastWireAck = wireAck
		lastBatch = batch
		i += n
	}

	// Resend after a dropped ack: a fresh connection (the reconnect a
	// transport failure forces) resends the last seq-tagged batch and must
	// get the recorded ack back, dup-flagged, with nothing re-applied.
	cli2, err := wire.Dial(wireAddr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	dup, err := cli2.Ingest(seq, "", lastBatch)
	if err != nil {
		t.Fatalf("resend over fresh connection: %v", err)
	}
	if !dup.Dup || dup.Ingested != lastWireAck.Ingested || dup.Watermark != lastWireAck.Watermark ||
		dup.Detections != lastWireAck.Detections || dup.Seq != lastWireAck.Seq {
		t.Fatalf("resend ack = %+v, want dup of %+v", dup, lastWireAck)
	}

	// An untagged behind-frontier batch is rejected with the typed 409
	// equivalent — and the connection survives the rejection.
	_, err = cli.Ingest(0, "", []temporal.Event{{From: 0, To: 1, T: 1, F: 1}})
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeBehindFrontier {
		t.Fatalf("behind-frontier over wire: %v, want RemoteError code %d", err, wire.CodeBehindFrontier)
	}
	if _, err := cli.Ingest(seq, "", lastBatch); err != nil {
		t.Fatalf("connection unusable after a semantic rejection: %v", err)
	}

	// Flush both and compare the final detection sets per subscription.
	for _, ts := range []*httptest.Server{jsonTS, wireTS} {
		if resp, body := postJSON(t, ts.Client(), ts.URL+"/flush", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("flush: %d: %s", resp.StatusCode, body)
		}
	}
	for _, sub := range wireTestSubs() {
		keys := make([]map[string]bool, 2)
		for si, ts := range []*httptest.Server{jsonTS, wireTS} {
			var got struct {
				Instances []*stream.Detection `json:"instances"`
			}
			resp := getJSON(t, ts.Client(), ts.URL+"/instances?limit=0&sub="+sub.ID, &got)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("instances %s: %d", sub.ID, resp.StatusCode)
			}
			keys[si] = map[string]bool{}
			for _, d := range got.Instances {
				keys[si][detKey(d)] = true
			}
		}
		if len(keys[0]) == 0 {
			t.Fatalf("sub %s: oracle vacuous, no detections", sub.ID)
		}
		if len(keys[0]) != len(keys[1]) {
			t.Fatalf("sub %s: json served %d instances, wire served %d", sub.ID, len(keys[0]), len(keys[1]))
		}
		for k := range keys[0] {
			if !keys[1][k] {
				t.Fatalf("sub %s: instance %s served over json but not over wire", sub.ID, k)
			}
		}
	}
}

// TestWireSymbolicIngest pins the interning protocol end to end: labeled
// events through the binary transport resolve onto the server-wide
// interner (first-use dense ids), detect, and a second connection's
// definitions land in the same id space.
func TestWireSymbolicIngest(t *testing.T) {
	subs := []stream.Subscription{{ID: "edge", Motif: motif.MustPath(0, 1), Delta: 100, Phi: 0}}
	srv, ts, addr := startWireServer(t, Config{Subs: subs})

	cli, err := wire.Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ack, err := cli.IngestLabeled(0, "", []wire.LabeledEvent{
		{From: "alice", To: "bob", T: 10, F: 2},
		{From: "bob", To: "carol", T: 20, F: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Ingested != 2 {
		t.Fatalf("ack = %+v, want 2 ingested", ack)
	}
	// A second connection has its own per-connection symbol table but
	// shares the server id space: "bob" must resolve to the id the first
	// connection defined.
	cli2, err := wire.Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	if _, err := cli2.IngestLabeled(0, "", []wire.LabeledEvent{
		{From: "bob", To: "alice", T: 30, F: 5},
	}); err != nil {
		t.Fatal(err)
	}
	srv.WireInterner(func(in *temporal.Interner) {
		if in.Len() != 3 {
			t.Fatalf("server interner holds %d labels, want 3 (shared across connections)", in.Len())
		}
		for _, l := range []string{"alice", "bob", "carol"} {
			if _, ok := in.Lookup(l); !ok {
				t.Fatalf("label %q not interned", l)
			}
		}
	})
	if resp, body := postJSON(t, ts.Client(), ts.URL+"/flush", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %d: %s", resp.StatusCode, body)
	}
	var got struct {
		Instances []*stream.Detection `json:"instances"`
	}
	if resp := getJSON(t, ts.Client(), ts.URL+"/instances?limit=0&sub=edge", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("instances: %d", resp.StatusCode)
	}
	if len(got.Instances) == 0 {
		t.Fatal("no detections from symbolic ingest")
	}
}

// TestWireFrameTooLarge pins the 413 mirror: a frame whose declared
// payload exceeds Config.WireMaxFrameBytes is rejected with the typed
// too-large error frame before the payload is read, and the connection
// is closed (framing cannot resync).
func TestWireFrameTooLarge(t *testing.T) {
	_, _, addr := startWireServer(t, Config{Subs: wireTestSubs(), WireMaxFrameBytes: 256})

	cli, err := wire.Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	big := make([]temporal.Event, 512)
	for i := range big {
		big[i] = temporal.Event{From: temporal.NodeID(i), To: temporal.NodeID(i + 1), T: int64(i), F: 1}
	}
	_, err = cli.Ingest(1, "", big)
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeFrameTooLarge {
		t.Fatalf("oversized frame: %v, want RemoteError code %d", err, wire.CodeFrameTooLarge)
	}
	// The server closed the connection: the client retired it too.
	if !cli.Broken() {
		t.Fatal("client still considers the connection usable after a framing-level rejection")
	}
	// A small frame on a fresh connection still works.
	cli2, err := wire.Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	if _, err := cli2.Ingest(1, "", big[:4]); err != nil {
		t.Fatalf("small frame after reconnect: %v", err)
	}
}

// TestWireMetricsAndHealthz pins the listener's observability contract:
// /healthz advertises the wire port (the auto-upgrade discovery signal),
// the connection gauge tracks opens, and the request/event counters move
// with traffic — including the 4xx class on a semantic rejection.
func TestWireMetricsAndHealthz(t *testing.T) {
	srv, ts, addr := startWireServer(t, Config{Subs: wireTestSubs()})

	var hz struct {
		WirePort int `json:"wirePort"`
	}
	getJSON(t, ts.Client(), ts.URL+"/healthz", &hz)
	if hz.WirePort != srv.WirePort() || hz.WirePort == 0 {
		t.Fatalf("healthz wirePort = %d, server says %d", hz.WirePort, srv.WirePort())
	}

	cli, err := wire.Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Ingest(0, "", []temporal.Event{
		{From: 0, To: 1, T: 100, F: 2}, {From: 1, To: 2, T: 160, F: 3},
	}); err != nil {
		t.Fatal(err)
	}
	// One behind-frontier rejection for the 4xx series.
	if _, err := cli.Ingest(0, "", []temporal.Event{{From: 0, To: 1, T: 1, F: 1}}); err == nil {
		t.Fatal("behind-frontier batch accepted")
	}

	want := map[string]bool{
		"flowmotif_wire_connections":    false,
		"flowmotif_wire_requests_total": false,
		"flowmotif_wire_events_total":   false,
		"flowmotif_wire_decode_seconds": false,
		"flowmotif_wire_apply_seconds":  false,
		"flowmotif_wire_frame_bytes":    false,
	}
	var conns, req2xx, req4xx, events float64
	for _, m := range srv.Obs().Snapshot() {
		if _, ok := want[m.Name]; ok {
			want[m.Name] = true
		}
		switch m.Name {
		case "flowmotif_wire_connections":
			conns = m.Value
		case "flowmotif_wire_events_total":
			events = m.Value
		case "flowmotif_wire_requests_total":
			for _, l := range m.Labels {
				if l.Key == "code" {
					switch l.Value {
					case "2xx":
						req2xx = m.Value
					case "4xx":
						req4xx = m.Value
					}
				}
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("registry missing %s", name)
		}
	}
	if conns != 1 {
		t.Errorf("wire_connections = %v with one open client, want 1", conns)
	}
	if req2xx != 1 || req4xx != 1 {
		t.Errorf("wire_requests_total 2xx=%v 4xx=%v, want 1 and 1", req2xx, req4xx)
	}
	if events != 2 {
		t.Errorf("wire_events_total = %v, want 2", events)
	}

	// The Prometheus exposition carries the series too (scrape parity
	// with the catalog drift check).
	resp, err := ts.Client().Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "flowmotif_wire_requests_total") {
		t.Error("prometheus exposition missing flowmotif_wire_requests_total")
	}
}

// TestMixedTransportClusterE2E is the mixed-transport cluster oracle:
// clients speak JSON to the coordinator's front door while replication
// to the member daemons runs over the binary wire protocol (negotiated
// automatically from the members' /healthz advertisements) — and the
// served detection set still equals the batch search. One member stays
// JSON-only to prove both transports coexist in one replication pipeline.
func TestMixedTransportClusterE2E(t *testing.T) {
	evs, err := gen.Bitcoin(gen.BitcoinConfig{Nodes: 100, SeedTxns: 240, Duration: 12000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	g, err := temporal.NewGraph(evs)
	if err != nil {
		t.Fatal(err)
	}
	subs := wireTestSubs()

	// Two member daemons with wire listeners armed, one without — the
	// coordinator must speak binary to the first two and JSON to the
	// third, from the same replication pipeline.
	var members []cluster.Member
	var wired []*cluster.HTTPMember
	var daemons []*Server
	for i, arm := range []bool{true, true, false} {
		srv, err := New(Config{Member: true, Recent: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		daemons = append(daemons, srv)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		if arm {
			if _, err := srv.StartWire("127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
		}
		m := cluster.NewHTTPMember(fmt.Sprintf("m%d", i), ts.URL, ts.Client())
		members = append(members, m)
		if arm {
			wired = append(wired, m)
		}
	}
	c, err := cluster.New(cluster.Config{Members: members, Subs: subs, RetryDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cs := NewCoordinator(c, 0)
	front := httptest.NewServer(cs.Handler())
	defer front.Close()
	client := front.Client()

	rng := rand.New(rand.NewSource(9))
	for i := 0; i < len(evs); {
		n := 1 + rng.Intn(64)
		if i+n > len(evs) {
			n = len(evs) - i
		}
		batch := make([]map[string]interface{}, n)
		for j, e := range evs[i : i+n] {
			batch[j] = map[string]interface{}{"from": e.From, "to": e.To, "t": e.T, "f": e.F}
		}
		if resp, body := postJSON(t, client, front.URL+"/ingest",
			map[string]interface{}{"events": batch}); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest: %d: %s", resp.StatusCode, body)
		}
		i += n
	}
	if resp, body := postJSON(t, client, front.URL+"/flush", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %d: %s", resp.StatusCode, body)
	}

	// The armed members really negotiated and used the binary transport.
	for i, m := range wired {
		if !m.UsingWire() {
			t.Errorf("member %d did not negotiate the wire transport", i)
		}
	}
	wireFed := 0
	for _, srv := range daemons {
		for _, m := range srv.Obs().Snapshot() {
			if m.Name == "flowmotif_wire_events_total" && m.Value > 0 {
				wireFed++
			}
		}
	}
	if wireFed != 2 {
		t.Fatalf("%d members ingested over the wire protocol, want 2", wireFed)
	}

	// Oracle: served instances == batch search, per subscription.
	for _, sub := range subs {
		want, err := core.Collect(g, sub.Motif, core.Params{Delta: sub.Delta, Phi: sub.Phi}, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantKeys := map[string]bool{}
		for _, in := range want {
			wantKeys[batchKey(g, in)] = true
		}
		var got struct {
			Instances []*stream.Detection `json:"instances"`
		}
		resp := getJSON(t, client, front.URL+"/instances?limit=0&sub="+sub.ID, &got)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("instances %s: %d", sub.ID, resp.StatusCode)
		}
		gotKeys := map[string]bool{}
		for _, d := range got.Instances {
			gotKeys[detKey(d)] = true
		}
		if len(gotKeys) != len(wantKeys) {
			t.Fatalf("sub %s: served %d instances, batch search found %d", sub.ID, len(gotKeys), len(wantKeys))
		}
		for k := range wantKeys {
			if !gotKeys[k] {
				t.Fatalf("sub %s: batch instance %s missing from mixed-transport serve", sub.ID, k)
			}
		}
	}
}
