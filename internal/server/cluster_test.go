package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"flowmotif/internal/cluster"
	"flowmotif/internal/core"
	"flowmotif/internal/gen"
	"flowmotif/internal/motif"
	"flowmotif/internal/stream"
	"flowmotif/internal/temporal"
)

// memberDaemon spins up one cluster-member flowmotifd (httptest server)
// and returns its HTTPMember client.
func memberDaemon(t *testing.T, id string) (*cluster.HTTPMember, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{Member: true, Recent: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	m := cluster.NewHTTPMember(id, ts.URL, ts.Client())
	memberServers[m] = ts
	return m, ts
}

// TestClusterOverHTTP is the HTTP-transport oracle: a coordinator driving
// three member daemons over the wire (handoffs, broadcast, scatter-gather,
// a mid-stream graceful drain, a mid-stream member kill) serves exactly
// the batch-search instance set — end to end through the coordinator's own
// HTTP handler.
func TestClusterOverHTTP(t *testing.T) {
	evs, err := gen.Bitcoin(gen.BitcoinConfig{Nodes: 120, SeedTxns: 300, Duration: 15000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	g, err := temporal.NewGraph(evs)
	if err != nil {
		t.Fatal(err)
	}
	subs := []stream.Subscription{
		{ID: "tri", Motif: motif.MustPath(0, 1, 2, 0), Delta: 600, Phi: 1},
		{ID: "chain", Motif: motif.MustPath(0, 1, 2), Delta: 300, Phi: 0},
		{ID: "twohop", Motif: motif.MustPath(0, 1, 0), Delta: 400, Phi: 0},
	}

	m0, _ := memberDaemon(t, "m0")
	m1, ts1 := memberDaemon(t, "m1")
	m2, _ := memberDaemon(t, "m2")
	c, err := cluster.New(cluster.Config{
		Members:    []cluster.Member{m0, m1, m2},
		Subs:       subs,
		RetryDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCoordinator(c, 0)
	front := httptest.NewServer(cs.Handler())
	defer front.Close()
	client := front.Client()

	// Feed through the coordinator's HTTP ingest in random batches.
	rng := rand.New(rand.NewSource(8))
	third := len(evs) / 3
	feed := func(lo, hi int) {
		t.Helper()
		for i := lo; i < hi; {
			n := 1 + rng.Intn(64)
			if i+n > hi {
				n = hi - i
			}
			wire := make([]map[string]interface{}, n)
			for j, e := range evs[i : i+n] {
				wire[j] = map[string]interface{}{"from": e.From, "to": e.To, "t": e.T, "f": e.F}
			}
			resp, body := postJSON(t, client, front.URL+"/ingest", map[string]interface{}{"events": wire})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("ingest: %d: %s", resp.StatusCode, body)
			}
			i += n
		}
	}
	feed(0, third)

	// Graceful drain over the admin API: m1's subscriptions hand off over
	// the wire (catch-up events + sink state through /cluster/remove-sub
	// and /cluster/add-sub).
	if resp, body := postJSON(t, client, front.URL+"/members/remove", map[string]string{"id": "m1"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("members/remove: %d: %s", resp.StatusCode, body)
	}
	feed(third, 2*third)

	// Kill m2's daemon entirely: closing its httptest server turns every
	// later call into a transport error, so the next broadcast marks it
	// down and re-places its subscriptions from coordinator history.
	_ = ts1 // m1 already drained above
	owned := 0
	for _, owner := range c.Placement() {
		if owner == "m2" {
			owned++
		}
	}
	if owned == 0 {
		t.Fatal("test premise broken: m2 owns no subscriptions before the kill")
	}
	findServerByMember(t, m2).Close()
	feed(2*third, len(evs))
	if resp, body := postJSON(t, client, front.URL+"/flush", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %d: %s", resp.StatusCode, body)
	}
	var st struct {
		Cluster cluster.ClusterStats `json:"cluster"`
	}
	getJSON(t, client, front.URL+"/stats", &st)
	if st.Cluster.Downs != 1 {
		t.Fatalf("Downs = %d after daemon kill, want 1", st.Cluster.Downs)
	}

	// Oracle: served instances == batch search, per subscription.
	total := 0
	for _, sub := range subs {
		want, err := core.Collect(g, sub.Motif, core.Params{Delta: sub.Delta, Phi: sub.Phi}, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantKeys := map[string]bool{}
		for _, in := range want {
			wantKeys[batchKey(g, in)] = true
		}
		var got struct {
			Count     int                 `json:"count"`
			Watermark int64               `json:"watermark"`
			Instances []*stream.Detection `json:"instances"`
		}
		resp := getJSON(t, client, front.URL+"/instances?limit=0&sub="+sub.ID, &got)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("instances %s: %d", sub.ID, resp.StatusCode)
		}
		gotKeys := map[string]bool{}
		for _, d := range got.Instances {
			k := detKey(d)
			if gotKeys[k] {
				t.Errorf("sub %s: duplicate %s", sub.ID, k)
			}
			gotKeys[k] = true
		}
		for k := range wantKeys {
			if !gotKeys[k] {
				t.Errorf("sub %s: missing %s", sub.ID, k)
			}
		}
		for k := range gotKeys {
			if !wantKeys[k] {
				t.Errorf("sub %s: spurious %s", sub.ID, k)
			}
		}
		total += len(wantKeys)
	}
	if total == 0 {
		t.Fatal("degenerate test: no batch instances")
	}

	// Global top-k over the wire: sorted by flow, k respected.
	var top struct {
		Count     int                 `json:"count"`
		Instances []*stream.Detection `json:"instances"`
	}
	getJSON(t, client, front.URL+"/topk?k=7", &top)
	if top.Count == 0 || top.Count > 7 {
		t.Fatalf("global topk count = %d, want 1..7", top.Count)
	}
	for i := 1; i < len(top.Instances); i++ {
		if top.Instances[i-1].Flow < top.Instances[i].Flow {
			t.Fatalf("global topk unsorted at %d", i)
		}
	}

	// Coordinator /metrics exposes per-shard lag.
	var metrics map[string]interface{}
	getJSON(t, client, front.URL+"/metrics", &metrics)
	foundLag := false
	for k := range metrics {
		if strings.HasPrefix(k, "shard.") && strings.HasSuffix(k, ".watermark_lag") {
			foundLag = true
		}
	}
	if !foundLag {
		t.Errorf("coordinator /metrics missing per-shard watermark lag: %v", keysOf(metrics))
	}
}

// memberServers tracks httptest servers by member for kill tests.
var memberServers = map[*cluster.HTTPMember]*httptest.Server{}

func findServerByMember(t *testing.T, m *cluster.HTTPMember) *httptest.Server {
	t.Helper()
	ts, ok := memberServers[m]
	if !ok {
		t.Fatalf("no server tracked for member %s", m.ID())
	}
	return ts
}

func keysOf(m map[string]interface{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestMemberEndpointsAndHardening covers the member daemon's handoff
// endpoints and the request hardening: body-size bound (413), malformed
// JSON (400), and the merged-topk member query.
func TestMemberEndpointsAndHardening(t *testing.T) {
	srv, err := New(Config{Member: true, MaxBodyBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// Malformed JSON -> 400 with a JSON error body.
	resp, err := client.Post(ts.URL+"/ingest", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&e) != nil || e.Error == "" {
		t.Fatal("malformed ingest: error body not JSON")
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed ingest: status %d, want 400", resp.StatusCode)
	}

	// Oversized body -> 413.
	big := `{"events":[` + strings.Repeat(`{"from":0,"to":1,"t":1,"f":1},`, 200) + `{"from":0,"to":1,"t":1,"f":1}]}`
	resp, err = client.Post(ts.URL+"/ingest", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: status %d, want 413", resp.StatusCode)
	}

	// Install two subscriptions over the handoff endpoint.
	for _, spec := range []cluster.SubSpec{
		{ID: "a", Motif: "0-1-2", Delta: 50},
		{ID: "b", Motif: "0-1", Delta: 20},
	} {
		resp, body := postJSON(t, client, ts.URL+"/cluster/add-sub", cluster.Handoff{Sub: spec})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("add-sub %s: %d: %s", spec.ID, resp.StatusCode, body)
		}
	}
	// Duplicate add -> 400.
	if resp, _ := postJSON(t, client, ts.URL+"/cluster/add-sub", cluster.Handoff{Sub: cluster.SubSpec{ID: "a", Motif: "0-1"}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate add-sub: status %d, want 400", resp.StatusCode)
	}

	// Ingest a chain that both subscriptions see, then flush.
	events := []map[string]interface{}{
		{"from": 0, "to": 1, "t": 10, "f": 5},
		{"from": 1, "to": 2, "t": 12, "f": 3},
	}
	if resp, body := postJSON(t, client, ts.URL+"/ingest", map[string]interface{}{"events": events}); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d: %s", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, client, ts.URL+"/flush", nil); resp.StatusCode != http.StatusOK {
		t.Fatal("flush failed")
	}

	// Merged member topk (?all=1) sees both subscriptions.
	var top struct {
		Count     int                 `json:"count"`
		Started   bool                `json:"started"`
		Instances []*stream.Detection `json:"instances"`
	}
	getJSON(t, client, ts.URL+"/topk?all=1", &top)
	subsSeen := map[string]bool{}
	for _, d := range top.Instances {
		subsSeen[d.Sub] = true
	}
	if !top.Started || !subsSeen["a"] || !subsSeen["b"] {
		t.Fatalf("merged topk missing subs: started=%v seen=%v", top.Started, subsSeen)
	}

	// Remove one subscription; its handoff carries the top detections.
	var h cluster.Handoff
	resp, body := postJSON(t, client, ts.URL+"/cluster/remove-sub", map[string]string{"id": "a"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove-sub: %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Sub.ID != "a" || !h.Primed || len(h.Top) == 0 {
		t.Fatalf("handoff incomplete: %+v", h.Sub)
	}
	// Unknown id -> 404.
	if resp, _ := postJSON(t, client, ts.URL+"/cluster/remove-sub", map[string]string{"id": "nope"}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("remove unknown sub: status %d, want 404", resp.StatusCode)
	}
	// The removed subscription is gone from queries.
	if resp := getJSON(t, client, ts.URL+"/instances?sub=a", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("query removed sub: status %d, want 404", resp.StatusCode)
	}

	// /metrics is flat and includes per-endpoint latency counters.
	var metrics map[string]interface{}
	getJSON(t, client, ts.URL+"/metrics", &metrics)
	if _, ok := metrics["requests.ingest.count"]; !ok {
		t.Errorf("/metrics missing request counters: %v", keysOf(metrics))
	}
	if _, ok := metrics["engine.watermark"]; !ok {
		t.Errorf("/metrics missing engine gauges: %v", keysOf(metrics))
	}

	// A non-member server refuses to start with no subscriptions and does
	// not expose the cluster endpoints.
	if _, err := New(Config{}); err == nil {
		t.Fatal("non-member server with no subscriptions accepted")
	}
	plain, err := New(Config{Subs: []stream.Subscription{{ID: "x", Motif: motif.MustPath(0, 1), Delta: 5}}})
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(plain.Handler())
	defer pts.Close()
	if resp, _ := postJSON(t, pts.Client(), pts.URL+"/cluster/add-sub", cluster.Handoff{Sub: cluster.SubSpec{ID: "y", Motif: "0-1"}}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cluster endpoint on plain server: status %d, want 404", resp.StatusCode)
	}
}
