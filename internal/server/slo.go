package server

// SLO burn-rate watchdog (DESIGN.md §14). A goroutine samples the server's
// own histograms on a fixed interval and evaluates two SLOs over a fast
// and a slow window:
//
//   - detection lag: the fraction of detections whose arrival-to-emit lag
//     stayed under Config.SLO.LagSLO must be at least LagTarget;
//   - error rate: the fraction of HTTP requests answered under 5xx must be
//     at least LagTarget (the SLOs share one target).
//
// Each window's burn rate (obs.BurnRate: observed bad fraction over the
// error budget 1−target) is exported as flowmotif_slo_burn_rate{slo,
// window}. When BOTH windows of an SLO exceed BurnWarn — the classic
// fast+slow guard against paging on a blip while still catching slow
// leaks — the watchdog trips: it records a degradation reason /healthz
// serves, retains the newest lag-histogram trace exemplar in the flight
// recorder (the trace of a batch that actually lagged), and logs one
// structured alert per trip edge.

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"flowmotif/internal/obs"
)

// SLOConfig parameterizes the watchdog; the zero LagSLO leaves it off.
type SLOConfig struct {
	// LagSLO is the detection-lag threshold: an emit counts against the
	// budget when its arrival-to-emit lag exceeds this. 0 disables the
	// watchdog.
	LagSLO time.Duration
	// LagTarget is the target good fraction for both SLOs (default 0.99).
	LagTarget float64
	// BurnWarn trips the watchdog when both windows burn faster than this
	// multiple of the sustainable rate (default 2).
	BurnWarn float64
	// FastWindow/SlowWindow are the two burn windows (defaults 1m / 10m).
	FastWindow time.Duration
	SlowWindow time.Duration
	// Interval is the sampling period (default 10s).
	Interval time.Duration
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.LagTarget == 0 {
		c.LagTarget = 0.99
	}
	if c.BurnWarn == 0 {
		c.BurnWarn = 2
	}
	if c.FastWindow == 0 {
		c.FastWindow = time.Minute
	}
	if c.SlowWindow == 0 {
		c.SlowWindow = 10 * time.Minute
	}
	if c.Interval == 0 {
		c.Interval = 10 * time.Second
	}
	return c
}

// sloSample is one tick's cumulative counters: the merged detection-lag
// histogram plus the HTTP request total and its 5xx share.
type sloSample struct {
	at        time.Time
	lag       obs.HistogramSnapshot
	lagTrace  string
	httpBad   float64
	httpTotal float64
}

// sloWatchdog owns the sampling loop and the trip state.
type sloWatchdog struct {
	cfg    SLOConfig
	reg    *obs.Registry
	tracer *obs.Tracer
	logger *slog.Logger

	// Burn-rate gauges, registered upfront so the metrics catalog shows
	// them before the first trip.
	gauges map[string]map[string]*obs.Gauge // slo → window → gauge

	stop chan struct{}
	done chan struct{}

	mu      sync.Mutex
	samples []sloSample
	reasons []string        // current degradation reasons ("" state: healthy)
	tripped map[string]bool // slo → currently over budget (edge detection)
}

func newSLOWatchdog(cfg SLOConfig, reg *obs.Registry, tracer *obs.Tracer, logger *slog.Logger) *sloWatchdog {
	w := &sloWatchdog{
		cfg:     cfg.withDefaults(),
		reg:     reg,
		tracer:  tracer,
		logger:  logger,
		gauges:  map[string]map[string]*obs.Gauge{},
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		tripped: map[string]bool{},
	}
	for _, slo := range []string{"lag", "errors"} {
		w.gauges[slo] = map[string]*obs.Gauge{}
		for _, win := range []string{"fast", "slow"} {
			w.gauges[slo][win] = reg.Gauge("flowmotif_slo_burn_rate",
				"SLO burn rate: observed bad fraction over the error budget, per SLO and window (1 = budget consumed exactly at the sustainable rate).",
				obs.L("slo", slo), obs.L("window", win))
		}
	}
	go w.run()
	return w
}

func (w *sloWatchdog) run() {
	defer close(w.done)
	tick := time.NewTicker(w.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
			w.evaluate(w.sample(time.Now()))
		}
	}
}

func (w *sloWatchdog) stopWatch() {
	close(w.stop)
	<-w.done
}

// sample reads the registry's cumulative counters: every detection-lag
// histogram merged (a member engine registers one; merging tolerates
// several sharing a registry) and the HTTP request counts by class.
func (w *sloWatchdog) sample(now time.Time) sloSample {
	s := sloSample{at: now}
	for _, m := range w.reg.Snapshot() {
		switch m.Name {
		case "flowmotif_detection_lag_seconds":
			if m.Hist != nil {
				if s.lag.Count == 0 {
					s.lag = *m.Hist
				} else {
					_ = s.lag.Merge(*m.Hist)
				}
				if ex := m.Hist.Exemplar; ex != nil && ex.Trace != "" {
					s.lagTrace = ex.Trace
				}
			}
		case "flowmotif_http_request_seconds":
			if m.Hist == nil {
				continue
			}
			s.httpTotal += float64(m.Hist.Count)
			for _, l := range m.Labels {
				if l.Key == "code" && l.Value == "5xx" {
					s.httpBad += float64(m.Hist.Count)
				}
			}
		case "flowmotif_wire_requests_total":
			// Binary wire-protocol frames burn the same error budget as
			// HTTP requests: a 5xx-equivalent error frame is a failed
			// request whichever transport carried it.
			s.httpTotal += m.Value
			for _, l := range m.Labels {
				if l.Key == "code" && l.Value == "5xx" {
					s.httpBad += m.Value
				}
			}
		}
	}
	return s
}

// evaluate appends the sample, computes both SLOs' fast/slow burn rates,
// exports the gauges, and handles trip edges. Split from run for tests.
func (w *sloWatchdog) evaluate(s sloSample) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.samples = append(w.samples, s)
	// Keep one sample beyond the slow window so its delta stays anchored.
	cutoff := s.at.Add(-w.cfg.SlowWindow - w.cfg.Interval)
	for len(w.samples) > 1 && w.samples[1].at.Before(cutoff) {
		w.samples = w.samples[1:]
	}

	burn := func(window time.Duration) (lagBurn, errBurn float64) {
		earlier := w.samples[0]
		for _, past := range w.samples {
			if past.at.After(s.at.Add(-window)) {
				break
			}
			earlier = past
		}
		good, total := s.lag.WindowDelta(earlier.lag, w.cfg.LagSLO.Seconds())
		lagBurn = obs.BurnRate(total-good, total, w.cfg.LagTarget)
		bad := s.httpBad - earlier.httpBad
		reqs := s.httpTotal - earlier.httpTotal
		if bad < 0 || reqs < 0 { // counter reset
			bad, reqs = s.httpBad, s.httpTotal
		}
		errBurn = obs.BurnRate(bad, reqs, w.cfg.LagTarget)
		return lagBurn, errBurn
	}
	lagFast, errFast := burn(w.cfg.FastWindow)
	lagSlow, errSlow := burn(w.cfg.SlowWindow)
	w.gauges["lag"]["fast"].Set(lagFast)
	w.gauges["lag"]["slow"].Set(lagSlow)
	w.gauges["errors"]["fast"].Set(errFast)
	w.gauges["errors"]["slow"].Set(errSlow)

	w.reasons = w.reasons[:0]
	w.judge("lag", lagFast, lagSlow,
		fmt.Sprintf("detection lag over %s SLO: burn %.1fx fast / %.1fx slow (target %.4g)",
			w.cfg.LagSLO, lagFast, lagSlow, w.cfg.LagTarget), s.lagTrace)
	w.judge("errors", errFast, errSlow,
		fmt.Sprintf("HTTP 5xx rate: burn %.1fx fast / %.1fx slow (target %.4g)",
			errFast, errSlow, w.cfg.LagTarget), "")
}

// judge applies the fast+slow trip rule to one SLO under mu: both windows
// over BurnWarn trips it (reason recorded, lag exemplar retained, one
// alert logged per edge); either window recovering clears it.
func (w *sloWatchdog) judge(slo string, fast, slow float64, reason, trace string) {
	over := fast > w.cfg.BurnWarn && slow > w.cfg.BurnWarn
	if over {
		w.reasons = append(w.reasons, reason)
	}
	if over && !w.tripped[slo] {
		if trace != "" && w.tracer != nil {
			// Pin the trace of a batch that actually lagged, so the
			// post-incident /debug/traces lookup still has the evidence.
			w.tracer.Retain(trace)
		}
		if w.logger != nil {
			w.logger.Warn("slo burn-rate alert",
				slog.String("slo", slo),
				slog.Float64("burnFast", fast),
				slog.Float64("burnSlow", slow),
				slog.Float64("threshold", w.cfg.BurnWarn),
				slog.String("trace", trace))
		}
	} else if !over && w.tripped[slo] && w.logger != nil {
		w.logger.Info("slo burn-rate recovered", slog.String("slo", slo))
	}
	w.tripped[slo] = over
}

// Reasons returns the current degradation reasons (empty when healthy);
// /healthz serves them.
func (w *sloWatchdog) Reasons() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.reasons...)
}
