// Package server exposes a streaming motif-detection engine
// (internal/stream) over an HTTP/JSON API — the serving layer behind
// cmd/flowmotifd.
//
// Endpoints:
//
//	POST /ingest    {"events":[{"from":0,"to":1,"t":10,"f":5}, ...]}
//	                append a batch (may be internally unordered, must not
//	                reach behind the stream frontier); responds with the
//	                ingested count, the new watermark and how many
//	                detections the batch finalized.
//	POST /flush     close every still-open window (end-of-stream marker);
//	                later events must clear the watermark by more than the
//	                largest subscription δ.
//	GET  /instances?sub=ID&limit=N   recent detections, newest first.
//	GET  /topk?sub=ID&k=N            best detections by instance flow.
//	GET  /subs      configured subscriptions.
//	GET  /stats     engine + server statistics.
//	GET  /healthz   liveness probe.
//
// Errors are JSON {"error": "..."}: 400 for malformed requests, 404 for
// unknown subscriptions, 405 for wrong methods, 409 for batches that
// violate the stream order contract.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"flowmotif/internal/stream"
	"flowmotif/internal/temporal"
)

// Config parameterizes a Server.
type Config struct {
	// Subs are the motif subscriptions served by the engine.
	Subs []stream.Subscription
	// Workers is the per-band enumeration parallelism (<= 1 serial).
	Workers int
	// Slack extends event retention beyond the algorithmic minimum.
	Slack int64
	// Recent bounds the in-memory ring of recent detections served by
	// GET /instances (default 1024).
	Recent int
	// TopK bounds the per-subscription top list served by GET /topk
	// (default 10).
	TopK int
}

// Server wires an Engine to query sinks and HTTP handlers.
type Server struct {
	engine  *stream.Engine
	recent  *stream.MemorySink
	topk    *stream.TopKSink
	subIDs  map[string]bool
	started time.Time
	reqs    atomic.Int64

	// ingestMu serializes /ingest and /flush so the per-request
	// "detections finalized by this batch" diff of two Stats snapshots is
	// not interleaved by a concurrent writer (the engine itself already
	// serializes ingestion; this only protects the accounting).
	ingestMu sync.Mutex
}

// New builds a Server (and its engine) from cfg.
func New(cfg Config) (*Server, error) {
	if cfg.Recent <= 0 {
		cfg.Recent = 1024
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	s := &Server{
		recent:  stream.NewMemorySink(cfg.Recent),
		topk:    stream.NewTopKSink(cfg.TopK),
		started: time.Now(),
		subIDs:  map[string]bool{},
	}
	eng, err := stream.NewEngine(stream.Config{
		Subs:    cfg.Subs,
		Workers: cfg.Workers,
		Slack:   cfg.Slack,
	}, stream.MultiSink{s.recent, s.topk})
	if err != nil {
		return nil, err
	}
	s.engine = eng
	for _, sub := range eng.Subscriptions() {
		s.subIDs[sub.ID] = true
	}
	return s, nil
}

// Engine returns the underlying stream engine (e.g. for direct feeding in
// tests and demos).
func (s *Server) Engine() *stream.Engine { return s.engine }

// Handler returns the HTTP API handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", s.count(s.handleIngest))
	mux.HandleFunc("/flush", s.count(s.handleFlush))
	mux.HandleFunc("/instances", s.count(s.handleInstances))
	mux.HandleFunc("/topk", s.count(s.handleTopK))
	mux.HandleFunc("/subs", s.count(s.handleSubs))
	mux.HandleFunc("/stats", s.count(s.handleStats))
	mux.HandleFunc("/healthz", s.count(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))
	return mux
}

func (s *Server) count(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.reqs.Add(1)
		h(w, r)
	}
}

// wireEvent is the JSON shape of one interaction event.
type wireEvent struct {
	From temporal.NodeID `json:"from"`
	To   temporal.NodeID `json:"to"`
	T    int64           `json:"t"`
	F    float64         `json:"f"`
}

type ingestRequest struct {
	Events []wireEvent `json:"events"`
}

type ingestResponse struct {
	Ingested   int   `json:"ingested"`
	Watermark  int64 `json:"watermark"`
	Detections int64 `json:"detections"` // finalized by this batch
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req ingestRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	evs := make([]temporal.Event, len(req.Events))
	for i, e := range req.Events {
		evs[i] = temporal.Event{From: e.From, To: e.To, T: e.T, F: e.F}
	}
	s.ingestMu.Lock()
	before := s.engine.Stats().Detections
	n, err := s.engine.Ingest(evs)
	st := s.engine.Stats()
	s.ingestMu.Unlock()
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, stream.ErrBehindFrontier) {
			status = http.StatusConflict
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{
		Ingested:   n,
		Watermark:  st.Watermark,
		Detections: st.Detections - before,
	})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	s.ingestMu.Lock()
	before := s.engine.Stats().Detections
	s.engine.Flush()
	st := s.engine.Stats()
	s.ingestMu.Unlock()
	writeJSON(w, http.StatusOK, ingestResponse{
		Watermark:  st.Watermark,
		Detections: st.Detections - before,
	})
}

func (s *Server) resolveSub(w http.ResponseWriter, r *http.Request) (string, bool) {
	sub := r.URL.Query().Get("sub")
	if sub == "" {
		if len(s.subIDs) == 1 {
			for id := range s.subIDs {
				return id, true
			}
		}
		return "", true // "all" for /instances; /topk rejects below
	}
	if !s.subIDs[sub] {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown subscription %q", sub))
		return "", false
	}
	return sub, true
}

func (s *Server) handleInstances(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	sub, ok := s.resolveSub(w, r)
	if !ok {
		return
	}
	limit, err := intParam(r, "limit", 50)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ds := s.recent.Recent(sub, limit)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"count":     len(ds),
		"instances": ds,
	})
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	sub, ok := s.resolveSub(w, r)
	if !ok {
		return
	}
	if sub == "" {
		writeErr(w, http.StatusBadRequest, errors.New("sub parameter required (several subscriptions configured)"))
		return
	}
	k, err := intParam(r, "k", 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ds := s.topk.Top(sub)
	if k > 0 && k < len(ds) {
		ds = ds[:k]
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"sub":       sub,
		"count":     len(ds),
		"instances": ds,
	})
}

func (s *Server) handleSubs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	type wireSub struct {
		ID    string  `json:"id"`
		Motif string  `json:"motif"`
		Path  string  `json:"path"`
		Delta int64   `json:"delta"`
		Phi   float64 `json:"phi"`
	}
	var out []wireSub
	for _, sub := range s.engine.Subscriptions() {
		out = append(out, wireSub{
			ID:    sub.ID,
			Motif: sub.Motif.Name(),
			Path:  sub.Motif.String(),
			Delta: sub.Delta,
			Phi:   sub.Phi,
		})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"subs": out})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"engine":        s.engine.Stats(),
		"uptimeSeconds": time.Since(s.started).Seconds(),
		"httpRequests":  s.reqs.Load(),
	})
}

func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s parameter %q", name, v)
	}
	return n, nil
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
