// Package server exposes a streaming motif-detection engine
// (internal/stream) over an HTTP/JSON API — the serving layer behind
// cmd/flowmotifd.
//
// Endpoints:
//
//	POST /ingest    {"events":[{"from":0,"to":1,"t":10,"f":5}, ...]}
//	                append a batch (may be internally unordered, must not
//	                reach behind the stream frontier); responds with the
//	                ingested count, the new watermark and how many
//	                detections the batch finalized.
//	POST /flush     close every still-open window (end-of-stream marker);
//	                later events must clear the watermark by more than the
//	                largest subscription δ.
//	GET  /instances?sub=ID&limit=N   recent detections, newest first.
//	GET  /topk?sub=ID&k=N            best detections by instance flow.
//	GET  /subs      configured subscriptions.
//	GET  /stats     engine + server statistics.
//	GET  /metrics   flat expvar-style metrics: engine gauges plus
//	                per-endpoint request counts and latencies;
//	                ?format=prometheus serves the text exposition format
//	                with full latency histograms instead.
//	GET  /healthz   health probe: watermark, event counts, last snapshot.
//	POST /snapshot  checkpoint the engine + sink state to the data dir
//	                (durable servers only).
//
// With Config.DataDir set the server is durable: every acknowledged batch
// is appended to a segmented write-ahead log (internal/store), POST
// /snapshot checkpoints the engine, and New recovers the pre-crash state
// from the newest snapshot plus a replay of the WAL tail.
//
// With Config.Member set the server is a cluster shard (internal/cluster):
// it may start with no subscriptions and exposes the handoff endpoints a
// coordinator drives —
//
//	POST /cluster/add-sub     install a subscription (handoff payload:
//	                          spec, finalization bound, catch-up events,
//	                          sink state).
//	POST /cluster/remove-sub  {"id": "..."}: uninstall a subscription and
//	                          return its handoff payload.
//
// Errors are JSON {"error": "..."}: 400 for malformed requests, 404 for
// unknown subscriptions, 405 for wrong methods, 409 for batches that
// violate the stream order contract, 413 for request bodies over
// Config.MaxBodyBytes.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"flowmotif/internal/cluster"
	"flowmotif/internal/obs"
	"flowmotif/internal/store"
	"flowmotif/internal/stream"
	"flowmotif/internal/temporal"
	"flowmotif/internal/wire"
)

// Config parameterizes a Server.
type Config struct {
	// Subs are the motif subscriptions served by the engine.
	Subs []stream.Subscription
	// Workers is the per-band enumeration parallelism (<= 1 serial).
	Workers int
	// Slack extends event retention beyond the algorithmic minimum.
	Slack int64
	// Recent bounds the in-memory ring of recent detections served by
	// GET /instances (default 1024).
	Recent int
	// TopK bounds the per-subscription top list served by GET /topk
	// (default 10).
	TopK int
	// DataDir, when non-empty, makes the server durable: ingested batches
	// are appended to a segmented WAL under this directory and New
	// recovers engine + sink state from the newest snapshot plus the WAL
	// tail.
	DataDir string
	// SyncWrites fsyncs the WAL after every acknowledged batch (durable
	// against machine crashes, not just process crashes). Durable servers
	// only.
	SyncWrites bool
	// SegmentEvents caps events per WAL segment (default
	// store.DefaultSegmentEvents). Durable servers only.
	SegmentEvents int
	// Member marks the server as a cluster shard: it may start with no
	// subscriptions (a coordinator places them at runtime) and serves the
	// /cluster/* handoff endpoints.
	Member bool
	// MaxBodyBytes bounds POST request bodies (default 32 MiB); oversized
	// requests are rejected with 413.
	MaxBodyBytes int64
	// Obs, when non-nil, is the metrics registry the server, its engine and
	// its store record into; when nil (and DisableObs is false) the server
	// creates one. GET /metrics?format=prometheus serves its contents.
	Obs *obs.Registry
	// DisableObs turns metric collection off entirely (no registry, no
	// per-round histograms); /metrics still serves the flat map.
	DisableObs bool
	// Logger receives the server's structured logs (slow-round warnings
	// among them); nil disables logging.
	Logger *slog.Logger
	// SlowRound is the engine's slow-finalize-round warning threshold
	// (0: no warnings). Requires Logger.
	SlowRound time.Duration
	// Tracer is the trace flight recorder the server and its engine
	// record spans into; nil (and DisableObs false) creates one, served
	// by GET /debug/traces. DisableObs disables tracing entirely.
	Tracer *obs.Tracer
	// SlowRequest tail-samples slow HTTP requests: a request slower than
	// this retains its trace in the flight recorder and logs a warning
	// carrying the trace ID (0: off).
	SlowRequest time.Duration
	// SLO configures the burn-rate watchdog (DESIGN.md §14): with
	// SLO.LagSLO set (and observability on) a goroutine samples detection
	// lag and HTTP error rates, exports flowmotif_slo_burn_rate gauges, and
	// degrades /healthz when both burn windows run hot.
	SLO SLOConfig
	// DisableCostAttribution turns off the engine's per-subscription cost
	// metering (attribution is on by default whenever observability is on);
	// see stream.Config.DisableCostAttribution.
	DisableCostAttribution bool
	// WireMaxFrameBytes bounds binary wire-protocol frame payloads
	// (default wire.DefaultMaxFrameBytes, matching MaxBodyBytes' default);
	// oversized frames are rejected with a typed error frame, mirroring
	// the HTTP 413 behavior.
	WireMaxFrameBytes int
}

// RecoveryStats reports what New rebuilt from a data dir.
type RecoveryStats struct {
	// FromSnapshot is true when a snapshot seeded the engine state.
	FromSnapshot bool `json:"fromSnapshot"`
	// SnapshotSeq is the WAL position of that snapshot.
	SnapshotSeq int64 `json:"snapshotSeq"`
	// Replayed counts the WAL-tail events re-ingested after the snapshot.
	Replayed int64 `json:"replayed"`
}

// serverSnapshot is the snapshot payload: the engine state plus the query
// sinks' contents, so restart resumes with /instances and /topk intact.
type serverSnapshot struct {
	Engine *stream.EngineSnapshot `json:"engine"`
	Recent stream.MemorySinkState `json:"recent"`
	TopK   stream.TopKSinkState   `json:"topk"`
}

// Server wires an Engine to query sinks and HTTP handlers.
type Server struct {
	engine    *stream.Engine
	recent    *stream.MemorySink
	topk      *stream.TopKSink
	st        *store.Store // nil when not durable
	recovered RecoveryStats
	member    bool
	maxBody   int64
	started   time.Time
	reqs      atomic.Int64
	obsReg    *obs.Registry     // nil with Config.DisableObs
	tracer    *obs.Tracer       // nil with Config.DisableObs
	runtime   *obs.RuntimeStats // nil with Config.DisableObs
	slo       *sloWatchdog      // nil unless Config.SLO.LagSLO set (and obs on)
	ro        requestObs

	// subMu guards subIDs, which cluster handoffs mutate at runtime.
	subMu  sync.RWMutex
	subIDs map[string]bool

	// epMu guards endpoint latency metrics (GET /metrics).
	epMu sync.Mutex
	eps  map[string]*endpointMetrics

	// lastSeq/lastAck deduplicate seq-tagged replicated ingest (see
	// ingestRequest.Seq); guarded by ingestMu. Not persisted: after a
	// member restart a resend is rejected as behind-frontier and the
	// coordinator fails the member over, regenerating from history.
	lastSeq int64
	lastAck ingestResponse
	// walErr poisons ingest after a WAL append failed post-apply: the
	// engine and WAL have diverged, so the server fail-stops ingest
	// (every batch answers 500) instead of re-applying a retried batch
	// or silently recording a WAL with a hole. A restart recovers from
	// the WAL + snapshot. Guarded by ingestMu.
	walErr error

	// ingestMu serializes /ingest, /flush and snapshot *capture* so (a)
	// the per-request "detections finalized by this batch" diff of two
	// Stats snapshots is not interleaved by a concurrent writer, (b)
	// engine ingest and WAL append form one atomic unit, and (c) a
	// snapshot's WAL seq always matches the engine state it captures.
	ingestMu sync.Mutex
	// snapMu serializes snapshot persistence (marshal + write + rename),
	// which deliberately happens *outside* ingestMu so a slow checkpoint
	// of a large engine state never stalls ingestion. Lock order where
	// both are needed: snapMu before ingestMu.
	snapMu sync.Mutex

	// Binary wire-protocol listener state (internal/wire; see wire.go).
	// wx is nil with Config.DisableObs — the decode loop's clocks gate on
	// it. The shared interner maps symbolic-mode labels onto one
	// server-wide node-id space across connections.
	wx           *wireMetrics
	wireMaxFrame int
	wireInternMu sync.RWMutex
	wireIntern   *temporal.Interner
	wireMu       sync.Mutex
	wireLn       net.Listener
	wirePort     int
	wireConns    map[net.Conn]struct{}
	wireWG       sync.WaitGroup
}

// New builds a Server (and its engine) from cfg. With cfg.DataDir set it
// also opens the event store and recovers: the newest usable snapshot is
// restored into the engine and sinks, then the WAL tail is replayed
// through normal ingestion, regenerating every detection the crash lost.
// If no snapshot is usable (none taken, corrupt, or the subscriptions
// changed), the whole WAL is replayed from scratch — the log, not the
// snapshot, is the source of truth.
func New(cfg Config) (*Server, error) {
	if cfg.Recent <= 0 {
		cfg.Recent = 1024
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if len(cfg.Subs) == 0 && !cfg.Member {
		return nil, errors.New("server: at least one subscription required (cluster members start empty)")
	}
	// One registry per server: engine, store and HTTP instruments land
	// together, so one scrape (or one /stats metrics payload for cluster
	// transport) covers the whole pipeline.
	reg := cfg.Obs
	tracer := cfg.Tracer
	if cfg.DisableObs {
		reg = nil
		tracer = nil
	} else {
		if reg == nil {
			reg = obs.NewRegistry()
		}
		if tracer == nil {
			tracer = obs.NewTracer(0)
		}
	}
	s := &Server{
		recent:  stream.NewMemorySink(cfg.Recent),
		topk:    stream.NewTopKSink(cfg.TopK),
		member:  cfg.Member,
		maxBody: cfg.MaxBodyBytes,
		started: time.Now(),
		obsReg:  reg,
		tracer:  tracer,
		ro:      requestObs{reg: reg, tracer: tracer, slow: cfg.SlowRequest, logger: cfg.Logger},
		subIDs:  map[string]bool{},
		eps:     map[string]*endpointMetrics{},
	}
	if !cfg.DisableObs {
		s.runtime = obs.NewRuntimeStats()
		// Registered whether or not a wire listener is armed, so the
		// metrics catalog (and its drift check) sees every series a server
		// can expose.
		s.wx = newWireMetrics(reg)
	}
	s.wireMaxFrame = cfg.WireMaxFrameBytes
	if s.wireMaxFrame <= 0 {
		s.wireMaxFrame = wire.DefaultMaxFrameBytes
	}
	s.wireIntern = temporal.NewInterner()
	eng, err := stream.NewEngine(stream.Config{
		Subs:                   cfg.Subs,
		Workers:                cfg.Workers,
		Slack:                  cfg.Slack,
		Obs:                    reg,
		DisableObs:             cfg.DisableObs,
		DisableCostAttribution: cfg.DisableCostAttribution,
		Logger:                 cfg.Logger,
		SlowRound:              cfg.SlowRound,
		Tracer:                 tracer,
	}, stream.MultiSink{s.recent, s.topk})
	if err != nil {
		return nil, err
	}
	s.engine = eng
	for _, sub := range eng.Subscriptions() {
		s.subIDs[sub.ID] = true
	}
	if cfg.DataDir != "" {
		st, err := store.Open(cfg.DataDir, store.Options{
			Sync:          cfg.SyncWrites,
			SegmentEvents: cfg.SegmentEvents,
			Obs:           reg,
		})
		if err != nil {
			return nil, err
		}
		if err := s.recover(st); err != nil {
			st.Close()
			return nil, err
		}
		s.st = st
	}
	if cfg.SLO.LagSLO > 0 && reg != nil {
		s.slo = newSLOWatchdog(cfg.SLO, reg, tracer, cfg.Logger)
	}
	return s, nil
}

// recover restores the newest usable snapshot and replays the WAL tail.
func (s *Server) recover(st *store.Store) error {
	from := int64(0)
	if snap, err := st.LoadSnapshot(); err != nil {
		return err
	} else if snap != nil {
		var ss serverSnapshot
		if json.Unmarshal(snap.Payload, &ss) == nil && ss.Engine != nil {
			// A failed restore (e.g. the operator changed the -sub set) is
			// not fatal: fall through to a full WAL replay.
			if err := s.engine.Restore(ss.Engine); err == nil {
				s.recent.Restore(ss.Recent)
				s.topk.Restore(ss.TopK)
				s.recovered.FromSnapshot = true
				s.recovered.SnapshotSeq = snap.Seq
				from = snap.Seq
			}
		}
	}
	batch := make([]temporal.Event, 0, 4096)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		_, err := s.engine.Ingest(batch)
		batch = batch[:0]
		return err
	}
	var ingestErr error
	err := st.Replay(from, func(_ int64, ev temporal.Event) bool {
		batch = append(batch, ev)
		s.recovered.Replayed++
		if len(batch) == cap(batch) {
			if ingestErr = flush(); ingestErr != nil {
				return false
			}
		}
		return true
	})
	if err == nil && ingestErr == nil {
		ingestErr = flush()
	}
	if err == nil {
		err = ingestErr
	}
	if err != nil {
		return fmt.Errorf("server: recovery replay: %w", err)
	}
	return nil
}

// Engine returns the underlying stream engine (e.g. for direct feeding in
// tests and demos).
func (s *Server) Engine() *stream.Engine { return s.engine }

// Durable reports whether the server persists to a data dir.
func (s *Server) Durable() bool { return s.st != nil }

// Recovery reports what New rebuilt from the data dir (zero value for
// non-durable servers or empty dirs).
func (s *Server) Recovery() RecoveryStats { return s.recovered }

// Snapshot checkpoints the engine and sink state to the data dir,
// returning the WAL seq it reflects. Recovery after a crash then replays
// only the WAL tail past this point. Only the in-memory state *capture*
// blocks ingestion; serialization and disk I/O run outside the ingest
// lock.
func (s *Server) Snapshot() (int64, error) {
	if s.st == nil {
		return 0, errors.New("server: not durable (no data dir configured)")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.ingestMu.Lock()
	seq, snap, err := s.captureSnapshotLocked()
	s.ingestMu.Unlock()
	if err != nil {
		return 0, err
	}
	return seq, s.writeSnapshot(seq, snap)
}

// captureSnapshotLocked must be called with ingestMu held, so the
// captured WAL seq and engine state agree. The returned state is a
// consistent point-in-time copy safe to serialize after the lock is
// released. A fail-stopped engine refuses the capture (see
// stream.ErrFailStopped) — checkpointing its diverged log would launder
// the partial batch into the authoritative recovery state.
func (s *Server) captureSnapshotLocked() (int64, serverSnapshot, error) {
	eng, err := s.engine.Snapshot()
	if err != nil {
		return 0, serverSnapshot{}, err
	}
	return s.st.Seq(), serverSnapshot{
		Engine: eng,
		Recent: s.recent.Snapshot(),
		TopK:   s.topk.Snapshot(),
	}, nil
}

// writeSnapshot must be called with snapMu held (ordering concurrent
// checkpoints so an older capture can never overwrite a newer one).
func (s *Server) writeSnapshot(seq int64, snap serverSnapshot) error {
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("server: snapshot marshal: %w", err)
	}
	return s.st.WriteSnapshot(seq, payload)
}

// Close stops the SLO watchdog and the wire listener, flushes a final
// snapshot (durable servers; best-effort — the WAL alone already suffices
// for recovery) and closes the store. The server must not serve requests
// afterwards.
func (s *Server) Close() error {
	if s.slo != nil {
		s.slo.stopWatch()
		s.slo = nil
	}
	s.StopWire()
	if s.st == nil {
		return nil
	}
	_, snapErr := s.Snapshot()
	if err := s.st.Close(); err != nil {
		return err
	}
	return snapErr
}

// Handler returns the HTTP API handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", s.count("ingest", s.handleIngest))
	mux.HandleFunc("/flush", s.count("flush", s.handleFlush))
	mux.HandleFunc("/instances", s.count("instances", s.handleInstances))
	mux.HandleFunc("/topk", s.count("topk", s.handleTopK))
	mux.HandleFunc("/subs", s.count("subs", s.handleSubs))
	mux.HandleFunc("/stats", s.count("stats", s.handleStats))
	mux.HandleFunc("/snapshot", s.count("snapshot", s.handleSnapshot))
	mux.HandleFunc("/healthz", s.count("healthz", s.handleHealthz))
	mux.HandleFunc("/metrics", s.count("metrics", s.handleMetrics))
	mux.HandleFunc("/debug/traces", s.count("debug.traces", s.handleTraces))
	mux.HandleFunc("/debug/top", s.count("debug.top", s.handleTop))
	if s.member {
		mux.HandleFunc("/cluster/add-sub", s.count("cluster.add-sub", s.handleAddSub))
		mux.HandleFunc("/cluster/remove-sub", s.count("cluster.remove-sub", s.handleRemoveSub))
	}
	return mux
}

func (s *Server) endpoint(name string) *endpointMetrics {
	s.epMu.Lock()
	defer s.epMu.Unlock()
	m := s.eps[name]
	if m == nil {
		m = &endpointMetrics{}
		s.eps[name] = m
	}
	return m
}

func (s *Server) count(name string, h http.HandlerFunc) http.HandlerFunc {
	return s.ro.wrap(&s.reqs, s.endpoint(name), name, h)
}

// Obs returns the server's metrics registry (nil with Config.DisableObs).
func (s *Server) Obs() *obs.Registry { return s.obsReg }

// Tracer returns the server's trace flight recorder (nil with
// Config.DisableObs).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// handleTraces serves GET /debug/traces: recent (or ?slowest=1) trace
// summaries from the flight recorder, or one trace's full span tree with
// ?trace=<id>.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	serveTraces(w, r, s.tracer, s.tracer.Spans)
}

// handleMetrics serves metrics: by default the flat expvar-style map
// (engine gauges plus per-endpoint request counts and latencies);
// ?format=prometheus switches to the text exposition format, which adds
// the full latency histograms (finalize stages, detection lag, WAL and
// request timings).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	if r.URL.Query().Get("format") == "prometheus" {
		writePrometheusResponse(w, s.prometheusSnapshots())
		return
	}
	st := s.engine.Stats()
	out := map[string]interface{}{
		"engine.watermark":       st.Watermark,
		"engine.started":         st.Started,
		"engine.events_ingested": st.EventsIngested,
		"engine.events_retained": st.EventsRetained,
		"engine.events_evicted":  st.EventsEvicted,
		"engine.batches":         st.Batches,
		"engine.detections":      st.Detections,
		"engine.subscriptions":   len(st.Subs),
		// Shared-evaluation planner gauges (DESIGN.md §11): plan-group
		// count, snapshots built, bands served per snapshot (the reuse
		// ratio), phase-P1 runs and matches served from shared lists.
		"engine.plan_groups":          st.PlanGroups,
		"engine.snapshot_builds":      st.SnapshotBuilds,
		"engine.snapshot_reuse_ratio": st.SnapshotReuse,
		"engine.match_runs":           st.MatchRuns,
		"engine.matches_shared":       st.MatchesShared,
		"http.requests":               s.reqs.Load(),
		"uptime_seconds":              time.Since(s.started).Seconds(),
	}
	if s.st != nil {
		// wal_seq is the newest WAL sequence number — the count of events
		// ever appended, not the events currently retained on disk (the old
		// wal_events name suggested the latter).
		out["store.wal_seq"] = s.st.Seq()
		out["store.wal_segments"] = len(s.st.Segments())
		if _, at, ok := s.st.SnapshotInfo(); ok {
			out["store.snapshot_age_seconds"] = time.Since(at).Seconds()
		}
	}
	s.epMu.Lock()
	eps := make(map[string]*endpointMetrics, len(s.eps))
	for name, m := range s.eps {
		eps[name] = m
	}
	s.epMu.Unlock()
	flatEndpointMetrics(out, eps, s.obsReg)
	writeJSON(w, http.StatusOK, out)
}

// prometheusSnapshots assembles the server's exposition set: the registry
// contents (histograms and any registered scalars) plus the point-in-time
// engine/store gauges that live in Stats structs.
func (s *Server) prometheusSnapshots() []obs.MetricSnapshot {
	var snaps []obs.MetricSnapshot
	if s.obsReg != nil {
		snaps = s.obsReg.Snapshot()
	}
	if s.runtime != nil {
		snaps = append(snaps, s.runtime.Collect()...)
	}
	st := s.engine.Stats()
	snaps = append(snaps,
		gaugeSnap("flowmotif_engine_watermark", "Stream watermark (event time).", float64(st.Watermark)),
		counterSnap("flowmotif_engine_events_ingested_total", "Events accepted by the engine.", float64(st.EventsIngested)),
		gaugeSnap("flowmotif_engine_events_retained", "Events currently in the retention log.", float64(st.EventsRetained)),
		counterSnap("flowmotif_engine_detections_total", "Motif instances finalized.", float64(st.Detections)),
		gaugeSnap("flowmotif_engine_subscriptions", "Active motif subscriptions.", float64(len(st.Subs))),
		gaugeSnap("flowmotif_engine_plan_groups", "Distinct (shape, delta) evaluation plan groups.", float64(st.PlanGroups)),
		counterSnap("flowmotif_engine_snapshot_builds_total", "Graph snapshots built by the shared-evaluation planner.", float64(st.SnapshotBuilds)),
		counterSnap("flowmotif_http_requests_total", "HTTP requests served.", float64(s.reqs.Load())),
		gaugeSnap("flowmotif_uptime_seconds", "Seconds since the server started.", time.Since(s.started).Seconds()),
	)
	if s.st != nil {
		snaps = append(snaps,
			gaugeSnap("flowmotif_store_wal_seq", "Newest WAL sequence number (events ever appended).", float64(s.st.Seq())),
			gaugeSnap("flowmotif_store_wal_segments", "WAL segment files on disk.", float64(len(s.st.Segments()))),
		)
		if _, at, ok := s.st.SnapshotInfo(); ok {
			snaps = append(snaps,
				gaugeSnap("flowmotif_store_snapshot_age_seconds", "Seconds since the last engine checkpoint.", time.Since(at).Seconds()))
		}
	}
	return snaps
}

// AddSubscription installs a cluster handoff: catch-up events and
// finalization bound into the engine, moved detections into the query
// sinks (cluster.InstallHandoff — the same protocol as LocalMember).
// Exposed over POST /cluster/add-sub on member servers.
func (s *Server) AddSubscription(h cluster.Handoff) error {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	id, err := cluster.InstallHandoff(s.engine, s.recent, s.topk, h)
	if err != nil {
		return err
	}
	s.subMu.Lock()
	s.subIDs[id] = true
	s.subMu.Unlock()
	return nil
}

// RemoveSubscription uninstalls a subscription and returns its handoff
// (engine bound + catch-up events + sink state). Exposed over POST
// /cluster/remove-sub on member servers.
func (s *Server) RemoveSubscription(id string) (cluster.Handoff, error) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	h, err := cluster.ExtractHandoff(s.engine, s.recent, s.topk, id)
	if err != nil {
		return cluster.Handoff{}, err
	}
	s.subMu.Lock()
	delete(s.subIDs, id)
	s.subMu.Unlock()
	return h, nil
}

func (s *Server) handleAddSub(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	// Handoff payloads carry catch-up history (up to the coordinator's
	// full retained broadcast on failover), so the public-ingest body
	// bound would wedge re-placement of long streams: allow far more here
	// — /cluster/* is a trusted coordinator-to-member channel.
	maxHandoff := s.maxBody
	if maxHandoff < clusterHandoffMaxBody {
		maxHandoff = clusterHandoffMaxBody
	}
	var h cluster.Handoff
	if !decodeBody(w, r, maxHandoff, &h) {
		return
	}
	if err := s.AddSubscription(h); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"ok": true, "sub": h.Sub.ID})
}

func (s *Server) handleRemoveSub(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req struct {
		ID string `json:"id"`
	}
	if !decodeBody(w, r, s.maxBody, &req) {
		return
	}
	h, err := s.RemoveSubscription(req.ID)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, stream.ErrUnknownSubscription) {
			status = http.StatusNotFound
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, h)
}

// clusterHandoffMaxBody is the minimum body bound for the /cluster/*
// handoff endpoints (1 GiB): subscription moves can carry a failover's
// full catch-up history, far beyond sensible public-ingest limits.
const clusterHandoffMaxBody = 1 << 30

// decodeBody decodes a bounded JSON request body, writing 413 for
// oversized payloads and 400 for malformed ones.
func decodeBody(w http.ResponseWriter, r *http.Request, maxBytes int64, v interface{}) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
		} else {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		}
		return false
	}
	return true
}

// wireEvent is the JSON shape of one interaction event.
type wireEvent struct {
	From temporal.NodeID `json:"from"`
	To   temporal.NodeID `json:"to"`
	T    int64           `json:"t"`
	F    float64         `json:"f"`
}

type ingestRequest struct {
	Events []wireEvent `json:"events"`
	// Seq tags a replicated batch with its replication-log sequence
	// number (cluster coordinators set it; see internal/cluster). A seq
	// at or below the last applied one marks a resend whose ack was lost:
	// the server answers with the recorded ack instead of re-applying.
	Seq int64 `json:"seq"`
}

type ingestResponse struct {
	Ingested   int   `json:"ingested"`
	Watermark  int64 `json:"watermark"`
	Detections int64 `json:"detections"` // finalized by this batch
	Seq        int64 `json:"seq,omitempty"`
	Dup        bool  `json:"dup,omitempty"`       // idempotent resend no-op
	Pipelined  bool  `json:"pipelined,omitempty"` // coordinator ack: applied asynchronously
	// Trace is the batch's trace ID: the key into GET /debug/traces for the
	// span tree following this batch from ingest ack to emit.
	Trace string `json:"trace,omitempty"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req ingestRequest
	if !decodeBody(w, r, s.maxBody, &req) {
		return
	}
	evs := make([]temporal.Event, len(req.Events))
	for i, e := range req.Events {
		evs[i] = temporal.Event{From: e.From, To: e.To, T: e.T, F: e.F}
	}
	// Pre-sort (stably, matching the engine's internal order) so the WAL
	// records the exact sequence the engine processed.
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	resp, status, err := s.applyIngest(evs, req.Seq, requestSpan(r).Context())
	if err != nil {
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// applyIngest is the transport-independent ingest core shared by the
// JSON handler and the binary wire listener: seq-tagged resend dedup,
// engine apply, WAL append with fail-stop poisoning, and last-ack
// recording, all as one atomic unit under ingestMu. Events must already
// be sorted by T (stable). The returned status is the HTTP taxonomy both
// transports translate from (200/400/409/500); err is non-nil for every
// non-200.
//
//flowmotif:hotpath
func (s *Server) applyIngest(evs []temporal.Event, seq int64, parent obs.SpanContext) (ingestResponse, int, error) {
	s.ingestMu.Lock()
	if s.walErr != nil {
		err := s.walErr
		s.ingestMu.Unlock()
		return ingestResponse{}, http.StatusInternalServerError,
			fmt.Errorf("wal broken, ingest fail-stopped (restart to recover): %w", err)
	}
	if seq > 0 && seq <= s.lastSeq {
		resp := s.lastAck
		resp.Dup = true
		s.ingestMu.Unlock()
		return resp, http.StatusOK, nil
	}
	ack, err := s.engine.IngestTraced(evs, parent)
	if err == nil && s.st != nil {
		if perr := s.st.Append(evs); perr != nil {
			// The engine applied the batch but the WAL did not: poison
			// ingest (fail-stop) so a replication retry cannot re-apply the
			// batch and later batches cannot widen the engine/WAL gap.
			s.walErr = perr
			if seq > 0 {
				s.lastSeq = seq
			}
			s.ingestMu.Unlock()
			return ingestResponse{}, http.StatusInternalServerError, fmt.Errorf("persist: %w", perr)
		}
	}
	resp := ingestResponse{
		Ingested:   ack.Ingested,
		Watermark:  ack.Watermark,
		Detections: ack.Detections,
		Seq:        seq,
		Trace:      ack.Trace,
	}
	if err == nil && seq > 0 {
		s.lastSeq = seq
		s.lastAck = resp
	}
	s.ingestMu.Unlock()
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, stream.ErrBehindFrontier):
			status = http.StatusConflict
		case errors.Is(err, stream.ErrFailStopped):
			// The engine poisoned itself mid-batch (partial append); like
			// the WAL fail-stop, only a restart recovers.
			status = http.StatusInternalServerError
		}
		return ingestResponse{}, status, err
	}
	return resp, http.StatusOK, nil
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if err := s.engine.Err(); err != nil {
		// Same contract as ingest on a poisoned engine: 500, not an
		// empty-success flush that silently foreclosed nothing.
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if s.st != nil {
		s.snapMu.Lock() // before ingestMu, per the documented lock order
		defer s.snapMu.Unlock()
	}
	s.ingestMu.Lock()
	ack := s.engine.FlushTraced(requestSpan(r).Context())
	var seq int64
	var snap serverSnapshot
	var snapErr error
	if s.st != nil {
		seq, snap, snapErr = s.captureSnapshotLocked()
	}
	s.ingestMu.Unlock()
	if snapErr != nil {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("persist flush: %w", snapErr))
		return
	}
	if s.st != nil {
		// A flush forecloses windows beyond the watermark; checkpointing
		// makes that frontier durable, so a post-crash replay cannot
		// re-open (and re-emit from) windows the flush already closed.
		if err := s.writeSnapshot(seq, snap); err != nil {
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("persist flush: %w", err))
			return
		}
	}
	writeJSON(w, http.StatusOK, ingestResponse{
		Watermark:  ack.Watermark,
		Detections: ack.Detections,
		Trace:      ack.Trace,
	})
}

// handleSnapshot is the POST /snapshot admin endpoint: checkpoint now.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.st == nil {
		writeErr(w, http.StatusBadRequest, errors.New("server is not durable (start with a data dir)"))
		return
	}
	start := time.Now()
	seq, err := s.Snapshot()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"seq":     seq,
		"tookMs":  time.Since(start).Milliseconds(),
		"durable": true,
	})
}

// handleHealthz reports liveness plus the load-balancer-relevant progress
// counters: the stream watermark, event counts and snapshot freshness.
// With the SLO watchdog tripped the status degrades (still 200 — the
// process is alive and serving; "degraded" plus the reasons is the signal
// a traffic director acts on).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	st := s.engine.Stats()
	resp := map[string]interface{}{
		"status":     "ok",
		"started":    st.Started,
		"watermark":  st.Watermark,
		"events":     st.EventsIngested,
		"detections": st.Detections,
		"durable":    s.st != nil,
	}
	if s.slo != nil {
		if reasons := s.slo.Reasons(); len(reasons) > 0 {
			resp["status"] = "degraded"
			resp["degradedReasons"] = reasons
		}
	}
	// Advertise the binary wire listener so clients (HTTPMember among
	// them) can upgrade from JSON automatically.
	if port := s.WirePort(); port > 0 {
		resp["wirePort"] = port
	}
	if s.st != nil {
		resp["walEvents"] = s.st.Seq()
		if seq, at, ok := s.st.SnapshotInfo(); ok {
			resp["lastSnapshotSeq"] = seq
			resp["lastSnapshotUnix"] = at.Unix()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) resolveSub(w http.ResponseWriter, r *http.Request) (string, bool) {
	sub := r.URL.Query().Get("sub")
	s.subMu.RLock()
	defer s.subMu.RUnlock()
	if sub == "" {
		if len(s.subIDs) == 1 {
			for id := range s.subIDs {
				return id, true
			}
		}
		return "", true // "all" for /instances; /topk rejects below
	}
	if !s.subIDs[sub] {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown subscription %q", sub))
		return "", false
	}
	return sub, true
}

func (s *Server) handleInstances(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	sub, ok := s.resolveSub(w, r)
	if !ok {
		return
	}
	limit, err := intParam(r, "limit", 50)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ds := s.recent.Recent(sub, limit)
	wm, started := s.engine.Watermark()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"count":     len(ds),
		"watermark": wm,
		"started":   started,
		"instances": ds,
	})
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	k, err := intParam(r, "k", 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	wm, started := s.engine.Watermark()
	// ?all=1 merges across every local subscription — the per-shard half
	// of the cluster's distributed top-k (internal/cluster.MergeTopK).
	if r.URL.Query().Get("all") != "" {
		var lists [][]*stream.Detection
		for _, sub := range s.engine.Subscriptions() {
			lists = append(lists, s.topk.Top(sub.ID))
		}
		ds := cluster.MergeTopK(lists, k)
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"sub":       "",
			"count":     len(ds),
			"watermark": wm,
			"started":   started,
			"instances": ds,
		})
		return
	}
	sub, ok := s.resolveSub(w, r)
	if !ok {
		return
	}
	if sub == "" {
		writeErr(w, http.StatusBadRequest, errors.New("sub parameter required (several subscriptions configured; use all=1 for a merged list)"))
		return
	}
	ds := s.topk.Top(sub)
	if k > 0 && k < len(ds) {
		ds = ds[:k]
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"sub":       sub,
		"count":     len(ds),
		"watermark": wm,
		"started":   started,
		"instances": ds,
	})
}

func (s *Server) handleSubs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	type wireSub struct {
		ID    string  `json:"id"`
		Motif string  `json:"motif"`
		Path  string  `json:"path"`
		Delta int64   `json:"delta"`
		Phi   float64 `json:"phi"`
	}
	var out []wireSub
	for _, sub := range s.engine.Subscriptions() {
		out = append(out, wireSub{
			ID:    sub.ID,
			Motif: sub.Motif.Name(),
			Path:  sub.Motif.String(),
			Delta: sub.Delta,
			Phi:   sub.Phi,
		})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"subs": out})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	resp := map[string]interface{}{
		"engine":        s.engine.Stats(),
		"uptimeSeconds": time.Since(s.started).Seconds(),
		"httpRequests":  s.reqs.Load(),
	}
	if s.obsReg != nil {
		// Full metric snapshot: cluster coordinators pull member histograms
		// through this field and bucket-merge them into their exposition.
		resp["metrics"] = s.obsReg.Snapshot()
	}
	if s.st != nil {
		resp["store"] = map[string]interface{}{
			"walEvents": s.st.Seq(),
			"segments":  s.st.Segments(),
			"recovery":  s.recovered,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s parameter %q", name, v)
	}
	return n, nil
}

// writeJSON encodes v to a buffer first and only then writes the status
// header: encoding straight into the ResponseWriter would commit the
// success status before a marshal failure could surface, leaving the
// client a truncated body under a 200. An encode failure now yields a
// clean 500 with a JSON error body instead.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		// Marshalling a map[string]string cannot fail, so the error body
		// itself is safe to encode directly.
		payload, _ := json.Marshal(map[string]string{"error": "response encoding failed: " + err.Error()})
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write(append(payload, '\n'))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
