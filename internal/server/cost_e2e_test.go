package server

// End-to-end coverage for DESIGN.md §14: per-subscription cost
// attribution surfaced over /debug/top (member and coordinator), the
// cluster-wide merge of same-shape cost series, the SLO burn-rate
// watchdog, and the metrics-catalog drift check against DESIGN.md.

import (
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"flowmotif/internal/cluster"
	"flowmotif/internal/gen"
	"flowmotif/internal/motif"
	"flowmotif/internal/obs"
	"flowmotif/internal/stream"
	"flowmotif/internal/temporal"
)

// topResponse mirrors the /debug/top JSON for decoding in tests.
type topResponse struct {
	By                string     `json:"by"`
	AttributedSeconds float64    `json:"attributedSeconds"`
	Rounds            int64      `json:"rounds"`
	Members           int        `json:"members"`
	Subs              []topSub   `json:"subs"`
	Groups            []topGroup `json:"groups"`
	Shards            []topShard `json:"shards"`
}

// skewedEvents generates the shared workload: a bitcoin-style interaction
// stream with enough triangles and chains to exercise every plan group.
func skewedEvents(t *testing.T) []temporal.Event {
	t.Helper()
	evs, err := gen.Bitcoin(gen.BitcoinConfig{Nodes: 120, SeedTxns: 300, Duration: 15000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	return evs
}

// skewedSubs builds three plan groups with deliberate cost skew: four
// heavy chain subscriptions over a wide window (chains are the prolific
// shape on this workload, and the wide match set strictly contains the
// narrow ones), one light chain subscription over a tiny window, and two
// triangle subscriptions in between. Placement co-locates by shape, so on
// a two-member cluster the chains land on one shard and the triangles on
// the other.
func skewedSubs() []stream.Subscription {
	return []stream.Subscription{
		{ID: "heavy0", Motif: motif.MustPath(0, 1, 2), Delta: 2400, Phi: 0},
		{ID: "heavy1", Motif: motif.MustPath(0, 1, 2), Delta: 2400, Phi: 0},
		{ID: "heavy2", Motif: motif.MustPath(0, 1, 2), Delta: 2400, Phi: 0},
		{ID: "heavy3", Motif: motif.MustPath(0, 1, 2), Delta: 2400, Phi: 0},
		{ID: "light", Motif: motif.MustPath(0, 1, 2), Delta: 60, Phi: 1},
		{ID: "triA", Motif: motif.MustPath(0, 1, 2, 0), Delta: 600, Phi: 1},
		{ID: "triB", Motif: motif.MustPath(0, 1, 2, 0), Delta: 600, Phi: 1},
	}
}

func eventBatch(evs []temporal.Event) []map[string]interface{} {
	batch := make([]map[string]interface{}, len(evs))
	for i, e := range evs {
		batch[i] = map[string]interface{}{"from": e.From, "to": e.To, "t": e.T, "f": e.F}
	}
	return batch
}

// TestDebugTopSingleServer checks the member-side /debug/top: ranked
// subscriptions and plan groups from the engine's cost account, parameter
// validation, and the 404 when attribution is off.
func TestDebugTopSingleServer(t *testing.T) {
	srv, err := New(Config{Subs: skewedSubs(), Recent: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	evs := skewedEvents(t)
	if resp, body := postJSON(t, client, ts.URL+"/ingest", map[string]interface{}{"events": eventBatch(evs)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, client, ts.URL+"/flush", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %d: %s", resp.StatusCode, body)
	}

	var top topResponse
	getJSON(t, client, ts.URL+"/debug/top?by=cost", &top)
	if top.Rounds == 0 || top.AttributedSeconds <= 0 {
		t.Fatalf("no metered rounds in /debug/top: %+v", top)
	}
	if len(top.Subs) != len(skewedSubs()) {
		t.Fatalf("got %d sub rows, want %d", len(top.Subs), len(skewedSubs()))
	}
	for i := 1; i < len(top.Subs); i++ {
		if top.Subs[i].Seconds > top.Subs[i-1].Seconds {
			t.Fatalf("subs not sorted by seconds desc: %+v", top.Subs)
		}
	}
	if !strings.HasPrefix(top.Subs[0].ID, "heavy") {
		t.Fatalf("top sub by cost is %q, want a heavy* subscription: %+v", top.Subs[0].ID, top.Subs)
	}
	if len(top.Groups) != 3 {
		t.Fatalf("got %d plan groups, want 3: %+v", len(top.Groups), top.Groups)
	}
	if top.Groups[0].Delta != 2400 {
		t.Fatalf("most expensive group is δ=%d, want the heavy δ=2400 group: %+v", top.Groups[0].Delta, top.Groups)
	}
	// ?limit clips every section.
	var clipped topResponse
	getJSON(t, client, ts.URL+"/debug/top?limit=2", &clipped)
	if len(clipped.Subs) != 2 || len(clipped.Groups) != 2 {
		t.Fatalf("limit=2 not applied: %d subs, %d groups", len(clipped.Subs), len(clipped.Groups))
	}
	// Bad ranking key: 400.
	if resp, err := client.Get(ts.URL + "/debug/top?by=vibes"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("by=vibes: %d, want 400", resp.StatusCode)
	}

	// Attribution off: /debug/top answers 404, not zeros.
	off, err := New(Config{Subs: skewedSubs()[:1], DisableCostAttribution: true})
	if err != nil {
		t.Fatal(err)
	}
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	if resp, err := tsOff.Client().Get(tsOff.URL + "/debug/top"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled attribution /debug/top: %d, want 404", resp.StatusCode)
	}
}

// TestClusterDebugTop drives a two-member cluster (HTTP member daemons)
// with three skewed plan groups and checks the coordinator's stitched
// /debug/top: ranking consistent with the skew, sub rows tagged with
// their shard, groups merged, shards section present, and shares re-based
// over cluster seconds.
func TestClusterDebugTop(t *testing.T) {
	m0, _ := memberDaemon(t, "m0")
	m1, _ := memberDaemon(t, "m1")
	c, err := cluster.New(cluster.Config{
		Members:    []cluster.Member{m0, m1},
		Subs:       skewedSubs(),
		RetryDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cs := NewCoordinator(c, 0)
	front := httptest.NewServer(cs.Handler())
	defer front.Close()
	client := front.Client()

	// Both shards must own subscriptions, or the "cluster-wide" claim is
	// untested (placement co-locates by shape: triangles on one member,
	// chains on the other).
	owners := map[string]bool{}
	for _, owner := range c.Placement() {
		owners[owner] = true
	}
	if len(owners) != 2 {
		t.Fatalf("placement uses %d members, want 2: %v", len(owners), c.Placement())
	}

	evs := skewedEvents(t)
	if resp, body := postJSON(t, client, front.URL+"/ingest", map[string]interface{}{"events": eventBatch(evs)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d: %s", resp.StatusCode, body)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if resp, body := postJSON(t, client, front.URL+"/flush", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %d: %s", resp.StatusCode, body)
	}

	var top topResponse
	getJSON(t, client, front.URL+"/debug/top?by=cost&limit=100", &top)
	if top.Members != 2 || top.AttributedSeconds <= 0 {
		t.Fatalf("coordinator top header: %+v", top)
	}
	if len(top.Subs) != len(skewedSubs()) {
		t.Fatalf("got %d sub rows, want %d: %+v", len(top.Subs), len(skewedSubs()), top.Subs)
	}
	if !strings.HasPrefix(top.Subs[0].ID, "heavy") {
		t.Fatalf("top cluster sub is %q, want a heavy* subscription", top.Subs[0].ID)
	}
	var shareSum, secSum float64
	for _, s := range top.Subs {
		if s.Member == "" {
			t.Fatalf("sub row %q missing its member: %+v", s.ID, s)
		}
		shareSum += s.Share
		secSum += s.Seconds
	}
	if shareSum < 0.99 || shareSum > 1.01 {
		t.Fatalf("cluster shares sum to %v, want ~1", shareSum)
	}
	if rel := (secSum - top.AttributedSeconds) / top.AttributedSeconds; rel > 1e-6 || rel < -1e-6 {
		t.Fatalf("sub seconds sum %v != cluster attributed %v", secSum, top.AttributedSeconds)
	}
	if len(top.Groups) != 3 {
		t.Fatalf("got %d merged plan groups, want 3: %+v", len(top.Groups), top.Groups)
	}
	if top.Groups[0].Delta != 2400 || top.Groups[0].Subs != 4 {
		t.Fatalf("most expensive merged group should be the 4-sub δ=2400 chain group: %+v", top.Groups[0])
	}
	if len(top.Shards) != 2 {
		t.Fatalf("got %d shard rows, want 2: %+v", len(top.Shards), top.Shards)
	}
	if top.Shards[0].CostSeconds < top.Shards[1].CostSeconds {
		t.Fatalf("shards not ranked by cost: %+v", top.Shards)
	}
	// The triangle-owning shard must out-cost the chain shard (the heavy
	// groups are triangles), which is what makes the ranking meaningful.
	if top.Shards[0].CostSeconds <= 0 {
		t.Fatalf("top shard has no attributed cost: %+v", top.Shards)
	}
	// by=lag ranks shards by detection-lag p99.
	var byLag topResponse
	getJSON(t, client, front.URL+"/debug/top?by=lag", &byLag)
	if len(byLag.Shards) != 2 {
		t.Fatalf("by=lag shard rows: %+v", byLag.Shards)
	}
}

// TestClusterSubCostMergeSameShape is the label-collision check: the same
// subscription shape (and even the same subscription ID) metered on two
// different engines must merge into ONE summed series per (sub, shape)
// under obs.Accum — the coordinator's exposition path — with distinct
// subscriptions untouched. Placement co-locates same-shape subscriptions
// on one member, so this drives the merge directly over two engines.
func TestClusterSubCostMergeSameShape(t *testing.T) {
	evs := skewedEvents(t)
	mk := func(ids ...string) *stream.Engine {
		subs := make([]stream.Subscription, len(ids))
		for i, id := range ids {
			subs[i] = stream.Subscription{ID: id, Motif: motif.MustPath(0, 1, 2, 0), Delta: 600, Phi: 1}
		}
		eng, err := stream.NewEngine(stream.Config{Subs: subs}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Ingest(evs); err != nil {
			t.Fatal(err)
		}
		eng.Flush()
		return eng
	}
	e1 := mk("shared", "only1")
	e2 := mk("shared", "only2")

	subCost := func(reg *obs.Registry, sub string) float64 {
		for _, m := range reg.Snapshot() {
			if m.Name != "flowmotif_sub_cost_seconds_total" {
				continue
			}
			for _, l := range m.Labels {
				if l.Key == "sub" && l.Value == sub {
					return m.Value
				}
			}
		}
		return 0
	}
	w1, w2 := subCost(e1.Obs(), "shared"), subCost(e2.Obs(), "shared")
	if w1 <= 0 || w2 <= 0 {
		t.Fatalf("per-engine shared-sub cost: %v, %v — want both positive", w1, w2)
	}

	acc := obs.NewAccum()
	acc.Add(e1.Obs().Snapshot(), obs.L("member", "a"))
	acc.Add(e2.Obs().Snapshot(), obs.L("member", "b"))
	series := map[string]float64{}
	for _, m := range acc.Snapshots() {
		if m.Name != "flowmotif_sub_cost_seconds_total" {
			continue
		}
		var sub string
		for _, l := range m.Labels {
			if l.Key == "member" {
				t.Fatalf("cost counter gained a member label (would split the cluster-wide sum): %+v", m.Labels)
			}
			if l.Key == "sub" {
				sub = l.Value
			}
		}
		if _, dup := series[sub]; dup {
			t.Fatalf("duplicate merged series for sub %q", sub)
		}
		series[sub] = m.Value
	}
	if len(series) != 3 {
		t.Fatalf("merged series = %v, want exactly {shared, only1, only2}", series)
	}
	if got, want := series["shared"], w1+w2; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("merged shared-sub cost %v, want sum of engines %v", got, want)
	}
}

// TestSLOWatchdogTrips drives the watchdog's evaluate loop with synthetic
// sample times over a real degraded engine: every detection lags past a
// 1ns SLO, so both burn windows run hot, /healthz degrades with reasons,
// and the burn-rate gauges export.
func TestSLOWatchdogTrips(t *testing.T) {
	srv, err := New(Config{
		Subs: []stream.Subscription{{ID: "tri", Motif: motif.MustPath(0, 1, 2, 0), Delta: 600, Phi: 1}},
		SLO: SLOConfig{
			LagSLO:     time.Nanosecond, // every emit is over SLO
			FastWindow: time.Minute,
			SlowWindow: 10 * time.Minute,
			Interval:   time.Hour, // the ticker stays out of the way; the test drives evaluate
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.slo == nil {
		t.Fatal("watchdog not armed")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	t0 := time.Now()
	srv.slo.evaluate(srv.slo.sample(t0)) // healthy baseline

	var health map[string]interface{}
	getJSON(t, client, ts.URL+"/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz before degradation: %v", health)
	}

	var batch []map[string]interface{}
	for i := 0; i < 10; i++ {
		base := int64(i * 50)
		batch = append(batch,
			map[string]interface{}{"from": 0, "to": 1, "t": base, "f": 5},
			map[string]interface{}{"from": 1, "to": 2, "t": base + 1, "f": 5},
			map[string]interface{}{"from": 2, "to": 0, "t": base + 2, "f": 5},
		)
	}
	if resp, body := postJSON(t, client, ts.URL+"/ingest", map[string]interface{}{"events": batch}); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, client, ts.URL+"/flush", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %d: %s", resp.StatusCode, body)
	}

	// Past both windows: the baseline anchors the deltas, every detection
	// since is bad, both windows burn far over the threshold.
	srv.slo.evaluate(srv.slo.sample(t0.Add(11 * time.Minute)))
	reasons := srv.slo.Reasons()
	if len(reasons) == 0 || !strings.Contains(reasons[0], "detection lag") {
		t.Fatalf("watchdog did not trip on lag: reasons = %v", reasons)
	}
	getJSON(t, client, ts.URL+"/healthz", &health)
	if health["status"] != "degraded" {
		t.Fatalf("healthz after trip: %v", health)
	}
	if _, ok := health["degradedReasons"]; !ok {
		t.Fatalf("healthz missing degradedReasons: %v", health)
	}

	gauges := map[string]float64{}
	for _, m := range srv.Obs().Snapshot() {
		if m.Name != "flowmotif_slo_burn_rate" {
			continue
		}
		var slo, window string
		for _, l := range m.Labels {
			switch l.Key {
			case "slo":
				slo = l.Value
			case "window":
				window = l.Value
			}
		}
		gauges[slo+"/"+window] = m.Value
	}
	if len(gauges) != 4 {
		t.Fatalf("burn-rate gauges = %v, want 4 series (lag/errors × fast/slow)", gauges)
	}
	if gauges["lag/fast"] <= 2 || gauges["lag/slow"] <= 2 {
		t.Fatalf("lag burn rates not over threshold: %v", gauges)
	}

	// Recovery: windows that moved past the bad interval stop burning and
	// the degradation clears.
	srv.slo.evaluate(srv.slo.sample(t0.Add(12 * time.Minute)))
	srv.slo.evaluate(srv.slo.sample(t0.Add(30 * time.Minute)))
	if reasons := srv.slo.Reasons(); len(reasons) != 0 {
		t.Fatalf("watchdog did not recover: reasons = %v", reasons)
	}
	getJSON(t, client, ts.URL+"/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz after recovery: %v", health)
	}
}

// catalogMetricNames parses DESIGN.md's catalog tables: backticked tokens
// in the first cell of any table row that look like metric names (lower
// snake case with at least one underscore). Names are normalized with the
// flowmotif_ prefix unless they carry the go_ runtime prefix.
func catalogMetricNames(t *testing.T) map[string]bool {
	t.Helper()
	data, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	tok := regexp.MustCompile("`([a-z0-9_]+)`")
	names := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		cells := strings.Split(line, "|")
		if len(cells) < 3 {
			continue
		}
		for _, m := range tok.FindAllStringSubmatch(cells[1], -1) {
			name := m[1]
			if !strings.Contains(name, "_") {
				continue
			}
			if !strings.HasPrefix(name, "go_") && !strings.HasPrefix(name, "flowmotif_") {
				name = "flowmotif_" + name
			}
			names[name] = true
		}
	}
	if len(names) < 20 {
		t.Fatalf("catalog parse found only %d names — table format drifted?", len(names))
	}
	return names
}

// TestMetricsCatalogDrift diffs DESIGN.md's metric catalog against the
// union of a live member and coordinator exposition, both directions: a
// new series must be documented, and a documented series must exist.
func TestMetricsCatalogDrift(t *testing.T) {
	catalog := catalogMetricNames(t)

	// Member daemon with every subsystem armed: durable store, SLO
	// watchdog, cost attribution, tracing.
	srv, err := New(Config{
		Subs:    skewedSubs()[:6],
		DataDir: t.TempDir(),
		SLO:     SLOConfig{LagSLO: 2 * time.Second, Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	evs := skewedEvents(t)
	if resp, body := postJSON(t, client, ts.URL+"/ingest", map[string]interface{}{"events": eventBatch(evs)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, client, ts.URL+"/flush", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, client, ts.URL+"/snapshot", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d: %s", resp.StatusCode, body)
	}

	// Coordinator over one local member, for the cluster-side families.
	lm, err := cluster.NewLocalMember("m0", cluster.LocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(cluster.Config{
		Members: []cluster.Member{lm},
		Subs:    skewedSubs()[:2],
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cs := NewCoordinator(c, 0)
	front := httptest.NewServer(cs.Handler())
	defer front.Close()
	if resp, body := postJSON(t, front.Client(), front.URL+"/ingest", map[string]interface{}{"events": eventBatch(evs)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator ingest: %d: %s", resp.StatusCode, body)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	exposed := map[string]bool{}
	for _, url := range []string{
		ts.URL + "/metrics?format=prometheus",
		front.URL + "/metrics?format=prometheus",
	} {
		for name := range scrape(t, client, url) {
			exposed[name] = true
		}
	}

	var missing, undocumented []string
	for name := range exposed {
		if !catalog[name] {
			undocumented = append(undocumented, name)
		}
	}
	for name := range catalog {
		if !exposed[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(undocumented)
	if len(undocumented) > 0 {
		t.Errorf("exposed series missing from the DESIGN.md catalog (document them): %v", undocumented)
	}
	if len(missing) > 0 {
		t.Errorf("cataloged series absent from live expositions (stale docs or lost wiring): %v", missing)
	}
}
