package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"flowmotif/internal/core"
	"flowmotif/internal/gen"
	"flowmotif/internal/motif"
	"flowmotif/internal/stream"
	"flowmotif/internal/temporal"
)

func detKey(d *stream.Detection) string {
	var b strings.Builder
	fmt.Fprintf(&b, "N%v", d.Nodes)
	for i, es := range d.Edges {
		fmt.Fprintf(&b, "|e%d", i)
		for _, p := range es {
			fmt.Fprintf(&b, ";%d:%g", p.T, p.F)
		}
	}
	return b.String()
}

func batchKey(g *temporal.Graph, in *core.Instance) string {
	var b strings.Builder
	fmt.Fprintf(&b, "N%v", in.Nodes)
	for i, a := range in.Arcs {
		fmt.Fprintf(&b, "|e%d", i)
		for _, p := range g.Series(a)[in.Spans[i].Start:in.Spans[i].End] {
			fmt.Fprintf(&b, ";%d:%g", p.T, p.F)
		}
	}
	return b.String()
}

func postJSON(t *testing.T, client *http.Client, url string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func getJSON(t *testing.T, client *http.Client, url string, v interface{}) *http.Response {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

// TestServerEndToEnd drives the full daemon API over httptest: batched
// ingest, flush, then instance/topk/stat queries — and checks the served
// detections are exactly the batch-search results.
func TestServerEndToEnd(t *testing.T) {
	evs, err := gen.Bitcoin(gen.BitcoinConfig{
		Nodes: 150, SeedTxns: 500, Duration: 20000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	g, err := temporal.NewGraph(evs)
	if err != nil {
		t.Fatal(err)
	}

	tri := motif.MustPath(0, 1, 2, 0)
	chain := motif.MustPath(0, 1, 2)
	srv, err := New(Config{
		Subs: []stream.Subscription{
			{ID: "tri", Motif: tri, Delta: 600, Phi: 2},
			{ID: "chain", Motif: chain, Delta: 400, Phi: 0},
		},
		Recent: 1 << 20,
		TopK:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// Batched ingest.
	total := 0
	for i := 0; i < len(evs); i += 100 {
		end := i + 100
		if end > len(evs) {
			end = len(evs)
		}
		req := map[string]interface{}{"events": wireEvents(evs[i:end])}
		resp, body := postJSON(t, client, ts.URL+"/ingest", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest: status %d: %s", resp.StatusCode, body)
		}
		var ir ingestResponse
		if err := json.Unmarshal(body, &ir); err != nil {
			t.Fatal(err)
		}
		if ir.Ingested != end-i {
			t.Fatalf("ingested %d, want %d", ir.Ingested, end-i)
		}
		total += ir.Ingested
	}
	if total != len(evs) {
		t.Fatalf("ingested %d events, want %d", total, len(evs))
	}

	// Flush closes all remaining windows.
	if resp, body := postJSON(t, client, ts.URL+"/flush", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: status %d: %s", resp.StatusCode, body)
	}

	// Served instances == batch search, per subscription.
	for _, tc := range []struct {
		sub string
		mo  *motif.Motif
		p   core.Params
	}{
		{"tri", tri, core.Params{Delta: 600, Phi: 2}},
		{"chain", chain, core.Params{Delta: 400, Phi: 0}},
	} {
		want, err := core.Collect(g, tc.mo, tc.p, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantKeys := map[string]bool{}
		for _, in := range want {
			wantKeys[batchKey(g, in)] = true
		}
		if len(wantKeys) == 0 {
			t.Fatalf("degenerate: no batch instances for %s", tc.sub)
		}

		var got struct {
			Count     int                 `json:"count"`
			Instances []*stream.Detection `json:"instances"`
		}
		resp := getJSON(t, client, ts.URL+"/instances?sub="+tc.sub+"&limit=0", &got)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("instances: status %d", resp.StatusCode)
		}
		if got.Count != len(wantKeys) {
			t.Fatalf("sub %s: served %d instances, batch found %d", tc.sub, got.Count, len(wantKeys))
		}
		for _, d := range got.Instances {
			if !wantKeys[detKey(d)] {
				t.Errorf("sub %s: served spurious instance %s", tc.sub, detKey(d))
			}
			if d.Sub != tc.sub || d.Motif != tc.mo.Name() {
				t.Errorf("mislabelled detection: %+v", d)
			}
		}

		// Top-k agrees with the k best batch flows.
		flows := make([]float64, 0, len(want))
		for _, in := range want {
			flows = append(flows, in.Flow)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(flows)))
		k := 5
		if len(flows) < k {
			k = len(flows)
		}
		var topGot struct {
			Instances []*stream.Detection `json:"instances"`
		}
		resp = getJSON(t, client, ts.URL+"/topk?sub="+tc.sub+"&k=5", &topGot)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("topk: status %d", resp.StatusCode)
		}
		if len(topGot.Instances) != k {
			t.Fatalf("topk served %d, want %d", len(topGot.Instances), k)
		}
		for i, d := range topGot.Instances {
			// Band sub-graphs accumulate prefix sums in a different order
			// than the full graph, so flows agree only up to rounding.
			if diff := math.Abs(d.Flow - flows[i]); diff > 1e-9*math.Abs(flows[i]) {
				t.Errorf("topk[%d].Flow = %g, want %g", i, d.Flow, flows[i])
			}
		}
	}

	// Stats reflect the run.
	var st struct {
		Engine stream.Stats `json:"engine"`
	}
	if resp := getJSON(t, client, ts.URL+"/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	if st.Engine.EventsIngested != int64(len(evs)) {
		t.Errorf("stats: EventsIngested = %d, want %d", st.Engine.EventsIngested, len(evs))
	}
	if !st.Engine.Started || st.Engine.Detections == 0 {
		t.Errorf("stats look dead: %+v", st.Engine)
	}

	// Subscription listing.
	var subs struct {
		Subs []struct {
			ID string `json:"id"`
		} `json:"subs"`
	}
	getJSON(t, client, ts.URL+"/subs", &subs)
	if len(subs.Subs) != 2 {
		t.Fatalf("/subs returned %d entries, want 2", len(subs.Subs))
	}
}

func TestServerErrors(t *testing.T) {
	srv, err := New(Config{
		Subs: []stream.Subscription{
			{ID: "a", Motif: motif.MustPath(0, 1, 2), Delta: 10, Phi: 0},
			{ID: "b", Motif: motif.MustPath(0, 1, 2, 0), Delta: 10, Phi: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// Wrong method.
	if resp := getJSON(t, client, ts.URL+"/ingest", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest: status %d, want 405", resp.StatusCode)
	}
	// Malformed body.
	resp, err := client.Post(ts.URL+"/ingest", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body: status %d, want 400", resp.StatusCode)
	}
	// Valid ingest, then a stale batch -> 409, atomically rejected.
	if resp, body := postJSON(t, client, ts.URL+"/ingest", map[string]interface{}{
		"events": []wireEvent{{From: 0, To: 1, T: 100, F: 1}},
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, client, ts.URL+"/ingest", map[string]interface{}{
		"events": []wireEvent{{From: 0, To: 1, T: 50, F: 1}},
	}); resp.StatusCode != http.StatusConflict {
		t.Errorf("stale batch: status %d, want 409", resp.StatusCode)
	}
	// Invalid flow -> 400.
	if resp, _ := postJSON(t, client, ts.URL+"/ingest", map[string]interface{}{
		"events": []wireEvent{{From: 0, To: 1, T: 200, F: -1}},
	}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative flow: status %d, want 400", resp.StatusCode)
	}
	// Unknown subscription -> 404.
	if resp := getJSON(t, client, ts.URL+"/instances?sub=nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sub: status %d, want 404", resp.StatusCode)
	}
	// Ambiguous topk (two subs, none named) -> 400.
	if resp := getJSON(t, client, ts.URL+"/topk", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ambiguous topk: status %d, want 400", resp.StatusCode)
	}
	// Bad limit -> 400.
	if resp := getJSON(t, client, ts.URL+"/instances?limit=x", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit: status %d, want 400", resp.StatusCode)
	}
	// Health.
	if resp := getJSON(t, client, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d, want 200", resp.StatusCode)
	}
}

func wireEvents(evs []temporal.Event) []wireEvent {
	out := make([]wireEvent, len(evs))
	for i, e := range evs {
		out[i] = wireEvent{From: e.From, To: e.To, T: e.T, F: e.F}
	}
	return out
}
