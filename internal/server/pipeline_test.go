package server

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"flowmotif/internal/cluster"
	"flowmotif/internal/motif"
	"flowmotif/internal/stream"
	"flowmotif/internal/temporal"
)

// TestWriteJSONEncodeFailure is the regression test for the truncated-200
// hazard: writeJSON used to commit the success header before encoding, so
// a marshal failure mid-stream left the client a truncated body under a
// 200. Now the payload is encoded to a buffer first and an encode failure
// yields a clean 500 with a JSON error body.
func TestWriteJSONEncodeFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, map[string]interface{}{"bad": math.NaN()})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d for an unencodable payload, want 500", rec.Code)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body not valid JSON: %v (%q)", err, rec.Body.String())
	}
	if !strings.Contains(e.Error, "encoding failed") {
		t.Fatalf("error body = %q, want an encoding-failure message", e.Error)
	}

	// The happy path is unchanged: status and body intact.
	rec = httptest.NewRecorder()
	writeJSON(rec, http.StatusCreated, map[string]string{"ok": "yes"})
	if rec.Code != http.StatusCreated || !strings.Contains(rec.Body.String(), `"ok":"yes"`) {
		t.Fatalf("happy path: %d %q", rec.Code, rec.Body.String())
	}
}

// TestIngestSeqDedupOverHTTP pins the member daemon's half of idempotent
// replication: a seq-tagged /ingest resend answers with the recorded ack
// (dup=true) instead of a 409, and the engine applies nothing twice.
func TestIngestSeqDedupOverHTTP(t *testing.T) {
	srv, err := New(Config{Member: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	if resp, body := postJSON(t, client, ts.URL+"/cluster/add-sub",
		cluster.Handoff{Sub: cluster.SubSpec{ID: "s", Motif: "0-1", Delta: 5}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("add-sub: %d: %s", resp.StatusCode, body)
	}
	payload := map[string]interface{}{
		"seq":    1,
		"events": []map[string]interface{}{{"from": 0, "to": 1, "t": 10, "f": 2}},
	}
	var first, again struct {
		Ingested  int   `json:"ingested"`
		Watermark int64 `json:"watermark"`
		Seq       int64 `json:"seq"`
		Dup       bool  `json:"dup"`
	}
	resp, body := postJSON(t, client, ts.URL+"/ingest", payload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first ingest: %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Dup || first.Seq != 1 || first.Ingested != 1 {
		t.Fatalf("first ack = %+v", first)
	}
	// The resend (same seq) would be a 409 behind-frontier without dedup.
	resp, body = postJSON(t, client, ts.URL+"/ingest", payload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resend: %d: %s (want the recorded ack, not a rejection)", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Dup || again.Watermark != first.Watermark || again.Ingested != 1 {
		t.Fatalf("resend ack = %+v, want dup of %+v", again, first)
	}
	var st struct {
		Engine struct {
			EventsIngested int64 `json:"eventsIngested"`
		} `json:"engine"`
	}
	getJSON(t, client, ts.URL+"/stats", &st)
	if st.Engine.EventsIngested != 1 {
		t.Fatalf("engine ingested %d events after a resend, want 1", st.Engine.EventsIngested)
	}
	// An untagged batch behind the frontier still 409s (dedup is scoped
	// to tagged replication traffic).
	resp, _ = postJSON(t, client, ts.URL+"/ingest", map[string]interface{}{
		"events": []map[string]interface{}{{"from": 0, "to": 1, "t": 3, "f": 1}},
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("untagged behind-frontier ingest: %d, want 409", resp.StatusCode)
	}
}

// TestCoordinatorDegradedResponses pins the no-data / degraded states the
// coordinator's query API distinguishes: a fresh cluster answers 200 with
// started=false (not an indistinguishable empty success), a healthy
// started cluster answers started=true, and a cluster whose every shard
// is gone answers 503 instead of an empty 200.
func TestCoordinatorDegradedResponses(t *testing.T) {
	m0, err := cluster.NewLocalMember("m0", cluster.LocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(cluster.Config{
		Members:    []cluster.Member{m0},
		Subs:       []stream.Subscription{{ID: "s", Motif: motif.MustPath(0, 1), Delta: 5}},
		RetryDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cs := NewCoordinator(c, 0)
	front := httptest.NewServer(cs.Handler())
	defer front.Close()
	client := front.Client()

	// Fresh cluster: 200, zero instances, started=false — "no data yet",
	// not "empty stream at watermark 0".
	var q struct {
		Count     int   `json:"count"`
		Watermark int64 `json:"watermark"`
		Started   bool  `json:"started"`
		Degraded  bool  `json:"degraded"`
	}
	for _, path := range []string{"/instances", "/topk?k=5"} {
		resp := getJSON(t, client, front.URL+path, &q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s on a fresh cluster: %d", path, resp.StatusCode)
		}
		if q.Started || q.Degraded || q.Count != 0 || q.Watermark != 0 {
			t.Fatalf("%s on a fresh cluster = %+v, want started=false degraded=false", path, q)
		}
	}

	if resp, body := postJSON(t, client, front.URL+"/ingest", map[string]interface{}{
		"events": []map[string]interface{}{{"from": 0, "to": 1, "t": 0, "f": 1}},
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d: %s", resp.StatusCode, body)
	} else {
		var ack struct {
			Pipelined bool  `json:"pipelined"`
			Seq       int64 `json:"seq"`
		}
		if err := json.Unmarshal(body, &ack); err != nil {
			t.Fatal(err)
		}
		if !ack.Pipelined || ack.Seq != 1 {
			t.Fatalf("coordinator ingest ack = %s, want pipelined seq 1", body)
		}
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	// Watermark 0 again (the single event is at t=0) — but started=true
	// now distinguishes it from the fresh-cluster answer above.
	resp := getJSON(t, client, front.URL+"/instances", &q)
	if resp.StatusCode != http.StatusOK || !q.Started || q.Watermark != 0 {
		t.Fatalf("started stream at watermark 0: %d %+v", resp.StatusCode, q)
	}

	// Kill the only member. An idle down member is only discovered when a
	// delivery hits it, so queue one more batch; the drain then reaps it,
	// the subscription is unplaced, and the gather has nobody to ask —
	// 503, not an empty 200.
	m0.SetDown(true)
	if resp, body := postJSON(t, client, front.URL+"/ingest", map[string]interface{}{
		"events": []map[string]interface{}{{"from": 0, "to": 1, "t": 50, "f": 1}},
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("pipelined ingest with the member down should still ack: %d: %s", resp.StatusCode, body)
	}
	if err := c.Drain(); !errors.Is(err, cluster.ErrNoMembers) {
		t.Fatalf("drain with the only member down: %v, want ErrNoMembers", err)
	}
	var e struct {
		Error string `json:"error"`
	}
	resp = getJSON(t, client, front.URL+"/instances", &e)
	if resp.StatusCode != http.StatusServiceUnavailable || e.Error == "" {
		t.Fatalf("gather with no members: %d %q, want 503 with a JSON error", resp.StatusCode, e.Error)
	}
	var hz struct {
		Status   string `json:"status"`
		Unplaced int    `json:"unplaced"`
	}
	getJSON(t, client, front.URL+"/healthz", &hz)
	if hz.Status != "degraded" || hz.Unplaced != 1 {
		t.Fatalf("healthz = %+v, want degraded with 1 unplaced", hz)
	}
	// /metrics exposes the replication-pipeline gauges.
	var metrics map[string]interface{}
	getJSON(t, client, front.URL+"/metrics", &metrics)
	for _, k := range []string{"cluster.head_seq", "cluster.log_entries", "cluster.backpressure_waits", "cluster.degraded"} {
		if _, ok := metrics[k]; !ok {
			t.Errorf("/metrics missing %s: %v", k, keysOf(metrics))
		}
	}
}

// TestServerClusterPipelineStress interleaves pipelined coordinator
// ingest with member snapshots, flushes, and membership churn on a mixed
// transport set (a durable HTTP member daemon + local members), under
// -race in CI. It pins the serving layer's lock ordering (snapshot
// capture vs replicated /ingest vs handoffs) rather than instance-set
// equivalence (which TestClusterPipelineStress covers).
func TestServerClusterPipelineStress(t *testing.T) {
	durable, err := New(Config{Member: true, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(durable.Handler())
	defer ts.Close()
	httpMember := cluster.NewHTTPMember("h0", ts.URL, ts.Client())

	l0, err := cluster.NewLocalMember("l0", cluster.LocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(cluster.Config{
		Members: []cluster.Member{httpMember, l0},
		Subs: []stream.Subscription{
			{ID: "edge", Motif: motif.MustPath(0, 1), Delta: 5},
			{ID: "chain", Motif: motif.MustPath(0, 1, 2), Delta: 5},
		},
		RetryDelay: time.Millisecond,
		MaxPending: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup

	// Snapshot churn on the durable member while replicated /ingest and
	// handoffs hit it — the snapMu/ingestMu ordering under real load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := durable.Snapshot(); err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Flush churn through the coordinator.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := c.Flush(); err != nil && !errors.Is(err, cluster.ErrNoMembers) {
				t.Errorf("flush: %v", err)
				return
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()

	// Membership churn on the local side (the HTTP member stays).
	wg.Add(1)
	go func() {
		defer wg.Done()
		cur := "l0"
		for i := 1; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			id := "l" + string(rune('0'+i%8))
			if id == cur {
				continue
			}
			nm, err := cluster.NewLocalMember(id, cluster.LocalOptions{})
			if err != nil {
				t.Errorf("new member: %v", err)
				return
			}
			if err := c.AddMember(nm); err != nil {
				t.Errorf("add %s: %v", id, err)
				return
			}
			if err := c.RemoveMember(cur); err != nil {
				t.Errorf("remove %s: %v", cur, err)
				return
			}
			cur = id
			time.Sleep(2 * time.Millisecond)
		}
	}()

	rng := rand.New(rand.NewSource(7))
	base := int64(100)
	for i := 0; i < 120; i++ {
		batch := []temporal.Event{
			{From: 0, To: 1, T: base, F: 1 + rng.Float64()},
			{From: 1, To: 2, T: base + 2, F: 1 + rng.Float64()},
		}
		if _, err := c.Ingest(batch); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
		base += 100
		if i%4 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	close(done)
	wg.Wait()
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Events != 240 {
		t.Fatalf("coordinator Events = %d, want 240", st.Events)
	}
	for _, m := range st.Members {
		// Churned-in members received the pre-join stream via handoff
		// splice (not counted as ingested), so the invariant is watermark
		// equality, not event counts.
		if !m.Started || m.Watermark != st.Watermark {
			t.Fatalf("member %s at watermark %d (started=%v), cluster at %d",
				m.ID, m.Watermark, m.Started, st.Watermark)
		}
	}
	// The never-churned durable HTTP member saw every replicated batch:
	// its engine and WAL hold the full stream.
	if seq := durable.st.Seq(); seq != 240 {
		t.Fatalf("durable member WAL holds %d events, want 240", seq)
	}
	t.Logf("server stress: %d moves, %d downs", st.Moves, st.Downs)
}
