package server

import (
	"errors"
	"log/slog"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"flowmotif/internal/cluster"
	"flowmotif/internal/obs"
	"flowmotif/internal/stream"
	"flowmotif/internal/temporal"
)

// Coordinator serves a cluster coordinator (internal/cluster) over the
// flowmotifd HTTP/JSON API: the data-plane endpoints match a single
// server's (POST /ingest, /flush; GET /instances, /topk, /subs, /stats,
// /metrics, /healthz), so clients need not know whether they talk to one
// engine or a cluster, plus membership administration. POST /ingest acks
// are pipelined ("pipelined": true with the replication-log "seq"): the
// batch is durable in the coordinator's replication log and applied by
// the shards asynchronously, so "detections" is 0 — watch /stats or the
// per-shard replication_lag_* gauges on /metrics instead. Query responses
// carry "started" (false until any shard has seen an event — an empty
// answer from a fresh cluster is not the same as an empty stream) and
// "degraded" (shards dropped from the gather, subscriptions unplaced, or
// a member awaiting failover). Membership administration —
//
//	POST /members/add     {"id": "m4", "url": "http://10.0.0.7:8089"}
//	                      register a member daemon and rebalance onto it.
//	POST /members/remove  {"id": "m4"}: drain a member gracefully.
//	POST /members/fail    {"id": "m4"}: mark a member down now and
//	                      re-place its subscriptions from history.
//
// cmd/flowmotifd serves one with -cluster-coordinator.
type Coordinator struct {
	c       *cluster.Coordinator
	maxBody int64
	started time.Time
	reqs    atomic.Int64
	runtime *obs.RuntimeStats
	ro      requestObs
	// query latency accounting for GET /metrics, keyed by endpoint.
	eps map[string]*endpointMetrics
}

// CoordinatorConfig parameterizes the HTTP serving wrapper around a
// cluster coordinator. The metrics registry and trace flight recorder
// come from the coordinator itself (cluster.Config), not from here.
type CoordinatorConfig struct {
	// MaxBodyBytes bounds POST bodies (<= 0: 32 MiB default).
	MaxBodyBytes int64
	// Logger receives slow-request warnings; nil disables them.
	Logger *slog.Logger
	// SlowRequest tail-samples slow HTTP requests: a request slower than
	// this retains its trace in the flight recorder and logs a warning
	// carrying the trace ID (0: off).
	SlowRequest time.Duration
}

// NewCoordinator wraps a cluster coordinator for HTTP serving.
// maxBodyBytes bounds POST bodies (<= 0: 32 MiB default).
func NewCoordinator(c *cluster.Coordinator, maxBodyBytes int64) *Coordinator {
	return NewCoordinatorWith(c, CoordinatorConfig{MaxBodyBytes: maxBodyBytes})
}

// NewCoordinatorWith is NewCoordinator with the full serving config
// (slow-request tail sampling and its logger).
func NewCoordinatorWith(c *cluster.Coordinator, cfg CoordinatorConfig) *Coordinator {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	cs := &Coordinator{
		c:       c,
		maxBody: cfg.MaxBodyBytes,
		started: time.Now(),
		ro:      requestObs{reg: c.Obs(), tracer: c.Tracer(), slow: cfg.SlowRequest, logger: cfg.Logger},
		eps:     map[string]*endpointMetrics{},
	}
	if c.Obs() != nil {
		cs.runtime = obs.NewRuntimeStats()
	}
	return cs
}

// Cluster returns the wrapped coordinator.
func (cs *Coordinator) Cluster() *cluster.Coordinator { return cs.c }

// Handler returns the HTTP API handler.
func (cs *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", cs.count("ingest", cs.handleIngest))
	mux.HandleFunc("/flush", cs.count("flush", cs.handleFlush))
	mux.HandleFunc("/instances", cs.count("instances", cs.handleInstances))
	mux.HandleFunc("/topk", cs.count("topk", cs.handleTopK))
	mux.HandleFunc("/subs", cs.count("subs", cs.handleSubs))
	mux.HandleFunc("/stats", cs.count("stats", cs.handleStats))
	mux.HandleFunc("/metrics", cs.count("metrics", cs.handleMetrics))
	mux.HandleFunc("/healthz", cs.count("healthz", cs.handleHealthz))
	mux.HandleFunc("/debug/traces", cs.count("debug.traces", cs.handleTraces))
	mux.HandleFunc("/debug/top", cs.count("debug.top", cs.handleTop))
	mux.HandleFunc("/members/add", cs.count("members.add", cs.handleMemberAdd))
	mux.HandleFunc("/members/remove", cs.count("members.remove", cs.handleMemberRemove))
	mux.HandleFunc("/members/fail", cs.count("members.fail", cs.handleMemberFail))
	return mux
}

func (cs *Coordinator) count(name string, h http.HandlerFunc) http.HandlerFunc {
	m := &endpointMetrics{}
	cs.eps[name] = m
	// Request histograms land in the cluster coordinator's registry, next
	// to the replication-pipeline instruments.
	return cs.ro.wrap(&cs.reqs, m, name, h)
}

// handleTraces serves GET /debug/traces. The per-trace fetch goes through
// the cluster coordinator's stitcher, so one batch's tree spans the
// coordinator append, every member's replication delivery, and the
// member-side finalize/emit stages.
func (cs *Coordinator) handleTraces(w http.ResponseWriter, r *http.Request) {
	serveTraces(w, r, cs.c.Tracer(), cs.c.Traces)
}

// writeClusterErr maps coordinator errors onto the API's status codes.
func writeClusterErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, stream.ErrBehindFrontier):
		writeErr(w, http.StatusConflict, err)
	case errors.Is(err, cluster.ErrUnknownSub):
		writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, cluster.ErrNoMembers), errors.Is(err, cluster.ErrMemberDown):
		writeErr(w, http.StatusServiceUnavailable, err)
	default:
		writeErr(w, http.StatusBadRequest, err)
	}
}

func (cs *Coordinator) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req ingestRequest
	if !decodeBody(w, r, cs.maxBody, &req) {
		return
	}
	evs := make([]temporal.Event, len(req.Events))
	for i, e := range req.Events {
		evs[i] = temporal.Event{From: e.From, To: e.To, T: e.T, F: e.F}
	}
	ack, err := cs.c.IngestTraced(evs, requestSpan(r).Context())
	if err != nil {
		writeClusterErr(w, err)
		return
	}
	// Pipelined ack: the batch is appended to the replication log and
	// will be applied by every shard asynchronously; seq is its log
	// position and detections finalize later (GET /stats, /metrics).
	// trace keys the batch's stitched span tree in GET /debug/traces once
	// the shards apply it.
	writeJSON(w, http.StatusOK, ingestResponse{
		Ingested:   ack.Ingested,
		Watermark:  ack.Watermark,
		Detections: ack.Detections,
		Seq:        ack.Seq,
		Pipelined:  true,
		Trace:      ack.Trace,
	})
}

func (cs *Coordinator) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	ack, err := cs.c.Flush()
	if err != nil {
		writeClusterErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{
		Watermark:  ack.Watermark,
		Detections: ack.Detections,
	})
}

func (cs *Coordinator) handleInstances(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	limit, err := intParam(r, "limit", 50)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ds, g, err := cs.c.InstancesTraced(r.URL.Query().Get("sub"), limit, requestSpan(r).Context())
	if err != nil {
		writeClusterErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"count":     len(ds),
		"watermark": g.Watermark,
		"started":   g.Started,
		"degraded":  g.Degraded,
		"instances": ds,
	})
}

func (cs *Coordinator) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	k, err := intParam(r, "k", 10)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sub := r.URL.Query().Get("sub")
	ds, g, err := cs.c.TopKTraced(sub, k, requestSpan(r).Context())
	if err != nil {
		writeClusterErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"sub":       sub,
		"count":     len(ds),
		"watermark": g.Watermark,
		"started":   g.Started,
		"degraded":  g.Degraded,
		"instances": ds,
	})
}

func (cs *Coordinator) handleSubs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	specs := cs.c.Subscriptions()
	placement := cs.c.Placement()
	type wireSub struct {
		ID     string  `json:"id"`
		Motif  string  `json:"motif"`
		Path   string  `json:"path"`
		Delta  int64   `json:"delta"`
		Phi    float64 `json:"phi"`
		Member string  `json:"member,omitempty"`
	}
	ids := make([]string, 0, len(specs))
	for id := range specs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]wireSub, 0, len(ids))
	for _, id := range ids {
		sp := specs[id]
		out = append(out, wireSub{
			ID:     sp.ID,
			Motif:  sp.Name,
			Path:   sp.Motif,
			Delta:  sp.Delta,
			Phi:    sp.Phi,
			Member: placement[id],
		})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"subs": out})
}

func (cs *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"cluster":       cs.c.StatsTraced(requestSpan(r).Context()),
		"uptimeSeconds": time.Since(cs.started).Seconds(),
		"httpRequests":  cs.reqs.Load(),
	})
}

// handleMetrics serves metrics: by default flat expvar-style (per-shard
// watermark lag and event counts plus per-endpoint request counts and
// latencies); ?format=prometheus switches to the text exposition format,
// with the replication-pipeline histograms and every member's engine/store
// histograms bucket-merged into cluster-wide distributions (member gauges
// stay distinguishable under a member="id" label).
func (cs *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	if r.URL.Query().Get("format") == "prometheus" {
		writePrometheusResponse(w, cs.prometheusSnapshots())
		return
	}
	st := cs.c.Stats()
	out := map[string]interface{}{
		"cluster.watermark":          st.Watermark,
		"cluster.started":            st.Started,
		"cluster.members":            len(st.Members),
		"cluster.subscriptions":      st.Subscriptions,
		"cluster.placement_groups":   st.PlacementGroups,
		"cluster.batches":            st.Batches,
		"cluster.events":             st.Events,
		"cluster.history":            st.HistoryEvents,
		"cluster.downs":              st.Downs,
		"cluster.moves":              st.Moves,
		"cluster.head_seq":           st.HeadSeq,
		"cluster.log_entries":        st.LogEntries,
		"cluster.log_events":         st.LogEvents,
		"cluster.backpressure_waits": st.Backpressure,
		"cluster.degraded":           st.Degraded,
		"http.requests":              cs.reqs.Load(),
		"uptime_seconds":             time.Since(cs.started).Seconds(),
	}
	for _, m := range st.Members {
		p := "shard." + m.ID + "."
		out[p+"watermark_lag"] = m.Lag
		out[p+"watermark"] = m.Watermark
		out[p+"events"] = m.Events
		out[p+"retained"] = m.Retained
		out[p+"detections"] = m.Detections
		out[p+"subscriptions"] = len(m.Subs)
		out[p+"acked_seq"] = m.AckedSeq
		out[p+"replication_lag_entries"] = m.ReplLagEntries
		out[p+"replication_lag_events"] = m.ReplLagEvents
		out[p+"failing"] = m.Failing
		out[p+"plan_groups"] = m.PlanGroups
		out[p+"snapshot_builds"] = m.SnapshotBuilds
		out[p+"snapshot_reuse_ratio"] = m.SnapshotReuse
		out[p+"matches_shared"] = m.MatchesShared
	}
	flatEndpointMetrics(out, cs.eps, cs.c.Obs())
	writeJSON(w, http.StatusOK, out)
}

// prometheusSnapshots assembles the coordinator's exposition set: its own
// registry (replication + request histograms), every member's metric
// snapshot merged in (histograms bucket-merged, gauges labeled by member),
// and the cluster-level gauges from Stats.
func (cs *Coordinator) prometheusSnapshots() []obs.MetricSnapshot {
	st := cs.c.Stats()
	acc := obs.NewAccum()
	acc.Add(cs.c.Obs().Snapshot())
	if cs.runtime != nil {
		acc.Add(cs.runtime.Collect())
	}
	for _, m := range st.Members {
		acc.Add(m.Metrics, obs.L("member", m.ID))
	}
	snaps := acc.Snapshots()
	snaps = append(snaps,
		gaugeSnap("flowmotif_cluster_watermark", "Cluster stream watermark (event time).", float64(st.Watermark)),
		gaugeSnap("flowmotif_cluster_members", "Live cluster members.", float64(len(st.Members))),
		gaugeSnap("flowmotif_cluster_subscriptions", "Subscriptions placed across the cluster.", float64(st.Subscriptions)),
		counterSnap("flowmotif_cluster_events_total", "Events appended to the replication log.", float64(st.Events)),
		counterSnap("flowmotif_cluster_downs_total", "Member failovers performed.", float64(st.Downs)),
		gaugeSnap("flowmotif_cluster_log_entries", "Replication-log entries awaiting at least one member.", float64(st.LogEntries)),
		counterSnap("flowmotif_cluster_backpressure_waits_total", "Ingest calls that blocked on a full member queue.", float64(st.Backpressure)),
		gaugeSnap("flowmotif_cluster_degraded", "1 when query answers may be incomplete.", boolGauge(st.Degraded)),
		counterSnap("flowmotif_http_requests_total", "HTTP requests served.", float64(cs.reqs.Load())),
		gaugeSnap("flowmotif_uptime_seconds", "Seconds since the coordinator started.", time.Since(cs.started).Seconds()),
	)
	for _, m := range st.Members {
		lbl := obs.L("member", m.ID)
		snaps = append(snaps,
			gaugeSnap("flowmotif_cluster_member_watermark_lag", "Cluster watermark minus member watermark (-1: stats probe failed).", float64(m.Lag), lbl),
			gaugeSnap("flowmotif_cluster_member_repl_lag_entries", "Replication-log entries the member has not acked yet.", float64(m.ReplLagEntries), lbl),
			gaugeSnap("flowmotif_cluster_member_failing", "1 when the member awaits failover reap.", boolGauge(m.Failing), lbl),
		)
	}
	return snaps
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (cs *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	st := cs.c.Stats()
	status := "ok"
	if st.Degraded || len(st.Members) == 0 {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":     status,
		"role":       "coordinator",
		"members":    len(st.Members),
		"unplaced":   len(st.Unplaced),
		"watermark":  st.Watermark,
		"started":    st.Started,
		"downs":      st.Downs,
		"headSeq":    st.HeadSeq,
		"logEntries": st.LogEntries,
	})
}

func (cs *Coordinator) handleMemberAdd(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}
	if !decodeBody(w, r, cs.maxBody, &req) {
		return
	}
	if req.ID == "" || req.URL == "" {
		writeErr(w, http.StatusBadRequest, errors.New("id and url required"))
		return
	}
	if err := cs.c.AddMember(cluster.NewHTTPMember(req.ID, req.URL, nil)); err != nil {
		writeClusterErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"ok": true, "id": req.ID})
}

func (cs *Coordinator) handleMemberRemove(w http.ResponseWriter, r *http.Request) {
	cs.memberOp(w, r, cs.c.RemoveMember)
}

func (cs *Coordinator) handleMemberFail(w http.ResponseWriter, r *http.Request) {
	cs.memberOp(w, r, cs.c.FailMember)
}

func (cs *Coordinator) memberOp(w http.ResponseWriter, r *http.Request, op func(string) error) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req struct {
		ID string `json:"id"`
	}
	if !decodeBody(w, r, cs.maxBody, &req) {
		return
	}
	if req.ID == "" {
		writeErr(w, http.StatusBadRequest, errors.New("id required"))
		return
	}
	if err := op(req.ID); err != nil {
		writeClusterErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"ok": true, "id": req.ID})
}
