// Package gen synthesizes interaction networks that stand in for the three
// real datasets of the paper's evaluation (§6.1): the Bitcoin user graph,
// the Facebook interaction network, and the NYC yellow-taxi passenger-flow
// network. The real traces are not redistributable (and the taxi/Facebook
// pipelines require external data services), so each generator reproduces
// the *statistical character* the algorithms are sensitive to — degree
// skew, multi-edge density, flow magnitudes, temporal burstiness and, most
// importantly, genuine flow propagation (a node forwarding recently
// received flow), which is what makes flow motifs significant versus
// flow-permuted null models (Figure 14). See DESIGN.md §4 for the full
// substitution rationale.
//
// All generators are deterministic given their Seed.
package gen

import (
	"math"
	"math/rand"

	"flowmotif/internal/temporal"
)

// newRand returns the deterministic generator used by all generators.
func newRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// pareto samples a Pareto(xm, alpha) heavy-tailed value.
func pareto(rng *rand.Rand, xm, alpha float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// expDelay samples an exponential delay with the given mean, >= 1.
func expDelay(rng *rand.Rand, mean float64) int64 {
	d := rng.ExpFloat64() * mean
	if d < 1 {
		d = 1
	}
	return int64(d)
}

// zipfPicker picks node ids with a Zipf popularity profile.
type zipfPicker struct {
	z    *rand.Zipf
	perm []int32 // random identity so popular ids are scattered
}

func newZipfPicker(rng *rand.Rand, n int, s float64) *zipfPicker {
	perm := make([]int32, n)
	for i, p := range rng.Perm(n) {
		perm[i] = int32(p)
	}
	return &zipfPicker{
		z:    rand.NewZipf(rng, s, 1, uint64(n-1)),
		perm: perm,
	}
}

func (p *zipfPicker) pick() temporal.NodeID {
	return temporal.NodeID(p.perm[p.z.Uint64()])
}

// pickOther draws a node different from avoid.
func (p *zipfPicker) pickOther(avoid temporal.NodeID) temporal.NodeID {
	for i := 0; i < 64; i++ {
		if v := p.pick(); v != avoid {
			return v
		}
	}
	// Degenerate fallback (n >= 2 guaranteed by config validation).
	if avoid == 0 {
		return 1
	}
	return 0
}
