package gen

import (
	"testing"

	"flowmotif/internal/temporal"
)

func buildGraph(t *testing.T, evs []temporal.Event, err error) *temporal.Graph {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	g, err := temporal.NewGraph(evs)
	if err != nil {
		t.Fatalf("generated events rejected by graph builder: %v", err)
	}
	return g
}

func TestBitcoinDeterministicAndValid(t *testing.T) {
	cfg := BitcoinConfig{Nodes: 500, SeedTxns: 2000, Duration: 7 * 24 * 3600, Seed: 1}
	a, err := Bitcoin(cfg)
	g := buildGraph(t, a, err)
	b, err := Bitcoin(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at event %d: %v vs %v", i, a[i], b[i])
		}
	}
	c, err := Bitcoin(BitcoinConfig{Nodes: 500, SeedTxns: 2000, Duration: 7 * 24 * 3600, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(c)
	if same {
		identical := true
		for i := range a {
			if a[i] != c[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical datasets")
		}
	}
	// Shape checks.
	if g.NumEvents() < cfg.SeedTxns {
		t.Errorf("events %d < seed txns %d (cascades missing?)", g.NumEvents(), cfg.SeedTxns)
	}
	st := g.Stats()
	if st.Nodes > cfg.Nodes {
		t.Errorf("node universe exceeded: %d > %d", st.Nodes, cfg.Nodes)
	}
	if st.AvgFlow < 1.5 || st.AvgFlow > 20 {
		t.Errorf("avg flow %v outside bitcoin-like range", st.AvgFlow)
	}
	minT, maxT := g.TimeSpan()
	if minT < 0 || maxT >= cfg.Duration {
		t.Errorf("time span [%d,%d] outside [0,%d)", minT, maxT, cfg.Duration)
	}
}

func TestBitcoinCascadesCreateCorrelatedForwarding(t *testing.T) {
	evs, err := Bitcoin(BitcoinConfig{Nodes: 300, SeedTxns: 3000, Duration: 30 * 24 * 3600, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Count events that forward flow received shortly before (within the
	// cascade delay scale): these are what make flow motifs significant.
	recentIn := map[temporal.NodeID]int64{}
	forwards := 0
	for _, e := range evs {
		if tin, ok := recentIn[e.From]; ok && e.T-tin < 3600 && e.T > tin {
			forwards++
		}
		recentIn[e.To] = e.T
	}
	if forwards < len(evs)/20 {
		t.Errorf("only %d/%d events look like forwards; cascades too weak", forwards, len(evs))
	}
}

func TestFacebookBucketsAndFlows(t *testing.T) {
	cfg := FacebookConfig{Nodes: 400, Bursts: 1500, Cascades: 800, Duration: 30 * 24 * 3600, Seed: 4}
	evs, err := Facebook(cfg)
	g := buildGraph(t, evs, err)
	for i, e := range evs {
		if e.T%30 != 0 {
			t.Fatalf("event %d timestamp %d not bucket-aligned", i, e.T)
		}
		if e.F != float64(int64(e.F)) || e.F < 1 {
			t.Fatalf("event %d flow %v not a positive integer", i, e.F)
		}
	}
	st := g.Stats()
	if st.AvgFlow < 1 || st.AvgFlow > 6 {
		t.Errorf("avg flow %v outside facebook-like range", st.AvgFlow)
	}
	// Multi-edge heavy: several events per connected pair on average.
	if st.AvgSeriesLen < 1.2 {
		t.Errorf("avg series length %v too low for facebook-like data", st.AvgSeriesLen)
	}
	// Ties must exist (30-second bucketing).
	ties := false
	for a := 0; a < g.NumArcs() && !ties; a++ {
		s := g.Series(a)
		for i := 1; i < len(s); i++ {
			if s[i].T == s[i-1].T {
				ties = true
				break
			}
		}
	}
	if !ties {
		t.Log("no tied timestamps found (unusual but not fatal at this size)")
	}
}

func TestPassengerShape(t *testing.T) {
	cfg := PassengerConfig{Zones: 100, Trips: 8000, Days: 7, Seed: 5}
	evs, err := Passenger(cfg)
	g := buildGraph(t, evs, err)
	st := g.Stats()
	if st.Nodes > cfg.Zones {
		t.Errorf("zones exceeded: %d > %d", st.Nodes, cfg.Zones)
	}
	if st.AvgFlow < 1.2 || st.AvgFlow > 3 {
		t.Errorf("avg passengers %v outside taxi-like range (paper: 1.93)", st.AvgFlow)
	}
	for i, e := range evs {
		if e.F < 1 || e.F > 6 {
			t.Fatalf("event %d passengers %v outside [1,6]", i, e.F)
		}
		if e.T < 0 || e.T >= int64(cfg.Days)*86400 {
			t.Fatalf("event %d time %d outside horizon", i, e.T)
		}
	}
	// Transfers create more events than seed trips.
	if len(evs) <= cfg.Trips {
		t.Errorf("no transfer chains: %d events for %d trips", len(evs), cfg.Trips)
	}
	// Diurnal profile: rush hours busier than night hours.
	var byHour [24]int
	for _, e := range evs {
		byHour[(e.T%86400)/3600]++
	}
	if byHour[8] <= byHour[3] {
		t.Errorf("hour 8 (%d) not busier than hour 3 (%d)", byHour[8], byHour[3])
	}
}

func TestGeneratorConfigValidation(t *testing.T) {
	if _, err := Bitcoin(BitcoinConfig{Nodes: 1, SeedTxns: 1, Duration: 1}); err == nil {
		t.Error("Bitcoin accepted 1 node")
	}
	if _, err := Facebook(FacebookConfig{Nodes: 1, Duration: 1}); err == nil {
		t.Error("Facebook accepted 1 node")
	}
	if _, err := Passenger(PassengerConfig{Zones: 1, Trips: 1, Days: 1}); err == nil {
		t.Error("Passenger accepted 1 zone")
	}
}

func TestDefaultsApplied(t *testing.T) {
	if c := (BitcoinConfig{}).withDefaults(); c.Nodes == 0 || c.ForwardProb == 0 {
		t.Error("bitcoin defaults missing")
	}
	if c := (FacebookConfig{}).withDefaults(); c.Bucket != 30 {
		t.Errorf("facebook default bucket = %d, want 30", c.Bucket)
	}
	if c := (PassengerConfig{}).withDefaults(); c.Zones != 289 {
		t.Errorf("passenger default zones = %d, want 289 (paper)", c.Zones)
	}
}
