package gen

import (
	"errors"

	"flowmotif/internal/temporal"
)

// BitcoinConfig parameterizes the bitcoin-like transaction network: a
// sparse multigraph with heavy-tailed degrees and amounts in which
// recipients forward a large fraction of freshly received coins within
// minutes — the cascade mechanism that produces genuine chain and cycle
// flow motifs (the paper's money-laundering motivation, §1).
type BitcoinConfig struct {
	Nodes       int     // users (paper: 24.6M; scale down for laptops)
	SeedTxns    int     // root transactions that start cascades
	Duration    int64   // covered time span in seconds
	ForwardProb float64 // probability a recipient forwards onward
	CycleProb   float64 // probability a forward returns to an earlier hop
	MaxHops     int     // cascade depth bound
	MeanDelay   float64 // mean seconds between receipt and forward
	FlowMin     float64 // minimum transaction amount
	FlowAlpha   float64 // Pareto tail exponent of amounts
	Partners    int     // mean habitual counterparties per user (bounds out-degree)
	Seed        int64
}

// withDefaults fills zero fields with values calibrated so that the
// resulting network mirrors the paper's Table-3 character (avg flow ≈ 4.8,
// rare parallel edges) at the configured scale.
func (c BitcoinConfig) withDefaults() BitcoinConfig {
	if c.Nodes == 0 {
		c.Nodes = 20000
	}
	if c.SeedTxns == 0 {
		c.SeedTxns = 60000
	}
	if c.Duration == 0 {
		c.Duration = 90 * 24 * 3600
	}
	if c.ForwardProb == 0 {
		c.ForwardProb = 0.6
	}
	if c.CycleProb == 0 {
		c.CycleProb = 0.18
	}
	if c.MaxHops == 0 {
		c.MaxHops = 5
	}
	if c.MeanDelay == 0 {
		c.MeanDelay = 150
	}
	if c.FlowMin == 0 {
		c.FlowMin = 3
	}
	if c.FlowAlpha == 0 {
		c.FlowAlpha = 2.2
	}
	if c.Partners == 0 {
		c.Partners = 4
	}
	return c
}

// Bitcoin generates the event list of a bitcoin-like user network.
func Bitcoin(cfg BitcoinConfig) ([]temporal.Event, error) {
	c := cfg.withDefaults()
	if c.Nodes < 2 || c.SeedTxns < 1 || c.Duration < 1 {
		return nil, errors.New("gen: BitcoinConfig needs Nodes >= 2, SeedTxns >= 1, Duration >= 1")
	}
	rng := newRand(c.Seed)
	picker := newZipfPicker(rng, c.Nodes, 1.25)
	evs := make([]temporal.Event, 0, c.SeedTxns*2)
	chain := make([]temporal.NodeID, 0, c.MaxHops+2)

	// Hard out-degree cap: a user sends to at most outCap distinct
	// counterparties; further sends are routed to an existing one. Keeps
	// hub-compounded path counts (structural matches of long motifs)
	// within laptop scale without changing the flow dynamics.
	outCap := 2*c.Partners + 2
	outSets := make([][]temporal.NodeID, c.Nodes)
	route := func(from, want temporal.NodeID) temporal.NodeID {
		os := outSets[from]
		for _, v := range os {
			if v == want {
				return want
			}
		}
		if len(os) < outCap {
			outSets[from] = append(os, want)
			return want
		}
		return os[rng.Intn(len(os))]
	}

	// Users transact with a small set of habitual counterparties (sampled
	// once, popularity-biased). This matches real transaction graphs and
	// bounds per-node out-degree, keeping the structural search space of
	// long path motifs realistic.
	partners := make([][]temporal.NodeID, c.Nodes)
	partnerOf := func(u temporal.NodeID) temporal.NodeID {
		ps := partners[u]
		if ps == nil {
			k := 1 + rng.Intn(2*c.Partners)
			ps = make([]temporal.NodeID, 0, k)
			for len(ps) < k {
				v := picker.pickOther(u)
				dup := false
				for _, p := range ps {
					if p == v {
						dup = true
						break
					}
				}
				if !dup {
					ps = append(ps, v)
				}
			}
			partners[u] = ps
		}
		return ps[rng.Intn(len(ps))]
	}

	for i := 0; i < c.SeedTxns; i++ {
		from := temporal.NodeID(rng.Intn(c.Nodes))
		to := route(from, partnerOf(from))
		if to == from {
			to = route(from, picker.pickOther(from))
			if to == from {
				continue
			}
		}
		t := rng.Int63n(c.Duration)
		f := pareto(rng, c.FlowMin, c.FlowAlpha)
		evs = append(evs, temporal.Event{From: from, To: to, T: t, F: f})

		// Cascade: the recipient forwards most of what it just received,
		// occasionally closing a cycle back to an earlier hop.
		chain = chain[:0]
		chain = append(chain, from, to)
		cur := to
		for hop := 0; hop < c.MaxHops && rng.Float64() < c.ForwardProb; hop++ {
			t += expDelay(rng, c.MeanDelay)
			if t >= c.Duration {
				break
			}
			var nxt temporal.NodeID
			if rng.Float64() < c.CycleProb {
				nxt = chain[rng.Intn(len(chain)-1)] // an earlier hop: closes a cycle
				if nxt == cur {
					nxt = chain[0]
				}
			} else {
				nxt = partnerOf(cur)
			}
			nxt = route(cur, nxt)
			if nxt == cur {
				break
			}
			f *= 0.6 + 0.35*rng.Float64() // keep 60–95% (fees/change)
			if f < 0.01 {
				break
			}
			evs = append(evs, temporal.Event{From: cur, To: nxt, T: t, F: f})
			chain = append(chain, nxt)
			cur = nxt
		}
	}
	return evs, nil
}
