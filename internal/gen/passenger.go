package gen

import (
	"errors"
	"math"

	"flowmotif/internal/temporal"
)

// PassengerConfig parameterizes the passenger-flow network: taxi zones on a
// grid with a gravity origin-destination model, rush-hour arrival rates,
// and transfer chains (a traveller arriving at B continues to C shortly
// after), which makes chain motifs dominate over cycles within short
// windows — the paper's observation on the NYC taxi data.
type PassengerConfig struct {
	Zones        int     // taxi zones (paper: 289)
	Trips        int     // seed trips
	Days         int     // covered days
	TransferProb float64 // probability a trip continues from its destination
	ReturnProb   float64 // probability a transfer returns to the trip origin
	Support      int     // mean destination zones per origin (bounds out-degree)
	Seed         int64
}

func (c PassengerConfig) withDefaults() PassengerConfig {
	if c.Zones == 0 {
		c.Zones = 289
	}
	if c.Trips == 0 {
		c.Trips = 120000
	}
	if c.Days == 0 {
		c.Days = 31
	}
	if c.TransferProb == 0 {
		c.TransferProb = 0.35
	}
	if c.ReturnProb == 0 {
		c.ReturnProb = 0.06
	}
	if c.Support == 0 {
		c.Support = 5
	}
	return c
}

// hourRate is the diurnal arrival-rate profile (rush hours at 8 and 18).
var hourRate = [24]float64{
	0.2, 0.1, 0.1, 0.1, 0.2, 0.5, 1.0, 1.8, 2.2, 1.6, 1.2, 1.2,
	1.3, 1.2, 1.2, 1.4, 1.8, 2.2, 2.4, 1.8, 1.4, 1.0, 0.7, 0.4,
}

// Passenger generates the event list of a passenger-flow network. Flows are
// passenger counts (1–6, mean ≈ 1.9).
func Passenger(cfg PassengerConfig) ([]temporal.Event, error) {
	c := cfg.withDefaults()
	if c.Zones < 2 || c.Trips < 1 || c.Days < 1 {
		return nil, errors.New("gen: PassengerConfig needs Zones >= 2, Trips >= 1, Days >= 1")
	}
	rng := newRand(c.Seed)
	side := int(math.Ceil(math.Sqrt(float64(c.Zones))))

	// Zone popularity: a few hub zones (downtown, airports) dominate.
	pop := make([]float64, c.Zones)
	for i := range pop {
		pop[i] = pareto(rng, 1, 1.2)
	}
	// Cumulative distribution for origin sampling.
	cum := make([]float64, c.Zones+1)
	for i, p := range pop {
		cum[i+1] = cum[i] + p
	}
	total := cum[c.Zones]
	sampleOrigin := func() int {
		x := rng.Float64() * total
		lo, hi := 0, c.Zones
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	dist := func(a, b int) float64 {
		ax, ay := a%side, a/side
		bx, by := b%side, b/side
		dx, dy := float64(ax-bx), float64(ay-by)
		return math.Sqrt(dx*dx + dy*dy)
	}
	// Gravity destination choice. Each origin serves a small fixed support
	// of destination zones (popular and nearby zones win a gravity
	// tournament); real OD matrices are similarly concentrated, and the
	// bounded out-degree keeps long-path structural matching tractable.
	support := make([][]int32, c.Zones)
	sampleDest := func(o int) int {
		sp := support[o]
		if sp == nil {
			k := 2 + rng.Intn(2*c.Support-2)
			sp = make([]int32, 0, k)
			for attempts := 0; len(sp) < k && attempts < 40*k; attempts++ {
				best, bestW := -1, 0.0
				for i := 0; i < 6; i++ {
					d := sampleOrigin()
					if d == o {
						continue
					}
					w := pop[d] / (1 + dist(o, d)*dist(o, d)) * rng.Float64()
					if w > bestW {
						best, bestW = d, w
					}
				}
				if best < 0 {
					continue
				}
				dup := false
				for _, s := range sp {
					if int(s) == best {
						dup = true
						break
					}
				}
				if !dup {
					sp = append(sp, int32(best))
				}
			}
			if len(sp) == 0 {
				sp = append(sp, int32((o+1)%c.Zones))
			}
			support[o] = sp
		}
		return int(sp[rng.Intn(len(sp))])
	}
	// inSupport reports whether zone want is a served destination of from;
	// return trips outside the OD support are dropped so that per-zone
	// out-degree stays bounded.
	inSupport := func(want, from int) bool {
		_ = sampleDest(from) // ensure the support set exists
		for _, s := range support[from] {
			if int(s) == want {
				return true
			}
		}
		return false
	}
	passengers := func() float64 {
		// Geometric-ish: mean ≈ 1.9, capped at 6.
		n := 1
		for n < 6 && rng.Float64() < 0.45 {
			n++
		}
		return float64(n)
	}
	sampleTime := func() int64 {
		// Rejection-sample an hour by the diurnal profile.
		day := rng.Intn(c.Days)
		for {
			h := rng.Intn(24)
			if rng.Float64()*2.4 < hourRate[h] {
				return int64(day)*86400 + int64(h)*3600 + int64(rng.Intn(3600))
			}
		}
	}

	horizon := int64(c.Days) * 86400
	evs := make([]temporal.Event, 0, c.Trips*3/2)
	for i := 0; i < c.Trips; i++ {
		o := sampleOrigin()
		d := sampleDest(o)
		t := sampleTime()
		party := passengers()
		evs = append(evs, temporal.Event{
			From: temporal.NodeID(o), To: temporal.NodeID(d), T: t, F: party,
		})
		// Transfer chains: the traveller continues (or returns) after the
		// ride plus a short dwell; ride time scales with distance.
		origin := o
		for rng.Float64() < c.TransferProb {
			ride := int64(dist(o, d)*180) + expDelay(rng, 240)
			t += ride
			if t >= horizon {
				break
			}
			var nd int
			if rng.Float64() < c.ReturnProb && origin != d && inSupport(origin, d) {
				nd = origin // round trip: closes a cycle
			} else {
				nd = sampleDest(d)
			}
			if nd == d {
				break
			}
			// The same party continues: passenger flow is conserved along
			// the transfer chain (occasionally someone joins or leaves).
			// This is what makes flow motifs significant versus the
			// flow-permuted null model.
			if r := rng.Float64(); r < 0.15 && party > 1 {
				party--
			} else if r > 0.85 && party < 6 {
				party++
			}
			evs = append(evs, temporal.Event{
				From: temporal.NodeID(d), To: temporal.NodeID(nd), T: t, F: party,
			})
			o, d = d, nd
		}
	}
	return evs, nil
}
