package gen

import (
	"errors"

	"flowmotif/internal/temporal"
)

// FacebookConfig parameterizes the facebook-like interaction network:
// community-structured users whose likes/messages are aggregated into
// 30-second buckets (producing timestamp ties, as in the paper's real
// trace), with two interaction modes — reciprocal conversation bursts and
// reshare cascades that propagate along chains (the paper found chain
// motifs most significant on Facebook).
type FacebookConfig struct {
	Nodes         int   // users (paper: 45,800)
	Bursts        int   // conversation bursts
	Cascades      int   // reshare cascades
	Duration      int64 // covered time span in seconds
	CommunitySize int   // nodes per community
	Friends       int   // mean conversation partners per user (bounds out-degree)
	Bucket        int64 // aggregation bucket in seconds (paper: 30)
	Seed          int64
}

func (c FacebookConfig) withDefaults() FacebookConfig {
	if c.Nodes == 0 {
		c.Nodes = 8000
	}
	if c.Bursts == 0 {
		c.Bursts = 25000
	}
	if c.Cascades == 0 {
		c.Cascades = 15000
	}
	if c.Duration == 0 {
		c.Duration = 180 * 24 * 3600
	}
	if c.CommunitySize == 0 {
		c.CommunitySize = 50
	}
	if c.Friends == 0 {
		c.Friends = 4
	}
	if c.Bucket == 0 {
		c.Bucket = 30
	}
	return c
}

// Facebook generates the event list of a facebook-like interaction network.
// Flows are small integers (interaction counts per bucket, mean ≈ 3).
func Facebook(cfg FacebookConfig) ([]temporal.Event, error) {
	c := cfg.withDefaults()
	if c.Nodes < 2 || c.Duration < 1 || c.Bucket < 1 {
		return nil, errors.New("gen: FacebookConfig needs Nodes >= 2, Duration >= 1, Bucket >= 1")
	}
	if c.CommunitySize < 2 {
		c.CommunitySize = 2
	}
	rng := newRand(c.Seed)
	evs := make([]temporal.Event, 0, c.Bursts*4+c.Cascades*3)

	bucket := func(t int64) int64 { return (t / c.Bucket) * c.Bucket }

	// Users interact with a small, fixed set of friends inside their
	// community (lazily sampled). Real social interaction is concentrated
	// on few strong ties [Xiang et al., WWW'10]; the bounded out-degree
	// also keeps long-path structural matching tractable.
	friends := make([][]temporal.NodeID, c.Nodes)
	friendOf := func(u temporal.NodeID) temporal.NodeID {
		fs := friends[u]
		if fs == nil {
			comm := int(u) / c.CommunitySize
			lo := comm * c.CommunitySize
			hi := lo + c.CommunitySize
			if hi > c.Nodes {
				hi = c.Nodes
			}
			k := 1 + rng.Intn(2*c.Friends)
			if k > hi-lo-1 {
				k = hi - lo - 1
			}
			if k < 1 {
				k = 1
			}
			fs = make([]temporal.NodeID, 0, k)
			for attempts := 0; len(fs) < k && attempts < 20*k; attempts++ {
				v := temporal.NodeID(lo + rng.Intn(hi-lo))
				if v == u {
					continue
				}
				dup := false
				for _, f := range fs {
					if f == v {
						dup = true
						break
					}
				}
				if !dup {
					fs = append(fs, v)
				}
			}
			if len(fs) == 0 {
				fs = append(fs, temporal.NodeID((int(u)+1)%c.Nodes))
			}
			friends[u] = fs
		}
		return fs[rng.Intn(len(fs))]
	}
	inCommunity := friendOf

	// Conversation bursts: u and v exchange messages back and forth within
	// a few minutes; each direction aggregates to per-bucket counts.
	for i := 0; i < c.Bursts; i++ {
		u := temporal.NodeID(rng.Intn(c.Nodes))
		v := inCommunity(u)
		t := rng.Int63n(c.Duration)
		k := 2 + rng.Intn(6)
		for j := 0; j < k; j++ {
			f := float64(1 + rng.Intn(4))
			if j%2 == 0 {
				evs = append(evs, temporal.Event{From: u, To: v, T: bucket(t), F: f})
			} else {
				evs = append(evs, temporal.Event{From: v, To: u, T: bucket(t), F: f})
			}
			t += 30 + int64(rng.Intn(120))
			if t >= c.Duration {
				break
			}
		}
	}

	// Reshare cascades: a post by the root propagates along a chain of
	// community members within minutes; interaction intensity is inherited
	// (what flow permutation destroys), so chains carry correlated flow.
	for i := 0; i < c.Cascades; i++ {
		cur := temporal.NodeID(rng.Intn(c.Nodes))
		t := rng.Int63n(c.Duration)
		f := float64(2 + rng.Intn(5))
		depth := 2 + rng.Intn(3)
		for hop := 0; hop < depth; hop++ {
			nxt := inCommunity(cur)
			if nxt == cur {
				break
			}
			evs = append(evs, temporal.Event{From: cur, To: nxt, T: bucket(t), F: f})
			t += 30 + expDelay(rng, 90)
			if t >= c.Duration {
				break
			}
			// Inherited intensity with small drift, min 1.
			f += float64(rng.Intn(3) - 1)
			if f < 1 {
				f = 1
			}
			cur = nxt
		}
	}
	return evs, nil
}
