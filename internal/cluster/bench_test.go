package cluster

import (
	"fmt"
	"testing"

	"flowmotif/internal/stream"
	"flowmotif/internal/temporal"
)

// benchCluster builds an N-shard cluster over the full catalog and
// pre-ingests the synthetic stream.
func benchCluster(b *testing.B, shards int, preload []temporal.Event) *Coordinator {
	b.Helper()
	members := make([]Member, shards)
	for i := range members {
		m, err := NewLocalMember(fmt.Sprintf("m%d", i), LocalOptions{})
		if err != nil {
			b.Fatal(err)
		}
		members[i] = m
	}
	c, err := New(Config{Members: members, Subs: benchSubs(), HistoryLimit: 1 << 14})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < len(preload); i += 512 {
		end := i + 512
		if end > len(preload) {
			end = len(preload)
		}
		if _, err := c.Ingest(preload[i:end]); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// BenchmarkClusterIngest measures broadcast-ingest throughput (events/sec
// in b.N terms) on a 4-shard cluster over the full catalog.
func BenchmarkClusterIngest(b *testing.B) {
	evs, err := benchStream(BenchConfig{Events: 1 << 17, Seed: 2019}.withDefaults())
	if err != nil {
		b.Fatal(err)
	}
	c := benchCluster(b, 4, nil)
	const batch = 512
	b.ReportAllocs()
	b.ResetTimer()
	i := 0
	shift := int64(0)
	maxT := evs[len(evs)-1].T + 1
	scratch := make([]temporal.Event, batch)
	for n := 0; n < b.N; n += batch {
		if i+batch > len(evs) {
			// Wrap by shifting timestamps forward so the stream contract
			// (non-decreasing time) holds across laps.
			i = 0
			shift += maxT
		}
		copy(scratch, evs[i:i+batch])
		if shift > 0 {
			for j := range scratch {
				scratch[j].T += shift
			}
		}
		if _, err := c.Ingest(scratch); err != nil {
			b.Fatal(err)
		}
		i += batch
	}
	b.StopTimer()
	st := c.Stats()
	b.ReportMetric(float64(st.Events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkScatterGatherTopK measures the global top-k gather (all shards,
// merged) on a warm 4-shard cluster.
func BenchmarkScatterGatherTopK(b *testing.B) {
	evs, err := benchStream(BenchConfig{Events: 1 << 15, Seed: 2019}.withDefaults())
	if err != nil {
		b.Fatal(err)
	}
	c := benchCluster(b, 4, evs)
	b.ReportAllocs()
	b.ResetTimer()
	var sink []*stream.Detection
	for n := 0; n < b.N; n++ {
		ds, _, err := c.TopK("", 10)
		if err != nil {
			b.Fatal(err)
		}
		sink = ds
	}
	_ = sink
}
