package cluster

import (
	"fmt"
	"testing"

	"flowmotif/internal/stream"
	"flowmotif/internal/temporal"
)

// benchCluster builds an N-shard cluster over the full catalog and
// pre-ingests (and drains) the synthetic stream.
func benchCluster(b *testing.B, shards int, preload []temporal.Event, maxPending int) *Coordinator {
	b.Helper()
	members := make([]Member, shards)
	for i := range members {
		m, err := NewLocalMember(fmt.Sprintf("m%d", i), LocalOptions{})
		if err != nil {
			b.Fatal(err)
		}
		members[i] = m
	}
	c, err := New(Config{
		Members:      members,
		Subs:         benchSubs(),
		HistoryLimit: 1 << 14,
		MaxPending:   maxPending,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	for i := 0; i < len(preload); i += 512 {
		end := i + 512
		if end > len(preload) {
			end = len(preload)
		}
		if _, err := c.Ingest(preload[i:end]); err != nil {
			b.Fatal(err)
		}
	}
	if len(preload) > 0 {
		if err := c.Drain(); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// benchFeed streams b.N events into the cluster in fixed batches, wrapping
// the synthetic stream by shifting timestamps so the time-order contract
// holds across laps. drainEvery > 0 inserts an out-of-timer drain barrier
// every that many batches (bounding replication-log memory while keeping
// the timed region pure ack path); drainEvery == 0 drains once, inside
// the timer.
func benchFeed(b *testing.B, c *Coordinator, evs []temporal.Event, drainEvery int) {
	b.Helper()
	const batch = 512
	b.ReportAllocs()
	b.ResetTimer()
	i := 0
	shift := int64(0)
	sinceDrain := 0
	maxT := evs[len(evs)-1].T + 1
	scratch := make([]temporal.Event, batch)
	for n := 0; n < b.N; n += batch {
		if i+batch > len(evs) {
			i = 0
			shift += maxT
		}
		copy(scratch, evs[i:i+batch])
		if shift > 0 {
			for j := range scratch {
				scratch[j].T += shift
			}
		}
		if _, err := c.Ingest(scratch); err != nil {
			b.Fatal(err)
		}
		i += batch
		if drainEvery > 0 {
			if sinceDrain++; sinceDrain >= drainEvery {
				sinceDrain = 0
				b.StopTimer()
				if err := c.Drain(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		}
	}
	if drainEvery == 0 {
		if err := c.Drain(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := c.Stats()
	b.ReportMetric(float64(st.Events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkClusterIngest measures client-visible ingest throughput (the
// rate at which Ingest calls acknowledge) on a 4-shard cluster over the
// full catalog — the figure the asynchronous replication pipeline exists
// to improve: the synchronous broadcast made every ack wait out the
// slowest member's apply. Members apply the log during out-of-timer
// drain barriers, so the timed region is the ack path under a bounded
// queue. See BenchmarkClusterIngestSustained for the end-to-end apply
// rate.
func BenchmarkClusterIngest(b *testing.B) {
	evs, err := benchStream(BenchConfig{Events: 1 << 17, Seed: 2019}.withDefaults())
	if err != nil {
		b.Fatal(err)
	}
	// Queue deep enough that the inter-drain burst (2048 batches) never
	// backpressures: the timed region measures log appends only.
	c := benchCluster(b, 4, nil, 4096)
	benchFeed(b, c, evs, 2048)
}

// BenchmarkClusterIngestSustained measures end-to-end pipeline throughput:
// the drain barrier runs inside the timer, so the figure is bounded by the
// slowest member's apply rate — what a stream longer than the queue depth
// sustains under backpressure.
func BenchmarkClusterIngestSustained(b *testing.B) {
	evs, err := benchStream(BenchConfig{Events: 1 << 17, Seed: 2019}.withDefaults())
	if err != nil {
		b.Fatal(err)
	}
	c := benchCluster(b, 4, nil, 0)
	benchFeed(b, c, evs, 0)
}

// BenchmarkScatterGatherTopK measures the global top-k gather (all shards,
// merged) on a warm 4-shard cluster.
func BenchmarkScatterGatherTopK(b *testing.B) {
	evs, err := benchStream(BenchConfig{Events: 1 << 15, Seed: 2019}.withDefaults())
	if err != nil {
		b.Fatal(err)
	}
	c := benchCluster(b, 4, evs, 0)
	b.ReportAllocs()
	b.ResetTimer()
	var sink []*stream.Detection
	for n := 0; n < b.N; n++ {
		ds, _, err := c.TopK("", 10)
		if err != nil {
			b.Fatal(err)
		}
		sink = ds
	}
	_ = sink
}
