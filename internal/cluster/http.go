package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"flowmotif/internal/obs"
	"flowmotif/internal/stream"
	"flowmotif/internal/temporal"
	"flowmotif/internal/wire"
)

// HTTPMember drives a remote flowmotifd member daemon (started with
// -member) over its HTTP/JSON API. Transport failures and 5xx responses
// are wrapped in ErrMemberDown so the coordinator retries and eventually
// fails the member over; 4xx responses surface as semantic errors (409
// maps to stream.ErrBehindFrontier, matching the in-process engine).
type HTTPMember struct {
	id     string
	base   string
	client *http.Client

	// Binary wire-transport state (wiretransport.go): lazily probed from
	// the member's /healthz advertisement, then a persistent connection.
	wireMu       sync.Mutex
	wireProbed   bool
	wireDisabled bool
	wireAddr     string
	wireCli      *wire.Client
}

// NewHTTPMember builds a member client for the daemon at baseURL (e.g.
// "http://10.0.0.7:8089"). A nil client uses a default with a 30s timeout.
func NewHTTPMember(id, baseURL string, client *http.Client) *HTTPMember {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &HTTPMember{id: id, base: strings.TrimRight(baseURL, "/"), client: client}
}

// ID implements Member.
func (m *HTTPMember) ID() string { return m.id }

// URL returns the member's base URL.
func (m *HTTPMember) URL() string { return m.base }

// wireEvent matches the serving API's event shape (internal/server).
type wireEvent struct {
	From temporal.NodeID `json:"from"`
	To   temporal.NodeID `json:"to"`
	T    int64           `json:"t"`
	F    float64         `json:"f"`
}

func (m *HTTPMember) do(method, path string, body, out interface{}) error {
	return m.doTraced(method, path, body, out, "")
}

// doTraced is do with W3C trace propagation: a non-empty traceparent
// travels as the request header of the same name, so the member daemon's
// request span joins the caller's trace.
func (m *HTTPMember) doTraced(method, path string, body, out interface{}, traceparent string) error {
	var rd io.Reader
	if body != nil {
		payload, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("cluster: member %s: marshal: %w", m.id, err)
		}
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequest(method, m.base+path, rd)
	if err != nil {
		return fmt.Errorf("cluster: member %s: %w", m.id, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if traceparent != "" {
		req.Header.Set(obs.TraceparentHeader, traceparent)
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrMemberDown, m.id, err)
	}
	defer resp.Body.Close()
	// Handoff responses (/cluster/remove-sub) carry retention-bounded
	// catch-up events and sink state; allow up to 1 GiB.
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
	if err != nil {
		return fmt.Errorf("%w: %s: read response: %v", ErrMemberDown, m.id, err)
	}
	if resp.StatusCode >= 500 {
		return fmt.Errorf("%w: %s: %s: %s", ErrMemberDown, m.id, resp.Status, errBody(raw))
	}
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusConflict {
			return fmt.Errorf("%w: member %s: %s", stream.ErrBehindFrontier, m.id, errBody(raw))
		}
		return fmt.Errorf("cluster: member %s: %s: %s", m.id, resp.Status, errBody(raw))
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("cluster: member %s: decode %s: %w", m.id, path, err)
		}
	}
	return nil
}

func errBody(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	s := strings.TrimSpace(string(raw))
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

// Ingest implements Member. The replication sequence tag travels as the
// request's "seq" field (JSON) or the batch frame's seq trailer (binary);
// the member daemon deduplicates resends by it (answering with its
// recorded ack, dup=true), which is what makes retry after a lost ack
// safe over either transport. When the member daemon advertises a binary
// wire listener on /healthz, Ingest upgrades to it automatically — the
// replicator then stops re-marshalling JSON per delivery (see
// wiretransport.go); members without one keep getting JSON.
func (m *HTTPMember) Ingest(b Batch) (IngestAck, error) {
	if ack, handled, err := m.wireIngest(b); handled {
		return ack, err
	}
	evs := make([]wireEvent, len(b.Events))
	for i, e := range b.Events {
		evs[i] = wireEvent{From: e.From, To: e.To, T: e.T, F: e.F}
	}
	body := map[string]interface{}{"events": evs}
	if b.Seq != 0 {
		body["seq"] = b.Seq
	}
	var ack IngestAck
	err := m.doTraced(http.MethodPost, "/ingest", body, &ack, b.Traceparent)
	return ack, err
}

// Flush implements Member.
func (m *HTTPMember) Flush() (IngestAck, error) {
	var ack IngestAck
	err := m.do(http.MethodPost, "/flush", nil, &ack)
	return ack, err
}

// AddSubscription implements Member.
func (m *HTTPMember) AddSubscription(h Handoff) error {
	return m.do(http.MethodPost, "/cluster/add-sub", h, nil)
}

// RemoveSubscription implements Member.
func (m *HTTPMember) RemoveSubscription(id string) (Handoff, error) {
	var h Handoff
	err := m.do(http.MethodPost, "/cluster/remove-sub", map[string]string{"id": id}, &h)
	return h, err
}

// queryResponse matches the serving API's /instances and /topk shape.
type queryResponse struct {
	Watermark int64               `json:"watermark"`
	Started   bool                `json:"started"`
	Instances []*stream.Detection `json:"instances"`
}

// Instances implements Member.
func (m *HTTPMember) Instances(sub string, limit int) (QueryResult, error) {
	return m.InstancesTraced(sub, limit, obs.SpanContext{})
}

// InstancesTraced implements tracedQuerier: the coordinator's per-shard
// span context rides the traceparent header.
func (m *HTTPMember) InstancesTraced(sub string, limit int, sc obs.SpanContext) (QueryResult, error) {
	var resp queryResponse
	path := "/instances?limit=" + strconv.Itoa(limit) + "&sub=" + url.QueryEscape(sub)
	if err := m.doTraced(http.MethodGet, path, nil, &resp, traceparentOf(sc)); err != nil {
		return QueryResult{}, err
	}
	return QueryResult{Watermark: resp.Watermark, Started: resp.Started, Detections: resp.Instances}, nil
}

// TopK implements Member.
func (m *HTTPMember) TopK(sub string, k int) (QueryResult, error) {
	return m.TopKTraced(sub, k, obs.SpanContext{})
}

// TopKTraced implements tracedQuerier.
func (m *HTTPMember) TopKTraced(sub string, k int, sc obs.SpanContext) (QueryResult, error) {
	var resp queryResponse
	var path string
	if sub == "" {
		path = "/topk?all=1&k=" + strconv.Itoa(k)
	} else {
		path = "/topk?k=" + strconv.Itoa(k) + "&sub=" + url.QueryEscape(sub)
	}
	if err := m.doTraced(http.MethodGet, path, nil, &resp, traceparentOf(sc)); err != nil {
		return QueryResult{}, err
	}
	return QueryResult{Watermark: resp.Watermark, Started: resp.Started, Detections: resp.Instances}, nil
}

// traceparentOf renders a span context as a traceparent header value
// ("" for the zero context, meaning no propagation).
func traceparentOf(sc obs.SpanContext) string {
	if !sc.Valid() {
		return ""
	}
	return sc.Traceparent()
}

// statsResponse picks the member-relevant subset of GET /stats.
type statsResponse struct {
	Engine struct {
		EventsIngested int64   `json:"eventsIngested"`
		EventsRetained int     `json:"eventsRetained"`
		Watermark      int64   `json:"watermark"`
		Started        bool    `json:"started"`
		Detections     int64   `json:"detections"`
		PlanGroups     int     `json:"planGroups"`
		SnapshotBuilds int64   `json:"snapshotBuilds"`
		SnapshotReuse  float64 `json:"snapshotReuse"`
		MatchesShared  int64   `json:"matchesShared"`
		Subs           []struct {
			ID    string         `json:"id"`
			Shape string         `json:"shape"`
			Cost  stream.SubCost `json:"cost"`
		} `json:"subs"`
		Cost   stream.EngineCostStats  `json:"cost"`
		Groups []stream.GroupCostStats `json:"groups"`
	} `json:"engine"`
	// Metrics is the member server's full metric snapshot (the coordinator
	// bucket-merges member histograms into its own exposition).
	Metrics []obs.MetricSnapshot `json:"metrics"`
}

// Stats implements Member.
func (m *HTTPMember) Stats() (MemberStats, error) {
	return m.StatsTraced(obs.SpanContext{})
}

// StatsTraced implements tracedQuerier.
func (m *HTTPMember) StatsTraced(sc obs.SpanContext) (MemberStats, error) {
	var resp statsResponse
	if err := m.doTraced(http.MethodGet, "/stats", nil, &resp, traceparentOf(sc)); err != nil {
		return MemberStats{}, err
	}
	out := MemberStats{
		ID:             m.id,
		Watermark:      resp.Engine.Watermark,
		Started:        resp.Engine.Started,
		Events:         resp.Engine.EventsIngested,
		Retained:       resp.Engine.EventsRetained,
		Detections:     resp.Engine.Detections,
		PlanGroups:     resp.Engine.PlanGroups,
		SnapshotBuilds: resp.Engine.SnapshotBuilds,
		SnapshotReuse:  resp.Engine.SnapshotReuse,
		MatchesShared:  resp.Engine.MatchesShared,
	}
	for _, s := range resp.Engine.Subs {
		out.Subs = append(out.Subs, s.ID)
		if s.Cost != (stream.SubCost{}) {
			out.SubCosts = append(out.SubCosts, SubCostInfo{ID: s.ID, Shape: s.Shape, Cost: s.Cost})
		}
	}
	out.CostSeconds = resp.Engine.Cost.AttributedSeconds
	out.GroupCosts = resp.Engine.Groups
	out.Metrics = resp.Metrics
	return out, nil
}

// Traces implements Member: the member daemon's flight-recorder spans
// for one trace, fetched from its GET /debug/traces?trace= endpoint.
func (m *HTTPMember) Traces(trace string) ([]obs.SpanRecord, error) {
	var resp struct {
		Spans []obs.SpanRecord `json:"spans"`
	}
	path := "/debug/traces?trace=" + url.QueryEscape(trace)
	if err := m.do(http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Spans, nil
}
