package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"flowmotif/internal/core"
	"flowmotif/internal/gen"
	"flowmotif/internal/motif"
	"flowmotif/internal/stream"
	"flowmotif/internal/temporal"
)

// detKey serializes a detection's semantic content for set comparison
// (bound nodes plus the (t, f) events of every edge-set).
func detKey(d *stream.Detection) string {
	var b strings.Builder
	fmt.Fprintf(&b, "N%v", d.Nodes)
	for i, es := range d.Edges {
		fmt.Fprintf(&b, "|e%d", i)
		for _, p := range es {
			fmt.Fprintf(&b, ";%d:%g", p.T, p.F)
		}
	}
	return b.String()
}

// batchKey serializes a batch instance in detKey's format.
func batchKey(g *temporal.Graph, in *core.Instance) string {
	var b strings.Builder
	fmt.Fprintf(&b, "N%v", in.Nodes)
	for i, a := range in.Arcs {
		fmt.Fprintf(&b, "|e%d", i)
		for _, p := range g.Series(a)[in.Spans[i].Start:in.Spans[i].End] {
			fmt.Fprintf(&b, ";%d:%g", p.T, p.F)
		}
	}
	return b.String()
}

// clusterEvents returns a synthetic time-ordered event log.
func clusterEvents(t testing.TB, seed int64) []temporal.Event {
	t.Helper()
	evs, err := gen.Bitcoin(gen.BitcoinConfig{
		Nodes: 200, SeedTxns: 700, Duration: 30000, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed * 31))
	rng.Shuffle(len(evs), func(i, j int) { evs[i], evs[j] = evs[j], evs[i] })
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	return evs
}

// catalogSubs builds the full-catalog subscription set under two (δ, φ)
// settings — the oracle workload.
func catalogSubs() []stream.Subscription {
	settings := []struct {
		delta int64
		phi   float64
	}{
		{300, 0},
		{900, 6},
	}
	var subs []stream.Subscription
	for _, mo := range motif.Catalog() {
		for _, s := range settings {
			subs = append(subs, stream.Subscription{
				ID:    fmt.Sprintf("%s/d%d/phi%g", mo.Name(), s.delta, s.phi),
				Motif: mo,
				Delta: s.delta,
				Phi:   s.phi,
			})
		}
	}
	return subs
}

func newTestCluster(t testing.TB, n int, subs []stream.Subscription) (*Coordinator, []*LocalMember) {
	t.Helper()
	members := make([]Member, n)
	locals := make([]*LocalMember, n)
	for i := range members {
		lm, err := NewLocalMember(fmt.Sprintf("m%d", i), LocalOptions{Recent: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		members[i] = lm
		locals[i] = lm
	}
	c, err := New(Config{Members: members, Subs: subs, RetryDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, locals
}

// feedRandomBatches streams evs[lo:hi) into the cluster in random batch
// sizes with intra-batch shuffling (the stream contract only fixes time
// order).
func feedRandomBatches(t testing.TB, c *Coordinator, evs []temporal.Event, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < len(evs); {
		n := 1 + rng.Intn(50)
		if i+n > len(evs) {
			n = len(evs) - i
		}
		batch := append([]temporal.Event(nil), evs[i:i+n]...)
		rng.Shuffle(len(batch), func(a, b int) { batch[a], batch[b] = batch[b], batch[a] })
		if _, err := c.Ingest(batch); err != nil {
			t.Fatal(err)
		}
		i += n
	}
}

// checkOracle compares the cluster's served instance set (scatter-gather
// /instances) and per-subscription top-k against the batch algorithm on
// the full event log.
func checkOracle(t *testing.T, c *Coordinator, g *temporal.Graph, subs []stream.Subscription) int {
	t.Helper()
	total := 0
	for _, sub := range subs {
		p := core.Params{Delta: sub.Delta, Phi: sub.Phi}
		want, err := core.Collect(g, sub.Motif, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantKeys := map[string]bool{}
		for _, in := range want {
			wantKeys[batchKey(g, in)] = true
		}
		ds, _, err := c.Instances(sub.ID, 0)
		if err != nil {
			t.Fatalf("instances %s: %v", sub.ID, err)
		}
		gotKeys := map[string]bool{}
		for _, d := range ds {
			k := detKey(d)
			if gotKeys[k] {
				t.Errorf("sub %s: duplicate served instance %s", sub.ID, k)
			}
			gotKeys[k] = true
		}
		for k := range wantKeys {
			if !gotKeys[k] {
				t.Errorf("sub %s: missing %s", sub.ID, k)
			}
		}
		for k := range gotKeys {
			if !wantKeys[k] {
				t.Errorf("sub %s: spurious %s", sub.ID, k)
			}
		}
		total += len(wantKeys)

		// Per-subscription top-k must be the k best by flow.
		wantFlows := make([]float64, 0, len(want))
		for _, in := range want {
			wantFlows = append(wantFlows, in.Flow)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(wantFlows)))
		const k = 10
		top, _, err := c.TopK(sub.ID, k)
		if err != nil {
			t.Fatalf("topk %s: %v", sub.ID, err)
		}
		wantK := len(wantFlows)
		if wantK > k {
			wantK = k
		}
		if len(top) != wantK {
			t.Errorf("sub %s: topk served %d, want %d", sub.ID, len(top), wantK)
		}
		for i := 0; i < len(top) && i < wantK; i++ {
			// Streaming sums edge flows over band-restricted series, batch
			// over the full graph: identical instances, different FP
			// summation order. Compare with a relative epsilon.
			if !floatsClose(top[i].Flow, wantFlows[i]) {
				t.Errorf("sub %s: topk[%d].Flow = %g, want %g", sub.ID, i, top[i].Flow, wantFlows[i])
			}
		}
	}
	return total
}

// TestClusterSingleEngineEquivalence is the acceptance oracle: an N-shard
// cluster over the full motif catalog serves exactly the instance set of a
// single engine (the batch algorithm) with the same subscriptions, for
// N ∈ {1, 2, 4}.
func TestClusterSingleEngineEquivalence(t *testing.T) {
	evs := clusterEvents(t, 7)
	g, err := temporal.NewGraph(evs)
	if err != nil {
		t.Fatal(err)
	}
	subs := catalogSubs()
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			c, _ := newTestCluster(t, n, subs)
			if n > 1 {
				// Sanity: rendezvous should actually spread the load.
				byMember := map[string]int{}
				for _, owner := range c.Placement() {
					byMember[owner]++
				}
				if len(byMember) < 2 {
					t.Fatalf("placement degenerate: %v", byMember)
				}
			}
			feedRandomBatches(t, c, evs, 99)
			if _, err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			if total := checkOracle(t, c, g, subs); total == 0 {
				t.Fatal("degenerate test: batch search found no instances")
			}
		})
	}
}

// TestClusterMembershipAndFailover is the lifecycle oracle: mid-stream the
// cluster gains a member (live re-placement), drains one gracefully, and
// loses one to a kill — and still serves exactly the single-engine
// instance set, with no instance lost or duplicated.
func TestClusterMembershipAndFailover(t *testing.T) {
	evs := clusterEvents(t, 11)
	g, err := temporal.NewGraph(evs)
	if err != nil {
		t.Fatal(err)
	}
	subs := catalogSubs()
	c, locals := newTestCluster(t, 3, subs)

	quarter := len(evs) / 4
	feedRandomBatches(t, c, evs[:quarter], 1)

	// Scale out: m3 joins mid-stream and wins some subscriptions live.
	m3, err := NewLocalMember("m3", LocalOptions{Recent: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	movesBefore := c.Stats().Moves
	if err := c.AddMember(m3); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Moves == movesBefore {
		t.Fatal("adding a member moved no subscription; rebalance inert")
	}
	feedRandomBatches(t, c, evs[quarter:2*quarter], 2)

	// Graceful drain: m1 leaves, handing its subscriptions off live.
	if err := c.RemoveMember("m1"); err != nil {
		t.Fatal(err)
	}
	feedRandomBatches(t, c, evs[2*quarter:3*quarter], 3)

	// Kill: m0 stops answering; the next broadcast marks it down and
	// re-places its subscriptions, regenerated from coordinator history.
	killed := locals[0]
	owned := 0
	for _, owner := range c.Placement() {
		if owner == "m0" {
			owned++
		}
	}
	if owned == 0 {
		t.Fatal("test premise broken: m0 owns no subscriptions before the kill")
	}
	killed.SetDown(true)
	feedRandomBatches(t, c, evs[3*quarter:], 4)
	// Pipelined ingest acks on append; the drain barrier guarantees the
	// failover has been reaped before the assertions below.
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Downs != 1 {
		t.Fatalf("Downs = %d after kill, want 1", st.Downs)
	}
	for sub, owner := range c.Placement() {
		if owner == "m0" {
			t.Fatalf("subscription %s still placed on the killed member", sub)
		}
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if total := checkOracle(t, c, g, subs); total == 0 {
		t.Fatal("degenerate test: batch search found no instances")
	}
}

// TestClusterGlobalTopK checks the cluster-wide (all-subscription) top-k
// merge against a single TopKSink fed every detection.
func TestClusterGlobalTopK(t *testing.T) {
	evs := clusterEvents(t, 17)
	subs := catalogSubs()
	c, _ := newTestCluster(t, 3, subs)
	feedRandomBatches(t, c, evs, 5)
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	const k = 25
	got, _, err := c.TopK("", k)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: global best k over the union of per-sub exact lists.
	var all []*stream.Detection
	for _, sub := range subs {
		ds, _, err := c.TopK(sub.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, ds...)
	}
	want := MergeTopK([][]*stream.Detection{all}, k)
	if len(got) != len(want) {
		t.Fatalf("global topk served %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Flow != want[i].Flow || got[i].Sub != want[i].Sub || got[i].Start != want[i].Start {
			t.Errorf("global topk[%d] = (%s, %g, %d), want (%s, %g, %d)",
				i, got[i].Sub, got[i].Flow, got[i].Start, want[i].Sub, want[i].Flow, want[i].Start)
		}
	}
	if len(got) >= 2 {
		for i := 1; i < len(got); i++ {
			if got[i-1].Flow < got[i].Flow {
				t.Fatalf("global topk not sorted at %d: %g < %g", i, got[i-1].Flow, got[i].Flow)
			}
		}
	}
}

// TestClusterOrderContract: the coordinator enforces the engines' batch
// admission rules before broadcasting, so a bad batch is all-or-nothing
// cluster-wide.
func TestClusterOrderContract(t *testing.T) {
	mo := motif.MustPath(0, 1, 2)
	c, _ := newTestCluster(t, 2, []stream.Subscription{
		{ID: "s", Motif: mo, Delta: 10, Phi: 0},
	})
	if _, err := c.Ingest([]temporal.Event{{From: 0, To: 1, T: 100, F: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest([]temporal.Event{{From: 0, To: 1, T: 50, F: 1}}); !errors.Is(err, stream.ErrBehindFrontier) {
		t.Fatalf("stale batch: err=%v, want ErrBehindFrontier", err)
	}
	if _, err := c.Ingest([]temporal.Event{{From: 0, To: 1, T: 200, F: -1}}); err == nil {
		t.Fatal("non-positive flow accepted")
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Post-flush, events must clear watermark+δ cluster-wide.
	if _, err := c.Ingest([]temporal.Event{{From: 0, To: 1, T: 105, F: 1}}); !errors.Is(err, stream.ErrBehindFrontier) {
		t.Fatalf("post-flush ingest inside watermark+δ: err=%v", err)
	}
	if _, err := c.Ingest([]temporal.Event{{From: 0, To: 1, T: 111, F: 1}}); err != nil {
		t.Fatalf("post-flush ingest beyond watermark+δ rejected: %v", err)
	}
	st := c.Stats()
	if st.Events != 2 {
		t.Fatalf("Events = %d, want 2", st.Events)
	}
	// Unknown subscriptions 404 on both query paths.
	if _, _, err := c.Instances("nope", 0); !errors.Is(err, ErrUnknownSub) {
		t.Errorf("unknown sub instances: %v", err)
	}
	if _, _, err := c.TopK("nope", 5); !errors.Is(err, ErrUnknownSub) {
		t.Errorf("unknown sub topk: %v", err)
	}
}

// TestClusterLastMemberRules: the last member cannot be drained while
// subscriptions exist, and losing every member leaves subscriptions
// unplaced until a new member arrives and adopts them from the
// replication log/history — including a batch that was acked into the
// log but never applied by any member (the log, not the members, is the
// stream of record).
func TestClusterLastMemberRules(t *testing.T) {
	mo := motif.MustPath(0, 1)
	c, locals := newTestCluster(t, 1, []stream.Subscription{
		{ID: "s", Motif: mo, Delta: 5, Phi: 0},
	})
	if err := c.RemoveMember("m0"); err == nil {
		t.Fatal("draining the last member accepted")
	}
	if _, err := c.Ingest([]temporal.Event{
		{From: 0, To: 1, T: 10, F: 3},
		{From: 0, To: 1, T: 20, F: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	locals[0].SetDown(true)
	// Pipelined ingest still acks: the batch lands in the replication log
	// before the member's death is discovered.
	ack, err := c.Ingest([]temporal.Event{{From: 0, To: 1, T: 30, F: 1}})
	if err != nil {
		t.Fatalf("pipelined ingest with the member down: %v", err)
	}
	if ack.Seq == 0 {
		t.Fatalf("pipelined ack missing log seq: %+v", ack)
	}
	// The drain barrier discovers the death; the last member's
	// subscriptions end up unplaced.
	if err := c.Drain(); !errors.Is(err, ErrNoMembers) {
		t.Fatalf("drain with every member down: err=%v, want ErrNoMembers", err)
	}
	if _, err := c.Ingest([]temporal.Event{{From: 0, To: 1, T: 40, F: 1}}); !errors.Is(err, ErrNoMembers) {
		t.Fatalf("ingest with no members left: err=%v, want ErrNoMembers", err)
	}
	st := c.Stats()
	if len(st.Unplaced) != 1 || !st.Degraded {
		t.Fatalf("Unplaced = %v (degraded=%v), want [s] degraded", st.Unplaced, st.Degraded)
	}
	if _, _, err := c.Instances("s", 0); err == nil {
		t.Fatal("query for an unplaced subscription succeeded")
	}
	// A new member adopts the orphan from coordinator history — including
	// the t=30 batch that was acked but never applied by the dead member.
	fresh, err := NewLocalMember("m9", LocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddMember(fresh); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); len(st.Unplaced) != 0 {
		t.Fatalf("Unplaced = %v after adoption, want none", st.Unplaced)
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	ds, _, err := c.Instances("s", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("served %d instances after adoption, want 3 (regenerated from the log incl. the acked-but-unapplied batch)", len(ds))
	}
}

// TestMergeTopKEdgeCases covers the distributed merge's boring-but-sharp
// corners: ties at the threshold, k larger than the total, empty shards.
func TestMergeTopKEdgeCases(t *testing.T) {
	d := func(sub string, flow float64, start int64) *stream.Detection {
		return &stream.Detection{Sub: sub, Flow: flow, Start: start, End: start + 1}
	}
	// Ties at the threshold: flow 5 appears on two shards; the earlier
	// Start (then sub id) wins deterministically.
	lists := [][]*stream.Detection{
		{d("a", 9, 10), d("a", 5, 30)},
		{d("b", 5, 20), d("b", 3, 5)},
		nil,
	}
	got := MergeTopK(lists, 2)
	if len(got) != 2 || got[0].Flow != 9 || got[1].Flow != 5 || got[1].Start != 20 {
		t.Fatalf("threshold tie: got %v", flowsOf(got))
	}
	// Same flow, same span, different subs: sub id breaks the tie.
	tied := MergeTopK([][]*stream.Detection{
		{d("z", 5, 20)},
		{d("b", 5, 20)},
	}, 1)
	if len(tied) != 1 || tied[0].Sub != "b" {
		t.Fatalf("sub tie-break: got %v", tied[0])
	}
	// k larger than the total keeps everything, sorted.
	all := MergeTopK(lists, 100)
	if len(all) != 4 || all[3].Flow != 3 {
		t.Fatalf("k>total: got %v", flowsOf(all))
	}
	// k <= 0 keeps everything too.
	if got := MergeTopK(lists, 0); len(got) != 4 {
		t.Fatalf("k=0: got %d", len(got))
	}
	if got := MergeTopK(nil, 5); len(got) != 0 {
		t.Fatalf("no shards: got %d", len(got))
	}
}

func floatsClose(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := 1.0
	if a > scale {
		scale = a
	}
	if b > scale {
		scale = b
	}
	return diff <= 1e-9*scale
}

func flowsOf(ds []*stream.Detection) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Flow
	}
	return out
}

// TestAlignWatermark covers scatter-gather alignment across shards with
// disjoint watermarks: detections past the slowest started shard are held
// back, and never-started shards don't drag the watermark to zero.
func TestAlignWatermark(t *testing.T) {
	d := func(at int64) *stream.Detection { return &stream.Detection{DetectedAt: at} }
	results := []QueryResult{
		{Watermark: 100, Started: true, Detections: []*stream.Detection{d(40), d(95)}},
		{Watermark: 60, Started: true, Detections: []*stream.Detection{d(55), d(60)}},
		{Started: false}, // fresh shard, no events yet
	}
	alignedW, started, lists := alignWatermark(results)
	if alignedW != 60 || !started {
		t.Fatalf("alignedW = (%d, %v), want (60, started)", alignedW, started)
	}
	if len(lists[0]) != 1 || lists[0][0].DetectedAt != 40 {
		t.Fatalf("fast shard not filtered: %v", lists[0])
	}
	if len(lists[1]) != 2 {
		t.Fatalf("slow shard filtered: %v", lists[1])
	}
	// All shards unstarted: nothing served, watermark zero — and the
	// started flag false, so "no data yet" is distinguishable from an
	// empty-but-started stream whose watermark happens to be 0.
	alignedW, started, lists = alignWatermark([]QueryResult{{Started: false}, {Started: false}})
	if alignedW != 0 || started || len(lists[0]) != 0 {
		t.Fatalf("unstarted cluster: w=%d started=%v lists=%v", alignedW, started, lists)
	}
	// A started shard at watermark 0 (first event at t=0) is NOT the
	// no-data case: started must be true.
	if _, started, _ := alignWatermark([]QueryResult{{Started: true, Watermark: 0}}); !started {
		t.Fatal("started shard at watermark 0 reported as no-data")
	}
	// Disjoint watermarks where one shard is strictly ahead by a whole
	// band: everything the laggard has is kept, the leader contributes
	// only its aligned prefix.
	results = []QueryResult{
		{Watermark: 1000, Started: true, Detections: []*stream.Detection{d(999), d(1000)}},
		{Watermark: 10, Started: true, Detections: []*stream.Detection{d(9)}},
	}
	alignedW, started, lists = alignWatermark(results)
	if alignedW != 10 || !started || len(lists[0]) != 0 || len(lists[1]) != 1 {
		t.Fatalf("disjoint watermarks: w=%d lists=%v", alignedW, lists)
	}
}

// TestRendezvousPlacement checks the minimal-disruption property that the
// membership lifecycle relies on: adding a member only moves subscriptions
// onto it; removing one only moves subscriptions off it.
func TestRendezvousPlacement(t *testing.T) {
	subs := make([]string, 200)
	for i := range subs {
		subs[i] = fmt.Sprintf("sub-%d", i)
	}
	three := []string{"a", "b", "c"}
	four := []string{"a", "b", "c", "d"}
	p3 := Placement(subs, three)
	p4 := Placement(subs, four)
	movedTo := map[string]int{}
	for _, s := range subs {
		if p3[s] != p4[s] {
			movedTo[p4[s]]++
			if p4[s] != "d" {
				t.Fatalf("sub %s moved %s -> %s on member ADD (only moves onto the new member are allowed)", s, p3[s], p4[s])
			}
		}
	}
	if movedTo["d"] == 0 {
		t.Fatal("new member won no subscriptions")
	}
	// Roughly balanced: each member should own a nontrivial share.
	byOwner := map[string]int{}
	for _, o := range p4 {
		byOwner[o]++
	}
	for _, m := range four {
		if byOwner[m] < len(subs)/len(four)/3 {
			t.Errorf("member %s owns only %d of %d subscriptions; placement skewed: %v", m, byOwner[m], len(subs), byOwner)
		}
	}
	// Empty member set: no owner.
	if got := rendezvousOwner("x", nil); got != "" {
		t.Fatalf("owner over empty member set = %q", got)
	}
}

// TestLocalMemberDurableRestart: a durable shard replays its WAL on open,
// so a restarted member resumes with a consistent frontier — the store
// never rejects a broadcast the (fresh) engine would accept.
func TestLocalMemberDurableRestart(t *testing.T) {
	dir := t.TempDir()
	mo := motif.MustPath(0, 1)
	subs := []stream.Subscription{{ID: "s", Motif: mo, Delta: 5, Phi: 0}}

	m1, err := NewLocalMember("d0", LocalOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c1, err := New(Config{Members: []Member{m1}, Subs: subs, RetryDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Ingest([]temporal.Event{
		{From: 0, To: 1, T: 10, F: 1},
		{From: 0, To: 1, T: 20, F: 2},
	}); err != nil {
		t.Fatal(err)
	}
	// Push the pipelined batch through to the shard WAL before restart.
	if err := c1.Drain(); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same data dir: the WAL warms the engine.
	m2, err := NewLocalMember("d0", LocalOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Replayed() != 2 {
		t.Fatalf("Replayed = %d, want 2", m2.Replayed())
	}
	if w, ok := m2.Engine().Watermark(); !ok || w != 20 {
		t.Fatalf("watermark after replay = (%d, %v), want (20, true)", w, ok)
	}
	c2, err := New(Config{Members: []Member{m2}, Subs: subs, RetryDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c2.Close)
	// The resumed stream continues past the recorded frontier; both the
	// engine and the WAL accept it.
	if _, err := c2.Ingest([]temporal.Event{{From: 0, To: 1, T: 30, F: 3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Flush(); err != nil {
		t.Fatal(err)
	}
	ds, _, err := c2.Instances("s", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Subscription state was not persisted: detection resumes at the
	// restart watermark (documented member-durability semantics).
	if len(ds) != 1 || ds[0].Start != 30 {
		t.Fatalf("post-restart detections = %v, want exactly the post-restart instance", ds)
	}
}
