package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"flowmotif/internal/obs"
	"flowmotif/internal/store"
	"flowmotif/internal/stream"
	"flowmotif/internal/temporal"
)

// LocalOptions parameterizes an in-process member.
type LocalOptions struct {
	// Workers is the member engine's per-band enumeration parallelism.
	Workers int
	// Recent bounds the member's recent-detection ring (default 4096).
	Recent int
	// TopK bounds the member's per-subscription top list (default 50).
	TopK int
	// DataDir, when non-empty, gives the member its own durable segment
	// store: every acknowledged broadcast batch is appended to a WAL under
	// this directory (one data dir per shard).
	DataDir string
	// SyncWrites fsyncs the member WAL after every acknowledged batch.
	SyncWrites bool
}

// LocalMember is the in-process Member: a full stream engine with query
// sinks and optional per-shard durability, driven directly by a
// coordinator in the same process. flowmotifd -shards N serves N of these
// behind one coordinator; tests and examples use them for single-process
// clusters.
type LocalMember struct {
	id       string
	mu       sync.Mutex // serializes ingest/flush/handoff against each other
	eng      *stream.Engine
	recent   *stream.MemorySink
	topk     *stream.TopKSink
	st       *store.Store // nil when not durable
	replayed int64        // WAL events replayed at open
	down     atomic.Bool  // test/ops kill switch

	// lastSeq/lastAck make seq-tagged ingest idempotent: a resend of an
	// already-applied replication batch (its ack was lost in transit)
	// answers with the recorded ack instead of a behind-frontier
	// rejection. Guarded by mu.
	lastSeq int64
	lastAck IngestAck
	// walErr poisons the member after a WAL append failed post-apply:
	// engine and WAL have diverged, so every later ingest reports
	// ErrMemberDown (fail-stop) until the shard is recreated from its
	// WAL. Without it, a retried seq-tagged batch whose first apply
	// succeeded in the engine but missed the WAL would be re-applied
	// (the dedup record is only written on full success) — double
	// detections on single-timestamp batches, spurious divergence
	// errors otherwise. Guarded by mu.
	walErr error
}

// NewLocalMember builds an empty in-process member; the coordinator places
// subscriptions onto it.
func NewLocalMember(id string, opts LocalOptions) (*LocalMember, error) {
	if id == "" {
		return nil, fmt.Errorf("cluster: member id required")
	}
	if opts.Recent <= 0 {
		opts.Recent = 4096
	}
	if opts.TopK <= 0 {
		opts.TopK = 50
	}
	m := &LocalMember{
		id:     id,
		recent: stream.NewMemorySink(opts.Recent),
		topk:   stream.NewTopKSink(opts.TopK),
	}
	// One registry per member: the engine's and store's instruments land
	// together, and Stats ships the whole snapshot to the coordinator.
	reg := obs.NewRegistry()
	eng, err := stream.NewEngine(stream.Config{Workers: opts.Workers, Obs: reg},
		stream.MultiSink{m.recent, m.topk})
	if err != nil {
		return nil, err
	}
	m.eng = eng
	if opts.DataDir != "" {
		st, err := store.Open(opts.DataDir, store.Options{Sync: opts.SyncWrites, Obs: reg})
		if err != nil {
			return nil, err
		}
		// Replay the recorded stream so a restarted shard resumes with a
		// consistent frontier: the engine's watermark matches the WAL's,
		// so the store never rejects a broadcast the engine accepted (and
		// vice versa). Subscription state is not persisted here — the
		// coordinator re-seeds it through catch-up placement, which the
		// warmed engine accepts because its log is a (possibly empty)
		// suffix of the same stream.
		batch := make([]temporal.Event, 0, 4096)
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			_, err := eng.Ingest(batch)
			batch = batch[:0]
			return err
		}
		var ingestErr error
		err = st.Replay(0, func(_ int64, ev temporal.Event) bool {
			batch = append(batch, ev)
			m.replayed++
			if len(batch) == cap(batch) {
				if ingestErr = flush(); ingestErr != nil {
					return false
				}
			}
			return true
		})
		if err == nil && ingestErr == nil {
			ingestErr = flush()
		}
		if err == nil {
			err = ingestErr
		}
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("cluster: member %s: wal replay: %w", id, err)
		}
		m.st = st
	}
	return m, nil
}

// Replayed reports how many WAL events warmed the engine at open (durable
// members only).
func (m *LocalMember) Replayed() int64 { return m.replayed }

// ID implements Member.
func (m *LocalMember) ID() string { return m.id }

// SetDown toggles the member's kill switch: while down, every call fails
// with ErrMemberDown — the in-process stand-in for a crashed shard, used
// by failover tests and the cluster demo.
func (m *LocalMember) SetDown(down bool) { m.down.Store(down) }

func (m *LocalMember) check() error {
	if m.down.Load() {
		return fmt.Errorf("%w: %s", ErrMemberDown, m.id)
	}
	return nil
}

// Ingest implements Member. A batch tagged with a replication sequence at
// or below the last applied tag is a duplicate resend (the coordinator
// never saw the ack): it is answered with the recorded ack, Dup set, and
// the engine untouched.
func (m *LocalMember) Ingest(b Batch) (IngestAck, error) {
	if err := m.check(); err != nil {
		return IngestAck{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.walErr != nil {
		return IngestAck{}, fmt.Errorf("%w: %s: wal broken: %v", ErrMemberDown, m.id, m.walErr)
	}
	if b.Seq != 0 && b.Seq <= m.lastSeq {
		ack := m.lastAck
		ack.Dup = true
		return ack, nil
	}
	parent, _ := obs.ParseTraceparent(b.Traceparent)
	ack, err := m.eng.IngestTraced(b.Events, parent)
	if err != nil {
		if errors.Is(err, stream.ErrFailStopped) {
			// The engine poisoned itself (partial batch append): surface the
			// shard as down so the coordinator fails it over and regenerates
			// its subscriptions from history, exactly like the WAL-poison
			// path below.
			return IngestAck{}, fmt.Errorf("%w: %s: %v", ErrMemberDown, m.id, err)
		}
		return IngestAck{}, err
	}
	if m.st != nil {
		if perr := m.st.Append(b.Events); perr != nil {
			// The engine applied the batch but the WAL did not: poison the
			// member (fail-stop) so retries and later batches report the
			// broken shard instead of re-applying or diverging silently.
			m.walErr = perr
			if b.Seq != 0 {
				m.lastSeq = b.Seq
			}
			return IngestAck{}, fmt.Errorf("%w: %s: wal append: %v", ErrMemberDown, m.id, perr)
		}
	}
	out := IngestAck{Ingested: ack.Ingested, Watermark: ack.Watermark, Detections: ack.Detections, Seq: b.Seq, Trace: ack.Trace}
	if b.Seq != 0 {
		m.lastSeq = b.Seq
		m.lastAck = out
	}
	return out, nil
}

// Flush implements Member.
func (m *LocalMember) Flush() (IngestAck, error) {
	if err := m.check(); err != nil {
		return IngestAck{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.eng.Err(); err != nil {
		// A fail-stopped engine flushes nothing; report the shard down so
		// the coordinator fails it over instead of trusting an empty ack.
		return IngestAck{}, fmt.Errorf("%w: %s: %v", ErrMemberDown, m.id, err)
	}
	ack := m.eng.FlushWithAck()
	return IngestAck{Watermark: ack.Watermark, Detections: ack.Detections}, nil
}

// AddSubscription implements Member.
func (m *LocalMember) AddSubscription(h Handoff) error {
	if err := m.check(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	_, err := InstallHandoff(m.eng, m.recent, m.topk, h)
	return err
}

// RemoveSubscription implements Member.
func (m *LocalMember) RemoveSubscription(id string) (Handoff, error) {
	if err := m.check(); err != nil {
		return Handoff{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return ExtractHandoff(m.eng, m.recent, m.topk, id)
}

// Instances implements Member.
func (m *LocalMember) Instances(sub string, limit int) (QueryResult, error) {
	if err := m.check(); err != nil {
		return QueryResult{}, err
	}
	w, ok := m.eng.Watermark()
	return QueryResult{
		Watermark:  w,
		Started:    ok,
		Detections: m.recent.Recent(sub, limit),
	}, nil
}

// TopK implements Member.
func (m *LocalMember) TopK(sub string, k int) (QueryResult, error) {
	if err := m.check(); err != nil {
		return QueryResult{}, err
	}
	w, ok := m.eng.Watermark()
	var ds []*stream.Detection
	if sub != "" {
		ds = m.topk.Top(sub)
		if k > 0 && k < len(ds) {
			ds = ds[:k]
		}
	} else {
		var lists [][]*stream.Detection
		for _, s := range m.eng.Subscriptions() {
			lists = append(lists, m.topk.Top(s.ID))
		}
		ds = MergeTopK(lists, k)
	}
	return QueryResult{Watermark: w, Started: ok, Detections: ds}, nil
}

// Stats implements Member.
func (m *LocalMember) Stats() (MemberStats, error) {
	if err := m.check(); err != nil {
		return MemberStats{}, err
	}
	st := m.eng.Stats()
	out := MemberStats{
		ID:             m.id,
		Watermark:      st.Watermark,
		Started:        st.Started,
		Events:         st.EventsIngested,
		Retained:       st.EventsRetained,
		Detections:     st.Detections,
		PlanGroups:     st.PlanGroups,
		SnapshotBuilds: st.SnapshotBuilds,
		SnapshotReuse:  st.SnapshotReuse,
		MatchesShared:  st.MatchesShared,
	}
	for _, s := range st.Subs {
		out.Subs = append(out.Subs, s.ID)
		if s.Cost != (stream.SubCost{}) {
			out.SubCosts = append(out.SubCosts, SubCostInfo{ID: s.ID, Shape: s.Shape, Cost: s.Cost})
		}
	}
	out.CostSeconds = st.Cost.AttributedSeconds
	out.GroupCosts = st.Groups
	out.Metrics = m.eng.Obs().Snapshot()
	return out, nil
}

// Traces implements Member: the member's flight-recorder spans for one
// trace, straight from the engine's tracer.
func (m *LocalMember) Traces(trace string) ([]obs.SpanRecord, error) {
	if err := m.check(); err != nil {
		return nil, err
	}
	return m.eng.Tracer().Spans(trace), nil
}

// Engine exposes the member's engine (tests and demos).
func (m *LocalMember) Engine() *stream.Engine { return m.eng }

// Close releases the member's durable store, if any.
func (m *LocalMember) Close() error {
	if m.st == nil {
		return nil
	}
	return m.st.Close()
}
