package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flowmotif/internal/core"
	"flowmotif/internal/motif"
	"flowmotif/internal/stream"
	"flowmotif/internal/temporal"
)

// ackDropMember wraps a member and, when armed, applies an ingest but
// reports a transport failure — the "member applied the batch, the ack
// was lost" hazard the seq tag exists for.
type ackDropMember struct {
	*LocalMember
	dropNext atomic.Bool
	drops    atomic.Int64
}

func (m *ackDropMember) Ingest(b Batch) (IngestAck, error) {
	ack, err := m.LocalMember.Ingest(b)
	if err == nil && m.dropNext.CompareAndSwap(true, false) {
		m.drops.Add(1)
		return IngestAck{}, fmt.Errorf("%w: %s: ack lost in transit", ErrMemberDown, m.ID())
	}
	return ack, err
}

// TestIdempotentResendAfterDroppedAck is the regression test for the
// non-idempotent resend hazard the old broadcast documented ("Single
// attempt: ingest is not idempotent"): a member that applied a batch but
// lost the ack used to be marked down as potentially diverged. With
// seq-tagged batches the replicator's resend is answered as a duplicate
// no-op: nobody is failed over, nothing is applied twice.
func TestIdempotentResendAfterDroppedAck(t *testing.T) {
	mo := motif.MustPath(0, 1, 2)
	subs := []stream.Subscription{
		{ID: "chain", Motif: mo, Delta: 50, Phi: 0},
		{ID: "edge", Motif: motif.MustPath(0, 1), Delta: 50, Phi: 0},
	}
	inner, err := NewLocalMember("flaky", LocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	flaky := &ackDropMember{LocalMember: inner}
	steady, err := NewLocalMember("steady", LocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		Members:    []Member{flaky, steady},
		Subs:       subs,
		RetryDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	if _, err := c.Ingest([]temporal.Event{
		{From: 0, To: 1, T: 10, F: 2},
		{From: 1, To: 2, T: 12, F: 3},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}

	// Arm the drop: the next apply succeeds on the member but the ack is
	// lost, so the replicator retries the identical tagged batch.
	flaky.dropNext.Store(true)
	if _, err := c.Ingest([]temporal.Event{
		{From: 0, To: 1, T: 20, F: 1},
		{From: 1, To: 2, T: 22, F: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	if got := flaky.drops.Load(); got != 1 {
		t.Fatalf("test premise broken: %d acks dropped, want 1", got)
	}
	st := c.Stats()
	if st.Downs != 0 {
		t.Fatalf("Downs = %d after a dropped ack, want 0 (resend must be a no-op, not a failover)", st.Downs)
	}
	for _, m := range st.Members {
		if m.Failing {
			t.Fatalf("member %s flagged failing after a dropped ack", m.ID)
		}
		if m.Events != 4 {
			t.Fatalf("member %s applied %d events, want 4 (no double-apply, no loss)", m.ID, m.Events)
		}
	}
	// Served instances are exactly the batch-algorithm set: nothing lost,
	// nothing duplicated by the resend.
	g, err := temporal.NewGraph([]temporal.Event{
		{From: 0, To: 1, T: 10, F: 2},
		{From: 1, To: 2, T: 12, F: 3},
		{From: 0, To: 1, T: 20, F: 1},
		{From: 1, To: 2, T: 22, F: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if total := checkOracle(t, c, g, subs); total == 0 {
		t.Fatal("degenerate test: no instances")
	}
}

// TestMemberSeqDedup pins the member-side contract directly: a resend of
// an applied tagged batch returns the recorded ack with Dup set and does
// not touch the engine; untagged batches keep legacy all-or-nothing
// semantics.
func TestMemberSeqDedup(t *testing.T) {
	m, err := NewLocalMember("m", LocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddSubscription(Handoff{Sub: SubSpec{ID: "s", Motif: "0-1", Delta: 5}}); err != nil {
		t.Fatal(err)
	}
	batch := Batch{Seq: 7, Events: []temporal.Event{{From: 0, To: 1, T: 10, F: 1}}}
	first, err := m.Ingest(batch)
	if err != nil {
		t.Fatal(err)
	}
	if first.Dup || first.Seq != 7 || first.Ingested != 1 {
		t.Fatalf("first apply ack = %+v", first)
	}
	again, err := m.Ingest(batch)
	if err != nil {
		t.Fatalf("resend of an applied batch rejected: %v", err)
	}
	if !again.Dup || again.Watermark != first.Watermark || again.Ingested != first.Ingested {
		t.Fatalf("resend ack = %+v, want recorded ack with Dup", again)
	}
	if st, _ := m.Stats(); st.Events != 1 {
		t.Fatalf("engine applied %d events after resend, want 1", st.Events)
	}
	// A stale seq (below the newest applied) is also a no-op.
	if _, err := m.Ingest(Batch{Seq: 3, Events: []temporal.Event{{From: 0, To: 1, T: 1, F: 1}}}); err != nil {
		t.Fatalf("stale-seq resend rejected: %v", err)
	}
	if st, _ := m.Stats(); st.Events != 1 {
		t.Fatal("stale-seq resend reached the engine")
	}
	// Untagged ingest (Seq 0) bypasses dedup and hits the engine's
	// admission rules as before.
	if _, err := m.Ingest(Batch{Events: []temporal.Event{{From: 0, To: 1, T: 5, F: 1}}}); !errors.Is(err, stream.ErrBehindFrontier) {
		t.Fatalf("untagged behind-frontier batch: err=%v, want ErrBehindFrontier", err)
	}
}

// gateMember wraps a member with a hold switch so tests can build a
// replication backlog deterministically.
type gateMember struct {
	*LocalMember
	mu    sync.Mutex
	calls atomic.Int64
}

func (m *gateMember) hold()    { m.mu.Lock() }
func (m *gateMember) release() { m.mu.Unlock() }

func (m *gateMember) Ingest(b Batch) (IngestAck, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls.Add(1)
	return m.LocalMember.Ingest(b)
}

// TestPipelineBackpressureAndCoalescing: with a member held, appends queue
// up to MaxPending and the next Ingest blocks (backpressure) instead of
// queueing unboundedly; on release the backlog drains in coalesced calls
// (far fewer member calls than batches) and the stream is applied exactly.
func TestPipelineBackpressureAndCoalescing(t *testing.T) {
	inner, err := NewLocalMember("gated", LocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gated := &gateMember{LocalMember: inner}
	c, err := New(Config{
		Members:        []Member{gated},
		Subs:           []stream.Subscription{{ID: "s", Motif: motif.MustPath(0, 1), Delta: 5}},
		RetryDelay:     time.Millisecond,
		MaxPending:     4,
		CoalesceEvents: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	gated.hold()
	const batches = 12
	unblocked := make(chan struct{})
	go func() {
		for i := 0; i < batches; i++ {
			if _, err := c.Ingest([]temporal.Event{{From: 0, To: 1, T: int64(100 * (i + 1)), F: 1}}); err != nil {
				t.Errorf("ingest %d: %v", i, err)
				break
			}
		}
		close(unblocked)
	}()
	select {
	case <-unblocked:
		t.Fatal("12 batches queued against MaxPending=4 without blocking")
	case <-time.After(100 * time.Millisecond):
		// Blocked, as backpressure demands.
	}
	st := c.Stats()
	if st.Backpressure == 0 {
		t.Fatalf("Backpressure = 0 while the feeder is blocked: %+v", st)
	}
	if st.LogEntries > 5 {
		t.Fatalf("LogEntries = %d with MaxPending=4: queue not bounded", st.LogEntries)
	}
	gated.release()
	<-unblocked
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if got, _ := gated.Stats(); got.Events != batches {
		t.Fatalf("member applied %d events, want %d", got.Events, batches)
	}
	// The held backlog must have been coalesced: strictly fewer member
	// calls than batches. (The exact count depends on scheduling; the
	// bound is what matters.)
	if calls := gated.calls.Load(); calls >= batches {
		t.Fatalf("replication made %d member calls for %d batches: coalescing inert", calls, batches)
	}
	if st := c.Stats(); st.LogEvents != 0 || st.LogEntries != 0 {
		t.Fatalf("drained log not trimmed: %+v", st)
	}
}

// TestReplicationLagStats: while a member is held, Stats and the gather
// status expose the pipeline position (acked seq, lag in entries/events)
// that /metrics reports as per-shard gauges.
func TestReplicationLagStats(t *testing.T) {
	inner, err := NewLocalMember("gated", LocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gated := &gateMember{LocalMember: inner}
	fast, err := NewLocalMember("fast", LocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		Members:    []Member{gated, fast},
		Subs:       []stream.Subscription{{ID: "s", Motif: motif.MustPath(0, 1), Delta: 5}},
		RetryDelay: time.Millisecond,
		MaxPending: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	if _, err := c.Ingest([]temporal.Event{{From: 0, To: 1, T: 10, F: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	gated.hold()
	for i := 0; i < 3; i++ {
		if _, err := c.Ingest([]temporal.Event{{From: 0, To: 1, T: int64(100 * (i + 2)), F: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the fast member to ack everything; the gated one stays put.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Stats()
		var g, f MemberInfo
		for _, m := range st.Members {
			switch m.ID {
			case "gated":
				g = m
			case "fast":
				f = m
			}
		}
		if f.AckedSeq == st.HeadSeq && g.ReplLagEntries == 3 {
			if g.ReplLagEvents != 3 {
				t.Fatalf("gated ReplLagEvents = %d, want 3", g.ReplLagEvents)
			}
			if st.LogEntries != 3 {
				t.Fatalf("LogEntries = %d while the slowest member lags 3, want 3", st.LogEntries)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lag never surfaced: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	gated.release()
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	for _, m := range st.Members {
		if m.ReplLagEntries != 0 || m.ReplLagEvents != 0 {
			t.Fatalf("post-drain lag nonzero: %+v", m)
		}
	}
}

// TestClusterPipelineStress races pipelined ingest against flush,
// membership churn (add / graceful remove / kill), and concurrent
// queries, on WAL-durable members, then verifies the served instance set
// still equals the batch algorithm on the full event log. Run under
// -race in CI (cluster-e2e job).
func TestClusterPipelineStress(t *testing.T) {
	mo1 := motif.MustPath(0, 1)
	mo2 := motif.MustPath(0, 1, 2)
	subs := []stream.Subscription{
		{ID: "edge", Motif: mo1, Delta: 5, Phi: 0},
		{ID: "chain", Motif: mo2, Delta: 5, Phi: 0},
		{ID: "cycle", Motif: motif.MustPath(0, 1, 0), Delta: 5, Phi: 0},
	}
	newDurable := func(id string) *LocalMember {
		m, err := NewLocalMember(id, LocalOptions{DataDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	members := []Member{newDurable("s0"), newDurable("s1"), newDurable("s2")}
	c, err := New(Config{
		Members:    members,
		Subs:       subs,
		RetryDelay: time.Millisecond,
		MaxPending: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	const batches = 250
	var log []temporal.Event
	var logMu sync.Mutex
	done := make(chan struct{})
	var wg sync.WaitGroup

	// Flusher: end-of-stream markers interleaved with pipelined ingest.
	// The driver spaces batches > δ apart, so a flush between any two
	// batches never forecloses a window a later event could have grown.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := c.Flush(); err != nil && !errors.Is(err, ErrNoMembers) {
				t.Errorf("flush: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Query load: scatter-gathers and stats racing the pipeline.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, _, err := c.Instances("", 16); err != nil && !errors.Is(err, ErrNoMembers) {
				t.Errorf("instances: %v", err)
				return
			}
			if _, _, err := c.TopK("", 4); err != nil && !errors.Is(err, ErrNoMembers) {
				t.Errorf("topk: %v", err)
				return
			}
			_ = c.Stats()
		}
	}()

	// Membership churn: add a fresh durable member, then retire an old
	// one — alternating graceful drains and kills. The pool never drops
	// below two live members.
	wg.Add(1)
	go func() {
		defer wg.Done()
		pool := []string{"s0", "s1", "s2"}
		locals := map[string]*LocalMember{
			"s0": members[0].(*LocalMember), "s1": members[1].(*LocalMember), "s2": members[2].(*LocalMember),
		}
		for i := 3; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			id := fmt.Sprintf("s%d", i)
			nm := newDurable(id)
			if err := c.AddMember(nm); err != nil {
				t.Errorf("add %s: %v", id, err)
				return
			}
			pool = append(pool, id)
			locals[id] = nm
			victim := pool[0]
			pool = pool[1:]
			if i%2 == 0 {
				locals[victim].SetDown(true)
				if err := c.FailMember(victim); err != nil && !errors.Is(err, ErrNoMembers) {
					// The victim may already have been reaped by the
					// pipeline; both outcomes are correct.
					if _, ok := c.Placement()[victim]; ok {
						t.Errorf("fail %s: %v", victim, err)
						return
					}
				}
			} else {
				if err := c.RemoveMember(victim); err != nil {
					t.Errorf("remove %s: %v", victim, err)
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Driver: pipelined ingest, every batch > δ past the previous one so
	// interleaved flushes are harmless.
	rng := rand.New(rand.NewSource(42))
	base := int64(100)
	for i := 0; i < batches; i++ {
		n := 1 + rng.Intn(4)
		batch := make([]temporal.Event, n)
		for j := range batch {
			batch[j] = temporal.Event{
				From: temporal.NodeID(rng.Intn(3)),
				To:   temporal.NodeID(rng.Intn(3)),
				T:    base + int64(rng.Intn(5)),
				F:    1 + rng.Float64(),
			}
			if batch[j].From == batch[j].To {
				batch[j].To = (batch[j].To + 1) % 3
			}
		}
		if _, err := c.Ingest(batch); err != nil {
			t.Fatalf("ingest batch %d: %v", i, err)
		}
		logMu.Lock()
		log = append(log, batch...)
		logMu.Unlock()
		base += 100
		if i%5 == 0 {
			// Pace the driver so flush/membership/query goroutines
			// genuinely interleave with a non-empty pipeline.
			time.Sleep(time.Millisecond)
		}
	}
	close(done)
	wg.Wait()
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// Oracle: after all that churn the cluster still serves exactly the
	// batch-algorithm instance set over the full log (unbounded history
	// makes every failover and adoption lossless).
	sortedLog := append([]temporal.Event(nil), log...)
	g, err := temporal.NewGraph(sortedLog)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs {
		want, err := core.Collect(g, sub.Motif, core.Params{Delta: sub.Delta, Phi: sub.Phi}, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantKeys := map[string]bool{}
		for _, in := range want {
			wantKeys[batchKey(g, in)] = true
		}
		ds, _, err := c.Instances(sub.ID, 0)
		if err != nil {
			t.Fatalf("instances %s: %v", sub.ID, err)
		}
		gotKeys := map[string]bool{}
		for _, d := range ds {
			k := detKey(d)
			if gotKeys[k] {
				t.Errorf("sub %s: duplicate instance %s", sub.ID, k)
			}
			gotKeys[k] = true
		}
		for k := range wantKeys {
			if !gotKeys[k] {
				t.Errorf("sub %s: missing %s", sub.ID, k)
			}
		}
		for k := range gotKeys {
			if !wantKeys[k] {
				t.Errorf("sub %s: spurious %s", sub.ID, k)
			}
		}
	}
	st := c.Stats()
	if st.Events != int64(len(log)) {
		t.Fatalf("coordinator Events = %d, want %d", st.Events, len(log))
	}
	t.Logf("stress: %d events, %d downs, %d moves, %d backpressure waits",
		st.Events, st.Downs, st.Moves, st.Backpressure)
}

// TestWALFailurePoisonsMember: when the engine applied a batch but the
// WAL append failed, the member fail-stops — a replication retry reports
// the broken shard (failover) instead of re-applying the batch (double
// detections) or rejecting it as diverged.
func TestWALFailurePoisonsMember(t *testing.T) {
	m, err := NewLocalMember("d", LocalOptions{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddSubscription(Handoff{Sub: SubSpec{ID: "s", Motif: "0-1", Delta: 5}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest(Batch{Seq: 1, Events: []temporal.Event{{From: 0, To: 1, T: 10, F: 1}}}); err != nil {
		t.Fatal(err)
	}
	// Break the WAL out from under the member: the next append fails
	// after the engine has already applied.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	bad := Batch{Seq: 2, Events: []temporal.Event{{From: 0, To: 1, T: 20, F: 1}}}
	if _, err := m.Ingest(bad); !errors.Is(err, ErrMemberDown) {
		t.Fatalf("ingest with a broken WAL: err=%v, want ErrMemberDown", err)
	}
	// The retry the pipeline now performs must NOT reach the engine
	// again (the batch was applied once) and must keep reporting the
	// broken shard so the coordinator fails it over.
	if _, err := m.Ingest(bad); !errors.Is(err, ErrMemberDown) {
		t.Fatalf("retry against a poisoned member: err=%v, want ErrMemberDown", err)
	}
	st := m.eng.Stats()
	if st.EventsIngested != 2 {
		t.Fatalf("engine ingested %d events, want 2 (no double-apply through the poisoned path)", st.EventsIngested)
	}
}
