package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"flowmotif/internal/obs"
	"flowmotif/internal/stream"
	"flowmotif/internal/temporal"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Members are the initial shard engines (at least one).
	Members []Member
	// Subs are the subscriptions to place across the members.
	Subs []stream.Subscription
	// Retries is how many times a failing member call is retried before
	// the member is marked down (default 2).
	Retries int
	// RetryDelay is the pause between retries (default 25ms; in-process
	// tests set it near zero).
	RetryDelay time.Duration
	// HistoryLimit bounds the coordinator's retained broadcast history in
	// events (0: unlimited). The history is the failover catch-up source:
	// a subscription re-placed after its member died is regenerated from
	// it, so with an unlimited history failover loses nothing, while a
	// bounded history trades memory for detections older than the bound.
	HistoryLimit int
	// MaxPending bounds each member's replication queue in log entries:
	// Ingest blocks (backpressure) while the slowest live member is this
	// many appended-but-unacked batches behind (default 128).
	MaxPending int
	// CoalesceEvents caps how many events a replicator folds into one
	// member call when draining a backlog (default 2048). Larger values
	// amortize per-call transport overhead (one HTTP round-trip per call
	// for remote members); smaller values bound member call latency and
	// per-call enumeration band size.
	CoalesceEvents int
	// Obs is the metrics registry the replication pipeline's histograms
	// (append→ack lag, delivery time, coalesce sizes) register into; nil
	// creates a private registry, readable via Coordinator.Obs.
	Obs *obs.Registry
	// Tracer is the flight recorder the coordinator's pipeline spans
	// (batch append, per-member replication delivery) and query spans
	// record into; nil creates a private one, readable via
	// Coordinator.Tracer. The serving layer shares it so request spans
	// and pipeline spans land in one ring.
	Tracer *obs.Tracer
}

// memberState tracks one registered member and its replication pipeline
// position (the per-member state machine: replicating → failed → reaped,
// or replicating → stopped on drain/close).
type memberState struct {
	m    Member
	subs map[string]bool // subscription ids owned

	ackedSeq int64 // newest replication-log entry applied and acked
	ackedW   int64 // member watermark at that ack
	failed   bool  // replicator gave up; awaiting failover reap
	failErr  error
	stopped  bool // replicator told to exit (removed / reaped / closed)
	done     chan struct{}
}

// Coordinator partitions subscriptions across member engines, replicates
// ingest to them through the asynchronous pipeline (replication.go), and
// fans queries out by scatter-gather. Mutating operations (Ingest, Flush,
// membership changes, failover) are serialized; queries run concurrently
// with ingest and align results to the slowest shard's watermark.
type Coordinator struct {
	retries    int
	retryDelay time.Duration
	histLimit  int
	maxPending int
	coalesce   int

	// ingestMu serializes log-append order and membership/placement
	// changes; always acquired before mu. minNextT (the admission
	// frontier) is only touched under it.
	ingestMu sync.Mutex
	minNextT int64
	maxDelta int64 // largest subscription δ (set at construction)

	// mu guards the fields below for concurrent readers (queries, stats)
	// and the replicator goroutines; cond (on mu) signals log appends,
	// acks, failures, and stops.
	mu       sync.Mutex
	cond     *sync.Cond
	members  map[string]*memberState
	subs     map[string]stream.Subscription
	owner    map[string]string // subID -> memberID
	unplaced map[string]bool   // subs that lost their member with no survivor

	// placeKey maps subID -> group-aware rendezvous key (the motif shape,
	// see GroupKey): same-shape subscriptions hash identically and so
	// co-locate on one member, where the engine's shared-evaluation
	// planner amortizes phase P1 across them. Immutable after New (the
	// subscription set is fixed at construction), so it is read without mu.
	placeKey map[string]string

	repl      []logEntry // replication log: appended, not yet acked by all
	replBase  int64      // seq of repl[0] when non-empty
	headSeq   int64      // newest appended sequence (0 before any append)
	logEvents int        // total events currently in repl

	history     []temporal.Event // acked broadcast history (failover catch-up)
	histDropped int64            // events trimmed off the history head

	watermark    int64
	started      bool
	batches      int64
	events       int64
	downs        int64 // members marked down
	moves        int64 // subscription re-placements
	failedCount  int   // members flagged failed, not yet reaped
	backpressure int64 // Ingest calls that blocked on a full queue
	closed       bool

	// Replication-pipeline instrumentation (histograms instead of the old
	// point gauges): per-entry append→ack lag, per-delivery wall-clock,
	// and events coalesced per delivery.
	obsReg     *obs.Registry
	mxReplLag  *obs.Histogram
	mxDeliver  *obs.Histogram
	mxCoalesce *obs.Histogram
	tracer     *obs.Tracer
}

// New builds a coordinator over the given members and places the
// subscriptions by rendezvous hashing. Member failures during construction
// are fatal (there is nothing to fail over from yet).
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Members) == 0 {
		return nil, errors.New("cluster: at least one member required")
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 2
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 25 * time.Millisecond
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 128
	}
	if cfg.CoalesceEvents <= 0 {
		cfg.CoalesceEvents = 2048
	}
	c := &Coordinator{
		retries:    cfg.Retries,
		retryDelay: cfg.RetryDelay,
		histLimit:  cfg.HistoryLimit,
		maxPending: cfg.MaxPending,
		coalesce:   cfg.CoalesceEvents,
		members:    map[string]*memberState{},
		subs:       map[string]stream.Subscription{},
		owner:      map[string]string{},
		unplaced:   map[string]bool{},
		placeKey:   map[string]string{},
		minNextT:   math.MinInt64,
		replBase:   1,
	}
	c.cond = sync.NewCond(&c.mu)
	c.obsReg = cfg.Obs
	if c.obsReg == nil {
		c.obsReg = obs.NewRegistry()
	}
	c.tracer = cfg.Tracer
	if c.tracer == nil {
		c.tracer = obs.NewTracer(0)
	}
	c.mxReplLag = c.obsReg.Histogram("flowmotif_replication_lag_seconds",
		"Append→ack lag per replication-log entry: coordinator log append to the owning member's applied ack.",
		obs.LatencyBuckets)
	c.mxDeliver = c.obsReg.Histogram("flowmotif_replication_deliver_seconds",
		"One replicator delivery call (member ingest including transport and retries).", obs.LatencyBuckets)
	c.mxCoalesce = c.obsReg.Histogram("flowmotif_replication_coalesce_events",
		"Events folded into one replicator delivery call.", obs.SizeBuckets)
	for _, m := range cfg.Members {
		if m.ID() == "" {
			return nil, errors.New("cluster: member with empty id")
		}
		if _, dup := c.members[m.ID()]; dup {
			return nil, fmt.Errorf("cluster: duplicate member id %q", m.ID())
		}
		c.members[m.ID()] = &memberState{
			m:      m,
			subs:   map[string]bool{},
			ackedW: math.MinInt64,
			done:   make(chan struct{}),
		}
	}
	for i, sub := range cfg.Subs {
		if sub.Motif == nil {
			return nil, fmt.Errorf("cluster: subscription %d: nil motif", i)
		}
		if sub.ID == "" {
			sub.ID = sub.Motif.Name()
		}
		if _, dup := c.subs[sub.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate subscription id %q", sub.ID)
		}
		c.subs[sub.ID] = sub
		c.placeKey[sub.ID] = GroupKey(sub)
		if sub.Delta > c.maxDelta {
			c.maxDelta = sub.Delta
		}
	}
	ids := c.memberIDsLocked()
	for _, subID := range sortedKeys(c.subs) {
		target := rendezvousOwner(c.groupKeyOf(subID), ids)
		h := Handoff{Sub: SpecOf(c.subs[subID])}
		if err := c.members[target].m.AddSubscription(h); err != nil {
			return nil, fmt.Errorf("cluster: placing %q on %q: %w", subID, target, err)
		}
		c.members[target].subs[subID] = true
		c.owner[subID] = target
	}
	for _, ms := range c.members {
		go c.replicate(ms)
	}
	return c, nil
}

func (c *Coordinator) memberIDsLocked() []string {
	return sortedKeys(c.members)
}

// groupKeyOf resolves a subscription to its group-aware rendezvous key
// (placeKey is immutable after New; safe without mu).
func (c *Coordinator) groupKeyOf(subID string) string {
	if k, ok := c.placeKey[subID]; ok {
		return k
	}
	return subID
}

// retry calls fn up to 1+Retries times while it keeps failing with
// ErrMemberDown; any other outcome returns immediately. Only *idempotent*
// member calls may be retried: queries, stats, Flush (a second flush at
// the same watermark is a no-op), and — since batches became seq-tagged —
// replicated ingest (deliver, in replication.go, which retries on its
// own). The handoff calls remain deliberately single-attempt: a member
// may have applied AddSubscription before the ack was lost, and resending
// would be rejected as a duplicate, so a transport failure marks the
// member down instead; failover regeneration from history is safe
// regardless of whether the lost call was applied.
func (c *Coordinator) retry(fn func() error) error {
	var err error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if err = fn(); !errors.Is(err, ErrMemberDown) {
			return err
		}
		if attempt < c.retries {
			time.Sleep(c.retryDelay)
		}
	}
	return err
}

// validateBatch replicates the engines' batch admission rules so the
// coordinator rejects a bad batch before broadcasting — keeping members in
// lockstep is what makes per-member semantic errors impossible (every
// member applies identical rules to the identical stream). The returned
// slice is a sorted copy.
func (c *Coordinator) validateBatch(events []temporal.Event) ([]temporal.Event, error) {
	batch := append([]temporal.Event(nil), events...)
	sort.SliceStable(batch, func(i, j int) bool { return batch[i].T < batch[j].T })
	if batch[0].T < c.minNextT {
		return nil, fmt.Errorf("%w: batch reaches back to t=%d, cluster frontier is %d",
			stream.ErrBehindFrontier, batch[0].T, c.minNextT)
	}
	for i := range batch {
		ev := &batch[i]
		if ev.From < 0 || ev.To < 0 {
			return nil, fmt.Errorf("cluster: batch event %d: negative node id", i)
		}
		if ev.F <= 0 || math.IsNaN(ev.F) || math.IsInf(ev.F, 0) {
			return nil, fmt.Errorf("cluster: batch event %d: flow must be positive and finite (got %v)", i, ev.F)
		}
	}
	return batch, nil
}

// Ingest validates one batch, appends it to the replication log, and
// acknowledges immediately; per-member replicators deliver it to every
// shard concurrently (replication.go). The ack carries the log sequence
// and the new cluster watermark — detections finalize asynchronously as
// members apply the log (query with Stats, or Drain for a barrier). When
// the slowest live member's backlog reaches MaxPending entries, Ingest
// blocks until it drains or the member is failed over: backpressure, not
// unbounded queueing. The log, not any member, is the stream of record:
// once a batch is acked here it survives member failures (failover
// regenerates subscriptions from the coordinator's history).
func (c *Coordinator) Ingest(events []temporal.Event) (IngestAck, error) {
	return c.IngestTraced(events, obs.SpanContext{})
}

// IngestTraced is Ingest under a caller-provided span context: the serving
// layer passes its "http.ingest" request span so the batch's whole
// lifecycle — append, replication deliveries, member-side finalize and
// emit — lands in one trace with the HTTP request as the root.
//
//flowmotif:hotpath
func (c *Coordinator) IngestTraced(events []temporal.Event, parent obs.SpanContext) (IngestAck, error) {
	if len(events) == 0 {
		return IngestAck{Watermark: c.Watermark()}, nil
	}
	// The batch's trace starts here (unless a request span already roots
	// it): "ingest.append" anchors the replication deliveries and the
	// member-side ingest/finalize spans. Its trace ID travels back in the
	// ack, keying the full stitched tree in /debug/traces.
	var root *obs.TraceSpan
	if c.tracer != nil {
		root = c.tracer.StartSpan("ingest.append", parent,
			obs.L("events", strconv.Itoa(len(events))))
	}
	c.ingestMu.Lock()
	defer c.ingestMu.Unlock()
	c.mu.Lock()
	anyFailed := c.failedCount > 0
	n := len(c.members)
	c.mu.Unlock()
	if anyFailed {
		// Reap before admitting more work so failover latency is bounded
		// by one batch, not by queue depth. Non-fatal failover errors
		// (subscriptions parked unplaced) surface through Stats/healthz
		// rather than failing an otherwise-acceptable batch.
		_ = c.reapFailedLocked()
		c.mu.Lock()
		n = len(c.members)
		c.mu.Unlock()
	}
	if n == 0 {
		endSpanErr(root, ErrNoMembers)
		return IngestAck{}, ErrNoMembers
	}
	batch, err := c.validateBatch(events)
	if err != nil {
		endSpanErr(root, err)
		return IngestAck{}, err
	}
	last := batch[len(batch)-1].T
	c.mu.Lock()
	if c.pipelineFullLocked() {
		c.backpressure++
		for c.pipelineFullLocked() && !c.closed {
			c.cond.Wait()
		}
	}
	c.headSeq++
	seq := c.headSeq
	if len(c.repl) == 0 {
		c.replBase = seq
	}
	// appendedAt feeds only the replication-lag histogram; skip the clock
	// read when no consumer is armed.
	var appended time.Time
	if c.mxReplLag != nil {
		appended = time.Now()
	}
	c.repl = append(c.repl, logEntry{seq: seq, events: batch, appendedAt: appended, sc: root.Context()})
	c.logEvents += len(batch)
	c.watermark = last
	c.started = true
	c.batches++
	c.events += int64(len(batch))
	c.cond.Broadcast()
	c.mu.Unlock()
	c.minNextT = last
	if root != nil {
		root.Annotate(obs.L("seq", strconv.FormatInt(seq, 10)))
	}
	root.End()
	return IngestAck{Ingested: len(batch), Watermark: last, Seq: seq, Trace: root.Context().Trace}, nil
}

// Flush broadcasts the end-of-stream marker: the replication pipeline is
// drained (every member applies the full log; members whose replicators
// gave up are failed over), then every member closes its still-open
// windows. Later batches must clear the watermark by more than the
// largest subscription δ cluster-wide.
func (c *Coordinator) Flush() (IngestAck, error) {
	c.ingestMu.Lock()
	defer c.ingestMu.Unlock()
	c.mu.Lock()
	n := len(c.members)
	c.mu.Unlock()
	if n == 0 {
		return IngestAck{}, ErrNoMembers
	}
	c.drainLocked()
	reapErr := c.reapFailedLocked()
	c.mu.Lock()
	if len(c.members) == 0 {
		c.mu.Unlock()
		return IngestAck{}, errors.Join(ErrNoMembers, reapErr)
	}
	ids := c.memberIDsLocked()
	states := make([]*memberState, 0, len(ids))
	for _, id := range ids {
		states = append(states, c.members[id])
	}
	c.mu.Unlock()
	var agg IngestAck
	var failed []string
	for i, ms := range states {
		var ack IngestAck
		err := c.retry(func() error {
			var e error
			ack, e = ms.m.Flush()
			return e
		})
		if errors.Is(err, ErrMemberDown) {
			failed = append(failed, ids[i])
			continue
		}
		if err != nil {
			return IngestAck{}, err
		}
		agg.Detections += ack.Detections
	}
	if len(failed) == len(states) {
		return IngestAck{}, fmt.Errorf("%w: all %d members failed the flush", ErrNoMembers, len(states))
	}
	c.mu.Lock()
	wm, started := c.watermark, c.started
	c.mu.Unlock()
	if started {
		if m := temporal.SatAdd(wm, c.maxDelta+1); m > c.minNextT {
			c.minNextT = m
		}
	}
	agg.Watermark = wm
	if len(failed) > 0 {
		if err := c.failLocked(failed); err != nil {
			return agg, errors.Join(err, reapErr)
		}
		// The re-placed subscriptions were regenerated on members that had
		// already flushed, so close their windows too. Terminal bands are
		// only re-enumerated for the moved subscriptions (the survivors'
		// own emitted bounds are already at the watermark).
		c.mu.Lock()
		states = states[:0]
		for _, id := range c.memberIDsLocked() {
			states = append(states, c.members[id])
		}
		c.mu.Unlock()
		for _, ms := range states {
			// Ingest is quiesced for the whole flush by design: the
			// marker must not interleave with new batches, so this RPC
			// intentionally runs under ingestMu (never under c.mu).
			if ack, err := ms.m.Flush(); err == nil { //flowvet:ignore lockhold flush quiesces ingest by design
				agg.Detections += ack.Detections
			}
		}
	}
	return agg, reapErr
}

// trimHistoryLocked enforces HistoryLimit; the caller holds mu.
func (c *Coordinator) trimHistoryLocked() {
	if c.histLimit <= 0 || len(c.history) <= c.histLimit {
		return
	}
	drop := len(c.history) - c.histLimit
	c.histDropped += int64(drop)
	c.history = append(c.history[:0:0], c.history[drop:]...)
}

// failLocked marks members down and re-places their subscriptions onto
// survivors, regenerating each from the coordinator's broadcast history.
// The caller holds ingestMu. Cascading failures (a re-placement target
// dying mid-handoff) feed back into the queue until every subscription is
// placed or no member remains; a subscription whose re-placement is
// rejected semantically stays parked as unplaced (adopted by the next
// AddMember) and is reported in the returned error without aborting the
// rest of the queue.
func (c *Coordinator) failLocked(ids []string) error {
	var errs []error
	queue := append([]string(nil), ids...)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		c.mu.Lock()
		ms, ok := c.members[id]
		if !ok {
			c.mu.Unlock()
			continue
		}
		delete(c.members, id)
		if ms.failed {
			c.failedCount--
		}
		ms.stopped = true
		c.downs++
		// The departed member no longer gates log trimming or backpressure.
		c.trimLogLocked()
		c.cond.Broadcast()
		orphans := sortedKeys(ms.subs)
		// Unown the orphans immediately: until re-placement succeeds they
		// are unplaced, never owner entries pointing at a deleted member
		// (queries for them fail cleanly instead of dereferencing it).
		for _, subID := range orphans {
			delete(c.owner, subID)
			c.unplaced[subID] = true
		}
		survivors := c.memberIDsLocked()
		c.mu.Unlock()
		// Index loop: a target dying mid-handoff re-queues the subscription
		// by appending to orphans, which a range clause would never visit.
		for i := 0; i < len(orphans); i++ {
			subID := orphans[i]
			target, err := c.replaceLocked(subID, survivors)
			if err != nil {
				if target != "" {
					// The chosen target died mid-handoff: fail it too and
					// retry this subscription against the rest.
					queue = append(queue, target)
					orphans = append(orphans, subID)
					c.mu.Lock()
					survivors = nil
					for _, sid := range c.memberIDsLocked() {
						if sid != target {
							survivors = append(survivors, sid)
						}
					}
					c.mu.Unlock()
					continue
				}
				// Semantic rejection: the subscription stays unplaced
				// (replaceLocked parked it); keep draining the queue.
				errs = append(errs, err)
			}
		}
	}
	c.mu.Lock()
	if len(c.members) == 0 && len(c.subs) > 0 {
		errs = append(errs, fmt.Errorf("%w: %d subscriptions unplaced", ErrNoMembers, len(c.unplaced)))
	}
	c.mu.Unlock()
	return errors.Join(errs...)
}

// replaceLocked re-creates one subscription (whose previous member is
// gone) on a survivor, regenerated from the coordinator's history. It
// returns the chosen target with a non-nil error when the target itself
// failed, so the caller can cascade; on a semantic rejection the
// subscription stays parked as unplaced (a later AddMember adopts it)
// rather than being dropped. The caller holds ingestMu.
func (c *Coordinator) replaceLocked(subID string, survivors []string) (string, error) {
	c.mu.Lock()
	sub, ok := c.subs[subID]
	if !ok {
		c.mu.Unlock()
		return "", fmt.Errorf("%w: %q", ErrUnknownSub, subID)
	}
	delete(c.owner, subID)
	c.unplaced[subID] = true
	target := rendezvousOwner(c.groupKeyOf(subID), survivors)
	if target == "" {
		c.mu.Unlock()
		return "", nil
	}
	h := Handoff{Sub: SpecOf(sub)}
	if len(c.history) > 0 {
		h.Primed = true
		h.Emitted = temporal.SatSub(c.history[0].T, 1)
		h.Catchup = append([]temporal.Event(nil), c.history...)
	}
	tm := c.members[target]
	c.mu.Unlock()
	// Single attempt: AddSubscription is not idempotent (a resend after a
	// lost ack would be rejected as a duplicate).
	if err := tm.m.AddSubscription(h); err != nil {
		if errors.Is(err, ErrMemberDown) {
			return target, err
		}
		return "", fmt.Errorf("cluster: re-placing %q on %q: %w", subID, target, err)
	}
	c.mu.Lock()
	tm.subs[subID] = true
	c.owner[subID] = target
	delete(c.unplaced, subID)
	c.moves++
	c.mu.Unlock()
	return target, nil
}

// FailMember marks a member down immediately (without waiting for its
// replicator to give up) and re-places its subscriptions. The member's
// already-reported detections are regenerated on the survivors from the
// coordinator's history. Survivors are drained to the log head first so
// the regenerated handoffs carry the complete stream.
func (c *Coordinator) FailMember(id string) error {
	c.ingestMu.Lock()
	defer c.ingestMu.Unlock()
	c.mu.Lock()
	_, ok := c.members[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: unknown member %q", id)
	}
	c.drainLocked()
	// The drain barrier excludes members whose replicators failed along
	// the way; reap them together with the explicit target.
	ids := []string{id}
	c.mu.Lock()
	for mid, ms := range c.members {
		if ms.failed && mid != id {
			ids = append(ids, mid)
		}
	}
	c.mu.Unlock()
	sort.Strings(ids)
	return c.failLocked(ids)
}

// AddMember registers a new member and rebalances: rendezvous hashing
// moves exactly the subscriptions the new member now wins, each handed off
// live (finalization bound + catch-up events + sink state) from its
// current owner. Ingest is quiesced for the duration.
func (c *Coordinator) AddMember(m Member) error {
	// Resolve the ID once before taking any lock: Member is the RPC
	// surface, so for a remote member ID() may leave the process.
	id := m.ID()
	c.ingestMu.Lock()
	defer c.ingestMu.Unlock()
	c.mu.Lock()
	if _, dup := c.members[id]; dup || id == "" {
		c.mu.Unlock()
		return fmt.Errorf("cluster: member id %q empty or already registered", id)
	}
	c.mu.Unlock()
	// Quiesce the pipeline: survivors at the log head, failed members
	// reaped, history complete. Reap errors (e.g. the last old member died
	// leaving subscriptions unplaced) are deliberately not fatal — the
	// member being added is about to adopt the orphans.
	c.drainLocked()
	_ = c.reapFailedLocked()
	c.mu.Lock()
	ms := &memberState{
		m:        m,
		subs:     map[string]bool{},
		ackedSeq: c.headSeq, // joins at the head; history arrives via handoffs
		ackedW:   math.MinInt64,
		done:     make(chan struct{}),
	}
	c.members[id] = ms
	ids := c.memberIDsLocked()
	subIDs := sortedKeys(c.subs)
	c.mu.Unlock()
	go c.replicate(ms)

	// Give previously unplaced subscriptions (a total-failure remnant) a
	// home first: they regenerate from history.
	c.mu.Lock()
	orphans := sortedKeys(c.unplaced)
	c.mu.Unlock()
	for _, subID := range orphans {
		if _, err := c.replaceLocked(subID, ids); err != nil {
			return err
		}
	}

	for _, subID := range subIDs {
		c.mu.Lock()
		from, placed := c.owner[subID]
		c.mu.Unlock()
		if !placed {
			continue
		}
		target := rendezvousOwner(c.groupKeyOf(subID), ids)
		if target == from {
			continue
		}
		if err := c.moveLocked(subID, from, target); err != nil {
			return err
		}
	}
	return nil
}

// RemoveMember drains a member gracefully: every subscription it owns is
// handed off live to its rendezvous owner among the remaining members,
// then the member is deregistered (the caller keeps the Member object and
// may close it). Removing the last member while subscriptions exist is
// refused.
func (c *Coordinator) RemoveMember(id string) error {
	c.ingestMu.Lock()
	defer c.ingestMu.Unlock()
	// Quiesce: the departing member and every survivor must have applied
	// the full log before handoffs move live subscription state between
	// them. Members that failed during the drain are reaped first (the
	// drain target itself may be among them, turning the graceful drain
	// into a failover — the correct degradation).
	c.drainLocked()
	if err := c.reapFailedLocked(); err != nil {
		return err
	}
	c.mu.Lock()
	ms, ok := c.members[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown member %q", id)
	}
	if len(c.members) == 1 && len(c.subs) > 0 {
		c.mu.Unlock()
		return fmt.Errorf("cluster: cannot drain the last member (%d subscriptions placed)", len(c.subs))
	}
	owned := sortedKeys(ms.subs)
	var rest []string
	for _, mid := range c.memberIDsLocked() {
		if mid != id {
			rest = append(rest, mid)
		}
	}
	c.mu.Unlock()
	for _, subID := range owned {
		target := rendezvousOwner(c.groupKeyOf(subID), rest)
		if err := c.moveLocked(subID, id, target); err != nil {
			return err
		}
	}
	c.mu.Lock()
	if ms, ok := c.members[id]; ok {
		delete(c.members, id)
		ms.stopped = true
		c.trimLogLocked()
		c.cond.Broadcast()
	}
	c.mu.Unlock()
	return nil
}

// moveLocked hands one subscription off between two live members. If the
// source turns out to be dead, the move degrades to a history-regenerated
// re-placement (failover semantics); if the installation on the target
// fails, the handoff is restored to the source, and when even that is
// impossible the subscription is parked as unplaced (adopted by the next
// AddMember) rather than dropped. The caller holds ingestMu. Handoff
// calls are single-attempt — neither RemoveSubscription nor
// AddSubscription is idempotent under a lost ack.
func (c *Coordinator) moveLocked(subID, from, to string) error {
	c.mu.Lock()
	src, okFrom := c.members[from]
	dst, okTo := c.members[to]
	c.mu.Unlock()
	if !okFrom || !okTo {
		return fmt.Errorf("cluster: move %q: member missing (%s -> %s)", subID, from, to)
	}
	h, err := src.m.RemoveSubscription(subID)
	if errors.Is(err, ErrMemberDown) {
		return c.failLocked([]string{from})
	}
	if err != nil {
		return fmt.Errorf("cluster: move %q off %q: %w", subID, from, err)
	}
	c.mu.Lock()
	delete(src.subs, subID)
	delete(c.owner, subID)
	c.unplaced[subID] = true // in flight; cleared on successful install
	c.mu.Unlock()
	place := func(ms *memberState, id string) bool {
		if err := ms.m.AddSubscription(h); err != nil {
			return false
		}
		c.mu.Lock()
		ms.subs[subID] = true
		c.owner[subID] = id
		delete(c.unplaced, subID)
		c.moves++
		c.mu.Unlock()
		return true
	}
	if place(dst, to) {
		return nil
	}
	// Installation on the target failed (down or rejected): put the
	// handoff back on the live source.
	if place(src, from) {
		return c.failLocked([]string{to})
	}
	// Both sides refused: the subscription stays unplaced and will be
	// regenerated from history by the next AddMember.
	return fmt.Errorf("cluster: move %q: install failed on %q and restore failed on %q; parked unplaced",
		subID, to, from)
}

// Instances answers the recent-detections query. With sub set it routes to
// the owning shard; with sub empty it scatter-gathers every shard,
// aligns to the slowest shard's watermark, and concatenates newest-first.
// Returns the detections and the Gather status they are aligned to: a
// fresh-but-healthy cluster answers (nil, {Started: false}), which is
// distinguishable from a degraded gather (Degraded set when shards failed
// the query, subscriptions are unplaced, or a member awaits failover).
func (c *Coordinator) Instances(sub string, limit int) ([]*stream.Detection, Gather, error) {
	return c.InstancesTraced(sub, limit, obs.SpanContext{})
}

// InstancesTraced is Instances under a caller-provided span context (the
// serving layer's request span): the scatter-gather gets a "query.
// instances" span with one "query.shard" child per member, each shard's
// context propagated over the traced transport. A zero parent records no
// spans — query traces exist only inside a request trace.
func (c *Coordinator) InstancesTraced(sub string, limit int, parent obs.SpanContext) ([]*stream.Detection, Gather, error) {
	root := c.spanIf("query.instances", parent, obs.L("sub", sub))
	defer root.End()
	if sub != "" {
		m, err := c.ownerOf(sub)
		if err != nil {
			endSpanErr(root, err)
			return nil, Gather{}, err
		}
		sp := c.spanIf("query.shard", root.Context(), obs.L("member", m.ID()))
		var r QueryResult
		if err := c.retry(func() error {
			var e error
			r, e = memberInstances(m, sub, limit, sp.Context())
			return e
		}); err != nil {
			endSpanErr(sp, err)
			endSpanErr(root, err)
			return nil, Gather{}, err
		}
		sp.End()
		return r.Detections, Gather{Watermark: r.Watermark, Started: r.Started, Degraded: c.degraded()}, nil
	}
	results, dropped, err := c.gather(root.Context(), func(m Member, sc obs.SpanContext) (QueryResult, error) {
		return memberInstances(m, "", limit, sc)
	})
	if err != nil {
		endSpanErr(root, err)
		return nil, Gather{}, err
	}
	alignedW, started, lists := alignWatermark(results)
	g := Gather{Watermark: alignedW, Started: started, Degraded: dropped > 0 || c.degraded()}
	return mergeRecent(lists, limit), g, nil
}

// TopK answers the best-detections query. With sub set it routes to the
// owning shard; with sub empty every shard contributes its local best k
// (merged across its own subscriptions) and the coordinator merges them
// into the global top k — correct because a subscription lives on exactly
// one shard, so the global best k is a subset of the union of local best
// ks. Returns the detections and the aligned Gather status (see
// Instances for its no-data/degraded semantics).
func (c *Coordinator) TopK(sub string, k int) ([]*stream.Detection, Gather, error) {
	return c.TopKTraced(sub, k, obs.SpanContext{})
}

// TopKTraced is TopK under a caller-provided span context (see
// InstancesTraced for the span shape).
func (c *Coordinator) TopKTraced(sub string, k int, parent obs.SpanContext) ([]*stream.Detection, Gather, error) {
	root := c.spanIf("query.topk", parent, obs.L("sub", sub))
	defer root.End()
	if sub != "" {
		m, err := c.ownerOf(sub)
		if err != nil {
			endSpanErr(root, err)
			return nil, Gather{}, err
		}
		sp := c.spanIf("query.shard", root.Context(), obs.L("member", m.ID()))
		var r QueryResult
		if err := c.retry(func() error {
			var e error
			r, e = memberTopK(m, sub, k, sp.Context())
			return e
		}); err != nil {
			endSpanErr(sp, err)
			endSpanErr(root, err)
			return nil, Gather{}, err
		}
		sp.End()
		return r.Detections, Gather{Watermark: r.Watermark, Started: r.Started, Degraded: c.degraded()}, nil
	}
	results, dropped, err := c.gather(root.Context(), func(m Member, sc obs.SpanContext) (QueryResult, error) {
		return memberTopK(m, "", k, sc)
	})
	if err != nil {
		endSpanErr(root, err)
		return nil, Gather{}, err
	}
	alignedW, started, lists := alignWatermark(results)
	g := Gather{Watermark: alignedW, Started: started, Degraded: dropped > 0 || c.degraded()}
	return MergeTopK(lists, k), g, nil
}

// degraded reports whether query answers may be incomplete: subscriptions
// are unplaced (their member died with no survivor to adopt them) or a
// member is flagged failed and awaiting failover.
func (c *Coordinator) degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.unplaced) > 0 || c.failedCount > 0
}

// ownerOf resolves a subscription to its owning member.
func (c *Coordinator) ownerOf(sub string) (Member, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.owner[sub]
	if !ok {
		if c.unplaced[sub] {
			return nil, fmt.Errorf("%w: subscription %q lost its member", ErrNoMembers, sub)
		}
		return nil, fmt.Errorf("%w: %q", ErrUnknownSub, sub)
	}
	ms, live := c.members[id]
	if !live {
		// Defensive: an owner entry must never outlive its member.
		return nil, fmt.Errorf("%w: subscription %q owner %q is gone", ErrNoMembers, sub, id)
	}
	return ms.m, nil
}

// gather fans a query out to every member concurrently. Members flagged
// failed (awaiting failover) are skipped up front, and a member that
// fails the query is dropped from the answer rather than failing the
// whole gather — the caller reports the answer as degraded instead of
// stalling on a flapping shard. Only a gather nobody answers is an error.
// Queries never mutate membership; repair belongs to the replication
// pipeline's reap.
func (c *Coordinator) gather(parent obs.SpanContext, q func(Member, obs.SpanContext) (QueryResult, error)) ([]QueryResult, int, error) {
	c.mu.Lock()
	members := make([]Member, 0, len(c.members))
	dropped := 0
	for _, id := range c.memberIDsLocked() {
		if ms := c.members[id]; ms.failed {
			dropped++
			continue
		}
		members = append(members, c.members[id].m)
	}
	c.mu.Unlock()
	if len(members) == 0 {
		return nil, dropped, ErrNoMembers
	}
	results := make([]QueryResult, len(members))
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m Member) {
			defer wg.Done()
			sp := c.spanIf("query.shard", parent, obs.L("member", m.ID()))
			errs[i] = c.retry(func() error {
				var e error
				results[i], e = q(m, sp.Context())
				return e
			})
			if errs[i] != nil {
				sp.Annotate(obs.L("error", errs[i].Error()))
			}
			sp.End()
		}(i, m)
	}
	wg.Wait()
	kept := results[:0]
	var firstErr error
	for i, err := range errs {
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: gather from %s: %w", members[i].ID(), err)
			}
			dropped++
			continue
		}
		kept = append(kept, results[i])
	}
	if len(kept) == 0 {
		return nil, dropped, errors.Join(ErrNoMembers, firstErr)
	}
	return kept, dropped, nil
}

// Subscriptions lists the cluster's subscriptions with their current
// owners ("" while unplaced).
func (c *Coordinator) Subscriptions() map[string]SubSpec {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]SubSpec, len(c.subs))
	for id, sub := range c.subs {
		out[id] = SpecOf(sub)
	}
	return out
}

// Placement returns the current subscription → member assignment.
func (c *Coordinator) Placement() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.owner))
	for sub, id := range c.owner {
		out[sub] = id
	}
	return out
}

// Obs returns the coordinator's metrics registry (the one from
// Config.Obs, or the private one created in New) so the serving layer can
// expose the replication histograms without owning their registration.
func (c *Coordinator) Obs() *obs.Registry {
	return c.obsReg
}

// Watermark returns the cluster watermark (the largest broadcast
// timestamp; 0 before the first event).
func (c *Coordinator) Watermark() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.watermark
}

// MemberInfo is one member's row in ClusterStats.
type MemberInfo struct {
	ID         string   `json:"id"`
	Subs       []string `json:"subs"`
	Watermark  int64    `json:"watermark"`
	Started    bool     `json:"started"`
	Lag        int64    `json:"lag"` // cluster watermark − member watermark
	Events     int64    `json:"events"`
	Retained   int      `json:"retained"`
	Detections int64    `json:"detections"`
	// Shared-evaluation planner gauges of the member's engine (DESIGN.md
	// §11): plan groups served, snapshots built, bands-per-snapshot reuse
	// ratio, and matches served from a shared per-shape list.
	PlanGroups     int     `json:"planGroups,omitempty"`
	SnapshotBuilds int64   `json:"snapshotBuilds,omitempty"`
	SnapshotReuse  float64 `json:"snapshotReuse,omitempty"`
	MatchesShared  int64   `json:"matchesShared,omitempty"`
	// Replication-pipeline position (DESIGN.md §10): the newest log entry
	// this member has applied and acked, the watermark it reported with
	// that ack (the coordinator's own record — available even when the
	// live Stats probe above fails and Lag reads -1), and how far behind
	// the log head it is in entries and events. Failing marks a member
	// whose replicator gave up, pending failover reap.
	AckedSeq       int64 `json:"ackedSeq"`
	AckedWatermark int64 `json:"ackedWatermark"`
	ReplLagEntries int64 `json:"replLagEntries"`
	ReplLagEvents  int64 `json:"replLagEvents"`
	Failing        bool  `json:"failing,omitempty"`
	// Metrics is the member's full metric snapshot, carried for the
	// coordinator's merged Prometheus exposition. Excluded from the JSON
	// stats payload: /metrics?format=prometheus is the serving surface.
	Metrics []obs.MetricSnapshot `json:"-"`
	// Cost attribution rows (DESIGN.md §14), carried for the coordinator's
	// /debug/top ranking; like Metrics, excluded from the JSON stats
	// payload (/debug/top is the serving surface).
	CostSeconds float64                 `json:"costSeconds,omitempty"`
	SubCosts    []SubCostInfo           `json:"-"`
	GroupCosts  []stream.GroupCostStats `json:"-"`
}

// ClusterStats snapshots cluster progress and health.
type ClusterStats struct {
	Members   []MemberInfo      `json:"members"`
	Placement map[string]string `json:"placement"`
	Unplaced  []string          `json:"unplaced,omitempty"`
	// PlacementGroups is the number of distinct group-aware placement keys
	// (motif shapes) across the subscription set — the unit rendezvous
	// hashing distributes, so same-shape subscriptions co-locate and share
	// their member's evaluation plan.
	PlacementGroups int   `json:"placementGroups"`
	Subscriptions   int   `json:"subscriptions"`
	Watermark       int64 `json:"watermark"`
	Started         bool  `json:"started"`
	Batches         int64 `json:"batches"`
	Events          int64 `json:"events"`
	HistoryEvents   int   `json:"historyEvents"`
	HistoryTrim     int64 `json:"historyTrimmed"`
	Downs           int64 `json:"downs"`
	Moves           int64 `json:"moves"`
	// Replication-log gauges: the newest appended sequence, the entries
	// and events still queued for at least one member, how often Ingest
	// blocked on a full member queue, and whether query answers may be
	// incomplete right now.
	HeadSeq      int64 `json:"headSeq"`
	LogEntries   int   `json:"logEntries"`
	LogEvents    int   `json:"logEvents"`
	Backpressure int64 `json:"backpressureWaits"`
	Degraded     bool  `json:"degraded"`
}

// Stats gathers live per-member statistics. Members that fail the stats
// probe are reported with Started=false and Lag −1 rather than failing the
// whole snapshot.
func (c *Coordinator) Stats() ClusterStats {
	return c.StatsTraced(obs.SpanContext{})
}

// StatsTraced is Stats under a caller-provided span context: the
// per-member probes become "query.shard" spans under a "query.stats"
// span, each shard's context propagated over the traced transport.
func (c *Coordinator) StatsTraced(parent obs.SpanContext) ClusterStats {
	root := c.spanIf("query.stats", parent)
	defer root.End()
	c.mu.Lock()
	ids := c.memberIDsLocked()
	ms := make([]Member, len(ids))
	repl := make([]MemberInfo, len(ids))
	for i, id := range ids {
		s := c.members[id]
		ms[i] = s.m
		repl[i] = MemberInfo{
			AckedSeq:       s.ackedSeq,
			AckedWatermark: s.ackedW,
			ReplLagEntries: c.headSeq - s.ackedSeq,
			Failing:        s.failed,
		}
		for _, e := range c.repl {
			if e.seq > s.ackedSeq {
				repl[i].ReplLagEvents += int64(len(e.events))
			}
		}
	}
	groups := map[string]bool{}
	for _, k := range c.placeKey {
		groups[k] = true
	}
	st := ClusterStats{
		Placement:       map[string]string{},
		PlacementGroups: len(groups),
		Subscriptions:   len(c.subs),
		Watermark:       c.watermark,
		Started:         c.started,
		Batches:         c.batches,
		Events:          c.events,
		HistoryEvents:   len(c.history),
		HistoryTrim:     c.histDropped,
		Downs:           c.downs,
		Moves:           c.moves,
		HeadSeq:         c.headSeq,
		LogEntries:      len(c.repl),
		LogEvents:       c.logEvents,
		Backpressure:    c.backpressure,
		Degraded:        len(c.unplaced) > 0 || c.failedCount > 0,
	}
	for sub, id := range c.owner {
		st.Placement[sub] = id
	}
	st.Unplaced = sortedKeys(c.unplaced)
	c.mu.Unlock()
	for i, m := range ms {
		info := repl[i]
		info.ID = ids[i]
		info.Lag = -1
		sp := c.spanIf("query.shard", root.Context(), obs.L("member", ids[i]))
		if s, err := memberStats(m, sp.Context()); err == nil {
			info.Subs = s.Subs
			info.Watermark = s.Watermark
			info.Started = s.Started
			info.Events = s.Events
			info.Retained = s.Retained
			info.Detections = s.Detections
			info.PlanGroups = s.PlanGroups
			info.SnapshotBuilds = s.SnapshotBuilds
			info.SnapshotReuse = s.SnapshotReuse
			info.MatchesShared = s.MatchesShared
			info.Metrics = s.Metrics
			info.CostSeconds = s.CostSeconds
			info.SubCosts = s.SubCosts
			info.GroupCosts = s.GroupCosts
			if s.Started {
				info.Lag = st.Watermark - s.Watermark
			}
		}
		sp.End()
		st.Members = append(st.Members, info)
	}
	return st
}

// spanIf starts a child span only under a real parent context: the
// coordinator's query spans exist only inside a request trace, never as
// roots of their own (the pipeline's ingest.append is the only span the
// coordinator roots itself).
func (c *Coordinator) spanIf(name string, parent obs.SpanContext, attrs ...obs.Label) *obs.TraceSpan {
	if !parent.Valid() {
		return nil
	}
	return c.tracer.StartSpan(name, parent, attrs...)
}

// endSpanErr annotates a span with the error and closes it (nil-safe).
func endSpanErr(s *obs.TraceSpan, err error) {
	if s == nil {
		return
	}
	s.Annotate(obs.L("error", err.Error()))
	s.End()
}

// Tracer returns the coordinator's flight recorder (the one from
// Config.Tracer, or the private one created in New).
func (c *Coordinator) Tracer() *obs.Tracer {
	return c.tracer
}

// Traces stitches the full span set for one trace ID: the coordinator's
// own spans (append, deliveries, query fan-out) plus every member's
// fragments (request, engine ingest, finalize stages, emit), fetched by
// trace ID, deduplicated by span ID, and sorted by start time. Members
// that fail the probe (down, or no /debug/traces endpoint) contribute
// nothing rather than failing the stitch.
func (c *Coordinator) Traces(trace string) []obs.SpanRecord {
	spans := c.tracer.Spans(trace)
	if trace == "" {
		return spans
	}
	seen := make(map[string]bool, len(spans))
	for _, s := range spans {
		seen[s.Span] = true
	}
	c.mu.Lock()
	members := make([]Member, 0, len(c.members))
	for _, id := range c.memberIDsLocked() {
		if ms := c.members[id]; !ms.failed {
			members = append(members, ms.m)
		}
	}
	c.mu.Unlock()
	for _, m := range members {
		frag, err := m.Traces(trace)
		if err != nil {
			continue
		}
		for _, s := range frag {
			if !seen[s.Span] {
				seen[s.Span] = true
				spans = append(spans, s)
			}
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	return spans
}
