package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"flowmotif/internal/obs"
	"flowmotif/internal/temporal"
)

// This file is the asynchronous replication pipeline behind
// Coordinator.Ingest (DESIGN.md §10). Ingest validates a batch, appends it
// to the sequence-numbered replication log, and acknowledges immediately;
// one replicator goroutine per member drains the log concurrently,
// coalescing a backlog into larger member calls, retrying transport
// failures (safe: batches are seq-tagged and members deduplicate resends),
// and recording the acked sequence/watermark the coordinator trims the log
// and reports replication lag by. A member whose replicator exhausts its
// retries is flagged failed and reaped — marked down with its
// subscriptions regenerated onto survivors from history — at the next
// mutating operation (or promptly by a background reap), so a flapping
// member degrades to catch-up instead of stalling every other shard.

// logEntry is one appended batch in the replication log. Events are
// immutable once appended (validateBatch returns a private sorted copy),
// so replicators may read them outside the coordinator lock.
type logEntry struct {
	seq    int64 // 1-based, dense
	events []temporal.Event
	// appendedAt is the wall-clock of the log append, the baseline of the
	// per-member append→ack replication-lag histogram.
	appendedAt time.Time
	// sc is the batch's "ingest.append" span context: replication
	// deliveries parent their spans on it and forward it to the member
	// (Batch.Traceparent), so member-side spans join the batch trace.
	sc obs.SpanContext
}

// entryLocked returns the log entry with the given sequence number. The
// caller holds mu and must only ask for seqs at or above the trim point
// (every non-failed member's ackedSeq is, by construction).
func (c *Coordinator) entryLocked(seq int64) *logEntry {
	return &c.repl[seq-c.replBase]
}

// pipelineFullLocked reports whether some live member's unacked backlog
// has reached the configured queue depth — the backpressure condition
// that blocks Ingest. Failed members are excluded: they no longer drain
// the log and must not wedge the pipeline while awaiting reap.
func (c *Coordinator) pipelineFullLocked() bool {
	for _, ms := range c.members {
		if ms.failed || ms.stopped {
			continue
		}
		if c.headSeq-ms.ackedSeq >= int64(c.maxPending) {
			return true
		}
	}
	return false
}

// replicate is one member's replication loop: it waits for log entries
// past the member's acked sequence, coalesces a contiguous run of them
// into a single tagged batch (bounded by CoalesceEvents), delivers it
// with retries, and records the ack. It exits when the member is stopped
// (removed, reaped, or the coordinator closed) or when delivery fails
// terminally (the member is then flagged for reap).
//
//flowmotif:hotpath
func (c *Coordinator) replicate(ms *memberState) {
	defer close(ms.done)
	for {
		c.mu.Lock()
		for !ms.stopped && !ms.failed && ms.ackedSeq >= c.headSeq {
			c.cond.Wait()
		}
		if ms.stopped || ms.failed {
			c.mu.Unlock()
			return
		}
		// Coalesce entries [ackedSeq+1, last] into one member call. A lone
		// entry ships its (immutable) slice as-is; a backlog is flattened
		// into a fresh slice so per-call engine overhead (band graphs,
		// sorting, locking) amortizes over the whole run.
		first := ms.ackedSeq + 1
		seq := first
		e := c.entryLocked(seq)
		evs := e.events
		n := len(evs)
		copied := false
		for seq < c.headSeq {
			next := c.entryLocked(seq + 1)
			if n+len(next.events) > c.coalesce {
				break
			}
			if !copied {
				evs = append(append(make([]temporal.Event, 0, n+len(next.events)), evs...), next.events...)
				copied = true
			} else {
				evs = append(evs, next.events...)
			}
			n += len(next.events)
			seq++
		}
		// The delivery span parents on the *newest* coalesced entry's
		// append span (a backlog folds several batch traces into one call;
		// the older entries keep their coordinator-side spans but their
		// member-side subtree lands under the newest trace — see DESIGN.md
		// §13). The older entries' trace IDs ride the span as the
		// coalesced_traces attribute so a stitched tree still names the
		// ingest ancestry it folded in. Read under mu: the log may be
		// trimmed once released.
		parent := c.entryLocked(seq).sc
		var coalescedTraces []string
		if parent.Valid() {
			for s := first; s < seq; s++ {
				if t := c.entryLocked(s).sc.Trace; t != "" {
					coalescedTraces = append(coalescedTraces, t)
				}
			}
		}
		c.mu.Unlock()

		c.mxCoalesce.Observe(float64(n))
		var dsp *obs.TraceSpan
		if c.tracer != nil {
			dsp = c.spanIf("replicate.deliver", parent,
				obs.L("member", ms.m.ID()),
				obs.L("seq", strconv.FormatInt(seq, 10)),
				obs.L("events", strconv.Itoa(n)))
			if seq > first {
				dsp.Annotate(obs.L("coalesced_batches", strconv.FormatInt(seq-first+1, 10)))
				if len(coalescedTraces) > 0 {
					dsp.Annotate(obs.L("coalesced_traces", strings.Join(coalescedTraces, ",")))
				}
			}
		}
		var t0 time.Time
		if c.mxDeliver != nil {
			t0 = time.Now()
		}
		ack, err := c.deliver(ms, Batch{Seq: seq, Events: evs, Traceparent: traceparentOf(dsp.Context())})
		if c.mxDeliver != nil {
			c.mxDeliver.ObserveExemplar(time.Since(t0).Seconds(), parent.Trace)
		}
		if err != nil {
			dsp.Annotate(obs.L("error", err.Error()))
		}
		dsp.End()
		var now time.Time
		if c.mxReplLag != nil {
			now = time.Now()
		}

		c.mu.Lock()
		if ms.stopped {
			c.mu.Unlock()
			return
		}
		if err != nil {
			ms.failed = true
			ms.failErr = err
			c.failedCount++
			c.cond.Broadcast()
			c.mu.Unlock()
			// Prompt failover even when no mutating call is imminent; the
			// reap is idempotent, so racing with an Ingest-side reap is fine.
			go c.reapAsync()
			return
		}
		// The acked entries are still in the log: trimming needs every live
		// member past them, and this member's own ack only lands below.
		if c.mxReplLag != nil {
			for s := first; s <= seq; s++ {
				e := c.entryLocked(s)
				c.mxReplLag.ObserveExemplar(now.Sub(e.appendedAt).Seconds(), e.sc.Trace)
			}
		}
		ms.ackedSeq = seq
		ms.ackedW = ack.Watermark
		c.trimLogLocked()
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// deliver sends one tagged batch to a member, retrying transport failures
// up to 1+Retries times. Resending the identical tagged batch is safe:
// a member that applied it but lost the ack answers the resend with a
// duplicate no-op ack (the idempotency the seq tag buys — the old
// broadcast path had to mark such members down as potentially diverged).
// Semantic rejections are terminal: the coordinator validated the batch,
// so a member rejecting it has diverged from the shared admission rules.
func (c *Coordinator) deliver(ms *memberState, b Batch) (IngestAck, error) {
	var err error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.retryDelay)
			c.mu.Lock()
			stopped := ms.stopped
			c.mu.Unlock()
			if stopped {
				break
			}
		}
		var ack IngestAck
		ack, err = ms.m.Ingest(b)
		if err == nil {
			return ack, nil
		}
		if !errors.Is(err, ErrMemberDown) {
			return IngestAck{}, fmt.Errorf("cluster: member %s rejected replicated batch seq %d: %w",
				ms.m.ID(), b.Seq, err)
		}
	}
	return IngestAck{}, err
}

// trimLogLocked moves log entries every live member has acked into the
// flat failover history (itself bounded by HistoryLimit), releasing the
// pipeline's memory as members catch up. Failed members are excluded:
// they are about to be reaped and regenerate from history, not the log.
// The caller holds mu.
func (c *Coordinator) trimLogLocked() {
	min := c.headSeq
	for _, ms := range c.members {
		if ms.failed {
			continue
		}
		if ms.ackedSeq < min {
			min = ms.ackedSeq
		}
	}
	trimmed := false
	for len(c.repl) > 0 && c.repl[0].seq <= min {
		c.history = append(c.history, c.repl[0].events...)
		c.logEvents -= len(c.repl[0].events)
		c.repl[0].events = nil
		c.repl = c.repl[1:]
		c.replBase++
		trimmed = true
	}
	if len(c.repl) == 0 {
		c.repl = nil
		c.replBase = c.headSeq + 1
	}
	if trimmed {
		c.trimHistoryLocked()
	}
}

// drainLocked blocks until every live member has applied and acked the
// whole replication log. Members flagged failed are excluded from the
// barrier (their replicators have exited); the caller reaps them after.
// Once drained — and as long as the caller keeps holding ingestMu so no
// new appends happen — the surviving members are in lockstep at the log
// head with idle replicators, which is exactly the quiesced state the
// synchronous handoff/flush/membership logic requires. The caller holds
// ingestMu.
func (c *Coordinator) drainLocked() {
	c.mu.Lock()
	for !c.closed {
		caught := true
		for _, ms := range c.members {
			// Failed members have exited their replicators and await reap;
			// stopped ones (a Close raced this drain) will never ack again.
			// Waiting on either would block forever.
			if ms.failed || ms.stopped {
				continue
			}
			if ms.ackedSeq < c.headSeq {
				caught = false
				break
			}
		}
		if caught {
			break
		}
		c.cond.Wait()
	}
	c.trimLogLocked()
	c.mu.Unlock()
}

// reapFailedLocked fails over every member whose replicator gave up:
// survivors are first drained to the log head (so history is complete and
// handoff catch-up is exact), then the failed members are marked down and
// their subscriptions re-placed. The caller holds ingestMu.
func (c *Coordinator) reapFailedLocked() error {
	c.mu.Lock()
	var ids []string
	for id, ms := range c.members {
		if ms.failed {
			ids = append(ids, id)
		}
	}
	c.mu.Unlock()
	if len(ids) == 0 {
		return nil
	}
	sort.Strings(ids)
	c.drainLocked()
	// A successful failover is the designed response to a member death,
	// not an error: the death itself shows up in Downs and the member's
	// failErr is gone with its state. Only re-placement problems (e.g.
	// the last member died and subscriptions are parked unplaced) reach
	// the caller.
	return c.failLocked(ids)
}

// reapAsync runs a failover pass from a replicator goroutine so a member
// death is repaired promptly even on an idle coordinator (queries stop
// hitting the corpse without waiting for the next ingest).
func (c *Coordinator) reapAsync() {
	c.ingestMu.Lock()
	defer c.ingestMu.Unlock()
	_ = c.reapFailedLocked()
}

// Drain blocks until every live member has applied and acknowledged the
// full replication log, then fails over any member whose replicator gave
// up along the way. It is the pipeline's barrier: after a nil return,
// every member has applied every acknowledged batch and queries observe
// the complete stream. The returned error reports failover problems
// (e.g. ErrNoMembers when the last member died with subscriptions left
// unplaced).
func (c *Coordinator) Drain() error {
	c.ingestMu.Lock()
	defer c.ingestMu.Unlock()
	c.drainLocked()
	return c.reapFailedLocked()
}

// Close stops the replication pipeline: replicator goroutines exit after
// finishing their in-flight call. Close does not drain — call Drain first
// to push queued batches out — and the coordinator must not be used
// afterwards.
func (c *Coordinator) Close() {
	c.ingestMu.Lock()
	c.mu.Lock()
	c.closed = true
	dones := make([]chan struct{}, 0, len(c.members))
	for _, ms := range c.members {
		ms.stopped = true
		dones = append(dones, ms.done)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	c.ingestMu.Unlock()
	for _, d := range dones {
		<-d
	}
}
