package cluster

import (
	"fmt"
	"sort"
	"time"

	"flowmotif/internal/gen"
	"flowmotif/internal/motif"
	"flowmotif/internal/obs"
	"flowmotif/internal/stream"
	"flowmotif/internal/temporal"
)

// BenchConfig parameterizes RunBench.
type BenchConfig struct {
	// Shards is the member count (default 4).
	Shards int
	// Events is the synthetic stream length (default 60000).
	Events int
	// BatchSize is the broadcast batch size (default 512).
	BatchSize int
	// TopKIters is how many scatter-gather top-k queries to time
	// (default 200).
	TopKIters int
	// Seed drives the synthetic generator (default 2019).
	Seed int64
	// MaxPending / CoalesceEvents tune the replication pipeline (0:
	// cluster defaults).
	MaxPending     int
	CoalesceEvents int
}

func (c BenchConfig) withDefaults() BenchConfig {
	out := c
	if out.Shards <= 0 {
		out.Shards = 4
	}
	if out.Events <= 0 {
		out.Events = 60000
	}
	if out.BatchSize <= 0 {
		out.BatchSize = 512
	}
	if out.TopKIters <= 0 {
		out.TopKIters = 200
	}
	if out.Seed == 0 {
		out.Seed = 2019
	}
	return out
}

// BenchReport is the machine-readable cluster benchmark result
// (BENCH_cluster.json at the repo root; tracked across PRs).
type BenchReport struct {
	Config struct {
		Shards        int   `json:"shards"`
		Subscriptions int   `json:"subscriptions"`
		Events        int   `json:"events"`
		BatchSize     int   `json:"batch_size"`
		Seed          int64 `json:"seed"`
	} `json:"config"`
	Ingest struct {
		Events  int `json:"events"`
		Batches int `json:"batches"`
		// Seconds / EventsPerSec measure the client-visible ingest path:
		// how fast Ingest calls acknowledge. With the asynchronous
		// replication pipeline that is the log-append rate — the latency
		// the old synchronous broadcast added (a full slowest-member
		// round-trip per batch) is exactly what this tracks.
		Seconds      float64 `json:"seconds"`
		EventsPerSec float64 `json:"events_per_sec"`
		// DrainSeconds / SustainedEventsPerSec include the drain barrier:
		// the end-to-end rate at which the shard set actually applies the
		// stream (the bound backpressure enforces on long streams).
		DrainSeconds          float64 `json:"drain_seconds"`
		SustainedEventsPerSec float64 `json:"sustained_events_per_sec"`
		Detections            int64   `json:"detections"`
	} `json:"ingest"`
	TopK struct {
		Iters int     `json:"iters"`
		K     int     `json:"k"`
		AvgUS float64 `json:"avg_us"`
		P50US float64 `json:"p50_us"`
		P99US float64 `json:"p99_us"`
	} `json:"scatter_gather_topk"`
	Instances struct {
		Iters int     `json:"iters"`
		Limit int     `json:"limit"`
		AvgUS float64 `json:"avg_us"`
	} `json:"scatter_gather_instances"`
	// Replication summarizes the pipeline's histograms over the whole run:
	// append→ack lag per log entry, per-call deliver wall-clock, and how
	// many events each member call coalesced. DetectionLag is the members'
	// ingest-to-emit distribution, bucket-merged across shards. All
	// quantiles in seconds except CoalesceEvents.
	Replication struct {
		Lag            *obs.Quantiles `json:"lag_seconds,omitempty"`
		Deliver        *obs.Quantiles `json:"deliver_seconds,omitempty"`
		CoalesceEvents *obs.Quantiles `json:"coalesce_events,omitempty"`
	} `json:"replication"`
	DetectionLag *obs.Quantiles `json:"detection_lag_seconds,omitempty"`
	// WireReplication compares replication delivery to HTTP member daemons
	// over the JSON transport vs the binary wire protocol (DESIGN.md §16).
	// Populated by the server package (internal/server.
	// RunWireReplicationBench): the HTTP/wire member daemon stack lives
	// above this package, so the report only carries the numbers. Absent
	// in older baselines; the regression comparison skips it.
	WireReplication *WireReplicationResult `json:"wire_replication,omitempty"`
}

// WireReplicationResult is the BenchReport.WireReplication payload: the
// sustained (drain-inclusive) replication rate to a daemon shard set,
// JSON vs binary, interleaved best-of-N runs in one process.
type WireReplicationResult struct {
	Shards           int     `json:"shards"`
	Events           int     `json:"events"`
	BatchSize        int     `json:"batch_size"`
	Runs             int     `json:"runs"`
	JSONEventsPerSec float64 `json:"json_events_per_sec"`
	WireEventsPerSec float64 `json:"wire_events_per_sec"`
	Speedup          float64 `json:"speedup"`
}

// histQuantiles merges every series named name in snaps and summarizes it
// (nil when nothing was observed).
func histQuantiles(snaps []obs.MetricSnapshot, name string) *obs.Quantiles {
	var merged obs.HistogramSnapshot
	for _, m := range snaps {
		if m.Name == name && m.Hist != nil {
			_ = merged.Merge(*m.Hist)
		}
	}
	if merged.Count == 0 {
		return nil
	}
	q := merged.Summary()
	return &q
}

// benchStream builds the synthetic benchmark stream, time-ordered.
func benchStream(cfg BenchConfig) ([]temporal.Event, error) {
	evs, err := gen.Bitcoin(gen.BitcoinConfig{
		Nodes:    2000,
		SeedTxns: cfg.Events / 4,
		Duration: 500000,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	if len(evs) > cfg.Events {
		evs = evs[:cfg.Events]
	}
	return evs, nil
}

// benchSubs is the benchmark workload: the full catalog at one (δ, φ).
func benchSubs() []stream.Subscription {
	var subs []stream.Subscription
	for _, mo := range motif.Catalog() {
		subs = append(subs, stream.Subscription{
			ID:    mo.Name() + "/bench",
			Motif: mo,
			Delta: 600,
			Phi:   2,
		})
	}
	return subs
}

// RunBench measures broadcast-ingest throughput and scatter-gather query
// latency on an in-process cluster — the tracked perf trajectory for the
// cluster layer (cmd/experiments -bench-cluster writes the report to
// BENCH_cluster.json).
func RunBench(cfg BenchConfig) (*BenchReport, error) {
	cfg = cfg.withDefaults()
	evs, err := benchStream(cfg)
	if err != nil {
		return nil, err
	}
	subs := benchSubs()
	members := make([]Member, cfg.Shards)
	for i := range members {
		m, err := NewLocalMember(fmt.Sprintf("bench-%d", i), LocalOptions{})
		if err != nil {
			return nil, err
		}
		members[i] = m
	}
	c, err := New(Config{
		Members:        members,
		Subs:           subs,
		HistoryLimit:   4 * cfg.BatchSize,
		MaxPending:     cfg.MaxPending,
		CoalesceEvents: cfg.CoalesceEvents,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	rep := &BenchReport{}
	rep.Config.Shards = cfg.Shards
	rep.Config.Subscriptions = len(subs)
	rep.Config.Events = len(evs)
	rep.Config.BatchSize = cfg.BatchSize
	rep.Config.Seed = cfg.Seed

	batches := 0
	start := time.Now()
	for i := 0; i < len(evs); i += cfg.BatchSize {
		end := i + cfg.BatchSize
		if end > len(evs) {
			end = len(evs)
		}
		if _, err := c.Ingest(evs[i:end]); err != nil {
			return nil, err
		}
		batches++
	}
	acked := time.Since(start)
	// Drain barrier: every member applies and acks the whole log — the
	// sustained figure includes it, so both the client-visible ack rate
	// and the end-to-end apply rate are tracked.
	if err := c.Drain(); err != nil {
		return nil, err
	}
	drained := time.Since(start)
	if _, err := c.Flush(); err != nil {
		return nil, err
	}
	st := c.Stats()
	rep.Ingest.Events = len(evs)
	rep.Ingest.Batches = batches
	rep.Ingest.Seconds = acked.Seconds()
	rep.Ingest.EventsPerSec = float64(len(evs)) / acked.Seconds()
	rep.Ingest.DrainSeconds = (drained - acked).Seconds()
	rep.Ingest.SustainedEventsPerSec = float64(len(evs)) / drained.Seconds()
	var memberSnaps []obs.MetricSnapshot
	for _, m := range st.Members {
		rep.Ingest.Detections += m.Detections
		memberSnaps = append(memberSnaps, m.Metrics...)
	}
	coordSnaps := c.Obs().Snapshot()
	rep.Replication.Lag = histQuantiles(coordSnaps, "flowmotif_replication_lag_seconds")
	rep.Replication.Deliver = histQuantiles(coordSnaps, "flowmotif_replication_deliver_seconds")
	rep.Replication.CoalesceEvents = histQuantiles(coordSnaps, "flowmotif_replication_coalesce_events")
	rep.DetectionLag = histQuantiles(memberSnaps, "flowmotif_detection_lag_seconds")

	const k = 10
	lat := make([]float64, cfg.TopKIters)
	for i := range lat {
		q := time.Now()
		if _, _, err := c.TopK("", k); err != nil {
			return nil, err
		}
		lat[i] = float64(time.Since(q).Microseconds())
	}
	sort.Float64s(lat)
	sum := 0.0
	for _, v := range lat {
		sum += v
	}
	rep.TopK.Iters = cfg.TopKIters
	rep.TopK.K = k
	rep.TopK.AvgUS = sum / float64(len(lat))
	rep.TopK.P50US = lat[len(lat)/2]
	rep.TopK.P99US = lat[len(lat)*99/100]

	const limit = 100
	iters := cfg.TopKIters / 2
	if iters < 1 {
		iters = 1
	}
	sum = 0.0
	for i := 0; i < iters; i++ {
		q := time.Now()
		if _, _, err := c.Instances("", limit); err != nil {
			return nil, err
		}
		sum += float64(time.Since(q).Microseconds())
	}
	rep.Instances.Iters = iters
	rep.Instances.Limit = limit
	rep.Instances.AvgUS = sum / float64(iters)
	return rep, nil
}
