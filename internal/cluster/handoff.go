package cluster

import (
	"flowmotif/internal/stream"
)

// InstallHandoff applies a subscription handoff onto a member's engine
// and query sinks: the moved sink state is injected first (so catch-up
// detections the engine regenerates land after — newer than — the moved
// history), then the subscription itself with its catch-up events and
// finalization bound. On engine rejection the injected sink state is
// rolled back, leaving the member unchanged. Both member transports
// (LocalMember and server member mode) share this path so the inject /
// rollback protocol cannot drift between them.
// It returns the resolved subscription id (defaulted to the motif name
// when the spec leaves it empty).
func InstallHandoff(eng *stream.Engine, recent *stream.MemorySink, topk *stream.TopKSink, h Handoff) (string, error) {
	sub, err := h.Sub.Subscription()
	if err != nil {
		return "", err
	}
	if sub.ID == "" {
		sub.ID = sub.Motif.Name()
	}
	recent.Inject(h.Recent)
	topk.Inject(h.Top)
	err = eng.AddSubscription(sub, stream.AddOptions{
		Catchup: h.Catchup,
		Emitted: h.Emitted,
		Primed:  h.Primed,
	})
	if err != nil {
		recent.RemoveSub(sub.ID)
		topk.RemoveSub(sub.ID)
		return "", err
	}
	return sub.ID, nil
}

// ExtractHandoff removes a subscription from a member's engine and query
// sinks and packages everything a receiving member needs to resume it:
// the finalization bound, the retained events it still needed, and its
// sink contents.
func ExtractHandoff(eng *stream.Engine, recent *stream.MemorySink, topk *stream.TopKSink, id string) (Handoff, error) {
	rem, err := eng.RemoveSubscription(id)
	if err != nil {
		return Handoff{}, err
	}
	return Handoff{
		Sub:     SpecOf(rem.Sub),
		Emitted: rem.Emitted,
		Primed:  rem.Primed,
		Catchup: rem.Events,
		Recent:  recent.RemoveSub(id),
		Top:     topk.RemoveSub(id),
	}, nil
}
