package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strconv"

	"flowmotif/internal/stream"
	"flowmotif/internal/wire"
)

// This file is HTTPMember's binary ingest transport: when the member
// daemon advertises a wire listener ("wirePort" on /healthz, set by
// flowmotifd -wire-addr), replication deliveries switch from JSON POSTs
// to binary batch frames over one persistent connection — same seq/
// traceparent idempotency and tracing contract, none of the per-event
// marshalling. Everything else (flush, handoffs, queries, stats) stays
// on HTTP: those are rare control-plane calls, not the hot path.

// wireIngest attempts the delivery over the binary transport. handled is
// false when the member has no wire listener (or the one-time probe
// could not run) — the caller then falls back to JSON. Transport
// failures wrap ErrMemberDown (retryable: the replicator redials through
// a fresh connection on the next attempt), server error frames map onto
// the same error taxonomy as HTTP responses.
func (m *HTTPMember) wireIngest(b Batch) (IngestAck, bool, error) {
	m.wireMu.Lock()
	defer m.wireMu.Unlock()
	if !m.wireProbed {
		m.probeWireLocked()
	}
	if !m.wireProbed || m.wireDisabled {
		return IngestAck{}, false, nil
	}
	if m.wireCli == nil {
		cli, err := wire.Dial(m.wireAddr, m.client.Timeout)
		if err != nil {
			// The member advertised a listener but is not answering on it:
			// treat like any transport failure so the coordinator retries
			// and eventually fails the member over.
			return IngestAck{}, true, fmt.Errorf("%w: %s: wire dial %s: %v", ErrMemberDown, m.id, m.wireAddr, err)
		}
		m.wireCli = cli
	}
	ack, err := m.wireCli.Ingest(b.Seq, b.Traceparent, b.Events)
	if err != nil {
		var re *wire.RemoteError
		if errors.As(err, &re) {
			if m.wireCli.Broken() {
				m.wireCli = nil
			}
			switch re.Code {
			case wire.CodeBehindFrontier:
				return IngestAck{}, true, fmt.Errorf("%w: member %s: %s", stream.ErrBehindFrontier, m.id, re.Msg)
			case wire.CodeInternal:
				// 5xx equivalent: retryable, mirrors doTraced's >=500 case.
				return IngestAck{}, true, fmt.Errorf("%w: %s: %v", ErrMemberDown, m.id, re)
			default:
				// Semantic rejection (400 equivalent): terminal for the
				// replicator, the member has diverged from admission rules.
				return IngestAck{}, true, fmt.Errorf("cluster: member %s: %v", m.id, re)
			}
		}
		// Transport failure: the client has retired the connection; redial
		// on the next delivery attempt.
		m.wireCli = nil
		return IngestAck{}, true, fmt.Errorf("%w: %s: wire: %v", ErrMemberDown, m.id, err)
	}
	return IngestAck{
		Ingested:   int(ack.Ingested),
		Watermark:  ack.Watermark,
		Detections: ack.Detections,
		Seq:        ack.Seq,
		Dup:        ack.Dup,
		Trace:      ack.Trace,
	}, true, nil
}

// probeWireLocked asks the member's /healthz once whether it serves the
// binary protocol. A reachable member without a "wirePort" field
// permanently disables the upgrade (this daemon predates or did not arm
// the listener); an unreachable member leaves the probe unresolved so a
// later delivery retries it — the member may just be restarting.
func (m *HTTPMember) probeWireLocked() {
	resp, err := m.client.Get(m.base + "/healthz")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var h struct {
		WirePort int `json:"wirePort"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&h) != nil {
		return
	}
	m.wireProbed = true
	if h.WirePort <= 0 {
		m.wireDisabled = true
		return
	}
	u, err := url.Parse(m.base)
	if err != nil || u.Hostname() == "" {
		m.wireDisabled = true
		return
	}
	m.wireAddr = net.JoinHostPort(u.Hostname(), strconv.Itoa(h.WirePort))
}

// SetWireAddr pins the binary transport to host:port, skipping the
// /healthz probe. An empty addr re-enables probing.
func (m *HTTPMember) SetWireAddr(addr string) {
	m.wireMu.Lock()
	defer m.wireMu.Unlock()
	m.closeWireLocked()
	if addr == "" {
		m.wireProbed = false
		m.wireDisabled = false
		return
	}
	m.wireProbed = true
	m.wireDisabled = false
	m.wireAddr = addr
}

// DisableWire pins deliveries to the JSON transport (benchmark and test
// control; also an operational escape hatch).
func (m *HTTPMember) DisableWire() {
	m.wireMu.Lock()
	defer m.wireMu.Unlock()
	m.closeWireLocked()
	m.wireProbed = true
	m.wireDisabled = true
}

// CloseWire drops the persistent wire connection (if any); a later
// delivery redials. The probe result is kept.
func (m *HTTPMember) CloseWire() {
	m.wireMu.Lock()
	defer m.wireMu.Unlock()
	m.closeWireLocked()
}

func (m *HTTPMember) closeWireLocked() {
	if m.wireCli != nil {
		_ = m.wireCli.Close()
		m.wireCli = nil
	}
}

// UsingWire reports whether the last probe selected the binary transport
// (testing aid).
func (m *HTTPMember) UsingWire() bool {
	m.wireMu.Lock()
	defer m.wireMu.Unlock()
	return m.wireProbed && !m.wireDisabled
}
