package cluster

import (
	"hash/fnv"
	"sort"
)

// rendezvousOwner picks the member that owns a subscription under
// highest-random-weight (rendezvous) hashing: the member whose hash with
// the subscription id is largest. Minimal disruption follows directly:
// adding a member only moves the subscriptions it now wins, removing one
// only moves the subscriptions it owned. Ties (astronomically unlikely
// with 64-bit FNV-1a) break towards the lexicographically smallest member
// id so every coordinator computes the same placement. Returns "" when no
// members are given.
func rendezvousOwner(subID string, members []string) string {
	best := ""
	var bestScore uint64
	for _, m := range members {
		h := fnv.New64a()
		h.Write([]byte(subID))
		h.Write([]byte{0})
		h.Write([]byte(m))
		score := h.Sum64()
		if best == "" || score > bestScore || (score == bestScore && m < best) {
			best, bestScore = m, score
		}
	}
	return best
}

// Placement maps every subscription id to its rendezvous owner over the
// given member set. Exported for operators and tests that want to predict
// moves before a membership change.
func Placement(subIDs, members []string) map[string]string {
	out := make(map[string]string, len(subIDs))
	for _, id := range subIDs {
		out[id] = rendezvousOwner(id, members)
	}
	return out
}

// sortedKeys returns a map's keys in deterministic order: membership
// changes and failovers iterate subscriptions through it so every run
// applies moves identically.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
