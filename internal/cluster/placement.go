package cluster

import (
	"hash/fnv"
	"sort"

	"flowmotif/internal/stream"
)

// rendezvousOwner picks the member that owns a subscription under
// highest-random-weight (rendezvous) hashing: the member whose hash with
// the subscription id is largest. Minimal disruption follows directly:
// adding a member only moves the subscriptions it now wins, removing one
// only moves the subscriptions it owned. Ties (astronomically unlikely
// with 64-bit FNV-1a) break towards the lexicographically smallest member
// id so every coordinator computes the same placement. Returns "" when no
// members are given.
func rendezvousOwner(subID string, members []string) string {
	best := ""
	var bestScore uint64
	for _, m := range members {
		h := fnv.New64a()
		h.Write([]byte(subID))
		h.Write([]byte{0})
		h.Write([]byte(m))
		score := h.Sum64()
		if best == "" || score > bestScore || (score == bestScore && m < best) {
			best, bestScore = m, score
		}
	}
	return best
}

// Placement maps every key to its rendezvous owner over the given member
// set. Exported for operators and tests that want to predict moves before
// a membership change. Note the coordinator does not hash raw subscription
// ids: it hashes GroupKey(sub), so same-shape subscriptions co-locate; use
// PlacementOf to predict actual subscription placement.
func Placement(subIDs, members []string) map[string]string {
	out := make(map[string]string, len(subIDs))
	for _, id := range subIDs {
		out[id] = rendezvousOwner(id, members)
	}
	return out
}

// GroupKey returns the placement key of a subscription: its motif's
// canonical shape. Hashing the shape instead of the subscription id makes
// rendezvous placement group-aware — every subscription watching the same
// motif shape lands on the same member, where the engine's
// shared-evaluation planner (internal/stream, DESIGN.md §11) runs phase P1
// once for all of them. Membership changes and failover re-place by the
// same key, so group integrity survives add/drain/fail.
func GroupKey(sub stream.Subscription) string {
	return "shape:" + sub.Motif.ShapeKey()
}

// PlacementOf maps subscriptions to their rendezvous owners under the
// coordinator's group-aware key (see GroupKey), so operators can predict
// where subscriptions land and which co-locate. Ids resolve like the
// coordinator's: an empty ID defaults to the motif name, so a sub set the
// coordinator would reject as duplicate ids collapses to one entry here.
// A nil-motif subscription (also a coordinator construction error) falls
// back to hashing its id.
func PlacementOf(subs []stream.Subscription, members []string) map[string]string {
	out := make(map[string]string, len(subs))
	for _, sub := range subs {
		id, key := sub.ID, sub.ID
		if sub.Motif != nil {
			if id == "" {
				id = sub.Motif.Name()
			}
			key = GroupKey(sub)
		}
		out[id] = rendezvousOwner(key, members)
	}
	return out
}

// sortedKeys returns a map's keys in deterministic order: membership
// changes and failovers iterate subscriptions through it so every run
// applies moves identically.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
