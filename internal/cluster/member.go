// Package cluster scales motif serving horizontally: a Coordinator
// partitions the subscription set across N member engines by rendezvous
// hashing, replicates every time-ordered ingest batch to all members
// through an asynchronous, sequence-numbered replication pipeline, and
// answers queries by scatter-gather with watermark alignment and a
// distributed top-k merge.
//
// Ingest appends a validated batch to the coordinator's replication log
// and acknowledges immediately; per-member replicator goroutines drain the
// log concurrently with adaptive batch coalescing, acked-watermark
// tracking, and backpressure when the slowest member falls too far behind
// (see replication.go and DESIGN.md §10). Batches carry their log sequence
// number, so a member that applied a batch but lost the ack treats the
// resend as a no-op instead of diverging.
//
// The design exploits the paper's per-subscription independence: each
// motif M = (GM, δ, φ) is evaluated on its own over the event stream
// (Kosyfaki et al., EDBT 2019, Definition 3.1), so the expensive part —
// per-subscription δ-window enumeration — partitions perfectly by
// subscription, while ingest (cheap: an append into a retention log) is
// replicated. Because every member observes the identical stream, a
// subscription can move between members at any time: the handoff carries
// its finalization bound plus the catch-up events the receiver's log no
// longer retains (or never saw), and the receiver splices them in front of
// its log (temporal.WindowLog.Prepend). The cluster therefore reports
// exactly the instance set of a single engine with the same subscriptions
// — the equivalence oracle in cluster_test.go — including across member
// adds, graceful drains, and failovers.
//
// Two transports implement Member: LocalMember (in-process, used by tests,
// examples and flowmotifd -shards) and HTTPMember (a remote flowmotifd
// -member daemon).
package cluster

import (
	"errors"
	"fmt"

	"flowmotif/internal/motif"
	"flowmotif/internal/obs"
	"flowmotif/internal/stream"
	"flowmotif/internal/temporal"
)

// ErrMemberDown marks transport-level member failures (process gone,
// connection refused, 5xx): the coordinator retries these and, when they
// persist, marks the member down and re-places its subscriptions. Semantic
// rejections (bad batch, unknown subscription) are never wrapped in it.
var ErrMemberDown = errors.New("cluster: member down")

// ErrUnknownSub is returned for queries naming a subscription no member
// serves.
var ErrUnknownSub = errors.New("cluster: unknown subscription")

// ErrNoMembers is returned when an operation needs a live member and the
// cluster has none left.
var ErrNoMembers = errors.New("cluster: no live members")

// SubSpec is the wire form of a subscription: the motif by its
// spanning-path spec (motif.Parse syntax, e.g. "0-1-2-0"), its display
// name, plus δ and φ.
type SubSpec struct {
	ID    string  `json:"id"`
	Motif string  `json:"motif"`
	Name  string  `json:"name,omitempty"`
	Delta int64   `json:"delta"`
	Phi   float64 `json:"phi"`
}

// Subscription parses the spec into an engine subscription.
func (s SubSpec) Subscription() (stream.Subscription, error) {
	mo, err := motif.Parse(s.Motif)
	if err != nil {
		return stream.Subscription{}, fmt.Errorf("cluster: subscription %q: %w", s.ID, err)
	}
	if s.Name != "" && s.Name != mo.Name() {
		mo = mo.Named(s.Name)
	}
	return stream.Subscription{ID: s.ID, Motif: mo, Delta: s.Delta, Phi: s.Phi}, nil
}

// SpecOf converts an engine subscription to its wire form (the motif
// travels as its canonical shape key, which Parse round-trips).
func SpecOf(sub stream.Subscription) SubSpec {
	return SubSpec{
		ID:    sub.ID,
		Motif: sub.Motif.ShapeKey(),
		Name:  sub.Motif.Name(),
		Delta: sub.Delta,
		Phi:   sub.Phi,
	}
}

// Handoff moves one subscription onto a member: its identity, its
// finalization bound, the catch-up events the receiver may be missing, and
// the query-sink state (recent ring entries oldest-first, top-k
// best-first) so scatter-gather results survive the move.
type Handoff struct {
	Sub     SubSpec             `json:"sub"`
	Emitted int64               `json:"emitted"`
	Primed  bool                `json:"primed"`
	Catchup []temporal.Event    `json:"catchup,omitempty"`
	Recent  []*stream.Detection `json:"recent,omitempty"`
	Top     []*stream.Detection `json:"top,omitempty"`
}

// Batch is one replication unit: a time-ordered event slice tagged with
// the replication-log sequence number of its newest entry. Seq 0 marks an
// untagged (non-replicated) batch; tagged batches are idempotent — a
// member that already applied Seq answers the resend with its recorded
// ack (Dup set) instead of rejecting it as behind-frontier.
type Batch struct {
	Seq    int64            `json:"seq,omitempty"`
	Events []temporal.Event `json:"events"`
	// Traceparent carries the delivering replicator's span context (W3C
	// traceparent form) so the member's ingest spans join the batch's
	// coordinator trace. Empty when tracing is off. The HTTP transport
	// moves it as the traceparent request header, not a body field.
	Traceparent string `json:"traceparent,omitempty"`
}

// IngestAck acknowledges an ingest or flush: what was applied, the new
// watermark, and how many detections the call finalized. For pipelined
// coordinator ingest, Seq is the replication-log sequence the batch was
// appended at and Detections is 0 (detections finalize asynchronously as
// members apply the log; see Stats). For member ingest, Seq echoes the
// applied batch tag and Dup marks an idempotent resend no-op.
type IngestAck struct {
	Ingested   int   `json:"ingested"`
	Watermark  int64 `json:"watermark"`
	Detections int64 `json:"detections"`
	Seq        int64 `json:"seq,omitempty"`
	Dup        bool  `json:"dup,omitempty"`
	// Trace is the batch's trace ID: the key into /debug/traces (and the
	// flight recorder) for the span tree that follows this batch from
	// append through replication to detection emit. Empty when tracing is
	// off or the batch was a duplicate no-op.
	Trace string `json:"trace,omitempty"`
}

// QueryResult is one member's contribution to a scatter-gather query,
// tagged with the member's watermark for alignment.
type QueryResult struct {
	Watermark  int64               `json:"watermark"`
	Started    bool                `json:"started"`
	Detections []*stream.Detection `json:"detections"`
}

// MemberStats is one member's progress snapshot. The planner gauges mirror
// the engine's shared-evaluation counters (stream.Stats, DESIGN.md §11):
// how many (shape, δ) plan groups the member currently serves, how many
// snapshots it built, the bands-per-snapshot reuse ratio, and how many
// structural matches were served from a shared per-shape list.
type MemberStats struct {
	ID             string   `json:"id"`
	Subs           []string `json:"subs"`
	Watermark      int64    `json:"watermark"`
	Started        bool     `json:"started"`
	Events         int64    `json:"events"`
	Retained       int      `json:"retained"`
	Detections     int64    `json:"detections"`
	PlanGroups     int      `json:"planGroups,omitempty"`
	SnapshotBuilds int64    `json:"snapshotBuilds,omitempty"`
	SnapshotReuse  float64  `json:"snapshotReuse,omitempty"`
	MatchesShared  int64    `json:"matchesShared,omitempty"`
	// Metrics is the member's full metric snapshot (engine stage and
	// detection-lag histograms among them); the coordinator bucket-merges
	// these across members for its own Prometheus exposition.
	Metrics []obs.MetricSnapshot `json:"metrics,omitempty"`
	// Cost attribution (DESIGN.md §14): the member engine's attributed
	// seconds plus its per-subscription and per-plan-group accounts, the
	// rows the coordinator ranks for /debug/top.
	CostSeconds float64                 `json:"costSeconds,omitempty"`
	SubCosts    []SubCostInfo           `json:"subCosts,omitempty"`
	GroupCosts  []stream.GroupCostStats `json:"groupCosts,omitempty"`
}

// SubCostInfo is one subscription's attributed-cost row in MemberStats.
type SubCostInfo struct {
	ID    string         `json:"id"`
	Shape string         `json:"shape"`
	Cost  stream.SubCost `json:"cost"`
}

// Member is the coordinator's view of one shard engine. Implementations
// wrap infrastructure failures in ErrMemberDown; every other error is
// semantic and deterministic across members (all members apply identical
// validation to the identical broadcast stream).
type Member interface {
	ID() string
	// Ingest applies one time-ordered batch (all-or-nothing). A batch
	// tagged with a replication-log sequence number at or below the
	// member's last applied tag is an idempotent no-op (Dup ack).
	Ingest(b Batch) (IngestAck, error)
	// Flush closes every still-open window (end-of-stream marker).
	Flush() (IngestAck, error)
	// AddSubscription installs a subscription, splicing the handoff's
	// catch-up events and sink state.
	AddSubscription(h Handoff) error
	// RemoveSubscription uninstalls a subscription and returns its handoff.
	RemoveSubscription(id string) (Handoff, error)
	// Instances returns recent detections, newest first (sub "" = all
	// local subscriptions).
	Instances(sub string, limit int) (QueryResult, error)
	// TopK returns the best detections by flow (sub "" = merged across all
	// local subscriptions).
	TopK(sub string, k int) (QueryResult, error)
	// Stats snapshots member progress.
	Stats() (MemberStats, error)
	// Traces returns the member's recorded spans for one trace ID (empty
	// when the member's flight recorder no longer holds it). The
	// coordinator stitches these member-side fragments onto its own spans
	// for /debug/traces.
	Traces(trace string) ([]obs.SpanRecord, error)
}

// tracedQuerier is the optional transport capability of propagating a
// query's span context to the member (the HTTP transport sends it as the
// traceparent header so the member's request span joins the
// coordinator's query trace). The coordinator type-asserts and falls
// back to the plain Member calls; LocalMember needs no propagation — the
// coordinator-side shard span already covers the in-process call.
type tracedQuerier interface {
	InstancesTraced(sub string, limit int, sc obs.SpanContext) (QueryResult, error)
	TopKTraced(sub string, k int, sc obs.SpanContext) (QueryResult, error)
	StatsTraced(sc obs.SpanContext) (MemberStats, error)
}

// memberInstances routes an Instances call through the traced transport
// when the member supports it and sc is a real span context.
func memberInstances(m Member, sub string, limit int, sc obs.SpanContext) (QueryResult, error) {
	if tq, ok := m.(tracedQuerier); ok && sc.Valid() {
		return tq.InstancesTraced(sub, limit, sc)
	}
	return m.Instances(sub, limit)
}

// memberTopK routes a TopK call through the traced transport when
// available.
func memberTopK(m Member, sub string, k int, sc obs.SpanContext) (QueryResult, error) {
	if tq, ok := m.(tracedQuerier); ok && sc.Valid() {
		return tq.TopKTraced(sub, k, sc)
	}
	return m.TopK(sub, k)
}

// memberStats routes a Stats call through the traced transport when
// available.
func memberStats(m Member, sc obs.SpanContext) (MemberStats, error) {
	if tq, ok := m.(tracedQuerier); ok && sc.Valid() {
		return tq.StatsTraced(sc)
	}
	return m.Stats()
}
