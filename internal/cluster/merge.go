package cluster

import (
	"sort"

	"flowmotif/internal/stream"
)

// better is the total order of the distributed top-k merge: higher flow
// first, then earlier Start, earlier End, and finally subscription id and
// motif name, so the merged ranking is deterministic even across
// subscriptions whose detections tie on every numeric field. Within one
// subscription it refines TopKSink's own order (flow desc, Start asc, End
// asc), so merging a member's already-truncated top-k lists is exact: any
// detection in the cluster-wide top k is necessarily in the top k of the
// member that owns its subscription.
func better(a, b *stream.Detection) bool {
	if a.Flow != b.Flow {
		return a.Flow > b.Flow
	}
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.End != b.End {
		return a.End < b.End
	}
	if a.Sub != b.Sub {
		return a.Sub < b.Sub
	}
	return a.Motif < b.Motif
}

// MergeTopK merges per-shard (or per-subscription) top lists into the
// global best k, best-first. k <= 0 keeps everything. Edge cases are the
// boring ones a merge must get right: ties at the threshold resolve by the
// deterministic total order above, k larger than the total yields all
// detections, and empty lists contribute nothing.
func MergeTopK(lists [][]*stream.Detection, k int) []*stream.Detection {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	out := make([]*stream.Detection, 0, n)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.SliceStable(out, func(i, j int) bool { return better(out[i], out[j]) })
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// newer orders recent-instance concatenation newest-first: by detection
// watermark, then anchor, then the top-k tie-breakers for determinism.
func newer(a, b *stream.Detection) bool {
	if a.DetectedAt != b.DetectedAt {
		return a.DetectedAt > b.DetectedAt
	}
	if a.Start != b.Start {
		return a.Start > b.Start
	}
	return better(a, b)
}

// mergeRecent concatenates per-shard recent-detection lists newest-first,
// truncated to limit (<= 0: all).
func mergeRecent(lists [][]*stream.Detection, limit int) []*stream.Detection {
	out := make([]*stream.Detection, 0)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.SliceStable(out, func(i, j int) bool { return newer(out[i], out[j]) })
	if limit > 0 && limit < len(out) {
		out = out[:limit]
	}
	return out
}

// Gather is the status of a scatter-gather answer: the watermark the
// detections are aligned to, whether any gathered shard has started (a
// watermark of 0 with Started false is "no data yet", distinguishable
// from an empty-but-started stream), and whether the answer may be
// incomplete (shards dropped from the gather, subscriptions unplaced, or
// a member awaiting failover).
type Gather struct {
	Watermark int64 `json:"watermark"`
	Started   bool  `json:"started"`
	Degraded  bool  `json:"degraded"`
}

// alignWatermark implements scatter-gather watermark alignment: shards
// answer queries without quiescing ingest, so a gather can observe shard A
// past replicated batch n while shard B is still at n−1. Detections
// finalized beyond the slowest started shard's watermark are held back —
// they would come and go between refreshes depending on which shards had
// applied the newest batch. Returns the aligned watermark (the minimum
// over started shards), whether any gathered shard has started — without
// it, an aligned watermark of 0 with empty lists from a cluster that has
// seen no events would be indistinguishable from an empty-but-healthy
// one — and the filtered lists.
func alignWatermark(results []QueryResult) (int64, bool, [][]*stream.Detection) {
	alignedW := int64(0)
	any := false
	for _, r := range results {
		if !r.Started {
			continue
		}
		if !any || r.Watermark < alignedW {
			alignedW = r.Watermark
			any = true
		}
	}
	lists := make([][]*stream.Detection, 0, len(results))
	for _, r := range results {
		if !any {
			lists = append(lists, nil)
			continue
		}
		kept := r.Detections
		for _, d := range r.Detections {
			if d.DetectedAt > alignedW {
				// Copy-on-write: most gathers have nothing to drop.
				kept = nil
				for _, dd := range r.Detections {
					if dd.DetectedAt <= alignedW {
						kept = append(kept, dd)
					}
				}
				break
			}
		}
		lists = append(lists, kept)
	}
	return alignedW, any, lists
}
