// Package analytics implements the instance-distribution analyses the
// paper sketches as future work (§7): grouping motif instances per
// structural match to find the vertex groups with the largest activity,
// and spreading activity along the timeline to find when it happens.
package analytics

import (
	"fmt"
	"sort"
	"strings"

	"flowmotif/internal/core"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// MatchActivity aggregates the instances of one structural match.
type MatchActivity struct {
	Nodes      []temporal.NodeID // vertex binding of the match
	Instances  int64             // maximal instances found
	TotalFlow  float64           // sum of instance flows
	MaxFlow    float64           // best single instance
	FirstStart int64             // earliest instance start
	LastEnd    int64             // latest instance end
}

// Key renders the binding as a map key / display string.
func (a *MatchActivity) Key() string {
	parts := make([]string, len(a.Nodes))
	for i, n := range a.Nodes {
		parts[i] = fmt.Sprint(n)
	}
	return strings.Join(parts, "-")
}

// GroupByMatch enumerates all maximal instances of mo under p and groups
// them per structural match, ordered by instance count (then total flow)
// descending. Matches without instances are omitted.
func GroupByMatch(g *temporal.Graph, mo *motif.Motif, p core.Params) ([]MatchActivity, error) {
	byKey := map[string]*MatchActivity{}
	p.Workers = 1 // deterministic aggregation
	_, err := core.Enumerate(g, mo, p, func(in *core.Instance) bool {
		k := fmt.Sprint(in.Nodes)
		a := byKey[k]
		if a == nil {
			a = &MatchActivity{
				Nodes:      append([]temporal.NodeID(nil), in.Nodes...),
				FirstStart: in.Start,
				LastEnd:    in.End,
			}
			byKey[k] = a
		}
		a.Instances++
		a.TotalFlow += in.Flow
		if in.Flow > a.MaxFlow {
			a.MaxFlow = in.Flow
		}
		if in.Start < a.FirstStart {
			a.FirstStart = in.Start
		}
		if in.End > a.LastEnd {
			a.LastEnd = in.End
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]MatchActivity, 0, len(byKey))
	for _, a := range byKey {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Instances != out[j].Instances {
			return out[i].Instances > out[j].Instances
		}
		if out[i].TotalFlow != out[j].TotalFlow {
			return out[i].TotalFlow > out[j].TotalFlow
		}
		return out[i].Key() < out[j].Key()
	})
	return out, nil
}

// TimelineBucket aggregates instance activity within one time bucket.
type TimelineBucket struct {
	Start     int64 // bucket start time (inclusive)
	Instances int64
	Flow      float64 // sum of instance flows starting in the bucket
}

// Timeline enumerates all maximal instances of mo under p and histograms
// them by instance start time into buckets of the given width. Empty
// buckets between the first and last active one are included, so the
// result is a dense series suitable for plotting.
func Timeline(g *temporal.Graph, mo *motif.Motif, p core.Params, bucket int64) ([]TimelineBucket, error) {
	if bucket <= 0 {
		return nil, fmt.Errorf("analytics: bucket width must be positive, got %d", bucket)
	}
	counts := map[int64]*TimelineBucket{}
	p.Workers = 1
	_, err := core.Enumerate(g, mo, p, func(in *core.Instance) bool {
		b := in.Start - mod(in.Start, bucket)
		tb := counts[b]
		if tb == nil {
			tb = &TimelineBucket{Start: b}
			counts[b] = tb
		}
		tb.Instances++
		tb.Flow += in.Flow
		return true
	})
	if err != nil {
		return nil, err
	}
	if len(counts) == 0 {
		return nil, nil
	}
	lo, hi := int64(1)<<62, int64(-1)<<62
	for b := range counts {
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	out := make([]TimelineBucket, 0, (hi-lo)/bucket+1)
	for b := lo; b <= hi; b += bucket {
		if tb := counts[b]; tb != nil {
			out = append(out, *tb)
		} else {
			out = append(out, TimelineBucket{Start: b})
		}
	}
	return out, nil
}

// mod is a floored modulo, correct for negative timestamps.
func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}
