package analytics

import (
	"testing"

	"flowmotif/internal/core"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// figure7Graph is the paper's Figure-7 series on the triangle 0→1→2→0.
func figure7Graph(t testing.TB) *temporal.Graph {
	t.Helper()
	g, err := temporal.NewGraph([]temporal.Event{
		{From: 0, To: 1, T: 10, F: 5},
		{From: 0, To: 1, T: 13, F: 2},
		{From: 0, To: 1, T: 15, F: 3},
		{From: 0, To: 1, T: 18, F: 7},
		{From: 1, To: 2, T: 9, F: 4},
		{From: 1, To: 2, T: 11, F: 3},
		{From: 1, To: 2, T: 16, F: 3},
		{From: 2, To: 0, T: 14, F: 4},
		{From: 2, To: 0, T: 19, F: 6},
		{From: 2, To: 0, T: 24, F: 3},
		{From: 2, To: 0, T: 25, F: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGroupByMatch(t *testing.T) {
	g := figure7Graph(t)
	mo := motif.MustPath(0, 1, 2, 0)
	acts, err := GroupByMatch(g, mo, core.Params{Delta: 10, Phi: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Rotations (0,1,2), (1,2,0), (2,0,1) yield 4, 1 and 1 instances.
	if len(acts) != 3 {
		t.Fatalf("groups = %d, want 3", len(acts))
	}
	top := acts[0]
	if top.Key() != "0-1-2" || top.Instances != 4 {
		t.Errorf("top group = %s with %d instances, want 0-1-2 with 4", top.Key(), top.Instances)
	}
	if top.MaxFlow != 5 {
		t.Errorf("top group max flow = %v, want 5", top.MaxFlow)
	}
	if top.FirstStart != 10 || top.LastEnd != 25 {
		t.Errorf("top group span = [%d,%d], want [10,25]", top.FirstStart, top.LastEnd)
	}
	var totalInstances int64
	for _, a := range acts {
		totalInstances += a.Instances
		if a.TotalFlow <= 0 || a.MaxFlow <= 0 {
			t.Errorf("group %s has non-positive flows: %+v", a.Key(), a)
		}
	}
	if totalInstances != 6 {
		t.Errorf("total grouped instances = %d, want 6", totalInstances)
	}
}

func TestGroupByMatchEmpty(t *testing.T) {
	g := figure7Graph(t)
	acts, err := GroupByMatch(g, motif.MustPath(0, 1, 2, 0), core.Params{Delta: 10, Phi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 0 {
		t.Errorf("groups = %d, want 0 at huge φ", len(acts))
	}
}

func TestTimeline(t *testing.T) {
	g := figure7Graph(t)
	mo := motif.MustPath(0, 1, 2, 0)
	buckets, err := Timeline(g, mo, core.Params{Delta: 10, Phi: 0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) == 0 {
		t.Fatal("no buckets")
	}
	var n int64
	for i, b := range buckets {
		if i > 0 && b.Start != buckets[i-1].Start+5 {
			t.Errorf("buckets not dense: %d after %d", b.Start, buckets[i-1].Start)
		}
		n += b.Instances
	}
	if n != 6 {
		t.Errorf("timeline total = %d, want 6", n)
	}
	// Instance starts are 10 (x3 from match 0-1-2... actually starts 10,
	// 10, 10, 15 plus rotations at 9 and 14): bucket 10 busiest.
	best := buckets[0]
	for _, b := range buckets {
		if b.Instances > best.Instances {
			best = b
		}
	}
	if best.Start != 10 {
		t.Errorf("busiest bucket starts at %d, want 10", best.Start)
	}
	if _, err := Timeline(g, mo, core.Params{Delta: 10}, 0); err == nil {
		t.Error("bucket width 0 accepted")
	}
}

func TestTimelineNoInstances(t *testing.T) {
	g := figure7Graph(t)
	buckets, err := Timeline(g, motif.MustPath(0, 1, 2, 0), core.Params{Delta: 10, Phi: 1000}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if buckets != nil {
		t.Errorf("buckets = %v, want nil", buckets)
	}
}

func TestModFloored(t *testing.T) {
	if mod(-7, 5) != 3 || mod(7, 5) != 2 || mod(0, 5) != 0 {
		t.Error("floored modulo wrong")
	}
}
