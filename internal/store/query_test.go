package store

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"flowmotif/internal/core"
	"flowmotif/internal/gen"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// instKey serializes an instance's semantic content (bound nodes plus the
// (t, f) events of every edge-set) independently of which graph snapshot
// produced it, so chunk-scan results can be compared to batch results.
func instKey(g *temporal.Graph, in *core.Instance) string {
	var b strings.Builder
	fmt.Fprintf(&b, "N%v", in.Nodes)
	for i, a := range in.Arcs {
		fmt.Fprintf(&b, "|e%d", i)
		for _, p := range g.Series(a)[in.Spans[i].Start:in.Spans[i].End] {
			fmt.Fprintf(&b, ";%d:%g", p.T, p.F)
		}
	}
	return b.String()
}

func queryEvents(t *testing.T, seed int64) []temporal.Event {
	t.Helper()
	evs, err := gen.Bitcoin(gen.BitcoinConfig{
		Nodes: 150, SeedTxns: 500, Duration: 25000, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	return evs
}

// TestQueryEquivalence is the out-of-core oracle: scanning the WAL
// segments in δ-overlapping chunks — small chunks, so many bands and
// evictions happen — must enumerate exactly the maximal instance set the
// in-memory search finds on the fully materialized graph.
func TestQueryEquivalence(t *testing.T) {
	evs := queryEvents(t, 3)
	g, err := temporal.NewGraph(evs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(t.TempDir(), Options{SegmentEvents: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < len(evs); i += 100 {
		j := i + 100
		if j > len(evs) {
			j = len(evs)
		}
		if err := s.Append(evs[i:j]); err != nil {
			t.Fatal(err)
		}
	}

	settings := []struct {
		delta int64
		phi   float64
	}{
		{250, 0},
		{800, 5},
	}
	anyInstances := false
	for _, mo := range motif.Catalog() {
		for _, set := range settings {
			name := fmt.Sprintf("%s/d%d/phi%g", mo.Name(), set.delta, set.phi)
			t.Run(name, func(t *testing.T) {
				p := core.Params{Delta: set.delta, Phi: set.phi}
				want := map[string]bool{}
				if _, err := core.Enumerate(g, mo, p, func(in *core.Instance) bool {
					want[instKey(g, in)] = true
					return true
				}); err != nil {
					t.Fatal(err)
				}

				got := map[string]bool{}
				dups := 0
				st, err := s.Query(mo, p, QueryOptions{ChunkEvents: 97},
					func(bg *temporal.Graph, in *core.Instance) bool {
						k := instKey(bg, in)
						if got[k] {
							dups++
						}
						got[k] = true
						return true
					})
				if err != nil {
					t.Fatal(err)
				}
				if dups > 0 {
					t.Fatalf("%d duplicate instances across chunks", dups)
				}
				if st.Instances != int64(len(got)) {
					t.Fatalf("stats report %d instances, set has %d", st.Instances, len(got))
				}
				if len(got) != len(want) {
					t.Fatalf("out-of-core found %d instances, batch found %d", len(got), len(want))
				}
				for k := range want {
					if !got[k] {
						t.Fatalf("missing instance %s", k)
					}
				}
				if len(want) > 0 {
					anyInstances = true
				}
			})
		}
	}
	if !anyInstances {
		t.Fatal("degenerate oracle: no motif produced any instance")
	}
}

// TestQueryRange restricts the anchor range (exercising the sealed
// segments' [minT, maxT] index skip) and checks the result against an
// equally restricted in-memory enumeration.
func TestQueryRange(t *testing.T) {
	evs := queryEvents(t, 5)
	g, err := temporal.NewGraph(evs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(t.TempDir(), Options{SegmentEvents: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(evs); err != nil {
		t.Fatal(err)
	}

	minT, maxT := g.TimeSpan()
	lo := minT + (maxT-minT)/3
	hi := minT + 2*(maxT-minT)/3
	mo := motif.MustPath(0, 1, 2, 0)
	p := core.Params{Delta: 400, Phi: 0}

	want := map[string]bool{}
	if _, err := core.EnumerateRange(g, mo, p, lo, hi, func(in *core.Instance) bool {
		want[instKey(g, in)] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("degenerate test: no instances in the restricted range")
	}

	got := map[string]bool{}
	if _, err := s.QueryRange(mo, p, QueryOptions{ChunkEvents: 64}, lo, hi,
		func(bg *temporal.Graph, in *core.Instance) bool {
			got[instKey(bg, in)] = true
			return true
		}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("range query found %d instances, batch found %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing instance %s", k)
		}
	}
}

// TestQueryParallelWorkers runs the out-of-core scan with concurrent band
// enumeration (including an early stop, the path where workers race on
// the stop flag) and checks the instance set still matches serial.
func TestQueryParallelWorkers(t *testing.T) {
	evs := queryEvents(t, 9)
	s, err := Open(t.TempDir(), Options{SegmentEvents: 300})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(evs); err != nil {
		t.Fatal(err)
	}
	mo := motif.MustPath(0, 1, 2)
	serial := core.Params{Delta: 400, Phi: 0}
	parallel := core.Params{Delta: 400, Phi: 0, Workers: 4}

	want := map[string]bool{}
	if _, err := s.Query(mo, serial, QueryOptions{ChunkEvents: 128},
		func(g *temporal.Graph, in *core.Instance) bool {
			want[instKey(g, in)] = true
			return true
		}); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := map[string]bool{}
	if _, err := s.Query(mo, parallel, QueryOptions{ChunkEvents: 128},
		func(g *temporal.Graph, in *core.Instance) bool {
			mu.Lock()
			got[instKey(g, in)] = true
			mu.Unlock()
			return true
		}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(want) == 0 {
		t.Fatalf("parallel found %d instances, serial %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("parallel missing %s", k)
		}
	}

	// Early stop under concurrency: terminates promptly, no error.
	var n atomic.Int64
	if _, err := s.Query(mo, parallel, QueryOptions{ChunkEvents: 64},
		func(*temporal.Graph, *core.Instance) bool {
			return n.Add(1) < 3
		}); err != nil {
		t.Fatal(err)
	}
	if n.Load() < 3 {
		t.Fatalf("visitor called %d times, want >= 3", n.Load())
	}
}

// TestQueryEarlyStop checks that a visitor returning false terminates the
// scan without error.
func TestQueryEarlyStop(t *testing.T) {
	evs := queryEvents(t, 7)
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(evs); err != nil {
		t.Fatal(err)
	}
	seen := 0
	_, err = s.Query(motif.MustPath(0, 1, 2), core.Params{Delta: 500}, QueryOptions{ChunkEvents: 50},
		func(*temporal.Graph, *core.Instance) bool {
			seen++
			return seen < 5
		})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 5 {
		t.Fatalf("visitor saw %d instances after stop at 5", seen)
	}
}
