// Package store is the durability layer of the flow-motif system: an
// append-only, checksummed, segmented write-ahead log of interaction
// events plus engine snapshots, so that flowmotifd (internal/server,
// internal/stream) survives restarts and batch queries can run over event
// histories larger than RAM.
//
// Layout of a data directory:
//
//	<dir>/wal/<index>.seg    time-ordered event segments; sealed segments
//	                         carry a [minT, maxT] index header, the last
//	                         segment is active (append target)
//	snap/<seq>.snap          JSON snapshots: an opaque payload (the engine
//	                         state serialized by the owner) tagged with the
//	                         WAL sequence number it reflects
//
// Events are totally ordered by a sequence number (their position in the
// WAL); a snapshot taken at seq S plus a replay of events [S, ...) rebuilds
// the exact pre-crash state. Recovery truncates a torn or corrupt tail off
// the active segment (see segment.go) and falls back across corrupt
// snapshots — worst case, a full replay from seq 0.
//
// The out-of-core batch query path is in query.go: it streams segments
// through core.EnumerateRange in δ-overlapping anchor bands, so a
// full-catalog FindInstances-equivalent search needs memory proportional
// to the densest δ-window, not the dataset.
package store

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"flowmotif/internal/obs"
	"flowmotif/internal/temporal"
)

// DefaultSegmentEvents is the default segment roll threshold.
const DefaultSegmentEvents = 1 << 17

// SnapshotFileVersion is the on-disk snapshot envelope version.
const SnapshotFileVersion = 1

const snapSuffix = ".snap"

// Options parameterizes a Store.
type Options struct {
	// SegmentEvents caps the events per WAL segment; the active segment is
	// sealed and a fresh one started once it reaches this many events
	// (default DefaultSegmentEvents).
	SegmentEvents int
	// Sync fsyncs the active segment after every Append. Off by default:
	// appends are still flushed to the OS per batch, but a machine crash
	// (not just a process crash) may lose the tail.
	Sync bool
	// KeepSnapshots bounds the retained snapshot files (default 2, so one
	// corrupt latest snapshot still leaves a usable predecessor).
	KeepSnapshots int
	// Obs receives store instrumentation — WAL append, fsync, and
	// segment-seal timing histograms; nil disables it.
	Obs *obs.Registry
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.SegmentEvents <= 0 {
		out.SegmentEvents = DefaultSegmentEvents
	}
	if out.KeepSnapshots <= 0 {
		out.KeepSnapshots = 2
	}
	return out
}

// SegmentStat describes one WAL segment for introspection (stats
// endpoints, tests).
type SegmentStat struct {
	Index    int64 `json:"index"`
	FirstSeq int64 `json:"firstSeq"`
	Count    int64 `json:"count"`
	MinT     int64 `json:"minT"`
	MaxT     int64 `json:"maxT"`
	Sealed   bool  `json:"sealed"`
}

// Snapshot is the on-disk snapshot envelope. Payload is opaque to the
// store; internal/server fills it with the serialized engine and sink
// state.
type Snapshot struct {
	Version   int             `json:"version"`
	Seq       int64           `json:"seq"` // events applied when taken
	TakenUnix int64           `json:"takenUnix"`
	Payload   json.RawMessage `json:"payload"`
}

// Store is a durable segmented event store. It is safe for concurrent use;
// appends are serialized, and reads (Replay, Query) run against the
// flushed prefix without blocking writers.
type Store struct {
	dir     string
	walDir  string
	snapDir string
	opts    Options

	lock *os.File // flock-held lock file guarding the whole directory

	mu      sync.Mutex
	sealed  []segmentInfo
	active  *segmentWriter
	lastT   int64
	started bool
	closed  bool
	failed  error // first write error: the store is fail-stop afterwards

	snapSeq int64
	snapAt  time.Time
	hasSnap bool

	// WAL timing histograms (nil without Options.Obs; all nil-safe).
	mxAppend *obs.Histogram
	mxFsync  *obs.Histogram
	mxSeal   *obs.Histogram
}

// Open opens (creating if necessary) the store rooted at dir and recovers
// it: sealed segments are index-checked, the active segment is scanned and
// truncated past the last intact record, and the newest snapshot's
// metadata is located.
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{
		dir:     dir,
		walDir:  filepath.Join(dir, "wal"),
		snapDir: filepath.Join(dir, "snap"),
		opts:    opts.withDefaults(),
	}
	if r := s.opts.Obs; r != nil {
		s.mxAppend = r.Histogram("flowmotif_store_append_seconds",
			"Whole WAL batch append wall-clock (validate, write, roll, flush).", obs.LatencyBuckets)
		s.mxFsync = r.Histogram("flowmotif_store_fsync_seconds",
			"Active-segment fsync wall-clock (observed only with Options.Sync).", obs.LatencyBuckets)
		s.mxSeal = r.Histogram("flowmotif_store_seal_seconds",
			"Segment roll wall-clock: seal (index header rewrite, final sync) plus successor creation.", obs.LatencyBuckets)
	}
	for _, d := range []string{s.walDir, s.snapDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	// Exclusive advisory lock: a second process opening the same data dir
	// (e.g. a double-started daemon) would interleave appends into the
	// active segment and corrupt acknowledged events. flock releases on
	// process death, so a crash never wedges the directory.
	lock, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: data dir %s is locked by another process: %w", dir, err)
	}
	s.lock = lock
	ok := false
	defer func() {
		if !ok {
			syscall.Flock(int(lock.Fd()), syscall.LOCK_UN)
			lock.Close()
		}
	}()
	segs, err := listSegments(s.walDir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}

	prevT := int64(math.MinInt64)
	expectSeq := int64(0)
	for i := range segs {
		si := &segs[i]
		if err := recoverSegment(si, prevT); err != nil {
			return nil, err
		}
		if i == 0 {
			expectSeq = si.firstSeq
		}
		if si.firstSeq != expectSeq {
			return nil, fmt.Errorf("store: segment %s starts at seq %d, want %d (missing segment?)", si.path, si.firstSeq, expectSeq)
		}
		if i < len(segs)-1 && !si.sealed {
			// A non-final unsealed segment means the roll was interrupted
			// after creating the successor; records beyond it would violate
			// sequence continuity, so seal it in place as-is.
			si.sealed = true
			if err := rewriteHeader(si); err != nil {
				return nil, err
			}
		}
		expectSeq = si.endSeq()
		if si.count > 0 {
			prevT = si.maxT
			s.lastT = si.maxT
			s.started = true
		}
	}

	nextIndex := int64(1)
	if n := len(segs); n > 0 {
		nextIndex = segs[n-1].index + 1
		if last := segs[n-1]; !last.sealed {
			s.active, err = reopenSegment(last)
			if err != nil {
				return nil, err
			}
			segs = segs[:n-1]
		}
	}
	s.sealed = segs
	if s.active == nil {
		s.active, err = createSegment(s.walDir, nextIndex, expectSeq)
		if err != nil {
			return nil, err
		}
	}

	if err := s.loadSnapshotMeta(); err != nil {
		return nil, err
	}
	ok = true
	return s, nil
}

func rewriteHeader(si *segmentInfo) error {
	f, err := os.OpenFile(si.path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var hdr [segHeaderLen]byte
	encodeHeader(&hdr, si)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return err
	}
	return f.Sync()
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Seq returns the next event sequence number — equivalently, the number of
// events durably recorded over the store's lifetime.
func (s *Store) Seq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active.info.endSeq()
}

// LastT returns the largest recorded timestamp (ok false while empty).
func (s *Store) LastT() (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastT, s.started
}

// Segments reports the WAL layout, sealed segments first, active last.
func (s *Store) Segments() []SegmentStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SegmentStat, 0, len(s.sealed)+1)
	for i := range s.sealed {
		out = append(out, segStat(&s.sealed[i]))
	}
	out = append(out, segStat(&s.active.info))
	return out
}

func segStat(si *segmentInfo) SegmentStat {
	return SegmentStat{Index: si.index, FirstSeq: si.firstSeq, Count: si.count,
		MinT: si.minT, MaxT: si.maxT, Sealed: si.sealed}
}

// Append durably records a batch. Events are stably sorted by timestamp
// (matching the stream engine's internal order) and validated against the
// store's time frontier: a batch reaching behind the last recorded
// timestamp is rejected whole, mirroring stream.Engine's ingest contract.
// The batch is flushed to the OS before Append returns; with Options.Sync
// it is also fsynced.
//
//flowmotif:hotpath
func (s *Store) Append(events []temporal.Event) error {
	if len(events) == 0 {
		return nil
	}
	batch := events
	if !sort.SliceIsSorted(batch, func(i, j int) bool { return batch[i].T < batch[j].T }) {
		batch = append([]temporal.Event(nil), events...)
		sort.SliceStable(batch, func(i, j int) bool { return batch[i].T < batch[j].T })
	}
	for i := range batch {
		ev := &batch[i]
		if ev.From < 0 || ev.To < 0 {
			return fmt.Errorf("store: batch event %d: negative node id", i)
		}
		if ev.F <= 0 || math.IsNaN(ev.F) || math.IsInf(ev.F, 0) {
			return fmt.Errorf("store: batch event %d: flow must be positive and finite (got %v)", i, ev.F)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usableLocked(); err != nil {
		return err
	}
	if s.started && batch[0].T < s.lastT {
		return fmt.Errorf("store: batch reaches back to t=%d behind the recorded frontier %d", batch[0].T, s.lastT)
	}
	sp := s.mxAppend.Start()
	for i := range batch {
		if err := s.active.append(batch[i]); err != nil {
			return s.failLocked(fmt.Errorf("store: append: %w", err))
		}
		s.lastT = batch[i].T
		s.started = true
		// Roll inside the loop so one oversized batch cannot blow past the
		// per-segment cap (which also bounds the [minT, maxT] index
		// granularity that time-range scans rely on to skip segments).
		if s.active.info.count >= int64(s.opts.SegmentEvents) {
			if err := s.rollLocked(); err != nil {
				return s.failLocked(err)
			}
		}
	}
	fsp := obs.Span{}
	if s.opts.Sync {
		fsp = s.mxFsync.Start()
	}
	if err := s.active.flush(s.opts.Sync); err != nil {
		return s.failLocked(fmt.Errorf("store: flush: %w", err))
	}
	fsp.End()
	sp.End()
	return nil
}

// usableLocked reports whether the store can serve operations.
func (s *Store) usableLocked() error {
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.failed != nil {
		return fmt.Errorf("store: failed by earlier write error (reopen to recover): %w", s.failed)
	}
	return nil
}

// failLocked marks the store fail-stop. A mid-batch write error (disk
// full, I/O error, failed roll) can leave a durable prefix of a batch the
// caller was told failed; rather than let a retry wedge on a confusing
// frontier error — or worse, append after a half-applied roll — every
// later operation fails loudly and recovery happens on the next Open,
// which truncates any torn tail and re-derives consistent state.
func (s *Store) failLocked(err error) error {
	if s.failed == nil {
		s.failed = err
	}
	return err
}

// rollLocked seals the active segment and starts a fresh one.
func (s *Store) rollLocked() error {
	defer s.mxSeal.Start().End()
	info, err := s.active.seal()
	if err != nil {
		return fmt.Errorf("store: seal: %w", err)
	}
	s.sealed = append(s.sealed, info)
	s.active, err = createSegment(s.walDir, info.index+1, info.endSeq())
	if err != nil {
		return fmt.Errorf("store: roll: %w", err)
	}
	return nil
}

// snapshotSegments returns a stable view of the WAL (the flushed prefix)
// for lock-free scanning: sealed segments are immutable, and the active
// segment's info is copied at its current flushed count.
func (s *Store) snapshotSegments() ([]segmentInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usableLocked(); err != nil {
		return nil, err
	}
	if err := s.active.flush(false); err != nil {
		return nil, s.failLocked(err)
	}
	segs := make([]segmentInfo, 0, len(s.sealed)+1)
	segs = append(segs, s.sealed...)
	segs = append(segs, s.active.info)
	return segs, nil
}

// Replay streams every recorded event with sequence number >= fromSeq, in
// order, to fn; returning false stops the replay early. Replay sees the
// state as of the call and does not block concurrent appends.
func (s *Store) Replay(fromSeq int64, fn func(seq int64, ev temporal.Event) bool) error {
	segs, err := s.snapshotSegments()
	if err != nil {
		return err
	}
	for i := range segs {
		si := &segs[i]
		if si.endSeq() <= fromSeq {
			continue
		}
		cont, err := scanSegment(si, fromSeq-si.firstSeq, fn)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return nil
}

// WriteSnapshot durably records a snapshot payload taken at seq (write to
// a temp file, fsync, rename), then prunes snapshots beyond
// Options.KeepSnapshots. The caller is responsible for seq actually
// reflecting the payload — internal/server captures both under its ingest
// lock.
func (s *Store) WriteSnapshot(seq int64, payload []byte) error {
	s.mu.Lock()
	if err := s.usableLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	if max := s.active.info.endSeq(); seq < 0 || seq > max {
		s.mu.Unlock()
		return fmt.Errorf("store: snapshot seq %d outside recorded range [0, %d]", seq, max)
	}
	s.mu.Unlock()

	snap := Snapshot{
		Version:   SnapshotFileVersion,
		Seq:       seq,
		TakenUnix: time.Now().Unix(),
		Payload:   json.RawMessage(payload),
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("store: snapshot marshal: %w", err)
	}
	tmp, err := os.CreateTemp(s.snapDir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	final := filepath.Join(s.snapDir, fmt.Sprintf("%016d%s", seq, snapSuffix))
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	if err := syncDir(s.snapDir); err != nil {
		return err
	}

	s.mu.Lock()
	s.snapSeq = seq
	s.snapAt = time.Now()
	s.hasSnap = true
	s.mu.Unlock()
	s.pruneSnapshots()
	return nil
}

// LoadSnapshot returns the newest decodable snapshot, or (nil, nil) when
// none is usable. Corrupt or future-dated snapshots (seq beyond the WAL,
// possible when an unsynced WAL tail was lost in a machine crash) are
// skipped in favour of an older one — recovery then simply replays more of
// the log.
func (s *Store) LoadSnapshot() (*Snapshot, error) {
	walSeq := s.Seq()
	names, err := s.snapshotFiles()
	if err != nil {
		return nil, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		data, err := os.ReadFile(names[i])
		if err != nil {
			continue
		}
		var snap Snapshot
		if json.Unmarshal(data, &snap) != nil || snap.Version != SnapshotFileVersion {
			continue
		}
		if snap.Seq < 0 || snap.Seq > walSeq {
			continue
		}
		return &snap, nil
	}
	return nil, nil
}

// SnapshotInfo reports the newest snapshot's seq and time (ok false when
// the store has none).
func (s *Store) SnapshotInfo() (seq int64, at time.Time, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapSeq, s.snapAt, s.hasSnap
}

// snapshotFiles lists snapshot paths ordered by seq (oldest first).
func (s *Store) snapshotFiles() ([]string, error) {
	entries, err := os.ReadDir(s.snapDir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	type cand struct {
		seq  int64
		path string
	}
	var cands []cand
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		seq, err := strconv.ParseInt(strings.TrimSuffix(name, snapSuffix), 10, 64)
		if err != nil {
			continue
		}
		cands = append(cands, cand{seq, filepath.Join(s.snapDir, name)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq < cands[j].seq })
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.path
	}
	return out, nil
}

// loadSnapshotMeta records the newest *usable* snapshot's seq/time — by
// definition the one LoadSnapshot would return — so SnapshotInfo (and
// therefore /healthz freshness monitoring) never advertises a checkpoint
// that recovery would actually skip.
func (s *Store) loadSnapshotMeta() error {
	snap, err := s.LoadSnapshot()
	if err != nil {
		return err
	}
	if snap != nil {
		s.snapSeq, s.snapAt, s.hasSnap = snap.Seq, time.Unix(snap.TakenUnix, 0), true
	}
	return nil
}

func (s *Store) pruneSnapshots() {
	names, err := s.snapshotFiles()
	if err != nil {
		return
	}
	for len(names) > s.opts.KeepSnapshots {
		os.Remove(names[0])
		names = names[1:]
	}
}

// Close flushes and closes the active segment and releases the directory
// lock. The store cannot be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.failed == nil {
		err = s.active.close(true)
	}
	syscall.Flock(int(s.lock.Fd()), syscall.LOCK_UN)
	if cerr := s.lock.Close(); err == nil {
		err = cerr
	}
	return err
}
