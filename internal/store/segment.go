package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"flowmotif/internal/temporal"
)

// On-disk format (all integers little-endian).
//
// A segment file is a fixed 48-byte header followed by fixed-size event
// records:
//
//	header:  magic "FMSEG001" | sealed u32 | reserved u32 |
//	         minT i64 | maxT i64 | count i64 | firstSeq i64
//	record:  payloadLen u32 (=24) | crc32(payload) u32 |
//	         from u32 | to u32 | t u64 | f u64 (float64 bits)
//
// The header of the active (unsealed) segment carries only magic and
// firstSeq; count/minT/maxT are written once, at seal time, making the
// sealed header a self-contained [minT, maxT] index entry that lets
// time-range scans skip whole segments without reading their records.
// Recovery never trusts an unsealed header: it re-scans the records,
// validating length and checksum, and truncates the file at the first
// torn or corrupt record (the tail a crash may leave behind).
const (
	segMagic      = "FMSEG001"
	segHeaderLen  = 48
	recPayloadLen = 24
	recLen        = 8 + recPayloadLen
	segSuffix     = ".seg"
)

// segmentInfo describes one on-disk segment.
type segmentInfo struct {
	path     string
	index    int64 // numeric file name, monotonically increasing
	firstSeq int64 // sequence number of the segment's first event
	count    int64 // events in the segment
	minT     int64 // smallest event timestamp (undefined when count == 0)
	maxT     int64 // largest event timestamp (undefined when count == 0)
	sealed   bool
}

func (si *segmentInfo) endSeq() int64 { return si.firstSeq + si.count }

func segmentPath(walDir string, index int64) string {
	// Runs once per segment rotation — amortized over segMaxRecords
	// appends, not per-append work.
	return filepath.Join(walDir, fmt.Sprintf("%016d%s", index, segSuffix)) //flowvet:ignore hotpathclock rotation-rate, not per-append
}

func encodeHeader(buf *[segHeaderLen]byte, si *segmentInfo) {
	copy(buf[0:8], segMagic)
	sealed := uint32(0)
	if si.sealed {
		sealed = 1
	}
	binary.LittleEndian.PutUint32(buf[8:12], sealed)
	binary.LittleEndian.PutUint32(buf[12:16], 0)
	binary.LittleEndian.PutUint64(buf[16:24], uint64(si.minT))
	binary.LittleEndian.PutUint64(buf[24:32], uint64(si.maxT))
	binary.LittleEndian.PutUint64(buf[32:40], uint64(si.count))
	binary.LittleEndian.PutUint64(buf[40:48], uint64(si.firstSeq))
}

func decodeHeader(buf []byte, si *segmentInfo) error {
	if len(buf) < segHeaderLen {
		return fmt.Errorf("store: segment header truncated (%d bytes)", len(buf))
	}
	if string(buf[0:8]) != segMagic {
		return fmt.Errorf("store: bad segment magic %q", buf[0:8])
	}
	si.sealed = binary.LittleEndian.Uint32(buf[8:12]) == 1
	si.minT = int64(binary.LittleEndian.Uint64(buf[16:24]))
	si.maxT = int64(binary.LittleEndian.Uint64(buf[24:32]))
	si.count = int64(binary.LittleEndian.Uint64(buf[32:40]))
	si.firstSeq = int64(binary.LittleEndian.Uint64(buf[40:48]))
	return nil
}

func encodeRecord(buf *[recLen]byte, ev temporal.Event) {
	binary.LittleEndian.PutUint32(buf[0:4], recPayloadLen)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(ev.From))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(ev.To))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(ev.T))
	binary.LittleEndian.PutUint64(buf[24:32], math.Float64bits(ev.F))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(buf[8:recLen]))
}

// decodeRecord validates length and checksum; ok is false for a torn or
// corrupt record.
func decodeRecord(buf []byte) (ev temporal.Event, ok bool) {
	if len(buf) < recLen {
		return ev, false
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != recPayloadLen {
		return ev, false
	}
	if binary.LittleEndian.Uint32(buf[4:8]) != crc32.ChecksumIEEE(buf[8:recLen]) {
		return ev, false
	}
	ev.From = temporal.NodeID(binary.LittleEndian.Uint32(buf[8:12]))
	ev.To = temporal.NodeID(binary.LittleEndian.Uint32(buf[12:16]))
	ev.T = int64(binary.LittleEndian.Uint64(buf[16:24]))
	ev.F = math.Float64frombits(binary.LittleEndian.Uint64(buf[24:32]))
	return ev, true
}

// segmentWriter is the open active segment.
type segmentWriter struct {
	info segmentInfo
	f    *os.File
	w    *bufio.Writer
}

// createSegment starts a new empty active segment and durably records its
// header (so recovery sees the firstSeq even before the first append).
// The directory entry is fsynced too: without it a machine crash after a
// roll could lose the whole new file even though its contents were synced.
func createSegment(walDir string, index, firstSeq int64) (*segmentWriter, error) {
	si := segmentInfo{path: segmentPath(walDir, index), index: index, firstSeq: firstSeq}
	f, err := os.OpenFile(si.path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: create segment: %w", err)
	}
	var hdr [segHeaderLen]byte
	encodeHeader(&hdr, &si)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: sync segment header: %w", err)
	}
	if err := syncDir(walDir); err != nil {
		f.Close()
		return nil, err
	}
	return &segmentWriter{info: si, f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

// syncDir fsyncs a directory so freshly created/renamed entries survive a
// machine crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}

// append buffers one record and updates the in-memory index bounds.
func (sw *segmentWriter) append(ev temporal.Event) error {
	var rec [recLen]byte
	encodeRecord(&rec, ev)
	if _, err := sw.w.Write(rec[:]); err != nil {
		return err
	}
	if sw.info.count == 0 {
		sw.info.minT = ev.T
	}
	sw.info.maxT = ev.T
	sw.info.count++
	return nil
}

func (sw *segmentWriter) flush(sync bool) error {
	if err := sw.w.Flush(); err != nil {
		return err
	}
	if sync {
		return sw.f.Sync()
	}
	return nil
}

// seal flushes, stamps the final [minT, maxT]/count header and closes the
// file. The segment is immutable afterwards.
func (sw *segmentWriter) seal() (segmentInfo, error) {
	if err := sw.flush(true); err != nil {
		sw.f.Close()
		return segmentInfo{}, err
	}
	sw.info.sealed = true
	var hdr [segHeaderLen]byte
	encodeHeader(&hdr, &sw.info)
	if _, err := sw.f.WriteAt(hdr[:], 0); err != nil {
		sw.f.Close()
		return segmentInfo{}, fmt.Errorf("store: seal segment: %w", err)
	}
	if err := sw.f.Sync(); err != nil {
		sw.f.Close()
		return segmentInfo{}, fmt.Errorf("store: sync sealed segment: %w", err)
	}
	if err := sw.f.Close(); err != nil {
		return segmentInfo{}, err
	}
	return sw.info, nil
}

func (sw *segmentWriter) close(sync bool) error {
	if err := sw.flush(sync); err != nil {
		sw.f.Close()
		return err
	}
	return sw.f.Close()
}

// listSegments returns the segment files of walDir ordered by index.
func listSegments(walDir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(walDir)
	if err != nil {
		return nil, err
	}
	var segs []segmentInfo
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		idx, err := strconv.ParseInt(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		segs = append(segs, segmentInfo{path: filepath.Join(walDir, name), index: idx})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	return segs, nil
}

// recoverSegment loads one segment's metadata. Sealed segments with a
// consistent size are trusted from the header; anything else — the active
// segment a crash left unsealed, or a sealed header contradicting the file
// size — is re-scanned record by record and truncated at the first torn or
// corrupt record. The scan enforces non-decreasing timestamps starting
// from prevT (the preceding segment's maxT), so cross-segment order
// corruption is caught too.
func recoverSegment(si *segmentInfo, prevT int64) error {
	f, err := os.OpenFile(si.path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()

	var hdr [segHeaderLen]byte
	n, err := io.ReadFull(f, hdr[:])
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return err
	}
	if n < segHeaderLen {
		// Crash during creation: no complete header was ever written.
		return fmt.Errorf("store: segment %s: truncated header", si.path)
	}
	idx := si.index
	path := si.path
	if err := decodeHeader(hdr[:], si); err != nil {
		return fmt.Errorf("store: segment %s: %w", path, err)
	}
	si.index = idx
	si.path = path

	st, err := f.Stat()
	if err != nil {
		return err
	}
	if si.sealed && st.Size() == segHeaderLen+si.count*recLen {
		return nil // trusted: sealed and size-consistent
	}

	// Scan and truncate. (Also heals a sealed header whose size lies.)
	r := bufio.NewReaderSize(io.NewSectionReader(f, segHeaderLen, st.Size()-segHeaderLen), 1<<16)
	var rec [recLen]byte
	valid := int64(0)
	si.count = 0
	si.sealed = false
	lastT := prevT
	for {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			break // clean EOF or torn record header
		}
		ev, ok := decodeRecord(rec[:])
		if !ok || ev.T < lastT {
			break // corrupt payload or time-order violation: drop the tail
		}
		if si.count == 0 {
			si.minT = ev.T
		}
		si.maxT = ev.T
		lastT = ev.T
		si.count++
		valid += recLen
	}
	if err := f.Truncate(segHeaderLen + valid); err != nil {
		return fmt.Errorf("store: truncate segment %s: %w", si.path, err)
	}
	// Rewrite the (now unsealed) header so a later crash-free open does not
	// see a stale sealed flag.
	encodeHeader(&hdr, si)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return err
	}
	return f.Sync()
}

// reopenSegment reopens a recovered, unsealed segment for appending.
func reopenSegment(si segmentInfo) (*segmentWriter, error) {
	f, err := os.OpenFile(si.path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(segHeaderLen+si.count*recLen, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &segmentWriter{info: si, f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

// scanSegment streams the records of a segment, starting at the given
// in-segment offset (record index), to fn; it stops early when fn returns
// false (reported via the bool return). Checksums are re-validated; a bad
// record in a supposedly clean region is an error, not a silent stop.
func scanSegment(si *segmentInfo, skip int64, fn func(seq int64, ev temporal.Event) bool) (bool, error) {
	f, err := os.Open(si.path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	if skip < 0 {
		skip = 0
	}
	end := segHeaderLen + si.count*recLen
	r := bufio.NewReaderSize(io.NewSectionReader(f, segHeaderLen+skip*recLen, end-(segHeaderLen+skip*recLen)), 1<<16)
	var rec [recLen]byte
	for i := skip; i < si.count; i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return false, fmt.Errorf("store: segment %s record %d: %w", si.path, i, err)
		}
		ev, ok := decodeRecord(rec[:])
		if !ok {
			return false, fmt.Errorf("store: segment %s record %d: checksum mismatch", si.path, i)
		}
		if !fn(si.firstSeq+i, ev) {
			return false, nil
		}
	}
	return true, nil
}
