package store

import (
	"os"
	"path/filepath"
	"testing"

	"flowmotif/internal/temporal"
)

// buildSegment renders a segment file image with the real encoders: a
// header (optionally sealed with the given metadata) followed by valid
// records, optionally chopped to simulate a torn tail.
func buildSegment(events []temporal.Event, sealed bool, chop int) []byte {
	si := segmentInfo{firstSeq: 0}
	for i, ev := range events {
		if i == 0 {
			si.minT = ev.T
		}
		si.maxT = ev.T
		si.count++
	}
	si.sealed = sealed
	var hdr [segHeaderLen]byte
	encodeHeader(&hdr, &si)
	out := append([]byte(nil), hdr[:]...)
	var rec [recLen]byte
	for _, ev := range events {
		encodeRecord(&rec, ev)
		out = append(out, rec[:]...)
	}
	if chop > 0 && chop < len(out) {
		out = out[:len(out)-chop]
	}
	return out
}

// FuzzRecoverSegment feeds arbitrary bytes to the WAL's torn-tail
// recovery and checks its contract: when recovery succeeds, the file is
// truncated to exactly header+count*records, every surviving record
// re-validates with non-decreasing timestamps starting at prevT, and a
// second recovery is a no-op (same metadata, same size).
func FuzzRecoverSegment(f *testing.F) {
	evs := []temporal.Event{
		{From: 1, To: 2, T: 10, F: 1.5},
		{From: 2, To: 3, T: 10, F: 0.25},
		{From: 3, To: 1, T: 25, F: 4},
	}
	f.Add(buildSegment(nil, false, 0), int64(0))                                // fresh empty segment
	f.Add(buildSegment(evs, false, 0), int64(0))                                // clean unsealed
	f.Add(buildSegment(evs, true, 0), int64(0))                                 // sealed, size-consistent
	f.Add(buildSegment(evs, false, 7), int64(0))                                // torn mid-record
	f.Add(buildSegment(evs, true, recLen), int64(0))                            // sealed header lies about size
	f.Add(buildSegment(evs, false, 0), int64(99))                               // prevT past every record
	f.Add([]byte("FMSEG001"), int64(0))                                         // truncated header
	f.Add([]byte("NOTMAGIC________________________________________"), int64(0)) // bad magic
	corrupt := buildSegment(evs, false, 0)
	corrupt[segHeaderLen+recLen+9] ^= 0xff // flip a payload byte in record 1
	f.Add(corrupt, int64(0))

	f.Fuzz(func(t *testing.T, data []byte, prevT int64) {
		dir := t.TempDir()
		path := filepath.Join(dir, "0000000000000000"+segSuffix)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		si := segmentInfo{path: path, index: 0}
		if err := recoverSegment(&si, prevT); err != nil {
			return // rejected whole (bad magic / truncated header): fine
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(segHeaderLen) + si.count*recLen; st.Size() != want {
			t.Fatalf("recovered size %d, metadata implies %d (count=%d)", st.Size(), want, si.count)
		}
		if si.count < 0 {
			t.Fatalf("negative record count %d", si.count)
		}
		if si.sealed {
			// Trusted sealed segment: recovery validated size only, by
			// design — record checksums are not re-verified here.
			return
		}
		last := prevT
		n := int64(0)
		done, err := scanSegment(&si, 0, func(seq int64, ev temporal.Event) bool {
			if ev.T < last {
				t.Errorf("record %d: timestamp %d < previous %d", seq, ev.T, last)
			}
			last = ev.T
			n++
			return true
		})
		if err != nil || !done {
			t.Fatalf("recovered segment does not re-scan cleanly: done=%v err=%v", done, err)
		}
		if n != si.count {
			t.Fatalf("scan saw %d records, metadata says %d", n, si.count)
		}

		// Idempotence: a second recovery must change nothing.
		si2 := segmentInfo{path: path, index: 0}
		if err := recoverSegment(&si2, prevT); err != nil {
			t.Fatalf("second recovery failed: %v", err)
		}
		if si2.count != si.count || si2.sealed != si.sealed {
			t.Fatalf("recovery not idempotent: first %+v, second %+v", si, si2)
		}
		if si.count > 0 && (si2.minT != si.minT || si2.maxT != si.maxT) {
			t.Fatalf("recovery not idempotent on bounds: first %+v, second %+v", si, si2)
		}
		st2, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st2.Size() != st.Size() {
			t.Fatalf("second recovery resized the file: %d → %d", st.Size(), st2.Size())
		}
	})
}
